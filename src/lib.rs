//! # alps — an application-level proportional-share scheduler
//!
//! A full reproduction of *“ALPS: An Application-Level Proportional-Share
//! Scheduler”* (Newhouse & Pasquale, HPDC 2006): a user-level,
//! unprivileged scheduler that apportions CPU time among processes in
//! proportion to configured shares by sampling `/proc` and sending
//! `SIGSTOP`/`SIGCONT`, plus a deterministic simulation of the paper's
//! entire evaluation.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`core`] — the scheduling algorithm (Figure 3 of the
//!   paper), backend-agnostic;
//! * [`os`] — the real-Linux backend ([`Supervisor`]);
//! * [`kernsim`] — a 4.4BSD-style kernel-scheduler simulator;
//! * [`sim`] — ALPS running inside the simulator with the
//!   paper's measured operation costs, and drivers for every experiment;
//! * [`workloads`] — Table-2 share distributions and synthetic workloads;
//! * [`metrics`] — RMS error, regression, and the §4.2
//!   breakdown-threshold analysis.
//!
//! ## Quick start (real processes)
//!
//! ```no_run
//! use alps::{AlpsConfig, Nanos, SpinnerPool, Supervisor};
//! use std::time::Duration;
//!
//! let pool = SpinnerPool::spawn(2).unwrap();
//! let mut sup = Supervisor::new(AlpsConfig::new(Nanos::from_millis(20)));
//! sup.add_process(pool.pids()[0], 1).unwrap();
//! sup.add_process(pool.pids()[1], 3).unwrap();
//! sup.run_for(Duration::from_secs(10)).unwrap();
//! ```
//!
//! ## Quick start (simulation)
//!
//! ```
//! use alps::{AlpsConfig, CostModel, Nanos};
//! use kernsim::{ComputeBound, Sim, SimConfig};
//!
//! let mut sim = Sim::new(SimConfig::default());
//! let a = sim.spawn("a", Box::new(ComputeBound));
//! let b = sim.spawn("b", Box::new(ComputeBound));
//! alps::spawn_alps(&mut sim, "alps", AlpsConfig::new(Nanos::from_millis(10)),
//!                  CostModel::paper(), &[(a, 1), (b, 3)]);
//! sim.run_until(Nanos::from_secs(10));
//! let cpu = |pid| sim.proc(pid).unwrap().cputime();
//! assert!(cpu(b) > cpu(a) * 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use alps_core as core;
pub use alps_metrics as metrics;
pub use alps_os as os;
pub use alps_sim as sim;

pub use alps_core::{
    AlpsConfig, AlpsScheduler, CycleEntry, CycleRecord, Engine, EngineStats, Event, EventSink,
    Instrumentation, IoPolicy, Nanos, NodeId, NullSink, Observation, PrincipalScheduler, ProcId,
    RecordingSink, ShareTree, Signal, Substrate, TraceSink, Transition,
};
pub use alps_os::{Membership, PrincipalSupervisor, SpinnerPool, Supervisor};
pub use alps_sim::{spawn_alps, spawn_alps_principals, AlpsHandle, CostModel};
