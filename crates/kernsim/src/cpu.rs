//! CPU identifiers.

use core::fmt;

use serde::{Deserialize, Serialize};

/// A CPU index on the simulated machine, `0..SimConfig::cpus`.
///
/// Threading a newtype (rather than a bare `usize`) through the per-CPU
/// run queues, the dispatch slots, and the trace keeps the two dense
/// index spaces of the simulator — pids and CPUs — impossible to confuse
/// at compile time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CpuId(pub u32);

impl CpuId {
    /// Dense index for per-CPU tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CpuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cpu{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_index() {
        let c = CpuId(3);
        assert_eq!(c.index(), 3);
        assert_eq!(format!("{c}"), "cpu3");
    }

    #[test]
    fn ordering_is_by_number() {
        assert!(CpuId(0) < CpuId(1));
    }
}
