//! The discrete-event queue.
//!
//! Events are ordered by `(time, sequence)`; the sequence number makes the
//! order of simultaneous events deterministic (FIFO by insertion). Events
//! targeting a process carry a *token*; the process bumps its token whenever
//! a previously scheduled event becomes stale (e.g. a wakeup for a sleep
//! that was interrupted by `SIGSTOP`), so stale events are dropped on pop
//! instead of being hunted down inside the heap.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use alps_core::Nanos;

use crate::pid::Pid;

/// What happens when an event fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// The periodic clock interrupt (`hardclock`/`statclock`): charges the
    /// running process, enforces the round-robin slice, recomputes the
    /// running process's priority, and performs any pending preemption.
    Tick,
    /// The once-per-second `schedcpu` pass: decays every process's `estcpu`,
    /// updates the load average, and ages sleep times.
    SchedCpu,
    /// A sleeping process's wakeup time arrived.
    Wake {
        /// The sleeping process.
        pid: Pid,
        /// Token guarding staleness.
        token: u64,
    },
    /// A process's interval timer expired.
    TimerFire {
        /// The owner of the timer.
        pid: Pid,
        /// Token guarding staleness.
        token: u64,
    },
    /// The running process finished its current CPU burst.
    BurstDone {
        /// The process that was running when this was scheduled.
        pid: Pid,
        /// Token guarding staleness.
        token: u64,
    },
}

/// A scheduled event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// When the event fires.
    pub at: Nanos,
    /// Tie-break for simultaneous events (insertion order).
    pub seq: u64,
    /// What to do.
    pub kind: EventKind,
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Min-heap of events with deterministic tie-breaking.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<Event>>,
    next_seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty queue with pre-allocated room for `cap` pending events
    /// (large populations schedule one timer/burst event per process, and
    /// heap regrowth is pure overhead on the hot path).
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
        }
    }

    /// Schedule `kind` to fire at `at`.
    pub fn schedule(&mut self, at: Nanos, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Event { at, seq, kind }));
    }

    /// Time of the next event, if any.
    pub fn peek_time(&self) -> Option<Nanos> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// Pop the next event.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop().map(|Reverse(e)| e)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Nanos(30), EventKind::Tick);
        q.schedule(Nanos(10), EventKind::SchedCpu);
        q.schedule(Nanos(20), EventKind::Tick);
        assert_eq!(q.peek_time(), Some(Nanos(10)));
        assert_eq!(q.pop().unwrap().at, Nanos(10));
        assert_eq!(q.pop().unwrap().at, Nanos(20));
        assert_eq!(q.pop().unwrap().at, Nanos(30));
        assert!(q.pop().is_none());
    }

    #[test]
    fn simultaneous_events_fifo() {
        let mut q = EventQueue::new();
        q.schedule(Nanos(5), EventKind::Tick);
        q.schedule(
            Nanos(5),
            EventKind::Wake {
                pid: Pid(1),
                token: 0,
            },
        );
        q.schedule(Nanos(5), EventKind::SchedCpu);
        assert_eq!(q.pop().unwrap().kind, EventKind::Tick);
        assert!(matches!(q.pop().unwrap().kind, EventKind::Wake { .. }));
        assert_eq!(q.pop().unwrap().kind, EventKind::SchedCpu);
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(Nanos(1), EventKind::Tick);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
