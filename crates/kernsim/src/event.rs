//! The discrete-event queue.
//!
//! Events are ordered by `(time, sequence)`; the sequence number makes the
//! order of simultaneous events deterministic (FIFO by insertion). Events
//! targeting a process carry a *token*; the process bumps its token whenever
//! a previously scheduled event becomes stale (e.g. a wakeup for a sleep
//! that was interrupted by `SIGSTOP`), so stale events are dropped on pop
//! instead of being hunted down inside the queue.
//!
//! Two implementations live behind [`EventQueue`], selected by
//! [`EventQueueKind`]:
//!
//! * [`EventQueueKind::Wheel`] (the default) — a hierarchical timing
//!   wheel / calendar queue: [`LEVELS`] levels of [`SLOTS`] slots, each
//!   level [`SLOT_BITS`] bits of the nanosecond timestamp wider than the
//!   one below, with a one-word occupancy bitmap per level. Schedule and
//!   pop are O(1) amortized regardless of population; events beyond the
//!   wheel's span (~68.7 simulated seconds from the cursor) park in an
//!   overflow list and are drained back when the cursor approaches.
//! * [`EventQueueKind::Heap`] — the seed `BinaryHeap` keyed on
//!   `(time, seq)`, O(log E) per operation. Retained for lockstep
//!   differential testing; both implementations pop every schedule in
//!   the identical order, which the lockstep suites and the queue
//!   proptest pin down.
//!
//! ## How the wheel preserves the `(time, seq)` order
//!
//! The wheel is *windowed*: a cursor `wnow` trails the simulation clock
//! (every pending event fires at `t >= wnow`), and an event at time `t`
//! lives at level `hsb(t XOR wnow) / SLOT_BITS` — the level of the
//! highest bit where `t` and the cursor differ — in slot
//! `(t >> SLOT_BITS*level) & (SLOTS-1)`. Advancing the cursor only ever
//! *lowers* an event's level, so slots cascade toward level 0 as their
//! window opens. A level-0 slot is one nanosecond wide — every event in
//! it shares the same `t` — and is sorted by sequence number the first
//! time the cursor consumes from it, so simultaneous events pop in
//! insertion order no matter how cascading interleaved them.
use std::cmp::Reverse;
use std::collections::BinaryHeap;

use alps_core::Nanos;

use crate::pid::Pid;

/// What happens when an event fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// The periodic clock interrupt (`hardclock`/`statclock`): charges the
    /// running process, enforces the round-robin slice, recomputes the
    /// running process's priority, and performs any pending preemption.
    Tick,
    /// The once-per-second `schedcpu` pass: decays every process's `estcpu`,
    /// updates the load average, and ages sleep times.
    SchedCpu,
    /// A sleeping process's wakeup time arrived.
    Wake {
        /// The sleeping process.
        pid: Pid,
        /// Token guarding staleness.
        token: u64,
    },
    /// A process's interval timer expired.
    TimerFire {
        /// The owner of the timer.
        pid: Pid,
        /// Token guarding staleness.
        token: u64,
    },
    /// The running process finished its current CPU burst.
    BurstDone {
        /// The process that was running when this was scheduled.
        pid: Pid,
        /// Token guarding staleness.
        token: u64,
    },
}

/// A scheduled event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// When the event fires.
    pub at: Nanos,
    /// Tie-break for simultaneous events (insertion order).
    pub seq: u64,
    /// What to do.
    pub kind: EventKind,
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Which event-queue implementation a simulation runs on. Both pop every
/// schedule in the identical `(time, seq)` order; the wheel is O(1) per
/// operation where the heap is O(log E).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EventQueueKind {
    /// Hierarchical timing wheel (calendar queue) — the default.
    #[default]
    Wheel,
    /// The seed binary heap, kept for lockstep differential testing.
    Heap,
}

/// Bits of the timestamp consumed per wheel level.
const SLOT_BITS: u32 = 6;
/// Slots per wheel level (`2^SLOT_BITS`).
const SLOTS: usize = 1 << SLOT_BITS;
/// Wheel levels. The wheel spans `2^(SLOT_BITS*LEVELS)` ns ≈ 68.7
/// simulated seconds from the cursor; anything farther parks.
const LEVELS: usize = 6;
/// Timestamp bits covered by the wheel.
const SPAN_BITS: u32 = SLOT_BITS * LEVELS as u32;

/// Hierarchical timing wheel. See the module docs for the invariants.
#[derive(Debug)]
struct Wheel {
    /// Cursor: every pending event fires at `t >= wnow`. Trails the
    /// simulation clock (advanced by pops and cascades, never past the
    /// minimum pending time).
    wnow: u64,
    /// `LEVELS * SLOTS` buckets, level-major (`slots[level*SLOTS+slot]`).
    slots: Vec<Vec<Event>>,
    /// One occupancy word per level; bit `s` set iff `slots[l*SLOTS+s]`
    /// is non-empty. Minimum search is a masked `trailing_zeros`.
    occupied: [u64; LEVELS],
    /// True when the level-0 slot at the cursor has been sorted by
    /// sequence number (descending; consumed from the back).
    armed: bool,
    /// Events beyond the wheel's span, unordered; drained back into the
    /// wheel when every level is empty.
    park: Vec<Event>,
    /// Minimum parked time (`u64::MAX` when `park` is empty).
    park_min: u64,
    /// Scratch buffer reused by cascades (capacity persists).
    cascade_buf: Vec<Event>,
    /// Total pending events, parked included.
    len: usize,
}

impl Wheel {
    fn with_capacity(cap: usize) -> Self {
        Wheel {
            wnow: 0,
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occupied: [0; LEVELS],
            armed: false,
            park: Vec::new(),
            park_min: u64::MAX,
            // A cascade moves one whole slot, which can hold an event per
            // process (e.g. every timer parked in one far slot), so the
            // scratch buffer is the one place the capacity hint matters.
            cascade_buf: Vec::with_capacity(cap),
            len: 0,
        }
    }

    /// Level of an event at `t` relative to cursor `wnow`: the level of
    /// the highest differing bit, or `LEVELS` for "park".
    #[inline]
    fn level_of(wnow: u64, t: u64) -> usize {
        let x = t ^ wnow;
        if x == 0 {
            0
        } else {
            ((63 - x.leading_zeros()) / SLOT_BITS) as usize
        }
    }

    /// File an event (already counted in `len`) into its slot.
    #[inline]
    fn file(&mut self, e: Event) {
        let t = e.at.0;
        debug_assert!(t >= self.wnow, "insert into the past: {t} < {}", self.wnow);
        if (t ^ self.wnow) >> SPAN_BITS != 0 {
            self.park_min = self.park_min.min(t);
            self.park.push(e);
            return;
        }
        let l = Self::level_of(self.wnow, t);
        let s = ((t >> (SLOT_BITS * l as u32)) & (SLOTS as u64 - 1)) as usize;
        let idx = l * SLOTS + s;
        if l == 0 && self.armed && t == self.wnow {
            // The cursor is mid-way through this very slot, which is
            // sorted descending by seq. Only `schedule` can land here
            // (cascades require the slot's level to be empty first), so
            // the new seq is the maximum and belongs at the front — it
            // must pop after everything already pending at this time.
            debug_assert!(self.slots[idx].first().is_none_or(|f| e.seq > f.seq));
            self.slots[idx].insert(0, e);
        } else {
            self.slots[idx].push(e);
        }
        self.occupied[l] |= 1 << s;
    }

    /// Empty one upper-level slot back into the wheel, jumping the
    /// cursor straight to the slot's *minimum* event time. The jump is
    /// legal because this is only called when every lower level is empty
    /// and `s` is the lowest occupied slot of the lowest occupied level —
    /// the slot's minimum is the global minimum pending time. Jumping to
    /// it (rather than to the slot's window start) refiles that minimum
    /// directly into level 0, so one cascade always readies the next pop:
    /// a lone far-future event costs one refile, not one per level it
    /// would otherwise sink through.
    /// `m` must be the minimum event time in slot `(l, s)` — callers have
    /// already scanned for it to compare against their deadline.
    fn cascade(&mut self, l: usize, s: u64, m: u64) {
        debug_assert!(l >= 1 && self.occupied[0] == 0);
        let idx = l * SLOTS + s as usize;
        debug_assert_eq!(self.slots[idx].iter().map(|e| e.at.0).min(), Some(m));
        debug_assert!(m >= self.wnow);
        self.wnow = m;
        self.occupied[l] &= !(1 << s);
        self.cascade_buf.clear();
        self.cascade_buf.append(&mut self.slots[idx]);
        for i in 0..self.cascade_buf.len() {
            let e = self.cascade_buf[i];
            // Slot-mates share every bit at or above this slot's span, so
            // relative to the new cursor they all land strictly lower —
            // and the minimum lands exactly at level 0.
            debug_assert!(Self::level_of(self.wnow, e.at.0) < l);
            self.file(e);
        }
        debug_assert!(self.occupied[0] != 0);
    }

    /// Refile every parked event now within the wheel's span of the new
    /// cursor (`park_min`; legal because the wheel proper is empty).
    fn drain_park(&mut self) {
        debug_assert!(!self.park.is_empty() && self.occupied.iter().all(|&w| w == 0));
        self.wnow = self.park_min;
        self.park_min = u64::MAX;
        let mut i = 0;
        while i < self.park.len() {
            let t = self.park[i].at.0;
            if (t ^ self.wnow) >> SPAN_BITS == 0 {
                let e = self.park.swap_remove(i);
                self.file(e);
            } else {
                self.park_min = self.park_min.min(t);
                i += 1;
            }
        }
    }

    fn schedule(&mut self, e: Event) {
        self.len += 1;
        self.file(e);
    }

    /// Minimum pending time without moving the cursor. The cursor must
    /// only advance on [`Wheel::pop`]: a driver that peeks past its
    /// deadline keeps mutating the simulation at earlier times, and any
    /// cursor movement here would put those inserts "in the past".
    ///
    /// O(1) whenever level 0 is occupied (the steady state between two
    /// pops at the same or nearby times); otherwise an O(slot) scan of
    /// the lowest upper slot — work proportional to the cascade the next
    /// pop performs anyway, so amortized O(1) per event.
    fn peek_time(&self) -> Option<Nanos> {
        if self.len == 0 {
            return None;
        }
        if self.occupied[0] != 0 {
            let slot = self.occupied[0].trailing_zeros() as u64;
            debug_assert!(slot >= self.wnow & (SLOTS as u64 - 1));
            return Some(Nanos((self.wnow & !(SLOTS as u64 - 1)) | slot));
        }
        for l in 1..LEVELS {
            if self.occupied[l] != 0 {
                let s = self.occupied[l].trailing_zeros() as usize;
                // Lower levels are empty, so this slot holds the global
                // minimum among wheel events (and every parked event is
                // beyond the whole span).
                return self.slots[l * SLOTS + s].iter().map(|e| e.at).min();
            }
        }
        Some(Nanos(self.park_min))
    }

    /// Pop the minimum event if it fires at or before `deadline`;
    /// otherwise return `None` *without moving the cursor* — a caller
    /// that stops at its deadline keeps mutating the simulation at
    /// earlier times, and cursor movement would put those inserts "in
    /// the past". This fuses the `peek_time`/`pop` pair an event loop
    /// otherwise runs per event, locating the minimum once instead of
    /// twice.
    fn pop_due(&mut self, deadline: u64) -> Option<Event> {
        if self.len == 0 {
            return None;
        }
        // Bring the minimum down to level 0. The minimum pending event
        // sits in the lowest non-empty level's lowest slot; one
        // jump-cascade lands it in level 0 (and a park drain files
        // `park_min` at level 0), so this loop runs at most twice.
        while self.occupied[0] == 0 {
            debug_assert!(!self.armed);
            match (1..LEVELS).find(|&l| self.occupied[l] != 0) {
                Some(l) => {
                    let s = self.occupied[l].trailing_zeros() as u64;
                    let idx = l * SLOTS + s as usize;
                    let m = self.slots[idx]
                        .iter()
                        .map(|e| e.at.0)
                        .min()
                        .expect("occupied slot");
                    if m > deadline {
                        return None;
                    }
                    if self.slots[idx].len() == 1 {
                        // A lone slot-mate *is* the minimum: pop it here
                        // rather than round-tripping it through level 0
                        // (file, re-find, un-file). The common case for
                        // sparse schedules and thinly-populated levels.
                        let e = self.slots[idx].pop().expect("scanned just above");
                        self.occupied[l] &= !(1 << s);
                        self.wnow = m;
                        self.len -= 1;
                        return Some(e);
                    }
                    self.cascade(l, s, m);
                }
                None => {
                    if self.park_min > deadline {
                        return None;
                    }
                    self.drain_park();
                }
            }
        }
        let slot = self.occupied[0].trailing_zeros() as u64;
        debug_assert!(slot >= self.wnow & (SLOTS as u64 - 1));
        let t = (self.wnow & !(SLOTS as u64 - 1)) | slot;
        if t > deadline {
            return None;
        }
        self.wnow = t;
        let s = slot as usize;
        if !self.armed {
            self.slots[s].sort_unstable_by_key(|e| Reverse(e.seq));
            self.armed = true;
        }
        let e = self.slots[s].pop().expect("occupied level-0 slot");
        debug_assert_eq!(e.at.0, self.wnow);
        if self.slots[s].is_empty() {
            self.occupied[0] &= !(1u64 << s);
            self.armed = false;
        }
        self.len -= 1;
        Some(e)
    }
}

#[derive(Debug)]
enum QueueImpl {
    Wheel(Wheel),
    Heap(BinaryHeap<Reverse<Event>>),
}

/// Pending-event queue with deterministic `(time, seq)` ordering. The
/// implementation is chosen at construction ([`EventQueueKind`]); both
/// pop identical schedules in the identical order.
#[derive(Debug)]
pub struct EventQueue {
    imp: QueueImpl,
    next_seq: u64,
}

impl Default for EventQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl EventQueue {
    /// An empty queue of the default kind ([`EventQueueKind::Wheel`]).
    pub fn new() -> Self {
        Self::with_kind(EventQueueKind::default(), 0)
    }

    /// An empty queue with pre-allocated room for `cap` pending events
    /// (large populations schedule one timer/burst event per process, and
    /// regrowth is pure overhead on the hot path).
    pub fn with_capacity(cap: usize) -> Self {
        Self::with_kind(EventQueueKind::default(), cap)
    }

    /// An empty queue of the given kind with room for `cap` events.
    pub fn with_kind(kind: EventQueueKind, cap: usize) -> Self {
        let imp = match kind {
            EventQueueKind::Wheel => QueueImpl::Wheel(Wheel::with_capacity(cap)),
            EventQueueKind::Heap => QueueImpl::Heap(BinaryHeap::with_capacity(cap)),
        };
        EventQueue { imp, next_seq: 0 }
    }

    /// The implementation this queue runs on.
    pub fn kind(&self) -> EventQueueKind {
        match self.imp {
            QueueImpl::Wheel(_) => EventQueueKind::Wheel,
            QueueImpl::Heap(_) => EventQueueKind::Heap,
        }
    }

    /// Schedule `kind` to fire at `at`.
    pub fn schedule(&mut self, at: Nanos, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let e = Event { at, seq, kind };
        match &mut self.imp {
            QueueImpl::Wheel(w) => w.schedule(e),
            QueueImpl::Heap(h) => h.push(Reverse(e)),
        }
    }

    /// Time of the next event, if any.
    pub fn peek_time(&self) -> Option<Nanos> {
        match &self.imp {
            QueueImpl::Wheel(w) => w.peek_time(),
            QueueImpl::Heap(h) => h.peek().map(|Reverse(e)| e.at),
        }
    }

    /// Pop the next event.
    pub fn pop(&mut self) -> Option<Event> {
        self.pop_due(Nanos(u64::MAX))
    }

    /// Pop the next event if it fires at or before `deadline`, `None`
    /// otherwise (leaving the queue — including the wheel's cursor —
    /// untouched, so inserts before the pending minimum stay legal).
    /// This is the event loop's per-event operation: it fuses the
    /// `peek_time`/`pop` pair so the minimum is located once, not twice.
    pub fn pop_due(&mut self, deadline: Nanos) -> Option<Event> {
        match &mut self.imp {
            QueueImpl::Wheel(w) => w.pop_due(deadline.0),
            QueueImpl::Heap(h) => {
                if h.peek().is_some_and(|Reverse(e)| e.at <= deadline) {
                    h.pop().map(|Reverse(e)| e)
                } else {
                    None
                }
            }
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match &self.imp {
            QueueImpl::Wheel(w) => w.len,
            QueueImpl::Heap(h) => h.len(),
        }
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn both_kinds() -> [EventQueue; 2] {
        [
            EventQueue::with_kind(EventQueueKind::Wheel, 0),
            EventQueue::with_kind(EventQueueKind::Heap, 0),
        ]
    }

    #[test]
    fn pops_in_time_order() {
        for mut q in both_kinds() {
            q.schedule(Nanos(30), EventKind::Tick);
            q.schedule(Nanos(10), EventKind::SchedCpu);
            q.schedule(Nanos(20), EventKind::Tick);
            assert_eq!(q.peek_time(), Some(Nanos(10)));
            assert_eq!(q.pop().unwrap().at, Nanos(10));
            assert_eq!(q.pop().unwrap().at, Nanos(20));
            assert_eq!(q.pop().unwrap().at, Nanos(30));
            assert!(q.pop().is_none());
        }
    }

    #[test]
    fn simultaneous_events_fifo() {
        for mut q in both_kinds() {
            q.schedule(Nanos(5), EventKind::Tick);
            q.schedule(
                Nanos(5),
                EventKind::Wake {
                    pid: Pid(1),
                    token: 0,
                },
            );
            q.schedule(Nanos(5), EventKind::SchedCpu);
            assert_eq!(q.pop().unwrap().kind, EventKind::Tick);
            assert!(matches!(q.pop().unwrap().kind, EventKind::Wake { .. }));
            assert_eq!(q.pop().unwrap().kind, EventKind::SchedCpu);
        }
    }

    #[test]
    fn len_and_empty() {
        for mut q in both_kinds() {
            assert!(q.is_empty());
            q.schedule(Nanos(1), EventKind::Tick);
            assert_eq!(q.len(), 1);
            q.pop();
            assert!(q.is_empty());
        }
    }

    #[test]
    fn insert_at_consumed_time_pops_after_pending_peers() {
        // A handler scheduling at exactly the popped time (e.g. a
        // zero-length burst) must fire after everything already pending
        // at that time — even when the slot is mid-consumption.
        for mut q in both_kinds() {
            q.schedule(Nanos(7), EventKind::Tick);
            q.schedule(Nanos(7), EventKind::SchedCpu);
            assert_eq!(q.pop().unwrap().kind, EventKind::Tick);
            q.schedule(
                Nanos(7),
                EventKind::Wake {
                    pid: Pid(9),
                    token: 0,
                },
            );
            assert_eq!(q.pop().unwrap().kind, EventKind::SchedCpu);
            assert!(matches!(q.pop().unwrap().kind, EventKind::Wake { .. }));
        }
    }

    #[test]
    fn horizon_parking_round_trips() {
        // Far beyond the wheel span (~68.7 s), plus near events, popped
        // in global time order by both kinds.
        for mut q in both_kinds() {
            q.schedule(Nanos::from_secs(600), EventKind::Tick);
            q.schedule(Nanos(3), EventKind::SchedCpu);
            q.schedule(Nanos::from_secs(120), EventKind::Tick);
            q.schedule(Nanos::from_secs(600), EventKind::SchedCpu);
            assert_eq!(q.pop().unwrap().at, Nanos(3));
            assert_eq!(q.pop().unwrap().at, Nanos::from_secs(120));
            let a = q.pop().unwrap();
            let b = q.pop().unwrap();
            assert_eq!((a.at, a.kind), (Nanos::from_secs(600), EventKind::Tick));
            assert_eq!((b.at, b.kind), (Nanos::from_secs(600), EventKind::SchedCpu));
            assert!(q.pop().is_none());
        }
    }

    #[test]
    fn wheel_matches_heap_on_a_dense_schedule() {
        let mut wheel = EventQueue::with_kind(EventQueueKind::Wheel, 0);
        let mut heap = EventQueue::with_kind(EventQueueKind::Heap, 0);
        // Deterministic pseudo-random mix of near/far/simultaneous times,
        // interleaving schedules with pops (cursor keeps moving).
        let mut x = 0x9e3779b97f4a7c15u64;
        let step = |q: &mut EventQueue, i: u64, x: u64| {
            let at = match x % 5 {
                0 => Nanos(x % 64),                   // dense low slots
                1 => Nanos((x % 1000) * 1000),        // microseconds
                2 => Nanos::from_secs(100 + x % 100), // beyond span
                3 => Nanos(i * 17 % 4096),            // level-1 span
                _ => Nanos(x % 3),                    // heavy collisions
            };
            q.schedule(at, EventKind::Tick);
        };
        let mut popped = Vec::new();
        for i in 0..4000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            step(&mut wheel, i, x);
            step(&mut heap, i, x);
            if x.is_multiple_of(3) {
                // Pop only times >= everything already popped would allow
                // re-insertion below the cursor; instead drain fully at
                // the end and only compare counts here.
                assert_eq!(wheel.len(), heap.len());
            }
        }
        loop {
            let (a, b) = (wheel.pop(), heap.pop());
            assert_eq!(a, b);
            match a {
                Some(e) => popped.push(e),
                None => break,
            }
        }
        assert_eq!(popped.len(), 4000);
        assert!(popped
            .windows(2)
            .all(|w| (w[0].at, w[0].seq) < (w[1].at, w[1].seq)));
    }
}
