//! Process identifiers.

use core::fmt;

use serde::{Deserialize, Serialize};

/// A simulated process id. Never reused within one simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Pid(pub u32);

impl Pid {
    /// Dense index for per-process tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_index() {
        let p = Pid(7);
        assert_eq!(p.index(), 7);
        assert_eq!(format!("{p}"), "pid7");
    }

    #[test]
    fn ordering_is_by_number() {
        assert!(Pid(1) < Pid(2));
    }
}
