//! # kernsim — a 4.4BSD-style kernel-scheduler simulator
//!
//! A discrete-event simulation of the substrate the ALPS paper ran on — a
//! UNIX machine (FreeBSD 4.x on a 2.2 GHz Pentium 4) with the classic
//! 4.4BSD decay-usage scheduler — generalized to M CPUs
//! ([`SimConfig::cpus`], default 1, the paper's configuration). It exists
//! so the paper's evaluation — accuracy, overhead, multi-application
//! behavior, and the §4.2 scalability breakdown — can be reproduced
//! deterministically on any machine.
//!
//! What is modeled:
//!
//! * **decay-usage priorities** — `estcpu` rises with CPU use and decays
//!   once per second by `(2·load)/(2·load+1)`; user priority is
//!   `PUSER + estcpu/4 + 2·nice`;
//! * **clock ticks at 100 Hz** — priority recomputation every 4 ticks and a
//!   100 ms round-robin slice among equal priorities;
//! * **sleep/wakeup** — timed sleeps on wait channels with the retroactive
//!   `updatepri` decay that favors interactive processes;
//! * **job control** — `SIGSTOP`/`SIGCONT` with correct interaction with
//!   interrupted sleeps (the mechanism ALPS uses to move processes between
//!   the eligible and ineligible groups);
//! * **interval timers** — `setitimer`-style periodic timers with
//!   pending-signal coalescing (the mechanism by which an overloaded ALPS
//!   misses quanta);
//! * **event-exact CPU accounting** — `getrusage`-style cumulative CPU
//!   times at nanosecond precision.
//!
//! Beyond the paper's substrate, the simulator also supports:
//!
//! * **multiple CPUs** ([`SimConfig::cpus`]) — per-CPU run queues with
//!   deterministic idle-time work stealing ([`sim`]'s SMP model) for the
//!   SMP extension study;
//! * **in-kernel stride scheduling** ([`KernelPolicy::Stride`]) as the
//!   baseline comparator (Waldspurger & Weihl);
//! * **statclock-sampled visible CPU counters**
//!   ([`CpuAccounting::TickSampled`]) for the measurement-granularity
//!   ablation;
//! * **execution tracing** ([`Sim::enable_trace`], [`trace`]) with an
//!   ASCII timeline renderer.
//!
//! Not modeled (not needed for any experiment): memory, I/O devices, or
//! signal handling beyond job control. One deliberate divergence —
//! continuous rather than tick-sampled `estcpu` charging for the
//! *scheduler's own* usage estimates — is documented in [`sched`].
//!
//! ## Example
//!
//! ```
//! use alps_core::Nanos;
//! use kernsim::{ComputeBound, Sim, SimConfig};
//!
//! let mut sim = Sim::new(SimConfig::default());
//! let a = sim.spawn("worker-a", Box::new(ComputeBound));
//! let b = sim.spawn("worker-b", Box::new(ComputeBound));
//! sim.run_until(Nanos::from_secs(10));
//! // The kernel scheduler splits the CPU roughly evenly.
//! let ca = sim.proc(a).unwrap().cputime().as_secs_f64();
//! let cb = sim.proc(b).unwrap().cputime().as_secs_f64();
//! assert!((ca - cb).abs() < 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cpu;
pub mod event;
pub mod fault;
pub mod pid;
pub mod process;
pub mod sched;
pub mod sim;
pub mod table;
pub mod trace;

pub use cpu::CpuId;
pub use event::EventQueueKind;
pub use fault::{FaultLog, FaultPlan, FaultPlanSpec, FaultRates};
pub use pid::Pid;
pub use process::{Behavior, ComputeBound, ComputeThenSleep, PState, ProcView, Step};
pub use sched::RunQueueKind;
pub use sim::{CpuAccounting, KernelPolicy, Sim, SimConfig, SimCtl};
pub use table::ProcTable;
pub use trace::{Trace, TraceEvent, TraceKind};
