//! The process table: a dense pid→slot map with a live-process index.
//!
//! Pids are minted densely and never reused, so the table is a plain
//! `Vec<Process>` indexed by [`Pid::index`]. On top of it sits a *live
//! index* — the set of not-yet-exited pids, maintained with O(1)
//! swap-removal — so the once-per-second `schedcpu` pass (and any other
//! whole-table walk) touches only live processes. A long-dead process
//! costs nothing per tick, per second, or per event.
//!
//! The decay-active bitmap is partitioned per CPU: a process's bit lives
//! in the bitmap of its *home* CPU ([`crate::process::Process::home`]),
//! so the per-CPU `schedcpu` pass walks exactly the processes whose run
//! queue it owns. A steal moves the bit along with the process
//! ([`ProcTable::set_home`]). With one CPU there is a single bitmap and
//! the walk order is identical to the pre-SMP table.

use crate::cpu::CpuId;
use crate::pid::Pid;
use crate::process::Process;

/// Position sentinel for a pid that is not in the live index.
const DEAD: u32 = u32::MAX;

/// The simulated machine's process table.
pub struct ProcTable {
    slots: Vec<Process>,
    /// Pids of live (not exited) processes, unordered (swap-removal).
    live: Vec<Pid>,
    /// Per-pid position in `live`, or [`DEAD`].
    live_pos: Vec<u32>,
    /// Per-CPU, pid-indexed bitmaps of processes the once-per-second
    /// `schedcpu` pass must visit: everything live except processes that
    /// have been asleep for more than one whole second (their decay is
    /// deferred to `updatepri` at wakeup, so `schedcpu` need not touch
    /// them at all). A process's bit is set in exactly one bitmap — its
    /// home CPU's — or in none.
    decay_active: Vec<Vec<u64>>,
}

impl Default for ProcTable {
    fn default() -> Self {
        Self::new(1)
    }
}

impl ProcTable {
    /// An empty table for a machine with `cpus` CPUs.
    pub fn new(cpus: usize) -> Self {
        assert!(cpus >= 1, "need at least one CPU");
        ProcTable {
            slots: Vec::new(),
            live: Vec::new(),
            live_pos: Vec::new(),
            decay_active: vec![Vec::new(); cpus],
        }
    }

    /// The pid the next [`ProcTable::push`] will occupy.
    pub fn next_pid(&self) -> Pid {
        Pid(self.slots.len() as u32)
    }

    /// Number of processes ever spawned (including exited ones).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when no process was ever spawned.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Insert a freshly spawned process. Its pid must be the next slot;
    /// its decay-active bit is set in its home CPU's bitmap.
    pub fn push(&mut self, p: Process) {
        assert_eq!(p.pid, self.next_pid(), "pids are minted densely");
        assert!(
            p.home.index() < self.decay_active.len(),
            "home CPU out of range"
        );
        self.live_pos.push(self.live.len() as u32);
        self.live.push(p.pid);
        let idx = p.pid.index();
        let home = p.home.index();
        self.slots.push(p);
        for bitmap in &mut self.decay_active {
            if idx / 64 >= bitmap.len() {
                bitmap.push(0);
            }
        }
        self.decay_active[home][idx / 64] |= 1 << (idx % 64);
    }

    /// Shared access by pid; `None` for a pid this table never minted.
    pub fn get(&self, pid: Pid) -> Option<&Process> {
        self.slots.get(pid.index())
    }

    /// Whether the process exists and has not exited.
    pub fn is_live(&self, pid: Pid) -> bool {
        self.live_pos
            .get(pid.index())
            .is_some_and(|&pos| pos != DEAD)
    }

    /// Number of live processes.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// The `i`-th live pid (unordered; stable across calls as long as no
    /// process dies in between).
    pub fn live_at(&self, i: usize) -> Pid {
        self.live[i]
    }

    /// The live pids, unordered.
    pub fn live(&self) -> &[Pid] {
        &self.live
    }

    /// Drop a process from the live index (on exit). Idempotent. O(1).
    pub fn mark_dead(&mut self, pid: Pid) {
        let i = pid.index();
        let pos = self.live_pos[i];
        if pos == DEAD {
            return;
        }
        self.live.swap_remove(pos as usize);
        if let Some(&moved) = self.live.get(pos as usize) {
            self.live_pos[moved.index()] = pos;
        }
        self.live_pos[i] = DEAD;
        self.set_decay_active(pid, false);
    }

    /// Move a process to a new home CPU (a work steal), carrying its
    /// decay-active bit to the new home's bitmap. O(1).
    pub fn set_home(&mut self, pid: Pid, home: CpuId) {
        let old = self.slots[pid.index()].home;
        if old == home {
            return;
        }
        let active = self.is_decay_active(pid);
        if active {
            self.set_decay_active(pid, false);
        }
        self.slots[pid.index()].home = home;
        if active {
            self.set_decay_active(pid, true);
        }
    }

    /// Mark whether `schedcpu` must visit this process (in its home
    /// CPU's bitmap). O(1).
    pub fn set_decay_active(&mut self, pid: Pid, active: bool) {
        let i = pid.index();
        let home = self.slots[i].home.index();
        let mask = 1u64 << (i % 64);
        if active {
            self.decay_active[home][i / 64] |= mask;
        } else {
            self.decay_active[home][i / 64] &= !mask;
        }
    }

    /// Whether `schedcpu` currently visits this process.
    pub fn is_decay_active(&self, pid: Pid) -> bool {
        let i = pid.index();
        let home = self.slots[i].home.index();
        self.decay_active[home]
            .get(i / 64)
            .is_some_and(|w| w & (1 << (i % 64)) != 0)
    }

    /// Number of 64-bit words in one CPU's decay-active bitmap (every
    /// CPU's bitmap has the same length).
    pub fn decay_words(&self, cpu: CpuId) -> usize {
        self.decay_active[cpu.index()].len()
    }

    /// The `wi`-th word of one CPU's decay-active bitmap: bit `b` set
    /// means pid `wi*64 + b` is decay-active and homed on `cpu`. Callers
    /// copy the word and iterate its set bits (`trailing_zeros` /
    /// `bits &= bits - 1`), so a pass that deactivates processes as it
    /// goes stays sound.
    pub fn decay_word(&self, cpu: CpuId, wi: usize) -> u64 {
        self.decay_active[cpu.index()][wi]
    }

    /// Brute-force check of the live index against the slot states;
    /// panics on any inconsistency (test support).
    pub fn assert_live_index_consistent(&self) {
        assert_eq!(self.live_pos.len(), self.slots.len());
        for (pos, &pid) in self.live.iter().enumerate() {
            assert_eq!(
                self.live_pos[pid.index()],
                pos as u32,
                "{pid} live position out of sync"
            );
        }
        let live_by_scan = self
            .slots
            .iter()
            .filter(|p| self.live_pos[p.pid.index()] != DEAD)
            .count();
        assert_eq!(live_by_scan, self.live.len(), "duplicate live entries");
        for p in &self.slots {
            if self.is_decay_active(p.pid) {
                assert!(
                    self.live_pos[p.pid.index()] != DEAD,
                    "{} decay-active but dead",
                    p.pid
                );
            }
            // The bit may live only in the home CPU's bitmap.
            let i = p.pid.index();
            for (cpu, bitmap) in self.decay_active.iter().enumerate() {
                if cpu != p.home.index() {
                    assert!(
                        bitmap.get(i / 64).is_none_or(|w| w & (1 << (i % 64)) == 0),
                        "{} decay bit set on cpu{cpu}, but home is {}",
                        p.pid,
                        p.home
                    );
                }
            }
        }
    }
}

impl std::ops::Index<Pid> for ProcTable {
    type Output = Process;

    fn index(&self, pid: Pid) -> &Process {
        &self.slots[pid.index()]
    }
}

impl std::ops::IndexMut<Pid> for ProcTable {
    fn index_mut(&mut self, pid: Pid) -> &mut Process {
        &mut self.slots[pid.index()]
    }
}

impl std::fmt::Debug for ProcTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProcTable")
            .field("len", &self.slots.len())
            .field("live", &self.live.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::{IntervalTimer, PState};
    use alps_core::Nanos;

    fn proc_homed(pid: Pid, home: CpuId) -> Process {
        Process {
            pid,
            name: format!("p{}", pid.0),
            state: PState::Runnable,
            nice: 0,
            estcpu: 0.0,
            priority: 50,
            slptime: 0,
            sleep_epoch: 0,
            cputime: Nanos::ZERO,
            cputime_per_cpu: vec![Nanos::ZERO; home.index() + 1],
            home,
            migrations: 0,
            visible_cputime: Nanos::ZERO,
            tickets: 1,
            pass: 0.0,
            burst_remaining: None,
            dispatched_at: Nanos::ZERO,
            kernel_boost: false,
            wake_token: 0,
            burst_token: 0,
            timer: IntervalTimer::default(),
            behavior: None,
            dispatches: 0,
            voluntary_switches: 0,
        }
    }

    fn proc_named(pid: Pid) -> Process {
        proc_homed(pid, CpuId(0))
    }

    #[test]
    fn push_get_and_live_tracking() {
        let mut t = ProcTable::new(1);
        for i in 0..5 {
            let pid = t.next_pid();
            assert_eq!(pid, Pid(i));
            t.push(proc_named(pid));
        }
        assert_eq!(t.len(), 5);
        assert_eq!(t.live_count(), 5);
        assert!(t.is_live(Pid(3)));
        assert!(t.get(Pid(9)).is_none());

        t.mark_dead(Pid(1));
        t.mark_dead(Pid(3));
        t.mark_dead(Pid(3)); // idempotent
        assert_eq!(t.live_count(), 3);
        assert!(!t.is_live(Pid(3)));
        assert!(t.get(Pid(3)).is_some(), "dead slots stay readable");
        let mut live: Vec<u32> = t.live().iter().map(|p| p.0).collect();
        live.sort_unstable();
        assert_eq!(live, vec![0, 2, 4]);
        t.assert_live_index_consistent();
    }

    #[test]
    fn set_home_moves_the_decay_bit_between_cpu_bitmaps() {
        let mut t = ProcTable::new(2);
        let pid = t.next_pid();
        t.push(proc_homed(pid, CpuId(0)));
        assert!(t.is_decay_active(pid));
        assert_eq!(t.decay_word(CpuId(0), 0) & 1, 1);
        assert_eq!(t.decay_word(CpuId(1), 0) & 1, 0);

        t.set_home(pid, CpuId(1));
        assert_eq!(t[pid].home, CpuId(1));
        assert!(t.is_decay_active(pid));
        assert_eq!(t.decay_word(CpuId(0), 0) & 1, 0);
        assert_eq!(t.decay_word(CpuId(1), 0) & 1, 1);
        t.assert_live_index_consistent();

        // An inactive bit stays inactive across a move.
        t.set_decay_active(pid, false);
        t.set_home(pid, CpuId(0));
        assert!(!t.is_decay_active(pid));
        assert_eq!(t.decay_word(CpuId(0), 0) & 1, 0);
        assert_eq!(t.decay_word(CpuId(1), 0) & 1, 0);
        t.assert_live_index_consistent();
    }
}
