//! The process table: a dense pid→slot map with a live-process index.
//!
//! Pids are minted densely and never reused, so the table is a plain
//! `Vec<Process>` indexed by [`Pid::index`]. On top of it sits a *live
//! index* — the set of not-yet-exited pids, maintained with O(1)
//! swap-removal — so the once-per-second `schedcpu` pass (and any other
//! whole-table walk) touches only live processes. A long-dead process
//! costs nothing per tick, per second, or per event.

use crate::pid::Pid;
use crate::process::Process;

/// Position sentinel for a pid that is not in the live index.
const DEAD: u32 = u32::MAX;

/// The simulated machine's process table.
#[derive(Default)]
pub struct ProcTable {
    slots: Vec<Process>,
    /// Pids of live (not exited) processes, unordered (swap-removal).
    live: Vec<Pid>,
    /// Per-pid position in `live`, or [`DEAD`].
    live_pos: Vec<u32>,
}

impl ProcTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// The pid the next [`ProcTable::push`] will occupy.
    pub fn next_pid(&self) -> Pid {
        Pid(self.slots.len() as u32)
    }

    /// Number of processes ever spawned (including exited ones).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when no process was ever spawned.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Insert a freshly spawned process. Its pid must be the next slot.
    pub fn push(&mut self, p: Process) {
        assert_eq!(p.pid, self.next_pid(), "pids are minted densely");
        self.live_pos.push(self.live.len() as u32);
        self.live.push(p.pid);
        self.slots.push(p);
    }

    /// Shared access by pid; `None` for a pid this table never minted.
    pub fn get(&self, pid: Pid) -> Option<&Process> {
        self.slots.get(pid.index())
    }

    /// Whether the process exists and has not exited.
    pub fn is_live(&self, pid: Pid) -> bool {
        self.live_pos
            .get(pid.index())
            .is_some_and(|&pos| pos != DEAD)
    }

    /// Number of live processes.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// The `i`-th live pid (unordered; stable across calls as long as no
    /// process dies in between).
    pub fn live_at(&self, i: usize) -> Pid {
        self.live[i]
    }

    /// The live pids, unordered.
    pub fn live(&self) -> &[Pid] {
        &self.live
    }

    /// Drop a process from the live index (on exit). Idempotent. O(1).
    pub fn mark_dead(&mut self, pid: Pid) {
        let i = pid.index();
        let pos = self.live_pos[i];
        if pos == DEAD {
            return;
        }
        self.live.swap_remove(pos as usize);
        if let Some(&moved) = self.live.get(pos as usize) {
            self.live_pos[moved.index()] = pos;
        }
        self.live_pos[i] = DEAD;
    }

    /// Brute-force check of the live index against the slot states;
    /// panics on any inconsistency (test support).
    pub fn assert_live_index_consistent(&self) {
        assert_eq!(self.live_pos.len(), self.slots.len());
        for (pos, &pid) in self.live.iter().enumerate() {
            assert_eq!(
                self.live_pos[pid.index()],
                pos as u32,
                "{pid} live position out of sync"
            );
        }
        let live_by_scan = self
            .slots
            .iter()
            .filter(|p| self.live_pos[p.pid.index()] != DEAD)
            .count();
        assert_eq!(live_by_scan, self.live.len(), "duplicate live entries");
    }
}

impl std::ops::Index<Pid> for ProcTable {
    type Output = Process;

    fn index(&self, pid: Pid) -> &Process {
        &self.slots[pid.index()]
    }
}

impl std::ops::IndexMut<Pid> for ProcTable {
    fn index_mut(&mut self, pid: Pid) -> &mut Process {
        &mut self.slots[pid.index()]
    }
}

impl std::fmt::Debug for ProcTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProcTable")
            .field("len", &self.slots.len())
            .field("live", &self.live.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::{IntervalTimer, PState};
    use alps_core::Nanos;

    fn proc_named(pid: Pid) -> Process {
        Process {
            pid,
            name: format!("p{}", pid.0),
            state: PState::Runnable,
            nice: 0,
            estcpu: 0.0,
            priority: 50,
            slptime: 0,
            cputime: Nanos::ZERO,
            visible_cputime: Nanos::ZERO,
            tickets: 1,
            pass: 0.0,
            burst_remaining: None,
            dispatched_at: Nanos::ZERO,
            kernel_boost: false,
            wake_token: 0,
            burst_token: 0,
            timer: IntervalTimer::default(),
            behavior: None,
            dispatches: 0,
            voluntary_switches: 0,
        }
    }

    #[test]
    fn push_get_and_live_tracking() {
        let mut t = ProcTable::new();
        for i in 0..5 {
            let pid = t.next_pid();
            assert_eq!(pid, Pid(i));
            t.push(proc_named(pid));
        }
        assert_eq!(t.len(), 5);
        assert_eq!(t.live_count(), 5);
        assert!(t.is_live(Pid(3)));
        assert!(t.get(Pid(9)).is_none());

        t.mark_dead(Pid(1));
        t.mark_dead(Pid(3));
        t.mark_dead(Pid(3)); // idempotent
        assert_eq!(t.live_count(), 3);
        assert!(!t.is_live(Pid(3)));
        assert!(t.get(Pid(3)).is_some(), "dead slots stay readable");
        let mut live: Vec<u32> = t.live().iter().map(|p| p.0).collect();
        live.sort_unstable();
        assert_eq!(live, vec![0, 2, 4]);
        t.assert_live_index_consistent();
    }
}
