//! The process table: a dense pid→slot map with a live-process index.
//!
//! Pids are minted densely and never reused, so the table is a plain
//! `Vec<Process>` indexed by [`Pid::index`]. On top of it sits a *live
//! index* — the set of not-yet-exited pids, maintained with O(1)
//! swap-removal — so the once-per-second `schedcpu` pass (and any other
//! whole-table walk) touches only live processes. A long-dead process
//! costs nothing per tick, per second, or per event.

use crate::pid::Pid;
use crate::process::Process;

/// Position sentinel for a pid that is not in the live index.
const DEAD: u32 = u32::MAX;

/// The simulated machine's process table.
#[derive(Default)]
pub struct ProcTable {
    slots: Vec<Process>,
    /// Pids of live (not exited) processes, unordered (swap-removal).
    live: Vec<Pid>,
    /// Per-pid position in `live`, or [`DEAD`].
    live_pos: Vec<u32>,
    /// Pid-indexed bitmap of processes the once-per-second `schedcpu`
    /// pass must visit: everything live except processes that have been
    /// asleep for more than one whole second (their decay is deferred to
    /// `updatepri` at wakeup, so `schedcpu` need not touch them at all).
    decay_active: Vec<u64>,
}

impl ProcTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// The pid the next [`ProcTable::push`] will occupy.
    pub fn next_pid(&self) -> Pid {
        Pid(self.slots.len() as u32)
    }

    /// Number of processes ever spawned (including exited ones).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when no process was ever spawned.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Insert a freshly spawned process. Its pid must be the next slot.
    pub fn push(&mut self, p: Process) {
        assert_eq!(p.pid, self.next_pid(), "pids are minted densely");
        self.live_pos.push(self.live.len() as u32);
        self.live.push(p.pid);
        let idx = p.pid.index();
        self.slots.push(p);
        if idx / 64 >= self.decay_active.len() {
            self.decay_active.push(0);
        }
        self.decay_active[idx / 64] |= 1 << (idx % 64);
    }

    /// Shared access by pid; `None` for a pid this table never minted.
    pub fn get(&self, pid: Pid) -> Option<&Process> {
        self.slots.get(pid.index())
    }

    /// Whether the process exists and has not exited.
    pub fn is_live(&self, pid: Pid) -> bool {
        self.live_pos
            .get(pid.index())
            .is_some_and(|&pos| pos != DEAD)
    }

    /// Number of live processes.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// The `i`-th live pid (unordered; stable across calls as long as no
    /// process dies in between).
    pub fn live_at(&self, i: usize) -> Pid {
        self.live[i]
    }

    /// The live pids, unordered.
    pub fn live(&self) -> &[Pid] {
        &self.live
    }

    /// Drop a process from the live index (on exit). Idempotent. O(1).
    pub fn mark_dead(&mut self, pid: Pid) {
        let i = pid.index();
        let pos = self.live_pos[i];
        if pos == DEAD {
            return;
        }
        self.live.swap_remove(pos as usize);
        if let Some(&moved) = self.live.get(pos as usize) {
            self.live_pos[moved.index()] = pos;
        }
        self.live_pos[i] = DEAD;
        self.set_decay_active(pid, false);
    }

    /// Mark whether `schedcpu` must visit this process. O(1).
    pub fn set_decay_active(&mut self, pid: Pid, active: bool) {
        let i = pid.index();
        let mask = 1u64 << (i % 64);
        if active {
            self.decay_active[i / 64] |= mask;
        } else {
            self.decay_active[i / 64] &= !mask;
        }
    }

    /// Whether `schedcpu` currently visits this process.
    pub fn is_decay_active(&self, pid: Pid) -> bool {
        let i = pid.index();
        self.decay_active
            .get(i / 64)
            .is_some_and(|w| w & (1 << (i % 64)) != 0)
    }

    /// Number of 64-bit words in the decay-active bitmap.
    pub fn decay_words(&self) -> usize {
        self.decay_active.len()
    }

    /// The `wi`-th word of the decay-active bitmap: bit `b` set means pid
    /// `wi*64 + b` is decay-active. Callers copy the word and iterate its
    /// set bits (`trailing_zeros` / `bits &= bits - 1`), so a pass that
    /// deactivates processes as it goes stays sound.
    pub fn decay_word(&self, wi: usize) -> u64 {
        self.decay_active[wi]
    }

    /// Brute-force check of the live index against the slot states;
    /// panics on any inconsistency (test support).
    pub fn assert_live_index_consistent(&self) {
        assert_eq!(self.live_pos.len(), self.slots.len());
        for (pos, &pid) in self.live.iter().enumerate() {
            assert_eq!(
                self.live_pos[pid.index()],
                pos as u32,
                "{pid} live position out of sync"
            );
        }
        let live_by_scan = self
            .slots
            .iter()
            .filter(|p| self.live_pos[p.pid.index()] != DEAD)
            .count();
        assert_eq!(live_by_scan, self.live.len(), "duplicate live entries");
        for p in &self.slots {
            if self.is_decay_active(p.pid) {
                assert!(
                    self.live_pos[p.pid.index()] != DEAD,
                    "{} decay-active but dead",
                    p.pid
                );
            }
        }
    }
}

impl std::ops::Index<Pid> for ProcTable {
    type Output = Process;

    fn index(&self, pid: Pid) -> &Process {
        &self.slots[pid.index()]
    }
}

impl std::ops::IndexMut<Pid> for ProcTable {
    fn index_mut(&mut self, pid: Pid) -> &mut Process {
        &mut self.slots[pid.index()]
    }
}

impl std::fmt::Debug for ProcTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProcTable")
            .field("len", &self.slots.len())
            .field("live", &self.live.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::{IntervalTimer, PState};
    use alps_core::Nanos;

    fn proc_named(pid: Pid) -> Process {
        Process {
            pid,
            name: format!("p{}", pid.0),
            state: PState::Runnable,
            nice: 0,
            estcpu: 0.0,
            priority: 50,
            slptime: 0,
            sleep_epoch: 0,
            cputime: Nanos::ZERO,
            visible_cputime: Nanos::ZERO,
            tickets: 1,
            pass: 0.0,
            burst_remaining: None,
            dispatched_at: Nanos::ZERO,
            kernel_boost: false,
            wake_token: 0,
            burst_token: 0,
            timer: IntervalTimer::default(),
            behavior: None,
            dispatches: 0,
            voluntary_switches: 0,
        }
    }

    #[test]
    fn push_get_and_live_tracking() {
        let mut t = ProcTable::new();
        for i in 0..5 {
            let pid = t.next_pid();
            assert_eq!(pid, Pid(i));
            t.push(proc_named(pid));
        }
        assert_eq!(t.len(), 5);
        assert_eq!(t.live_count(), 5);
        assert!(t.is_live(Pid(3)));
        assert!(t.get(Pid(9)).is_none());

        t.mark_dead(Pid(1));
        t.mark_dead(Pid(3));
        t.mark_dead(Pid(3)); // idempotent
        assert_eq!(t.live_count(), 3);
        assert!(!t.is_live(Pid(3)));
        assert!(t.get(Pid(3)).is_some(), "dead slots stay readable");
        let mut live: Vec<u32> = t.live().iter().map(|p| p.0).collect();
        live.sort_unstable();
        assert_eq!(live, vec![0, 2, 4]);
        t.assert_live_index_consistent();
    }
}
