//! The discrete-event simulation engine.
//!
//! [`Sim`] models a machine with M CPUs ([`SimConfig::cpus`], default 1 —
//! the paper's uniprocessor) running a 4.4BSD-style kernel scheduler (see
//! [`crate::sched`]): processes with pluggable [`Behavior`]s compete for
//! the CPUs under decay-usage priorities, a 100 Hz clock, a 100 ms
//! round-robin slice, timed sleeps on wait channels, interval timers with
//! pending-signal coalescing, and `SIGSTOP`/`SIGCONT` job control.
//! CPU-time accounting is event-exact (nanosecond granularity), both in
//! total and per CPU.
//!
//! ## SMP model
//!
//! Each CPU owns a ready queue and a dispatch slot. A process is *homed*
//! on one CPU (round-robin at spawn): its queue entry and its `schedcpu`
//! decay bitmap bit live there. Round-robin rotation is local to the home
//! queue; a CPU that would otherwise idle — or that must dispatch after
//! preempting for a strictly better waiter — claims the best-priority
//! process across all queues, scanning victims in the deterministic order
//! `cpu, cpu+1, …` (mod M) with ties kept local, and the claimed process
//! is re-homed to the thief ([`TraceKind::Steal`]). With M=1 the scan
//! only ever sees the one queue, so every schedule is byte-identical to
//! the pre-SMP simulator — the lockstep suites pin this down.
//!
//! Experiment drivers advance the simulation with [`Sim::run_until`] and
//! may mutate it (spawn processes, send signals) in between — this is how
//! the multi-application experiment of §4.1 phases groups in at 3-second
//! boundaries.
//!
//! ## Indexed hot path
//!
//! Per-event work is independent of the total process population: the
//! process table ([`crate::table::ProcTable`]) resolves pids in O(1) and
//! keeps a live-process index so the once-per-second `schedcpu` pass walks
//! only live processes; the decay-usage ready queue
//! ([`crate::sched::RunQueue`]) supports O(1) insert/remove/pop; and the
//! timer/burst/wakeup machinery is a hierarchical timing-wheel event
//! queue with O(1) schedule/pop, so quiescent processes cost nothing per
//! tick. Set [`SimConfig::runqueue`] to [`RunQueueKind::Linear`] (or
//! [`SimConfig::event_queue`] to [`EventQueueKind::Heap`]) to run the
//! seed implementations instead — the lockstep tests and the bench
//! harness use them to pin trace equivalence and quantify the speedups.

use std::num::NonZeroUsize;

use alps_core::Nanos;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::cpu::CpuId;
use crate::event::{EventKind, EventQueue, EventQueueKind};
use crate::pid::Pid;
use crate::process::{Behavior, IntervalTimer, PState, ProcView, Process, Step};
use crate::sched::{self, ReadyQueue, RunQueueKind};
use crate::table::ProcTable;
use crate::trace::{Trace, TraceKind};

/// How CPU consumption becomes *visible* to user-level readers
/// (`getrusage`, `/proc`, `kvm`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CpuAccounting {
    /// Readers see the event-exact nanosecond accounting (modern kernels
    /// with switch-time charging, and the workspace default).
    #[default]
    Exact,
    /// Readers see classic statclock sampling: one whole tick is charged
    /// to whichever process is running when the clock interrupt lands.
    /// Unbiased in expectation but quantized to ticks — the accounting the
    /// historical BSDs exposed, provided for the measurement-granularity
    /// ablation (`repro accounting`). Internal scheduling physics always
    /// uses exact accounting.
    TickSampled,
}

/// Which in-kernel scheduling policy the simulated machine runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelPolicy {
    /// The 4.4BSD decay-usage scheduler the paper ran on (default).
    #[default]
    DecayUsage,
    /// In-kernel stride scheduling (Waldspurger & Weihl, the paper's ref
    /// \[26\]): deterministic proportional share by tickets, used as the
    /// baseline comparator for ALPS (`repro baseline`). Processes carry
    /// tickets (see [`Sim::spawn_tickets`]); the CPU always runs the
    /// smallest-pass runnable client.
    Stride,
}

/// Tunables of the simulated kernel. Defaults match FreeBSD 4.x on the
/// paper's hardware: `hz = 100` (10 ms ticks), 100 ms round-robin slice,
/// priority recomputation every 4 ticks, `schedcpu` every second.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Clock interrupt period (`1/hz`).
    pub tick: Nanos,
    /// Round-robin slice for equal-priority processes.
    pub rr_slice: Nanos,
    /// Recompute the running process's priority every this many ticks.
    pub priority_recalc_ticks: u64,
    /// Seed for the jitter RNG (initial `estcpu` perturbation). Two runs
    /// with the same seed are identical; the paper averages 3 runs, which
    /// we emulate with 3 seeds.
    pub seed: u64,
    /// Magnitude of the random initial `estcpu` given to each spawned
    /// process, emulating the varied short history a freshly forked process
    /// has on a live system. Zero for strict determinism.
    pub spawn_estcpu_jitter: f64,
    /// Granularity of the CPU times user-level readers observe.
    pub accounting: CpuAccounting,
    /// Number of CPUs (M). The paper's machine (and every experiment in
    /// it) has M=1, the default; values above 1 give each CPU its own
    /// ready queue and dispatch slot with deterministic work stealing
    /// (see the module docs and `repro smp`).
    pub cpus: NonZeroUsize,
    /// In-kernel scheduling policy.
    pub policy: KernelPolicy,
    /// Ready-queue implementation for the decay-usage policy. The default
    /// indexed queue is O(1) per operation; [`RunQueueKind::Linear`] keeps
    /// the pre-index linear-scan queue for lockstep comparison and
    /// benchmarking. Both produce identical schedules.
    pub runqueue: RunQueueKind,
    /// Event-queue implementation for the timer/burst/wakeup machinery.
    /// The default timing wheel is O(1) per schedule/pop;
    /// [`EventQueueKind::Heap`] keeps the seed binary heap for lockstep
    /// comparison and benchmarking. Both fire identical event streams.
    pub event_queue: EventQueueKind,
    /// Pre-allocation hint for the event queue: the expected number of
    /// simultaneously pending events. Large populations keep roughly one
    /// timer/burst/wakeup event per process pending, so drivers that know
    /// N should set this to at least N — regrowth is pure overhead on the
    /// hot path. Purely a capacity hint: it never affects behavior.
    pub event_capacity: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            tick: Nanos::from_millis(10),
            rr_slice: Nanos::from_millis(100),
            priority_recalc_ticks: 4,
            seed: 0,
            spawn_estcpu_jitter: 0.0,
            accounting: CpuAccounting::Exact,
            cpus: NonZeroUsize::MIN,
            policy: KernelPolicy::DecayUsage,
            runqueue: RunQueueKind::Indexed,
            event_queue: EventQueueKind::Wheel,
            event_capacity: 64,
        }
    }
}

/// The simulated machine.
pub struct Sim {
    cfg: SimConfig,
    now: Nanos,
    last_account: Nanos,
    events: EventQueue,
    procs: ProcTable,
    /// One decay-usage ready queue per CPU (`runqs[cpu]`). A process is
    /// queued only on its home CPU's queue.
    runqs: Vec<ReadyQueue>,
    /// Runnable set under [`KernelPolicy::Stride`] (min-pass scan; the
    /// stride policy keeps a single global pool rather than per-CPU
    /// queues — pass values are globally comparable).
    stride_q: Vec<Pid>,
    /// The process on each CPU (`running[cpu]`).
    running: Vec<Option<Pid>>,
    loadavg: f64,
    /// Count of `schedcpu` passes performed; sleepers dropped from the
    /// decay-active set stamp this into `Process::sleep_epoch` so wakeup
    /// can reconstruct how many whole seconds they slept through.
    schedcpu_epoch: u64,
    tick_count: u64,
    idle_time: Nanos,
    ctx_switches: u64,
    /// Cross-queue claims: dispatches of a process homed on another CPU.
    steals: u64,
    rng: SmallRng,
    trace: Option<Trace>,
}

impl std::fmt::Debug for Sim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sim")
            .field("now", &self.now)
            .field("procs", &self.procs.len())
            .field("running", &self.running)
            .field("loadavg", &self.loadavg)
            .finish_non_exhaustive()
    }
}

impl Sim {
    /// A fresh machine at time zero.
    pub fn new(cfg: SimConfig) -> Self {
        assert!(cfg.tick > Nanos::ZERO, "tick must be positive");
        let cpus = cfg.cpus.get();
        let mut events = EventQueue::with_kind(cfg.event_queue, cfg.event_capacity);
        events.schedule(cfg.tick, EventKind::Tick);
        events.schedule(Nanos::SECOND, EventKind::SchedCpu);
        Sim {
            cfg,
            now: Nanos::ZERO,
            last_account: Nanos::ZERO,
            events,
            procs: ProcTable::new(cpus),
            runqs: (0..cpus).map(|_| ReadyQueue::new(cfg.runqueue)).collect(),
            stride_q: Vec::new(),
            running: vec![None; cpus],
            loadavg: 0.0,
            schedcpu_epoch: 0,
            tick_count: 0,
            idle_time: Nanos::ZERO,
            ctx_switches: 0,
            steals: 0,
            rng: SmallRng::seed_from_u64(cfg.seed),
            trace: None,
        }
    }

    /// Start recording an execution trace, retaining at most `capacity`
    /// events (see [`crate::trace`]).
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(Trace::new(capacity));
    }

    /// The recorded trace, if enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    fn trace_push(&mut self, pid: Pid, kind: TraceKind) {
        if let Some(t) = self.trace.as_mut() {
            t.push(self.now, pid, kind);
        }
    }

    /// Current simulated wall-clock time.
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// The configuration in effect.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Number of CPUs.
    pub fn cpus(&self) -> usize {
        self.cfg.cpus.get()
    }

    /// The process currently on the given CPU.
    pub fn running_on(&self, cpu: CpuId) -> Option<Pid> {
        self.running[cpu.index()]
    }

    /// Total CPU-idle time, summed over CPUs (an SMP machine can idle
    /// several CPU-seconds per wall second).
    pub fn idle_time(&self) -> Nanos {
        self.idle_time
    }

    /// Total context switches performed.
    pub fn context_switches(&self) -> u64 {
        self.ctx_switches
    }

    /// Total work steals: dispatches that claimed a process off another
    /// CPU's ready queue. Always zero on a one-CPU machine.
    pub fn steals(&self) -> u64 {
        self.steals
    }

    /// Current 1-minute load average.
    pub fn loadavg(&self) -> f64 {
        self.loadavg
    }

    /// Events currently pending in the event queue (including parked
    /// far-future events and not-yet-reaped stale-token entries). Useful
    /// for sizing [`SimConfig::event_capacity`] against a real workload.
    pub fn pending_events(&self) -> usize {
        self.events.len()
    }

    /// Number of processes ever spawned (including exited ones).
    pub fn process_count(&self) -> usize {
        self.procs.len()
    }

    /// Number of processes that have not exited.
    pub fn live_count(&self) -> usize {
        self.procs.live_count()
    }

    /// Spawn a process. It is made runnable immediately (or enters whatever
    /// state its first [`Step`] dictates).
    pub fn spawn(&mut self, name: impl Into<String>, behavior: Box<dyn Behavior>) -> Pid {
        self.spawn_nice(name, 0, behavior)
    }

    /// Spawn with an explicit stride-ticket count (only meaningful under
    /// [`KernelPolicy::Stride`]; ignored by the decay-usage policy).
    pub fn spawn_tickets(
        &mut self,
        name: impl Into<String>,
        tickets: u64,
        behavior: Box<dyn Behavior>,
    ) -> Pid {
        assert!(tickets > 0, "tickets must be positive");
        let pid = self.spawn_nice(name, 0, behavior);
        self.procs[pid].tickets = tickets;
        pid
    }

    /// Spawn with an explicit nice value.
    pub fn spawn_nice(
        &mut self,
        name: impl Into<String>,
        nice: i8,
        behavior: Box<dyn Behavior>,
    ) -> Pid {
        let pid = self.procs.next_pid();
        let estcpu = if self.cfg.spawn_estcpu_jitter > 0.0 {
            self.rng.gen_range(0.0..self.cfg.spawn_estcpu_jitter)
        } else {
            0.0
        };
        // Home CPUs are dealt round-robin in spawn order (always cpu0 on
        // a one-CPU machine).
        let home = CpuId((pid.index() % self.cpus()) as u32);
        self.procs.push(Process {
            pid,
            name: name.into(),
            state: PState::Runnable, // placeholder until the first step
            nice,
            estcpu,
            priority: sched::user_priority(estcpu, nice),
            slptime: 0,
            sleep_epoch: 0,
            cputime: Nanos::ZERO,
            cputime_per_cpu: vec![Nanos::ZERO; self.cpus()],
            home,
            migrations: 0,
            burst_remaining: Some(Nanos::ZERO),
            dispatched_at: self.now,
            visible_cputime: Nanos::ZERO,
            tickets: 1,
            pass: self.global_pass(),
            kernel_boost: false,
            wake_token: 0,
            burst_token: 0,
            timer: IntervalTimer::default(),
            behavior: Some(behavior),
            dispatches: 0,
            voluntary_switches: 0,
        });
        let step = self.next_step(pid);
        self.apply_off_cpu_step(pid, step);
        pid
    }

    /// Read-only view of a process; `None` for a pid this machine never
    /// spawned. Valid after exit (post-mortem accounting).
    ///
    /// This is the query surface for drivers and instrumentation:
    ///
    /// ```
    /// # use alps_core::Nanos;
    /// # use kernsim::{ComputeBound, Sim, SimConfig};
    /// # let mut sim = Sim::new(SimConfig::default());
    /// # let pid = sim.spawn("w", Box::new(ComputeBound));
    /// # sim.run_until(Nanos::from_secs(1));
    /// let p = sim.proc(pid).expect("spawned above");
    /// assert_eq!(p.cputime(), Nanos::from_secs(1));
    /// assert!(!p.is_blocked());
    /// ```
    pub fn proc(&self, pid: Pid) -> Option<ProcView<'_>> {
        self.procs.get(pid).map(|p| ProcView {
            proc: p,
            accounting: self.cfg.accounting,
        })
    }

    /// Advance simulated time to `deadline`, processing every event due on
    /// the way. Returns the number of events processed.
    pub fn run_until(&mut self, deadline: Nanos) -> u64 {
        assert!(deadline >= self.now, "cannot run backwards");
        self.fixup_dispatch();
        let mut handled = 0;
        while let Some(ev) = self.events.pop_due(deadline) {
            debug_assert!(ev.at >= self.now, "event from the past");
            self.advance_to(ev.at);
            self.now = ev.at;
            self.handle(ev.kind);
            // A wakeup that beats the running process preempts right away,
            // as on a return from interrupt in BSD.
            self.fixup_dispatch();
            handled += 1;
        }
        self.advance_to(deadline);
        self.now = deadline;
        handled
    }

    /// Deliver `SIGSTOP`: remove the process from contention wherever it is.
    pub fn sigstop(&mut self, pid: Pid) {
        match self.procs[pid].state {
            PState::Runnable => {
                self.remove_runnable(pid);
                self.procs[pid].state = PState::Stopped {
                    resume_sleep_until: None,
                    was_awaiting_timer: false,
                };
                self.trace_push(pid, TraceKind::Stop);
            }
            PState::Running => {
                // A driver, or a behavior running on another CPU, stops a
                // process that currently holds a CPU.
                let cpu = self.cpu_of(pid).expect("running process has a CPU");
                let p = &mut self.procs[pid];
                p.burst_token = p.burst_token.wrapping_add(1);
                p.state = PState::Stopped {
                    resume_sleep_until: None,
                    was_awaiting_timer: false,
                };
                self.running[cpu] = None;
                self.trace_push(pid, TraceKind::Stop);
                self.context_switch(cpu);
            }
            PState::Sleeping { until } => {
                let p = &mut self.procs[pid];
                p.wake_token = p.wake_token.wrapping_add(1); // invalidate Wake
                p.state = PState::Stopped {
                    resume_sleep_until: until,
                    was_awaiting_timer: until.is_none(),
                };
                self.trace_push(pid, TraceKind::Stop);
            }
            PState::Stopped { .. } | PState::Exited => {}
        }
    }

    /// Deliver `SIGCONT`: return a stopped process to where it left off —
    /// back to its interrupted sleep if that hasn't expired, otherwise on
    /// to its next step.
    pub fn sigcont(&mut self, pid: Pid) {
        let PState::Stopped {
            resume_sleep_until,
            was_awaiting_timer,
        } = self.procs[pid].state
        else {
            return;
        };
        self.trace_push(pid, TraceKind::Continue);
        if was_awaiting_timer {
            let pending = self.procs[pid].timer.pending;
            if pending {
                self.procs[pid].timer.pending = false;
                self.procs[pid].kernel_boost = true;
                let step = self.next_step(pid);
                self.apply_off_cpu_step(pid, step);
            } else {
                self.procs[pid].state = PState::Sleeping { until: None };
            }
        } else if let Some(until) = resume_sleep_until {
            if until > self.now {
                let p = &mut self.procs[pid];
                p.wake_token = p.wake_token.wrapping_add(1);
                let token = p.wake_token;
                p.state = PState::Sleeping { until: Some(until) };
                self.events.schedule(until, EventKind::Wake { pid, token });
            } else {
                // The sleep expired while stopped: the step is complete.
                self.procs[pid].kernel_boost = true;
                let step = self.next_step(pid);
                self.apply_off_cpu_step(pid, step);
            }
        } else {
            // Was runnable (or running) when stopped: resume its burst.
            self.make_runnable(pid);
        }
    }

    /// Forcibly terminate a process from the driver (SIGKILL analogue).
    pub fn terminate(&mut self, pid: Pid) {
        match self.procs[pid].state {
            PState::Exited => return,
            PState::Runnable => {
                self.remove_runnable(pid);
            }
            PState::Running => {
                let cpu = self.cpu_of(pid).expect("running process has a CPU");
                self.running[cpu] = None;
            }
            _ => {}
        }
        let p = &mut self.procs[pid];
        p.wake_token = p.wake_token.wrapping_add(1);
        p.burst_token = p.burst_token.wrapping_add(1);
        p.timer.armed = false;
        p.state = PState::Exited;
        self.procs.mark_dead(pid);
        self.trace_push(pid, TraceKind::Exit);
        self.fixup_dispatch();
    }

    /// Brute-force cross-check of every index against the ground-truth
    /// process states: the live index, the ready queue(s), and the CPU
    /// assignments must all agree with a full scan. Panics on any
    /// inconsistency. Test support — O(N·queues), never on the hot path.
    #[doc(hidden)]
    pub fn assert_index_consistent(&self) {
        self.procs.assert_live_index_consistent();
        let mut runnable = 0usize;
        for i in 0..self.procs.len() {
            let pid = Pid(i as u32);
            let p = &self.procs[pid];
            assert_eq!(
                self.procs.is_live(pid),
                !matches!(p.state, PState::Exited),
                "{pid}: live index disagrees with state {:?}",
                p.state
            );
            let queued = match self.cfg.policy {
                KernelPolicy::DecayUsage => {
                    let on_home = self.runqs[p.home.index()].contains(pid);
                    for (c, q) in self.runqs.iter().enumerate() {
                        assert!(
                            c == p.home.index() || !q.contains(pid),
                            "{pid} queued on cpu{c}, but home is {}",
                            p.home
                        );
                    }
                    on_home
                }
                KernelPolicy::Stride => self.stride_q.contains(&pid),
            };
            match p.state {
                PState::Runnable => {
                    assert!(queued, "{pid} runnable but not queued");
                    assert!(self.cpu_of(pid).is_none(), "{pid} runnable yet on a CPU");
                    runnable += 1;
                }
                PState::Running => {
                    assert!(!queued, "{pid} running yet still queued");
                    assert!(self.cpu_of(pid).is_some(), "{pid} running but on no CPU");
                }
                _ => assert!(!queued, "{pid} queued in state {:?}", p.state),
            }
        }
        assert_eq!(
            self.runnable_count(),
            runnable,
            "ready-queue length disagrees with a full scan"
        );
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    /// Charge elapsed time to the running process (or to idle).
    fn advance_to(&mut self, t: Nanos) {
        debug_assert!(t >= self.last_account);
        let dt = t - self.last_account;
        if dt == Nanos::ZERO {
            return;
        }
        let tick = self.cfg.tick.as_f64();
        // `pass` is only ever read by the stride policy; skip the float
        // work on the decay-usage hot path.
        let stride = self.cfg.policy == KernelPolicy::Stride;
        for cpu in 0..self.running.len() {
            match self.running[cpu] {
                Some(pid) => {
                    let p = &mut self.procs[pid];
                    p.cputime += dt;
                    p.cputime_per_cpu[cpu] += dt;
                    // Continuous-time estcpu charging: one unit per tick
                    // of CPU.
                    p.estcpu = (p.estcpu + dt.as_f64() / tick).min(sched::ESTCPU_MAX);
                    if stride {
                        p.pass += sched::stride_advance(p.tickets, dt.as_f64());
                    }
                    if let Some(r) = p.burst_remaining.as_mut() {
                        *r = r.saturating_sub(dt);
                    }
                }
                None => self.idle_time += dt,
            }
        }
        self.last_account = t;
    }

    fn handle(&mut self, kind: EventKind) {
        match kind {
            EventKind::Tick => self.handle_tick(),
            EventKind::SchedCpu => self.handle_schedcpu(),
            EventKind::Wake { pid, token } => self.handle_wake(pid, token),
            EventKind::TimerFire { pid, token } => self.handle_timer_fire(pid, token),
            EventKind::BurstDone { pid, token } => self.handle_burst_done(pid, token),
        }
    }

    fn handle_tick(&mut self) {
        self.tick_count += 1;
        self.events
            .schedule(self.now + self.cfg.tick, EventKind::Tick);
        for cpu in 0..self.running.len() {
            let Some(pid) = self.running[cpu] else {
                continue;
            };
            // statclock: charge a whole tick to whoever holds the CPU now.
            let tick = self.cfg.tick;
            self.procs[pid].visible_cputime += tick;
            if self
                .tick_count
                .is_multiple_of(self.cfg.priority_recalc_ticks)
            {
                self.resetpriority(pid);
            }
            match self.cfg.policy {
                KernelPolicy::DecayUsage => {
                    let p = &self.procs[pid];
                    // roundrobin(): rotate among equal-or-better priorities
                    // on the CPU's own queue once the slice expires. (A
                    // strictly better waiter anywhere never waits this
                    // long — fixup_dispatch preempts for it immediately.)
                    if self.now - p.dispatched_at >= self.cfg.rr_slice {
                        if let Some(best) = self.runqs[cpu].best_priority() {
                            if best <= p.priority {
                                self.preempt(cpu);
                            }
                        }
                    }
                }
                KernelPolicy::Stride => {
                    // Stride switches at quantum (tick) granularity: if a
                    // queued client now has the smallest pass, rotate.
                    let my_pass = self.procs[pid].pass;
                    let best = self
                        .stride_q
                        .iter()
                        .map(|&q| self.procs[q].pass)
                        .fold(f64::INFINITY, f64::min);
                    if best < my_pass {
                        self.preempt(cpu);
                    }
                }
            }
        }
    }

    /// Enforce the dispatch invariant: every CPU runs one of the best
    /// runnable processes; a strictly better arrival preempts the
    /// worst-priority running process immediately.
    fn fixup_dispatch(&mut self) {
        // Fill idle CPUs first (work conservation).
        for cpu in 0..self.running.len() {
            if self.running[cpu].is_none() && self.runnable_count() > 0 {
                self.context_switch(cpu);
            }
        }
        // Decay-usage: preempt while the queue holds something strictly
        // better than the worst running process. (Stride preempts only at
        // tick boundaries, in handle_tick.)
        if self.cfg.policy != KernelPolicy::DecayUsage {
            return;
        }
        loop {
            let Some(best) = self.best_queued_priority() else {
                return;
            };
            let worst = (0..self.running.len())
                .filter_map(|cpu| self.running[cpu].map(|pid| (self.procs[pid].priority, cpu)))
                .max();
            match worst {
                Some((prio, cpu)) if best < prio => self.preempt(cpu),
                _ => return,
            }
        }
    }

    /// The best priority queued on any CPU's ready queue.
    fn best_queued_priority(&self) -> Option<u8> {
        self.runqs.iter().filter_map(|q| q.best_priority()).min()
    }

    /// Number of queued runnable processes under the active policy.
    fn runnable_count(&self) -> usize {
        match self.cfg.policy {
            KernelPolicy::DecayUsage => self.runqs.iter().map(|q| q.len()).sum(),
            KernelPolicy::Stride => self.stride_q.len(),
        }
    }

    fn handle_schedcpu(&mut self) {
        self.events
            .schedule(self.now + Nanos::SECOND, EventKind::SchedCpu);
        self.schedcpu_epoch += 1;
        let epoch = self.schedcpu_epoch;
        let nrun = self.runnable_count() + self.running.iter().flatten().count();
        self.loadavg = sched::loadavg_step(self.loadavg, nrun);
        let decay = sched::decay_factor(self.loadavg);
        // Only decay-active processes are visited: the dead cost nothing,
        // and a sleeper is touched exactly once — its first whole second
        // asleep decays it, stamps `sleep_epoch`, and drops it from the
        // set; `updatepri` at wakeup replays the seconds skipped. A pool
        // of long-idle workers therefore costs O(runnable), not O(live),
        // per second. Each CPU's pass walks its own bitmap — exactly the
        // processes homed there — word-wise in pid order (with one CPU
        // that is a single bitmap, the pre-SMP walk). Membership is
        // stable during the walk (nothing here exits or migrates, and
        // the pass only clears bits it has copied out).
        for cpu in 0..self.cpus() {
            let cid = CpuId(cpu as u32);
            for wi in 0..self.procs.decay_words(cid) {
                let mut bits = self.procs.decay_word(cid, wi);
                while bits != 0 {
                    let pid = Pid(wi as u32 * 64 + bits.trailing_zeros());
                    bits &= bits - 1;
                    let (was_runnable, deactivate) = {
                        let p = &mut self.procs[pid];
                        match p.state {
                            PState::Exited => continue, // unreachable: exit clears the bit
                            PState::Sleeping { .. } | PState::Stopped { .. } => {
                                // First whole second asleep: count it, decay
                                // below, then defer to updatepri at wakeup
                                // (as in BSD, which skips `slptime > 1`).
                                p.slptime = p.slptime.saturating_add(1);
                                p.sleep_epoch = epoch;
                                (false, true)
                            }
                            PState::Runnable => (true, false),
                            PState::Running => (false, false),
                        }
                    };
                    if deactivate {
                        self.procs.set_decay_active(pid, false);
                    }
                    let p = &mut self.procs[pid];
                    p.estcpu *= decay;
                    let new_prio = sched::user_priority(p.estcpu, p.nice);
                    if new_prio != p.priority {
                        p.priority = new_prio;
                        // Under stride the runnable set lives in stride_q and is
                        // ordered by pass, not priority — nothing to requeue.
                        if was_runnable && self.cfg.policy == KernelPolicy::DecayUsage {
                            self.runqs[cpu].remove(pid);
                            self.runqs[cpu].push(pid, new_prio);
                        }
                    }
                }
            }
        }
        // Priority shifts under the running process are picked up by the
        // post-event fixup_dispatch.
    }

    fn handle_wake(&mut self, pid: Pid, token: u64) {
        let p = &self.procs[pid];
        if p.wake_token != token {
            return; // stale
        }
        if !matches!(p.state, PState::Sleeping { until: Some(_) }) {
            return;
        }
        // Waking from a wait channel: kernel-priority dispatch boost.
        self.procs[pid].kernel_boost = true;
        let step = self.next_step(pid);
        self.apply_off_cpu_step(pid, step);
    }

    fn handle_timer_fire(&mut self, pid: Pid, token: u64) {
        {
            let t = &mut self.procs[pid].timer;
            if !t.armed || t.token != token {
                return; // stale arming epoch
            }
            t.next_fire += t.period;
            let (at, tok) = (t.next_fire, t.token);
            self.events
                .schedule(at, EventKind::TimerFire { pid, token: tok });
        }
        match self.procs[pid].state {
            PState::Sleeping { until: None } => {
                // The process was waiting for exactly this: its step is done.
                self.procs[pid].kernel_boost = true;
                let step = self.next_step(pid);
                self.apply_off_cpu_step(pid, step);
            }
            PState::Exited => {}
            _ => {
                // Busy, starved, or stopped: the signal stays pending and is
                // coalesced with any later fires (§4.2's missed quanta).
                self.procs[pid].timer.pending = true;
            }
        }
    }

    fn handle_burst_done(&mut self, pid: Pid, token: u64) {
        let p = &self.procs[pid];
        if p.burst_token != token || !matches!(p.state, PState::Running) {
            return; // stale
        }
        let cpu = self.cpu_of(pid).expect("running process has a CPU");
        debug_assert_eq!(p.burst_remaining, Some(Nanos::ZERO));
        let step = self.next_step(pid);
        match step {
            Step::Compute(d) => {
                assert!(d > Nanos::ZERO, "zero-length burst");
                // Continue on the CPU without a context switch: the process
                // simply keeps executing its next stretch of work.
                let p = &mut self.procs[pid];
                p.burst_remaining = Some(d);
                p.burst_token = p.burst_token.wrapping_add(1);
                let tok = p.burst_token;
                self.events
                    .schedule(self.now + d, EventKind::BurstDone { pid, token: tok });
            }
            Step::ComputeForever => {
                self.procs[pid].burst_remaining = None;
            }
            blocking => {
                let p = &mut self.procs[pid];
                p.voluntary_switches += 1;
                p.burst_token = p.burst_token.wrapping_add(1);
                self.running[cpu] = None;
                self.apply_off_cpu_step(pid, blocking);
                self.context_switch(cpu);
            }
        }
    }

    /// Ask the behavior for its next step, resolving pending timer fires
    /// (an `AwaitTimer` with a pending fire completes immediately).
    fn next_step(&mut self, pid: Pid) -> Step {
        loop {
            let mut behavior = self.procs[pid]
                .behavior
                .take()
                .expect("behavior re-entered for the same process");
            let step = behavior.on_ready(&mut SimCtl { sim: self, me: pid });
            self.procs[pid].behavior = Some(behavior);
            if step == Step::AwaitTimer {
                let t = &mut self.procs[pid].timer;
                assert!(t.armed, "AwaitTimer with no armed interval timer");
                if t.pending {
                    t.pending = false;
                    continue; // the wait completes instantly
                }
            }
            return step;
        }
    }

    /// Apply a step for a process that is not on the CPU (spawn, wakeup,
    /// or just taken off after a burst).
    fn apply_off_cpu_step(&mut self, pid: Pid, step: Step) {
        match step {
            Step::Compute(d) => {
                assert!(d > Nanos::ZERO, "zero-length burst");
                self.procs[pid].burst_remaining = Some(d);
                self.make_runnable(pid);
            }
            Step::ComputeForever => {
                self.procs[pid].burst_remaining = None;
                self.make_runnable(pid);
            }
            Step::Sleep(d) => {
                assert!(d > Nanos::ZERO, "zero-length sleep");
                let p = &mut self.procs[pid];
                p.kernel_boost = false;
                p.wake_token = p.wake_token.wrapping_add(1);
                let token = p.wake_token;
                let until = self.now + d;
                p.state = PState::Sleeping { until: Some(until) };
                self.events.schedule(until, EventKind::Wake { pid, token });
                self.trace_push(pid, TraceKind::Block);
            }
            Step::AwaitTimer => {
                // Pending fires were consumed in next_step.
                let p = &mut self.procs[pid];
                p.kernel_boost = false;
                p.state = PState::Sleeping { until: None };
                self.trace_push(pid, TraceKind::Block);
            }
            Step::Exit => {
                let p = &mut self.procs[pid];
                p.kernel_boost = false;
                p.timer.armed = false;
                p.state = PState::Exited;
                self.procs.mark_dead(pid);
                self.trace_push(pid, TraceKind::Exit);
            }
        }
    }

    /// Put a process on the run queue after (re)computing its priority,
    /// applying the retroactive sleep decay of `updatepri`.
    fn make_runnable(&mut self, pid: Pid) {
        let loadavg = self.loadavg;
        let epoch = self.schedcpu_epoch;
        // A sleeper is dropped from the decay-active set on its first
        // whole second asleep; the `schedcpu` passes it slept through
        // afterwards are reconstructed here from the epoch counter.
        let missed = if self.procs.is_decay_active(pid) {
            0
        } else {
            epoch - self.procs[pid].sleep_epoch
        };
        self.procs.set_decay_active(pid, true);
        let p = &mut self.procs[pid];
        let slept = p.slptime.saturating_add(missed.min(u32::MAX as u64) as u32);
        if slept > 0 {
            p.estcpu = sched::updatepri(p.estcpu, loadavg, slept);
            p.slptime = 0;
        }
        p.priority = sched::user_priority(p.estcpu, p.nice);
        p.state = PState::Runnable;
        // A fresh sleep-waker is queued at the kernel sleep priority so it
        // wins the dispatch immediately (the BSD return-from-tsleep path);
        // p.priority keeps the user priority its subsequent CPU time is
        // judged by.
        let prio = if p.kernel_boost {
            sched::PSLEEP.min(p.priority)
        } else {
            p.priority
        };
        match self.cfg.policy {
            KernelPolicy::DecayUsage => {
                let home = self.procs[pid].home.index();
                self.runqs[home].push(pid, prio);
            }
            KernelPolicy::Stride => {
                // A client rejoining after a sleep must not cash in pass
                // credit accrued while absent (the stride re-join rule).
                let floor = self.global_pass();
                let p = &mut self.procs[pid];
                p.pass = p.pass.max(floor);
                self.stride_q.push(pid);
            }
        }
        self.trace_push(pid, TraceKind::Wake);
        // If a CPU is idle, dispatch right away; a preemption of a worse
        // running process happens in the post-event fixup_dispatch (which
        // also covers driver-initiated wakeups at the top of run_until).
        if let Some(cpu) = (0..self.running.len()).find(|&c| self.running[c].is_none()) {
            self.context_switch(cpu);
        }
    }

    /// Take the process off the given CPU, requeue it, and dispatch the
    /// best runnable process (`mi_switch` after `roundrobin`/`need_resched`).
    fn preempt(&mut self, cpu: usize) {
        if let Some(pid) = self.running[cpu].take() {
            let p = &mut self.procs[pid];
            p.burst_token = p.burst_token.wrapping_add(1);
            p.priority = sched::user_priority(p.estcpu, p.nice);
            p.state = PState::Runnable;
            let prio = p.priority;
            match self.cfg.policy {
                // A preempted process stays homed on the CPU it ran on
                // (its home: dispatch re-homes on steal).
                KernelPolicy::DecayUsage => self.runqs[cpu].push(pid, prio),
                KernelPolicy::Stride => self.stride_q.push(pid),
            }
            self.trace_push(
                pid,
                TraceKind::Preempt {
                    cpu: CpuId(cpu as u32),
                },
            );
        }
        self.context_switch(cpu);
    }

    /// The smallest pass among runnable and running clients — stride's
    /// global virtual time, used as the re-join floor for sleepers.
    fn global_pass(&self) -> f64 {
        let min = self
            .stride_q
            .iter()
            .copied()
            .chain(self.running.iter().flatten().copied())
            .map(|pid| self.procs[pid].pass)
            .fold(f64::INFINITY, f64::min);
        if min.is_finite() {
            min
        } else {
            0.0
        }
    }

    /// Pop the runnable client the active policy would dispatch next on
    /// the given CPU.
    ///
    /// Under decay-usage this scans the per-CPU queues in the
    /// deterministic victim order `cpu, cpu+1, … mod M`, taking the
    /// strictly best priority found; ties keep the earliest queue
    /// scanned, so the CPU's own queue wins them (affinity). Taking a
    /// process off another CPU's queue is a work steal: the process is
    /// re-homed here and a [`TraceKind::Steal`] is recorded. With one
    /// CPU the scan degenerates to `runqs[0].pop_best()` and the steal
    /// path is unreachable.
    fn pop_best_runnable(&mut self, cpu: usize) -> Option<Pid> {
        match self.cfg.policy {
            KernelPolicy::DecayUsage => {
                let m = self.runqs.len();
                let mut best: Option<(u8, usize)> = None;
                for j in 0..m {
                    let q = (cpu + j) % m;
                    if let Some(prio) = self.runqs[q].best_priority() {
                        if best.is_none_or(|(bp, _)| prio < bp) {
                            best = Some((prio, q));
                        }
                    }
                }
                let (_, q) = best?;
                let pid = self.runqs[q].pop_best().map(|(pid, _)| pid).expect(
                    "queue reported a best priority a moment ago and nothing ran in between",
                );
                if q != cpu {
                    self.steals += 1;
                    self.procs[pid].migrations += 1;
                    self.procs.set_home(pid, CpuId(cpu as u32));
                    self.trace_push(
                        pid,
                        TraceKind::Steal {
                            from: CpuId(q as u32),
                            to: CpuId(cpu as u32),
                        },
                    );
                }
                Some(pid)
            }
            KernelPolicy::Stride => {
                let (idx, _) = self.stride_q.iter().enumerate().min_by(|(_, a), (_, b)| {
                    let pa = self.procs[**a].pass;
                    let pb = self.procs[**b].pass;
                    pa.total_cmp(&pb)
                })?;
                Some(self.stride_q.swap_remove(idx))
            }
        }
    }

    /// Remove a process from whichever runnable structure holds it.
    fn remove_runnable(&mut self, pid: Pid) {
        match self.cfg.policy {
            KernelPolicy::DecayUsage => {
                let home = self.procs[pid].home.index();
                self.runqs[home].remove(pid);
            }
            KernelPolicy::Stride => {
                self.stride_q.retain(|&q| q != pid);
            }
        }
    }

    /// Which CPU a running process occupies.
    fn cpu_of(&self, pid: Pid) -> Option<usize> {
        (0..self.running.len()).find(|&c| self.running[c] == Some(pid))
    }

    /// Dispatch the best runnable process onto the given (idle) CPU.
    fn context_switch(&mut self, cpu: usize) {
        debug_assert!(self.running[cpu].is_none());
        let Some(pid) = self.pop_best_runnable(cpu) else {
            return;
        };
        let now = self.now;
        let p = &mut self.procs[pid];
        p.kernel_boost = false; // the kernel-mode return is over
        p.state = PState::Running;
        p.dispatched_at = now;
        p.dispatches += 1;
        self.ctx_switches += 1;
        if let Some(r) = p.burst_remaining {
            p.burst_token = p.burst_token.wrapping_add(1);
            let token = p.burst_token;
            self.events
                .schedule(now + r, EventKind::BurstDone { pid, token });
        }
        self.running[cpu] = Some(pid);
        self.trace_push(
            pid,
            TraceKind::Dispatch {
                cpu: CpuId(cpu as u32),
            },
        );
    }

    fn resetpriority(&mut self, pid: Pid) {
        let p = &mut self.procs[pid];
        p.priority = sched::user_priority(p.estcpu, p.nice);
    }
}

/// The facilities a [`Behavior`] may use while deciding its next step —
/// the analogue of the unprivileged syscall surface ALPS itself relies on
/// (`getrusage`/`kvm` reads, `kill`, `setitimer`).
pub struct SimCtl<'a> {
    sim: &'a mut Sim,
    me: Pid,
}

impl<'a> SimCtl<'a> {
    /// Current wall-clock time.
    pub fn now(&self) -> Nanos {
        self.sim.now
    }

    /// The calling process's pid.
    pub fn my_pid(&self) -> Pid {
        self.me
    }

    /// The calling process's cumulative CPU time.
    pub fn my_cputime(&self) -> Nanos {
        self.sim.procs[self.me].cputime
    }

    /// Read-only view of any process (see [`Sim::proc`]).
    pub fn proc(&self, pid: Pid) -> Option<ProcView<'_>> {
        self.sim.proc(pid)
    }

    /// Cumulative CPU time of any process as a user-level reader sees it
    /// (the expensive read ALPS minimizes; cost accounting happens in the
    /// ALPS runner, not here). Subject to [`SimConfig::accounting`].
    pub fn cputime(&self, pid: Pid) -> Nanos {
        self.sim.proc(pid).expect("unknown pid").visible_cputime()
    }

    /// Event-exact cumulative CPU time — simulation ground truth, for
    /// *instrumentation* only (a real user-level scheduler cannot see
    /// better than [`Self::cputime`]).
    pub fn cputime_exact(&self, pid: Pid) -> Nanos {
        self.sim.procs[pid].cputime
    }

    /// Whether a process is blocked on a wait channel (§2.4's test).
    pub fn is_blocked(&self, pid: Pid) -> bool {
        self.sim.proc(pid).expect("unknown pid").is_blocked()
    }

    /// Whether a process has exited.
    pub fn is_exited(&self, pid: Pid) -> bool {
        self.sim.proc(pid).expect("unknown pid").is_exited()
    }

    /// `/proc`-style state code of a process.
    pub fn state_code(&self, pid: Pid) -> char {
        self.sim.proc(pid).expect("unknown pid").state_code()
    }

    /// Send `SIGSTOP` to another process.
    pub fn sigstop(&mut self, pid: Pid) {
        assert_ne!(pid, self.me, "a behavior cannot stop itself mid-step");
        self.sim.sigstop(pid);
    }

    /// Send `SIGCONT` to another process.
    pub fn sigcont(&mut self, pid: Pid) {
        assert_ne!(pid, self.me, "a behavior cannot continue itself");
        self.sim.sigcont(pid);
    }

    /// Terminate another process immediately (`SIGKILL`-style), as fault
    /// plans do to model a supervised process exiting mid-quantum.
    pub fn terminate(&mut self, pid: Pid) {
        assert_ne!(pid, self.me, "a behavior cannot terminate itself mid-step");
        self.sim.terminate(pid);
    }

    /// Arm (or re-arm) the calling process's interval timer with the given
    /// period; the first fire is one period from now.
    pub fn set_interval_timer(&mut self, period: Nanos) {
        assert!(period > Nanos::ZERO, "timer period must be positive");
        let now = self.sim.now;
        let me = self.me;
        let t = &mut self.sim.procs[me].timer;
        t.period = period;
        t.armed = true;
        t.pending = false;
        t.token = t.token.wrapping_add(1);
        t.next_fire = now + period;
        let (at, token) = (t.next_fire, t.token);
        self.sim
            .events
            .schedule(at, EventKind::TimerFire { pid: me, token });
    }

    /// Disarm the calling process's interval timer.
    pub fn cancel_interval_timer(&mut self) {
        let t = &mut self.sim.procs[self.me].timer;
        t.armed = false;
        t.pending = false;
        t.token = t.token.wrapping_add(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::ComputeBound;

    fn sim() -> Sim {
        Sim::new(SimConfig::default())
    }

    fn cputime(s: &Sim, pid: Pid) -> Nanos {
        s.proc(pid).expect("spawned").cputime()
    }

    #[test]
    fn single_compute_bound_uses_all_cpu() {
        let mut s = sim();
        let p = s.spawn("w", Box::new(ComputeBound));
        s.run_until(Nanos::from_secs(5));
        assert_eq!(cputime(&s, p), Nanos::from_secs(5));
        assert_eq!(s.idle_time(), Nanos::ZERO);
    }

    #[test]
    fn proc_returns_none_for_unknown_pid() {
        let mut s = sim();
        let p = s.spawn("w", Box::new(ComputeBound));
        assert!(s.proc(p).is_some());
        assert!(s.proc(Pid(42)).is_none());
    }

    #[test]
    fn ctl_terminate_kills_another_process_mid_run() {
        use crate::process::{Behavior, Step};

        /// Computes briefly, then terminates its victim (the fault-plan
        /// "mid-quantum exit" actuation path), then exits.
        struct Terminator {
            victim: Pid,
            fired: bool,
        }

        impl Behavior for Terminator {
            fn on_ready(&mut self, ctl: &mut SimCtl<'_>) -> Step {
                if !self.fired {
                    self.fired = true;
                    ctl.terminate(self.victim);
                    return Step::Compute(Nanos::from_millis(5));
                }
                Step::Exit
            }
        }

        let mut s = sim();
        let victim = s.spawn("victim", Box::new(ComputeBound));
        let killer = s.spawn(
            "killer",
            Box::new(Terminator {
                victim,
                fired: false,
            }),
        );
        s.run_until(Nanos::from_secs(2));
        assert!(s.proc(victim).expect("still visible").is_exited());
        assert!(s.proc(killer).expect("still visible").is_exited());
        // The victim died early: it cannot have accrued anywhere near the
        // full two seconds.
        assert!(cputime(&s, victim) < Nanos::from_secs(1));
        // With both gone the machine is idle for the remainder.
        assert!(s.idle_time() > Nanos::from_secs(1));
    }

    #[test]
    fn two_equal_processes_split_cpu_evenly() {
        let mut s = sim();
        let a = s.spawn("a", Box::new(ComputeBound));
        let b = s.spawn("b", Box::new(ComputeBound));
        s.run_until(Nanos::from_secs(20));
        let ca = cputime(&s, a).as_secs_f64();
        let cb = cputime(&s, b).as_secs_f64();
        assert!((ca + cb - 20.0).abs() < 1e-9, "no time lost: {ca} + {cb}");
        // The decay scheduler equalizes long-run usage to within a slice
        // or two.
        assert!((ca - cb).abs() < 0.5, "fair split: {ca} vs {cb}");
    }

    #[test]
    fn ten_equal_processes_each_get_tenth() {
        let mut s = sim();
        let pids: Vec<_> = (0..10)
            .map(|i| s.spawn(format!("w{i}"), Box::new(ComputeBound)))
            .collect();
        s.run_until(Nanos::from_secs(50));
        for &p in &pids {
            let v = s.proc(p).expect("spawned");
            let c = v.cputime().as_secs_f64();
            assert!(
                (c - 5.0).abs() < 0.6,
                "{}: got {c}s, expected ~5s",
                v.name()
            );
        }
    }

    #[test]
    fn sigstop_removes_from_contention() {
        let mut s = sim();
        let a = s.spawn("a", Box::new(ComputeBound));
        let b = s.spawn("b", Box::new(ComputeBound));
        s.run_until(Nanos::from_secs(2));
        s.sigstop(a);
        let ca = cputime(&s, a);
        s.run_until(Nanos::from_secs(4));
        assert_eq!(cputime(&s, a), ca, "stopped process consumes nothing");
        assert!(s.proc(a).expect("spawned").is_stopped());
        // b got everything in the meantime.
        assert!(cputime(&s, b) > Nanos::from_millis(2800));
        s.sigcont(a);
        s.run_until(Nanos::from_secs(6));
        assert!(cputime(&s, a) > ca, "resumed process runs again");
    }

    #[test]
    fn sleeping_process_blocks_and_wakes() {
        struct OneNap {
            slept: bool,
        }
        impl Behavior for OneNap {
            fn on_ready(&mut self, _: &mut SimCtl<'_>) -> Step {
                if self.slept {
                    Step::ComputeForever
                } else {
                    self.slept = true;
                    Step::Sleep(Nanos::from_millis(500))
                }
            }
        }
        let mut s = sim();
        let p = s.spawn("napper", Box::new(OneNap { slept: false }));
        s.run_until(Nanos::from_millis(250));
        assert!(s.proc(p).expect("spawned").is_blocked());
        assert_eq!(s.proc(p).expect("spawned").state_code(), 'S');
        s.run_until(Nanos::from_secs(1));
        assert!(!s.proc(p).expect("spawned").is_blocked());
        assert_eq!(cputime(&s, p), Nanos::from_millis(500));
    }

    #[test]
    fn compute_then_exit_leaves_zombie_accounting() {
        struct RunOnce;
        impl Behavior for RunOnce {
            fn on_ready(&mut self, ctl: &mut SimCtl<'_>) -> Step {
                if ctl.my_cputime() == Nanos::ZERO {
                    Step::Compute(Nanos::from_millis(30))
                } else {
                    Step::Exit
                }
            }
        }
        let mut s = sim();
        let p = s.spawn("once", Box::new(RunOnce));
        s.run_until(Nanos::from_secs(1));
        let v = s.proc(p).expect("spawned");
        assert!(v.is_exited());
        assert_eq!(v.state_code(), 'Z');
        assert_eq!(v.cputime(), Nanos::from_millis(30));
        assert!(s.idle_time() >= Nanos::from_millis(960));
        assert_eq!(s.live_count(), 0, "exit must leave the live index");
        s.assert_index_consistent();
    }

    #[test]
    fn interval_timer_wakes_periodically() {
        struct Ticker {
            fires: u64,
            armed: bool,
        }
        impl Behavior for Ticker {
            fn on_ready(&mut self, ctl: &mut SimCtl<'_>) -> Step {
                if !self.armed {
                    self.armed = true;
                    ctl.set_interval_timer(Nanos::from_millis(100));
                } else {
                    self.fires += 1;
                }
                Step::AwaitTimer
            }
            fn name(&self) -> &str {
                "ticker"
            }
        }
        let mut s = sim();
        let p = s.spawn(
            "t",
            Box::new(Ticker {
                fires: 0,
                armed: false,
            }),
        );
        s.run_until(Nanos::from_secs(1));
        // Fires at 100,200,...,1000ms. The process never computes.
        assert_eq!(cputime(&s, p), Nanos::ZERO);
        assert!(s.proc(p).expect("spawned").is_blocked());
    }

    #[test]
    fn stopped_sleeper_resumes_its_sleep() {
        struct Napper {
            naps: u32,
        }
        impl Behavior for Napper {
            fn on_ready(&mut self, _: &mut SimCtl<'_>) -> Step {
                self.naps += 1;
                if self.naps == 1 {
                    Step::Sleep(Nanos::from_secs(1))
                } else {
                    Step::ComputeForever
                }
            }
        }
        let mut s = sim();
        let p = s.spawn("n", Box::new(Napper { naps: 0 }));
        s.run_until(Nanos::from_millis(100));
        assert!(s.proc(p).expect("spawned").is_blocked());
        s.sigstop(p);
        assert!(s.proc(p).expect("spawned").is_stopped());
        // The sleep would expire at t=1s while stopped.
        s.run_until(Nanos::from_millis(400));
        s.sigcont(p);
        // Sleep deadline (1s) is still in the future: back to sleeping.
        assert!(s.proc(p).expect("spawned").is_blocked());
        s.run_until(Nanos::from_secs(2));
        // Woke at 1s and computed from then on.
        assert!((cputime(&s, p).as_secs_f64() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn stopped_sleeper_whose_deadline_passed_wakes_on_cont() {
        struct Napper {
            naps: u32,
        }
        impl Behavior for Napper {
            fn on_ready(&mut self, _: &mut SimCtl<'_>) -> Step {
                self.naps += 1;
                if self.naps == 1 {
                    Step::Sleep(Nanos::from_millis(200))
                } else {
                    Step::ComputeForever
                }
            }
        }
        let mut s = sim();
        let p = s.spawn("n", Box::new(Napper { naps: 0 }));
        s.run_until(Nanos::from_millis(50));
        s.sigstop(p);
        s.run_until(Nanos::from_secs(1)); // deadline passes while stopped
        assert!(s.proc(p).expect("spawned").is_stopped());
        s.sigcont(p);
        s.run_until(Nanos::from_secs(2));
        assert!((cputime(&s, p).as_secs_f64() - 1.0).abs() < 0.02);
    }

    #[test]
    fn terminate_cleans_up() {
        let mut s = sim();
        let a = s.spawn("a", Box::new(ComputeBound));
        let b = s.spawn("b", Box::new(ComputeBound));
        s.run_until(Nanos::from_secs(1));
        s.terminate(a);
        assert!(s.proc(a).expect("spawned").is_exited());
        assert_eq!(s.live_count(), 1);
        let ca = cputime(&s, a);
        s.run_until(Nanos::from_secs(3));
        assert_eq!(cputime(&s, a), ca);
        // b now owns the machine.
        assert!((cputime(&s, b) + ca).as_secs_f64() - 3.0 < 1e-6);
        s.assert_index_consistent();
    }

    #[test]
    fn woken_sleeper_preempts_lower_priority_within_a_tick() {
        // A process that just slept a long time gets updatepri credit and
        // should beat a compute-bound hog quickly (BSD interactivity).
        struct Napper {
            naps: u32,
        }
        impl Behavior for Napper {
            fn on_ready(&mut self, _: &mut SimCtl<'_>) -> Step {
                self.naps += 1;
                if self.naps % 2 == 1 {
                    Step::Sleep(Nanos::from_secs(3))
                } else {
                    Step::Compute(Nanos::from_millis(20))
                }
            }
        }
        let mut s = sim();
        let _hog = s.spawn("hog", Box::new(ComputeBound));
        let n = s.spawn("napper", Box::new(Napper { naps: 0 }));
        s.run_until(Nanos::from_secs(3) + Nanos::from_millis(50));
        // Woken at t=3s; within 50ms (a handful of ticks) it must have run.
        assert!(
            cputime(&s, n) > Nanos::ZERO,
            "woken interactive process was starved"
        );
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let run = |seed| {
            let cfg = SimConfig {
                seed,
                spawn_estcpu_jitter: 8.0,
                ..SimConfig::default()
            };
            let mut s = Sim::new(cfg);
            s.enable_trace(4096);
            for i in 0..5 {
                s.spawn(format!("w{i}"), Box::new(ComputeBound));
            }
            s.run_until(Nanos::from_secs(10));
            s.trace()
                .unwrap()
                .events()
                .iter()
                .map(|e| (e.at, e.pid, e.kind))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2), "different seeds perturb the trace");
    }

    #[test]
    fn linear_runqueue_reproduces_the_indexed_schedule() {
        let run = |kind| {
            let cfg = SimConfig {
                seed: 3,
                spawn_estcpu_jitter: 8.0,
                runqueue: kind,
                ..SimConfig::default()
            };
            let mut s = Sim::new(cfg);
            s.enable_trace(1 << 16);
            for i in 0..8 {
                s.spawn(format!("w{i}"), Box::new(ComputeBound));
            }
            s.run_until(Nanos::from_secs(10));
            s.trace()
                .unwrap()
                .events()
                .iter()
                .map(|e| (e.at, e.pid, e.kind))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(RunQueueKind::Indexed), run(RunQueueKind::Linear));
    }

    #[test]
    fn no_time_is_ever_lost() {
        let mut s = sim();
        let a = s.spawn("a", Box::new(ComputeBound));
        let b = s.spawn(
            "b",
            Box::new(ComputeThenSleepHelper {
                inner: crate::process::ComputeThenSleep::new(
                    Nanos::from_millis(80),
                    Nanos::from_millis(240),
                    Nanos::ZERO,
                ),
            }),
        );
        s.run_until(Nanos::from_secs(7));
        let total = cputime(&s, a) + cputime(&s, b) + s.idle_time();
        assert_eq!(total, Nanos::from_secs(7));
    }

    /// Wrapper so the test can use ComputeThenSleep through the Behavior
    /// object without exposing its private phase field.
    struct ComputeThenSleepHelper {
        inner: crate::process::ComputeThenSleep,
    }
    impl Behavior for ComputeThenSleepHelper {
        fn on_ready(&mut self, ctl: &mut SimCtl<'_>) -> Step {
            self.inner.on_ready(ctl)
        }
    }

    #[test]
    fn rr_slice_rotates_equal_priority() {
        let mut s = sim();
        let a = s.spawn("a", Box::new(ComputeBound));
        let b = s.spawn("b", Box::new(ComputeBound));
        s.run_until(Nanos::from_secs(2));
        let (da, db) = (
            s.proc(a).expect("spawned").dispatches(),
            s.proc(b).expect("spawned").dispatches(),
        );
        assert!(da > 3, "a rotated: {da}");
        assert!(db > 3, "b rotated: {db}");
    }
}
