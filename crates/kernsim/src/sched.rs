//! The 4.4BSD decay-usage scheduling policy.
//!
//! This module implements the priority machinery of the scheduler the paper
//! ran on (FreeBSD 4.x, which is the classic 4.4BSD scheduler described in
//! McKusick et al., the paper's reference \[18\]):
//!
//! * every process has an `estcpu` estimate of its recent CPU usage, which
//!   rises while it runs and decays once per second by a load-dependent
//!   factor `(2·load)/(2·load + 1)`;
//! * the *user priority* is `PUSER + estcpu/4 + 2·nice` (larger is worse);
//! * a process that sleeps has its `estcpu` decayed retroactively on wakeup
//!   (`updatepri`), which is how BSD favors interactive processes — the
//!   effect the paper credits for ALPS keeping control past the predicted
//!   breakdown threshold at a 40 ms quantum (§4.2);
//! * the run queue is an array of FIFO queues indexed by priority with a
//!   bitmap for O(1) selection, as in the real kernel.
//!
//! One deliberate fidelity improvement over the historical kernel is that
//! `estcpu` is charged in proportion to CPU time actually consumed rather
//! than by sampling at clock ticks. The real statclock only charges a
//! process if it happens to be running when the tick lands, which lets a
//! short-burst process (exactly like ALPS) consume CPU without ever being
//! charged. Continuous charging preserves the scheduler's documented
//! *intent* — priority reflects recent CPU usage — and is what makes the
//! paper's breakdown analysis (overhead vs. the 1/(N+1) fair share)
//! reproducible in simulation.

use crate::pid::Pid;

/// Baseline user-mode priority (`PUSER` in BSD). Lower is better.
pub const PUSER: u8 = 50;
/// Kernel sleep priority (`PPAUSE`/`PSOCK` territory in BSD): a process
/// waking from a wait channel is dispatched at this priority for its
/// kernel-mode return path, which is how BSD guarantees sleepers (like a
/// user-level scheduler waiting on its interval timer) win the dispatch
/// immediately. The boost evaporates once the process is put on the CPU;
/// its *user-mode* work then competes at the decay-usage user priority.
pub const PSLEEP: u8 = 40;
/// Worst (numerically largest) priority.
pub const MAXPRI: u8 = 127;
/// Upper bound on `estcpu`, chosen so priority saturates exactly at
/// [`MAXPRI`]: `PUSER + ESTCPU_MAX/4 = 127`.
pub const ESTCPU_MAX: f64 = ((MAXPRI - PUSER) as f64) * 4.0;

/// Compute the user priority from `estcpu` and `nice` (−20..=20).
pub fn user_priority(estcpu: f64, nice: i8) -> u8 {
    let p = PUSER as f64 + estcpu / 4.0 + 2.0 * nice as f64;
    p.clamp(PUSER as f64, MAXPRI as f64) as u8
}

/// The per-second decay factor applied to `estcpu`: `(2·load)/(2·load+1)`.
pub fn decay_factor(loadavg: f64) -> f64 {
    let l = loadavg.max(0.0);
    (2.0 * l) / (2.0 * l + 1.0)
}

/// Retroactive decay applied on wakeup after `slptime` whole seconds asleep
/// (`updatepri`): `estcpu · decay^slptime`. BSD caps the exponent; beyond
/// that the estimate is simply zeroed.
pub fn updatepri(estcpu: f64, loadavg: f64, slptime: u32) -> f64 {
    if slptime == 0 {
        return estcpu;
    }
    // BSD zeroes estcpu outright after ~7 load-decays worth of sleep.
    if slptime > 7 {
        return 0.0;
    }
    estcpu * decay_factor(loadavg).powi(slptime as i32)
}

/// Stride scheduling (Waldspurger & Weihl): each client's *stride* is
/// inversely proportional to its tickets; the scheduler always runs the
/// client with the smallest *pass*, advancing `pass` by `stride` per unit
/// of CPU consumed. With `STRIDE1` as the numerator, a client holding `t`
/// tickets advances its pass by `STRIDE1 / t` per nanosecond of CPU.
pub const STRIDE1: f64 = (1u64 << 20) as f64;

/// Pass advance for `t` tickets over `dt` nanoseconds of CPU.
pub fn stride_advance(tickets: u64, dt_ns: f64) -> f64 {
    STRIDE1 * dt_ns / tickets.max(1) as f64
}

/// Exponential smoothing constant for the 1-minute load average sampled
/// once per second: `exp(-1/60)`.
pub const LOADAVG_EXP: f64 = 0.983_471_453_8;

/// Fold one per-second sample of the runnable count into the load average.
pub fn loadavg_step(loadavg: f64, nrunnable: usize) -> f64 {
    loadavg * LOADAVG_EXP + nrunnable as f64 * (1.0 - LOADAVG_EXP)
}

/// Sentinel for "no node" in the run queue's intrusive lists.
const NIL: u32 = u32::MAX;

/// One per-pid link cell of the intrusive run-queue lists.
#[derive(Debug, Clone, Copy)]
struct Node {
    prev: u32,
    next: u32,
    prio: u8,
    queued: bool,
}

impl Default for Node {
    fn default() -> Self {
        Node {
            prev: NIL,
            next: NIL,
            prio: 0,
            queued: false,
        }
    }
}

/// FIFO run queues indexed by priority, with a two-word bitmap for O(1)
/// best-priority selection — the `qs`/`whichqs` structure of 4.4BSD.
///
/// Each priority level is an intrusive doubly-linked list threaded
/// through a pid-indexed slab of link cells, so *every* operation —
/// `push`, `pop_best`, and crucially the mid-queue `remove` that
/// `SIGSTOP` and the once-per-second `schedcpu` requeue perform — is
/// O(1). The historical `Vec<VecDeque>` representation (kept as
/// [`LinearRunQueue`] for lockstep testing and benchmarking) pays O(n)
/// per removal, which made large-N scalability sweeps quadratic.
#[derive(Debug, Clone)]
pub struct RunQueue {
    /// First queued pid index per priority, or [`NIL`].
    head: Vec<u32>,
    /// Last queued pid index per priority, or [`NIL`].
    tail: Vec<u32>,
    /// Per-pid link cells, grown on demand (pids are dense).
    nodes: Vec<Node>,
    bitmap: [u64; 2],
    len: usize,
}

impl Default for RunQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl RunQueue {
    /// An empty run queue.
    pub fn new() -> Self {
        RunQueue {
            head: vec![NIL; 128],
            tail: vec![NIL; 128],
            nodes: Vec::new(),
            bitmap: [0; 2],
            len: 0,
        }
    }

    /// Number of queued processes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is runnable.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether a specific process is queued. O(1).
    pub fn contains(&self, pid: Pid) -> bool {
        self.nodes.get(pid.index()).is_some_and(|n| n.queued)
    }

    /// Enqueue at the tail of the priority's FIFO (`setrunqueue`). O(1).
    pub fn push(&mut self, pid: Pid, priority: u8) {
        let p = priority.min(MAXPRI) as usize;
        let i = pid.index();
        if i >= self.nodes.len() {
            self.nodes.resize(i + 1, Node::default());
        }
        debug_assert!(!self.nodes[i].queued, "{pid} queued twice");
        let t = self.tail[p];
        self.nodes[i] = Node {
            prev: t,
            next: NIL,
            prio: p as u8,
            queued: true,
        };
        if t == NIL {
            self.head[p] = i as u32;
        } else {
            self.nodes[t as usize].next = i as u32;
        }
        self.tail[p] = i as u32;
        self.bitmap[p / 64] |= 1u64 << (p % 64);
        self.len += 1;
    }

    /// Best (numerically smallest) occupied priority, if any. O(1).
    pub fn best_priority(&self) -> Option<u8> {
        if self.bitmap[0] != 0 {
            Some(self.bitmap[0].trailing_zeros() as u8)
        } else if self.bitmap[1] != 0 {
            Some(64 + self.bitmap[1].trailing_zeros() as u8)
        } else {
            None
        }
    }

    /// Dequeue the process at the head of the best priority queue. O(1).
    pub fn pop_best(&mut self) -> Option<(Pid, u8)> {
        let p = self.best_priority()? as usize;
        let i = self.head[p];
        debug_assert_ne!(i, NIL, "bitmap said non-empty");
        self.unlink(i as usize, p);
        Some((Pid(i), p as u8))
    }

    /// Remove a specific process wherever it is queued (`remrq`). Returns
    /// true if it was present. O(1).
    pub fn remove(&mut self, pid: Pid) -> bool {
        let i = pid.index();
        let Some(node) = self.nodes.get(i) else {
            return false;
        };
        if !node.queued {
            return false;
        }
        let p = node.prio as usize;
        self.unlink(i, p);
        true
    }

    /// Detach node `i` from the priority-`p` list and reset it.
    fn unlink(&mut self, i: usize, p: usize) {
        let Node { prev, next, .. } = self.nodes[i];
        if prev == NIL {
            self.head[p] = next;
        } else {
            self.nodes[prev as usize].next = next;
        }
        if next == NIL {
            self.tail[p] = prev;
        } else {
            self.nodes[next as usize].prev = prev;
        }
        if self.head[p] == NIL {
            self.bitmap[p / 64] &= !(1u64 << (p % 64));
        }
        self.nodes[i] = Node::default();
        self.len -= 1;
    }
}

/// The seed's `Vec<VecDeque>` run-queue representation, kept verbatim so
/// the lockstep test and the scalability bench can run the indexed and
/// the original implementation side by side ([`RunQueueKind::Linear`]).
/// Semantically identical to [`RunQueue`]; `remove` is O(n).
#[derive(Debug, Clone)]
pub struct LinearRunQueue {
    queues: Vec<std::collections::VecDeque<Pid>>,
    bitmap: [u64; 2],
    len: usize,
}

impl Default for LinearRunQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl LinearRunQueue {
    /// An empty run queue.
    pub fn new() -> Self {
        LinearRunQueue {
            queues: (0..128)
                .map(|_| std::collections::VecDeque::new())
                .collect(),
            bitmap: [0; 2],
            len: 0,
        }
    }

    /// Number of queued processes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is runnable.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether a specific process is queued. O(n).
    pub fn contains(&self, pid: Pid) -> bool {
        self.queues.iter().any(|q| q.contains(&pid))
    }

    /// Enqueue at the tail of the priority's FIFO (`setrunqueue`).
    pub fn push(&mut self, pid: Pid, priority: u8) {
        let p = priority.min(MAXPRI) as usize;
        self.queues[p].push_back(pid);
        self.bitmap[p / 64] |= 1u64 << (p % 64);
        self.len += 1;
    }

    /// Best (numerically smallest) occupied priority, if any.
    pub fn best_priority(&self) -> Option<u8> {
        if self.bitmap[0] != 0 {
            Some(self.bitmap[0].trailing_zeros() as u8)
        } else if self.bitmap[1] != 0 {
            Some(64 + self.bitmap[1].trailing_zeros() as u8)
        } else {
            None
        }
    }

    /// Dequeue the process at the head of the best priority queue.
    pub fn pop_best(&mut self) -> Option<(Pid, u8)> {
        let p = self.best_priority()? as usize;
        let pid = self.queues[p].pop_front().expect("bitmap said non-empty");
        if self.queues[p].is_empty() {
            self.bitmap[p / 64] &= !(1u64 << (p % 64));
        }
        self.len -= 1;
        Some((pid, p as u8))
    }

    /// Remove a specific process wherever it is queued (`remrq`). Returns
    /// true if it was present.
    pub fn remove(&mut self, pid: Pid) -> bool {
        for p in 0..self.queues.len() {
            if let Some(pos) = self.queues[p].iter().position(|&q| q == pid) {
                self.queues[p].remove(pos);
                if self.queues[p].is_empty() {
                    self.bitmap[p / 64] &= !(1u64 << (p % 64));
                }
                self.len -= 1;
                return true;
            }
        }
        false
    }
}

/// Which run-queue representation a simulation uses
/// ([`crate::SimConfig::runqueue`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RunQueueKind {
    /// The O(1) intrusive-list [`RunQueue`] (default).
    #[default]
    Indexed,
    /// The seed's [`LinearRunQueue`] with O(n) removal — the baseline the
    /// lockstep test and the scalability bench compare against.
    Linear,
}

/// A run queue of either representation, dispatched at runtime. Both
/// variants implement identical FIFO-per-priority semantics; the lockstep
/// test (`tests/lockstep.rs`) pins trace equality between them.
#[derive(Debug, Clone)]
pub enum ReadyQueue {
    /// O(1) intrusive-list representation.
    Indexed(RunQueue),
    /// The seed's linear-scan representation.
    Linear(LinearRunQueue),
}

impl ReadyQueue {
    /// An empty queue of the given representation.
    pub fn new(kind: RunQueueKind) -> Self {
        match kind {
            RunQueueKind::Indexed => ReadyQueue::Indexed(RunQueue::new()),
            RunQueueKind::Linear => ReadyQueue::Linear(LinearRunQueue::new()),
        }
    }

    /// Number of queued processes.
    pub fn len(&self) -> usize {
        match self {
            ReadyQueue::Indexed(q) => q.len(),
            ReadyQueue::Linear(q) => q.len(),
        }
    }

    /// True when nothing is runnable.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether a specific process is queued.
    pub fn contains(&self, pid: Pid) -> bool {
        match self {
            ReadyQueue::Indexed(q) => q.contains(pid),
            ReadyQueue::Linear(q) => q.contains(pid),
        }
    }

    /// Enqueue at the tail of the priority's FIFO.
    pub fn push(&mut self, pid: Pid, priority: u8) {
        match self {
            ReadyQueue::Indexed(q) => q.push(pid, priority),
            ReadyQueue::Linear(q) => q.push(pid, priority),
        }
    }

    /// Best occupied priority, if any.
    pub fn best_priority(&self) -> Option<u8> {
        match self {
            ReadyQueue::Indexed(q) => q.best_priority(),
            ReadyQueue::Linear(q) => q.best_priority(),
        }
    }

    /// Dequeue the process at the head of the best priority queue.
    pub fn pop_best(&mut self) -> Option<(Pid, u8)> {
        match self {
            ReadyQueue::Indexed(q) => q.pop_best(),
            ReadyQueue::Linear(q) => q.pop_best(),
        }
    }

    /// Remove a specific process wherever it is queued.
    pub fn remove(&mut self, pid: Pid) -> bool {
        match self {
            ReadyQueue::Indexed(q) => q.remove(pid),
            ReadyQueue::Linear(q) => q.remove(pid),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_formula() {
        assert_eq!(user_priority(0.0, 0), PUSER);
        assert_eq!(user_priority(40.0, 0), PUSER + 10);
        assert_eq!(user_priority(1e9, 0), MAXPRI);
        assert_eq!(user_priority(0.0, 10), PUSER + 20);
        // Negative nice cannot go below PUSER in this model.
        assert_eq!(user_priority(0.0, -20), PUSER);
    }

    #[test]
    fn decay_factor_ranges() {
        assert_eq!(decay_factor(0.0), 0.0);
        let d1 = decay_factor(1.0);
        assert!((d1 - 2.0 / 3.0).abs() < 1e-12);
        let d10 = decay_factor(10.0);
        assert!(d10 > d1 && d10 < 1.0, "higher load decays more slowly");
    }

    #[test]
    fn updatepri_decays_and_zeroes() {
        let e = updatepri(100.0, 1.0, 1);
        assert!((e - 100.0 * (2.0 / 3.0)).abs() < 1e-9);
        assert_eq!(updatepri(100.0, 1.0, 0), 100.0);
        assert_eq!(updatepri(100.0, 1.0, 8), 0.0);
    }

    #[test]
    fn loadavg_converges_toward_sample() {
        let mut l = 0.0;
        for _ in 0..3000 {
            l = loadavg_step(l, 4);
        }
        assert!((l - 4.0).abs() < 1e-6);
    }

    #[test]
    fn runqueue_fifo_within_priority() {
        let mut rq = RunQueue::new();
        rq.push(Pid(1), 60);
        rq.push(Pid(2), 60);
        rq.push(Pid(3), 55);
        assert_eq!(rq.best_priority(), Some(55));
        assert_eq!(rq.pop_best(), Some((Pid(3), 55)));
        assert_eq!(rq.pop_best(), Some((Pid(1), 60)));
        assert_eq!(rq.pop_best(), Some((Pid(2), 60)));
        assert_eq!(rq.pop_best(), None);
        assert!(rq.is_empty());
    }

    #[test]
    fn runqueue_remove_clears_bitmap() {
        let mut rq = RunQueue::new();
        rq.push(Pid(1), 70);
        assert!(rq.remove(Pid(1)));
        assert!(!rq.remove(Pid(1)));
        assert_eq!(rq.best_priority(), None);
        assert_eq!(rq.len(), 0);
    }

    #[test]
    fn runqueue_priorities_above_63() {
        let mut rq = RunQueue::new();
        rq.push(Pid(1), 127);
        rq.push(Pid(2), 64);
        assert_eq!(rq.best_priority(), Some(64));
        assert_eq!(rq.pop_best(), Some((Pid(2), 64)));
        assert_eq!(rq.pop_best(), Some((Pid(1), 127)));
    }

    #[test]
    fn estcpu_cap_matches_maxpri() {
        assert_eq!(user_priority(ESTCPU_MAX, 0), MAXPRI);
    }

    #[test]
    fn runqueue_contains_tracks_membership() {
        let mut rq = RunQueue::new();
        assert!(!rq.contains(Pid(5)));
        rq.push(Pid(5), 60);
        assert!(rq.contains(Pid(5)));
        rq.pop_best();
        assert!(!rq.contains(Pid(5)));
        rq.push(Pid(5), 60);
        assert!(rq.remove(Pid(5)));
        assert!(!rq.contains(Pid(5)));
    }

    #[test]
    fn indexed_and_linear_agree_on_interleaved_ops() {
        let mut a = ReadyQueue::new(RunQueueKind::Indexed);
        let mut b = ReadyQueue::new(RunQueueKind::Linear);
        // Deterministic interleaving of pushes, removes, and pops across
        // both bitmap words, with re-pushes after pops.
        let mut next = 0u32;
        for round in 0..6 {
            for k in 0..20u32 {
                let pid = Pid(next);
                next += 1;
                let prio = ((k * 13 + round * 7) % 128) as u8;
                a.push(pid, prio);
                b.push(pid, prio);
            }
            for k in (0..next).step_by(3) {
                assert_eq!(a.remove(Pid(k)), b.remove(Pid(k)), "remove {k}");
            }
            for _ in 0..10 {
                assert_eq!(a.best_priority(), b.best_priority());
                let (x, y) = (a.pop_best(), b.pop_best());
                assert_eq!(x, y);
                if let Some((pid, prio)) = x {
                    // Requeue at a shifted priority to churn the lists.
                    a.push(pid, prio.wrapping_add(11) & 127);
                    b.push(pid, prio.wrapping_add(11) & 127);
                }
            }
            assert_eq!(a.len(), b.len());
        }
        loop {
            let (x, y) = (a.pop_best(), b.pop_best());
            assert_eq!(x, y);
            if x.is_none() {
                break;
            }
        }
    }
}
