//! Deterministic fault-injection plans.
//!
//! A [`FaultPlan`] is a seeded stream of injection decisions for the
//! failure modes a user-level scheduler actually meets on a real kernel:
//! lost or delayed `SIGSTOP`/`SIGCONT`, failed or stale CPU-time reads,
//! processes exiting mid-quantum, and timer jitter. The plan itself does
//! not inject anything — callers (the `alps-sim` substrate wrapper, test
//! drivers) query it at each decision point and act on the answer. Because
//! the decision stream is a pure function of the seed and the query
//! sequence, and the drivers are themselves deterministic, every faulty
//! run replays exactly from its [`FaultPlanSpec`].
//!
//! Each decision draws from an xoshiro256** generator seeded via
//! SplitMix64 (the workspace `rand` stub), and every injected fault is
//! tallied in a [`FaultLog`] so tests can assert that a fault class
//! actually fired before claiming the supervisor survived it.

use alps_core::Nanos;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Per-decision injection probabilities. All rates are in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultRates {
    /// A stop/continue signal is silently dropped (the sender still sees
    /// success — the classic lost-signal race).
    pub lose_signal: f64,
    /// A stop/continue signal is deferred until the next quantum boundary
    /// instead of landing immediately.
    pub delay_signal: f64,
    /// A CPU-time read fails outright (`EPERM`/`ESRCH`-style).
    pub fail_read: f64,
    /// A CPU-time read returns the previous observation (stale `/proc`
    /// page, tick-granular counter that has not advanced).
    pub stale_read: f64,
    /// A supervised process exits in the middle of a quantum.
    pub exit_mid_quantum: f64,
    /// The quantum timer fires late by up to [`FaultRates::max_jitter`].
    pub tick_jitter: f64,
    /// Upper bound on injected timer jitter.
    pub max_jitter: Nanos,
}

impl FaultRates {
    /// No faults at all — a plan with these rates is a transparent
    /// pass-through, which fault-free differential tests rely on.
    pub fn none() -> Self {
        FaultRates {
            lose_signal: 0.0,
            delay_signal: 0.0,
            fail_read: 0.0,
            stale_read: 0.0,
            exit_mid_quantum: 0.0,
            tick_jitter: 0.0,
            max_jitter: Nanos::ZERO,
        }
    }

    /// Aggressive rates for survivability tests: every class fires often
    /// enough that a few hundred quanta exercise all of them.
    pub fn chaotic() -> Self {
        FaultRates {
            lose_signal: 0.10,
            delay_signal: 0.10,
            fail_read: 0.10,
            stale_read: 0.15,
            exit_mid_quantum: 0.02,
            tick_jitter: 0.20,
            max_jitter: Nanos::from_millis(30),
        }
    }
}

impl Default for FaultRates {
    fn default() -> Self {
        FaultRates::none()
    }
}

/// The serializable identity of a plan: seed plus rates. Reconstructing a
/// plan from its spec replays the identical decision stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlanSpec {
    /// Seed for the decision generator.
    pub seed: u64,
    /// Injection probabilities.
    pub rates: FaultRates,
}

/// Counts of every fault actually injected, by class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultLog {
    /// Signals silently dropped.
    pub lost_signals: u64,
    /// Signals deferred to the next boundary.
    pub delayed_signals: u64,
    /// Reads that failed outright.
    pub failed_reads: u64,
    /// Reads answered with stale data.
    pub stale_reads: u64,
    /// Mid-quantum exits triggered.
    pub mid_quantum_exits: u64,
    /// Timer fires jittered.
    pub jittered_ticks: u64,
}

impl FaultLog {
    /// Total faults injected across all classes.
    pub fn total(&self) -> u64 {
        self.lost_signals
            + self.delayed_signals
            + self.failed_reads
            + self.stale_reads
            + self.mid_quantum_exits
            + self.jittered_ticks
    }
}

/// A seeded, replayable stream of fault decisions.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    spec: FaultPlanSpec,
    rng: SmallRng,
    log: FaultLog,
    /// Highest clock value handed out by [`FaultPlan::jittered_now`],
    /// enforcing that the jittered clock stays monotonic.
    jitter_watermark: Nanos,
}

impl FaultPlan {
    /// Build a plan from its serializable spec.
    pub fn new(spec: FaultPlanSpec) -> Self {
        FaultPlan {
            spec,
            rng: SmallRng::seed_from_u64(spec.seed),
            log: FaultLog::default(),
            jitter_watermark: Nanos::ZERO,
        }
    }

    /// Shorthand for [`FaultPlan::new`] with explicit parts.
    pub fn seeded(seed: u64, rates: FaultRates) -> Self {
        FaultPlan::new(FaultPlanSpec { seed, rates })
    }

    /// The spec this plan was built from (save it to replay the run).
    pub fn spec(&self) -> FaultPlanSpec {
        self.spec
    }

    /// What has been injected so far.
    pub fn log(&self) -> &FaultLog {
        &self.log
    }

    fn roll(&mut self, p: f64, count: impl FnOnce(&mut FaultLog) -> &mut u64) -> bool {
        // Always draw, even at rate zero, so enabling one class does not
        // shift the decision stream of the others.
        let hit = self.rng.gen_bool(p);
        if hit {
            *count(&mut self.log) += 1;
        }
        hit
    }

    /// Should this signal delivery be silently dropped?
    pub fn lose_signal(&mut self) -> bool {
        let p = self.spec.rates.lose_signal;
        self.roll(p, |l| &mut l.lost_signals)
    }

    /// Should this signal delivery be deferred to the next boundary?
    pub fn delay_signal(&mut self) -> bool {
        let p = self.spec.rates.delay_signal;
        self.roll(p, |l| &mut l.delayed_signals)
    }

    /// Should this CPU-time read fail?
    pub fn fail_read(&mut self) -> bool {
        let p = self.spec.rates.fail_read;
        self.roll(p, |l| &mut l.failed_reads)
    }

    /// Should this CPU-time read return stale data?
    pub fn stale_read(&mut self) -> bool {
        let p = self.spec.rates.stale_read;
        self.roll(p, |l| &mut l.stale_reads)
    }

    /// Should this process exit mid-quantum?
    pub fn exit_mid_quantum(&mut self) -> bool {
        let p = self.spec.rates.exit_mid_quantum;
        self.roll(p, |l| &mut l.mid_quantum_exits)
    }

    /// How late the current timer fire lands ([`Nanos::ZERO`] when the
    /// tick is on time).
    pub fn tick_jitter(&mut self) -> Nanos {
        let p = self.spec.rates.tick_jitter;
        let max = self.spec.rates.max_jitter;
        if self.roll(p, |l| &mut l.jittered_ticks) && max > Nanos::ZERO {
            Nanos(self.rng.gen_range(1..=max.0))
        } else {
            Nanos::ZERO
        }
    }

    /// Apply this fire's jitter to a raw clock reading, keeping the
    /// reported clock *monotonic*: a jittered reading never goes behind
    /// an earlier one. A raw `now + jitter` can run backwards between
    /// consecutive fires (big jitter, then none), and a time source must
    /// not — consumers mint state from each reported timestamp rather
    /// than relying on anything downstream to reorder. Always draws from
    /// the jitter stream (even when clamped), so replays stay aligned.
    pub fn jittered_now(&mut self, raw: Nanos) -> Nanos {
        let jittered = raw.saturating_add(self.tick_jitter());
        self.jitter_watermark = self.jitter_watermark.max(jittered);
        self.jitter_watermark
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(plan: &mut FaultPlan, n: usize) -> Vec<(bool, bool, bool, bool, bool, Nanos)> {
        (0..n)
            .map(|_| {
                (
                    plan.lose_signal(),
                    plan.delay_signal(),
                    plan.fail_read(),
                    plan.stale_read(),
                    plan.exit_mid_quantum(),
                    plan.tick_jitter(),
                )
            })
            .collect()
    }

    #[test]
    fn same_seed_same_decisions() {
        let spec = FaultPlanSpec {
            seed: 42,
            rates: FaultRates::chaotic(),
        };
        let mut a = FaultPlan::new(spec);
        let mut b = FaultPlan::new(spec);
        assert_eq!(drain(&mut a, 500), drain(&mut b, 500));
        assert_eq!(a.log(), b.log());
        assert!(a.log().total() > 0, "chaotic rates never fired");
    }

    #[test]
    fn different_seeds_diverge() {
        let rates = FaultRates::chaotic();
        let mut a = FaultPlan::seeded(1, rates);
        let mut b = FaultPlan::seeded(2, rates);
        assert_ne!(drain(&mut a, 500), drain(&mut b, 500));
    }

    #[test]
    fn zero_rates_never_fire() {
        let mut plan = FaultPlan::seeded(7, FaultRates::none());
        for row in drain(&mut plan, 200) {
            assert_eq!(row, (false, false, false, false, false, Nanos::ZERO));
        }
        assert_eq!(plan.log().total(), 0);
    }

    #[test]
    fn every_chaotic_class_fires() {
        let mut plan = FaultPlan::seeded(9, FaultRates::chaotic());
        drain(&mut plan, 2000);
        let log = *plan.log();
        assert!(log.lost_signals > 0);
        assert!(log.delayed_signals > 0);
        assert!(log.failed_reads > 0);
        assert!(log.stale_reads > 0);
        assert!(log.mid_quantum_exits > 0);
        assert!(log.jittered_ticks > 0);
    }

    #[test]
    fn jittered_clock_is_monotonic_and_replayable() {
        let rates = FaultRates {
            tick_jitter: 0.8,
            max_jitter: Nanos::from_millis(50),
            ..FaultRates::none()
        };
        // 1 ms raw steps under up-to-50 ms jitter: the raw `now + jitter`
        // sequence regresses constantly, the minted one must not.
        let mut raw_regressed = false;
        let mut check = FaultPlan::seeded(3, rates);
        let mut prev_raw = Nanos::ZERO;
        for i in 0..500u64 {
            let raw = Nanos::from_millis(i).saturating_add(check.tick_jitter());
            raw_regressed |= raw < prev_raw;
            prev_raw = raw;
        }
        assert!(raw_regressed, "fixture never regressed; nothing to clamp");

        let mut plan = FaultPlan::seeded(3, rates);
        let mut prev = Nanos::ZERO;
        let minted: Vec<Nanos> = (0..500u64)
            .map(|i| {
                let raw = Nanos::from_millis(i);
                let now = plan.jittered_now(raw);
                assert!(now >= raw, "minted clock behind the raw clock");
                assert!(now >= prev, "minted clock regressed");
                prev = now;
                now
            })
            .collect();
        assert!(plan.log().jittered_ticks > 0);
        // Same seed, same minted stream — clamping draws nothing extra.
        let mut replay = FaultPlan::seeded(3, rates);
        let again: Vec<Nanos> = (0..500u64)
            .map(|i| replay.jittered_now(Nanos::from_millis(i)))
            .collect();
        assert_eq!(minted, again);
    }

    #[test]
    fn spec_round_trips_through_serde() {
        let spec = FaultPlanSpec {
            seed: 0xDEAD_BEEF,
            rates: FaultRates::chaotic(),
        };
        let v = serde::Serialize::to_value(&spec);
        let back = <FaultPlanSpec as serde::Deserialize>::from_value(&v).expect("round trip");
        assert_eq!(spec, back);
        // A rebuilt plan replays the same stream.
        let mut a = FaultPlan::new(spec);
        let mut b = FaultPlan::new(back);
        assert_eq!(drain(&mut a, 100), drain(&mut b, 100));
    }
}
