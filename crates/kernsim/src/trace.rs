//! Execution tracing: an optional, bounded record of scheduling events.
//!
//! When enabled ([`Sim::enable_trace`](crate::Sim::enable_trace)), the
//! simulator appends one [`TraceEvent`] per dispatch, preemption, block,
//! wake, stop, continue, and exit. The trace is the ground truth the
//! paper's figures summarize — e.g. rendering it as a timeline shows the
//! eligible-group "staircase" of an ALPS cycle directly.

use alps_core::Nanos;
use serde::{Deserialize, Serialize};

use crate::cpu::CpuId;
use crate::pid::Pid;

/// One scheduling event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceKind {
    /// The process was placed on the given CPU.
    Dispatch {
        /// CPU index.
        cpu: CpuId,
    },
    /// The process was taken off the given CPU (still runnable).
    Preempt {
        /// CPU index.
        cpu: CpuId,
    },
    /// The process was claimed off another CPU's run queue (idle-time
    /// work stealing or a cross-CPU preemption dispatch); a
    /// [`TraceKind::Dispatch`] on `to` follows at the same instant.
    /// Never emitted on a one-CPU machine.
    Steal {
        /// The CPU whose queue held the process.
        from: CpuId,
        /// The CPU that claimed it (its new home).
        to: CpuId,
    },
    /// The process blocked on a wait channel.
    Block,
    /// The process became runnable after a sleep or stop.
    Wake,
    /// The process was stopped by job control.
    Stop,
    /// The process was continued by job control.
    Continue,
    /// The process exited.
    Exit,
}

/// A timestamped scheduling event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// When it happened.
    pub at: Nanos,
    /// Which process.
    pub pid: Pid,
    /// What happened.
    pub kind: TraceKind,
}

/// A bounded in-memory trace (oldest events are dropped past the cap).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl Trace {
    /// A trace retaining at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Trace {
            events: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Append an event (dropping the oldest if at capacity).
    pub fn push(&mut self, at: Nanos, pid: Pid, kind: TraceKind) {
        if self.capacity == 0 {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.remove(0);
            self.dropped += 1;
        }
        self.events.push(TraceEvent { at, pid, kind });
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events evicted by the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Events concerning one process.
    pub fn for_pid(&self, pid: Pid) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.pid == pid)
    }

    /// Reconstruct the per-process busy intervals on a CPU: each
    /// `(pid, start, end)` is one stretch of execution. Unterminated
    /// stretches are closed at `end_of_trace`.
    pub fn busy_intervals(&self, end_of_trace: Nanos) -> Vec<(Pid, Nanos, Nanos)> {
        let mut open: Vec<(Pid, Nanos)> = Vec::new();
        let mut out = Vec::new();
        for e in &self.events {
            match e.kind {
                TraceKind::Dispatch { .. } => open.push((e.pid, e.at)),
                TraceKind::Preempt { .. }
                | TraceKind::Block
                | TraceKind::Stop
                | TraceKind::Exit => {
                    if let Some(pos) = open.iter().position(|&(p, _)| p == e.pid) {
                        let (pid, start) = open.remove(pos);
                        out.push((pid, start, e.at));
                    }
                }
                _ => {}
            }
        }
        for (pid, start) in open {
            out.push((pid, start, end_of_trace));
        }
        out
    }

    /// Render an ASCII timeline: one row per pid, one column per `step` of
    /// simulated time, `#` where the process held a CPU.
    pub fn render_ascii(
        &self,
        pids: &[(Pid, &str)],
        from: Nanos,
        to: Nanos,
        step: Nanos,
    ) -> String {
        assert!(step > Nanos::ZERO && to > from);
        let cols = ((to - from).as_nanos() / step.as_nanos()) as usize;
        let intervals = self.busy_intervals(to);
        let mut s = String::new();
        for &(pid, name) in pids {
            let mut row = vec![b'.'; cols];
            for &(p, start, end) in &intervals {
                if p != pid {
                    continue;
                }
                let lo = start.max(from);
                let hi = end.min(to);
                if hi <= lo {
                    continue;
                }
                let c0 = ((lo - from).as_nanos() / step.as_nanos()) as usize;
                let c1 = (((hi - from).as_nanos()).div_ceil(step.as_nanos())) as usize;
                for c in row.iter_mut().take(c1.min(cols)).skip(c0) {
                    *c = b'#';
                }
            }
            s.push_str(&format!("{name:>12} |"));
            s.push_str(std::str::from_utf8(&row).expect("ascii"));
            s.push_str("|\n");
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_capacity() {
        let mut t = Trace::new(3);
        for i in 0..5 {
            t.push(Nanos(i), Pid(0), TraceKind::Wake);
        }
        assert_eq!(t.events().len(), 3);
        assert_eq!(t.dropped(), 2);
        assert_eq!(t.events()[0].at, Nanos(2));
    }

    #[test]
    fn zero_capacity_records_nothing() {
        let mut t = Trace::new(0);
        t.push(Nanos(1), Pid(0), TraceKind::Exit);
        assert!(t.events().is_empty());
    }

    #[test]
    fn busy_intervals_pair_dispatch_with_offcpu() {
        let mut t = Trace::new(100);
        t.push(Nanos(10), Pid(1), TraceKind::Dispatch { cpu: CpuId(0) });
        t.push(Nanos(30), Pid(1), TraceKind::Preempt { cpu: CpuId(0) });
        t.push(Nanos(30), Pid(2), TraceKind::Dispatch { cpu: CpuId(0) });
        t.push(Nanos(60), Pid(2), TraceKind::Block);
        t.push(Nanos(60), Pid(1), TraceKind::Dispatch { cpu: CpuId(0) });
        let iv = t.busy_intervals(Nanos(100));
        assert_eq!(iv.len(), 3);
        assert!(iv.contains(&(Pid(1), Nanos(10), Nanos(30))));
        assert!(iv.contains(&(Pid(2), Nanos(30), Nanos(60))));
        assert!(iv.contains(&(Pid(1), Nanos(60), Nanos(100))), "open-ended");
    }

    #[test]
    fn ascii_rendering_marks_busy_columns() {
        let mut t = Trace::new(100);
        t.push(Nanos(0), Pid(0), TraceKind::Dispatch { cpu: CpuId(0) });
        t.push(Nanos(50), Pid(0), TraceKind::Block);
        t.push(Nanos(50), Pid(1), TraceKind::Dispatch { cpu: CpuId(0) });
        let s = t.render_ascii(
            &[(Pid(0), "a"), (Pid(1), "b")],
            Nanos(0),
            Nanos(100),
            Nanos(10),
        );
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].contains("#####....."), "{s}");
        assert!(lines[1].contains(".....#####"), "{s}");
    }
}
