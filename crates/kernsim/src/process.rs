//! Simulated processes: states, behaviors, and interval timers.

use alps_core::Nanos;

use crate::cpu::CpuId;
use crate::pid::Pid;
use crate::sim::SimCtl;

/// What a process does next, returned by its [`Behavior`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// Consume this much CPU time, then ask the behavior again.
    Compute(Nanos),
    /// Compute-bound: consume CPU forever (the paper's synthetic workload).
    ComputeForever,
    /// Block on a wait channel for this long (models I/O), then ask again.
    Sleep(Nanos),
    /// Block until the process's interval timer next fires (models
    /// `setitimer` + `sigsuspend`, the ALPS wakeup mechanism). If a fire is
    /// already pending — the process was too busy or too starved to service
    /// it in time — this returns immediately, which is exactly the signal
    /// coalescing that makes an overloaded ALPS skip quanta.
    AwaitTimer,
    /// Terminate.
    Exit,
}

/// The program a simulated process runs.
///
/// `on_ready` is invoked when the process is first dispatched and each time
/// its previous [`Step`] completes (a burst finished, a sleep expired, a
/// timer fired). It receives a [`SimCtl`] through which it can read clocks
/// and other processes' accounting, send job-control signals, and manage
/// its interval timer — the same facilities a real unprivileged UNIX
/// process has.
pub trait Behavior {
    /// Decide the next step.
    fn on_ready(&mut self, ctl: &mut SimCtl<'_>) -> Step;

    /// Short label for traces and debugging.
    fn name(&self) -> &str {
        "proc"
    }
}

/// A compute-bound behavior: runs forever (the paper's synthetic workload).
#[derive(Debug, Default, Clone, Copy)]
pub struct ComputeBound;

impl Behavior for ComputeBound {
    fn on_ready(&mut self, _ctl: &mut SimCtl<'_>) -> Step {
        Step::ComputeForever
    }

    fn name(&self) -> &str {
        "compute"
    }
}

/// Alternates `run` of CPU with `sleep` of blocking — the §3.3 I/O workload
/// ("sleeping for 240 ms after every 80 ms of execution time").
#[derive(Debug, Clone, Copy)]
pub struct ComputeThenSleep {
    /// CPU burst length.
    pub run: Nanos,
    /// Blocked time after each burst.
    pub sleep: Nanos,
    /// CPU time to consume before the pattern starts (the §3.3 experiment
    /// lets the workload reach steady state first).
    pub start_after: Nanos,
    phase: IoPhase,
}

#[derive(Debug, Clone, Copy)]
enum IoPhase {
    Start,
    Ran,
    Slept,
}

impl ComputeThenSleep {
    /// A process that computes `start_after` of lead-in, then alternates
    /// `run` of CPU with `sleep` of blocking.
    pub fn new(run: Nanos, sleep: Nanos, start_after: Nanos) -> Self {
        ComputeThenSleep {
            run,
            sleep,
            start_after,
            phase: IoPhase::Start,
        }
    }
}

impl Behavior for ComputeThenSleep {
    fn on_ready(&mut self, _ctl: &mut SimCtl<'_>) -> Step {
        match self.phase {
            IoPhase::Start => {
                self.phase = IoPhase::Ran;
                Step::Compute(self.start_after + self.run)
            }
            IoPhase::Ran => {
                self.phase = IoPhase::Slept;
                Step::Sleep(self.sleep)
            }
            IoPhase::Slept => {
                self.phase = IoPhase::Ran;
                Step::Compute(self.run)
            }
        }
    }

    fn name(&self) -> &str {
        "compute+io"
    }
}

/// Process lifecycle state, mirroring the BSD proc states the paper's ALPS
/// inspects (`SRUN`, `SSLEEP`, `SSTOP`, `SZOMB`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PState {
    /// On the run queue (or about to be placed there).
    Runnable,
    /// Currently on the CPU.
    Running,
    /// Blocked on a wait channel. `until` is the wakeup time for timed
    /// sleeps; `None` means waiting for the interval timer.
    Sleeping {
        /// Wakeup deadline for a timed sleep; `None` while waiting on the
        /// interval timer.
        until: Option<Nanos>,
    },
    /// Stopped by `SIGSTOP`. `resume_sleep_until` remembers an interrupted
    /// timed sleep so `SIGCONT` can re-enter it; `Some(t)` with `t` in the
    /// past (or `None` with `was_awaiting_timer == false`) resumes to
    /// runnable.
    Stopped {
        /// Interrupted timed sleep to return to on `SIGCONT`.
        resume_sleep_until: Option<Nanos>,
        /// Whether the process was waiting on its interval timer.
        was_awaiting_timer: bool,
    },
    /// Exited; kept for post-mortem accounting.
    Exited,
}

impl PState {
    /// The one-letter state code `/proc` would show; ALPS's blocked test
    /// (§2.4) checks for `S` (sleeping on a wait channel).
    pub fn code(&self) -> char {
        match self {
            PState::Runnable => 'R',
            PState::Running => 'O',
            PState::Sleeping { .. } => 'S',
            PState::Stopped { .. } => 'T',
            PState::Exited => 'Z',
        }
    }
}

/// A process's interval timer (`setitimer(ITIMER_REAL)` analogue).
#[derive(Debug, Clone, Copy, Default)]
pub struct IntervalTimer {
    /// Firing period; zero disarms.
    pub period: Nanos,
    /// Next scheduled expiry.
    pub next_fire: Nanos,
    /// Event-staleness token.
    pub token: u64,
    /// A fire occurred while the process wasn't waiting; delivered on the
    /// next [`Step::AwaitTimer`] (pending-signal coalescing).
    pub pending: bool,
    /// Whether the timer is armed.
    pub armed: bool,
}

/// A simulated process.
pub struct Process {
    /// Its pid.
    pub pid: Pid,
    /// Human-readable name.
    pub name: String,
    /// Lifecycle state.
    pub state: PState,
    /// Nice value (−20..=20, 0 for everything in the paper).
    pub nice: i8,
    /// Recent-CPU estimate driving the decay-usage priority.
    pub estcpu: f64,
    /// Cached user priority.
    pub priority: u8,
    /// Whole seconds spent continuously asleep (for `updatepri`).
    pub slptime: u32,
    /// The `schedcpu` epoch at which this process was dropped from the
    /// decay-active set (its first whole second asleep). The wakeup path
    /// reconstructs the seconds `schedcpu` never counted as
    /// `current_epoch - sleep_epoch`, so long sleepers cost nothing per
    /// second while accruing the same `updatepri` credit.
    pub sleep_epoch: u64,
    /// Total CPU time consumed (event-exact ground truth).
    pub cputime: Nanos,
    /// Per-CPU breakdown of [`Process::cputime`], indexed by [`CpuId`].
    /// The invariant `cputime == cputime_per_cpu.iter().sum()` holds at
    /// every instant, across any number of steals and migrations.
    pub cputime_per_cpu: Vec<Nanos>,
    /// The CPU whose run queue (and `schedcpu` decay bitmap) currently
    /// holds this process. Assigned round-robin at spawn; follows the
    /// process when another CPU steals it.
    pub home: CpuId,
    /// Times the process was dispatched on a CPU other than its home
    /// (work steals / migrations). Always zero on a one-CPU machine.
    pub migrations: u64,
    /// Tick-sampled CPU time (what classic statclock accounting would
    /// report to user level); see `SimConfig::accounting`.
    pub visible_cputime: Nanos,
    /// Stride-scheduling tickets (only meaningful under
    /// `KernelPolicy::Stride`).
    pub tickets: u64,
    /// Stride-scheduling pass value.
    pub pass: f64,
    /// Remaining CPU in the current burst; `None` = compute forever.
    pub burst_remaining: Option<Nanos>,
    /// Wall-clock time of the current dispatch (for the RR slice).
    pub dispatched_at: Nanos,
    /// Woken from a wait channel and not yet dispatched: queued at the
    /// kernel sleep priority ([`crate::sched::PSLEEP`]) instead of the user
    /// priority. Cleared when the process reaches the CPU.
    pub kernel_boost: bool,
    /// Staleness token for Wake events.
    pub wake_token: u64,
    /// Staleness token for BurstDone events.
    pub burst_token: u64,
    /// Interval timer.
    pub timer: IntervalTimer,
    /// The program, temporarily taken out while it runs.
    pub behavior: Option<Box<dyn Behavior>>,
    /// Count of times this process was put on the CPU.
    pub dispatches: u64,
    /// Count of voluntary context switches (blocked or exited).
    pub voluntary_switches: u64,
}

impl std::fmt::Debug for Process {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Process")
            .field("pid", &self.pid)
            .field("name", &self.name)
            .field("state", &self.state)
            .field("priority", &self.priority)
            .field("estcpu", &self.estcpu)
            .field("cputime", &self.cputime)
            .finish_non_exhaustive()
    }
}

/// A read-only view of one process, returned by `Sim::proc`.
///
/// This is the query API experiment drivers use: one fallible lookup
/// (`sim.proc(pid)?`) instead of a family of per-field getters that each
/// panic on a bad pid. The view carries the simulation's accounting mode so
/// [`ProcView::visible_cputime`] reports what a user-level reader
/// (`getrusage`, `/proc`) would actually see.
#[derive(Debug, Clone, Copy)]
pub struct ProcView<'a> {
    pub(crate) proc: &'a Process,
    pub(crate) accounting: crate::sim::CpuAccounting,
}

impl<'a> ProcView<'a> {
    /// The process's pid.
    pub fn pid(&self) -> Pid {
        self.proc.pid
    }

    /// Process name.
    pub fn name(&self) -> &'a str {
        &self.proc.name
    }

    /// Lifecycle state.
    pub fn state(&self) -> PState {
        self.proc.state
    }

    /// The `/proc`-style one-letter state code.
    pub fn state_code(&self) -> char {
        self.proc.state.code()
    }

    /// Exact cumulative CPU time (simulation ground truth, valid after
    /// exit).
    pub fn cputime(&self) -> Nanos {
        self.proc.cputime
    }

    /// Cumulative CPU time as a *user-level reader* sees it: exact or
    /// tick-sampled per `SimConfig::accounting`.
    pub fn visible_cputime(&self) -> Nanos {
        match self.accounting {
            crate::sim::CpuAccounting::Exact => self.proc.cputime,
            crate::sim::CpuAccounting::TickSampled => self.proc.visible_cputime,
        }
    }

    /// Current decay-usage priority (lower is better).
    pub fn priority(&self) -> u8 {
        self.proc.priority
    }

    /// Nice value.
    pub fn nice(&self) -> i8 {
        self.proc.nice
    }

    /// Recent-CPU estimate driving the decay-usage priority.
    pub fn estcpu(&self) -> f64 {
        self.proc.estcpu
    }

    /// Times the process was placed on the CPU.
    pub fn dispatches(&self) -> u64 {
        self.proc.dispatches
    }

    /// Count of voluntary context switches (blocked or exited).
    pub fn voluntary_switches(&self) -> u64 {
        self.proc.voluntary_switches
    }

    /// The CPU whose run queue currently holds (or last held) the
    /// process — its scheduling home.
    pub fn home(&self) -> CpuId {
        self.proc.home
    }

    /// Times the process was dispatched away from its home CPU (work
    /// steals / migrations). Always zero on a one-CPU machine.
    pub fn migrations(&self) -> u64 {
        self.proc.migrations
    }

    /// Exact CPU time consumed on one CPU. The per-CPU readings always
    /// sum to [`ProcView::cputime`], however often the process migrated.
    pub fn cputime_on(&self, cpu: CpuId) -> Nanos {
        self.proc
            .cputime_per_cpu
            .get(cpu.index())
            .copied()
            .unwrap_or(Nanos::ZERO)
    }

    /// The full per-CPU breakdown of [`ProcView::cputime`], indexed by
    /// [`CpuId`].
    pub fn cputime_per_cpu(&self) -> &'a [Nanos] {
        &self.proc.cputime_per_cpu
    }

    /// Whether the process is blocked on a wait channel (the §2.4 test).
    pub fn is_blocked(&self) -> bool {
        matches!(self.proc.state, PState::Sleeping { .. })
    }

    /// Whether the process has exited.
    pub fn is_exited(&self) -> bool {
        matches!(self.proc.state, PState::Exited)
    }

    /// Whether the process is stopped by job control.
    pub fn is_stopped(&self) -> bool {
        matches!(self.proc.state, PState::Stopped { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_codes_match_proc_conventions() {
        assert_eq!(PState::Runnable.code(), 'R');
        assert_eq!(PState::Running.code(), 'O');
        assert_eq!(PState::Sleeping { until: None }.code(), 'S');
        assert_eq!(
            PState::Stopped {
                resume_sleep_until: None,
                was_awaiting_timer: false
            }
            .code(),
            'T'
        );
        assert_eq!(PState::Exited.code(), 'Z');
    }
}
