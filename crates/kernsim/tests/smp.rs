//! Tests of the SMP extension: multiple CPUs under the same decay-usage
//! policy. (Every experiment in the paper is uniprocessor; these tests
//! pin down the substrate the `repro smp` extension study runs on.)

use std::num::NonZeroUsize;

use alps_core::Nanos;
use kernsim::{Behavior, ComputeBound, CpuId, Sim, SimConfig, SimCtl, Step};

fn smp(cpus: usize) -> Sim {
    Sim::new(SimConfig {
        cpus: NonZeroUsize::new(cpus).unwrap(),
        ..SimConfig::default()
    })
}

#[test]
fn two_cpus_run_two_processes_concurrently() {
    let mut sim = smp(2);
    let a = sim.spawn("a", Box::new(ComputeBound));
    let b = sim.spawn("b", Box::new(ComputeBound));
    sim.run_until(Nanos::from_secs(5));
    // Each gets a whole CPU: no sharing, no idle.
    assert_eq!(sim.proc(a).unwrap().cputime(), Nanos::from_secs(5));
    assert_eq!(sim.proc(b).unwrap().cputime(), Nanos::from_secs(5));
    assert_eq!(sim.idle_time(), Nanos::ZERO);
}

#[test]
fn spare_cpu_idles() {
    let mut sim = smp(4);
    let a = sim.spawn("a", Box::new(ComputeBound));
    sim.run_until(Nanos::from_secs(2));
    assert_eq!(sim.proc(a).unwrap().cputime(), Nanos::from_secs(2));
    // Three CPUs idle for the whole run.
    assert_eq!(sim.idle_time(), Nanos::from_secs(6));
}

#[test]
fn time_conservation_scales_with_cpu_count() {
    let mut sim = smp(3);
    let pids: Vec<_> = (0..7)
        .map(|i| sim.spawn(format!("w{i}"), Box::new(ComputeBound)))
        .collect();
    let horizon = Nanos::from_secs(9);
    sim.run_until(horizon);
    let total: Nanos = pids.iter().map(|&p| sim.proc(p).unwrap().cputime()).sum();
    assert_eq!(total + sim.idle_time(), horizon * 3, "3 CPU-seconds/second");
    assert_eq!(sim.idle_time(), Nanos::ZERO, "7 > 3 procs: no idling");
}

#[test]
fn oversubscribed_smp_is_long_run_fair() {
    let mut sim = smp(2);
    let pids: Vec<_> = (0..6)
        .map(|i| sim.spawn(format!("w{i}"), Box::new(ComputeBound)))
        .collect();
    sim.run_until(Nanos::from_secs(30));
    // 2 CPUs over 6 equal processes: ~10s each.
    for &p in &pids {
        let c = sim.proc(p).unwrap().cputime().as_secs_f64();
        assert!(
            (c - 10.0).abs() < 1.0,
            "{}: {c}s",
            sim.proc(p).unwrap().name()
        );
    }
}

#[test]
fn sigstop_on_running_vacates_its_cpu_for_the_queue() {
    let mut sim = smp(2);
    let a = sim.spawn("a", Box::new(ComputeBound));
    let b = sim.spawn("b", Box::new(ComputeBound));
    let c = sim.spawn("c", Box::new(ComputeBound));
    sim.run_until(Nanos::from_secs(1));
    // a and b hold the CPUs roughly; stop whichever is running now.
    let victim = sim.running_on(CpuId(0)).unwrap();
    sim.sigstop(victim);
    let frozen = sim.proc(victim).unwrap().cputime();
    sim.run_until(Nanos::from_secs(4));
    assert_eq!(sim.proc(victim).unwrap().cputime(), frozen);
    // Remaining two processes share both CPUs fully.
    let others: Vec<_> = [a, b, c].into_iter().filter(|&p| p != victim).collect();
    let sum: Nanos = others.iter().map(|&p| sim.proc(p).unwrap().cputime()).sum();
    assert!(sum + frozen + sim.idle_time() == Nanos::from_secs(8));
    assert_eq!(sim.idle_time(), Nanos::ZERO);
}

#[test]
fn behavior_can_stop_a_process_running_on_another_cpu() {
    struct Police {
        target: kernsim::Pid,
        fired: bool,
    }
    impl Behavior for Police {
        fn on_ready(&mut self, ctl: &mut SimCtl<'_>) -> Step {
            if self.fired {
                Step::ComputeForever
            } else {
                self.fired = true;
                // The target is running on the other CPU right now.
                ctl.sigstop(self.target);
                Step::Compute(Nanos::from_millis(100))
            }
        }
    }
    let mut sim = smp(2);
    let victim = sim.spawn("victim", Box::new(ComputeBound));
    sim.run_until(Nanos::from_millis(50)); // victim occupies cpu0
    let cop = sim.spawn(
        "cop",
        Box::new(Police {
            target: victim,
            fired: false,
        }),
    );
    sim.run_until(Nanos::from_secs(1));
    assert!(sim.proc(victim).unwrap().is_stopped());
    assert!(sim.proc(victim).unwrap().cputime() < Nanos::from_millis(100));
    assert!(sim.proc(cop).unwrap().cputime() > Nanos::from_millis(800));
}

#[test]
fn idle_cpu_steals_from_a_loaded_one() {
    // Both workers spawn homed on cpu0 and cpu1 round-robin; a third is
    // homed on cpu0 again. With 2 CPUs and 3 compute-bound processes the
    // round-robin rotation forces cross-queue claims sooner or later.
    let mut sim = smp(2);
    sim.enable_trace(10_000);
    let pids: Vec<_> = (0..3)
        .map(|i| sim.spawn(format!("w{i}"), Box::new(ComputeBound)))
        .collect();
    sim.run_until(Nanos::from_secs(10));
    assert!(sim.steals() > 0, "3 procs on 2 CPUs must steal eventually");
    let per_proc: u64 = pids
        .iter()
        .map(|&p| sim.proc(p).unwrap().migrations())
        .sum();
    assert_eq!(per_proc, sim.steals(), "per-proc migrations sum to steals");
    let traced = sim
        .trace()
        .unwrap()
        .events()
        .iter()
        .filter(|e| matches!(e.kind, kernsim::TraceKind::Steal { .. }))
        .count() as u64;
    assert_eq!(traced, sim.steals(), "every steal is traced");
    sim.assert_index_consistent();
}

#[test]
fn no_steals_on_one_cpu() {
    let mut sim = smp(1);
    for i in 0..4 {
        sim.spawn(format!("w{i}"), Box::new(ComputeBound));
    }
    sim.run_until(Nanos::from_secs(10));
    assert_eq!(sim.steals(), 0);
}

#[test]
fn per_cpu_cputime_sums_to_the_total() {
    let mut sim = smp(3);
    let pids: Vec<_> = (0..5)
        .map(|i| sim.spawn(format!("w{i}"), Box::new(ComputeBound)))
        .collect();
    sim.run_until(Nanos::from_secs(12));
    for &p in &pids {
        let v = sim.proc(p).unwrap();
        let split: Nanos = v.cputime_per_cpu().iter().copied().sum();
        assert_eq!(split, v.cputime(), "{}: per-CPU split must sum", v.name());
        assert_eq!(v.cputime_per_cpu().len(), 3);
    }
}

#[test]
fn single_cpu_config_is_unchanged() {
    // The SMP generalization must not disturb the uniprocessor paper runs:
    // same seed, same trace as a 1-CPU machine.
    let run = |cpus: usize| {
        let mut sim = Sim::new(SimConfig {
            cpus: NonZeroUsize::new(cpus).unwrap(),
            seed: 7,
            spawn_estcpu_jitter: 8.0,
            ..SimConfig::default()
        });
        let pids: Vec<_> = (0..4)
            .map(|i| sim.spawn(format!("w{i}"), Box::new(ComputeBound)))
            .collect();
        sim.run_until(Nanos::from_secs(5));
        pids.iter()
            .map(|&p| sim.proc(p).unwrap().cputime().0)
            .collect::<Vec<_>>()
    };
    assert_eq!(run(1), run(1));
}
