//! Model-based property test: the bitmap run queue against a naive
//! reference implementation.

use kernsim::sched::RunQueue;
use kernsim::Pid;
use proptest::prelude::*;
use std::collections::VecDeque;

/// Reference: a plain sorted structure with FIFO semantics per priority.
#[derive(Default)]
struct Model {
    items: Vec<(u8, VecDeque<Pid>)>, // sorted by priority
}

impl Model {
    fn push(&mut self, pid: Pid, prio: u8) {
        let prio = prio.min(127);
        match self.items.binary_search_by_key(&prio, |(p, _)| *p) {
            Ok(i) => self.items[i].1.push_back(pid),
            Err(i) => {
                let mut q = VecDeque::new();
                q.push_back(pid);
                self.items.insert(i, (prio, q));
            }
        }
    }

    fn pop_best(&mut self) -> Option<(Pid, u8)> {
        let (prio, q) = self.items.first_mut()?;
        let prio = *prio;
        let pid = q.pop_front().expect("non-empty");
        if q.is_empty() {
            self.items.remove(0);
        }
        Some((pid, prio))
    }

    fn best_priority(&self) -> Option<u8> {
        self.items.first().map(|(p, _)| *p)
    }

    fn remove(&mut self, pid: Pid) -> bool {
        for i in 0..self.items.len() {
            if let Some(pos) = self.items[i].1.iter().position(|&q| q == pid) {
                self.items[i].1.remove(pos);
                if self.items[i].1.is_empty() {
                    self.items.remove(i);
                }
                return true;
            }
        }
        false
    }

    fn len(&self) -> usize {
        self.items.iter().map(|(_, q)| q.len()).sum()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn runqueue_matches_reference_model(
        ops in proptest::collection::vec((0u8..3, 0u32..40, 0u8..=255), 1..200),
    ) {
        let mut real = RunQueue::new();
        let mut model = Model::default();
        let mut next_unique = 1000u32;
        for (op, pid_n, prio) in ops {
            match op {
                0 => {
                    // push (unique pids so FIFO order is comparable)
                    let pid = Pid(next_unique);
                    next_unique += 1;
                    real.push(pid, prio);
                    model.push(pid, prio);
                    let _ = pid_n;
                }
                1 => {
                    prop_assert_eq!(real.pop_best(), model.pop_best());
                }
                _ => {
                    let pid = Pid(pid_n + 1000);
                    prop_assert_eq!(real.remove(pid), model.remove(pid));
                }
            }
            prop_assert_eq!(real.len(), model.len());
            prop_assert_eq!(real.is_empty(), model.len() == 0);
            prop_assert_eq!(real.best_priority(), model.best_priority());
        }
        // Drain both and compare total order.
        loop {
            let a = real.pop_best();
            let b = model.pop_best();
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}
