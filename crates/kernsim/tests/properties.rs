//! Property-based tests of the kernel simulator's physical invariants:
//! time conservation, determinism, and job-control safety under arbitrary
//! workloads and driver interference.

use std::num::NonZeroUsize;

use alps_core::Nanos;
use kernsim::event::{EventKind, EventQueue};
use kernsim::{Behavior, ComputeBound, EventQueueKind, Sim, SimConfig, SimCtl, Step};
use proptest::prelude::*;

/// A behavior exercising every step type from a scripted list.
struct Scripted {
    steps: Vec<Step>,
    at: usize,
}

impl Behavior for Scripted {
    fn on_ready(&mut self, _ctl: &mut SimCtl<'_>) -> Step {
        let step = self.steps.get(self.at).copied().unwrap_or(Step::Exit);
        self.at += 1;
        step
    }
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (1u64..200_000_000).prop_map(|ns| Step::Compute(Nanos(ns))),
        (1u64..300_000_000).prop_map(|ns| Step::Sleep(Nanos(ns))),
        Just(Step::ComputeForever),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// CPU time is conserved: every nanosecond of simulated time is either
    /// charged to exactly one process or to idle.
    #[test]
    fn time_is_conserved(
        scripts in proptest::collection::vec(
            proptest::collection::vec(step_strategy(), 1..12),
            1..6,
        ),
        horizon_ms in 100u64..5_000,
    ) {
        let mut sim = Sim::new(SimConfig::default());
        let pids: Vec<_> = scripts
            .into_iter()
            .enumerate()
            .map(|(i, steps)| sim.spawn(format!("s{i}"), Box::new(Scripted { steps, at: 0 })))
            .collect();
        let horizon = Nanos::from_millis(horizon_ms);
        sim.run_until(horizon);
        let total: Nanos = pids.iter().map(|&p| sim.proc(p).unwrap().cputime()).sum();
        prop_assert_eq!(total + sim.idle_time(), horizon);
    }

    /// The simulation is a pure function of its seed and inputs.
    #[test]
    fn determinism(
        seed in any::<u64>(),
        n in 1usize..8,
        horizon_ms in 100u64..3_000,
    ) {
        let run = || {
            let cfg = SimConfig { seed, spawn_estcpu_jitter: 8.0, ..SimConfig::default() };
            let mut sim = Sim::new(cfg);
            let pids: Vec<_> = (0..n)
                .map(|i| sim.spawn(format!("w{i}"), Box::new(ComputeBound)))
                .collect();
            sim.run_until(Nanos::from_millis(horizon_ms));
            pids.iter()
                .map(|&p| (sim.proc(p).unwrap().cputime().0, sim.proc(p).unwrap().dispatches()))
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }

    /// Arbitrary driver-initiated stop/cont/terminate interference never
    /// panics, never loses time, and stopped processes never consume CPU.
    #[test]
    fn job_control_interference(
        n in 2usize..6,
        actions in proptest::collection::vec((0u8..3, 0usize..6, 1u64..400), 5..40),
    ) {
        let mut sim = Sim::new(SimConfig::default());
        let pids: Vec<_> = (0..n)
            .map(|i| sim.spawn(format!("w{i}"), Box::new(ComputeBound)))
            .collect();
        let mut t = Nanos::ZERO;
        for (op, target, delay_ms) in actions {
            t += Nanos::from_millis(delay_ms);
            sim.run_until(t);
            let pid = pids[target % pids.len()];
            let before = sim.proc(pid).unwrap().cputime();
            match op {
                0 => sim.sigstop(pid),
                1 => sim.sigcont(pid),
                _ => sim.terminate(pid),
            }
            // The signal itself consumes no target CPU.
            prop_assert_eq!(sim.proc(pid).unwrap().cputime(), before);
            if op == 0 && !sim.proc(pid).unwrap().is_exited() {
                // A stopped process stays stopped until continued.
                let frozen = sim.proc(pid).unwrap().cputime();
                let probe = t + Nanos::from_millis(50);
                sim.run_until(probe);
                t = probe;
                prop_assert_eq!(sim.proc(pid).unwrap().cputime(), frozen);
                prop_assert!(sim.proc(pid).unwrap().is_stopped());
            }
        }
        // Conservation still holds after all the interference.
        let total: Nanos = pids.iter().map(|&p| sim.proc(p).unwrap().cputime()).sum();
        prop_assert_eq!(total + sim.idle_time(), sim.now());
    }

    /// The work-conserving property: while any process is runnable, the
    /// CPU is never idle.
    #[test]
    fn work_conserving_with_compute_bound(
        n in 1usize..10,
        horizon_ms in 50u64..2_000,
    ) {
        let mut sim = Sim::new(SimConfig::default());
        for i in 0..n {
            sim.spawn(format!("w{i}"), Box::new(ComputeBound));
        }
        sim.run_until(Nanos::from_millis(horizon_ms));
        prop_assert_eq!(sim.idle_time(), Nanos::ZERO);
    }

    /// SMP time conservation: on an M-CPU machine every nanosecond of
    /// machine time (horizon × M) is charged to exactly one process's
    /// per-CPU slot or to idle, under arbitrary workloads. Steals and
    /// migrations move *where* future time is charged, never how much —
    /// and each process's merged total equals the sum of its per-CPU
    /// split at every M ∈ {1, 2, 4}.
    #[test]
    fn smp_time_is_conserved_and_the_split_sums(
        cpus in prop_oneof![Just(1usize), Just(2), Just(4)],
        scripts in proptest::collection::vec(
            proptest::collection::vec(step_strategy(), 1..12),
            1..8,
        ),
        horizon_ms in 100u64..3_000,
    ) {
        let cfg = SimConfig {
            cpus: NonZeroUsize::new(cpus).unwrap(),
            ..SimConfig::default()
        };
        let mut sim = Sim::new(cfg);
        let pids: Vec<_> = scripts
            .into_iter()
            .enumerate()
            .map(|(i, steps)| sim.spawn(format!("s{i}"), Box::new(Scripted { steps, at: 0 })))
            .collect();
        let horizon = Nanos::from_millis(horizon_ms);
        sim.run_until(horizon);
        let mut total = Nanos::ZERO;
        for &p in &pids {
            let v = sim.proc(p).unwrap();
            prop_assert_eq!(v.cputime_per_cpu().len(), cpus);
            let split: Nanos = v.cputime_per_cpu().iter().copied().sum();
            prop_assert_eq!(split, v.cputime(), "merged total != sum of per-CPU split");
            total += v.cputime();
        }
        prop_assert_eq!(total + sim.idle_time(), Nanos(horizon.0 * cpus as u64));
    }

    /// Migration bookkeeping closes: the machine-wide steal counter
    /// equals the sum of per-process migration counts, and conservation
    /// survives stop/cont interference that empties queues and forces
    /// repeated re-homing.
    #[test]
    fn smp_migration_accounting_closes_under_interference(
        cpus in prop_oneof![Just(2usize), Just(4)],
        n in 3usize..8,
        actions in proptest::collection::vec((0u8..2, 0usize..8, 1u64..200), 4..24),
    ) {
        let cfg = SimConfig {
            cpus: NonZeroUsize::new(cpus).unwrap(),
            spawn_estcpu_jitter: 4.0,
            ..SimConfig::default()
        };
        let mut sim = Sim::new(cfg);
        let pids: Vec<_> = (0..n)
            .map(|i| sim.spawn(format!("w{i}"), Box::new(ComputeBound)))
            .collect();
        let mut t = Nanos::ZERO;
        for (op, target, delay_ms) in actions {
            t += Nanos::from_millis(delay_ms);
            sim.run_until(t);
            let pid = pids[target % pids.len()];
            match op {
                0 => sim.sigstop(pid),
                _ => sim.sigcont(pid),
            }
        }
        t += Nanos::from_millis(200);
        sim.run_until(t);
        let migrations: u64 = pids.iter().map(|&p| sim.proc(p).unwrap().migrations()).sum();
        prop_assert_eq!(migrations, sim.steals(), "per-process migrations != machine steals");
        let mut total = Nanos::ZERO;
        for &p in &pids {
            let v = sim.proc(p).unwrap();
            let split: Nanos = v.cputime_per_cpu().iter().copied().sum();
            prop_assert_eq!(split, v.cputime());
            total += v.cputime();
        }
        prop_assert_eq!(total + sim.idle_time(), Nanos(sim.now().0 * cpus as u64));
    }

    /// Long-run fairness of the decay scheduler itself: equal compute-bound
    /// processes converge to equal CPU within a slice-scale bound.
    #[test]
    fn decay_scheduler_fairness(
        seed in any::<u64>(),
        n in 2usize..6,
    ) {
        let cfg = SimConfig { seed, spawn_estcpu_jitter: 8.0, ..SimConfig::default() };
        let mut sim = Sim::new(cfg);
        let pids: Vec<_> = (0..n)
            .map(|i| sim.spawn(format!("w{i}"), Box::new(ComputeBound)))
            .collect();
        let horizon = Nanos::from_secs(20);
        sim.run_until(horizon);
        let want = horizon.as_secs_f64() / n as f64;
        for &p in &pids {
            let got = sim.proc(p).unwrap().cputime().as_secs_f64();
            prop_assert!(
                (got - want).abs() < 0.8,
                "pid {p}: {got:.2}s vs fair {want:.2}s"
            );
        }
    }

    /// The timing wheel and the binary heap pop any legal schedule in the
    /// identical `(time, seq)` order. Offsets mix zero (simultaneous
    /// events, including inserts at the just-consumed time), slot-dense,
    /// level-crossing, and beyond-span values (horizon parking), and pops
    /// interleave with schedules so the wheel cursor keeps moving.
    #[test]
    fn event_queues_pop_any_legal_schedule_identically(
        ops in proptest::collection::vec(
            (
                prop_oneof![
                    0u64..4,                        // dense + simultaneous
                    0u64..10_000,                   // level 0–2 spans
                    0u64..(1u64 << 30),             // mid-level crossings
                    (1u64 << 36)..(1u64 << 38),     // beyond span: parks
                ],
                0usize..4,                          // pops after this schedule
            ),
            1..250,
        ),
    ) {
        let mut wheel = EventQueue::with_kind(EventQueueKind::Wheel, 0);
        let mut heap = EventQueue::with_kind(EventQueueKind::Heap, 0);
        // Schedules never land before the last popped time — the same
        // contract the simulator honors (its clock never outruns the
        // queue), and the wheel cursor requires.
        let mut floor = 0u64;
        let mut last: Option<(Nanos, u64)> = None;
        let mut popped = 0usize;
        let total = ops.len();
        for (off, pops) in ops {
            let at = Nanos(floor.saturating_add(off));
            wheel.schedule(at, EventKind::Tick);
            heap.schedule(at, EventKind::Tick);
            prop_assert_eq!(wheel.peek_time(), heap.peek_time());
            prop_assert_eq!(wheel.len(), heap.len());
            for _ in 0..pops {
                let (a, b) = (wheel.pop(), heap.pop());
                prop_assert_eq!(a, b);
                let Some(e) = a else { break };
                if let Some(prev) = last {
                    prop_assert!((e.at, e.seq) > prev, "pop order regressed");
                }
                last = Some((e.at, e.seq));
                floor = e.at.0;
                popped += 1;
            }
        }
        // Drain both to empty; order must stay identical to the end.
        loop {
            let (a, b) = (wheel.pop(), heap.pop());
            prop_assert_eq!(a, b);
            let Some(e) = a else { break };
            if let Some(prev) = last {
                prop_assert!((e.at, e.seq) > prev, "drain order regressed");
            }
            last = Some((e.at, e.seq));
            popped += 1;
        }
        prop_assert_eq!(popped, total, "every scheduled event must pop exactly once");
    }
}
