//! Tests of the visible-CPU accounting modes (exact vs statclock-sampled).

use alps_core::Nanos;
use kernsim::{Behavior, ComputeBound, CpuAccounting, Sim, SimConfig, SimCtl, Step};

fn sampled_sim() -> Sim {
    Sim::new(SimConfig {
        accounting: CpuAccounting::TickSampled,
        ..SimConfig::default()
    })
}

#[test]
fn exact_mode_visible_equals_ground_truth() {
    let mut sim = Sim::new(SimConfig::default());
    let a = sim.spawn("a", Box::new(ComputeBound));
    let b = sim.spawn("b", Box::new(ComputeBound));
    sim.run_until(Nanos::from_secs(3));
    for p in [a, b] {
        assert_eq!(
            sim.proc(p).unwrap().visible_cputime(),
            sim.proc(p).unwrap().cputime()
        );
    }
}

#[test]
fn sampled_mode_charges_whole_ticks_to_the_runner() {
    let mut sim = sampled_sim();
    let a = sim.spawn("a", Box::new(ComputeBound));
    sim.run_until(Nanos::from_secs(2));
    // Sole runner: it is running at every tick, so the visible clock
    // matches wall time exactly (200 ticks × 10 ms).
    assert_eq!(sim.proc(a).unwrap().visible_cputime(), Nanos::from_secs(2));
    assert_eq!(sim.proc(a).unwrap().cputime(), Nanos::from_secs(2));
}

#[test]
fn sampled_mode_misses_sub_tick_bursts() {
    // A process that always runs *between* ticks is never charged — the
    // classic statclock blind spot that lets a user-level scheduler look
    // free (and the reason kernsim charges estcpu continuously).
    struct BetweenTicks;
    impl Behavior for BetweenTicks {
        fn on_ready(&mut self, ctl: &mut SimCtl<'_>) -> Step {
            let tick = Nanos::from_millis(10);
            let now = ctl.now();
            let next_tick = Nanos(now.as_nanos().div_ceil(tick.as_nanos()) * tick.as_nanos());
            if now + Nanos::from_millis(2) < next_tick {
                Step::Compute(Nanos::from_millis(1))
            } else {
                // Hide across the tick.
                Step::Sleep(
                    (next_tick + Nanos::from_micros(100))
                        .saturating_sub(now)
                        .max(Nanos(1)),
                )
            }
        }
    }
    let mut sim = sampled_sim();
    let sneak = sim.spawn("sneak", Box::new(BetweenTicks));
    sim.run_until(Nanos::from_secs(2));
    assert!(
        sim.proc(sneak).unwrap().cputime() > Nanos::from_millis(500),
        "really consumed {}",
        sim.proc(sneak).unwrap().cputime()
    );
    assert_eq!(
        sim.proc(sneak).unwrap().visible_cputime(),
        Nanos::ZERO,
        "statclock never catches it"
    );
}

#[test]
fn sampled_mode_is_unbiased_for_interleaved_runners() {
    let mut sim = sampled_sim();
    let pids: Vec<_> = (0..4)
        .map(|i| sim.spawn(format!("w{i}"), Box::new(ComputeBound)))
        .collect();
    sim.run_until(Nanos::from_secs(40));
    for &p in &pids {
        let exact = sim.proc(p).unwrap().cputime().as_secs_f64();
        let visible = sim.proc(p).unwrap().visible_cputime().as_secs_f64();
        assert!(
            (visible - exact).abs() < 0.6,
            "visible {visible:.2}s vs exact {exact:.2}s"
        );
    }
}
