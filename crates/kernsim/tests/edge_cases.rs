//! Edge-case tests of the simulator's timers, signals, and lifecycle
//! machinery — the paths the main tests cross only incidentally.

use alps_core::Nanos;
use kernsim::{Behavior, ComputeBound, Sim, SimConfig, SimCtl, Step};

/// Re-arms its interval timer with a different period after a few fires,
/// then cancels it and exits.
struct RearmingTimer {
    fires: u32,
    fire_times: Vec<Nanos>,
}

impl Behavior for RearmingTimer {
    fn on_ready(&mut self, ctl: &mut SimCtl<'_>) -> Step {
        match self.fires {
            0 => {
                ctl.set_interval_timer(Nanos::from_millis(100));
            }
            1..=3 => {
                self.fire_times.push(ctl.now());
            }
            4 => {
                self.fire_times.push(ctl.now());
                // Re-arm with a shorter period: old pending fire events
                // must be invalidated by the token bump.
                ctl.set_interval_timer(Nanos::from_millis(30));
            }
            5..=7 => {
                self.fire_times.push(ctl.now());
            }
            _ => {
                ctl.cancel_interval_timer();
                return Step::Exit;
            }
        }
        self.fires += 1;
        Step::AwaitTimer
    }
}

#[test]
fn timer_rearm_and_cancel() {
    let mut sim = Sim::new(SimConfig::default());
    // Wrap to extract fire times: use a shared Vec.
    let times = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
    struct Shim {
        inner: RearmingTimer,
        out: std::rc::Rc<std::cell::RefCell<Vec<Nanos>>>,
    }
    impl Behavior for Shim {
        fn on_ready(&mut self, ctl: &mut SimCtl<'_>) -> Step {
            let step = self.inner.on_ready(ctl);
            *self.out.borrow_mut() = self.inner.fire_times.clone();
            step
        }
    }
    let p = sim.spawn(
        "t",
        Box::new(Shim {
            inner: RearmingTimer {
                fires: 0,
                fire_times: Vec::new(),
            },
            out: std::rc::Rc::clone(&times),
        }),
    );
    sim.run_until(Nanos::from_secs(2));
    assert!(sim.proc(p).unwrap().is_exited());
    let t = times.borrow();
    // First arming: fires at 100,200,300,400ms; re-arm at 400 -> fires at
    // 430,460,490ms.
    assert_eq!(t.len(), 7, "{t:?}");
    assert_eq!(t[0], Nanos::from_millis(100));
    assert_eq!(t[3], Nanos::from_millis(400));
    assert_eq!(t[4], Nanos::from_millis(430));
    assert_eq!(t[6], Nanos::from_millis(490));
}

#[test]
fn redundant_signals_are_idempotent() {
    let mut sim = Sim::new(SimConfig::default());
    let a = sim.spawn("a", Box::new(ComputeBound));
    let b = sim.spawn("b", Box::new(ComputeBound));
    sim.run_until(Nanos::from_millis(500));
    sim.sigstop(a);
    sim.sigstop(a); // second stop: no-op
    let frozen = sim.proc(a).unwrap().cputime();
    sim.run_until(Nanos::from_secs(1));
    sim.sigcont(a);
    sim.sigcont(a); // second cont: no-op
    sim.sigcont(b); // cont of a running proc: no-op
    sim.run_until(Nanos::from_secs(2));
    assert!(sim.proc(a).unwrap().cputime() > frozen);
    assert_eq!(
        sim.proc(a).unwrap().cputime() + sim.proc(b).unwrap().cputime() + sim.idle_time(),
        Nanos::from_secs(2)
    );
}

#[test]
fn signals_to_exited_processes_are_ignored() {
    struct Quick;
    impl Behavior for Quick {
        fn on_ready(&mut self, ctl: &mut SimCtl<'_>) -> Step {
            if ctl.my_cputime() == Nanos::ZERO {
                Step::Compute(Nanos::from_millis(10))
            } else {
                Step::Exit
            }
        }
    }
    let mut sim = Sim::new(SimConfig::default());
    let p = sim.spawn("q", Box::new(Quick));
    sim.run_until(Nanos::from_millis(200));
    assert!(sim.proc(p).unwrap().is_exited());
    sim.sigstop(p);
    sim.sigcont(p);
    sim.terminate(p);
    assert!(sim.proc(p).unwrap().is_exited());
    assert_eq!(sim.proc(p).unwrap().cputime(), Nanos::from_millis(10));
}

#[test]
fn stop_interrupted_sleep_then_terminate() {
    struct Sleeper;
    impl Behavior for Sleeper {
        fn on_ready(&mut self, _: &mut SimCtl<'_>) -> Step {
            Step::Sleep(Nanos::from_secs(1))
        }
    }
    let mut sim = Sim::new(SimConfig::default());
    let p = sim.spawn("s", Box::new(Sleeper));
    sim.run_until(Nanos::from_millis(100));
    sim.sigstop(p);
    sim.run_until(Nanos::from_millis(200));
    sim.terminate(p);
    // The stale Wake event for the interrupted sleep must not resurrect it.
    sim.run_until(Nanos::from_secs(3));
    assert!(sim.proc(p).unwrap().is_exited());
    assert_eq!(sim.proc(p).unwrap().cputime(), Nanos::ZERO);
}

#[test]
fn run_until_same_instant_is_a_noop() {
    let mut sim = Sim::new(SimConfig::default());
    let a = sim.spawn("a", Box::new(ComputeBound));
    sim.run_until(Nanos::from_millis(100));
    let before = sim.proc(a).unwrap().cputime();
    sim.run_until(Nanos::from_millis(100));
    assert_eq!(sim.proc(a).unwrap().cputime(), before);
    assert_eq!(sim.now(), Nanos::from_millis(100));
}

#[test]
#[should_panic(expected = "cannot run backwards")]
fn run_until_rejects_past_deadlines() {
    let mut sim = Sim::new(SimConfig::default());
    sim.run_until(Nanos::from_millis(100));
    sim.run_until(Nanos::from_millis(50));
}

#[test]
#[should_panic(expected = "AwaitTimer with no armed interval timer")]
fn await_without_timer_is_a_bug() {
    struct Bad;
    impl Behavior for Bad {
        fn on_ready(&mut self, _: &mut SimCtl<'_>) -> Step {
            Step::AwaitTimer
        }
    }
    let mut sim = Sim::new(SimConfig::default());
    sim.spawn("bad", Box::new(Bad));
}

#[test]
fn nice_processes_get_less_cpu() {
    let mut sim = Sim::new(SimConfig::default());
    let normal = sim.spawn_nice("normal", 0, Box::new(ComputeBound));
    let nice = sim.spawn_nice("nice", 10, Box::new(ComputeBound));
    sim.run_until(Nanos::from_secs(20));
    let cn = sim.proc(normal).unwrap().cputime().as_secs_f64();
    let cv = sim.proc(nice).unwrap().cputime().as_secs_f64();
    assert!(
        cn > cv * 1.5,
        "nice +10 should yield well under half: {cn:.2} vs {cv:.2}"
    );
    assert_eq!(
        sim.proc(normal).unwrap().cputime() + sim.proc(nice).unwrap().cputime(),
        Nanos::from_secs(20)
    );
}
