//! Property test: arbitrary `SIGSTOP`/`SIGCONT`/terminate sequences, fired
//! at arbitrary times into a mixed workload, must leave the pid→slot map,
//! the live index, and the ready queues exactly consistent with a
//! brute-force scan of every process's state
//! (`Sim::assert_index_consistent`), under both queue implementations.

use alps_core::Nanos;
use kernsim::{ComputeBound, ComputeThenSleep, Sim, SimConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn signal_churn_keeps_every_index_consistent(
        seed in 0u64..1_000,
        kind in 0u8..2,
        ops in proptest::collection::vec((0u8..4, 0usize..12, 1u64..120), 1..50),
    ) {
        let cfg = SimConfig {
            seed,
            spawn_estcpu_jitter: 4.0,
            runqueue: if kind == 0 {
                kernsim::RunQueueKind::Indexed
            } else {
                kernsim::RunQueueKind::Linear
            },
            ..SimConfig::default()
        };
        let mut sim = Sim::new(cfg);
        let mut pids = Vec::new();
        for i in 0..8 {
            pids.push(sim.spawn(format!("cpu{i}"), Box::new(ComputeBound)));
        }
        for i in 0..4 {
            pids.push(sim.spawn(
                format!("io{i}"),
                Box::new(ComputeThenSleep::new(
                    Nanos::from_millis(30),
                    Nanos::from_millis(90),
                    Nanos::ZERO,
                )),
            ));
        }
        sim.assert_index_consistent();

        let mut t = Nanos::ZERO;
        for (op, target, dt_ms) in ops {
            t += Nanos::from_millis(dt_ms);
            sim.run_until(t);
            let pid = pids[target % pids.len()];
            match op {
                0 => sim.sigstop(pid),
                1 => sim.sigcont(pid),
                2 => sim.terminate(pid),
                _ => {} // just advance time
            }
            sim.assert_index_consistent();
        }

        // Drain the tail: revive everyone and run on; the machine must
        // still be internally consistent and conserve time.
        for &p in &pids {
            sim.sigcont(p);
        }
        let end = t + Nanos::from_secs(2);
        sim.run_until(end);
        sim.assert_index_consistent();
        let total: Nanos = pids
            .iter()
            .map(|&p| sim.proc(p).unwrap().cputime())
            .fold(Nanos::ZERO, |acc, c| acc + c);
        prop_assert_eq!(total + sim.idle_time(), end, "time conservation");
    }
}
