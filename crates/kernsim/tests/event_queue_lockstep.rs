//! Lockstep equivalence of the timing-wheel and binary-heap event queues.
//!
//! [`SimConfig::event_queue`] selects a pure data structure: both kinds
//! must dequeue events in identical `(time, seq)` order, so switching the
//! queue must not change a single scheduling decision. This drives pairs
//! of simulations — one per queue kind — through an identical script of
//! workloads and `SIGSTOP`/`SIGCONT`/terminate churn on M ∈ {1, 2, 4}
//! CPUs, and demands byte-identical traces, accounting, event counts, and
//! conformance-style run fingerprints.

use std::num::NonZeroUsize;

use alps_core::Nanos;
use kernsim::trace::TraceKind;
use kernsim::{
    ComputeBound, ComputeThenSleep, EventQueueKind, FaultLog, FaultPlan, FaultRates, Pid,
    RunQueueKind, Sim, SimConfig,
};

/// Deterministic churn driver shared by both runs (split-mix style; the
/// sequence must not depend on the simulation being driven).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// Everything observable about a finished run. `PartialEq` on the whole
/// struct is the lockstep assertion; `fingerprint` folds the same data
/// into one word, mirroring the conformance suite's `DriveReport`
/// fingerprints, so failures can be triaged to "which run diverged"
/// before diffing multi-thousand-event traces.
#[derive(Debug, PartialEq)]
struct Snapshot {
    trace: Vec<(Nanos, Pid, TraceKind)>,
    per_proc: Vec<(Nanos, Nanos, u64, char)>,
    ctx_switches: u64,
    idle: Nanos,
    events_handled: u64,
    live: usize,
    fingerprint: u64,
}

/// Fold one word into an FNV-style fingerprint (the same fold the
/// conformance harness uses for `DriveReport::fingerprint`).
fn fold(fp: &mut u64, word: u64) {
    *fp = fp.wrapping_mul(0x0000_0100_0000_01B3) ^ word;
}

/// Fold a [`TraceKind`] — discriminant tag plus CPU payload — so that
/// kinds differing only in which CPU they name still fingerprint apart.
fn fold_kind(fp: &mut u64, kind: TraceKind) {
    let (tag, a, b) = match kind {
        TraceKind::Dispatch { cpu } => (0, cpu.0, 0),
        TraceKind::Preempt { cpu } => (1, cpu.0, 0),
        TraceKind::Steal { from, to } => (2, from.0, to.0),
        TraceKind::Block => (3, 0, 0),
        TraceKind::Wake => (4, 0, 0),
        TraceKind::Stop => (5, 0, 0),
        TraceKind::Continue => (6, 0, 0),
        TraceKind::Exit => (7, 0, 0),
    };
    fold(fp, tag);
    fold(fp, a as u64);
    fold(fp, b as u64);
}

impl Snapshot {
    fn fingerprint(&mut self) {
        let mut fp = 0u64;
        for &(at, pid, kind) in &self.trace {
            fold(&mut fp, at.0);
            fold(&mut fp, pid.0 as u64);
            fold_kind(&mut fp, kind);
        }
        for &(cpu, vis, disp, code) in &self.per_proc {
            fold(&mut fp, cpu.0);
            fold(&mut fp, vis.0);
            fold(&mut fp, disp);
            fold(&mut fp, code as u64);
        }
        fold(&mut fp, self.ctx_switches);
        fold(&mut fp, self.idle.0);
        fold(&mut fp, self.events_handled);
        fold(&mut fp, self.live as u64);
        self.fingerprint = fp;
    }
}

fn run(queue: EventQueueKind, cpus: usize) -> Snapshot {
    let cfg = SimConfig {
        seed: 23,
        spawn_estcpu_jitter: 8.0,
        runqueue: RunQueueKind::Indexed,
        event_queue: queue,
        cpus: NonZeroUsize::new(cpus).unwrap(),
        ..SimConfig::default()
    };
    let mut sim = Sim::new(cfg);
    sim.enable_trace(1 << 20);
    let mut pids = Vec::new();
    for i in 0..10 {
        pids.push(sim.spawn(format!("cpu{i}"), Box::new(ComputeBound)));
    }
    for i in 0..4 {
        // The §3.3 I/O shape: 80 ms of CPU, 240 ms blocked.
        pids.push(sim.spawn(
            format!("io{i}"),
            Box::new(ComputeThenSleep::new(
                Nanos::from_millis(80),
                Nanos::from_millis(240),
                Nanos::ZERO,
            )),
        ));
    }
    // One sleeper whose wakeup lands beyond the wheel's ~68.7 s span, so
    // the churn run schedules (and later drains) a horizon-parked event.
    pids.push(sim.spawn(
        "far".to_string(),
        Box::new(ComputeThenSleep::new(
            Nanos::from_millis(5),
            Nanos::from_secs(90),
            Nanos::ZERO,
        )),
    ));

    let mut rng = Lcg(0x5EED_0E41);
    let mut events_handled = 0;
    // 300 slices of 100 ms = 30 simulated seconds, churning in between.
    for slice in 1..=300u64 {
        events_handled += sim.run_until(Nanos::from_millis(100 * slice));
        let pid = pids[(rng.next() as usize) % pids.len()];
        match rng.next() % 4 {
            0 => sim.sigstop(pid),
            1 => sim.sigcont(pid),
            // Terminate sparingly so the machine stays busy.
            2 if slice % 37 == 0 => sim.terminate(pid),
            _ => {}
        }
        sim.assert_index_consistent();
    }
    // Leave no one stopped, then run past the parked wakeup so the far
    // sleeper's horizon event is actually popped, not just scheduled.
    for &p in &pids {
        sim.sigcont(p);
    }
    events_handled += sim.run_until(Nanos::from_secs(100));
    sim.assert_index_consistent();

    let mut snap = Snapshot {
        trace: sim
            .trace()
            .expect("enabled")
            .events()
            .iter()
            .map(|e| (e.at, e.pid, e.kind))
            .collect(),
        per_proc: pids
            .iter()
            .map(|&p| {
                let v = sim.proc(p).expect("spawned");
                (
                    v.cputime(),
                    v.visible_cputime(),
                    v.dispatches(),
                    v.state_code(),
                )
            })
            .collect(),
        ctx_switches: sim.context_switches(),
        idle: sim.idle_time(),
        events_handled,
        live: sim.live_count(),
        fingerprint: 0,
    };
    snap.fingerprint();
    snap
}

fn assert_lockstep(cpus: usize) {
    let wheel = run(EventQueueKind::Wheel, cpus);
    let heap = run(EventQueueKind::Heap, cpus);
    assert!(
        wheel.trace.len() > 1000,
        "the fixture must exercise a real schedule, got {} trace events (M = {cpus})",
        wheel.trace.len()
    );
    assert!(
        wheel
            .trace
            .iter()
            .any(|&(_, _, k)| matches!(k, TraceKind::Exit)),
        "churn must include terminations (M = {cpus})"
    );
    assert!(wheel.fingerprint != 0, "fingerprint never folded");
    assert_eq!(
        wheel.fingerprint, heap.fingerprint,
        "run fingerprints diverge between queue kinds (M = {cpus})"
    );
    assert_eq!(wheel, heap, "wheel and heap runs diverge (M = {cpus})");
}

#[test]
fn wheel_is_trace_identical_to_heap_on_one_cpu() {
    assert_lockstep(1);
}

#[test]
fn wheel_is_trace_identical_to_heap_on_two_cpus() {
    assert_lockstep(2);
}

#[test]
fn wheel_is_trace_identical_to_heap_on_four_cpus() {
    assert_lockstep(4);
}

/// Drive churn from a chaotic [`FaultPlan`] instead of a plain LCG: slice
/// deadlines come from the plan's monotonic jittered clock and stop/cont/
/// terminate decisions from its fault draws. The plan must consume the
/// identical decision stream on both queue kinds (equal [`FaultLog`]s)
/// and the runs must stay byte-identical — the regression guard for
/// injected delays re-minting the clock forward rather than leaning on
/// the heap to reorder a backwards timestamp.
fn run_faulty(queue: EventQueueKind) -> (Snapshot, FaultLog) {
    let cfg = SimConfig {
        seed: 31,
        spawn_estcpu_jitter: 8.0,
        event_queue: queue,
        ..SimConfig::default()
    };
    let mut sim = Sim::new(cfg);
    sim.enable_trace(1 << 20);
    let mut pids = Vec::new();
    for i in 0..8 {
        pids.push(sim.spawn(format!("cpu{i}"), Box::new(ComputeBound)));
    }
    for i in 0..3 {
        pids.push(sim.spawn(
            format!("io{i}"),
            Box::new(ComputeThenSleep::new(
                Nanos::from_millis(80),
                Nanos::from_millis(240),
                Nanos::ZERO,
            )),
        ));
    }

    let mut plan = FaultPlan::seeded(0xFA57, FaultRates::chaotic());
    let mut rng = Lcg(0x0DD5_EED5);
    let mut deadline = Nanos::ZERO;
    let mut events_handled = 0;
    for slice in 1..=200u64 {
        // Jittered slice deadline. Monotonicity is load-bearing: a raw
        // `now + jitter` can regress between fires, and a regressed
        // deadline would silently skip the slice.
        let next = plan.jittered_now(Nanos::from_millis(100 * slice));
        assert!(next >= deadline, "jittered deadline regressed");
        deadline = next;
        events_handled += sim.run_until(deadline);
        let pid = pids[(rng.next() as usize) % pids.len()];
        if plan.lose_signal() {
            sim.sigstop(pid);
        }
        if plan.delay_signal() {
            sim.sigcont(pid);
        }
        if plan.exit_mid_quantum() {
            sim.terminate(pid);
        }
        sim.assert_index_consistent();
    }
    for &p in &pids {
        sim.sigcont(p);
    }
    events_handled += sim.run_until(deadline + Nanos::from_secs(1));
    sim.assert_index_consistent();

    let mut snap = Snapshot {
        trace: sim
            .trace()
            .expect("enabled")
            .events()
            .iter()
            .map(|e| (e.at, e.pid, e.kind))
            .collect(),
        per_proc: pids
            .iter()
            .map(|&p| {
                let v = sim.proc(p).expect("spawned");
                (
                    v.cputime(),
                    v.visible_cputime(),
                    v.dispatches(),
                    v.state_code(),
                )
            })
            .collect(),
        ctx_switches: sim.context_switches(),
        idle: sim.idle_time(),
        events_handled,
        live: sim.live_count(),
        fingerprint: 0,
    };
    snap.fingerprint();
    (snap, *plan.log())
}

#[test]
fn fault_plans_replay_byte_identically_on_both_queue_kinds() {
    let (wheel, wheel_log) = run_faulty(EventQueueKind::Wheel);
    let (heap, heap_log) = run_faulty(EventQueueKind::Heap);
    assert!(wheel_log.total() > 0, "chaotic plan never fired");
    assert!(
        wheel_log.jittered_ticks > 0,
        "no deadline was ever jittered"
    );
    assert_eq!(
        wheel_log, heap_log,
        "fault decision streams diverge between queue kinds"
    );
    assert_eq!(wheel, heap, "faulty runs diverge between queue kinds");
}
