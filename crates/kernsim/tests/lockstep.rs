//! Lockstep equivalence of the indexed and the seed (linear) ready queue.
//!
//! The indexed run queue, process table, and live index are pure data
//! structures: switching [`SimConfig::runqueue`] must not change a single
//! scheduling decision. This drives two simulations — one per queue kind —
//! through an identical script of workloads and `SIGSTOP`/`SIGCONT`/
//! terminate churn, and demands identical traces, identical accounting,
//! and identical event counts, with every index brute-force-verified along
//! the way.

use alps_core::Nanos;
use kernsim::trace::TraceKind;
use kernsim::{ComputeBound, ComputeThenSleep, Pid, RunQueueKind, Sim, SimConfig};

/// Deterministic churn driver shared by both runs (split-mix style; the
/// sequence must not depend on the simulation being driven).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

#[derive(Debug, PartialEq)]
struct Snapshot {
    trace: Vec<(Nanos, Pid, TraceKind)>,
    per_proc: Vec<(Nanos, Nanos, u64, char)>,
    ctx_switches: u64,
    idle: Nanos,
    events_handled: u64,
    live: usize,
}

fn run(kind: RunQueueKind) -> Snapshot {
    let cfg = SimConfig {
        seed: 11,
        spawn_estcpu_jitter: 8.0,
        runqueue: kind,
        ..SimConfig::default()
    };
    let mut sim = Sim::new(cfg);
    sim.enable_trace(1 << 20);
    let mut pids = Vec::new();
    for i in 0..10 {
        pids.push(sim.spawn(format!("cpu{i}"), Box::new(ComputeBound)));
    }
    for i in 0..4 {
        // The §3.3 I/O shape: 80 ms of CPU, 240 ms blocked.
        pids.push(sim.spawn(
            format!("io{i}"),
            Box::new(ComputeThenSleep::new(
                Nanos::from_millis(80),
                Nanos::from_millis(240),
                Nanos::ZERO,
            )),
        ));
    }

    let mut rng = Lcg(0xA1B2_C3D4);
    let mut events_handled = 0;
    // 300 slices of 100 ms = 30 simulated seconds, churning in between.
    for slice in 1..=300u64 {
        events_handled += sim.run_until(Nanos::from_millis(100 * slice));
        let pid = pids[(rng.next() as usize) % pids.len()];
        match rng.next() % 4 {
            0 => sim.sigstop(pid),
            1 => sim.sigcont(pid),
            // Terminate sparingly so the machine stays busy.
            2 if slice % 37 == 0 => sim.terminate(pid),
            _ => {}
        }
        sim.assert_index_consistent();
    }
    // Leave no one stopped so the comparison ends on live schedules.
    for &p in &pids {
        sim.sigcont(p);
    }
    events_handled += sim.run_until(Nanos::from_secs(31));
    sim.assert_index_consistent();

    Snapshot {
        trace: sim
            .trace()
            .expect("enabled")
            .events()
            .iter()
            .map(|e| (e.at, e.pid, e.kind))
            .collect(),
        per_proc: pids
            .iter()
            .map(|&p| {
                let v = sim.proc(p).expect("spawned");
                (
                    v.cputime(),
                    v.visible_cputime(),
                    v.dispatches(),
                    v.state_code(),
                )
            })
            .collect(),
        ctx_switches: sim.context_switches(),
        idle: sim.idle_time(),
        events_handled,
        live: sim.live_count(),
    }
}

#[test]
fn indexed_queue_is_trace_identical_to_linear_under_churn() {
    let indexed = run(RunQueueKind::Indexed);
    let linear = run(RunQueueKind::Linear);
    assert!(
        indexed.trace.len() > 1000,
        "the fixture must exercise a real schedule, got {} trace events",
        indexed.trace.len()
    );
    assert!(
        indexed
            .trace
            .iter()
            .any(|&(_, _, k)| matches!(k, TraceKind::Exit)),
        "churn must include terminations"
    );
    assert_eq!(indexed, linear);
}
