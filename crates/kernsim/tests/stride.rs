//! Tests of the in-kernel stride scheduling policy (the baseline
//! comparator of `repro baseline`; Waldspurger & Weihl, the paper's
//! reference [26]).

use alps_core::Nanos;
use kernsim::{Behavior, ComputeBound, KernelPolicy, Sim, SimConfig, SimCtl, Step};

fn stride_sim() -> Sim {
    Sim::new(SimConfig {
        policy: KernelPolicy::Stride,
        ..SimConfig::default()
    })
}

#[test]
fn tickets_apportion_cpu_exactly() {
    let mut sim = stride_sim();
    let a = sim.spawn_tickets("a", 1, Box::new(ComputeBound));
    let b = sim.spawn_tickets("b", 2, Box::new(ComputeBound));
    let c = sim.spawn_tickets("c", 3, Box::new(ComputeBound));
    sim.run_until(Nanos::from_secs(12));
    let (ca, cb, cc) = (
        sim.proc(a).unwrap().cputime().as_secs_f64(),
        sim.proc(b).unwrap().cputime().as_secs_f64(),
        sim.proc(c).unwrap().cputime().as_secs_f64(),
    );
    // In-kernel stride is deterministic: ratios accurate to within one
    // tick per process over the whole run.
    assert!((ca - 2.0).abs() < 0.05, "a {ca}");
    assert!((cb - 4.0).abs() < 0.05, "b {cb}");
    assert!((cc - 6.0).abs() < 0.05, "c {cc}");
}

#[test]
fn equal_tickets_fair_and_work_conserving() {
    let mut sim = stride_sim();
    let pids: Vec<_> = (0..5)
        .map(|i| sim.spawn_tickets(format!("w{i}"), 7, Box::new(ComputeBound)))
        .collect();
    sim.run_until(Nanos::from_secs(10));
    assert_eq!(sim.idle_time(), Nanos::ZERO);
    for &p in &pids {
        let c = sim.proc(p).unwrap().cputime().as_secs_f64();
        assert!(
            (c - 2.0).abs() < 0.05,
            "{}: {c}",
            sim.proc(p).unwrap().name()
        );
    }
}

#[test]
fn sleeper_rejoins_at_global_pass_without_hoarding() {
    struct NapThenSpin {
        napped: bool,
    }
    impl Behavior for NapThenSpin {
        fn on_ready(&mut self, _: &mut SimCtl<'_>) -> Step {
            if self.napped {
                Step::ComputeForever
            } else {
                self.napped = true;
                Step::Sleep(Nanos::from_secs(5))
            }
        }
    }
    let mut sim = stride_sim();
    let spinner = sim.spawn_tickets("spin", 1, Box::new(ComputeBound));
    let napper = sim.spawn_tickets("nap", 1, Box::new(NapThenSpin { napped: false }));
    sim.run_until(Nanos::from_secs(15));
    // The napper slept 5s; if it kept its low pass it would monopolize the
    // CPU afterwards to "catch up". The re-join rule forbids that: from
    // t=5s they split evenly, so spinner ≈ 5+5 = 10s, napper ≈ 5s.
    let cs = sim.proc(spinner).unwrap().cputime().as_secs_f64();
    let cn = sim.proc(napper).unwrap().cputime().as_secs_f64();
    assert!((cs - 10.0).abs() < 0.2, "spinner {cs}");
    assert!((cn - 5.0).abs() < 0.2, "napper {cn}");
}

#[test]
fn late_joiner_starts_at_global_pass() {
    let mut sim = stride_sim();
    let a = sim.spawn_tickets("a", 1, Box::new(ComputeBound));
    sim.run_until(Nanos::from_secs(5));
    let b = sim.spawn_tickets("b", 1, Box::new(ComputeBound));
    sim.run_until(Nanos::from_secs(15));
    // b must not replay a's 5s head start: from t=5 they split evenly.
    let cb = sim.proc(b).unwrap().cputime().as_secs_f64();
    assert!((cb - 5.0).abs() < 0.2, "b {cb}");
    assert!((sim.proc(a).unwrap().cputime().as_secs_f64() - 10.0).abs() < 0.2);
}

#[test]
fn stride_on_smp_is_work_conserving() {
    let mut sim = Sim::new(SimConfig {
        policy: KernelPolicy::Stride,
        cpus: std::num::NonZeroUsize::new(2).unwrap(),
        ..SimConfig::default()
    });
    let _a = sim.spawn_tickets("a", 1, Box::new(ComputeBound));
    let _b = sim.spawn_tickets("b", 9, Box::new(ComputeBound));
    sim.run_until(Nanos::from_secs(10));
    // Two processes, two CPUs: both run flat out regardless of tickets
    // (work conservation clamps the 9:1 request at 1:1).
    assert_eq!(sim.idle_time(), Nanos::ZERO);
}

#[test]
fn job_control_works_under_stride() {
    let mut sim = stride_sim();
    let a = sim.spawn_tickets("a", 1, Box::new(ComputeBound));
    let b = sim.spawn_tickets("b", 1, Box::new(ComputeBound));
    sim.run_until(Nanos::from_secs(2));
    sim.sigstop(a);
    let frozen = sim.proc(a).unwrap().cputime();
    sim.run_until(Nanos::from_secs(4));
    assert_eq!(sim.proc(a).unwrap().cputime(), frozen);
    sim.sigcont(a);
    sim.run_until(Nanos::from_secs(8));
    assert!(sim.proc(a).unwrap().cputime() > frozen);
    // Time is still conserved.
    assert_eq!(
        sim.proc(a).unwrap().cputime() + sim.proc(b).unwrap().cputime() + sim.idle_time(),
        Nanos::from_secs(8)
    );
}

mod stride_properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Stride delivers ticket-proportional CPU for arbitrary ticket
        /// vectors, to within a couple of ticks per process.
        #[test]
        fn tickets_proportional_for_arbitrary_vectors(
            tickets in proptest::collection::vec(1u64..20, 2..7),
        ) {
            let mut sim = stride_sim();
            let pids: Vec<_> = tickets
                .iter()
                .enumerate()
                .map(|(i, &t)| sim.spawn_tickets(format!("w{i}"), t, Box::new(ComputeBound)))
                .collect();
            let horizon = Nanos::from_secs(30);
            sim.run_until(horizon);
            let total_tickets: u64 = tickets.iter().sum();
            for (&p, &t) in pids.iter().zip(&tickets) {
                let want = horizon.as_secs_f64() * t as f64 / total_tickets as f64;
                let got = sim.proc(p).unwrap().cputime().as_secs_f64();
                prop_assert!(
                    (got - want).abs() < 0.15,
                    "tickets {}: got {:.3}s want {:.3}s",
                    t, got, want
                );
            }
        }
    }
}
