//! Deterministic parallel sweep executor.
//!
//! Every multi-run code path in this repo — seed averaging, share-model ×
//! N grids, the seven `repro verify` claims, the kernsim scalability
//! bench — is a set of *independent* jobs: each one is a pure function of
//! its parameters (every simulation builds its own `Sim` from a seed).
//! [`sweep_map`] fans such jobs across a pool of scoped worker threads
//! and returns the results **in input order**, so the output of a sweep
//! is byte-identical at any thread count; parallelism changes only the
//! wall clock.
//!
//! Thread count resolution, highest priority first:
//! 1. [`set_threads`] — the process-wide override behind the `--threads`
//!    CLI flags;
//! 2. the `ALPS_THREADS` environment variable;
//! 3. [`host_cores`] (`std::thread::available_parallelism`).
//!
//! A count of 1 forces the serial path: jobs run inline on the caller's
//! thread with no pool at all. Sweeps may nest (e.g. a grid of
//! `run_workload_mean` calls, each fanning its seeds); each level caps
//! its pool at its own job count, so oversubscription is bounded by the
//! small inner fan-outs.

#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Environment variable consulted when no [`set_threads`] override is in
/// effect. `ALPS_THREADS=1` forces the serial path.
pub const THREADS_ENV: &str = "ALPS_THREADS";

/// Process-wide `--threads` override; 0 means unset.
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Install (or with `None` clear) the process-wide thread-count
/// override. This is what the `--threads N` CLI flags call; it takes
/// precedence over `ALPS_THREADS`.
///
/// # Panics
///
/// Panics on `Some(0)`: a sweep always needs at least the caller's
/// thread.
pub fn set_threads(n: Option<usize>) {
    if let Some(n) = n {
        assert!(n >= 1, "thread count must be at least 1");
    }
    OVERRIDE.store(n.unwrap_or(0), Ordering::Relaxed);
}

/// Number of hardware threads on this host (1 if unknown).
pub fn host_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The thread count sweeps run at right now: the [`set_threads`]
/// override, else a valid `ALPS_THREADS`, else [`host_cores`].
pub fn threads() -> usize {
    let over = OVERRIDE.load(Ordering::Relaxed);
    if over > 0 {
        return over;
    }
    if let Ok(v) = std::env::var(THREADS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
        eprintln!("warning: ignoring invalid {THREADS_ENV}={v:?} (want an integer >= 1)");
    }
    host_cores()
}

/// Apply `f` to every item on a pool of [`threads`] workers and return
/// the results in input order. See [`sweep_map_threads`].
pub fn sweep_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    sweep_map_threads(threads(), items, f)
}

/// Run a batch of heterogeneous jobs (e.g. the `repro verify` claim
/// blocks) on the sweep pool, returning their results in input order.
pub fn sweep_run<R: Send>(jobs: Vec<Box<dyn FnOnce() -> R + Send>>) -> Vec<R> {
    sweep_map(jobs, |job| job())
}

/// [`sweep_map`] with an explicit thread count (used by the determinism
/// tests, which must not touch the process-wide knobs).
///
/// The pool never exceeds the number of items; `threads <= 1` (or a
/// single item) runs everything inline on the caller's thread. Workers
/// claim items from a shared atomic cursor, so an expensive item does
/// not serialize the cheap ones behind it; each result lands back in
/// its item's input slot regardless of completion order. A panicking
/// job propagates its panic to the caller after the scope unwinds.
pub fn sweep_map_threads<T, R, F>(threads: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = threads.min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }

    // Items move out through per-slot mutexes (each claimed exactly once,
    // so the locks never contend); results come back tagged with their
    // input index and are scattered into place below.
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let cursor = AtomicUsize::new(0);
    let per_worker: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut done = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let item = slots[i]
                            .lock()
                            .expect("slot lock")
                            .take()
                            .expect("each index is claimed once");
                        done.push((i, f(item)));
                    }
                    done
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(done) => done,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });

    let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for (i, r) in per_worker.into_iter().flatten() {
        debug_assert!(results[i].is_none(), "index {i} produced twice");
        results[i] = Some(r);
    }
    results
        .into_iter()
        .map(|r| r.expect("every index produced exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that touch the process-wide knobs ([`set_threads`]
    /// and `ALPS_THREADS`).
    static KNOBS: Mutex<()> = Mutex::new(());

    #[test]
    fn preserves_input_order_at_any_thread_count() {
        let items: Vec<usize> = (0..100).collect();
        let expect: Vec<usize> = items.iter().map(|x| x * 7).collect();
        for t in [1, 2, 3, 8, 64] {
            assert_eq!(sweep_map_threads(t, items.clone(), |x| x * 7), expect);
        }
    }

    #[test]
    fn handles_empty_and_single_item_batches() {
        assert_eq!(sweep_map_threads(8, Vec::<u32>::new(), |x| x), vec![]);
        assert_eq!(sweep_map_threads(8, vec![41], |x| x + 1), vec![42]);
    }

    #[test]
    fn uneven_job_costs_still_land_in_order() {
        // The first item is by far the slowest; its result must still
        // come back first.
        let items = vec![400u64, 1, 1, 1, 1, 1, 1, 1];
        let got = sweep_map_threads(4, items.clone(), |us| {
            std::thread::sleep(std::time::Duration::from_micros(us));
            us
        });
        assert_eq!(got, items);
    }

    #[test]
    fn sweep_run_keeps_job_order() {
        let jobs: Vec<Box<dyn FnOnce() -> String + Send>> = (0..10)
            .map(|i| Box::new(move || format!("job{i}")) as Box<dyn FnOnce() -> String + Send>)
            .collect();
        let got = sweep_run(jobs);
        assert_eq!(got[0], "job0");
        assert_eq!(got[9], "job9");
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate_to_the_caller() {
        sweep_map_threads(4, (0..16).collect(), |i: u32| {
            if i == 7 {
                panic!("boom");
            }
            i
        });
    }

    #[test]
    fn override_beats_env_beats_host_cores() {
        let _g = KNOBS.lock().unwrap();
        std::env::set_var(THREADS_ENV, "3");
        assert_eq!(threads(), 3);
        set_threads(Some(2));
        assert_eq!(threads(), 2);
        set_threads(None);
        assert_eq!(threads(), 3);
        std::env::set_var(THREADS_ENV, "not-a-number");
        assert_eq!(threads(), host_cores());
        std::env::remove_var(THREADS_ENV);
        assert_eq!(threads(), host_cores());
    }
}
