//! Property tests for the determinism contract: a sweep's output is a
//! pure, order-preserving map of its input, at any thread count.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `sweep_map_threads(t, v, f)` equals the serial `v.map(f)` for any
    /// input and any thread count.
    fn sweep_map_is_the_identity_on_order(
        items in prop::collection::vec(any::<u64>(), 0..80),
        t in 1usize..=16,
    ) {
        let expect: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(3).rotate_left(9)).collect();
        let got = alps_sweep::sweep_map_threads(t, items, |x| x.wrapping_mul(3).rotate_left(9));
        prop_assert_eq!(got, expect);
    }

    /// Parallel runs agree with each other, not just with serial: two
    /// sweeps at different thread counts give identical results.
    fn thread_count_is_invisible_in_the_results(
        items in prop::collection::vec(any::<u32>(), 0..60),
        ta in 2usize..=8,
        tb in 2usize..=8,
    ) {
        let a = alps_sweep::sweep_map_threads(ta, items.clone(), |x| x.wrapping_add(1));
        let b = alps_sweep::sweep_map_threads(tb, items, |x| x.wrapping_add(1));
        prop_assert_eq!(a, b);
    }
}
