//! The §4.2 breakdown-threshold model.
//!
//! ALPS runs as an ordinary process, so the kernel gives it roughly a
//! `1/(N+1)` fair share when it competes with `N` compute-bound workload
//! processes. Once the overhead `U_Q(N)` ALPS *needs* per unit time exceeds
//! that fair share, the kernel stops scheduling ALPS promptly and it loses
//! control. The paper fits the linear portion of the measured overhead
//! curves and predicts the breakdown at the `N*` solving
//!
//! ```text
//! U_Q(N*) − 100/(N* + 1) = 0        (overhead in percent)
//! ```
//!
//! predicting thresholds of 39/54/75 processes for 10/20/40 ms quanta
//! (observed: 40/60/90).

use serde::{Deserialize, Serialize};

use crate::regression::{linear_fit, LinearFit};

/// Result of the threshold analysis for one quantum length.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThresholdAnalysis {
    /// Fit of the linear portion of overhead vs N (percent CPU).
    pub fit: LinearFit,
    /// Predicted breakdown threshold `N*`.
    pub predicted_threshold: f64,
}

/// Solve `U(N) = 100/(N+1)` for the fitted overhead line. Returns `None`
/// if the line never reaches the fair-share curve for N in `(0, 100000]`.
pub fn breakdown_threshold(fit: &LinearFit) -> Option<f64> {
    // f(N) = slope*N + intercept - 100/(N+1); increasing in N for positive
    // slope, so bisection on a bracketing interval works.
    let f = |n: f64| fit.at(n) - 100.0 / (n + 1.0);
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    if f(lo) > 0.0 {
        return Some(0.0); // already past breakdown with zero processes
    }
    while f(hi) < 0.0 {
        hi *= 2.0;
        if hi > 100_000.0 {
            return None;
        }
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if f(mid) < 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(0.5 * (lo + hi))
}

/// Fit the initial (linear) portion of an overhead curve and predict the
/// breakdown threshold.
///
/// `points` are `(N, overhead_percent)` samples; only samples with
/// `N <= linear_max_n` participate in the fit, mirroring the paper's use of
/// "the initial (linear) portions" of Figure 8.
pub fn analyze_overhead_curve(
    points: &[(f64, f64)],
    linear_max_n: f64,
) -> Option<ThresholdAnalysis> {
    let linear: Vec<(f64, f64)> = points
        .iter()
        .copied()
        .filter(|&(n, _)| n <= linear_max_n)
        .collect();
    let fit = linear_fit(&linear)?;
    let predicted_threshold = breakdown_threshold(&fit)?;
    Some(ThresholdAnalysis {
        fit,
        predicted_threshold,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's own fitted lines must reproduce the paper's own
    /// predicted thresholds (39, 54, 75).
    #[test]
    fn paper_fits_give_paper_thresholds() {
        let cases = [
            (0.0639, 0.0604, 39.0),
            (0.0338, 0.0340, 54.0),
            (0.0172, 0.0160, 75.0),
        ];
        for (slope, intercept, expected) in cases {
            let fit = LinearFit {
                slope,
                intercept,
                r_squared: 1.0,
                n: 10,
            };
            let n_star = breakdown_threshold(&fit).unwrap();
            assert!(
                (n_star - expected).abs() < 1.0,
                "slope {slope}: got {n_star}, paper says {expected}"
            );
        }
    }

    #[test]
    fn zero_overhead_never_breaks() {
        let fit = LinearFit {
            slope: 0.0,
            intercept: 0.0,
            r_squared: 1.0,
            n: 2,
        };
        assert!(breakdown_threshold(&fit).is_none());
    }

    #[test]
    fn huge_overhead_breaks_immediately() {
        let fit = LinearFit {
            slope: 0.0,
            intercept: 200.0,
            r_squared: 1.0,
            n: 2,
        };
        assert_eq!(breakdown_threshold(&fit), Some(0.0));
    }

    #[test]
    fn analyze_filters_to_linear_portion() {
        // Linear up to N=50, then saturates — only the linear part should
        // drive the fit.
        let mut pts: Vec<(f64, f64)> = (1..=50).map(|n| (n as f64, 0.05 * n as f64)).collect();
        pts.extend((51..=100).map(|n| (n as f64, 2.5)));
        let a = analyze_overhead_curve(&pts, 50.0).unwrap();
        assert!((a.fit.slope - 0.05).abs() < 1e-9);
        // U(N) = 0.05N intersects 100/(N+1) near N ≈ 44.2.
        assert!((a.predicted_threshold - 44.2).abs() < 0.5);
    }
}
