//! Per-request latency recording: fixed-bin histograms and tail
//! summaries.
//!
//! The traffic engine (`workloads::traffic`) records one sample per
//! completed request; this module turns those samples into the
//! percentile summaries the SLO controller and the repro tables consume.
//!
//! * [`LatencyHistogram`] — a fixed-bin log-scale histogram of latency
//!   nanoseconds. Bins are exact up to [`LIN_BINS`] ns and then keep
//!   [`SUB_BITS`] significant bits per octave, so the percentile
//!   estimator's relative error is bounded by `2^-SUB_BITS` (~3%)
//!   at any magnitude, with a fixed 15 KB footprint.
//! * [`LatencySummary`] — count, mean, p50/p95/p99, max, plus the
//!   DFRS-style *stretch* (latency ÷ intrinsic service demand, ≥ 1 under
//!   contention) and *yield* (service demand ÷ latency, ≤ 1) metrics
//!   from the Dynamic Fractional Resource Scheduling line of work.

use serde::{Deserialize, Serialize};

/// Significant bits kept per octave above the linear range.
pub const SUB_BITS: u32 = 5;

/// Values below this (in ns) get exact 1-ns bins.
pub const LIN_BINS: u64 = 64;

/// Sub-buckets per octave (`2^SUB_BITS`).
const SUB: usize = 1 << SUB_BITS;

/// Total bins: 64 exact + 32 per octave for octaves 6..=63.
const BINS: usize = LIN_BINS as usize + (64 - (SUB_BITS as usize + 1)) * SUB;

/// Bin index of a latency value in nanoseconds.
fn bin_index(v: u64) -> usize {
    if v < LIN_BINS {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros(); // >= SUB_BITS + 1
    let shift = msb - SUB_BITS;
    let sub = (v >> shift) as usize - SUB; // 0..SUB
    LIN_BINS as usize + (msb - (SUB_BITS + 1)) as usize * SUB + sub
}

/// Lower bound (inclusive) of a bin, in nanoseconds.
fn bin_lower(i: usize) -> u64 {
    if i < LIN_BINS as usize {
        return i as u64;
    }
    let rel = i - LIN_BINS as usize;
    let octave = (rel / SUB) as u32;
    let sub = (rel % SUB) as u64;
    (SUB as u64 + sub) << (octave + 1)
}

/// Representative value of a bin: the midpoint of `[lower, next_lower)`.
fn bin_value(i: usize) -> u64 {
    let lo = bin_lower(i);
    let hi = if i + 1 < BINS { bin_lower(i + 1) } else { lo };
    lo + (hi.saturating_sub(lo)) / 2
}

/// A fixed-bin log-scale histogram of request latencies, with the
/// stretch/yield accumulators needed for a [`LatencySummary`].
///
/// Recording is O(1) and allocation-free after construction; the bin
/// layout is fixed (independent of the data), so two histograms fed the
/// same samples in any order are identical — the property the
/// sweep-determinism suites rely on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    count: u64,
    sum_ns: u64,
    min_ns: u64,
    max_ns: u64,
    sum_stretch: f64,
    max_stretch: f64,
    sum_yield: f64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; BINS],
            count: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
            sum_stretch: 0.0,
            max_stretch: 0.0,
            sum_yield: 0.0,
        }
    }

    /// Record one completed request: its wall-clock latency and its
    /// intrinsic service demand (the time it would have taken alone —
    /// stretch and yield are computed against it). A zero service demand
    /// records the latency but contributes stretch 1 / yield 1.
    pub fn record(&mut self, latency_ns: u64, service_ns: u64) {
        self.counts[bin_index(latency_ns)] += 1;
        self.count += 1;
        self.sum_ns = self.sum_ns.saturating_add(latency_ns);
        self.min_ns = self.min_ns.min(latency_ns);
        self.max_ns = self.max_ns.max(latency_ns);
        let (stretch, yld) = if service_ns == 0 || latency_ns == 0 {
            (1.0, 1.0)
        } else {
            let s = latency_ns as f64 / service_ns as f64;
            (s.max(1.0), (1.0 / s).min(1.0))
        };
        self.sum_stretch += stretch;
        self.max_stretch = self.max_stretch.max(stretch);
        self.sum_yield += yld;
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded latency (ns); `None` when empty.
    pub fn min_ns(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min_ns)
    }

    /// Largest recorded latency (ns); `None` when empty.
    pub fn max_ns(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max_ns)
    }

    /// Merge another histogram into this one (same fixed layout, so the
    /// merge is bin-wise addition).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
        self.sum_stretch += other.sum_stretch;
        self.max_stretch = self.max_stretch.max(other.max_stretch);
        self.sum_yield += other.sum_yield;
    }

    /// Latency at quantile `q` (0.0–1.0), in nanoseconds; `None` when
    /// empty.
    ///
    /// The estimator walks the cumulative bin counts to the sample of
    /// rank `round(q · (count-1))` and returns that bin's representative
    /// value clamped to the recorded `[min, max]`. It is monotone in `q`,
    /// always within `[min, max]`, and exact whenever all samples share
    /// one bin value (in particular for constant inputs) — the properties
    /// pinned by `tests/latency_properties.rs`.
    pub fn percentile_ns(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * (self.count - 1) as f64).round() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen > rank {
                return Some(bin_value(i).clamp(self.min_ns, self.max_ns));
            }
        }
        Some(self.max_ns)
    }

    /// Latency at quantile `q`, in milliseconds (`NaN` when empty).
    pub fn percentile_ms(&self, q: f64) -> f64 {
        self.percentile_ns(q).map_or(f64::NAN, |ns| ns as f64 / 1e6)
    }
}

/// The tail-latency summary of one tenant over one observation window —
/// what the repro tables print and what the `SloController` feeds on.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Requests completed in the window.
    pub count: u64,
    /// Mean latency, milliseconds.
    pub mean_ms: f64,
    /// Median latency, milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile latency, milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile latency, milliseconds.
    pub p99_ms: f64,
    /// Largest latency, milliseconds.
    pub max_ms: f64,
    /// Mean stretch (latency ÷ service demand; DFRS).
    pub mean_stretch: f64,
    /// Largest stretch in the window.
    pub max_stretch: f64,
    /// Mean yield (service demand ÷ latency; DFRS).
    pub mean_yield: f64,
}

impl LatencySummary {
    /// A summary with zero samples (all statistics zero).
    pub fn empty() -> Self {
        LatencySummary {
            count: 0,
            mean_ms: 0.0,
            p50_ms: 0.0,
            p95_ms: 0.0,
            p99_ms: 0.0,
            max_ms: 0.0,
            mean_stretch: 0.0,
            max_stretch: 0.0,
            mean_yield: 0.0,
        }
    }

    /// Summarize a histogram. An empty histogram yields
    /// [`LatencySummary::empty`].
    pub fn from_histogram(h: &LatencyHistogram) -> Self {
        if h.count == 0 {
            return Self::empty();
        }
        let n = h.count as f64;
        LatencySummary {
            count: h.count,
            mean_ms: h.sum_ns as f64 / n / 1e6,
            p50_ms: h.percentile_ms(0.50),
            p95_ms: h.percentile_ms(0.95),
            p99_ms: h.percentile_ms(0.99),
            max_ms: h.max_ns as f64 / 1e6,
            mean_stretch: h.sum_stretch / n,
            max_stretch: h.max_stretch,
            mean_yield: h.sum_yield / n,
        }
    }

    /// Summarize raw `(latency_ns, service_ns)` samples.
    pub fn from_samples(samples: &[(u64, u64)]) -> Self {
        let mut h = LatencyHistogram::new();
        for &(l, s) in samples {
            h.record(l, s);
        }
        Self::from_histogram(&h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_tile_the_axis() {
        // Every bin's lower bound maps back to that bin, and bounds are
        // strictly increasing.
        for i in 0..BINS {
            let lo = bin_lower(i);
            assert_eq!(bin_index(lo), i, "lower bound of bin {i}");
            if i + 1 < BINS {
                assert!(bin_lower(i + 1) > lo);
            }
        }
        // Representatives stay inside their bin.
        for i in 0..BINS - 1 {
            let v = bin_value(i);
            assert!(v >= bin_lower(i) && v < bin_lower(i + 1), "bin {i}");
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        let mut h = LatencyHistogram::new();
        for v in [1u64, 1000, 123_456, 10_000_000, 987_654_321] {
            h = LatencyHistogram::new();
            h.record(v, v);
            let got = h.percentile_ns(0.5).unwrap();
            let err = (got as f64 - v as f64).abs() / v as f64;
            assert!(err <= 1.0 / SUB as f64, "v={v} got={got} err={err}");
        }
        let _ = h;
    }

    #[test]
    fn constant_input_is_exact() {
        let mut h = LatencyHistogram::new();
        for _ in 0..100 {
            h.record(123_456_789, 1_000_000);
        }
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.percentile_ns(q), Some(123_456_789));
        }
    }

    #[test]
    fn percentiles_are_ordered_and_bounded() {
        let mut h = LatencyHistogram::new();
        for i in 1..=1000u64 {
            h.record(i * 10_000, 10_000);
        }
        let p50 = h.percentile_ns(0.5).unwrap();
        let p95 = h.percentile_ns(0.95).unwrap();
        let p99 = h.percentile_ns(0.99).unwrap();
        assert!(p50 <= p95 && p95 <= p99);
        assert!(p99 <= h.max_ns().unwrap());
        assert!(h.percentile_ns(0.0).unwrap() >= h.min_ns().unwrap());
        // p50 of a uniform ramp lands near the middle (3% bins).
        let mid = 500 * 10_000;
        assert!((p50 as f64 - mid as f64).abs() / (mid as f64) < 0.05);
    }

    #[test]
    fn stretch_and_yield_track_contention() {
        let mut h = LatencyHistogram::new();
        // Uncontended: latency == service.
        h.record(1_000_000, 1_000_000);
        // 4x stretched.
        h.record(4_000_000, 1_000_000);
        let s = LatencySummary::from_histogram(&h);
        assert_eq!(s.count, 2);
        assert!((s.mean_stretch - 2.5).abs() < 1e-9);
        assert!((s.max_stretch - 4.0).abs() < 1e-9);
        assert!((s.mean_yield - 0.625).abs() < 1e-9);
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut both = LatencyHistogram::new();
        for i in 0..100u64 {
            let v = (i + 1) * 77_777;
            if i % 2 == 0 {
                a.record(v, 50_000);
            } else {
                b.record(v, 50_000);
            }
            both.record(v, 50_000);
        }
        a.merge(&b);
        // Integer state merges exactly.
        assert_eq!(a.count(), both.count());
        assert_eq!(a.min_ns(), both.min_ns());
        assert_eq!(a.max_ns(), both.max_ns());
        for q in [0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            assert_eq!(a.percentile_ns(q), both.percentile_ns(q));
        }
        // Stretch/yield accumulators merge up to f64 summation order.
        let (sa, sb) = (
            LatencySummary::from_histogram(&a),
            LatencySummary::from_histogram(&both),
        );
        assert!((sa.mean_stretch - sb.mean_stretch).abs() < 1e-9);
        assert!((sa.max_stretch - sb.max_stretch).abs() < 1e-12);
        assert!((sa.mean_yield - sb.mean_yield).abs() < 1e-9);
        assert!((sa.mean_ms - sb.mean_ms).abs() < 1e-12);
    }

    #[test]
    fn summary_serde_round_trip() {
        let mut h = LatencyHistogram::new();
        h.record(5_000_000, 2_000_000);
        let s = LatencySummary::from_histogram(&h);
        let json = serde_json::to_string(&s).unwrap();
        let back: LatencySummary = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
