//! The paper's accuracy statistic (§3.1).
//!
//! For every cycle, compute the RMS of the per-process relative errors
//! (actual vs. ideal CPU consumed); then take the mean of that RMS over all
//! cycles of the experiment. Figure 4 plots this "mean RMS relative error",
//! in percent, for each workload and quantum length.

use alps_core::CycleRecord;

use crate::summary::mean;

/// Mean-of-RMS-relative-error over a slice of cycle records, as a
/// *percentage* (the paper's unit). `skip` leading cycles are discarded as
/// warm-up (the paper lets workloads "reach a steady state").
pub fn mean_rms_relative_error_pct(cycles: &[CycleRecord], skip: usize) -> f64 {
    let per_cycle: Vec<f64> = cycles
        .iter()
        .skip(skip)
        .map(|c| c.rms_relative_error() * 100.0)
        .collect();
    mean(&per_cycle)
}

/// Per-cycle share percentages for one process — the series Figure 6 plots.
/// Returns `(cycle_index, share_percent)` pairs.
pub fn share_percent_series(cycles: &[CycleRecord], id: alps_core::ProcId) -> Vec<(u64, f64)> {
    cycles
        .iter()
        .filter_map(|c| {
            c.entries
                .iter()
                .find(|e| e.id == id)
                .map(|e| (c.index, e.share_percent(c.total_consumed)))
        })
        .collect()
}

/// Cumulative CPU consumption of one process sampled at each cycle end —
/// the series Figure 7 plots. Returns `(wall_time_ms, cumulative_cpu_ms)`.
pub fn cumulative_cpu_series(cycles: &[CycleRecord], id: alps_core::ProcId) -> Vec<(f64, f64)> {
    let mut acc = 0.0;
    cycles
        .iter()
        .filter_map(|c| {
            c.entries.iter().find(|e| e.id == id).map(|e| {
                acc += e.consumed.as_millis_f64();
                (c.completed_at.as_millis_f64(), acc)
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use alps_core::{AlpsConfig, AlpsScheduler, CycleEntry, Nanos};

    fn make_cycles(n: usize, errs: &[(u64, u64)]) -> (Vec<CycleRecord>, Vec<alps_core::ProcId>) {
        // errs: per-process (share, consumed_ms); repeated for n cycles with
        // completed_at spaced 100ms apart.
        let mut s = AlpsScheduler::new(AlpsConfig::default());
        let ids: Vec<_> = errs
            .iter()
            .map(|&(sh, _)| s.add_process(sh, Nanos::ZERO))
            .collect();
        let cycles = (0..n)
            .map(|i| {
                let entries: Vec<_> = errs
                    .iter()
                    .zip(&ids)
                    .map(|(&(share, ms), &id)| CycleEntry {
                        id,
                        share,
                        consumed: Nanos::from_millis(ms),
                    })
                    .collect();
                let total = entries.iter().map(|e| e.consumed).sum();
                CycleRecord {
                    index: i as u64,
                    completed_at: Nanos::from_millis(100 * (i as u64 + 1)),
                    total_shares: errs.iter().map(|&(sh, _)| sh).sum(),
                    total_consumed: total,
                    entries,
                }
            })
            .collect();
        (cycles, ids)
    }

    #[test]
    fn perfect_distribution_zero_error() {
        let (cycles, _) = make_cycles(10, &[(1, 10), (2, 20)]);
        assert!(mean_rms_relative_error_pct(&cycles, 0).abs() < 1e-9);
    }

    #[test]
    fn known_error_percentage() {
        // Equal shares, 15 vs 5 consumed: RMS rel. error 0.5 => 50%.
        let (cycles, _) = make_cycles(4, &[(1, 15), (1, 5)]);
        assert!((mean_rms_relative_error_pct(&cycles, 0) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn skip_discards_warmup() {
        let (mut cycles, _) = make_cycles(2, &[(1, 15), (1, 5)]);
        let (good, _) = make_cycles(2, &[(1, 10), (1, 10)]);
        cycles.extend(good);
        assert!((mean_rms_relative_error_pct(&cycles, 2) - 0.0).abs() < 1e-9);
        assert!((mean_rms_relative_error_pct(&cycles, 0) - 25.0).abs() < 1e-9);
    }

    #[test]
    fn share_series_extracts_percentages() {
        let (cycles, ids) = make_cycles(3, &[(1, 25), (3, 75)]);
        let series = share_percent_series(&cycles, ids[1]);
        assert_eq!(series.len(), 3);
        for (i, (idx, pct)) in series.iter().enumerate() {
            assert_eq!(*idx, i as u64);
            assert!((pct - 75.0).abs() < 1e-9);
        }
    }

    #[test]
    fn cumulative_series_accumulates() {
        let (cycles, ids) = make_cycles(3, &[(1, 10), (1, 10)]);
        let series = cumulative_cpu_series(&cycles, ids[0]);
        assert_eq!(series.len(), 3);
        assert!((series[0].1 - 10.0).abs() < 1e-9);
        assert!((series[2].1 - 30.0).abs() < 1e-9);
        assert!((series[2].0 - 300.0).abs() < 1e-9);
    }
}
