//! Basic summary statistics.

/// Arithmetic mean; zero for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation; zero for fewer than two samples.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64;
    var.sqrt()
}

/// Root mean square; zero for an empty slice.
pub fn rms(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        (xs.iter().map(|x| x * x).sum::<f64>() / xs.len() as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0]), 2.0);
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
    }

    #[test]
    fn stddev_basic() {
        assert_eq!(stddev(&[]), 0.0);
        assert_eq!(stddev(&[5.0]), 0.0);
        assert!((stddev(&[2.0, 4.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rms_basic() {
        assert_eq!(rms(&[]), 0.0);
        assert!((rms(&[0.5, -0.5]) - 0.5).abs() < 1e-12);
        assert!((rms(&[3.0, 4.0]) - (12.5f64).sqrt()).abs() < 1e-12);
    }
}

/// Jain's fairness index over per-entity *normalized* allocations
/// (`allocation / entitlement`): 1.0 means perfectly proportional, `1/n`
/// means one entity got everything. The standard scheduling-fairness
/// summary statistic, used by the extension experiments.
pub fn jain_index(normalized: &[f64]) -> f64 {
    if normalized.is_empty() {
        return 1.0;
    }
    let sum: f64 = normalized.iter().sum();
    let sum_sq: f64 = normalized.iter().map(|x| x * x).sum();
    if sum_sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (normalized.len() as f64 * sum_sq)
}

#[cfg(test)]
mod jain_tests {
    use super::jain_index;

    #[test]
    fn perfectly_fair_is_one() {
        assert!((jain_index(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((jain_index(&[0.5, 0.5]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn winner_takes_all_is_one_over_n() {
        let idx = jain_index(&[1.0, 0.0, 0.0, 0.0]);
        assert!((idx - 0.25).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
    }

    #[test]
    fn partial_unfairness_is_between() {
        let idx = jain_index(&[1.0, 0.5]);
        assert!(idx > 0.5 && idx < 1.0);
    }
}
