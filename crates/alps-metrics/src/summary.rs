//! Basic summary statistics.
//!
//! The workspace-wide interface is [`Summary`]: one struct holding every
//! scalar statistic the repro tables and bench reports print, built in a
//! single pass with [`Summary::from_samples`]. The historical free
//! functions ([`mean`], [`stddev`], [`rms`], [`jain_index`]) remain
//! available unchanged — they are what `Summary` is computed from.

use serde::{Deserialize, Serialize};

/// Scalar summary of a sample set — the uniform statistic block the
/// repro tables and bench reports consume.
///
/// Every field is what the like-named free function returns on the same
/// samples; an empty sample set yields all-zero statistics (and
/// `min`/`max` of zero), matching the free functions' conventions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean ([`mean`]).
    pub mean: f64,
    /// Population standard deviation ([`stddev`]).
    pub stddev: f64,
    /// Root mean square ([`rms`]).
    pub rms: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl Summary {
    /// Summarize a sample slice.
    pub fn from_samples(xs: &[f64]) -> Self {
        if xs.is_empty() {
            return Summary {
                count: 0,
                mean: 0.0,
                stddev: 0.0,
                rms: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &x in xs {
            min = min.min(x);
            max = max.max(x);
        }
        Summary {
            count: xs.len(),
            mean: mean(xs),
            stddev: stddev(xs),
            rms: rms(xs),
            min,
            max,
        }
    }

    /// Relative spread `stddev / |mean|`; zero when the mean is zero.
    pub fn rel_spread(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.stddev / self.mean.abs()
        }
    }
}

#[cfg(test)]
mod summary_struct_tests {
    use super::*;

    #[test]
    fn from_samples_matches_free_functions() {
        let xs = [1.0, 2.0, 3.0, 10.0];
        let s = Summary::from_samples(&xs);
        assert_eq!(s.count, 4);
        assert_eq!(s.mean, mean(&xs));
        assert_eq!(s.stddev, stddev(&xs));
        assert_eq!(s.rms, rms(&xs));
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 10.0);
    }

    #[test]
    fn empty_is_all_zero() {
        let s = Summary::from_samples(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 0.0);
    }

    #[test]
    fn serde_round_trip() {
        let s = Summary::from_samples(&[0.5, 1.5]);
        let json = serde_json::to_string(&s).unwrap();
        let back: Summary = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}

/// Arithmetic mean; zero for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation; zero for fewer than two samples.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64;
    var.sqrt()
}

/// Root mean square; zero for an empty slice.
pub fn rms(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        (xs.iter().map(|x| x * x).sum::<f64>() / xs.len() as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0]), 2.0);
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
    }

    #[test]
    fn stddev_basic() {
        assert_eq!(stddev(&[]), 0.0);
        assert_eq!(stddev(&[5.0]), 0.0);
        assert!((stddev(&[2.0, 4.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rms_basic() {
        assert_eq!(rms(&[]), 0.0);
        assert!((rms(&[0.5, -0.5]) - 0.5).abs() < 1e-12);
        assert!((rms(&[3.0, 4.0]) - (12.5f64).sqrt()).abs() < 1e-12);
    }
}

/// Jain's fairness index over per-entity *normalized* allocations
/// (`allocation / entitlement`): 1.0 means perfectly proportional, `1/n`
/// means one entity got everything. The standard scheduling-fairness
/// summary statistic, used by the extension experiments.
pub fn jain_index(normalized: &[f64]) -> f64 {
    if normalized.is_empty() {
        return 1.0;
    }
    let sum: f64 = normalized.iter().sum();
    let sum_sq: f64 = normalized.iter().map(|x| x * x).sum();
    if sum_sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (normalized.len() as f64 * sum_sq)
}

#[cfg(test)]
mod jain_tests {
    use super::jain_index;

    #[test]
    fn perfectly_fair_is_one() {
        assert!((jain_index(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((jain_index(&[0.5, 0.5]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn winner_takes_all_is_one_over_n() {
        let idx = jain_index(&[1.0, 0.0, 0.0, 0.0]);
        assert!((idx - 0.25).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
    }

    #[test]
    fn partial_unfairness_is_between() {
        let idx = jain_index(&[1.0, 0.5]);
        assert!(idx > 0.5 && idx < 1.0);
    }
}
