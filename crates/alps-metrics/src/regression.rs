//! Least-squares linear regression.
//!
//! The paper uses linear regression twice: to extract per-process CPU rates
//! from the cumulative-consumption traces of Figure 7 (yielding Table 3),
//! and to fit the linear portion of the overhead curves of Figure 8
//! (yielding the `U_Q(N)` lines of §4.2).

use serde::{Deserialize, Serialize};

/// A fitted line `y = slope · x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearFit {
    /// Slope of the fitted line.
    pub slope: f64,
    /// Intercept of the fitted line.
    pub intercept: f64,
    /// Coefficient of determination (1.0 = perfect fit).
    pub r_squared: f64,
    /// Number of points used.
    pub n: usize,
}

impl LinearFit {
    /// Evaluate the fitted line at `x`.
    pub fn at(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

/// Ordinary least squares over `(x, y)` pairs. Returns `None` for fewer
/// than two points or a degenerate (zero-variance) x.
pub fn linear_fit(points: &[(f64, f64)]) -> Option<LinearFit> {
    let n = points.len();
    if n < 2 {
        return None;
    }
    let nf = n as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let denom = nf * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    let slope = (nf * sxy - sx * sy) / denom;
    let intercept = (sy - slope * sx) / nf;
    let ymean = sy / nf;
    let ss_tot: f64 = points.iter().map(|p| (p.1 - ymean) * (p.1 - ymean)).sum();
    let ss_res: f64 = points
        .iter()
        .map(|p| {
            let e = p.1 - (slope * p.0 + intercept);
            e * e
        })
        .sum();
    let r_squared = if ss_tot.abs() < 1e-12 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    Some(LinearFit {
        slope,
        intercept,
        r_squared,
        n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovered() {
        let pts: Vec<_> = (0..10).map(|i| (i as f64, 3.0 * i as f64 + 2.0)).collect();
        let fit = linear_fit(&pts).unwrap();
        assert!((fit.slope - 3.0).abs() < 1e-12);
        assert!((fit.intercept - 2.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
        assert!((fit.at(100.0) - 302.0).abs() < 1e-9);
    }

    #[test]
    fn noisy_line_close() {
        let pts: Vec<_> = (0..100)
            .map(|i| {
                let x = i as f64;
                let noise = if i % 2 == 0 { 0.5 } else { -0.5 };
                (x, 2.0 * x + noise)
            })
            .collect();
        let fit = linear_fit(&pts).unwrap();
        assert!((fit.slope - 2.0).abs() < 0.01);
        assert!(fit.r_squared > 0.999);
    }

    #[test]
    fn degenerate_inputs_rejected() {
        assert!(linear_fit(&[]).is_none());
        assert!(linear_fit(&[(1.0, 1.0)]).is_none());
        assert!(linear_fit(&[(2.0, 1.0), (2.0, 5.0)]).is_none(), "vertical");
    }

    #[test]
    fn flat_line_r2_is_one() {
        let pts = [(0.0, 4.0), (1.0, 4.0), (2.0, 4.0)];
        let fit = linear_fit(&pts).unwrap();
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.r_squared, 1.0);
    }
}
