//! # alps-metrics — measurement and statistics for the ALPS evaluation
//!
//! The quantitative machinery behind the paper's figures and tables:
//!
//! * [`accuracy`] — the mean-RMS-relative-error statistic of §3.1
//!   (Figures 4 and 9) and the per-cycle series of Figures 6 and 7;
//! * [`regression`] — least-squares fits (Table 3 rates, §4.2 overhead
//!   lines);
//! * [`threshold`] — the `U_Q(N*) = 100/(N*+1)` breakdown-threshold model
//!   of §4.2;
//! * [`summary`] — mean/stddev/RMS helpers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accuracy;
pub mod regression;
pub mod summary;
pub mod threshold;

pub use accuracy::{cumulative_cpu_series, mean_rms_relative_error_pct, share_percent_series};
pub use regression::{linear_fit, LinearFit};
pub use summary::jain_index;
pub use threshold::{analyze_overhead_curve, breakdown_threshold, ThresholdAnalysis};
