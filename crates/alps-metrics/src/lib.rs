//! # alps-metrics — measurement and statistics for the ALPS evaluation
//!
//! The quantitative machinery behind the paper's figures and tables:
//!
//! * [`accuracy`] — the mean-RMS-relative-error statistic of §3.1
//!   (Figures 4 and 9) and the per-cycle series of Figures 6 and 7;
//! * [`regression`] — least-squares fits (Table 3 rates, §4.2 overhead
//!   lines);
//! * [`threshold`] — the `U_Q(N*) = 100/(N*+1)` breakdown-threshold model
//!   of §4.2;
//! * [`summary`] — the [`Summary`] scalar-statistics block (and the
//!   historical mean/stddev/RMS free functions it consolidates);
//! * [`latency`] — fixed-bin latency histograms and the
//!   [`LatencySummary`] tail/stretch/yield block the traffic engine and
//!   SLO controller consume.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accuracy;
pub mod latency;
pub mod regression;
pub mod summary;
pub mod threshold;

pub use accuracy::{cumulative_cpu_series, mean_rms_relative_error_pct, share_percent_series};
pub use latency::{LatencyHistogram, LatencySummary};
pub use regression::{linear_fit, LinearFit};
pub use summary::{jain_index, mean, rms, stddev, Summary};
pub use threshold::{analyze_overhead_curve, breakdown_threshold, ThresholdAnalysis};
