//! Property tests for the fixed-bin latency histogram's percentile
//! estimator (ISSUE 7 satellite): monotone in rank, bounded by min/max,
//! exact on single-bin inputs, order-independent, and merge-consistent.

use alps_metrics::latency::{LatencyHistogram, SUB_BITS};
use proptest::prelude::*;

fn build(samples: &[u64]) -> LatencyHistogram {
    let mut h = LatencyHistogram::new();
    for &v in samples {
        h.record(v, v.max(1));
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Percentiles never decrease as the rank grows.
    #[test]
    fn percentile_is_monotone_in_rank(
        samples in proptest::collection::vec(0u64..10_000_000_000, 1..200),
        qs in proptest::collection::vec(0.0f64..=1.0, 2..8),
    ) {
        let h = build(&samples);
        let mut qs = qs;
        qs.sort_by(f64::total_cmp);
        let mut last = None;
        for q in qs {
            let p = h.percentile_ns(q).expect("non-empty");
            if let Some(prev) = last {
                prop_assert!(p >= prev, "pct({q}) = {p} < {prev}");
            }
            last = Some(p);
        }
    }

    /// Every percentile is within the recorded [min, max].
    #[test]
    fn percentile_is_bounded_by_min_max(
        samples in proptest::collection::vec(0u64..u64::MAX / 4, 1..200),
        q in 0.0f64..=1.0,
    ) {
        let h = build(&samples);
        let p = h.percentile_ns(q).expect("non-empty");
        prop_assert!(p >= h.min_ns().unwrap());
        prop_assert!(p <= h.max_ns().unwrap());
    }

    /// All samples equal (the degenerate single-bin input): every
    /// percentile is exactly that value.
    #[test]
    fn percentile_is_exact_on_constant_input(
        v in 0u64..10_000_000_000,
        n in 1usize..100,
        q in 0.0f64..=1.0,
    ) {
        let h = build(&vec![v; n]);
        prop_assert_eq!(h.percentile_ns(q), Some(v));
    }

    /// The estimator's relative error against the true order statistic
    /// is bounded by the bin width (2^-SUB_BITS) at any magnitude.
    #[test]
    fn percentile_relative_error_is_bounded(
        mut samples in proptest::collection::vec(1u64..10_000_000_000, 1..200),
        q in 0.0f64..=1.0,
    ) {
        let h = build(&samples);
        let got = h.percentile_ns(q).expect("non-empty") as f64;
        samples.sort_unstable();
        let rank = (q * (samples.len() - 1) as f64).round() as usize;
        let exact = samples[rank] as f64;
        let tol = exact / (1u64 << SUB_BITS) as f64 + 1.0;
        prop_assert!((got - exact).abs() <= tol,
            "pct({q}) = {got}, exact order statistic {exact}");
    }

    /// Recording order never matters.
    #[test]
    fn histogram_is_order_independent(
        samples in proptest::collection::vec(0u64..1_000_000_000, 2..100),
        seed in any::<u64>(),
    ) {
        let fwd = build(&samples);
        let mut shuffled = samples.clone();
        let n = shuffled.len();
        let mut state = seed | 1;
        for i in (1..n).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (state >> 33) as usize % (i + 1);
            shuffled.swap(i, j);
        }
        prop_assert_eq!(fwd, build(&shuffled));
    }

    /// Merging split halves equals recording everything into one.
    #[test]
    fn merge_is_consistent(
        samples in proptest::collection::vec(0u64..1_000_000_000, 2..100),
        split in 0usize..100,
    ) {
        let at = split % samples.len();
        let mut a = build(&samples[..at]);
        let b = build(&samples[at..]);
        a.merge(&b);
        prop_assert_eq!(a, build(&samples));
    }
}
