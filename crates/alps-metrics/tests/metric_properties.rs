//! Property tests for the statistics layer.

use alps_metrics::{breakdown_threshold, linear_fit, LinearFit};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Least squares recovers an exact line regardless of sampling order
    /// or scale.
    #[test]
    fn fit_recovers_exact_lines(
        slope in -100.0f64..100.0,
        intercept in -1000.0f64..1000.0,
        mut xs in proptest::collection::vec(-1000.0f64..1000.0, 3..40),
    ) {
        // Degenerate x-variance inputs are rejected, not mis-fit.
        xs.sort_by(f64::total_cmp);
        xs.dedup_by(|a, b| (*a - *b).abs() < 1e-6);
        prop_assume!(xs.len() >= 3);
        let pts: Vec<(f64, f64)> = xs.iter().map(|&x| (x, slope * x + intercept)).collect();
        let fit = linear_fit(&pts).expect("non-degenerate");
        let scale = slope.abs().max(1.0);
        prop_assert!((fit.slope - slope).abs() < 1e-4 * scale,
            "slope {} vs {}", fit.slope, slope);
        prop_assert!((fit.intercept - intercept).abs() < 1e-3 * intercept.abs().max(1.0));
        prop_assert!(fit.r_squared > 1.0 - 1e-6);
    }

    /// Fitting is permutation-invariant.
    #[test]
    fn fit_is_permutation_invariant(
        pts in proptest::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 3..20),
        seed in any::<u64>(),
    ) {
        let a = linear_fit(&pts);
        let mut shuffled = pts.clone();
        // Cheap deterministic shuffle.
        let n = shuffled.len();
        let mut state = seed | 1;
        for i in (1..n).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (state >> 33) as usize % (i + 1);
            shuffled.swap(i, j);
        }
        let b = linear_fit(&shuffled);
        match (a, b) {
            (Some(a), Some(b)) => {
                prop_assert!((a.slope - b.slope).abs() < 1e-6_f64.max(a.slope.abs() * 1e-9));
                prop_assert!((a.intercept - b.intercept).abs() < 1e-6_f64.max(a.intercept.abs() * 1e-9));
            }
            (None, None) => {}
            _ => prop_assert!(false, "one fit succeeded, the other failed"),
        }
    }

    /// A steeper overhead line always breaks down at a smaller N.
    #[test]
    fn threshold_is_monotone_in_slope(
        s1 in 0.001f64..1.0,
        delta in 0.001f64..1.0,
        intercept in 0.0f64..1.0,
    ) {
        let f = |slope: f64| LinearFit { slope, intercept, r_squared: 1.0, n: 5 };
        let n1 = breakdown_threshold(&f(s1)).expect("positive slope always crosses");
        let n2 = breakdown_threshold(&f(s1 + delta)).expect("crosses");
        prop_assert!(n2 <= n1 + 1e-6, "steeper slope {} gave larger N* ({} vs {})",
            s1 + delta, n2, n1);
    }

    /// The threshold satisfies its defining equation.
    #[test]
    fn threshold_solves_the_equation(
        slope in 0.001f64..2.0,
        intercept in -0.5f64..2.0,
    ) {
        let fit = LinearFit { slope, intercept, r_squared: 1.0, n: 5 };
        if let Some(n) = breakdown_threshold(&fit) {
            if n > 0.0 {
                let lhs = fit.at(n);
                let rhs = 100.0 / (n + 1.0);
                prop_assert!((lhs - rhs).abs() < 1e-3, "U({n}) = {lhs} vs {rhs}");
            }
        }
    }
}
