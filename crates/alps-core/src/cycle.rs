//! Per-cycle consumption records.
//!
//! The paper's accuracy evaluation (§3.1) instruments ALPS "to record a log
//! of the CPU time consumed by each process in every cycle". [`CycleRecord`]
//! is that log entry; `alps-metrics` turns a sequence of them into the RMS
//! relative-error statistic of Figure 4 and the per-cycle share percentages
//! of Figure 6.

use serde::{Deserialize, Serialize};

use crate::sched::ProcId;
use crate::time::Nanos;

/// One process's consumption within one completed cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CycleEntry {
    /// The process.
    pub id: ProcId,
    /// Its share at the time the cycle completed.
    pub share: u64,
    /// CPU time attributed to this cycle (measured deltas; attribution is at
    /// measurement granularity, exactly as in the paper's instrumentation).
    pub consumed: Nanos,
}

impl CycleEntry {
    /// This process's fraction of the cycle's total consumption, as a
    /// percentage (the y-axis of Figure 6). Zero if nothing was consumed.
    pub fn share_percent(&self, total: Nanos) -> f64 {
        if total == Nanos::ZERO {
            0.0
        } else {
            100.0 * self.consumed.as_f64() / total.as_f64()
        }
    }

    /// The CPU time this process *should* have received this cycle:
    /// `share / S × total consumed`.
    pub fn ideal(&self, total_shares: u64, total: Nanos) -> f64 {
        if total_shares == 0 {
            0.0
        } else {
            self.share as f64 / total_shares as f64 * total.as_f64()
        }
    }

    /// Relative error of actual vs ideal consumption for this cycle:
    /// `(actual − ideal) / ideal`. Returns 0 when the ideal is zero.
    pub fn relative_error(&self, total_shares: u64, total: Nanos) -> f64 {
        let ideal = self.ideal(total_shares, total);
        if ideal == 0.0 {
            0.0
        } else {
            (self.consumed.as_f64() - ideal) / ideal
        }
    }
}

/// A completed ALPS cycle: who consumed what.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CycleRecord {
    /// Zero-based index of the cycle.
    pub index: u64,
    /// Backend wall-clock time at which the cycle-completing invocation ran.
    pub completed_at: Nanos,
    /// Total shares `S` when the cycle completed.
    pub total_shares: u64,
    /// Total CPU consumed by all processes during the cycle.
    pub total_consumed: Nanos,
    /// Per-process breakdown, in process-slot order.
    pub entries: Vec<CycleEntry>,
}

impl CycleRecord {
    /// Consumption of a given process in this cycle, if recorded.
    pub fn consumed_by(&self, id: ProcId) -> Option<Nanos> {
        self.entries.iter().find(|e| e.id == id).map(|e| e.consumed)
    }

    /// Root-mean-square of the per-process relative errors in this cycle —
    /// the paper's per-cycle accuracy statistic.
    pub fn rms_relative_error(&self) -> f64 {
        if self.entries.is_empty() {
            return 0.0;
        }
        let sum_sq: f64 = self
            .entries
            .iter()
            .map(|e| {
                let re = e.relative_error(self.total_shares, self.total_consumed);
                re * re
            })
            .sum();
        (sum_sq / self.entries.len() as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AlpsConfig;
    use crate::sched::AlpsScheduler;

    fn ids(n: usize) -> (AlpsScheduler, Vec<ProcId>) {
        let mut s = AlpsScheduler::new(AlpsConfig::default());
        let ids = (0..n).map(|_| s.add_process(1, Nanos::ZERO)).collect();
        (s, ids)
    }

    fn record(shares: &[u64], consumed_ms: &[u64]) -> CycleRecord {
        let (_, ids) = ids(shares.len());
        let entries: Vec<_> = shares
            .iter()
            .zip(consumed_ms)
            .zip(&ids)
            .map(|((&share, &ms), &id)| CycleEntry {
                id,
                share,
                consumed: Nanos::from_millis(ms),
            })
            .collect();
        let total = entries.iter().map(|e| e.consumed).sum();
        CycleRecord {
            index: 0,
            completed_at: Nanos::ZERO,
            total_shares: shares.iter().sum(),
            total_consumed: total,
            entries,
        }
    }

    #[test]
    fn perfect_cycle_has_zero_error() {
        let rec = record(&[1, 2, 3], &[10, 20, 30]);
        assert!(rec.rms_relative_error().abs() < 1e-12);
        for e in &rec.entries {
            assert!(e.relative_error(rec.total_shares, rec.total_consumed).abs() < 1e-12);
        }
    }

    #[test]
    fn share_percent_sums_to_hundred() {
        let rec = record(&[1, 2, 3], &[7, 23, 30]);
        let sum: f64 = rec
            .entries
            .iter()
            .map(|e| e.share_percent(rec.total_consumed))
            .sum();
        assert!((sum - 100.0).abs() < 1e-9);
    }

    #[test]
    fn known_rms_value() {
        // Shares 1:1, consumption 15 and 5 of a 20 total. Ideal 10 each.
        // Relative errors +0.5 and -0.5; RMS = 0.5.
        let rec = record(&[1, 1], &[15, 5]);
        assert!((rec.rms_relative_error() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_cycle_is_zero_error() {
        let rec = record(&[1, 1], &[0, 0]);
        assert_eq!(rec.rms_relative_error(), 0.0);
        assert_eq!(rec.entries[0].share_percent(rec.total_consumed), 0.0);
    }

    #[test]
    fn consumed_by_lookup() {
        let rec = record(&[1, 2], &[4, 6]);
        let id0 = rec.entries[0].id;
        assert_eq!(rec.consumed_by(id0), Some(Nanos::from_millis(4)));
    }
}
