//! Chunked slot arena — stable storage for million-member populations.
//!
//! [`ChunkedVec`] is the storage behind [`AlpsScheduler`](crate::AlpsScheduler)
//! slots and the principal table: a vector whose elements are grouped into
//! fixed-size chunks so that growth allocates one new chunk instead of
//! doubling-and-copying the whole population. At 10⁶ registered members the
//! contiguous layout's regrowth copies every slot several times over (and
//! each copy is a latency spike on the registration path); the chunked
//! layout never moves an element once placed.
//!
//! The chunk size is a constructor parameter expressed as a shift, and a
//! shift wider than any realistic population degenerates to a single
//! growing chunk — exactly the seed `Vec` layout. Both
//! [`crate::config::MemberStore`] modes therefore share one code path, and
//! the conformance suites drive them in lockstep (storage must never be
//! observable).
//!
//! Handles into the arena are *generation-checked* by the callers: the
//! scheduler's [`crate::ProcId`] carries `{index, generation}` and every
//! access revalidates the generation against the slot, so a handle from a
//! previous tenant of a reused slot is rejected rather than silently
//! addressing the new one (the classic ABA hazard of index reuse).

use serde::{Deserialize, Error, Serialize, Value};

use crate::config::MemberStore;

/// Chunk shift for [`MemberStore::Chunked`]: 4096 elements per chunk.
/// Small enough that an idle scheduler costs little, large enough that a
/// 10⁶-member population needs only ~244 chunk allocations.
pub(crate) const CHUNK_SHIFT_CHUNKED: u32 = 12;

/// Chunk shift for [`MemberStore::Contiguous`]: one chunk spans the whole
/// 32-bit index space, reproducing the seed single-`Vec` layout (including
/// its double-and-copy growth) for lockstep comparison.
pub(crate) const CHUNK_SHIFT_CONTIGUOUS: u32 = 31;

/// A growable vector stored as fixed-size chunks (see the module docs).
///
/// Supports exactly the operations the scheduler's slot table needs:
/// `push` (slots are never popped — vacancy is a free-list concern of the
/// caller), indexed access, and in-order iteration.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ChunkedVec<T> {
    /// log2 of the chunk capacity.
    chunk_shift: u32,
    chunks: Vec<Vec<T>>,
    len: usize,
}

impl<T> ChunkedVec<T> {
    /// An empty arena with the given chunk shift.
    pub(crate) fn with_shift(chunk_shift: u32) -> Self {
        assert!((1..=31).contains(&chunk_shift), "unreasonable chunk shift");
        ChunkedVec {
            chunk_shift,
            chunks: Vec::new(),
            len: 0,
        }
    }

    /// An empty arena laid out per the configuration knob.
    pub(crate) fn for_store(store: MemberStore) -> Self {
        match store {
            MemberStore::Chunked => Self::with_shift(CHUNK_SHIFT_CHUNKED),
            MemberStore::Contiguous => Self::with_shift(CHUNK_SHIFT_CONTIGUOUS),
        }
    }

    /// Number of elements.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    #[inline]
    fn mask(&self) -> usize {
        (1usize << self.chunk_shift) - 1
    }

    /// Append an element; its index is `len()` before the call. Allocates
    /// at most one new chunk and never moves existing elements (except in
    /// the single-chunk contiguous mode, whose chunk grows like a `Vec`).
    pub(crate) fn push(&mut self, value: T) {
        let chunk = self.len >> self.chunk_shift;
        if chunk == self.chunks.len() {
            // Pre-size real chunks so pushes within one never reallocate;
            // the contiguous mode's single jumbo chunk grows organically.
            let cap = if self.chunk_shift <= CHUNK_SHIFT_CHUNKED {
                1 << self.chunk_shift
            } else {
                0
            };
            self.chunks.push(Vec::with_capacity(cap));
        }
        self.chunks[chunk].push(value);
        self.len += 1;
    }

    /// Element at `i`, if in bounds.
    #[inline]
    pub(crate) fn get(&self, i: usize) -> Option<&T> {
        self.chunks.get(i >> self.chunk_shift)?.get(i & self.mask())
    }

    /// Mutable element at `i`, if in bounds.
    #[inline]
    pub(crate) fn get_mut(&mut self, i: usize) -> Option<&mut T> {
        let mask = self.mask();
        self.chunks
            .get_mut(i >> self.chunk_shift)?
            .get_mut(i & mask)
    }

    /// In-order iteration over all elements.
    pub(crate) fn iter(&self) -> impl Iterator<Item = &T> + '_ {
        self.chunks.iter().flatten()
    }
}

impl<T> std::ops::Index<usize> for ChunkedVec<T> {
    type Output = T;
    #[inline]
    fn index(&self, i: usize) -> &T {
        &self.chunks[i >> self.chunk_shift][i & self.mask()]
    }
}

impl<T> std::ops::IndexMut<usize> for ChunkedVec<T> {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut T {
        let mask = self.mask();
        &mut self.chunks[i >> self.chunk_shift][i & mask]
    }
}

// Serialized as `{chunk_shift, elements}` with the elements flattened:
// the chunk layout is reconstructed on restore, so checkpoints are
// independent of the chunk geometry that wrote them.
impl<T: Serialize> Serialize for ChunkedVec<T> {
    fn to_value(&self) -> Value {
        let elements: Vec<Value> = self.iter().map(|e| e.to_value()).collect();
        Value::Map(vec![
            (
                "chunk_shift".to_string(),
                Value::U64(self.chunk_shift as u64),
            ),
            ("elements".to_string(), Value::Seq(elements)),
        ])
    }
}

impl<T: Deserialize> Deserialize for ChunkedVec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let entries = v
            .as_map()
            .ok_or_else(|| Error::custom("ChunkedVec: expected map"))?;
        let shift = match serde::map_get(entries, "chunk_shift") {
            Some(Value::U64(s)) => *s as u32,
            _ => return Err(Error::custom("ChunkedVec: missing chunk_shift")),
        };
        let elements = serde::map_get(entries, "elements")
            .and_then(|e| e.as_seq())
            .ok_or_else(|| Error::custom("ChunkedVec: missing elements"))?;
        let mut out = ChunkedVec::with_shift(shift);
        for e in elements {
            out.push(T::from_value(e)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_index_iter_roundtrip() {
        for shift in [1, 2, CHUNK_SHIFT_CHUNKED, CHUNK_SHIFT_CONTIGUOUS] {
            let mut v: ChunkedVec<u64> = ChunkedVec::with_shift(shift);
            for i in 0..100u64 {
                v.push(i * 3);
            }
            assert_eq!(v.len(), 100);
            for i in 0..100usize {
                assert_eq!(v[i], i as u64 * 3);
                assert_eq!(v.get(i), Some(&(i as u64 * 3)));
            }
            assert!(v.get(100).is_none());
            let collected: Vec<u64> = v.iter().copied().collect();
            assert_eq!(collected, (0..100).map(|i| i * 3).collect::<Vec<_>>());
            v[7] = 99;
            assert_eq!(*v.get_mut(7).unwrap(), 99);
        }
    }

    #[test]
    fn chunked_mode_never_moves_elements() {
        let mut v: ChunkedVec<u64> = ChunkedVec::for_store(MemberStore::Chunked);
        v.push(42);
        let p0 = &v[0] as *const u64;
        for i in 1..(3 << CHUNK_SHIFT_CHUNKED) as u64 {
            v.push(i);
        }
        assert_eq!(&v[0] as *const u64, p0, "element 0 moved during growth");
    }

    #[test]
    fn serde_roundtrip_preserves_contents_and_geometry() {
        let mut v: ChunkedVec<u32> = ChunkedVec::with_shift(2);
        for i in 0..11 {
            v.push(i);
        }
        let json = serde_json::to_string(&v).unwrap();
        let back: ChunkedVec<u32> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, v);
    }
}
