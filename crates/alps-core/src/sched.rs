//! The ALPS scheduling algorithm (Figure 3 of the paper).
//!
//! [`AlpsScheduler`] is a pure state machine: it never talks to an operating
//! system. A *backend* (the kernel simulator in `alps-sim`, or the real-Linux
//! supervisor in `alps-os`) drives it once per quantum in two phases:
//!
//! 1. [`AlpsScheduler::begin_quantum`] — returns the set of processes whose
//!    progress must be read *this* quantum. With the §2.3 optimization this
//!    is only the processes whose allowance could have been exhausted since
//!    their last measurement; without it, every eligible process.
//! 2. The backend reads each listed process's cumulative CPU time and
//!    blocked status, then calls [`AlpsScheduler::complete_quantum`], which
//!    runs the accounting and returns the [`Transition`]s (suspend/resume
//!    signals) the backend must apply.
//!
//! Splitting the invocation this way mirrors the real cost structure the
//! paper measures in Table 1: the expensive step is reading process state,
//! and its cost is proportional to the number of processes *actually read*.

use serde::{Deserialize, Serialize};

use crate::arena::ChunkedVec;
use crate::config::{AlpsConfig, DueIndex, IoPolicy};
use crate::cycle::{CycleEntry, CycleRecord};
use crate::time::Nanos;

/// Bits of the deadline consumed per deadline-wheel level.
const WHEEL_BITS: u32 = 6;
/// Slots per deadline-wheel level (`2^WHEEL_BITS`).
const WHEEL_SLOTS: u64 = 1 << WHEEL_BITS;
/// Deadline-wheel levels. The single-level seed wheel parked every
/// far-future member in one horizon bucket and re-touched each of them
/// every 64 quanta — an O(N/64) per-quantum tax once most of a large
/// population is far from its next deadline. Four levels span
/// `64⁴ ≈ 16.7M` invocations, so a parked member is touched only when a
/// level boundary passes it: at most [`WHEEL_LEVELS`] touches per actual
/// deadline, independent of how long the deadline is.
const WHEEL_LEVELS: usize = 4;
/// Deadline bits covered by the wheel (level-0 slot = 1 invocation).
const WHEEL_SPAN_BITS: u32 = WHEEL_BITS * WHEEL_LEVELS as u32;
/// Invocations covered by the wheel from any counter position.
const WHEEL_SPAN: u64 = 1 << WHEEL_SPAN_BITS;

/// Stable handle to a process registered with an [`AlpsScheduler`].
///
/// Slots are reused after [`AlpsScheduler::remove_process`], but each reuse
/// bumps a generation counter so stale ids are detected rather than silently
/// addressing the wrong process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ProcId {
    idx: u32,
    generation: u32,
}

impl ProcId {
    /// Slot index; useful as a dense array key in backends.
    #[inline]
    pub fn index(self) -> usize {
        self.idx as usize
    }

    /// Slot-reuse generation; together with [`ProcId::index`] this is the
    /// id's complete raw form.
    #[inline]
    pub fn generation(self) -> u32 {
        self.generation
    }

    /// Rebuild an id from its raw parts.
    ///
    /// Intended for checkpoint restore and for differential test oracles
    /// (`alps-conformance`) that must mint exactly the ids the production
    /// scheduler does. An id that was never issued is harmless: it fails
    /// every stale-id check.
    #[inline]
    pub fn from_raw(index: u32, generation: u32) -> Self {
        ProcId {
            idx: index,
            generation,
        }
    }
}

/// What a backend observed about one process at a measurement point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Observation {
    /// Cumulative CPU time the process has consumed since it was created
    /// (`getrusage`-style). The scheduler differences successive readings
    /// itself, so backends report totals, not deltas.
    pub total_cpu: Nanos,
    /// Whether the process currently sits on a wait channel (is blocked in
    /// the kernel). This is the §2.4 I/O heuristic input.
    pub blocked: bool,
}

/// A scheduling decision the backend must enact (a signal, in UNIX terms).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Transition {
    /// The process has allowance again: make it runnable (`SIGCONT`).
    Resume(ProcId),
    /// The process exhausted its allowance: suspend it (`SIGSTOP`).
    Suspend(ProcId),
}

impl Transition {
    /// The process this transition applies to.
    pub fn proc_id(self) -> ProcId {
        match self {
            Transition::Resume(id) | Transition::Suspend(id) => id,
        }
    }

    /// True if this is a `Resume`.
    pub fn is_resume(self) -> bool {
        matches!(self, Transition::Resume(_))
    }
}

/// Result of one scheduler invocation ([`AlpsScheduler::complete_quantum`]).
#[derive(Debug, Clone, Default)]
pub struct QuantumOutcome {
    /// Eligibility changes to enact, in process-slot order.
    pub transitions: Vec<Transition>,
    /// Whether a cycle boundary was crossed during this invocation.
    pub cycle_completed: bool,
    /// The per-cycle consumption record, if a cycle completed and
    /// [`AlpsConfig::record_cycles`] is on.
    pub cycle_record: Option<CycleRecord>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct ProcState {
    share: u64,
    /// Remaining entitlement this cycle, in units of quanta (may be
    /// fractional or negative; negative values carry debt into the next
    /// cycle, §2.2).
    allowance: f64,
    eligible: bool,
    /// Invocation index at which this process is next due for measurement.
    update: u64,
    /// Cumulative CPU reading at the last measurement.
    last_cpu: Nanos,
    /// CPU consumed (as measured) during the current cycle; for logging.
    cycle_consumed: Nanos,
    /// Whether the `ForfeitAllowance` I/O policy already fired this cycle.
    forfeited: bool,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Slot {
    generation: u32,
    state: Option<ProcState>,
    /// Whether this slot has an entry in the `occupied` index (either
    /// live, or vacated and awaiting compaction).
    listed: bool,
    /// Monotonic key minted when the slot was (re-)listed in `occupied`.
    /// `occupied` is always sorted by it — fresh listings append with a
    /// fresh maximal key, a reuse of a still-listed slot inherits the old
    /// position (and key), and compaction preserves relative order — so
    /// sorting *any* subset of slots by `order_key` reproduces the
    /// reference scan's iteration order exactly.
    order_key: u64,
    /// Nonce for deadline-wheel entries: an entry is live only while its
    /// recorded key matches. Bumped on every insertion and on removal, so
    /// superseded entries and entries from a previous tenant of a reused
    /// slot die lazily when their bucket drains.
    wheel_key: u64,
}

/// One deadline-wheel bucket entry: a slot expected to be due for
/// measurement when the bucket drains (stale unless `key` still matches
/// the slot's `wheel_key`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct WheelEntry {
    idx: u32,
    key: u64,
}

/// The ALPS proportional-share scheduler core (one instance per application).
///
/// Serializable: a supervisor can checkpoint its scheduler mid-cycle and
/// restore it after a restart without resetting allowances or cycle
/// accounting (backends must re-attach their process handles by
/// [`ProcId`], which is stable across the round trip).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AlpsScheduler {
    cfg: AlpsConfig,
    /// Slot storage: a chunked arena (or, per
    /// [`crate::config::MemberStore::Contiguous`], a single growing chunk
    /// reproducing the seed `Vec` layout). Indexed by [`ProcId::index`];
    /// every access generation-checks the handle against the slot.
    slots: ChunkedVec<Slot>,
    /// Vacant slot indices (LIFO). Popping here replaces the historical
    /// full-`Vec` vacancy scan, making registration and removal O(1)
    /// regardless of population size.
    free: Vec<u32>,
    /// Slot indices holding (or recently holding) a process, in
    /// registration order. Invocations iterate this instead of the full
    /// slot vector, so they cost O(live); vacated entries are skipped and
    /// compacted away once they outnumber the live ones, which keeps
    /// departed processes from costing anything per quantum.
    occupied: Vec<u32>,
    /// Vacated entries still present in `occupied`.
    vacated: usize,
    live: usize,
    total_shares: u64,
    /// Time remaining in the current cycle, in nanoseconds (`t_c`).
    tc: f64,
    /// Invocation counter (`count` in Figure 3).
    count: u64,
    /// Completed-cycle counter.
    cycles_completed: u64,
    /// The hierarchical deadline wheel ([`DueIndex::Wheel`]):
    /// `WHEEL_LEVELS × WHEEL_SLOTS` buckets, level-major
    /// (`wheel[level * WHEEL_SLOTS + slot]`). An entry due at invocation
    /// `d` lives at the level of the highest bit where `d` and the
    /// invocation counter differ (XOR leveling, the idiom of kernsim's
    /// event wheel), in slot `(d >> WHEEL_BITS·level) & (WHEEL_SLOTS-1)`.
    /// Advancing the counter only ever lowers an entry's level, so upper
    /// slots cascade toward level 0 as their window opens; deadlines
    /// beyond the whole span park at the top of the current window and
    /// are re-filed when reached. Empty in scan mode.
    wheel: Vec<Vec<WheelEntry>>,
    /// Due list saved by the last `begin_quantum` (wheel mode). Popping a
    /// wheel entry consumes it, so `complete_quantum` must reschedule
    /// exactly these slots even if the backend supplied no observation for
    /// some of them.
    pending: Vec<u32>,
    /// Slots whose `update` was forced due outside an invocation
    /// (`add_process`, `set_share`) and that the next repartition must
    /// therefore examine. The off-boundary repartition walks
    /// `pending ∪ dirty` instead of every occupied slot.
    dirty: Vec<u32>,
    /// Next [`Slot::order_key`] to mint.
    next_order_key: u64,
    /// Number of currently eligible processes (the O(1) replacement for
    /// the liveness valve's full-occupied scan).
    eligible_count: usize,
    /// Bucket-drain scratch; empty between invocations.
    drain: Vec<WheelEntry>,
    /// Repartition examined-set scratch; empty between invocations.
    examined: Vec<u32>,
}

impl AlpsScheduler {
    /// Create a scheduler with no processes.
    pub fn new(cfg: AlpsConfig) -> Self {
        assert!(cfg.quantum > Nanos::ZERO, "quantum must be positive");
        let wheel = if cfg.due_index == DueIndex::Wheel && cfg.lazy_measurement {
            vec![Vec::new(); WHEEL_LEVELS * WHEEL_SLOTS as usize]
        } else {
            Vec::new()
        };
        AlpsScheduler {
            slots: ChunkedVec::for_store(cfg.member_store),
            cfg,
            free: Vec::new(),
            occupied: Vec::new(),
            vacated: 0,
            live: 0,
            total_shares: 0,
            tc: 0.0,
            count: 0,
            cycles_completed: 0,
            wheel,
            pending: Vec::new(),
            dirty: Vec::new(),
            next_order_key: 0,
            eligible_count: 0,
            drain: Vec::new(),
            examined: Vec::new(),
        }
    }

    /// Whether the wheel drives due-set discovery. The wheel indexes lazy
    /// deadlines, so the eager baseline (every eligible process due every
    /// quantum) always uses the reference scan.
    #[inline]
    fn use_wheel(&self) -> bool {
        self.cfg.due_index == DueIndex::Wheel && self.cfg.lazy_measurement
    }

    /// Bucket index for an entry due at invocation `deadline`, relative to
    /// counter position `count`: the level of the highest differing bit
    /// (so the entry cascades down exactly when its window opens), at that
    /// level's slot of the deadline. Deadlines beyond the wheel's span are
    /// clamped to the top of the current window (the drain re-files them,
    /// keeping their key, as the window advances — at most one touch per
    /// level per [`WHEEL_SPAN`] invocations, instead of the seed wheel's
    /// one re-bucket per rotation). Deadlines at or before `count` map to
    /// the bucket this invocation drains.
    #[inline]
    fn wheel_bucket(count: u64, deadline: u64) -> usize {
        let d = deadline.clamp(count, count | (WHEEL_SPAN - 1));
        let x = d ^ count;
        let level = if x == 0 {
            0
        } else {
            ((63 - x.leading_zeros()) / WHEEL_BITS) as usize
        };
        let slot = ((d >> (WHEEL_BITS * level as u32)) & (WHEEL_SLOTS - 1)) as usize;
        level * WHEEL_SLOTS as usize + slot
    }

    /// Insert a live wheel entry for `idx`, due at invocation `deadline`
    /// (which must be `> self.count`), superseding any previous entry.
    fn wheel_insert(&mut self, idx: u32, deadline: u64) {
        debug_assert!(deadline > self.count);
        let slot = &mut self.slots[idx as usize];
        slot.wheel_key = slot.wheel_key.wrapping_add(1);
        let key = slot.wheel_key;
        self.wheel[Self::wheel_bucket(self.count, deadline)].push(WheelEntry { idx, key });
    }

    /// The configuration this scheduler runs with.
    pub fn config(&self) -> &AlpsConfig {
        &self.cfg
    }

    /// The quantum length `Q`.
    pub fn quantum(&self) -> Nanos {
        self.cfg.quantum
    }

    /// CPUs on the governed machine ([`AlpsConfig::cpus`]).
    pub fn cpus(&self) -> usize {
        self.cfg.cpus.get()
    }

    /// Total shares `S` across all registered processes.
    pub fn total_shares(&self) -> u64 {
        self.total_shares
    }

    /// The cycle length `S · Q` in nanoseconds.
    pub fn cycle_len(&self) -> f64 {
        self.total_shares as f64 * self.cfg.quantum.as_f64()
    }

    /// CPU time remaining before the current cycle completes (`t_c`).
    pub fn cycle_time_remaining(&self) -> f64 {
        self.tc
    }

    /// Number of cycles completed so far.
    pub fn cycles_completed(&self) -> u64 {
        self.cycles_completed
    }

    /// Number of scheduler invocations so far.
    pub fn invocations(&self) -> u64 {
        self.count
    }

    /// Number of registered processes.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no processes are registered.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Register a process with the given share and current cumulative CPU
    /// reading.
    ///
    /// Per §2.2, the process starts *ineligible* with an allowance equal to
    /// its share; the next invocation will emit a [`Transition::Resume`] for
    /// it. Backends should therefore place the process in the suspended
    /// state upon registration (e.g. send `SIGSTOP`).
    ///
    /// The remaining cycle time is extended by `share · Q`, keeping the
    /// invariant that `t_c` equals the CPU time still owed in this cycle.
    pub fn add_process(&mut self, share: u64, initial_cpu: Nanos) -> ProcId {
        assert!(share > 0, "share must be positive");
        let state = ProcState {
            share,
            allowance: share as f64,
            eligible: false,
            update: 0, // due immediately once eligible
            last_cpu: initial_cpu,
            cycle_consumed: Nanos::ZERO,
            forfeited: false,
        };
        self.total_shares += share;
        self.tc += share as f64 * self.cfg.quantum.as_f64();
        self.live += 1;
        // Reuse the most recently freed slot if available. The free list
        // replaces a full-`Vec` vacancy scan that made registering N
        // processes O(N²) — the dominant cost of large-N sweeps.
        let id = if let Some(idx) = self.free.pop() {
            let idx = idx as usize;
            debug_assert!(self.slots[idx].state.is_none(), "free slot occupied");
            let order_key = self.next_order_key;
            let slot = &mut self.slots[idx];
            slot.generation = slot.generation.wrapping_add(1);
            slot.state = Some(state);
            if !slot.listed {
                // The vacated entry was compacted away; list the slot
                // again. (If it is still listed, the old entry simply
                // becomes live again at its original position, so it also
                // keeps the position's order key.)
                slot.listed = true;
                slot.order_key = order_key;
                self.next_order_key += 1;
                self.occupied.push(idx as u32);
            } else {
                self.vacated -= 1;
            }
            ProcId {
                idx: idx as u32,
                generation: slot.generation,
            }
        } else {
            self.slots.push(Slot {
                generation: 0,
                state: Some(state),
                listed: true,
                order_key: self.next_order_key,
                wheel_key: 0,
            });
            self.next_order_key += 1;
            self.occupied.push((self.slots.len() - 1) as u32);
            ProcId {
                idx: (self.slots.len() - 1) as u32,
                generation: 0,
            }
        };
        // The new process starts ineligible with `update = 0`: the next
        // repartition must examine it to emit its initial `Resume`. Under
        // the wheel that repartition only walks `pending ∪ dirty`, so
        // record the obligation here.
        if self.use_wheel() {
            self.dirty.push(id.idx);
        }
        id
    }

    /// Deregister a process. Returns its share, or `None` for a stale id.
    ///
    /// The remaining cycle time is shortened by the process's unspent
    /// (positive) allowance, so the surviving processes do not wait for CPU
    /// time that will never be consumed.
    pub fn remove_process(&mut self, id: ProcId) -> Option<u64> {
        let slot = self.slots.get_mut(id.idx as usize)?;
        if slot.generation != id.generation {
            return None;
        }
        let state = slot.state.take()?;
        // Kill any deadline-wheel entry lazily: the bumped nonce makes it
        // stale, and it is discarded the next time its bucket drains.
        slot.wheel_key = slot.wheel_key.wrapping_add(1);
        if state.eligible {
            self.eligible_count -= 1;
        }
        self.free.push(id.idx);
        self.vacated += 1;
        if self.vacated * 2 > self.occupied.len() {
            let slots = &mut self.slots;
            self.occupied.retain(|&i| {
                let keep = slots[i as usize].state.is_some();
                if !keep {
                    slots[i as usize].listed = false;
                }
                keep
            });
            self.vacated = 0;
        }
        self.total_shares -= state.share;
        self.live -= 1;
        if state.allowance > 0.0 {
            self.tc -= state.allowance * self.cfg.quantum.as_f64();
        }
        Some(state.share)
    }

    /// Change a process's share.
    ///
    /// The process's current allowance is rescaled in proportion to the
    /// share change (so a raise takes effect this cycle and a cut does not
    /// leave the process with many cycles of debt), and the remaining
    /// cycle time absorbs the allowance delta — preserving the liveness
    /// invariant `Σ allowanceᵢ = t_c / Q` (whenever cycle time remains,
    /// somebody is eligible to consume it).
    pub fn set_share(&mut self, id: ProcId, share: u64) -> Result<(), StaleId> {
        assert!(share > 0, "share must be positive");
        let q = self.cfg.quantum.as_f64();
        let state = self.state_mut(id).ok_or(StaleId(id))?;
        let old = state.share;
        let old_allowance = state.allowance;
        state.share = share;
        state.allowance = old_allowance * share as f64 / old as f64;
        // Re-measure at the next quantum: a cut allowance can exhaust
        // sooner than the previously scheduled measurement point.
        state.update = 0;
        let eligible = state.eligible;
        let allowance_delta = state.allowance - old_allowance;
        self.total_shares = self.total_shares - old + share;
        self.tc += allowance_delta * q;
        if self.use_wheel() {
            // The forced `update = 0` must surface through the wheel: an
            // eligible process needs a pop at the very next invocation
            // (superseding its previously indexed deadline), and the next
            // repartition must examine the slot even if it runs before any
            // `begin_quantum` does (complete-without-begin reschedules it
            // exactly like the reference scan would).
            self.dirty.push(id.idx);
            if eligible {
                let deadline = self.count + 1;
                self.wheel_insert(id.idx, deadline);
            }
        }
        Ok(())
    }

    /// The share of a process.
    pub fn share(&self, id: ProcId) -> Option<u64> {
        self.state(id).map(|s| s.share)
    }

    /// Current allowance of a process, in quanta.
    pub fn allowance(&self, id: ProcId) -> Option<f64> {
        self.state(id).map(|s| s.allowance)
    }

    /// Whether the process is currently in the eligible group.
    pub fn is_eligible(&self, id: ProcId) -> Option<bool> {
        self.state(id).map(|s| s.eligible)
    }

    /// Iterate over the ids of all registered processes, in registration
    /// order.
    pub fn proc_ids(&self) -> impl Iterator<Item = ProcId> + '_ {
        self.occupied.iter().filter_map(|&i| {
            let s = &self.slots[i as usize];
            s.state.as_ref().map(|_| ProcId {
                idx: i,
                generation: s.generation,
            })
        })
    }

    /// Begin a scheduler invocation: advance the invocation counter and
    /// return the processes whose progress must be measured this quantum.
    ///
    /// With [`AlpsConfig::lazy_measurement`] this is the set
    /// `{i : state_i = eligible ∧ update_i ≤ count}` from Figure 3; without
    /// it, every eligible process. The caller must follow up with
    /// [`Self::complete_quantum`] carrying one observation per returned id.
    pub fn begin_quantum(&mut self) -> Vec<ProcId> {
        let mut due = Vec::new();
        self.begin_quantum_into(&mut due);
        due
    }

    /// Allocation-free [`Self::begin_quantum`]: clears `due` and fills it
    /// with the processes whose progress must be measured this quantum.
    ///
    /// Under [`DueIndex::Wheel`] this pops the invocation's level-0
    /// deadline-wheel slot (after cascading any upper-level slot whose
    /// window just opened) — O(due) plus at most [`WHEEL_LEVELS`] touches
    /// per parked slot over its whole wait — instead of scanning every
    /// occupied slot. Both paths return the same ids in the same
    /// (registration) order.
    pub fn begin_quantum_into(&mut self, due: &mut Vec<ProcId>) {
        due.clear();
        self.count += 1;
        let count = self.count;
        if self.use_wheel() {
            // Entries popped by an earlier `begin_quantum` whose invocation
            // was never completed are still due (the scan would keep
            // returning them, since only `complete_quantum` reschedules);
            // fold them back in before draining this bucket.
            if !self.pending.is_empty() {
                let carry = std::mem::take(&mut self.pending);
                for idx in carry {
                    let Some(s) = self.slots[idx as usize].state.as_ref() else {
                        continue;
                    };
                    if !s.eligible {
                        continue;
                    }
                    if s.update > count {
                        let deadline = s.update;
                        self.wheel_insert(idx, deadline);
                    } else {
                        self.pending.push(idx);
                    }
                }
            }
            // Cascade: whenever the counter crosses a level-`l` window
            // boundary (its low `6·l` bits are zero), the upper-level slot
            // covering the next window spills downward — each entry refiles
            // (keeping its key) at the exact level the XOR rule now assigns
            // it. Ascending order is safe: a live refiled entry has
            // `deadline > count`, and with `count` aligned its target slot
            // at any lower level is strictly above the index-0 slot those
            // levels cascade from, so nothing lands in an already-drained
            // bucket.
            let mut level = 1;
            while level < WHEEL_LEVELS && count & ((1u64 << (WHEEL_BITS * level as u32)) - 1) == 0 {
                let slot = ((count >> (WHEEL_BITS * level as u32)) & (WHEEL_SLOTS - 1)) as usize;
                let from = level * WHEEL_SLOTS as usize + slot;
                if !self.wheel[from].is_empty() {
                    std::mem::swap(&mut self.drain, &mut self.wheel[from]);
                    for e in &self.drain {
                        let slot = &self.slots[e.idx as usize];
                        if slot.wheel_key != e.key {
                            continue; // superseded, or the slot was vacated/reused
                        }
                        let Some(s) = slot.state.as_ref() else {
                            continue;
                        };
                        if !s.eligible {
                            continue;
                        }
                        self.wheel[Self::wheel_bucket(count, s.update)].push(*e);
                    }
                    self.drain.clear();
                }
                level += 1;
            }
            // Drain the level-0 slot for this invocation. An entry is live
            // only while its key matches the slot's nonce; deadlines beyond
            // the wheel's span were clamped to the top of the window and
            // are re-filed here (keeping their key) as the window advances.
            let bucket = (count & (WHEEL_SLOTS - 1)) as usize;
            std::mem::swap(&mut self.drain, &mut self.wheel[bucket]);
            let mut k = 0;
            while k < self.drain.len() {
                let e = self.drain[k];
                k += 1;
                let slot = &self.slots[e.idx as usize];
                if slot.wheel_key != e.key {
                    continue; // superseded, or the slot was vacated/reused
                }
                let Some(s) = slot.state.as_ref() else {
                    continue;
                };
                if !s.eligible {
                    continue;
                }
                if s.update > count {
                    self.wheel[Self::wheel_bucket(count, s.update)].push(e);
                } else {
                    self.pending.push(e.idx);
                }
            }
            self.drain.clear();
            // Reproduce the reference scan's registration-order iteration.
            let slots = &self.slots;
            self.pending
                .sort_unstable_by_key(|&i| slots[i as usize].order_key);
            self.pending.dedup();
            due.extend(self.pending.iter().map(|&i| ProcId {
                idx: i,
                generation: slots[i as usize].generation,
            }));
        } else {
            let lazy = self.cfg.lazy_measurement;
            for &i in &self.occupied {
                let slot = &self.slots[i as usize];
                let Some(s) = slot.state.as_ref() else {
                    continue;
                };
                if s.eligible && (!lazy || s.update <= count) {
                    due.push(ProcId {
                        idx: i,
                        generation: slot.generation,
                    });
                }
            }
        }
    }

    /// Complete the invocation started by [`Self::begin_quantum`], applying
    /// the measurement loop, cycle-boundary handling, and repartitioning of
    /// Figure 3.
    ///
    /// `observations` must contain exactly the processes returned by
    /// `begin_quantum` (order is irrelevant); `now` is the backend's wall
    /// clock, used only to timestamp cycle records. Observations carrying a
    /// stale [`ProcId`] (the process was removed between the two calls) are
    /// ignored.
    pub fn complete_quantum(
        &mut self,
        observations: &[(ProcId, Observation)],
        now: Nanos,
    ) -> QuantumOutcome {
        let mut out = QuantumOutcome::default();
        self.complete_quantum_into(observations, now, &mut out);
        out
    }

    /// Allocation-free [`Self::complete_quantum`]: the outcome is written
    /// into `out`, whose buffers (transition list, cycle-record entries) are
    /// cleared and reused. In steady state this performs no heap allocation.
    pub fn complete_quantum_into(
        &mut self,
        observations: &[(ProcId, Observation)],
        now: Nanos,
        out: &mut QuantumOutcome,
    ) {
        out.transitions.clear();
        out.cycle_completed = false;
        // Recycle the previous cycle record's entry buffer, if the caller
        // left one in `out`.
        let recycled = match out.cycle_record.take() {
            Some(rec) => {
                let mut entries = rec.entries;
                entries.clear();
                entries
            }
            None => Vec::new(),
        };
        let q = self.cfg.quantum.as_f64();

        // Measurement loop. `t_c` adjustments are accumulated locally to
        // avoid aliasing the per-process borrow.
        let io_policy = self.cfg.io_policy;
        let mut tc_delta = 0.0f64;
        for &(id, obs) in observations {
            let Some(state) = self.state_mut(id) else {
                continue;
            };
            let consumed = obs.total_cpu.saturating_sub(state.last_cpu);
            state.last_cpu = obs.total_cpu;
            state.allowance -= consumed.as_f64() / q;
            state.cycle_consumed += consumed;
            tc_delta -= consumed.as_f64();
            if obs.blocked {
                match io_policy {
                    IoPolicy::OneQuantumPenalty => {
                        state.allowance -= 1.0;
                        tc_delta -= q;
                    }
                    IoPolicy::NoPenalty => {}
                    IoPolicy::ForfeitAllowance => {
                        if !state.forfeited && state.allowance > 0.0 {
                            tc_delta -= state.allowance * q;
                            state.allowance = 0.0;
                            state.forfeited = true;
                        }
                    }
                }
            }
        }
        self.tc += tc_delta;

        // Cycle-boundary handling. Figure 3 credits exactly one cycle per
        // invocation even if t_c went far negative: the overrun shortens the
        // *next* cycle, which is how allocation errors are corrected over
        // subsequent cycles instead of accumulating (§2.2).
        let cycle_completed = self.tc <= 0.0 && self.total_shares > 0;
        out.cycle_completed = cycle_completed;
        if cycle_completed {
            self.tc += self.cycle_len();
            self.cycles_completed += 1;
            if self.cfg.record_cycles {
                out.cycle_record = Some(self.take_cycle_record_into(now, recycled));
            } else {
                for k in 0..self.occupied.len() {
                    let i = self.occupied[k] as usize;
                    if let Some(s) = self.slots[i].state.as_mut() {
                        s.cycle_consumed = Nanos::ZERO;
                        s.forfeited = false;
                    }
                }
            }
        }

        // Repartition loop: credit shares, flip eligibility, schedule the
        // next measurement of every process measured this invocation.
        if self.use_wheel() && !cycle_completed {
            // Off-boundary, only the slots measured this invocation
            // (`pending`) plus those whose `update` was forced due outside
            // an invocation (`dirty`) can need attention: every other
            // slot's allowance is unchanged since its last examination, so
            // its eligibility cannot have flipped and its scheduled
            // measurement still stands. Walking `pending ∪ dirty` in
            // registration order therefore emits exactly the transitions
            // and reschedules the reference scan would.
            debug_assert!(self.examined.is_empty());
            std::mem::swap(&mut self.examined, &mut self.pending);
            self.examined.append(&mut self.dirty);
            let slots = &self.slots;
            self.examined
                .sort_unstable_by_key(|&i| slots[i as usize].order_key);
            self.examined.dedup();
            let mut k = 0;
            while k < self.examined.len() {
                let i = self.examined[k] as usize;
                k += 1;
                self.repartition_slot(i, false, &mut out.transitions);
            }
            self.examined.clear();
        } else {
            // Cycle boundaries credit every slot's allowance, so the full
            // walk is inherent (it is O(N) once per cycle, not per
            // quantum). The reference scan does it every quantum.
            self.pending.clear();
            self.dirty.clear();
            for k in 0..self.occupied.len() {
                let i = self.occupied[k] as usize;
                self.repartition_slot(i, cycle_completed, &mut out.transitions);
            }
        }

        // Liveness valve. The invariant `Σ allowanceᵢ = t_c / Q` guarantees
        // that positive cycle time implies an eligible process; if floating
        // drift (or a backend feeding inconsistent observations) ever broke
        // it, the scheduler would stall with everyone suspended. Collapse
        // the remaining cycle instead, so the next invocation completes it
        // and re-credits allowances. (`eligible_count` is the incrementally
        // maintained count of `eligible` flags, replacing a full scan.)
        if self.live > 0 && self.tc > 0.0 && self.eligible_count == 0 {
            self.tc = 0.0;
        }
    }

    /// The repartition-loop body of Figure 3 for one slot: credit its share
    /// (at cycle boundaries), flip its eligibility, and schedule its next
    /// measurement if it was due this invocation.
    fn repartition_slot(&mut self, i: usize, credit: bool, transitions: &mut Vec<Transition>) {
        let count = self.count;
        let use_wheel = self.cfg.due_index == DueIndex::Wheel && self.cfg.lazy_measurement;
        // Disjoint field borrows: the slot's state is mutated while the
        // eligibility counter and the wheel buckets are updated alongside.
        let AlpsScheduler {
            slots,
            eligible_count,
            wheel,
            ..
        } = self;
        let slot = &mut slots[i];
        let Some(s) = slot.state.as_mut() else {
            return;
        };
        if credit {
            s.allowance += s.share as f64;
        }
        let want_eligible = s.allowance > 0.0;
        if want_eligible != s.eligible {
            s.eligible = want_eligible;
            if want_eligible {
                *eligible_count += 1;
            } else {
                *eligible_count -= 1;
            }
            let id = ProcId {
                idx: i as u32,
                generation: slot.generation,
            };
            transitions.push(if want_eligible {
                Transition::Resume(id)
            } else {
                Transition::Suspend(id)
            });
        }
        if s.update <= count {
            // A process with allowance a cannot become ineligible in
            // fewer than ⌈a⌉ quanta, so the next measurement can wait
            // that long (§2.3). Ineligible processes get update ≤ count
            // and are re-examined as soon as they are eligible again.
            let wait = s.allowance.ceil().max(0.0) as u64;
            s.update = count + wait;
            if use_wheel && s.eligible {
                // Index the new deadline (inlined `wheel_insert`; `s`
                // holds a borrow into `slots`). Eligible implies
                // allowance > 0, so `wait >= 1` and the deadline is in
                // the future.
                slot.wheel_key = slot.wheel_key.wrapping_add(1);
                let key = slot.wheel_key;
                wheel[Self::wheel_bucket(count, s.update)].push(WheelEntry { idx: i as u32, key });
            }
        }
    }

    /// Snapshot and reset the per-cycle consumption counters, reusing a
    /// cleared `entries` buffer.
    fn take_cycle_record_into(&mut self, now: Nanos, mut entries: Vec<CycleEntry>) -> CycleRecord {
        debug_assert!(entries.is_empty());
        entries.reserve(self.live);
        let mut total = Nanos::ZERO;
        for k in 0..self.occupied.len() {
            let i = self.occupied[k] as usize;
            let slot = &mut self.slots[i];
            if let Some(s) = slot.state.as_mut() {
                entries.push(CycleEntry {
                    id: ProcId {
                        idx: i as u32,
                        generation: slot.generation,
                    },
                    share: s.share,
                    consumed: s.cycle_consumed,
                });
                total += s.cycle_consumed;
                s.cycle_consumed = Nanos::ZERO;
                s.forfeited = false;
            }
        }
        CycleRecord {
            index: self.cycles_completed - 1,
            completed_at: now,
            total_shares: self.total_shares,
            total_consumed: total,
            entries,
        }
    }

    fn state(&self, id: ProcId) -> Option<&ProcState> {
        let slot = self.slots.get(id.idx as usize)?;
        if slot.generation != id.generation {
            return None;
        }
        slot.state.as_ref()
    }

    fn state_mut(&mut self, id: ProcId) -> Option<&mut ProcState> {
        let slot = self.slots.get_mut(id.idx as usize)?;
        if slot.generation != id.generation {
            return None;
        }
        slot.state.as_mut()
    }
}

/// Error returned when an operation addresses a removed process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaleId(pub ProcId);

impl core::fmt::Display for StaleId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "stale process id {:?}", self.0)
    }
}

impl std::error::Error for StaleId {}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg_ms(q: u64) -> AlpsConfig {
        AlpsConfig::new(Nanos::from_millis(q))
    }

    /// Drive one quantum where each listed process reports the given
    /// *cumulative* CPU and blocked flag.
    fn quantum(
        s: &mut AlpsScheduler,
        readings: &[(ProcId, u64, bool)],
        now: Nanos,
    ) -> QuantumOutcome {
        let due = s.begin_quantum();
        let obs: Vec<_> = due
            .iter()
            .map(|id| {
                let &(_, ms, blocked) = readings
                    .iter()
                    .find(|(rid, _, _)| rid == id)
                    .unwrap_or_else(|| panic!("no reading supplied for due process {id:?}"));
                (
                    *id,
                    Observation {
                        total_cpu: Nanos::from_millis(ms),
                        blocked,
                    },
                )
            })
            .collect();
        s.complete_quantum(&obs, now)
    }

    #[test]
    fn new_process_becomes_eligible_on_first_quantum() {
        let mut s = AlpsScheduler::new(cfg_ms(10));
        let a = s.add_process(1, Nanos::ZERO);
        assert_eq!(s.is_eligible(a), Some(false));
        let due = s.begin_quantum();
        assert!(due.is_empty(), "ineligible processes are never measured");
        let out = s.complete_quantum(&[], Nanos::ZERO);
        assert_eq!(out.transitions, vec![Transition::Resume(a)]);
        assert_eq!(s.is_eligible(a), Some(true));
    }

    #[test]
    fn allowance_decrements_by_consumption() {
        let mut s = AlpsScheduler::new(cfg_ms(10));
        let a = s.add_process(3, Nanos::ZERO);
        quantum(&mut s, &[], Nanos::ZERO); // becomes eligible, allowance 3
        assert_eq!(s.allowance(a), Some(3.0));
        // Not due again for ceil(3) = 3 quanta.
        quantum(&mut s, &[], Nanos::from_millis(10));
        quantum(&mut s, &[], Nanos::from_millis(20));
        // Due now; has consumed 10ms (one quantum) in total.
        quantum(&mut s, &[(a, 10, false)], Nanos::from_millis(30));
        assert_eq!(s.allowance(a), Some(2.0));
        assert_eq!(s.is_eligible(a), Some(true));
    }

    #[test]
    fn exhausted_process_is_suspended_and_earns_back_at_cycle_end() {
        let mut s = AlpsScheduler::new(cfg_ms(10));
        let a = s.add_process(1, Nanos::ZERO);
        let b = s.add_process(1, Nanos::ZERO);
        quantum(&mut s, &[], Nanos::ZERO); // both eligible
                                           // Cycle is S*Q = 20ms. A consumes its full 10ms allowance.
        let out = quantum(
            &mut s,
            &[(a, 10, false), (b, 0, false)],
            Nanos::from_millis(10),
        );
        assert_eq!(out.transitions, vec![Transition::Suspend(a)]);
        assert!(!out.cycle_completed);
        // B consumes its 10ms: cycle completes, A resumes.
        let out = quantum(&mut s, &[(b, 10, false)], Nanos::from_millis(20));
        assert!(out.cycle_completed);
        assert_eq!(out.transitions, vec![Transition::Resume(a)]);
        assert_eq!(s.allowance(a), Some(1.0));
        assert_eq!(s.allowance(b), Some(1.0));
    }

    #[test]
    fn overconsumption_carries_debt_across_cycles() {
        // §2.2: a process that consumes twice its share in one cycle sits
        // out the next cycle entirely.
        let mut s = AlpsScheduler::new(cfg_ms(10));
        let a = s.add_process(1, Nanos::ZERO);
        let b = s.add_process(1, Nanos::ZERO);
        quantum(&mut s, &[], Nanos::ZERO);
        // A consumes 20ms in one go (2 quanta = twice its share); B idle.
        let out = quantum(
            &mut s,
            &[(a, 20, false), (b, 0, false)],
            Nanos::from_millis(20),
        );
        // t_c hit zero (cycle was 20ms), so a cycle completed; A's allowance
        // is 1-2+1 = 0 => ineligible for the whole next cycle.
        assert!(out.cycle_completed);
        assert_eq!(s.allowance(a), Some(0.0));
        assert_eq!(s.is_eligible(a), Some(false));
        assert_eq!(s.allowance(b), Some(2.0));
        // Next cycle: B consumes its 20ms over the following quanta; the
        // cycle completes and A comes back.
        let mut completed = false;
        for i in 0..4 {
            let out = quantum(&mut s, &[(b, 20, false)], Nanos::from_millis(30 + 10 * i));
            if out.cycle_completed {
                completed = true;
                break;
            }
        }
        assert!(completed);
        assert_eq!(s.is_eligible(a), Some(true));
        assert_eq!(s.allowance(a), Some(1.0));
        // Over two cycles, A received 20ms of its 20ms entitlement: caught up.
    }

    #[test]
    fn lazy_measurement_skips_until_due() {
        let mut s = AlpsScheduler::new(cfg_ms(10));
        let _a = s.add_process(5, Nanos::ZERO);
        let _b = s.add_process(5, Nanos::ZERO);
        quantum(&mut s, &[], Nanos::ZERO); // both become eligible; update = count + ceil(5) = 1+5
                                           // For the next 4 invocations neither process is due.
        for i in 0..4 {
            let due = s.begin_quantum();
            assert!(due.is_empty(), "invocation {i} should measure nothing");
            s.complete_quantum(&[], Nanos::ZERO);
        }
        // 5th invocation: both due.
        let due = s.begin_quantum();
        assert_eq!(due.len(), 2);
        s.complete_quantum(
            &due.iter()
                .map(|&id| {
                    (
                        id,
                        Observation {
                            total_cpu: Nanos::from_millis(25),
                            blocked: false,
                        },
                    )
                })
                .collect::<Vec<_>>(),
            Nanos::ZERO,
        );
    }

    #[test]
    fn unoptimized_measures_every_eligible_every_quantum() {
        let mut s = AlpsScheduler::new(cfg_ms(10).with_lazy_measurement(false));
        let _a = s.add_process(5, Nanos::ZERO);
        let _b = s.add_process(5, Nanos::ZERO);
        quantum(&mut s, &[], Nanos::ZERO);
        for _ in 0..3 {
            let due = s.begin_quantum();
            assert_eq!(due.len(), 2);
            let obs: Vec<_> = due
                .iter()
                .map(|&id| {
                    (
                        id,
                        Observation {
                            total_cpu: Nanos::ZERO,
                            blocked: false,
                        },
                    )
                })
                .collect();
            s.complete_quantum(&obs, Nanos::ZERO);
        }
    }

    #[test]
    fn blocked_process_pays_one_quantum_and_shortens_cycle() {
        let mut s = AlpsScheduler::new(cfg_ms(10));
        let a = s.add_process(2, Nanos::ZERO);
        let _b = s.add_process(4, Nanos::ZERO);
        quantum(&mut s, &[], Nanos::ZERO);
        let tc_before = s.cycle_time_remaining();
        // A is due after ceil(2) = 2 quanta; observed blocked, no CPU used.
        quantum(&mut s, &[], Nanos::from_millis(10));
        quantum(&mut s, &[(a, 0, true)], Nanos::from_millis(20));
        assert_eq!(s.allowance(a), Some(1.0));
        let q = s.quantum().as_f64();
        assert!((tc_before - s.cycle_time_remaining() - q).abs() < 1e-6);
    }

    #[test]
    fn fully_blocked_process_lets_cycle_end_early() {
        // If a process blocks for all its allocated quanta, the cycle ends
        // as if its shares never contributed to the cycle length (§2.4).
        let mut s = AlpsScheduler::new(cfg_ms(10));
        let a = s.add_process(3, Nanos::ZERO); // blocked forever
        let b = s.add_process(3, Nanos::ZERO);
        quantum(&mut s, &[], Nanos::ZERO);
        // Cycle = 60ms. B consumes 30ms (its full share) while A blocks.
        // Lazy measurement means A is only penalized when it becomes due, so
        // the cycle ends after a handful of quanta rather than immediately.
        let mut completed = false;
        let mut b_total = 0u64;
        for i in 1..=12 {
            b_total = (b_total + 10).min(30);
            let out = quantum(
                &mut s,
                &[(a, 0, true), (b, b_total, false)],
                Nanos::from_millis(10 * i),
            );
            if out.cycle_completed {
                completed = true;
                break;
            }
        }
        assert!(completed, "cycle should end early despite A never running");
        // B gets a fresh allowance and can keep running.
        assert!(s.allowance(b).unwrap() > 0.0);
    }

    #[test]
    fn no_penalty_policy_does_not_charge_blocked() {
        let mut s = AlpsScheduler::new(cfg_ms(10).with_io_policy(IoPolicy::NoPenalty));
        let a = s.add_process(2, Nanos::ZERO);
        quantum(&mut s, &[], Nanos::ZERO);
        quantum(&mut s, &[], Nanos::from_millis(10));
        quantum(&mut s, &[(a, 0, true)], Nanos::from_millis(20));
        assert_eq!(s.allowance(a), Some(2.0));
    }

    #[test]
    fn forfeit_policy_zeroes_allowance_once_per_cycle() {
        let mut s = AlpsScheduler::new(cfg_ms(10).with_io_policy(IoPolicy::ForfeitAllowance));
        let a = s.add_process(3, Nanos::ZERO);
        let b = s.add_process(3, Nanos::ZERO);
        quantum(&mut s, &[], Nanos::ZERO);
        // Both due after ceil(3) = 3 quanta.
        quantum(&mut s, &[], Nanos::from_millis(10));
        quantum(&mut s, &[], Nanos::from_millis(20));
        let out = quantum(
            &mut s,
            &[(a, 0, true), (b, 0, false)],
            Nanos::from_millis(30),
        );
        assert_eq!(s.allowance(a), Some(0.0));
        assert!(out.transitions.contains(&Transition::Suspend(a)));
        // The cycle shortened by A's whole allowance: only B's 30ms remain.
        assert!((s.cycle_time_remaining() - 30e6).abs() < 1e-3);
    }

    #[test]
    fn cycle_record_contents() {
        let mut s = AlpsScheduler::new(cfg_ms(10).with_cycle_log(true));
        let a = s.add_process(1, Nanos::ZERO);
        let b = s.add_process(2, Nanos::ZERO);
        quantum(&mut s, &[], Nanos::ZERO);
        quantum(
            &mut s,
            &[(a, 10, false), (b, 0, false)],
            Nanos::from_millis(10),
        );
        let out = quantum(&mut s, &[(b, 20, false)], Nanos::from_millis(30));
        assert!(out.cycle_completed);
        let rec = out.cycle_record.expect("cycle record requested");
        assert_eq!(rec.index, 0);
        assert_eq!(rec.completed_at, Nanos::from_millis(30));
        assert_eq!(rec.total_shares, 3);
        assert_eq!(rec.total_consumed, Nanos::from_millis(30));
        let ca = rec.entries.iter().find(|e| e.id == a).unwrap();
        let cb = rec.entries.iter().find(|e| e.id == b).unwrap();
        assert_eq!(ca.consumed, Nanos::from_millis(10));
        assert_eq!(cb.consumed, Nanos::from_millis(20));
        assert_eq!(ca.share, 1);
        assert_eq!(cb.share, 2);
    }

    #[test]
    fn remove_process_shortens_cycle_and_invalidates_id() {
        let mut s = AlpsScheduler::new(cfg_ms(10));
        let a = s.add_process(2, Nanos::ZERO);
        let b = s.add_process(2, Nanos::ZERO);
        quantum(&mut s, &[], Nanos::ZERO);
        let tc_before = s.cycle_time_remaining();
        assert_eq!(s.remove_process(a), Some(2));
        assert_eq!(s.total_shares(), 2);
        assert!((tc_before - s.cycle_time_remaining() - 20e6).abs() < 1e-3);
        assert_eq!(s.remove_process(a), None, "double remove is rejected");
        assert_eq!(s.allowance(a), None);
        assert_eq!(s.share(b), Some(2));
    }

    #[test]
    fn slot_reuse_bumps_generation() {
        let mut s = AlpsScheduler::new(cfg_ms(10));
        let a = s.add_process(1, Nanos::ZERO);
        s.remove_process(a);
        let c = s.add_process(5, Nanos::ZERO);
        assert_eq!(a.index(), c.index(), "slot is reused");
        assert_ne!(a, c, "but the generation differs");
        assert_eq!(s.share(a), None);
        assert_eq!(s.share(c), Some(5));
    }

    #[test]
    fn set_share_updates_totals() {
        let mut s = AlpsScheduler::new(cfg_ms(10));
        let a = s.add_process(1, Nanos::ZERO);
        let _b = s.add_process(1, Nanos::ZERO);
        s.set_share(a, 3).unwrap();
        assert_eq!(s.total_shares(), 4);
        assert_eq!(s.share(a), Some(3));
        s.remove_process(a);
        assert!(s.set_share(a, 9).is_err());
    }

    #[test]
    fn stale_observation_is_ignored() {
        let mut s = AlpsScheduler::new(cfg_ms(10));
        let a = s.add_process(1, Nanos::ZERO);
        let b = s.add_process(1, Nanos::ZERO);
        quantum(&mut s, &[], Nanos::ZERO);
        let due = s.begin_quantum();
        assert_eq!(due.len(), 2);
        // a exits between measurement and completion.
        s.remove_process(a);
        let obs: Vec<_> = due
            .iter()
            .map(|&id| {
                (
                    id,
                    Observation {
                        total_cpu: Nanos::from_millis(5),
                        blocked: false,
                    },
                )
            })
            .collect();
        let out = s.complete_quantum(&obs, Nanos::from_millis(10));
        // No panic; b was still accounted.
        assert!(out.transitions.iter().all(|t| t.proc_id() != a));
        assert!((s.allowance(b).unwrap() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn cpu_counter_going_backwards_saturates() {
        // /proc readings can glitch; the core must not panic or credit time.
        let mut s = AlpsScheduler::new(cfg_ms(10));
        let a = s.add_process(1, Nanos::from_millis(100));
        quantum(&mut s, &[], Nanos::ZERO);
        quantum(&mut s, &[(a, 50, false)], Nanos::from_millis(10));
        assert_eq!(s.allowance(a), Some(1.0), "no consumption charged");
    }

    #[test]
    fn empty_scheduler_quantum_is_noop() {
        let mut s = AlpsScheduler::new(cfg_ms(10));
        assert!(s.begin_quantum().is_empty());
        let out = s.complete_quantum(&[], Nanos::ZERO);
        assert!(out.transitions.is_empty());
        assert!(!out.cycle_completed);
        assert_eq!(s.cycles_completed(), 0);
    }

    #[test]
    #[should_panic(expected = "share must be positive")]
    fn zero_share_rejected() {
        let mut s = AlpsScheduler::new(cfg_ms(10));
        s.add_process(0, Nanos::ZERO);
    }

    #[test]
    fn update_schedule_matches_allowance_ceiling() {
        // Allowance 4.3 => next measurement 5 quanta later (§2.3 example).
        let mut s = AlpsScheduler::new(cfg_ms(10));
        let a = s.add_process(5, Nanos::ZERO);
        quantum(&mut s, &[], Nanos::ZERO); // count=1, eligible, update = 1+5 = 6
        for _ in 0..4 {
            assert!(s.begin_quantum().is_empty());
            s.complete_quantum(&[], Nanos::ZERO);
        } // count=5
        let due = s.begin_quantum(); // count=6: due
        assert_eq!(due, vec![a]);
        // Consumed 7ms => allowance 5 - 0.7 = 4.3 => due again in 5 quanta.
        s.complete_quantum(
            &[(
                a,
                Observation {
                    total_cpu: Nanos::from_millis(7),
                    blocked: false,
                },
            )],
            Nanos::ZERO,
        );
        for i in 0..4 {
            assert!(s.begin_quantum().is_empty(), "quantum {i} not due");
            s.complete_quantum(&[], Nanos::ZERO);
        }
        let due = s.begin_quantum();
        assert_eq!(due, vec![a], "due exactly at ceil(4.3)=5 quanta");
    }

    /// Brute-force check that the slot indexes (`free`, `occupied`,
    /// `listed`, `vacated`) exactly summarize `slots`.
    fn assert_indexes_consistent(s: &AlpsScheduler) {
        for (pos, &idx) in s.free.iter().enumerate() {
            let idx = idx as usize;
            assert!(s.slots[idx].state.is_none(), "free slot {idx} is occupied");
            assert!(
                !s.free[pos + 1..].contains(&(idx as u32)),
                "slot {idx} listed twice in the free list"
            );
        }
        for (pos, &idx) in s.occupied.iter().enumerate() {
            let idx = idx as usize;
            assert!(
                s.slots[idx].listed,
                "occupied entry {idx} not marked listed"
            );
            assert!(
                !s.occupied[pos + 1..].contains(&(idx as u32)),
                "slot {idx} listed twice in the occupied index"
            );
        }
        for (idx, slot) in s.slots.iter().enumerate() {
            let in_occupied = s.occupied.contains(&(idx as u32));
            assert_eq!(
                slot.listed, in_occupied,
                "slot {idx}: listed flag disagrees with the occupied index"
            );
            if slot.state.is_some() {
                assert!(
                    in_occupied,
                    "live slot {idx} missing from the occupied index"
                );
                assert!(
                    !s.free.contains(&(idx as u32)),
                    "live slot {idx} on the free list"
                );
            } else {
                assert!(
                    s.free.contains(&(idx as u32)),
                    "vacant slot {idx} missing from the free list"
                );
            }
        }
        let dead = s
            .occupied
            .iter()
            .filter(|&&i| s.slots[i as usize].state.is_none())
            .count();
        assert_eq!(s.vacated, dead, "vacated count disagrees with a scan");
        assert!(
            s.vacated * 2 <= s.occupied.len().max(1),
            "compaction threshold violated: {} dead of {}",
            s.vacated,
            s.occupied.len()
        );
        assert!(
            s.occupied
                .windows(2)
                .all(|w| s.slots[w[0] as usize].order_key < s.slots[w[1] as usize].order_key),
            "occupied index not sorted by order_key"
        );
        let eligible = s
            .occupied
            .iter()
            .filter_map(|&i| s.slots[i as usize].state.as_ref())
            .filter(|p| p.eligible)
            .count();
        assert_eq!(
            s.eligible_count, eligible,
            "eligible_count disagrees with a scan"
        );
        if s.use_wheel() {
            // At most one live wheel entry per slot, and every eligible
            // slot is reachable: indexed in the wheel, or queued for the
            // next repartition via pending/dirty.
            for (idx, slot) in s.slots.iter().enumerate() {
                let live_entries = s
                    .wheel
                    .iter()
                    .flatten()
                    .filter(|e| e.idx as usize == idx && e.key == slot.wheel_key)
                    .count();
                assert!(
                    live_entries <= 1,
                    "slot {idx} has {live_entries} live wheel entries"
                );
                if slot.state.as_ref().is_some_and(|p| p.eligible) {
                    assert!(
                        live_entries == 1
                            || s.pending.contains(&(idx as u32))
                            || s.dirty.contains(&(idx as u32)),
                        "eligible slot {idx} unreachable by the wheel"
                    );
                }
            }
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]

        /// Random add/remove/quantum churn keeps the O(1) slot indexes
        /// exactly consistent with a brute-force scan of every slot, and
        /// `proc_ids` reporting exactly the live processes.
        #[test]
        fn slot_index_churn_stays_consistent(
            ops in proptest::collection::vec((0u8..4, 0usize..16, 1u64..6), 1..80),
        ) {
            let mut s = AlpsScheduler::new(cfg_ms(10));
            let mut live: Vec<ProcId> = Vec::new();
            let mut clock = 0u64;
            for (op, pick, share) in ops {
                match op {
                    0 | 1 => live.push(s.add_process(share, Nanos::from_millis(clock))),
                    2 if !live.is_empty() => {
                        let id = live.swap_remove(pick % live.len());
                        s.remove_process(id).expect("id was live");
                    }
                    _ => {
                        clock += 10;
                        let due = s.begin_quantum();
                        let obs: Vec<_> = due
                            .iter()
                            .map(|&id| {
                                (id, Observation {
                                    total_cpu: Nanos::from_millis(clock / 2),
                                    blocked: pick % 2 == 0,
                                })
                            })
                            .collect();
                        s.complete_quantum(&obs, Nanos::from_millis(clock));
                    }
                }
                assert_indexes_consistent(&s);
                let mut want: Vec<ProcId> = live.clone();
                want.sort_by_key(|id| (id.idx, id.generation));
                let mut got: Vec<ProcId> = s.proc_ids().collect();
                got.sort_by_key(|id| (id.idx, id.generation));
                proptest::prop_assert_eq!(got, want, "proc_ids disagrees with live set");
            }
        }
    }
}
