//! The generic ALPS control loop, shared by every backend.
//!
//! Before this module existed, the simulator runners and the OS supervisor
//! each carried their own copy of the per-quantum loop: ask the scheduler
//! who is due, read those processes, complete the invocation, deliver the
//! resulting stop/continue signals, snapshot consumption at cycle
//! boundaries, and reap processes that exited. [`Engine`] owns that loop
//! once; backends implement the small [`Substrate`] trait (read a process,
//! deliver a signal, tell the time) and get identical scheduling behavior,
//! identical bookkeeping ([`EngineStats`]), and a uniform instrumentation
//! stream ([`Event`]/[`EventSink`]) for free.
//!
//! The engine is principal-granular — it drives a
//! [`PrincipalScheduler`], so a scheduled entity may be one process (the
//! common case; see [`Engine::add_member`]) or a group of processes
//! scheduled as a unit (§5; see [`Engine::add_principal`] +
//! [`Engine::set_membership`]).

mod event;
mod substrate;

pub use event::{Event, EventSink, NullSink, RecordingSink, TraceSink};
pub use substrate::{Signal, Substrate};

use core::fmt;
use core::hash::Hash;
use std::collections::HashMap;

use crate::config::AlpsConfig;
use crate::cycle::{CycleEntry, CycleRecord};
use crate::hierarchy::{NodeId, TreeShares};
use crate::principal::{
    DueList, MemberTransition, MembershipChange, PrincipalOutcome, PrincipalScheduler,
};
use crate::sched::{AlpsScheduler, Observation, ProcId, StaleId, Transition};
use crate::time::Nanos;

/// Counters for everything externally observable the engine has done.
///
/// This is the union of the statistics the backend-specific runners used
/// to keep separately (`RunnerStats` in `alps-sim`, `SupervisorStats` in
/// `alps-os`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Scheduler invocations serviced.
    pub quanta: u64,
    /// Per-member CPU-time reads that found the member alive.
    pub measurements: u64,
    /// Stop/continue deliveries attempted (including refresh-time
    /// reconciliation signals).
    pub signals: u64,
    /// Cycle boundaries crossed.
    pub cycles: u64,
    /// Invocations that arrived two or more quanta after the previous one
    /// (late/coalesced timer, §4.2).
    pub overruns: u64,
    /// Principals removed because their sole member exited.
    pub reaped: u64,
    /// CPU-time reads that failed with a substrate error and were
    /// tolerated (only under [`FaultPolicy::Harden`]).
    pub read_faults: u64,
    /// Signal deliveries that failed with a substrate error and were
    /// tolerated (only under [`FaultPolicy::Harden`]).
    pub signal_faults: u64,
    /// Failed deliveries re-attempted after backoff.
    pub retries: u64,
    /// Periodic re-assertions of a member's intended run/stop state.
    pub reasserted: u64,
    /// Members quarantined out of scheduling after repeated faults.
    pub quarantined: u64,
    /// Runtime share changes applied via [`Engine::adjust_share`] (e.g.
    /// SLO-controller feedback).
    pub share_adjustments: u64,
}

/// How the engine fills its per-cycle consumption log (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instrumentation {
    /// At each cycle boundary, re-read every principal's members through
    /// [`Substrate::read_exact`] and record deltas against a snapshot taken
    /// at the previous boundary. This measures what was *actually* consumed
    /// — ground truth in the simulator, a fresh `/proc` read on Linux —
    /// independent of what the scheduler happened to observe. The inner
    /// scheduler's own (measurement-granular) log is disabled.
    Exact,
    /// Keep the inner scheduler's log: consumption at measurement
    /// granularity, exactly what the algorithm itself saw.
    Measured,
}

/// How the engine responds to substrate faults — errors from CPU-time
/// reads and signal deliveries.
///
/// A lost `SIGSTOP`, a transiently unreadable `/proc` entry, or a delivery
/// race is routine on a real kernel; a supervisor that propagates every
/// such error dies with its first hiccup. Hardening keeps the loop alive:
/// faults are tallied ([`EngineStats::read_faults`],
/// [`EngineStats::signal_faults`]), failed deliveries are retried with
/// exponential backoff, intended run/stop states are periodically
/// re-asserted (which also repairs *silently* lost signals), and a member
/// that keeps faulting is quarantined out of scheduling so one broken
/// process cannot wedge the rest.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum FaultPolicy {
    /// Return every substrate error to the caller. The default; fault-free
    /// behavior is byte-identical to the engine before hardening existed.
    #[default]
    Propagate,
    /// Tolerate faults and recover per the given knobs.
    Harden(HardenConfig),
}

/// Recovery knobs for [`FaultPolicy::Harden`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HardenConfig {
    /// Consecutive faulting operations on one member before it is
    /// quarantined (removed from scheduling). Strikes reset on any
    /// successful read or delivery.
    pub max_strikes: u32,
    /// Re-deliver every member's intended stop/continue signal each time
    /// this many quanta elapse (`0` disables). Signals are idempotent, so
    /// re-assertion is safe and repairs deliveries that were reported
    /// successful but silently lost.
    pub reassert_every: u64,
}

impl Default for HardenConfig {
    fn default() -> Self {
        HardenConfig {
            max_strikes: 3,
            reassert_every: 16,
        }
    }
}

/// Per-member recovery state kept under [`FaultPolicy::Harden`].
#[derive(Debug, Clone, Copy)]
struct MemberHealth {
    /// The stop/continue state the scheduler last asked this member to be
    /// in — the reconciliation target.
    desired: Option<Signal>,
    /// Consecutive faulting operations.
    strikes: u32,
    /// Quantum count at which a failed delivery is retried (`0` = none).
    retry_at: u64,
}

impl MemberHealth {
    fn new() -> Self {
        MemberHealth {
            desired: None,
            strikes: 0,
            retry_at: 0,
        }
    }
}

/// Convenience alias: the engine type driven by a given substrate.
pub type EngineFor<S> = Engine<<S as Substrate>::Member>;

/// The generic per-quantum ALPS control loop.
///
/// One invocation is three stages, which backends may drive separately
/// (the simulator interleaves cost-model charges between them) or all at
/// once via [`Engine::run_quantum`]:
///
/// 1. [`begin_quantum`](Engine::begin_quantum) — note the time, detect
///    overruns, ask the scheduler who is due;
/// 2. [`complete_quantum`](Engine::complete_quantum) — read the due
///    members from the substrate, feed the observations to the scheduler,
///    handle the cycle boundary;
/// 3. [`apply_signals`](Engine::apply_signals) — deliver the resulting
///    stop/continue signals.
///
/// Members that turn out to be gone (unreadable, or a signal bounces) are
/// reaped automatically when [`with_auto_reap`](Engine::with_auto_reap) is
/// enabled and they are their principal's sole member; group-scheduling
/// backends instead reconcile membership at their refresh period via
/// [`set_membership`](Engine::set_membership).
#[derive(Debug, Clone)]
pub struct Engine<M: Copy + Ord + Hash + fmt::Debug> {
    sched: PrincipalScheduler<M>,
    /// Principals in registration order (the order cycle-record entries
    /// are emitted in).
    order: Vec<ProcId>,
    /// Stale (removed) ids still present in `order`/`snapshot`. Removal
    /// only tombstones; both vectors are compacted once stale entries
    /// outnumber live ones, so a mass reap (every member of a large
    /// workload exiting) costs O(n) amortized instead of the O(n²) that
    /// eager `retain` per removal used to.
    stale: usize,
    /// Member → owning principal, for reap lookups on failed delivery.
    member_index: HashMap<M, ProcId>,
    /// Per-principal cumulative exact CPU at the last cycle boundary,
    /// parallel to `order`. Only meaningful under
    /// [`Instrumentation::Exact`].
    snapshot: Vec<(ProcId, Nanos)>,
    cycles: Vec<CycleRecord>,
    stats: EngineStats,
    record_cycles: bool,
    instrumentation: Instrumentation,
    auto_reap: bool,
    fault_policy: FaultPolicy,
    /// Per-member recovery state (populated only under
    /// [`FaultPolicy::Harden`]).
    health: HashMap<M, MemberHealth>,
    last_begin: Option<Nanos>,
    /// Scratch: the due list of the in-flight invocation.
    due: DueList<M>,
    /// Scratch: per-member observations, parallel to `due.members()`.
    readings: Vec<Option<Observation>>,
    /// Scratch: members found gone during the read phase.
    gone: Vec<(ProcId, M)>,
    /// Scratch: members whose read faulted this quantum (hardening only).
    faulted: Vec<M>,
    /// Scratch: the signal batch handed to [`Substrate::apply_batch`]
    /// (propagate policy only; hardening delivers one-by-one to
    /// interleave retries and health bookkeeping).
    sig_batch: Vec<(M, Signal)>,
    /// Scratch: per-signal delivery outcomes, parallel to `sig_batch`.
    delivered: Vec<bool>,
    /// Outcome of the last completed invocation; its buffers are reused,
    /// so steady-state quanta allocate nothing.
    outcome: PrincipalOutcome<M>,
    /// Hierarchical share bindings ([`Engine::with_share_tree`]); `None`
    /// leaves the engine flat and byte-identical to its pre-tree behavior.
    tree: Option<TreeShares>,
}

impl<M: Copy + Ord + Hash + fmt::Debug> Engine<M> {
    /// An empty engine. `cfg.record_cycles` selects whether a per-cycle
    /// log is kept at all; `instrumentation` selects how it is filled.
    pub fn new(cfg: AlpsConfig, instrumentation: Instrumentation) -> Self {
        let record_cycles = cfg.record_cycles;
        let inner_cfg = match instrumentation {
            // The engine rebuilds records from exact readings itself; the
            // inner measurement-granular log would only waste work.
            Instrumentation::Exact => cfg.with_cycle_log(false),
            Instrumentation::Measured => cfg,
        };
        Engine {
            sched: PrincipalScheduler::new(inner_cfg),
            order: Vec::new(),
            stale: 0,
            member_index: HashMap::new(),
            snapshot: Vec::new(),
            cycles: Vec::new(),
            stats: EngineStats::default(),
            record_cycles,
            instrumentation,
            auto_reap: false,
            fault_policy: FaultPolicy::Propagate,
            health: HashMap::new(),
            last_begin: None,
            due: DueList::new(),
            readings: Vec::new(),
            gone: Vec::new(),
            faulted: Vec::new(),
            sig_batch: Vec::new(),
            delivered: Vec::new(),
            outcome: PrincipalOutcome::default(),
            tree: None,
        }
    }

    /// Attach a hierarchical share tree ([`TreeShares`]). Principals
    /// registered through [`Engine::add_grouped_member`] are bound to tree
    /// leaves, and each due member's integer share is lazily refreshed
    /// from its entitlement at the end of the quantum that measured it —
    /// tree churn never costs the per-quantum control path more than the
    /// O(depth) queries for the members already being touched.
    pub fn with_share_tree(mut self, shares: TreeShares) -> Self {
        self.tree = Some(shares);
        self
    }

    /// Enable automatic removal of a principal when its sole member is
    /// found to be gone (per-process backends). Off by default: a
    /// group-scheduling backend must not tear a principal down just
    /// because one member exited.
    pub fn with_auto_reap(mut self, on: bool) -> Self {
        self.auto_reap = on;
        self
    }

    /// Select how substrate faults are handled. Defaults to
    /// [`FaultPolicy::Propagate`].
    pub fn with_fault_policy(mut self, policy: FaultPolicy) -> Self {
        self.fault_policy = policy;
        self
    }

    /// The active fault policy.
    pub fn fault_policy(&self) -> FaultPolicy {
        self.fault_policy
    }

    // --- registration -----------------------------------------------------

    /// Register a single-member principal — the common "schedule this
    /// process with this share" case. `initial_cpu` is the member's
    /// cumulative CPU reading at registration, so only consumption from
    /// this point on is charged.
    ///
    /// Per §2.2 the principal starts ineligible; the caller is responsible
    /// for suspending the member now (the first invocation will resume it).
    pub fn add_member(&mut self, member: M, share: u64, initial_cpu: Nanos) -> ProcId {
        let id = self.sched.add_principal(share);
        // The returned change only asks us to suspend `member`, which the
        // caller does as part of registration.
        let _ = self.sched.set_membership(id, &[(member, initial_cpu)]);
        self.member_index.insert(member, id);
        self.order.push(id);
        self.snapshot.push((id, initial_cpu));
        id
    }

    /// Register an empty principal (group scheduling, §5). Populate it
    /// with [`Engine::set_membership`].
    pub fn add_principal(&mut self, share: u64) -> ProcId {
        let id = self.sched.add_principal(share);
        self.order.push(id);
        self.snapshot.push((id, Nanos::ZERO));
        id
    }

    // --- hierarchical shares ----------------------------------------------

    /// Add a group node to the attached share tree (`None` parent = a
    /// root-level group). Requires [`Engine::with_share_tree`].
    pub fn add_share_group(&mut self, parent: Option<NodeId>, share: u64) -> NodeId {
        self.tree
            .as_mut()
            .expect("share tree not attached (Engine::with_share_tree)")
            .tree_mut()
            .add_group(parent, share)
    }

    /// Register a single-member principal as a leaf of the share tree:
    /// like [`Engine::add_member`], but its integer share is derived from
    /// its entitlement (weight `weight` relative to its siblings under
    /// `parent`) and tracks the tree from then on. Requires
    /// [`Engine::with_share_tree`].
    pub fn add_grouped_member(
        &mut self,
        member: M,
        parent: Option<NodeId>,
        weight: u64,
        initial_cpu: Nanos,
    ) -> ProcId {
        // Two-phase: the id must exist before the binding can be recorded,
        // so register with a placeholder share and immediately overwrite it
        // with the derived one (before the principal's first quantum).
        let id = self.add_member(member, 1, initial_cpu);
        let share = self
            .tree
            .as_mut()
            .expect("share tree not attached (Engine::with_share_tree)")
            .bind(id, parent, weight);
        let _ = self.sched.set_share(id, share);
        id
    }

    /// Change a share-tree node's weight. O(1) on the tree; every affected
    /// member's integer share is re-derived lazily when it next comes up
    /// for measurement. Returns `false` for stale/removed nodes or when no
    /// tree is attached.
    pub fn set_node_share(&mut self, node: NodeId, share: u64) -> bool {
        match self.tree.as_mut() {
            Some(t) => t.tree_mut().set_share(node, share),
            None => false,
        }
    }

    /// The attached share-tree binding layer, if any.
    pub fn share_tree(&self) -> Option<&TreeShares> {
        self.tree.as_ref()
    }

    /// The tree leaf a principal is bound to, if any.
    pub fn node_of(&self, id: ProcId) -> Option<NodeId> {
        self.tree.as_ref()?.node_of(id)
    }

    /// End-of-quantum share refresh: re-derive the integer share of every
    /// principal measured this quantum from the tree (O(1) per member when
    /// the tree is unchanged). Runs after the invocation completes, so a
    /// change lands between quanta exactly like an external
    /// [`Engine::adjust_share`] call would.
    fn refresh_due_shares(&mut self, sink: &mut dyn EventSink<M>) {
        let Some(mut tree) = self.tree.take() else {
            return;
        };
        for (id, _) in self.due.iter() {
            if let Some(new) = tree.refresh(id) {
                let Some(old) = self.sched.inner().share(id) else {
                    continue;
                };
                if old != new && self.sched.set_share(id, new).is_ok() {
                    self.stats.share_adjustments += 1;
                    sink.on_event(&Event::ShareChanged { id, old, new });
                }
            }
        }
        self.tree = Some(tree);
    }

    /// Replace a principal's member set (the once-per-second refresh of
    /// §5). Returns the joiners/leavers and the reconciliation signals the
    /// backend must deliver (conveniently via
    /// [`Engine::apply_signals`]).
    pub fn set_membership(
        &mut self,
        id: ProcId,
        current: &[(M, Nanos)],
    ) -> Option<MembershipChange<M>> {
        let change = self.sched.set_membership(id, current)?;
        for m in &change.added {
            self.member_index.insert(*m, id);
        }
        for m in &change.removed {
            self.member_index.remove(m);
        }
        Some(change)
    }

    /// Deregister a principal, returning its members (which the backend
    /// should resume if the principal was ineligible).
    pub fn remove_principal(&mut self, id: ProcId) -> Option<Vec<M>> {
        let members = self.sched.remove_principal(id)?;
        if let Some(t) = self.tree.as_mut() {
            t.unbind(id);
        }
        self.stale += 1;
        if self.stale * 2 > self.order.len() {
            let sched = &self.sched;
            self.order.retain(|&x| sched.is_eligible(x).is_some());
            self.snapshot
                .retain(|&(x, _)| sched.is_eligible(x).is_some());
            self.stale = 0;
        }
        for m in &members {
            self.member_index.remove(m);
        }
        Some(members)
    }

    /// Change a principal's share (§2.2: remaining allowance is rescaled).
    pub fn set_share(&mut self, id: ProcId, share: u64) -> Result<(), StaleId> {
        self.sched.set_share(id, share)
    }

    /// Change a principal's share as an *observable* runtime adjustment:
    /// like [`Engine::set_share`], but counted in
    /// [`EngineStats::share_adjustments`] and surfaced on the event
    /// stream as [`Event::ShareChanged`]. A no-op (same share) emits
    /// nothing, so a disabled controller leaves stats and event streams
    /// byte-identical.
    pub fn adjust_share(
        &mut self,
        id: ProcId,
        share: u64,
        sink: &mut dyn EventSink<M>,
    ) -> Result<(), StaleId> {
        let old = self.sched.inner().share(id).ok_or(StaleId(id))?;
        if old == share {
            return Ok(());
        }
        self.sched.set_share(id, share)?;
        self.stats.share_adjustments += 1;
        sink.on_event(&Event::ShareChanged {
            id,
            old,
            new: share,
        });
        Ok(())
    }

    // --- the per-quantum loop ---------------------------------------------

    /// Stage 1: enter a quantum. Notes the substrate time (detecting
    /// overrun/coalesced timers, §4.2), refills the internal due list —
    /// inspect it via [`Engine::due`] — and returns the number of members
    /// to read.
    pub fn begin_quantum<S>(
        &mut self,
        sub: &mut S,
        sink: &mut dyn EventSink<M>,
    ) -> Result<usize, S::Error>
    where
        S: Substrate<Member = M>,
    {
        let now = sub.now();
        if let Some(last) = self.last_begin {
            let gap = now.saturating_sub(last);
            if gap >= self.quantum() * 2 {
                self.stats.overruns += 1;
                sink.on_event(&Event::Overrun { now, gap });
            }
        }
        self.last_begin = Some(now);
        self.stats.quanta += 1;
        if let FaultPolicy::Harden(h) = self.fault_policy {
            self.reconcile(sub, h, sink)?;
        }
        self.sched.begin_quantum_into(&mut self.due);
        sink.on_event(&Event::QuantumStart {
            invocation: self.stats.quanta,
            now,
            due: self.due.members().len(),
        });
        Ok(self.due.members().len())
    }

    /// The due list filled by the last [`Engine::begin_quantum`]: which
    /// principals are measured this quantum, and which members.
    pub fn due(&self) -> &DueList<M> {
        &self.due
    }

    /// Stage 2: read every due member from the substrate and complete the
    /// scheduler invocation. Members that are gone are skipped without
    /// charge (and reaped, under auto-reap, if they were their principal's
    /// sole member). On a cycle boundary the per-cycle log is extended
    /// according to the configured [`Instrumentation`]. The results are
    /// held internally — see [`Engine::pending_signals`],
    /// [`Engine::last_transitions`], [`Engine::last_cycle_completed`] —
    /// and every buffer involved is reused across invocations.
    pub fn complete_quantum<S>(
        &mut self,
        sub: &mut S,
        sink: &mut dyn EventSink<M>,
    ) -> Result<(), S::Error>
    where
        S: Substrate<Member = M>,
    {
        self.readings.clear();
        self.gone.clear();
        self.faulted.clear();
        let hardened = matches!(self.fault_policy, FaultPolicy::Harden(_));
        if !hardened {
            // Propagate: one batched read over the whole due list, then
            // bookkeeping over the readings. `read_batch` is fail-fast
            // with the successful prefix in `readings`, so the events
            // emitted and the state left behind on a fault are exactly
            // the per-member loop's. Hardening keeps the loop below: it
            // must interleave per-member fault tolerance.
            let res = sub.read_batch(self.due.members(), &mut self.readings);
            let mut i = 0;
            'recorded: for (id, members) in self.due.iter() {
                for &m in members {
                    if i >= self.readings.len() {
                        break 'recorded;
                    }
                    match self.readings[i] {
                        Some(o) => {
                            self.stats.measurements += 1;
                            sink.on_event(&Event::Measured {
                                member: m,
                                cpu: o.total_cpu,
                                blocked: o.blocked,
                            });
                        }
                        None => self.gone.push((id, m)),
                    }
                    i += 1;
                }
            }
            res?;
        } else {
            for (id, members) in self.due.iter() {
                for &m in members {
                    match sub.read(m) {
                        Ok(Some(o)) => {
                            self.stats.measurements += 1;
                            sink.on_event(&Event::Measured {
                                member: m,
                                cpu: o.total_cpu,
                                blocked: o.blocked,
                            });
                            if let Some(health) = self.health.get_mut(&m) {
                                health.strikes = 0;
                            }
                            self.readings.push(Some(o));
                        }
                        Ok(None) => {
                            self.gone.push((id, m));
                            self.readings.push(None);
                        }
                        Err(_) => {
                            // Tolerated: the member is skipped without
                            // charge this quantum (like a missed
                            // measurement), NOT reaped — it may be alive
                            // but briefly unreadable.
                            self.stats.read_faults += 1;
                            sink.on_event(&Event::ReadFault { member: m });
                            self.faulted.push(m);
                            self.readings.push(None);
                        }
                    }
                }
            }
        }
        let mut gone = std::mem::take(&mut self.gone);
        for (id, m) in gone.drain(..) {
            self.reap(id, m, sink);
        }
        self.gone = gone;
        if let FaultPolicy::Harden(h) = self.fault_policy {
            let mut faulted = std::mem::take(&mut self.faulted);
            for &m in &faulted {
                self.strike(m, h, sink);
            }
            faulted.clear();
            self.faulted = faulted;
        }
        let now = sub.now();
        self.sched
            .complete_quantum_into(&self.due, &self.readings, now, &mut self.outcome);
        if self.outcome.cycle_completed {
            self.stats.cycles += 1;
            sink.on_event(&Event::CycleEnd {
                index: self.sched.inner().cycles_completed().saturating_sub(1),
                now,
            });
            if self.record_cycles {
                match self.instrumentation {
                    Instrumentation::Exact => self.record_exact_cycle(sub, now)?,
                    Instrumentation::Measured => {
                        if let Some(rec) = self.outcome.cycle_record.take() {
                            self.cycles.push(rec);
                        }
                    }
                }
            }
        }
        self.refresh_due_shares(sink);
        Ok(())
    }

    /// Signals produced by the last [`Engine::complete_quantum`], not yet
    /// (or last) delivered via [`Engine::apply_pending_signals`].
    pub fn pending_signals(&self) -> &[MemberTransition<M>] {
        &self.outcome.signals
    }

    /// Principal-level eligibility transitions of the last invocation.
    pub fn last_transitions(&self) -> &[Transition] {
        &self.outcome.transitions
    }

    /// Whether the last invocation crossed a cycle boundary.
    pub fn last_cycle_completed(&self) -> bool {
        self.outcome.cycle_completed
    }

    /// Stage 3: deliver stop/continue signals through the substrate. A
    /// bounced delivery (member gone) reaps the member's principal under
    /// auto-reap.
    pub fn apply_signals<S>(
        &mut self,
        sub: &mut S,
        signals: &[MemberTransition<M>],
        sink: &mut dyn EventSink<M>,
    ) -> Result<(), S::Error>
    where
        S: Substrate<Member = M>,
    {
        if let FaultPolicy::Harden(h) = self.fault_policy {
            for t in signals {
                let m = t.member();
                let sig = match t {
                    MemberTransition::Resume(_) => Signal::Continue,
                    MemberTransition::Suspend(_) => Signal::Stop,
                };
                self.health
                    .entry(m)
                    .or_insert_with(MemberHealth::new)
                    .desired = Some(sig);
                self.harden_deliver(sub, m, sig, h, sink)?;
            }
            return Ok(());
        }
        // Propagate: one batched delivery, then bookkeeping in batch
        // order. `apply_batch` is fail-fast with the successful prefix's
        // outcomes in `delivered`, and `reap` never touches the
        // substrate, so the events emitted and the reaps performed match
        // the per-signal loop exactly.
        self.sig_batch.clear();
        self.delivered.clear();
        for t in signals {
            let sig = match t {
                MemberTransition::Resume(_) => Signal::Continue,
                MemberTransition::Suspend(_) => Signal::Stop,
            };
            self.sig_batch.push((t.member(), sig));
        }
        let res = sub.apply_batch(&self.sig_batch, &mut self.delivered);
        for i in 0..self.delivered.len() {
            let (m, sig) = self.sig_batch[i];
            let delivered = self.delivered[i];
            self.stats.signals += 1;
            sink.on_event(&Event::SignalSent {
                member: m,
                signal: sig,
                delivered,
            });
            if !delivered {
                if let Some(&id) = self.member_index.get(&m) {
                    self.reap(id, m, sink);
                }
            }
        }
        res
    }

    // --- fault hardening --------------------------------------------------

    /// Deliver one signal under [`FaultPolicy::Harden`]: success clears the
    /// member's strikes, a bounce (member gone) follows the normal reap
    /// path, and a substrate error is tolerated, counted, and scheduled for
    /// a backed-off retry.
    fn harden_deliver<S>(
        &mut self,
        sub: &mut S,
        m: M,
        sig: Signal,
        h: HardenConfig,
        sink: &mut dyn EventSink<M>,
    ) -> Result<(), S::Error>
    where
        S: Substrate<Member = M>,
    {
        match sub.deliver(m, sig) {
            Ok(delivered) => {
                self.stats.signals += 1;
                sink.on_event(&Event::SignalSent {
                    member: m,
                    signal: sig,
                    delivered,
                });
                if delivered {
                    if let Some(health) = self.health.get_mut(&m) {
                        health.strikes = 0;
                        health.retry_at = 0;
                    }
                } else {
                    self.health.remove(&m);
                    if let Some(&id) = self.member_index.get(&m) {
                        self.reap(id, m, sink);
                    }
                }
            }
            Err(_) => {
                self.stats.signal_faults += 1;
                sink.on_event(&Event::SignalFault {
                    member: m,
                    signal: sig,
                });
                let health = self.health.entry(m).or_insert_with(MemberHealth::new);
                health.desired = Some(sig);
                // Exponential backoff in quanta: 1, 2, 4, ... capped at 32.
                let backoff = 1u64 << health.strikes.min(5);
                health.retry_at = self.stats.quanta + backoff;
                self.strike(m, h, sink);
            }
        }
        Ok(())
    }

    /// One fault against `m`; quarantines it once it reaches
    /// [`HardenConfig::max_strikes`].
    fn strike(&mut self, m: M, h: HardenConfig, sink: &mut dyn EventSink<M>) {
        let health = self.health.entry(m).or_insert_with(MemberHealth::new);
        health.strikes += 1;
        if health.strikes >= h.max_strikes {
            self.quarantine(m, sink);
        }
    }

    /// Remove a persistently faulting member from scheduling: its sole-
    /// member principal is torn down entirely; in a group, just the member
    /// leaves (the backend's next refresh may re-admit it if it recovers).
    fn quarantine(&mut self, m: M, sink: &mut dyn EventSink<M>) {
        self.health.remove(&m);
        let Some(&id) = self.member_index.get(&m) else {
            return;
        };
        self.stats.quarantined += 1;
        sink.on_event(&Event::Quarantined { member: m });
        let members = self.sched.members(id);
        if members.as_deref() == Some(&[m]) {
            self.remove_principal(id);
            return;
        }
        let kept: Vec<(M, Nanos)> = members
            .unwrap_or_default()
            .into_iter()
            .filter(|&x| x != m)
            // Kept members retain their stored readings; the reading here
            // only seeds *new* members, of which there are none.
            .map(|x| (x, Nanos::ZERO))
            .collect();
        // Reconciliation signals for the evicted member are deliberately
        // dropped: it is faulting, and intent re-assertion covers the rest.
        let _ = self.set_membership(id, &kept);
    }

    /// Start-of-quantum reconciliation under [`FaultPolicy::Harden`]:
    /// re-attempt failed deliveries whose backoff expired, and periodically
    /// re-assert every member's intended run/stop state (repairing signals
    /// that were reported delivered but silently lost).
    fn reconcile<S>(
        &mut self,
        sub: &mut S,
        h: HardenConfig,
        sink: &mut dyn EventSink<M>,
    ) -> Result<(), S::Error>
    where
        S: Substrate<Member = M>,
    {
        let reassert = h.reassert_every > 0 && self.stats.quanta.is_multiple_of(h.reassert_every);
        // Sorted so the recovery traffic is deterministic (HashMap order
        // is not), which seeded fault-injection replays rely on.
        let mut work: Vec<(M, Signal, bool)> = self
            .health
            .iter()
            .filter_map(|(&m, health)| {
                let sig = health.desired?;
                let retry = health.retry_at != 0 && health.retry_at <= self.stats.quanta;
                (retry || reassert).then_some((m, sig, retry))
            })
            .collect();
        work.sort_unstable_by_key(|&(m, _, _)| m);
        for (m, sig, retry) in work {
            if retry {
                self.stats.retries += 1;
                sink.on_event(&Event::SignalRetried {
                    member: m,
                    signal: sig,
                });
            } else {
                self.stats.reasserted += 1;
            }
            self.harden_deliver(sub, m, sig, h, sink)?;
        }
        Ok(())
    }

    /// Stage 3 for the common case: deliver the signals produced by the
    /// last [`Engine::complete_quantum`].
    pub fn apply_pending_signals<S>(
        &mut self,
        sub: &mut S,
        sink: &mut dyn EventSink<M>,
    ) -> Result<(), S::Error>
    where
        S: Substrate<Member = M>,
    {
        // The signal buffer is moved out for the duration of the call (the
        // borrow checker cannot see that `apply_signals` leaves it alone)
        // and put back so it keeps being reused.
        let signals = std::mem::take(&mut self.outcome.signals);
        let result = self.apply_signals(sub, &signals, sink);
        self.outcome.signals = signals;
        result
    }

    /// All three stages back to back — the whole scheduler invocation for
    /// backends with nothing to interleave. Returns the principal-level
    /// eligibility transitions this invocation produced.
    pub fn run_quantum<S>(
        &mut self,
        sub: &mut S,
        sink: &mut dyn EventSink<M>,
    ) -> Result<&[Transition], S::Error>
    where
        S: Substrate<Member = M>,
    {
        self.begin_quantum(sub, sink)?;
        self.complete_quantum(sub, sink)?;
        self.apply_pending_signals(sub, sink)?;
        Ok(&self.outcome.transitions)
    }

    fn reap(&mut self, id: ProcId, m: M, sink: &mut dyn EventSink<M>) {
        if !self.auto_reap {
            return;
        }
        // Only tear the principal down if the vanished process was its
        // sole member; otherwise membership reconciliation is the
        // backend's job (refresh).
        if self.sched.members(id).as_deref() != Some(&[m]) {
            return;
        }
        self.health.remove(&m);
        self.remove_principal(id);
        self.stats.reaped += 1;
        sink.on_event(&Event::MemberReaped { member: m });
    }

    /// Build a [`CycleRecord`] from exact substrate readings, differenced
    /// against the snapshot taken at the previous boundary.
    fn record_exact_cycle<S>(&mut self, sub: &mut S, now: Nanos) -> Result<(), S::Error>
    where
        S: Substrate<Member = M>,
    {
        let mut entries = Vec::with_capacity(self.snapshot.len());
        let mut total = Nanos::ZERO;
        for i in 0..self.snapshot.len() {
            let (id, last) = self.snapshot[i];
            if self.sched.is_eligible(id).is_none() {
                continue; // tombstoned (principal removed, not yet compacted)
            }
            let mut sum = Nanos::ZERO;
            let mut alive = false;
            for m in self.sched.members(id).unwrap_or_default() {
                if let Some(cpu) = sub.read_exact(m)? {
                    sum += cpu;
                    alive = true;
                }
            }
            // A principal whose members are all gone is charged nothing
            // further; keep the old snapshot so the record is stable.
            let current = if alive { sum } else { last };
            let consumed = current.saturating_sub(last);
            self.snapshot[i].1 = current;
            total += consumed;
            entries.push(CycleEntry {
                id,
                share: self.sched.inner().share(id).unwrap_or(0),
                consumed,
            });
        }
        self.cycles.push(CycleRecord {
            index: self.sched.inner().cycles_completed().saturating_sub(1),
            completed_at: now,
            total_shares: self.sched.inner().total_shares(),
            total_consumed: total,
            entries,
        });
        Ok(())
    }

    // --- accessors --------------------------------------------------------

    /// Counters of everything the engine has done.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// The per-cycle consumption log (empty unless `record_cycles`).
    pub fn cycles(&self) -> &[CycleRecord] {
        &self.cycles
    }

    /// Live principals, in registration order.
    pub fn proc_ids(&self) -> Vec<ProcId> {
        self.order
            .iter()
            .copied()
            .filter(|&id| self.sched.is_eligible(id).is_some())
            .collect()
    }

    /// A principal's remaining allowance in quanta.
    pub fn allowance(&self, id: ProcId) -> Option<f64> {
        self.sched.inner().allowance(id)
    }

    /// A principal's share, or `None` if it is gone.
    pub fn share(&self, id: ProcId) -> Option<u64> {
        self.sched.inner().share(id)
    }

    /// Whether a principal is currently eligible.
    pub fn is_eligible(&self, id: ProcId) -> Option<bool> {
        self.sched.inner().is_eligible(id)
    }

    /// Scheduler invocations completed.
    pub fn invocations(&self) -> u64 {
        self.sched.inner().invocations()
    }

    /// Cycles completed.
    pub fn cycles_completed(&self) -> u64 {
        self.sched.inner().cycles_completed()
    }

    /// The configured quantum `Q`.
    pub fn quantum(&self) -> Nanos {
        self.sched.inner().quantum()
    }

    /// CPUs on the governed machine ([`crate::AlpsConfig::cpus`]).
    pub fn cpus(&self) -> usize {
        self.sched.inner().cpus()
    }

    /// Members of a principal.
    pub fn members(&self, id: ProcId) -> Option<Vec<M>> {
        self.sched.members(id)
    }

    /// The inner Figure-3 scheduler, for read-only inspection.
    pub fn scheduler(&self) -> &AlpsScheduler {
        self.sched.inner()
    }
}
