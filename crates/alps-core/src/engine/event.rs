//! Engine instrumentation: a stream of per-quantum events.
//!
//! The [`Engine`](super::Engine) emits an [`Event`] for every externally
//! visible action it takes — quantum entries, measurements, signal
//! deliveries, cycle boundaries, overruns, and reaps. Consumers implement
//! [`EventSink`]; [`NullSink`] discards everything (the default),
//! [`RecordingSink`] accumulates events for tests, and [`TraceSink`]
//! renders a human-readable line per event (wired to `alps --trace`).

use core::fmt;
use std::io;

use super::substrate::Signal;
use crate::sched::ProcId;
use crate::time::Nanos;

/// One externally visible engine action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event<M> {
    /// A scheduler invocation is starting.
    QuantumStart {
        /// Scheduler invocation count *after* this quantum (1-based).
        invocation: u64,
        /// Substrate wall-clock time at quantum entry.
        now: Nanos,
        /// Number of members due for measurement this quantum.
        due: usize,
    },
    /// A member's progress was read from the substrate.
    Measured {
        /// The member that was read.
        member: M,
        /// Its cumulative CPU time.
        cpu: Nanos,
        /// Whether it was blocked on I/O at read time.
        blocked: bool,
    },
    /// A stop/continue signal was delivered (or attempted).
    SignalSent {
        /// The target member.
        member: M,
        /// What was sent.
        signal: Signal,
        /// `false` if the member was gone and the signal went nowhere.
        delivered: bool,
    },
    /// A scheduling cycle (S·Q) completed.
    CycleEnd {
        /// Zero-based index of the completed cycle.
        index: u64,
        /// Substrate wall-clock time at the boundary.
        now: Nanos,
    },
    /// The quantum timer overran: more than one quantum elapsed between
    /// consecutive invocations (coalesced/late timer, §4.2).
    Overrun {
        /// Wall-clock time at the late invocation.
        now: Nanos,
        /// Time elapsed since the previous invocation.
        gap: Nanos,
    },
    /// A member vanished (exited) and its sole-member principal was
    /// removed from scheduling.
    MemberReaped {
        /// The member that disappeared.
        member: M,
    },
    /// A CPU-time read failed with a substrate error and was tolerated
    /// (only under hardening; the member goes unmeasured this quantum).
    ReadFault {
        /// The member whose read failed.
        member: M,
    },
    /// A signal delivery failed with a substrate error and was tolerated
    /// (only under hardening; a backed-off retry is scheduled).
    SignalFault {
        /// The target member.
        member: M,
        /// What failed to send.
        signal: Signal,
    },
    /// A previously failed delivery is being re-attempted after backoff.
    SignalRetried {
        /// The target member.
        member: M,
        /// What is being re-sent.
        signal: Signal,
    },
    /// A member was quarantined out of scheduling after repeated faults.
    Quarantined {
        /// The member removed.
        member: M,
    },
    /// A principal's share was changed at runtime (e.g. by the SLO
    /// controller's feedback loop).
    ShareChanged {
        /// The principal whose share changed.
        id: ProcId,
        /// The share before the change.
        old: u64,
        /// The share after the change.
        new: u64,
    },
}

/// A consumer of engine [`Event`]s.
pub trait EventSink<M> {
    /// Observe one event. Called synchronously from the engine loop.
    fn on_event(&mut self, event: &Event<M>);
}

/// Discards every event. The default sink.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl<M> EventSink<M> for NullSink {
    fn on_event(&mut self, _event: &Event<M>) {}
}

/// Accumulates every event in order, for assertions in tests.
#[derive(Debug, Clone, Default)]
pub struct RecordingSink<M> {
    /// All events observed so far, in emission order.
    pub events: Vec<Event<M>>,
}

impl<M> RecordingSink<M> {
    /// An empty recording sink.
    pub fn new() -> Self {
        RecordingSink { events: Vec::new() }
    }
}

impl<M: Clone> EventSink<M> for RecordingSink<M> {
    fn on_event(&mut self, event: &Event<M>) {
        self.events.push(event.clone());
    }
}

/// Renders one human-readable line per event to a writer. Write errors
/// are ignored: tracing must never abort the scheduling loop.
#[derive(Debug)]
pub struct TraceSink<W> {
    out: W,
}

impl<W: io::Write> TraceSink<W> {
    /// Trace to `out` (e.g. `std::io::stderr()`).
    pub fn new(out: W) -> Self {
        TraceSink { out }
    }
}

impl<W: io::Write, M: fmt::Debug> EventSink<M> for TraceSink<W> {
    fn on_event(&mut self, event: &Event<M>) {
        let line = match event {
            Event::QuantumStart {
                invocation,
                now,
                due,
            } => format!(
                "[{:>12.6}] quantum #{invocation}: {due} due",
                now.as_secs_f64()
            ),
            Event::Measured {
                member,
                cpu,
                blocked,
            } => format!(
                "               measure {member:?}: cpu {:.3} ms{}",
                cpu.as_millis_f64(),
                if *blocked { " (blocked)" } else { "" }
            ),
            Event::SignalSent {
                member,
                signal,
                delivered,
            } => {
                let name = match signal {
                    Signal::Stop => "STOP",
                    Signal::Continue => "CONT",
                };
                format!(
                    "               signal  {member:?}: {name}{}",
                    if *delivered { "" } else { " (gone)" }
                )
            }
            Event::CycleEnd { index, now } => {
                format!(
                    "[{:>12.6}] ---- cycle {index} complete ----",
                    now.as_secs_f64()
                )
            }
            Event::Overrun { now, gap } => format!(
                "[{:>12.6}] overrun: {:.3} ms since last quantum",
                now.as_secs_f64(),
                gap.as_millis_f64()
            ),
            Event::MemberReaped { member } => {
                format!("               reaped  {member:?}")
            }
            Event::ReadFault { member } => {
                format!("               fault   {member:?}: read failed")
            }
            Event::SignalFault { member, signal } => {
                let name = match signal {
                    Signal::Stop => "STOP",
                    Signal::Continue => "CONT",
                };
                format!("               fault   {member:?}: {name} failed")
            }
            Event::SignalRetried { member, signal } => {
                let name = match signal {
                    Signal::Stop => "STOP",
                    Signal::Continue => "CONT",
                };
                format!("               retry   {member:?}: {name}")
            }
            Event::Quarantined { member } => {
                format!("               quarantine {member:?}")
            }
            Event::ShareChanged { id, old, new } => {
                format!("               share   {id:?}: {old} -> {new}")
            }
        };
        let _ = writeln!(self.out, "{line}");
    }
}
