//! The backend abstraction the [`Engine`](super::Engine) drives.
//!
//! A [`Substrate`] is whatever world the controlled processes live in: the
//! `kernsim` discrete-event simulator, a real Linux box read through
//! `/proc`, or a scripted mock in tests. The engine owns the per-quantum
//! control loop; the substrate owns *observation* (cumulative CPU time,
//! blocked state) and *actuation* (stop/continue delivery). Everything the
//! paper's ALPS process does to the outside world passes through these
//! methods. The batched entry points ([`Substrate::read_batch`],
//! [`Substrate::apply_batch`]) let a backend amortize per-call overhead
//! across a whole quantum's worth of members; their defaults delegate to
//! the per-member methods, so implementing only those stays correct.

use core::fmt;
use core::hash::Hash;

use crate::sched::Observation;
use crate::time::Nanos;

/// A suspend/continue request for one member process — the engine-level
/// view of `SIGSTOP`/`SIGCONT`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Signal {
    /// Suspend the member (`SIGSTOP`).
    Stop,
    /// Make the member runnable again (`SIGCONT`).
    Continue,
}

/// A world the engine can schedule processes in.
///
/// Implementations report *cumulative* CPU readings (the engine and the
/// core scheduler difference successive readings themselves) and signal
/// delivery outcomes. A member that no longer exists is reported as
/// `Ok(None)` from [`Substrate::read`] / [`Substrate::read_exact`] and
/// `Ok(false)` from [`Substrate::deliver`] — the engine reaps it; `Err` is
/// reserved for faults that should abort the quantum (e.g. an unreadable
/// `/proc` for reasons other than process exit).
pub trait Substrate {
    /// The backend's member identifier (a `pid_t` on Linux, a simulator
    /// pid in `kernsim`).
    type Member: Copy + Ord + Hash + fmt::Debug;
    /// Backend fault type. Use [`core::convert::Infallible`] for backends
    /// that cannot fail (e.g. the simulator).
    type Error;

    /// The backend's current wall clock.
    fn now(&mut self) -> Nanos;

    /// Read a member's progress: cumulative CPU time and blocked state.
    /// Returns `Ok(None)` if the member no longer exists.
    fn read(&mut self, member: Self::Member) -> Result<Option<Observation>, Self::Error>;

    /// Read every member of `members`, in order, appending one entry per
    /// member to `out` (`None` for a member that no longer exists).
    ///
    /// Fail-fast: a backend fault aborts the batch, with `out` holding
    /// the readings of the members processed before the fault — exactly
    /// the state a caller looping over [`Substrate::read`] would hold.
    /// The default does just that; backends with per-call overhead worth
    /// amortizing (syscall buffers, path formatting) override it. The
    /// engine drives this on the hot measurement path, so overrides
    /// should not allocate per call.
    fn read_batch(
        &mut self,
        members: &[Self::Member],
        out: &mut Vec<Option<Observation>>,
    ) -> Result<(), Self::Error> {
        for &m in members {
            let o = self.read(m)?;
            out.push(o);
        }
        Ok(())
    }

    /// Read a member's cumulative CPU time with the best precision the
    /// backend has, for cycle-boundary instrumentation (§3.1). Defaults to
    /// the visible reading from [`Substrate::read`]; the simulator
    /// overrides this with ground truth so accuracy numbers measure the
    /// *scheduler*, not the tick-sampled counters it reads.
    fn read_exact(&mut self, member: Self::Member) -> Result<Option<Nanos>, Self::Error> {
        Ok(self.read(member)?.map(|o| o.total_cpu))
    }

    /// Deliver a stop/continue signal. Returns `Ok(false)` if the member
    /// no longer exists.
    fn deliver(&mut self, member: Self::Member, signal: Signal) -> Result<bool, Self::Error>;

    /// Deliver a batch of signals, in order, appending one delivery
    /// outcome per signal to `delivered` (`false` = member gone).
    ///
    /// Fail-fast: a backend fault aborts the batch with `delivered`
    /// holding the outcomes of the signals sent before the fault — the
    /// state a caller looping over [`Substrate::deliver`] would hold.
    /// Backends may reorder *work* internally (e.g. group same-signal
    /// deliveries) only if the observable outcome per member is the same
    /// as in-order delivery; the outcomes in `delivered` always follow
    /// `batch` order.
    fn apply_batch(
        &mut self,
        batch: &[(Self::Member, Signal)],
        delivered: &mut Vec<bool>,
    ) -> Result<(), Self::Error> {
        for &(m, sig) in batch {
            let d = self.deliver(m, sig)?;
            delivered.push(d);
        }
        Ok(())
    }
}
