//! Hierarchical share trees (the §6 related-work direction).
//!
//! The paper's related work cites hierarchical CPU schedulers (Goyal et
//! al.) and composable scheduler frameworks (HLS). ALPS itself schedules a
//! flat set of shares — but a *static* hierarchy ("users get equal shares;
//! within a user, apps get weighted shares; within an app, processes…")
//! flattens exactly: each leaf's entitlement is the product of its
//! ancestors' share fractions. [`ShareTree`] maintains that mapping onto
//! the integer shares an [`AlpsScheduler`](crate::AlpsScheduler) consumes.
//!
//! ## A live tree, not a snapshot
//!
//! The seed implementation recomputed the whole flattening on every
//! membership or share change — O(tree) per change, which at a
//! million-member population makes every process exit a full-tree walk.
//! The tree is now *live*:
//!
//! * every interior node carries two aggregates — its subtree's live-leaf
//!   count and the share sum of its *active* children (those with live
//!   leaves beneath) — and [`ShareTree::add_leaf`] /
//!   [`ShareTree::remove_leaf`] / [`ShareTree::set_share`] maintain them
//!   along the root path in O(depth), propagating only as far as liveness
//!   actually flips;
//! * each leaf's entitlement (the product of ancestor share fractions) is
//!   computed lazily per query by [`ShareTree::entitlement`] and cached
//!   per node with an epoch stamp, so a query whose path saw no change
//!   since the last one is a pure O(depth) stamp comparison — unchanged
//!   subtrees never recompute, and a share change in one department never
//!   touches another department's cache.
//!
//! [`ShareTree::flatten`] remains as the from-scratch oracle: it derives
//! the same fractions by walking the whole tree, and the property suite
//! holds the two equivalent under arbitrary churn.
//!
//! What flattening does *not* capture is hierarchical redistribution: when
//! a leaf blocks, a true hierarchical scheduler gives its time to siblings
//! *within the subtree* first, while flat ALPS redistributes across the
//! whole tree (§2.4). Removing departed leaves keeps the static part of
//! that behavior current; the in-cycle part is approximated. This is a
//! documented extension, not part of the paper.

use serde::{Deserialize, Serialize};

use crate::sched::ProcId;

/// Node identifier within a [`ShareTree`].
///
/// Ids are never reused: a removed leaf's id keeps referring to its
/// tombstone, and [`ShareTree::set_share`] / [`ShareTree::remove_leaf`]
/// report `false` for it instead of addressing another node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(u32);

/// Greatest common divisor (iterative — the share reduction in
/// [`ShareTree::flatten`] folds over every leaf, and recursion depth must
/// not scale with anything).
fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Node {
    parent: Option<NodeId>,
    share: u64,
    children: Vec<NodeId>,
    /// This node's index in `parent.children`, so detaching is O(1)
    /// (swap-remove plus one fixup) instead of a scan of the siblings.
    pos_in_parent: u32,
    /// Leaf payload: an opaque tag the caller maps to a pid or principal.
    leaf_tag: Option<u64>,
    /// Tombstone: set when a leaf is removed. The slot is never reused.
    removed: bool,
    /// Live leaves in this node's subtree (a leaf counts itself).
    live_leaves: u64,
    /// Share sum of this node's *active* children — those with live
    /// leaves beneath. The denominator of each active child's fraction.
    active_share: u64,
    /// Epoch at which this node's active-child set or an active child's
    /// share last changed — i.e. when its children's fractions were last
    /// invalidated.
    children_changed: u64,
    /// Cached absolute fraction (product of ancestor fractions), valid
    /// through epoch `abs_stamp` (0 = never computed).
    abs_frac: f64,
    abs_stamp: u64,
}

/// A tree of weighted groups with tagged leaves.
///
/// ```
/// use alps_core::ShareTree;
///
/// // Departments 2:1; engineering has two equal users, research one.
/// let mut tree = ShareTree::new();
/// let eng = tree.add_group(None, 2);
/// let res = tree.add_group(None, 1);
/// let a = tree.add_leaf(Some(eng), 1, 10);
/// tree.add_leaf(Some(eng), 1, 11);
/// tree.add_leaf(Some(res), 1, 20);
/// // Fractions 1/3, 1/3, 1/3 — flattened to equal integer shares.
/// let mut flat = tree.flatten();
/// flat.sort();
/// assert_eq!(flat, vec![(10, 1), (11, 1), (20, 1)]);
/// // The live entitlement query agrees, in O(depth) per leaf.
/// assert!((tree.entitlement(a).unwrap() - 1.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ShareTree {
    nodes: Vec<Node>,
    /// Mutation epoch: bumped by every fraction-affecting change. Cache
    /// stamps and `children_changed` marks are drawn from it; callers can
    /// read it ([`ShareTree::epoch`]) to skip refreshing bindings that are
    /// already in sync.
    epoch: u64,
    /// Share sum of the active root-level nodes (the virtual root's
    /// `active_share`).
    root_active_share: u64,
    /// Epoch at which the root-level fractions last changed (the virtual
    /// root's `children_changed`).
    root_changed: u64,
    /// Path scratch for [`ShareTree::entitlement`]; empty between calls.
    scratch: Vec<u32>,
}

impl ShareTree {
    /// An empty tree.
    pub fn new() -> Self {
        ShareTree::default()
    }

    /// Add a group (interior node). `parent = None` creates a root-level
    /// group; several roots are allowed (they share like siblings).
    pub fn add_group(&mut self, parent: Option<NodeId>, share: u64) -> NodeId {
        self.add_node(parent, share, None)
    }

    /// Add a leaf (a schedulable entity tagged with caller data, e.g. a
    /// pid). Aggregates along the root path update in O(depth).
    pub fn add_leaf(&mut self, parent: Option<NodeId>, share: u64, tag: u64) -> NodeId {
        self.add_node(parent, share, Some(tag))
    }

    fn add_node(&mut self, parent: Option<NodeId>, share: u64, leaf_tag: Option<u64>) -> NodeId {
        assert!(share > 0, "share must be positive");
        if let Some(p) = parent {
            let pn = &self.nodes[p.0 as usize];
            assert!(
                pn.leaf_tag.is_none() && !pn.removed,
                "cannot attach children to a leaf"
            );
        }
        let id = NodeId(self.nodes.len() as u32);
        let pos_in_parent = match parent {
            Some(p) => self.nodes[p.0 as usize].children.len() as u32,
            None => 0,
        };
        self.nodes.push(Node {
            parent,
            share,
            children: Vec::new(),
            pos_in_parent,
            leaf_tag,
            removed: false,
            live_leaves: u64::from(leaf_tag.is_some()),
            active_share: 0,
            children_changed: 0,
            abs_frac: 0.0,
            abs_stamp: 0,
        });
        if let Some(p) = parent {
            self.nodes[p.0 as usize].children.push(id);
        }
        if leaf_tag.is_some() {
            self.propagate_liveness(parent, id, true);
        }
        id
    }

    /// Walk the root path above the leaf whose liveness just flipped,
    /// updating leaf counts everywhere and active-share sums exactly as
    /// far as the flip cascades (an ancestor whose subtree stays live
    /// absorbs it; above that, only the count changes).
    fn propagate_liveness(&mut self, start: Option<NodeId>, leaf: NodeId, added: bool) {
        self.epoch += 1;
        let epoch = self.epoch;
        // The node whose subtree just became (in)active, if the flip is
        // still cascading at the current level.
        let mut flipped = Some(leaf);
        let mut cur = start;
        while let Some(p) = cur {
            if let Some(c) = flipped {
                let child_share = self.nodes[c.0 as usize].share;
                let pn = &mut self.nodes[p.0 as usize];
                pn.children_changed = epoch;
                if added {
                    pn.active_share += child_share;
                    flipped = (pn.live_leaves == 0).then_some(p);
                    pn.live_leaves += 1;
                } else {
                    pn.active_share -= child_share;
                    pn.live_leaves -= 1;
                    flipped = (pn.live_leaves == 0).then_some(p);
                }
            } else {
                let pn = &mut self.nodes[p.0 as usize];
                if added {
                    pn.live_leaves += 1;
                } else {
                    pn.live_leaves -= 1;
                }
            }
            cur = self.nodes[p.0 as usize].parent;
        }
        if let Some(c) = flipped {
            let child_share = self.nodes[c.0 as usize].share;
            if added {
                self.root_active_share += child_share;
            } else {
                self.root_active_share -= child_share;
            }
            self.root_changed = epoch;
        }
    }

    /// Change a node's share. Returns `false` (and changes nothing) if the
    /// id refers to a removed leaf or is not from this tree; O(1) —
    /// fractions under the node's parent are re-derived lazily on the next
    /// [`ShareTree::entitlement`] query through them.
    pub fn set_share(&mut self, id: NodeId, share: u64) -> bool {
        assert!(share > 0, "share must be positive");
        let Some(n) = self.nodes.get(id.0 as usize) else {
            return false;
        };
        if n.removed {
            return false;
        }
        let old = n.share;
        let active = n.leaf_tag.is_some() || n.live_leaves > 0;
        let parent = n.parent;
        self.nodes[id.0 as usize].share = share;
        if old == share || !active {
            // An inactive subtree contributes to no denominator; its new
            // share is picked up by the activation propagation when a
            // leaf next appears beneath it.
            return true;
        }
        self.epoch += 1;
        match parent {
            Some(p) => {
                let pn = &mut self.nodes[p.0 as usize];
                pn.active_share = pn.active_share - old + share;
                pn.children_changed = self.epoch;
            }
            None => {
                self.root_active_share = self.root_active_share - old + share;
                self.root_changed = self.epoch;
            }
        }
        true
    }

    /// Remove a leaf (e.g. its process exited), redistributing its weight
    /// among its siblings. Returns `false` (and changes nothing) if the id
    /// is a group, an already-removed leaf, or not from this tree.
    /// O(depth): the leaf detaches from its parent in O(1) and the
    /// aggregates along the root path adjust incrementally.
    pub fn remove_leaf(&mut self, id: NodeId) -> bool {
        let Some(n) = self.nodes.get(id.0 as usize) else {
            return false;
        };
        if n.leaf_tag.is_none() {
            return false; // a group, or already removed
        }
        let parent = n.parent;
        let pos = n.pos_in_parent as usize;
        // Liveness flips while the leaf still counts, then tombstone.
        self.propagate_liveness(parent, id, false);
        let node = &mut self.nodes[id.0 as usize];
        node.leaf_tag = None;
        node.removed = true;
        node.live_leaves = 0;
        if let Some(p) = parent {
            let pn = &mut self.nodes[p.0 as usize];
            pn.children.swap_remove(pos);
            if let Some(&moved) = pn.children.get(pos) {
                self.nodes[moved.0 as usize].pos_in_parent = pos as u32;
            }
        }
        true
    }

    /// Number of live leaves.
    pub fn leaf_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.leaf_tag.is_some()).count()
    }

    /// The tree's mutation epoch: changes exactly when some entitlement
    /// may have changed. A binding layer that recorded the epoch at its
    /// last refresh can skip whole refreshes while it is unchanged.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// This leaf's entitlement: the fraction of the machine its path
    /// prescribes (product of `share / active sibling total` along the
    /// root path). `None` unless `id` is a live leaf.
    ///
    /// O(depth), and cache-hot when nothing on the path changed: each
    /// node's absolute fraction is cached with an epoch stamp and is
    /// recomputed only when an ancestor's `children_changed` mark (or a
    /// re-stamped ancestor cache) outruns it — mutations in disjoint
    /// subtrees never invalidate it.
    pub fn entitlement(&mut self, id: NodeId) -> Option<f64> {
        let n = self.nodes.get(id.0 as usize)?;
        n.leaf_tag?;
        let mut path = std::mem::take(&mut self.scratch);
        path.clear();
        let mut cur = id;
        loop {
            path.push(cur.0);
            match self.nodes[cur.0 as usize].parent {
                Some(p) => cur = p,
                None => break,
            }
        }
        // Resolve top-down. `required` is the epoch a node's cache must
        // have seen to be trusted: everything that could change its value
        // — an ancestor's child-set/share change, or an ancestor cache
        // re-stamp — raises it. Stamping recomputed nodes with exactly
        // `required` (not the global epoch) keeps stamps minimal, so a
        // recompute here never spuriously invalidates deeper caches.
        let mut parent_abs = 1.0f64;
        let mut parent_active = self.root_active_share;
        let mut required = self.root_changed;
        for &i in path.iter().rev() {
            let node = &self.nodes[i as usize];
            let abs = if node.abs_stamp >= required && node.abs_stamp > 0 {
                node.abs_frac
            } else {
                let f = parent_abs * (node.share as f64 / parent_active.max(1) as f64);
                let node = &mut self.nodes[i as usize];
                node.abs_frac = f;
                node.abs_stamp = required.max(1);
                f
            };
            let node = &self.nodes[i as usize];
            required = node.abs_stamp.max(node.children_changed);
            parent_abs = abs;
            parent_active = node.active_share;
        }
        self.scratch = path;
        Some(parent_abs)
    }

    /// The from-scratch counterpart of [`ShareTree::entitlement`]: walks
    /// the whole path recomputing every active sibling total by subtree
    /// search, using no maintained aggregate and no cache, with the same
    /// arithmetic in the same order. The conformance suite drives it in
    /// lockstep with the incremental query — the two must agree bit for
    /// bit.
    pub fn entitlement_naive(&self, id: NodeId) -> Option<f64> {
        let n = self.nodes.get(id.0 as usize)?;
        n.leaf_tag?;
        let mut path = Vec::new();
        let mut cur = id;
        loop {
            path.push(cur.0);
            match self.nodes[cur.0 as usize].parent {
                Some(p) => cur = p,
                None => break,
            }
        }
        let mut abs = 1.0f64;
        for &i in path.iter().rev() {
            let node = &self.nodes[i as usize];
            let sibling_total: u64 = match node.parent {
                Some(p) => self.nodes[p.0 as usize]
                    .children
                    .iter()
                    .filter(|&&c| self.subtree_has_leaves(c))
                    .map(|&c| self.nodes[c.0 as usize].share)
                    .sum(),
                None => self
                    .roots()
                    .filter(|&r| self.subtree_has_leaves(r))
                    .map(|r| self.nodes[r.0 as usize].share)
                    .sum(),
            };
            abs *= node.share as f64 / sibling_total.max(1) as f64;
        }
        Some(abs)
    }

    /// Flatten the hierarchy into integer per-leaf shares whose ratios
    /// equal the product of share fractions along each leaf's path.
    ///
    /// Empty groups (no live leaves beneath) are excluded before fractions
    /// are computed, so their weight redistributes among their siblings.
    /// This is the from-scratch O(tree·depth) derivation — the oracle the
    /// live incremental aggregates are property-tested against, and still
    /// the right call for one-shot static setups.
    ///
    /// Returns `(tag, share)` pairs; shares are scaled to the smallest
    /// integers preserving the exact ratios.
    pub fn flatten(&self) -> Vec<(u64, u64)> {
        // Compute, per leaf, the rational weight num/den as u128 to avoid
        // overflow, then bring to a common denominator and reduce.
        let mut weights: Vec<(u64, u128, u128)> = Vec::new(); // (tag, num, den)
        for (i, node) in self.nodes.iter().enumerate() {
            let Some(tag) = node.leaf_tag else { continue };
            let mut num: u128 = 1;
            let mut den: u128 = 1;
            let mut cur = NodeId(i as u32);
            loop {
                let n = &self.nodes[cur.0 as usize];
                let sibling_total: u64 = match n.parent {
                    Some(p) => self.nodes[p.0 as usize]
                        .children
                        .iter()
                        .filter(|&&c| self.subtree_has_leaves(c))
                        .map(|&c| self.nodes[c.0 as usize].share)
                        .sum(),
                    None => self
                        .roots()
                        .filter(|&r| self.subtree_has_leaves(r))
                        .map(|r| self.nodes[r.0 as usize].share)
                        .sum(),
                };
                num *= n.share as u128;
                den *= sibling_total.max(1) as u128;
                match n.parent {
                    Some(p) => cur = p,
                    None => break,
                }
            }
            weights.push((tag, num, den));
        }
        if weights.is_empty() {
            return Vec::new();
        }
        // Common denominator via product-free approach: share_i ∝ num_i *
        // (lcm / den_i). Compute lcm of denominators.
        let lcm = weights.iter().fold(1u128, |acc, &(_, _, d)| {
            acc / gcd(acc as u64, d as u64) as u128 * d
        });
        let mut shares: Vec<(u64, u64)> = weights
            .iter()
            .map(|&(tag, n, d)| (tag, (n * (lcm / d)) as u64))
            .collect();
        let g = shares.iter().fold(0u64, |acc, &(_, s)| gcd(acc, s));
        if g > 1 {
            for (_, s) in shares.iter_mut() {
                *s /= g;
            }
        }
        shares
    }

    fn roots(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.parent.is_none())
            .map(|(i, _)| NodeId(i as u32))
    }

    fn subtree_has_leaves(&self, id: NodeId) -> bool {
        let n = &self.nodes[id.0 as usize];
        if n.leaf_tag.is_some() {
            return true;
        }
        n.children.iter().any(|&c| self.subtree_has_leaves(c))
    }

    /// Brute-force verification that every maintained aggregate equals a
    /// from-scratch recount (test support).
    #[cfg(test)]
    fn assert_aggregates_consistent(&self) {
        fn count_leaves(t: &ShareTree, id: NodeId) -> u64 {
            let n = &t.nodes[id.0 as usize];
            u64::from(n.leaf_tag.is_some())
                + n.children.iter().map(|&c| count_leaves(t, c)).sum::<u64>()
        }
        for (i, node) in self.nodes.iter().enumerate() {
            let id = NodeId(i as u32);
            assert_eq!(
                node.live_leaves,
                count_leaves(self, id),
                "node {i}: live_leaves disagrees with a recount"
            );
            let active: u64 = node
                .children
                .iter()
                .filter(|&&c| self.subtree_has_leaves(c))
                .map(|&c| self.nodes[c.0 as usize].share)
                .sum();
            assert_eq!(
                node.active_share, active,
                "node {i}: active_share disagrees with a recount"
            );
            for (pos, &c) in node.children.iter().enumerate() {
                assert_eq!(
                    self.nodes[c.0 as usize].pos_in_parent as usize, pos,
                    "child {c:?} of node {i} has a stale pos_in_parent"
                );
            }
        }
        let root_active: u64 = self
            .roots()
            .filter(|&r| self.subtree_has_leaves(r))
            .map(|r| self.nodes[r.0 as usize].share)
            .sum();
        assert_eq!(
            self.root_active_share, root_active,
            "root_active_share disagrees with a recount"
        );
    }
}

/// Default [`TreeShares`] scale: entitlement fractions are quantized to
/// integer shares out of roughly this total, giving ~one-in-a-million
/// resolution — fine enough that a 10⁶-member tree still distinguishes its
/// smallest leaves.
pub const DEFAULT_TREE_SCALE: u64 = 1 << 20;

/// One scheduler handle bound to a tree leaf.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct BoundLeaf {
    generation: u32,
    node: NodeId,
    /// Tree epoch at the last refresh; while the tree's epoch still equals
    /// it, the binding is in sync by construction and the refresh is O(1).
    synced_epoch: u64,
    /// Integer share last derived for this leaf.
    share: u64,
}

/// The binding layer between a live [`ShareTree`] and the flat integer
/// shares an [`AlpsScheduler`](crate::AlpsScheduler) consumes.
///
/// Each scheduled principal ([`ProcId`]) is bound to one tree leaf; its
/// integer share is its entitlement fraction times [`TreeShares::scale`],
/// rounded (and floored at 1). [`TreeShares::refresh`] re-derives a
/// binding lazily: an O(1) epoch comparison when the tree is unchanged, an
/// O(depth) cache-hot entitlement query otherwise, reporting a new share
/// only when the quantized value actually moved. The engine calls it for
/// *due* members only, so tree churn costs the control path nothing until
/// a member comes up for measurement anyway.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TreeShares {
    tree: ShareTree,
    scale: u64,
    /// Bindings indexed by [`ProcId::index`], generation-checked.
    bound: Vec<Option<BoundLeaf>>,
}

impl Default for TreeShares {
    fn default() -> Self {
        TreeShares::new(DEFAULT_TREE_SCALE)
    }
}

impl TreeShares {
    /// An empty binding over an empty tree.
    pub fn new(scale: u64) -> Self {
        assert!(scale > 0, "scale must be positive");
        TreeShares {
            tree: ShareTree::new(),
            scale,
            bound: Vec::new(),
        }
    }

    /// The share total entitlement fractions are quantized against.
    pub fn scale(&self) -> u64 {
        self.scale
    }

    /// The underlying tree (e.g. to grow groups with
    /// [`ShareTree::add_group`] or inspect it).
    pub fn tree(&self) -> &ShareTree {
        &self.tree
    }

    /// Mutable access to the underlying tree. Any mutation advances the
    /// tree's epoch, so bindings pick it up at their next refresh.
    pub fn tree_mut(&mut self) -> &mut ShareTree {
        &mut self.tree
    }

    /// Quantize an entitlement fraction to an integer share.
    fn quantize(&self, frac: f64) -> u64 {
        ((frac * self.scale as f64).round() as u64).max(1)
    }

    /// Add a leaf under `parent` and bind it to `id`, returning the
    /// integer share the principal must be registered with.
    pub fn bind(&mut self, id: ProcId, parent: Option<NodeId>, weight: u64) -> u64 {
        let node = self.tree.add_leaf(parent, weight, id.index() as u64);
        let frac = self.tree.entitlement(node).expect("leaf was just added");
        let share = self.quantize(frac);
        let idx = id.index();
        if self.bound.len() <= idx {
            self.bound.resize(idx + 1, None);
        }
        self.bound[idx] = Some(BoundLeaf {
            generation: id.generation(),
            node,
            synced_epoch: self.tree.epoch(),
            share,
        });
        share
    }

    /// The leaf bound to `id`, if the handle is current.
    pub fn node_of(&self, id: ProcId) -> Option<NodeId> {
        match self.bound.get(id.index()) {
            Some(Some(b)) if b.generation == id.generation() => Some(b.node),
            _ => None,
        }
    }

    /// Drop `id`'s binding and remove its leaf from the tree (its weight
    /// redistributes among the siblings). Returns the removed leaf.
    pub fn unbind(&mut self, id: ProcId) -> Option<NodeId> {
        let node = self.node_of(id)?;
        self.bound[id.index()] = None;
        self.tree.remove_leaf(node);
        Some(node)
    }

    /// Re-derive `id`'s integer share from the tree. Returns the new share
    /// only if it changed since the last bind/refresh; `None` for unbound
    /// or stale handles and for bindings already in sync.
    pub fn refresh(&mut self, id: ProcId) -> Option<u64> {
        let epoch = self.tree.epoch();
        let b = match self.bound.get(id.index()) {
            Some(Some(b)) if b.generation == id.generation() => *b,
            _ => return None,
        };
        if b.synced_epoch == epoch {
            return None;
        }
        let frac = self.tree.entitlement(b.node)?;
        let share = self.quantize(frac);
        let slot = self.bound[id.index()].as_mut().expect("checked above");
        slot.synced_epoch = epoch;
        if share == b.share {
            return None;
        }
        slot.share = share;
        Some(share)
    }

    /// The integer share a from-scratch walk derives for `id` right now:
    /// [`ShareTree::entitlement_naive`] quantized exactly like the cached
    /// path. Differential harnesses hold this against
    /// [`TreeShares::refresh`] under churn to gate the incremental cache.
    pub fn share_naive(&self, id: ProcId) -> Option<u64> {
        let node = self.node_of(id)?;
        Some(self.quantize(self.tree.entitlement_naive(node)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn as_map(v: Vec<(u64, u64)>) -> BTreeMap<u64, u64> {
        v.into_iter().collect()
    }

    #[test]
    fn flat_tree_passes_shares_through() {
        let mut t = ShareTree::new();
        t.add_leaf(None, 1, 10);
        t.add_leaf(None, 2, 20);
        t.add_leaf(None, 3, 30);
        let m = as_map(t.flatten());
        assert_eq!(m[&10], 1);
        assert_eq!(m[&20], 2);
        assert_eq!(m[&30], 3);
        t.assert_aggregates_consistent();
    }

    #[test]
    fn two_departments_with_unequal_users() {
        // Departments split 1:1; A has 2 equal users, B has 4.
        // Each A-user gets 1/4 of the machine, each B-user 1/8.
        let mut t = ShareTree::new();
        let a = t.add_group(None, 1);
        let b = t.add_group(None, 1);
        for u in 0..2 {
            t.add_leaf(Some(a), 1, u);
        }
        for u in 0..4 {
            t.add_leaf(Some(b), 1, 10 + u);
        }
        let m = as_map(t.flatten());
        assert_eq!(m[&0], 2, "{m:?}");
        assert_eq!(m[&1], 2);
        for u in 10..14 {
            assert_eq!(m[&u], 1);
        }
        t.assert_aggregates_consistent();
    }

    #[test]
    fn weighted_three_level_tree() {
        // root groups 2:1; inside the 2-group, leaves 3:1; inside the
        // 1-group, a single leaf.
        // Fractions: 2/3*3/4 = 1/2; 2/3*1/4 = 1/6; 1/3 = 2/6.
        let mut t = ShareTree::new();
        let g = t.add_group(None, 2);
        let h = t.add_group(None, 1);
        let l1 = t.add_leaf(Some(g), 3, 1);
        let l2 = t.add_leaf(Some(g), 1, 2);
        let l3 = t.add_leaf(Some(h), 5, 3); // share value inside a singleton group is moot
        let m = as_map(t.flatten());
        // Ratios 1/2 : 1/6 : 1/3 = 3 : 1 : 2.
        assert_eq!(m[&1], 3, "{m:?}");
        assert_eq!(m[&2], 1);
        assert_eq!(m[&3], 2);
        assert!((t.entitlement(l1).unwrap() - 0.5).abs() < 1e-12);
        assert!((t.entitlement(l2).unwrap() - 1.0 / 6.0).abs() < 1e-12);
        assert!((t.entitlement(l3).unwrap() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_group_weight_redistributes() {
        let mut t = ShareTree::new();
        let a = t.add_group(None, 1);
        let b = t.add_group(None, 1);
        let leaf_a = t.add_leaf(Some(a), 1, 1);
        t.add_leaf(Some(b), 1, 2);
        t.add_leaf(Some(b), 1, 3);
        // Both groups populated: A-leaf gets 1/2; B leaves 1/4 each.
        let m = as_map(t.flatten());
        assert_eq!((m[&1], m[&2], m[&3]), (2, 1, 1));
        // A's only leaf leaves: B's subtree now owns everything.
        assert!(t.remove_leaf(leaf_a));
        let m = as_map(t.flatten());
        assert_eq!(m.len(), 2);
        assert_eq!((m[&2], m[&3]), (1, 1));
        t.assert_aggregates_consistent();
    }

    #[test]
    fn empty_tree_flattens_to_nothing() {
        let t = ShareTree::new();
        assert!(t.flatten().is_empty());
        assert_eq!(t.leaf_count(), 0);
    }

    #[test]
    #[should_panic(expected = "cannot attach children to a leaf")]
    fn leaves_cannot_have_children() {
        let mut t = ShareTree::new();
        let l = t.add_leaf(None, 1, 1);
        t.add_group(Some(l), 1);
    }

    #[test]
    fn set_share_changes_ratios() {
        let mut t = ShareTree::new();
        let a = t.add_leaf(None, 1, 1);
        t.add_leaf(None, 1, 2);
        assert!(t.set_share(a, 9));
        let m = as_map(t.flatten());
        assert_eq!((m[&1], m[&2]), (9, 1));
        t.assert_aggregates_consistent();
    }

    #[test]
    fn stale_ids_are_rejected_not_followed() {
        let mut t = ShareTree::new();
        let g = t.add_group(None, 1);
        let a = t.add_leaf(Some(g), 1, 1);
        let b = t.add_leaf(Some(g), 1, 2);
        assert!(t.remove_leaf(a));
        // Second removal and share updates on the tombstone: rejected.
        assert!(!t.remove_leaf(a));
        assert!(!t.set_share(a, 5));
        assert_eq!(t.entitlement(a), None);
        // Groups are not removable; out-of-tree ids are rejected.
        assert!(!t.remove_leaf(g));
        assert!(!t.set_share(NodeId(999), 5));
        // The survivor is untouched.
        assert!((t.entitlement(b).unwrap() - 1.0).abs() < 1e-12);
        assert_eq!(as_map(t.flatten())[&2], 1);
        t.assert_aggregates_consistent();
    }

    #[test]
    fn entitlement_is_cached_and_tracks_mutations() {
        let mut t = ShareTree::new();
        let a = t.add_group(None, 1);
        let b = t.add_group(None, 1);
        let la = t.add_leaf(Some(a), 1, 1);
        let lb1 = t.add_leaf(Some(b), 1, 2);
        let lb2 = t.add_leaf(Some(b), 3, 3);
        for _ in 0..3 {
            // Repeated queries (cache-hot after the first) stay stable.
            assert!((t.entitlement(la).unwrap() - 0.5).abs() < 1e-12);
            assert!((t.entitlement(lb1).unwrap() - 0.125).abs() < 1e-12);
            assert!((t.entitlement(lb2).unwrap() - 0.375).abs() < 1e-12);
        }
        let before = t.epoch();
        assert!(t.set_share(lb1, 3));
        assert!(t.epoch() > before, "mutations must advance the epoch");
        assert!((t.entitlement(la).unwrap() - 0.5).abs() < 1e-12);
        assert!((t.entitlement(lb1).unwrap() - 0.25).abs() < 1e-12);
        assert!((t.entitlement(lb2).unwrap() - 0.25).abs() < 1e-12);
        // Cached and naive paths agree exactly, including after churn.
        for leaf in [la, lb1, lb2] {
            assert_eq!(t.entitlement_naive(leaf), t.entitlement(leaf));
        }
        t.assert_aggregates_consistent();
    }

    #[test]
    fn tree_shares_bind_refresh_unbind() {
        let mut ts = TreeShares::new(1 << 20);
        let dept = ts.tree_mut().add_group(None, 1);
        let a = ProcId::from_raw(0, 1);
        let b = ProcId::from_raw(1, 1);
        let c = ProcId::from_raw(2, 1);
        // Bind-time shares reflect the tree as it stands at each bind.
        let sa = ts.bind(a, Some(dept), 1);
        assert_eq!(sa, 1 << 20, "a is alone: whole machine");
        let sb = ts.bind(b, Some(dept), 1);
        assert_eq!(sb, 1 << 19, "a:b = 1:1");
        let sc = ts.bind(c, None, 2);
        assert_eq!(sc, (2 * (1u64 << 20)) / 3 + 1, "dept:c = 1:2, rounded");
        // A binding made at the current epoch is in sync: O(1) no-op.
        assert_eq!(ts.refresh(c), None);
        // a's stored share predates b and c; refresh re-derives 1/6.
        let ra = ts.refresh(a).expect("a's fraction shrank");
        assert!(ra < sb);
        let node_a = ts.node_of(a).unwrap();
        assert!(ts.tree_mut().set_share(node_a, 3));
        let ra2 = ts.refresh(a).expect("a:b now 3:1");
        assert_eq!(ra2, 1 << 18, "3/4 of a third of the machine");
        // Stale generation: rejected.
        assert_eq!(ts.refresh(ProcId::from_raw(0, 7)), None);
        // Unbind removes the leaf; the survivor owns its whole group.
        assert_eq!(ts.unbind(a), Some(node_a));
        assert_eq!(ts.unbind(a), None);
        let rb = ts.refresh(b).expect("b inherits the department");
        assert_eq!(
            rb,
            ((1u64 << 20) + 1) / 3,
            "a third of the machine, rounded"
        );
        assert_eq!(ts.refresh(b), None, "second refresh is in sync");
    }

    #[test]
    fn deep_chain_liveness_flips_propagate() {
        // A 6-deep chain of singleton groups over one leaf, next to a flat
        // leaf: the chain's leaf arrival/departure must activate and
        // deactivate the whole chain.
        let mut t = ShareTree::new();
        let flat = t.add_leaf(None, 1, 1);
        let mut g = t.add_group(None, 3);
        let top = g;
        for _ in 0..5 {
            g = t.add_group(Some(g), 7);
        }
        t.assert_aggregates_consistent();
        assert!(
            (t.entitlement(flat).unwrap() - 1.0).abs() < 1e-12,
            "empty chain is inactive"
        );
        let deep = t.add_leaf(Some(g), 2, 9);
        t.assert_aggregates_consistent();
        assert!((t.entitlement(flat).unwrap() - 0.25).abs() < 1e-12);
        assert!((t.entitlement(deep).unwrap() - 0.75).abs() < 1e-12);
        assert!(t.set_share(top, 1));
        assert!((t.entitlement(deep).unwrap() - 0.5).abs() < 1e-12);
        assert!(t.remove_leaf(deep));
        t.assert_aggregates_consistent();
        assert!((t.entitlement(flat).unwrap() - 1.0).abs() < 1e-12);
    }
}
