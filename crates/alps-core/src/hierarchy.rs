//! Hierarchical share trees (the §6 related-work direction).
//!
//! The paper's related work cites hierarchical CPU schedulers (Goyal et
//! al.) and composable scheduler frameworks (HLS). ALPS itself schedules a
//! flat set of shares — but a *static* hierarchy ("users get equal shares;
//! within a user, apps get weighted shares; within an app, processes…")
//! flattens exactly: each leaf's entitlement is the product of its
//! ancestors' share fractions. [`ShareTree`] performs that flattening into
//! the integer shares an [`AlpsScheduler`](crate::AlpsScheduler) consumes,
//! rescaling to keep the numbers small.
//!
//! What flattening does *not* capture is hierarchical redistribution: when
//! a leaf blocks, a true hierarchical scheduler gives its time to siblings
//! *within the subtree* first, while flat ALPS redistributes across the
//! whole tree (§2.4). Re-flattening after membership changes (see
//! [`ShareTree::flatten`]'s docs) recovers the static part of that
//! behavior; the in-cycle part is approximated. This is a documented
//! extension, not part of the paper.

use serde::{Deserialize, Serialize};

/// Node identifier within a [`ShareTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(u32);

/// Greatest common divisor.
fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Node {
    parent: Option<NodeId>,
    share: u64,
    children: Vec<NodeId>,
    /// Leaf payload: an opaque tag the caller maps to a pid or principal.
    leaf_tag: Option<u64>,
}

/// A tree of weighted groups with tagged leaves.
///
/// ```
/// use alps_core::ShareTree;
///
/// // Departments 2:1; engineering has two equal users, research one.
/// let mut tree = ShareTree::new();
/// let eng = tree.add_group(None, 2);
/// let res = tree.add_group(None, 1);
/// tree.add_leaf(Some(eng), 1, 10);
/// tree.add_leaf(Some(eng), 1, 11);
/// tree.add_leaf(Some(res), 1, 20);
/// // Fractions 1/3, 1/3, 1/3 — flattened to equal integer shares.
/// let mut flat = tree.flatten();
/// flat.sort();
/// assert_eq!(flat, vec![(10, 1), (11, 1), (20, 1)]);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ShareTree {
    nodes: Vec<Node>,
}

impl ShareTree {
    /// An empty tree.
    pub fn new() -> Self {
        ShareTree::default()
    }

    /// Add a group (interior node). `parent = None` creates a root-level
    /// group; several roots are allowed (they share like siblings).
    pub fn add_group(&mut self, parent: Option<NodeId>, share: u64) -> NodeId {
        self.add_node(parent, share, None)
    }

    /// Add a leaf (a schedulable entity tagged with caller data, e.g. a
    /// pid).
    pub fn add_leaf(&mut self, parent: Option<NodeId>, share: u64, tag: u64) -> NodeId {
        self.add_node(parent, share, Some(tag))
    }

    fn add_node(&mut self, parent: Option<NodeId>, share: u64, leaf_tag: Option<u64>) -> NodeId {
        assert!(share > 0, "share must be positive");
        if let Some(p) = parent {
            assert!(
                self.nodes[p.0 as usize].leaf_tag.is_none(),
                "cannot attach children to a leaf"
            );
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            parent,
            share,
            children: Vec::new(),
            leaf_tag,
        });
        if let Some(p) = parent {
            self.nodes[p.0 as usize].children.push(id);
        }
        id
    }

    /// Change a node's share.
    pub fn set_share(&mut self, id: NodeId, share: u64) {
        assert!(share > 0, "share must be positive");
        self.nodes[id.0 as usize].share = share;
    }

    /// Remove a leaf (e.g. its process exited). Its share stops counting
    /// against its siblings at the next flatten.
    pub fn remove_leaf(&mut self, id: NodeId) {
        assert!(
            self.nodes[id.0 as usize].leaf_tag.is_some(),
            "remove_leaf on a group"
        );
        let parent = self.nodes[id.0 as usize].parent;
        if let Some(p) = parent {
            self.nodes[p.0 as usize].children.retain(|&c| c != id);
        }
        self.nodes[id.0 as usize].leaf_tag = None; // tombstone
    }

    /// Number of live leaves.
    pub fn leaf_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.leaf_tag.is_some()).count()
    }

    /// Flatten the hierarchy into integer per-leaf shares whose ratios
    /// equal the product of share fractions along each leaf's path.
    ///
    /// Empty groups (no live leaves beneath) are excluded before fractions
    /// are computed, so their weight redistributes among their siblings —
    /// re-flatten whenever membership changes to keep this current.
    ///
    /// Returns `(tag, share)` pairs; shares are scaled to the smallest
    /// integers preserving the exact ratios.
    pub fn flatten(&self) -> Vec<(u64, u64)> {
        // Compute, per leaf, the rational weight num/den as u128 to avoid
        // overflow, then bring to a common denominator and reduce.
        let mut weights: Vec<(u64, u128, u128)> = Vec::new(); // (tag, num, den)
        for (i, node) in self.nodes.iter().enumerate() {
            let Some(tag) = node.leaf_tag else { continue };
            let mut num: u128 = 1;
            let mut den: u128 = 1;
            let mut cur = NodeId(i as u32);
            loop {
                let n = &self.nodes[cur.0 as usize];
                let sibling_total: u64 = match n.parent {
                    Some(p) => self.nodes[p.0 as usize]
                        .children
                        .iter()
                        .filter(|&&c| self.subtree_has_leaves(c))
                        .map(|&c| self.nodes[c.0 as usize].share)
                        .sum(),
                    None => self
                        .roots()
                        .filter(|&r| self.subtree_has_leaves(r))
                        .map(|r| self.nodes[r.0 as usize].share)
                        .sum(),
                };
                num *= n.share as u128;
                den *= sibling_total.max(1) as u128;
                match n.parent {
                    Some(p) => cur = p,
                    None => break,
                }
            }
            weights.push((tag, num, den));
        }
        if weights.is_empty() {
            return Vec::new();
        }
        // Common denominator via product-free approach: share_i ∝ num_i *
        // (lcm / den_i). Compute lcm of denominators.
        let lcm = weights.iter().fold(1u128, |acc, &(_, _, d)| {
            acc / gcd(acc as u64, d as u64) as u128 * d
        });
        let mut shares: Vec<(u64, u64)> = weights
            .iter()
            .map(|&(tag, n, d)| (tag, (n * (lcm / d)) as u64))
            .collect();
        let g = shares.iter().fold(0u64, |acc, &(_, s)| gcd(acc, s));
        if g > 1 {
            for (_, s) in shares.iter_mut() {
                *s /= g;
            }
        }
        shares
    }

    fn roots(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.parent.is_none())
            .map(|(i, _)| NodeId(i as u32))
    }

    fn subtree_has_leaves(&self, id: NodeId) -> bool {
        let n = &self.nodes[id.0 as usize];
        if n.leaf_tag.is_some() {
            return true;
        }
        n.children.iter().any(|&c| self.subtree_has_leaves(c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn as_map(v: Vec<(u64, u64)>) -> BTreeMap<u64, u64> {
        v.into_iter().collect()
    }

    #[test]
    fn flat_tree_passes_shares_through() {
        let mut t = ShareTree::new();
        t.add_leaf(None, 1, 10);
        t.add_leaf(None, 2, 20);
        t.add_leaf(None, 3, 30);
        let m = as_map(t.flatten());
        assert_eq!(m[&10], 1);
        assert_eq!(m[&20], 2);
        assert_eq!(m[&30], 3);
    }

    #[test]
    fn two_departments_with_unequal_users() {
        // Departments split 1:1; A has 2 equal users, B has 4.
        // Each A-user gets 1/4 of the machine, each B-user 1/8.
        let mut t = ShareTree::new();
        let a = t.add_group(None, 1);
        let b = t.add_group(None, 1);
        for u in 0..2 {
            t.add_leaf(Some(a), 1, u);
        }
        for u in 0..4 {
            t.add_leaf(Some(b), 1, 10 + u);
        }
        let m = as_map(t.flatten());
        assert_eq!(m[&0], 2, "{m:?}");
        assert_eq!(m[&1], 2);
        for u in 10..14 {
            assert_eq!(m[&u], 1);
        }
    }

    #[test]
    fn weighted_three_level_tree() {
        // root groups 2:1; inside the 2-group, leaves 3:1; inside the
        // 1-group, a single leaf.
        // Fractions: 2/3*3/4 = 1/2; 2/3*1/4 = 1/6; 1/3 = 2/6.
        let mut t = ShareTree::new();
        let g = t.add_group(None, 2);
        let h = t.add_group(None, 1);
        t.add_leaf(Some(g), 3, 1);
        t.add_leaf(Some(g), 1, 2);
        t.add_leaf(Some(h), 5, 3); // share value inside a singleton group is moot
        let m = as_map(t.flatten());
        // Ratios 1/2 : 1/6 : 1/3 = 3 : 1 : 2.
        assert_eq!(m[&1], 3, "{m:?}");
        assert_eq!(m[&2], 1);
        assert_eq!(m[&3], 2);
    }

    #[test]
    fn empty_group_weight_redistributes() {
        let mut t = ShareTree::new();
        let a = t.add_group(None, 1);
        let b = t.add_group(None, 1);
        let leaf_a = t.add_leaf(Some(a), 1, 1);
        t.add_leaf(Some(b), 1, 2);
        t.add_leaf(Some(b), 1, 3);
        // Both groups populated: A-leaf gets 1/2; B leaves 1/4 each.
        let m = as_map(t.flatten());
        assert_eq!((m[&1], m[&2], m[&3]), (2, 1, 1));
        // A's only leaf leaves: B's subtree now owns everything.
        t.remove_leaf(leaf_a);
        let m = as_map(t.flatten());
        assert_eq!(m.len(), 2);
        assert_eq!((m[&2], m[&3]), (1, 1));
    }

    #[test]
    fn empty_tree_flattens_to_nothing() {
        let t = ShareTree::new();
        assert!(t.flatten().is_empty());
        assert_eq!(t.leaf_count(), 0);
    }

    #[test]
    #[should_panic(expected = "cannot attach children to a leaf")]
    fn leaves_cannot_have_children() {
        let mut t = ShareTree::new();
        let l = t.add_leaf(None, 1, 1);
        t.add_group(Some(l), 1);
    }

    #[test]
    fn set_share_changes_ratios() {
        let mut t = ShareTree::new();
        let a = t.add_leaf(None, 1, 1);
        t.add_leaf(None, 1, 2);
        t.set_share(a, 9);
        let m = as_map(t.flatten());
        assert_eq!((m[&1], m[&2]), (9, 1));
    }
}
