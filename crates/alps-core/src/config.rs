//! Configuration for an ALPS scheduler instance.

use std::num::NonZeroUsize;

use serde::{Deserialize, Serialize};

use crate::time::Nanos;

/// How ALPS accounts for a process it observes to be blocked (§2.4).
///
/// At user level ALPS cannot see block/wake events; it only notices, at a
/// measurement point, that a process currently sits on a wait channel. The
/// paper charges such a process exactly one quantum of its allowance (and
/// shortens the remaining cycle by one quantum), reasoning that the process
/// "gave up" its right to run for that period. Alternative policies are
/// provided for the ablation study (`repro io-policy`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum IoPolicy {
    /// The paper's policy: deduct one quantum from the allowance of a
    /// blocked process each time it is observed blocked, and shorten the
    /// cycle by one quantum.
    #[default]
    OneQuantumPenalty,
    /// Never penalize blocked processes. A process that blocks for a long
    /// time stalls the cycle: other processes exhaust their allowances and
    /// everyone waits for the sleeper to consume its share.
    NoPenalty,
    /// Forfeit the *entire remaining allowance* of a process the first time
    /// it is observed blocked in a cycle. More aggressive than the paper:
    /// reacts faster but over-penalizes processes that block briefly.
    ForfeitAllowance,
}

/// How [`crate::AlpsScheduler`] finds the processes due for measurement at
/// the start of a quantum.
///
/// The §2.3 lazy-measurement optimization already bounds how many processes
/// are *read* per quantum, but the seed implementation still walked every
/// occupied slot to discover which ones those are — an O(N) control path
/// regardless of how few were due. The deadline wheel indexes the `update`
/// invocation count each slot already carries, so the due set is *popped*
/// instead of scanned and the whole per-quantum path costs
/// O(due + transitions). Both implementations are lockstep-identical (see
/// `crates/alps-core/tests/due_index_lockstep.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum DueIndex {
    /// Bucketed deadline wheel keyed on the invocation count: `due()` pops
    /// only the slots whose lazy deadline arrived. Ignored (falls back to
    /// the scan) when [`AlpsConfig::lazy_measurement`] is off, since the
    /// eager baseline measures every eligible process every quantum anyway.
    #[default]
    Wheel,
    /// The reference implementation: scan every occupied slot each
    /// quantum. Retained for lockstep testing and the `due_index`
    /// dimension of `bench-scalability`.
    Scan,
}

/// How [`crate::AlpsScheduler`] lays out its per-process slot storage.
///
/// Purely a representation choice: both layouts hold identical slot
/// contents behind identical generation-checked [`crate::ProcId`] handles,
/// and the conformance suites drive them in lockstep. The difference is
/// allocation behavior at scale: the contiguous layout doubles-and-copies
/// as the population grows (a 10⁶-member registration storm pays for
/// every intermediate copy), while the chunked arena allocates fixed-size
/// chunks and never moves a slot once placed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum MemberStore {
    /// Chunked slab arena: fixed 4096-slot chunks, O(1) worst-case
    /// registration, slots never move. The default.
    #[default]
    Chunked,
    /// The seed layout: one contiguous growable vector. Retained for
    /// lockstep testing and the `member_store` dimension of
    /// `bench-scalability`.
    Contiguous,
}

/// Configuration of one ALPS scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AlpsConfig {
    /// The ALPS quantum `Q`: the period between scheduler invocations and
    /// the unit in which allowances are denominated. The paper evaluates
    /// 10–40 ms for synthetic workloads and 100 ms for the web server.
    pub quantum: Nanos,
    /// Enable the lazy-measurement optimization of §2.3: a process whose
    /// allowance is `a` quanta is not re-measured for `⌈a⌉` invocations.
    /// Disabling this yields the unoptimized baseline used in the §3.2
    /// ablation (every eligible process measured every quantum).
    pub lazy_measurement: bool,
    /// Blocked-process accounting policy (§2.4).
    pub io_policy: IoPolicy,
    /// How the due set is discovered each quantum (wheel vs reference
    /// scan). Only affects cost, never behavior: the two are
    /// lockstep-identical.
    pub due_index: DueIndex,
    /// Record a per-cycle consumption log (the instrumentation the paper
    /// used for its accuracy evaluation, §3.1). Costs one `Vec` push per
    /// process per cycle.
    pub record_cycles: bool,
    /// Number of CPUs on the machine whose consumption ALPS governs
    /// (default 1 — the paper's uniprocessor). The algorithm itself is
    /// CPU-count-agnostic — it observes merged cumulative CPU totals and
    /// maintains a single global allowance pool — so this knob only
    /// annotates the run (reports, cycle capacity reasoning); no
    /// arithmetic branches on it.
    pub cpus: NonZeroUsize,
    /// Slot-storage layout (chunked arena vs the seed contiguous vector).
    /// Only affects allocation cost, never behavior: the two are
    /// lockstep-identical. Defaults when absent from serialized configs
    /// (pre-arena checkpoints).
    #[serde(default)]
    pub member_store: MemberStore,
}

impl AlpsConfig {
    /// Configuration with the paper's defaults for a given quantum.
    pub fn new(quantum: Nanos) -> Self {
        AlpsConfig {
            quantum,
            lazy_measurement: true,
            io_policy: IoPolicy::OneQuantumPenalty,
            due_index: DueIndex::Wheel,
            record_cycles: false,
            cpus: NonZeroUsize::MIN,
            member_store: MemberStore::Chunked,
        }
    }

    /// Builder-style choice of quantum.
    pub fn with_quantum(mut self, quantum: Nanos) -> Self {
        self.quantum = quantum;
        self
    }

    /// Builder-style switch for the §2.3 optimization.
    pub fn with_lazy_measurement(mut self, on: bool) -> Self {
        self.lazy_measurement = on;
        self
    }

    /// Builder-style choice of blocked-process policy.
    pub fn with_io_policy(mut self, policy: IoPolicy) -> Self {
        self.io_policy = policy;
        self
    }

    /// Builder-style choice of due-set index.
    pub fn with_due_index(mut self, index: DueIndex) -> Self {
        self.due_index = index;
        self
    }

    /// Builder-style switch for per-cycle logging.
    pub fn with_cycle_log(mut self, on: bool) -> Self {
        self.record_cycles = on;
        self
    }

    /// Builder-style choice of machine CPU count.
    pub fn with_cpus(mut self, cpus: NonZeroUsize) -> Self {
        self.cpus = cpus;
        self
    }

    /// Builder-style choice of slot-storage layout.
    pub fn with_member_store(mut self, store: MemberStore) -> Self {
        self.member_store = store;
        self
    }
}

impl Default for AlpsConfig {
    /// 10 ms quantum, optimization on — the paper's base configuration.
    fn default() -> Self {
        AlpsConfig::new(Nanos::from_millis(10))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let cfg = AlpsConfig::default();
        assert_eq!(cfg.quantum, Nanos::from_millis(10));
        assert!(cfg.lazy_measurement);
        assert_eq!(cfg.io_policy, IoPolicy::OneQuantumPenalty);
        assert_eq!(cfg.due_index, DueIndex::Wheel);
        assert!(!cfg.record_cycles);
        assert_eq!(cfg.cpus.get(), 1, "the paper's machine is uniprocessor");
        assert_eq!(cfg.member_store, MemberStore::Chunked);
    }

    #[test]
    fn builders() {
        let cfg = AlpsConfig::default()
            .with_quantum(Nanos::from_millis(40))
            .with_lazy_measurement(false)
            .with_io_policy(IoPolicy::NoPenalty)
            .with_due_index(DueIndex::Scan)
            .with_cycle_log(true)
            .with_cpus(NonZeroUsize::new(4).unwrap())
            .with_member_store(MemberStore::Contiguous);
        assert_eq!(cfg.quantum, Nanos::from_millis(40));
        assert!(!cfg.lazy_measurement);
        assert_eq!(cfg.io_policy, IoPolicy::NoPenalty);
        assert_eq!(cfg.due_index, DueIndex::Scan);
        assert!(cfg.record_cycles);
        assert_eq!(cfg.cpus.get(), 4);
        assert_eq!(cfg.member_store, MemberStore::Contiguous);
    }
}
