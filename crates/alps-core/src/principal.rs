//! Resource principals: scheduling *groups* of processes as one entity (§5).
//!
//! The paper's shared-web-server experiment decouples the resource principal
//! from the process abstraction: the scheduled entity is a *user*, and CPU
//! consumption by any of that user's processes counts against the user's
//! allocation. [`PrincipalScheduler`] implements that layer on top of
//! [`AlpsScheduler`]: each principal is one logical
//! process in the inner scheduler, its consumption is the sum of its
//! members' consumption, and eligibility transitions fan out to signals for
//! every member.
//!
//! Membership is refreshed by the backend (the paper re-scanned the process
//! table once per second with `kvm_getprocs`); see
//! [`PrincipalScheduler::set_membership`].

use std::collections::{BTreeMap, HashMap};

use crate::config::AlpsConfig;
use crate::cycle::CycleRecord;
use crate::sched::{AlpsScheduler, Observation, ProcId, Transition};
use crate::time::Nanos;

/// A signal the backend must deliver to one member process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemberTransition<M> {
    /// Make the member runnable (`SIGCONT`).
    Resume(M),
    /// Suspend the member (`SIGSTOP`).
    Suspend(M),
}

impl<M: Copy> MemberTransition<M> {
    /// The member this signal addresses.
    pub fn member(self) -> M {
        match self {
            MemberTransition::Resume(m) | MemberTransition::Suspend(m) => m,
        }
    }
}

/// Result of a membership refresh: what the backend must do to reconcile
/// the new member set with the principal's current eligibility.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MembershipChange<M> {
    /// Members that joined. If the principal is currently ineligible they
    /// must be suspended immediately (`signals` already reflects this).
    pub added: Vec<M>,
    /// Members that left (exited or changed owner). Backends typically need
    /// no action — but if the principal was ineligible, a departing process
    /// that still exists should be resumed so it is not left frozen.
    pub removed: Vec<M>,
    /// Signals to enact to make member states match principal eligibility.
    pub signals: Vec<MemberTransition<M>>,
}

/// Outcome of one principal-scheduler invocation.
#[derive(Debug, Clone, Default)]
pub struct PrincipalOutcome<M> {
    /// Signals to enact, covering every member of every principal whose
    /// eligibility flipped.
    pub signals: Vec<MemberTransition<M>>,
    /// The principal-level transitions behind `signals` (one per principal
    /// whose eligibility flipped, before the fan-out to members).
    pub transitions: Vec<Transition>,
    /// Whether a cycle boundary was crossed.
    pub cycle_completed: bool,
    /// Per-cycle record (principal-granularity), if logging is enabled.
    pub cycle_record: Option<CycleRecord>,
}

#[derive(Debug, Clone)]
struct Principal<M> {
    /// Aggregate cumulative CPU across current and past members. Member
    /// churn does not disturb this: each member's consumption is folded in
    /// as deltas from its own last reading.
    cumulative: Nanos,
    /// Member → cumulative CPU at that member's last reading.
    members: BTreeMap<M, Nanos>,
}

/// Proportional-share scheduling over groups of processes.
///
/// Type parameter `M` is the backend's member identifier (a `pid_t` on
/// Linux, a simulator pid in `kernsim`).
///
/// ```
/// use alps_core::{AlpsConfig, Nanos, PrincipalScheduler};
///
/// // Two users with a 1:2 share split; the first owns pids 100 and 101.
/// let mut sched: PrincipalScheduler<i32> =
///     PrincipalScheduler::new(AlpsConfig::new(Nanos::from_millis(100)));
/// let alice = sched.add_principal(1);
/// let bob = sched.add_principal(2);
/// sched.set_membership(alice, &[(100, Nanos::ZERO), (101, Nanos::ZERO)]);
/// sched.set_membership(bob, &[(200, Nanos::ZERO)]);
/// // First quantum: both principals become eligible; every member of
/// // each flipped principal gets a signal.
/// sched.begin_quantum();
/// let out = sched.complete_quantum(&[], Nanos::ZERO);
/// assert_eq!(out.signals.len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct PrincipalScheduler<M: Ord + Copy> {
    inner: AlpsScheduler,
    principals: HashMap<ProcId, Principal<M>>,
}

impl<M: Ord + Copy> PrincipalScheduler<M> {
    /// Create an empty principal scheduler.
    pub fn new(cfg: AlpsConfig) -> Self {
        PrincipalScheduler {
            inner: AlpsScheduler::new(cfg),
            principals: HashMap::new(),
        }
    }

    /// Access the inner per-principal ALPS scheduler (read-only).
    pub fn inner(&self) -> &AlpsScheduler {
        &self.inner
    }

    /// Register a principal with the given share and no members.
    /// Per §2.2 it starts ineligible and becomes eligible next quantum.
    pub fn add_principal(&mut self, share: u64) -> ProcId {
        let id = self.inner.add_process(share, Nanos::ZERO);
        self.principals.insert(
            id,
            Principal {
                cumulative: Nanos::ZERO,
                members: BTreeMap::new(),
            },
        );
        id
    }

    /// Deregister a principal, returning its members (which the backend
    /// should resume if the principal was ineligible).
    pub fn remove_principal(&mut self, id: ProcId) -> Option<Vec<M>> {
        let p = self.principals.remove(&id)?;
        self.inner.remove_process(id);
        Some(p.members.into_keys().collect())
    }

    /// Number of principals.
    pub fn len(&self) -> usize {
        self.principals.len()
    }

    /// True if there are no principals.
    pub fn is_empty(&self) -> bool {
        self.principals.is_empty()
    }

    /// Total members across all principals.
    pub fn member_count(&self) -> usize {
        self.principals.values().map(|p| p.members.len()).sum()
    }

    /// Whether a principal is currently eligible.
    pub fn is_eligible(&self, id: ProcId) -> Option<bool> {
        self.inner.is_eligible(id)
    }

    /// Change a principal's share (takes effect per §2.2: the remaining
    /// allowance is rescaled in place).
    pub fn set_share(&mut self, id: ProcId, share: u64) -> Result<(), crate::sched::StaleId> {
        self.inner.set_share(id, share)
    }

    /// Members of a principal, in key order.
    pub fn members(&self, id: ProcId) -> Option<Vec<M>> {
        self.principals
            .get(&id)
            .map(|p| p.members.keys().copied().collect())
    }

    /// Replace a principal's member set (the once-per-second refresh of §5).
    ///
    /// `current` carries, for each member, its *current* cumulative CPU
    /// reading: a newly joined member is charged only for consumption from
    /// this point on. The returned [`MembershipChange`] lists joiners and
    /// leavers and the signals needed to reconcile member run states with
    /// the principal's eligibility (new members of a suspended principal
    /// must be stopped; members leaving a suspended principal should be
    /// resumed so they are not orphaned in the stopped state).
    pub fn set_membership(
        &mut self,
        id: ProcId,
        current: &[(M, Nanos)],
    ) -> Option<MembershipChange<M>> {
        let eligible = self.inner.is_eligible(id)?;
        let p = self.principals.get_mut(&id)?;
        let mut new_members = BTreeMap::new();
        let mut added = Vec::new();
        for &(m, cpu) in current {
            match p.members.remove(&m) {
                Some(last) => {
                    new_members.insert(m, last);
                }
                None => {
                    added.push(m);
                    new_members.insert(m, cpu);
                }
            }
        }
        let removed: Vec<M> = p.members.keys().copied().collect();
        p.members = new_members;
        let mut signals = Vec::new();
        if !eligible {
            signals.extend(added.iter().map(|&m| MemberTransition::Suspend(m)));
            signals.extend(removed.iter().map(|&m| MemberTransition::Resume(m)));
        }
        Some(MembershipChange {
            added,
            removed,
            signals,
        })
    }

    /// Begin an invocation: returns, for each principal due for measurement,
    /// the member processes whose CPU time and blocked state must be read.
    pub fn begin_quantum(&mut self) -> Vec<(ProcId, Vec<M>)> {
        let due = self.inner.begin_quantum();
        due.into_iter()
            .map(|id| {
                let members = self
                    .principals
                    .get(&id)
                    .map(|p| p.members.keys().copied().collect())
                    .unwrap_or_default();
                (id, members)
            })
            .collect()
    }

    /// Complete the invocation with per-member readings for each due
    /// principal.
    ///
    /// A principal is considered *blocked* (§2.4) when every member that was
    /// read reports blocked — if any member is runnable, the principal can
    /// make progress. Members missing from the readings (e.g. they exited
    /// between `begin` and `complete`) are skipped without charge.
    pub fn complete_quantum(
        &mut self,
        readings: &[(ProcId, Vec<(M, Observation)>)],
        now: Nanos,
    ) -> PrincipalOutcome<M> {
        let mut observations = Vec::with_capacity(readings.len());
        for (id, members) in readings {
            let Some(p) = self.principals.get_mut(id) else {
                continue;
            };
            let mut all_blocked = !members.is_empty();
            for &(m, obs) in members {
                if let Some(last) = p.members.get_mut(&m) {
                    let delta = obs.total_cpu.saturating_sub(*last);
                    *last = obs.total_cpu;
                    p.cumulative += delta;
                }
                if !obs.blocked {
                    all_blocked = false;
                }
            }
            observations.push((
                *id,
                Observation {
                    total_cpu: p.cumulative,
                    blocked: all_blocked,
                },
            ));
        }
        let out = self.inner.complete_quantum(&observations, now);
        let mut signals = Vec::new();
        for t in &out.transitions {
            let id = t.proc_id();
            if let Some(p) = self.principals.get(&id) {
                for &m in p.members.keys() {
                    signals.push(match t {
                        Transition::Resume(_) => MemberTransition::Resume(m),
                        Transition::Suspend(_) => MemberTransition::Suspend(m),
                    });
                }
            }
        }
        PrincipalOutcome {
            signals,
            transitions: out.transitions,
            cycle_completed: out.cycle_completed,
            cycle_record: out.cycle_record,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type Pid = u64;

    fn obs(ms: u64, blocked: bool) -> Observation {
        Observation {
            total_cpu: Nanos::from_millis(ms),
            blocked,
        }
    }

    fn sched() -> PrincipalScheduler<Pid> {
        PrincipalScheduler::new(AlpsConfig::new(Nanos::from_millis(10)))
    }

    #[test]
    fn principal_becomes_eligible_resuming_all_members() {
        let mut s = sched();
        let u = s.add_principal(1);
        s.set_membership(u, &[(100, Nanos::ZERO), (101, Nanos::ZERO)]);
        let due = s.begin_quantum();
        assert!(due.is_empty());
        let out = s.complete_quantum(&[], Nanos::ZERO);
        let mut resumed: Vec<Pid> = out
            .signals
            .iter()
            .map(|t| {
                assert!(matches!(t, MemberTransition::Resume(_)));
                t.member()
            })
            .collect();
        resumed.sort_unstable();
        assert_eq!(resumed, vec![100, 101]);
    }

    #[test]
    fn member_consumption_aggregates() {
        let mut s = sched();
        let u = s.add_principal(2);
        let v = s.add_principal(2);
        s.set_membership(u, &[(1, Nanos::ZERO), (2, Nanos::ZERO)]);
        s.set_membership(v, &[(3, Nanos::ZERO)]);
        s.complete_quantum(&[], Nanos::ZERO); // both eligible (count=1)
        s.begin_quantum(); // count=2, none due (ceil(2)=2 → due at 3)
        s.complete_quantum(&[], Nanos::ZERO);
        let due = s.begin_quantum(); // count=3: both due
        assert_eq!(due.len(), 2);
        // u's two members consumed 8 and 7 ms; v's one member 5 ms.
        let readings = vec![
            (u, vec![(1, obs(8, false)), (2, obs(7, false))]),
            (v, vec![(3, obs(5, false))]),
        ];
        s.complete_quantum(&readings, Nanos::from_millis(30));
        // u: 15ms = 1.5 quanta consumed of allowance 2 → 0.5 left.
        assert!((s.inner().allowance(u).unwrap() - 0.5).abs() < 1e-9);
        assert!((s.inner().allowance(v).unwrap() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn membership_churn_does_not_lose_or_invent_cpu() {
        let mut s = sched();
        let u = s.add_principal(4);
        s.set_membership(u, &[(1, Nanos::ZERO)]);
        s.complete_quantum(&[], Nanos::ZERO); // eligible
                                              // Member 1 exits after consuming 10ms; member 2 joins having already
                                              // consumed 500ms under some other ownership.
        for _ in 0..3 {
            s.begin_quantum();
            s.complete_quantum(&[], Nanos::ZERO);
        }
        let due = s.begin_quantum(); // count=5: due (ceil(4)=4 after count=1)
        assert_eq!(due.len(), 1);
        s.complete_quantum(&[(u, vec![(1, obs(10, false))])], Nanos::ZERO);
        let change = s
            .set_membership(u, &[(2, Nanos::from_millis(500))])
            .unwrap();
        assert_eq!(change.added, vec![2]);
        assert_eq!(change.removed, vec![1]);
        assert!(change.signals.is_empty(), "principal is eligible");
        // Member 2 consumes 5ms more (cumulative 505).
        for _ in 0..2 {
            s.begin_quantum();
            s.complete_quantum(&[], Nanos::ZERO);
        }
        let due = s.begin_quantum();
        assert_eq!(due.len(), 1, "due again after ceil(3)=3 quanta");
        s.complete_quantum(&[(u, vec![(2, obs(505, false))])], Nanos::ZERO);
        // Total charged: 10ms + 5ms = 1.5 quanta; allowance 4 - 1.5 = 2.5.
        assert!((s.inner().allowance(u).unwrap() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn joining_a_suspended_principal_means_suspension() {
        let mut s = sched();
        let u = s.add_principal(1);
        let _v = s.add_principal(9);
        s.set_membership(u, &[(1, Nanos::ZERO)]);
        s.complete_quantum(&[], Nanos::ZERO); // eligible, count=1, due at 2
        let due = s.begin_quantum();
        assert_eq!(due.len(), 1, "only u due (v due at ceil(9)+1)");
        // u overconsumes: suspended.
        let out = s.complete_quantum(&[(u, vec![(1, obs(10, false))])], Nanos::ZERO);
        assert_eq!(out.signals, vec![MemberTransition::Suspend(1)]);
        // A new worker is forked into the suspended principal.
        let change = s
            .set_membership(u, &[(1, Nanos::from_millis(10)), (7, Nanos::ZERO)])
            .unwrap();
        assert_eq!(change.signals, vec![MemberTransition::Suspend(7)]);
        // And one leaves while suspended: it must be resumed.
        let change = s.set_membership(u, &[(7, Nanos::ZERO)]).unwrap();
        assert_eq!(change.signals, vec![MemberTransition::Resume(1)]);
    }

    #[test]
    fn principal_blocked_only_when_all_members_blocked() {
        let mut s = sched();
        let u = s.add_principal(2);
        s.set_membership(u, &[(1, Nanos::ZERO), (2, Nanos::ZERO)]);
        s.complete_quantum(&[], Nanos::ZERO);
        s.begin_quantum();
        s.complete_quantum(&[], Nanos::ZERO);
        s.begin_quantum(); // due
                           // One member runnable → principal not blocked → no penalty.
        s.complete_quantum(
            &[(u, vec![(1, obs(0, true)), (2, obs(0, false))])],
            Nanos::ZERO,
        );
        assert!((s.inner().allowance(u).unwrap() - 2.0).abs() < 1e-9);
        // Both blocked → one-quantum penalty.
        s.begin_quantum();
        s.complete_quantum(
            &[(u, vec![(1, obs(0, true)), (2, obs(0, true))])],
            Nanos::ZERO,
        );
        assert!((s.inner().allowance(u).unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn remove_principal_returns_members() {
        let mut s = sched();
        let u = s.add_principal(1);
        s.set_membership(u, &[(5, Nanos::ZERO), (6, Nanos::ZERO)]);
        let members = s.remove_principal(u).unwrap();
        assert_eq!(members, vec![5, 6]);
        assert!(s.is_empty());
        assert!(s.remove_principal(u).is_none());
    }

    #[test]
    fn empty_principal_is_never_blocked() {
        // A principal with no members reports an empty reading; it must not
        // receive the blocked penalty.
        let mut s = sched();
        let u = s.add_principal(1);
        s.complete_quantum(&[], Nanos::ZERO); // eligible
        s.begin_quantum();
        s.complete_quantum(&[(u, vec![])], Nanos::ZERO);
        assert!((s.inner().allowance(u).unwrap() - 1.0).abs() < 1e-9);
    }
}
