//! Resource principals: scheduling *groups* of processes as one entity (§5).
//!
//! The paper's shared-web-server experiment decouples the resource principal
//! from the process abstraction: the scheduled entity is a *user*, and CPU
//! consumption by any of that user's processes counts against the user's
//! allocation. [`PrincipalScheduler`] implements that layer on top of
//! [`AlpsScheduler`]: each principal is one logical
//! process in the inner scheduler, its consumption is the sum of its
//! members' consumption, and eligibility transitions fan out to signals for
//! every member.
//!
//! Membership is refreshed by the backend (the paper re-scanned the process
//! table once per second with `kvm_getprocs`); see
//! [`PrincipalScheduler::set_membership`].

use std::collections::BTreeMap;

use crate::arena::ChunkedVec;
use crate::config::AlpsConfig;
use crate::cycle::CycleRecord;
use crate::sched::{AlpsScheduler, Observation, ProcId, QuantumOutcome, Transition};
use crate::time::Nanos;

/// A signal the backend must deliver to one member process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemberTransition<M> {
    /// Make the member runnable (`SIGCONT`).
    Resume(M),
    /// Suspend the member (`SIGSTOP`).
    Suspend(M),
}

impl<M: Copy> MemberTransition<M> {
    /// The member this signal addresses.
    pub fn member(self) -> M {
        match self {
            MemberTransition::Resume(m) | MemberTransition::Suspend(m) => m,
        }
    }
}

/// Result of a membership refresh: what the backend must do to reconcile
/// the new member set with the principal's current eligibility.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MembershipChange<M> {
    /// Members that joined. If the principal is currently ineligible they
    /// must be suspended immediately (`signals` already reflects this).
    pub added: Vec<M>,
    /// Members that left (exited or changed owner). Backends typically need
    /// no action — but if the principal was ineligible, a departing process
    /// that still exists should be resumed so it is not left frozen.
    pub removed: Vec<M>,
    /// Signals to enact to make member states match principal eligibility.
    pub signals: Vec<MemberTransition<M>>,
}

/// Outcome of one principal-scheduler invocation.
#[derive(Debug, Clone)]
pub struct PrincipalOutcome<M> {
    /// Signals to enact, covering every member of every principal whose
    /// eligibility flipped.
    pub signals: Vec<MemberTransition<M>>,
    /// The principal-level transitions behind `signals` (one per principal
    /// whose eligibility flipped, before the fan-out to members).
    pub transitions: Vec<Transition>,
    /// Whether a cycle boundary was crossed.
    pub cycle_completed: bool,
    /// Per-cycle record (principal-granularity), if logging is enabled.
    pub cycle_record: Option<CycleRecord>,
}

impl<M> Default for PrincipalOutcome<M> {
    fn default() -> Self {
        PrincipalOutcome {
            signals: Vec::new(),
            transitions: Vec::new(),
            cycle_completed: false,
            cycle_record: None,
        }
    }
}

/// Reusable due-list buffer filled by
/// [`PrincipalScheduler::begin_quantum_into`]: the principals due for
/// measurement this quantum, each with its member set, flattened into two
/// backing vectors so steady-state refills allocate nothing.
#[derive(Debug, Clone)]
pub struct DueList<M> {
    /// `(principal, start, len)` — the member slice of each due principal
    /// within `members`.
    entries: Vec<(ProcId, u32, u32)>,
    /// All members to read this quantum, in due order. A readings slice
    /// handed to [`PrincipalScheduler::complete_quantum_into`] must run
    /// parallel to this.
    members: Vec<M>,
}

impl<M> Default for DueList<M> {
    fn default() -> Self {
        DueList {
            entries: Vec::new(),
            members: Vec::new(),
        }
    }
}

impl<M> DueList<M> {
    /// An empty due list (buffers grow on first use, then get reused).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of due principals.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no principal is due.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Every member to read this quantum, in due order.
    pub fn members(&self) -> &[M] {
        &self.members
    }

    /// Iterate over `(principal, members)` pairs in due order.
    pub fn iter(&self) -> impl Iterator<Item = (ProcId, &[M])> + '_ {
        self.entries
            .iter()
            .map(|&(id, start, len)| (id, &self.members[start as usize..(start + len) as usize]))
    }

    fn clear(&mut self) {
        self.entries.clear();
        self.members.clear();
    }
}

#[derive(Debug, Clone)]
struct Principal<M> {
    /// Aggregate cumulative CPU across current and past members. Member
    /// churn does not disturb this: each member's consumption is folded in
    /// as deltas from its own last reading.
    cumulative: Nanos,
    /// Member → cumulative CPU at that member's last reading.
    members: BTreeMap<M, Nanos>,
}

/// Proportional-share scheduling over groups of processes.
///
/// Type parameter `M` is the backend's member identifier (a `pid_t` on
/// Linux, a simulator pid in `kernsim`).
///
/// ```
/// use alps_core::{AlpsConfig, Nanos, PrincipalScheduler};
///
/// // Two users with a 1:2 share split; the first owns pids 100 and 101.
/// let mut sched: PrincipalScheduler<i32> =
///     PrincipalScheduler::new(AlpsConfig::new(Nanos::from_millis(100)));
/// let alice = sched.add_principal(1);
/// let bob = sched.add_principal(2);
/// sched.set_membership(alice, &[(100, Nanos::ZERO), (101, Nanos::ZERO)]);
/// sched.set_membership(bob, &[(200, Nanos::ZERO)]);
/// // First quantum: both principals become eligible; every member of
/// // each flipped principal gets a signal.
/// sched.begin_quantum();
/// let out = sched.complete_quantum(&[], Nanos::ZERO);
/// assert_eq!(out.signals.len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct PrincipalScheduler<M: Ord + Copy> {
    inner: AlpsScheduler,
    /// Dense principal table indexed by [`ProcId::index`], each entry
    /// generation-checked against the handle on access (a stale id from a
    /// reused slot misses instead of addressing the new tenant). Stored on
    /// the same chunked arena layout as the inner scheduler's slots, so
    /// the per-quantum lookups are O(1) without hashing and registration
    /// never moves existing principals.
    principals: ChunkedVec<Option<(u32, Principal<M>)>>,
    /// Live principal count (occupied entries in `principals`).
    live: usize,
    /// Scratch: due principal ids, refilled each `begin_quantum_into`.
    due_ids: Vec<ProcId>,
    /// Scratch: per-principal observations fed to the inner scheduler.
    obs_scratch: Vec<(ProcId, Observation)>,
    /// Scratch: the inner scheduler's outcome buffers.
    inner_out: QuantumOutcome,
}

impl<M: Ord + Copy> PrincipalScheduler<M> {
    /// Create an empty principal scheduler.
    pub fn new(cfg: AlpsConfig) -> Self {
        PrincipalScheduler {
            principals: ChunkedVec::for_store(cfg.member_store),
            inner: AlpsScheduler::new(cfg),
            live: 0,
            due_ids: Vec::new(),
            obs_scratch: Vec::new(),
            inner_out: QuantumOutcome::default(),
        }
    }

    /// The principal for a handle, if the handle is current.
    #[inline]
    fn principal(&self, id: ProcId) -> Option<&Principal<M>> {
        match self.principals.get(id.index()) {
            Some(Some((generation, p))) if *generation == id.generation() => Some(p),
            _ => None,
        }
    }

    /// Mutable [`Self::principal`].
    #[inline]
    fn principal_mut(&mut self, id: ProcId) -> Option<&mut Principal<M>> {
        match self.principals.get_mut(id.index()) {
            Some(Some((generation, p))) if *generation == id.generation() => Some(p),
            _ => None,
        }
    }

    /// Access the inner per-principal ALPS scheduler (read-only).
    pub fn inner(&self) -> &AlpsScheduler {
        &self.inner
    }

    /// Register a principal with the given share and no members.
    /// Per §2.2 it starts ineligible and becomes eligible next quantum.
    pub fn add_principal(&mut self, share: u64) -> ProcId {
        let id = self.inner.add_process(share, Nanos::ZERO);
        let idx = id.index();
        while self.principals.len() <= idx {
            self.principals.push(None);
        }
        self.principals[idx] = Some((
            id.generation(),
            Principal {
                cumulative: Nanos::ZERO,
                members: BTreeMap::new(),
            },
        ));
        self.live += 1;
        id
    }

    /// Deregister a principal, returning its members (which the backend
    /// should resume if the principal was ineligible).
    pub fn remove_principal(&mut self, id: ProcId) -> Option<Vec<M>> {
        let entry = self.principals.get_mut(id.index())?;
        match entry {
            Some((generation, _)) if *generation == id.generation() => {}
            _ => return None,
        }
        let (_, p) = entry.take().expect("entry matched above");
        self.inner.remove_process(id);
        self.live -= 1;
        Some(p.members.into_keys().collect())
    }

    /// Number of principals.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if there are no principals.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total members across all principals.
    pub fn member_count(&self) -> usize {
        self.principals
            .iter()
            .flatten()
            .map(|(_, p)| p.members.len())
            .sum()
    }

    /// Whether a principal is currently eligible.
    pub fn is_eligible(&self, id: ProcId) -> Option<bool> {
        self.inner.is_eligible(id)
    }

    /// Change a principal's share (takes effect per §2.2: the remaining
    /// allowance is rescaled in place).
    pub fn set_share(&mut self, id: ProcId, share: u64) -> Result<(), crate::sched::StaleId> {
        self.inner.set_share(id, share)
    }

    /// Members of a principal, in key order.
    pub fn members(&self, id: ProcId) -> Option<Vec<M>> {
        self.principal(id)
            .map(|p| p.members.keys().copied().collect())
    }

    /// Replace a principal's member set (the once-per-second refresh of §5).
    ///
    /// `current` carries, for each member, its *current* cumulative CPU
    /// reading: a newly joined member is charged only for consumption from
    /// this point on. The returned [`MembershipChange`] lists joiners and
    /// leavers and the signals needed to reconcile member run states with
    /// the principal's eligibility (new members of a suspended principal
    /// must be stopped; members leaving a suspended principal should be
    /// resumed so they are not orphaned in the stopped state).
    pub fn set_membership(
        &mut self,
        id: ProcId,
        current: &[(M, Nanos)],
    ) -> Option<MembershipChange<M>> {
        let eligible = self.inner.is_eligible(id)?;
        let p = self.principal_mut(id)?;
        let mut new_members = BTreeMap::new();
        let mut added = Vec::new();
        for &(m, cpu) in current {
            match p.members.remove(&m) {
                Some(last) => {
                    new_members.insert(m, last);
                }
                None => {
                    added.push(m);
                    new_members.insert(m, cpu);
                }
            }
        }
        let removed: Vec<M> = p.members.keys().copied().collect();
        p.members = new_members;
        let mut signals = Vec::new();
        if !eligible {
            signals.extend(added.iter().map(|&m| MemberTransition::Suspend(m)));
            signals.extend(removed.iter().map(|&m| MemberTransition::Resume(m)));
        }
        Some(MembershipChange {
            added,
            removed,
            signals,
        })
    }

    /// Begin an invocation: returns, for each principal due for measurement,
    /// the member processes whose CPU time and blocked state must be read.
    pub fn begin_quantum(&mut self) -> Vec<(ProcId, Vec<M>)> {
        let due = self.inner.begin_quantum();
        due.into_iter()
            .map(|id| {
                let members = self
                    .principal(id)
                    .map(|p| p.members.keys().copied().collect())
                    .unwrap_or_default();
                (id, members)
            })
            .collect()
    }

    /// Allocation-free [`Self::begin_quantum`]: refills `due` with each due
    /// principal and its members.
    pub fn begin_quantum_into(&mut self, due: &mut DueList<M>) {
        due.clear();
        self.inner.begin_quantum_into(&mut self.due_ids);
        for i in 0..self.due_ids.len() {
            let id = self.due_ids[i];
            let start = due.members.len() as u32;
            if let Some(p) = self.principal(id) {
                due.members.extend(p.members.keys().copied());
            }
            due.entries
                .push((id, start, due.members.len() as u32 - start));
        }
    }

    /// Complete the invocation with per-member readings for each due
    /// principal.
    ///
    /// A principal is considered *blocked* (§2.4) when every member that was
    /// read reports blocked — if any member is runnable, the principal can
    /// make progress. Members missing from the readings (e.g. they exited
    /// between `begin` and `complete`) are skipped without charge.
    pub fn complete_quantum(
        &mut self,
        readings: &[(ProcId, Vec<(M, Observation)>)],
        now: Nanos,
    ) -> PrincipalOutcome<M> {
        let mut due = DueList::default();
        let mut flat = Vec::new();
        for (id, members) in readings {
            let start = due.members.len() as u32;
            for &(m, obs) in members {
                due.members.push(m);
                flat.push(Some(obs));
            }
            due.entries.push((*id, start, members.len() as u32));
        }
        let mut out = PrincipalOutcome::default();
        self.complete_quantum_into(&due, &flat, now, &mut out);
        out
    }

    /// Allocation-free [`Self::complete_quantum`].
    ///
    /// `due` is the list filled by the matching [`Self::begin_quantum_into`]
    /// and `readings` runs parallel to [`DueList::members`] — `None` marks a
    /// member the backend could not read (it exited between the two calls),
    /// which is skipped without charge. The outcome is written into `out`,
    /// whose buffers are cleared and reused; in steady state the whole
    /// invocation performs no heap allocation.
    pub fn complete_quantum_into(
        &mut self,
        due: &DueList<M>,
        readings: &[Option<Observation>],
        now: Nanos,
        out: &mut PrincipalOutcome<M>,
    ) {
        assert_eq!(
            readings.len(),
            due.members.len(),
            "readings must parallel the due list's members"
        );
        out.signals.clear();
        out.transitions.clear();
        out.cycle_completed = false;
        // Hand the caller's previous cycle record to the inner scheduler so
        // its entry buffer gets recycled.
        self.inner_out.cycle_record = out.cycle_record.take();
        self.obs_scratch.clear();
        for &(id, start, len) in &due.entries {
            // Field-level lookup (not the `principal_mut` helper) so the
            // borrow stays on `principals` while `obs_scratch` grows.
            let p = match self.principals.get_mut(id.index()) {
                Some(Some((generation, p))) if *generation == id.generation() => p,
                _ => continue,
            };
            let range = start as usize..(start + len) as usize;
            let mut any_read = false;
            let mut all_blocked = true;
            for (m, reading) in due.members[range.clone()].iter().zip(&readings[range]) {
                let Some(obs) = reading else {
                    continue;
                };
                any_read = true;
                if let Some(last) = p.members.get_mut(m) {
                    let delta = obs.total_cpu.saturating_sub(*last);
                    *last = obs.total_cpu;
                    p.cumulative += delta;
                }
                if !obs.blocked {
                    all_blocked = false;
                }
            }
            self.obs_scratch.push((
                id,
                Observation {
                    total_cpu: p.cumulative,
                    blocked: any_read && all_blocked,
                },
            ));
        }
        self.inner
            .complete_quantum_into(&self.obs_scratch, now, &mut self.inner_out);
        // Move (not copy) the inner buffers out; the cleared ones come back
        // on the next invocation's `clear()`.
        std::mem::swap(&mut out.transitions, &mut self.inner_out.transitions);
        out.cycle_completed = self.inner_out.cycle_completed;
        out.cycle_record = self.inner_out.cycle_record.take();
        for t in &out.transitions {
            let id = t.proc_id();
            if let Some(p) = self.principal(id) {
                for &m in p.members.keys() {
                    out.signals.push(match t {
                        Transition::Resume(_) => MemberTransition::Resume(m),
                        Transition::Suspend(_) => MemberTransition::Suspend(m),
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type Pid = u64;

    fn obs(ms: u64, blocked: bool) -> Observation {
        Observation {
            total_cpu: Nanos::from_millis(ms),
            blocked,
        }
    }

    fn sched() -> PrincipalScheduler<Pid> {
        PrincipalScheduler::new(AlpsConfig::new(Nanos::from_millis(10)))
    }

    #[test]
    fn principal_becomes_eligible_resuming_all_members() {
        let mut s = sched();
        let u = s.add_principal(1);
        s.set_membership(u, &[(100, Nanos::ZERO), (101, Nanos::ZERO)]);
        let due = s.begin_quantum();
        assert!(due.is_empty());
        let out = s.complete_quantum(&[], Nanos::ZERO);
        let mut resumed: Vec<Pid> = out
            .signals
            .iter()
            .map(|t| {
                assert!(matches!(t, MemberTransition::Resume(_)));
                t.member()
            })
            .collect();
        resumed.sort_unstable();
        assert_eq!(resumed, vec![100, 101]);
    }

    #[test]
    fn member_consumption_aggregates() {
        let mut s = sched();
        let u = s.add_principal(2);
        let v = s.add_principal(2);
        s.set_membership(u, &[(1, Nanos::ZERO), (2, Nanos::ZERO)]);
        s.set_membership(v, &[(3, Nanos::ZERO)]);
        s.complete_quantum(&[], Nanos::ZERO); // both eligible (count=1)
        s.begin_quantum(); // count=2, none due (ceil(2)=2 → due at 3)
        s.complete_quantum(&[], Nanos::ZERO);
        let due = s.begin_quantum(); // count=3: both due
        assert_eq!(due.len(), 2);
        // u's two members consumed 8 and 7 ms; v's one member 5 ms.
        let readings = vec![
            (u, vec![(1, obs(8, false)), (2, obs(7, false))]),
            (v, vec![(3, obs(5, false))]),
        ];
        s.complete_quantum(&readings, Nanos::from_millis(30));
        // u: 15ms = 1.5 quanta consumed of allowance 2 → 0.5 left.
        assert!((s.inner().allowance(u).unwrap() - 0.5).abs() < 1e-9);
        assert!((s.inner().allowance(v).unwrap() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn membership_churn_does_not_lose_or_invent_cpu() {
        let mut s = sched();
        let u = s.add_principal(4);
        s.set_membership(u, &[(1, Nanos::ZERO)]);
        s.complete_quantum(&[], Nanos::ZERO); // eligible
                                              // Member 1 exits after consuming 10ms; member 2 joins having already
                                              // consumed 500ms under some other ownership.
        for _ in 0..3 {
            s.begin_quantum();
            s.complete_quantum(&[], Nanos::ZERO);
        }
        let due = s.begin_quantum(); // count=5: due (ceil(4)=4 after count=1)
        assert_eq!(due.len(), 1);
        s.complete_quantum(&[(u, vec![(1, obs(10, false))])], Nanos::ZERO);
        let change = s
            .set_membership(u, &[(2, Nanos::from_millis(500))])
            .unwrap();
        assert_eq!(change.added, vec![2]);
        assert_eq!(change.removed, vec![1]);
        assert!(change.signals.is_empty(), "principal is eligible");
        // Member 2 consumes 5ms more (cumulative 505).
        for _ in 0..2 {
            s.begin_quantum();
            s.complete_quantum(&[], Nanos::ZERO);
        }
        let due = s.begin_quantum();
        assert_eq!(due.len(), 1, "due again after ceil(3)=3 quanta");
        s.complete_quantum(&[(u, vec![(2, obs(505, false))])], Nanos::ZERO);
        // Total charged: 10ms + 5ms = 1.5 quanta; allowance 4 - 1.5 = 2.5.
        assert!((s.inner().allowance(u).unwrap() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn joining_a_suspended_principal_means_suspension() {
        let mut s = sched();
        let u = s.add_principal(1);
        let _v = s.add_principal(9);
        s.set_membership(u, &[(1, Nanos::ZERO)]);
        s.complete_quantum(&[], Nanos::ZERO); // eligible, count=1, due at 2
        let due = s.begin_quantum();
        assert_eq!(due.len(), 1, "only u due (v due at ceil(9)+1)");
        // u overconsumes: suspended.
        let out = s.complete_quantum(&[(u, vec![(1, obs(10, false))])], Nanos::ZERO);
        assert_eq!(out.signals, vec![MemberTransition::Suspend(1)]);
        // A new worker is forked into the suspended principal.
        let change = s
            .set_membership(u, &[(1, Nanos::from_millis(10)), (7, Nanos::ZERO)])
            .unwrap();
        assert_eq!(change.signals, vec![MemberTransition::Suspend(7)]);
        // And one leaves while suspended: it must be resumed.
        let change = s.set_membership(u, &[(7, Nanos::ZERO)]).unwrap();
        assert_eq!(change.signals, vec![MemberTransition::Resume(1)]);
    }

    #[test]
    fn principal_blocked_only_when_all_members_blocked() {
        let mut s = sched();
        let u = s.add_principal(2);
        s.set_membership(u, &[(1, Nanos::ZERO), (2, Nanos::ZERO)]);
        s.complete_quantum(&[], Nanos::ZERO);
        s.begin_quantum();
        s.complete_quantum(&[], Nanos::ZERO);
        s.begin_quantum(); // due
                           // One member runnable → principal not blocked → no penalty.
        s.complete_quantum(
            &[(u, vec![(1, obs(0, true)), (2, obs(0, false))])],
            Nanos::ZERO,
        );
        assert!((s.inner().allowance(u).unwrap() - 2.0).abs() < 1e-9);
        // Both blocked → one-quantum penalty.
        s.begin_quantum();
        s.complete_quantum(
            &[(u, vec![(1, obs(0, true)), (2, obs(0, true))])],
            Nanos::ZERO,
        );
        assert!((s.inner().allowance(u).unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn remove_principal_returns_members() {
        let mut s = sched();
        let u = s.add_principal(1);
        s.set_membership(u, &[(5, Nanos::ZERO), (6, Nanos::ZERO)]);
        let members = s.remove_principal(u).unwrap();
        assert_eq!(members, vec![5, 6]);
        assert!(s.is_empty());
        assert!(s.remove_principal(u).is_none());
    }

    #[test]
    fn empty_principal_is_never_blocked() {
        // A principal with no members reports an empty reading; it must not
        // receive the blocked penalty.
        let mut s = sched();
        let u = s.add_principal(1);
        s.complete_quantum(&[], Nanos::ZERO); // eligible
        s.begin_quantum();
        s.complete_quantum(&[(u, vec![])], Nanos::ZERO);
        assert!((s.inner().allowance(u).unwrap() - 1.0).abs() < 1e-9);
    }
}
