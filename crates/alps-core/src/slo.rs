//! SLO-driven share feedback: close the loop from observed tail latency
//! back to ALPS shares.
//!
//! ALPS apportions CPU *time*; services care about *latency*. The paper's
//! motivating web-hosting scenario (§5) assigns static shares per user,
//! which guarantees a CPU fraction but not a response-time target. The
//! [`SloController`] bridges that gap at the application level, in the
//! same spirit as ALPS itself — no kernel help, just observation and
//! feedback: each control period it compares every tenant's observed p95
//! latency against its SLO target and nudges the tenant's share
//! multiplicatively toward the target.
//!
//! The law is deliberately simple (proportional, multiplicative,
//! clamped):
//!
//! ```text
//! error  = (p95 - target) / target          // >0 ⇒ missing the SLO
//! factor = clamp(1 + gain·error, 1/max_step, max_step)
//! share' = clamp(round(share · factor), min_share, max_share)
//! ```
//!
//! with a *deadband*: errors within `±deadband` produce no change, so the
//! controller is quiet at equilibrium (hysteresis against share
//! oscillation, and — with the controller disabled or converged — the
//! engine's event stream stays byte-identical). A tenant with no samples
//! in the window (starved into silence) is treated as infinitely late and
//! pushed up by the full `max_step`.
//!
//! The controller is pure: it computes [`ShareAdjustment`]s from
//! observations; the caller applies them via
//! [`Engine::adjust_share`](crate::engine::Engine::adjust_share), which
//! counts them and emits [`Event::ShareChanged`](crate::engine::Event)
//! for observability.

use serde::{Deserialize, Serialize};

use crate::sched::ProcId;

/// Per-tenant controller registration: which principal, what target.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloTarget {
    /// The principal whose share the controller may move.
    pub id: ProcId,
    /// The p95 latency target, in milliseconds.
    pub p95_target_ms: f64,
}

/// One share change the controller wants applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShareAdjustment {
    /// The principal to adjust.
    pub id: ProcId,
    /// The new share.
    pub share: u64,
}

/// Tuning knobs for [`SloController`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SloConfig {
    /// Proportional gain on the relative error. Higher converges faster
    /// but overshoots; 0.5 is a sane default for per-second control
    /// periods.
    pub gain: f64,
    /// Relative errors within `±deadband` produce no adjustment
    /// (hysteresis). Must be `>= 0`.
    pub deadband: f64,
    /// Largest multiplicative change per period (`factor` is clamped to
    /// `[1/max_step, max_step]`). Must be `> 1`.
    pub max_step: f64,
    /// Shares never drop below this (a tenant must keep *some* CPU or it
    /// can never generate the samples that would raise it back).
    pub min_share: u64,
    /// Shares never exceed this (bounds one tenant's ability to squeeze
    /// the rest).
    pub max_share: u64,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            gain: 0.5,
            deadband: 0.1,
            max_step: 2.0,
            min_share: 1,
            max_share: 64,
        }
    }
}

/// The proportional SLO controller (see module docs).
#[derive(Debug, Clone)]
pub struct SloController {
    cfg: SloConfig,
    targets: Vec<SloTarget>,
}

impl SloController {
    /// A controller over the given tenants.
    pub fn new(cfg: SloConfig, targets: Vec<SloTarget>) -> Self {
        assert!(cfg.gain > 0.0, "gain must be positive");
        assert!(cfg.deadband >= 0.0, "deadband must be non-negative");
        assert!(cfg.max_step > 1.0, "max_step must exceed 1");
        assert!(cfg.min_share >= 1, "min_share must be at least 1");
        assert!(cfg.max_share >= cfg.min_share, "max_share < min_share");
        SloController { cfg, targets }
    }

    /// The registered targets.
    pub fn targets(&self) -> &[SloTarget] {
        &self.targets
    }

    /// The active configuration.
    pub fn config(&self) -> SloConfig {
        self.cfg
    }

    /// One control period: fold each tenant's observed window p95 (in
    /// milliseconds; `None` = no samples, treated as unboundedly late)
    /// and current share into the adjustments to apply. Observations are
    /// matched to targets by [`ProcId`]; tenants without an observation
    /// entry are left alone. Returns only *actual* changes — an empty
    /// vector means the controller is in its deadband everywhere.
    pub fn control(&self, observed: &[(ProcId, Option<f64>, u64)]) -> Vec<ShareAdjustment> {
        let mut out = Vec::new();
        for t in &self.targets {
            let Some(&(_, p95_ms, share)) = observed.iter().find(|&&(id, _, _)| id == t.id) else {
                continue;
            };
            let factor = match p95_ms {
                // Starved into silence: no completions at all this
                // window. Push up as hard as allowed.
                None => self.cfg.max_step,
                Some(p95) => {
                    let error = (p95 - t.p95_target_ms) / t.p95_target_ms;
                    if error.abs() <= self.cfg.deadband {
                        continue;
                    }
                    (1.0 + self.cfg.gain * error).clamp(1.0 / self.cfg.max_step, self.cfg.max_step)
                }
            };
            let raw = (share as f64 * factor).round() as u64;
            let new = raw.clamp(self.cfg.min_share, self.cfg.max_share);
            if new != share {
                out.push(ShareAdjustment {
                    id: t.id,
                    share: new,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(sched: &mut crate::AlpsScheduler, share: u64) -> ProcId {
        sched.add_process(share, crate::Nanos::ZERO)
    }

    fn two_tenants() -> (ProcId, ProcId, SloController) {
        let mut s =
            crate::AlpsScheduler::new(crate::AlpsConfig::new(crate::Nanos::from_millis(10)));
        let a = id(&mut s, 4);
        let b = id(&mut s, 4);
        let ctl = SloController::new(
            SloConfig::default(),
            vec![
                SloTarget {
                    id: a,
                    p95_target_ms: 100.0,
                },
                SloTarget {
                    id: b,
                    p95_target_ms: 100.0,
                },
            ],
        );
        (a, b, ctl)
    }

    #[test]
    fn within_deadband_is_quiet() {
        let (a, b, ctl) = two_tenants();
        let adj = ctl.control(&[(a, Some(105.0), 4), (b, Some(95.0), 4)]);
        assert!(adj.is_empty(), "±10% deadband, got {adj:?}");
    }

    #[test]
    fn missing_the_slo_raises_the_share() {
        let (a, b, ctl) = two_tenants();
        // 100% over target with gain 0.5: factor 1.5, share 4 -> 6.
        let adj = ctl.control(&[(a, Some(200.0), 4), (b, Some(100.0), 4)]);
        assert_eq!(
            adj,
            vec![ShareAdjustment { id: a, share: 6 }],
            "only the violator moves"
        );
    }

    #[test]
    fn beating_the_slo_lowers_the_share() {
        let (a, _, ctl) = two_tenants();
        // 60% under target: factor 1 - 0.3 = 0.7, share 10 -> 7.
        let adj = ctl.control(&[(a, Some(40.0), 10)]);
        assert_eq!(adj, vec![ShareAdjustment { id: a, share: 7 }]);
    }

    #[test]
    fn step_and_range_clamps_hold() {
        let (a, _, ctl) = two_tenants();
        // Error 100x over: raw factor 1 + 0.5*99 huge, clamped to
        // max_step 2.0; share 40 -> 64 (max_share), not 80.
        let adj = ctl.control(&[(a, Some(10_000.0), 40)]);
        assert_eq!(adj, vec![ShareAdjustment { id: a, share: 64 }]);
        // Far under target at the floor: clamped to min_share.
        let adj = ctl.control(&[(a, Some(0.001), 2)]);
        assert_eq!(adj, vec![ShareAdjustment { id: a, share: 1 }]);
    }

    #[test]
    fn starved_tenant_is_pushed_up_hard() {
        let (a, _, ctl) = two_tenants();
        let adj = ctl.control(&[(a, None, 3)]);
        assert_eq!(adj, vec![ShareAdjustment { id: a, share: 6 }]);
    }

    #[test]
    fn unobserved_tenants_are_left_alone() {
        let (a, _, ctl) = two_tenants();
        let adj = ctl.control(&[(a, Some(100.0), 4)]);
        assert!(adj.is_empty());
    }

    #[test]
    fn no_op_adjustments_are_suppressed() {
        let (a, _, ctl) = two_tenants();
        // Just outside the deadband but rounding lands on the same share.
        let adj = ctl.control(&[(a, Some(112.0), 1)]);
        assert!(adj.is_empty(), "rounded back to 1: {adj:?}");
    }
}
