//! Nanosecond-precision time used throughout the ALPS crates.
//!
//! The paper's operation-cost model (Table 1) is expressed in fractional
//! microseconds (e.g. 0.97 µs per signal), so plain microsecond integers
//! would lose precision that matters when a scheduler invocation performs
//! hundreds of operations. All crates in this workspace therefore account
//! time in integer **nanoseconds**, wrapped in [`Nanos`] for type safety.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A duration or instant measured in integer nanoseconds.
///
/// `Nanos` is used both for durations (CPU time consumed, quantum lengths)
/// and for instants on the simulated clock; the two uses are distinguished
/// by context, exactly as with `u64` timestamps in kernel code.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Nanos(pub u64);

impl Nanos {
    /// Zero duration.
    pub const ZERO: Nanos = Nanos(0);
    /// The largest representable instant; used as an "infinitely far" deadline.
    pub const MAX: Nanos = Nanos(u64::MAX);

    /// One microsecond.
    pub const MICROSECOND: Nanos = Nanos(1_000);
    /// One millisecond.
    pub const MILLISECOND: Nanos = Nanos(1_000_000);
    /// One second.
    pub const SECOND: Nanos = Nanos(1_000_000_000);

    /// Construct from whole nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        Nanos(ns)
    }

    /// Construct from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        Nanos(us * 1_000)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        Nanos(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        Nanos(s * 1_000_000_000)
    }

    /// Construct from fractional microseconds, rounding to the nearest
    /// nanosecond. Used for the paper's Table-1 cost constants.
    #[inline]
    pub fn from_micros_f64(us: f64) -> Self {
        debug_assert!(us >= 0.0, "negative duration");
        Nanos((us * 1_000.0).round() as u64)
    }

    /// Raw nanosecond count.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Value in microseconds as a float (lossless for < 2^52 ns).
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Value in milliseconds as a float.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Value in seconds as a float.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Value in nanoseconds as a float.
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Saturating subtraction: returns zero instead of underflowing.
    #[inline]
    pub fn saturating_sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(rhs.0))
    }

    /// Checked subtraction.
    #[inline]
    pub fn checked_sub(self, rhs: Nanos) -> Option<Nanos> {
        self.0.checked_sub(rhs.0).map(Nanos)
    }

    /// Saturating addition (clamps at `Nanos::MAX`).
    #[inline]
    pub fn saturating_add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_add(rhs.0))
    }

    /// The smaller of two times.
    #[inline]
    pub fn min(self, rhs: Nanos) -> Nanos {
        if self <= rhs {
            self
        } else {
            rhs
        }
    }

    /// The larger of two times.
    #[inline]
    pub fn max(self, rhs: Nanos) -> Nanos {
        if self >= rhs {
            self
        } else {
            rhs
        }
    }

    /// Multiply by a non-negative float, rounding to the nearest nanosecond.
    #[inline]
    pub fn mul_f64(self, k: f64) -> Nanos {
        debug_assert!(k >= 0.0, "negative scale factor");
        Nanos((self.0 as f64 * k).round() as u64)
    }

    /// Round this instant *up* to the next multiple of `step` (used for
    /// aligning timer expiries to clock-tick granularity).
    #[inline]
    pub fn round_up_to(self, step: Nanos) -> Nanos {
        assert!(step.0 > 0, "step must be nonzero");
        let rem = self.0 % step.0;
        if rem == 0 {
            self
        } else {
            Nanos(self.0 + (step.0 - rem))
        }
    }
}

impl Add for Nanos {
    type Output = Nanos;
    #[inline]
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 + rhs.0)
    }
}

impl AddAssign for Nanos {
    #[inline]
    fn add_assign(&mut self, rhs: Nanos) {
        self.0 += rhs.0;
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    #[inline]
    fn sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 - rhs.0)
    }
}

impl SubAssign for Nanos {
    #[inline]
    fn sub_assign(&mut self, rhs: Nanos) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Nanos {
    type Output = Nanos;
    #[inline]
    fn mul(self, rhs: u64) -> Nanos {
        Nanos(self.0 * rhs)
    }
}

impl Div<u64> for Nanos {
    type Output = Nanos;
    #[inline]
    fn div(self, rhs: u64) -> Nanos {
        Nanos(self.0 / rhs)
    }
}

impl Rem for Nanos {
    type Output = Nanos;
    #[inline]
    fn rem(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 % rhs.0)
    }
}

impl Sum for Nanos {
    fn sum<I: Iterator<Item = Nanos>>(iter: I) -> Nanos {
        iter.fold(Nanos::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 && ns.is_multiple_of(1_000_000) {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{ns}ns")
        }
    }
}

impl From<core::time::Duration> for Nanos {
    fn from(d: core::time::Duration) -> Self {
        Nanos(d.as_nanos() as u64)
    }
}

impl From<Nanos> for core::time::Duration {
    fn from(n: Nanos) -> Self {
        core::time::Duration::from_nanos(n.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Nanos::from_micros(1), Nanos(1_000));
        assert_eq!(Nanos::from_millis(1), Nanos(1_000_000));
        assert_eq!(Nanos::from_secs(1), Nanos(1_000_000_000));
        assert_eq!(Nanos::from_micros_f64(9.02), Nanos(9_020));
        assert_eq!(Nanos::from_micros_f64(0.97), Nanos(970));
    }

    #[test]
    fn arithmetic() {
        let a = Nanos::from_micros(10);
        let b = Nanos::from_micros(3);
        assert_eq!(a + b, Nanos::from_micros(13));
        assert_eq!(a - b, Nanos::from_micros(7));
        assert_eq!(a * 3, Nanos::from_micros(30));
        assert_eq!(a / 2, Nanos::from_micros(5));
        assert_eq!(b.saturating_sub(a), Nanos::ZERO);
        assert_eq!(a.saturating_sub(b), Nanos::from_micros(7));
    }

    #[test]
    fn round_up_to_step() {
        let step = Nanos::from_millis(10);
        assert_eq!(
            Nanos::from_millis(10).round_up_to(step),
            Nanos::from_millis(10)
        );
        assert_eq!(
            Nanos::from_millis(11).round_up_to(step),
            Nanos::from_millis(20)
        );
        assert_eq!(Nanos::ZERO.round_up_to(step), Nanos::ZERO);
        assert_eq!(Nanos(1).round_up_to(step), Nanos::from_millis(10));
    }

    #[test]
    fn float_views() {
        let t = Nanos::from_millis(1500);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
        assert!((t.as_millis_f64() - 1500.0).abs() < 1e-9);
        assert!((t.as_micros_f64() - 1_500_000.0).abs() < 1e-6);
    }

    #[test]
    fn display_forms() {
        assert_eq!(format!("{}", Nanos(12)), "12ns");
        assert_eq!(format!("{}", Nanos::from_micros(5)), "5.000us");
        assert_eq!(format!("{}", Nanos::from_millis(7)), "7.000ms");
        assert_eq!(format!("{}", Nanos::from_secs(2)), "2.000s");
    }

    #[test]
    fn duration_round_trip() {
        let d = core::time::Duration::from_millis(42);
        let n: Nanos = d.into();
        assert_eq!(n, Nanos::from_millis(42));
        let back: core::time::Duration = n.into();
        assert_eq!(back, d);
    }

    #[test]
    fn min_max() {
        let a = Nanos(5);
        let b = Nanos(9);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn mul_f64_rounds() {
        assert_eq!(Nanos(1000).mul_f64(0.5), Nanos(500));
        assert_eq!(Nanos(3).mul_f64(0.5), Nanos(2)); // 1.5 rounds to 2
    }

    #[test]
    fn sum_iterator() {
        let total: Nanos = [Nanos(1), Nanos(2), Nanos(3)].into_iter().sum();
        assert_eq!(total, Nanos(6));
    }
}
