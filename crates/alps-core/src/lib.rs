//! # alps-core — the ALPS proportional-share scheduling algorithm
//!
//! A faithful implementation of the scheduling algorithm from *“ALPS: An
//! Application-Level Proportional-Share Scheduler”* (Newhouse & Pasquale,
//! HPDC 2006). ALPS lets an ordinary, unprivileged process apportion CPU
//! time among a group of processes in proportion to per-process *shares*,
//! without kernel modifications: it samples each process's cumulative CPU
//! time at a coarse quantum, tracks a per-process *allowance* over a
//! *cycle* of `S · Q` CPU time (where `S` is the total shares and `Q` the
//! quantum), and suspends processes that have exhausted their allowance
//! until the cycle completes.
//!
//! This crate is the pure algorithm — no syscalls, no clocks. Two backends
//! drive it:
//!
//! * [`kernsim`](https://docs.rs/kernsim) + `alps-sim` — a discrete-event
//!   simulation of a 4.4BSD-style kernel scheduler, used to reproduce the
//!   paper's evaluation deterministically;
//! * `alps-os` — a real Linux backend using `/proc` sampling and
//!   `SIGSTOP`/`SIGCONT`.
//!
//! ## Quick tour
//!
//! ```
//! use alps_core::{AlpsConfig, AlpsScheduler, Nanos, Observation, Transition};
//!
//! // Two processes with a 1:3 share split, 10 ms quantum.
//! let mut alps = AlpsScheduler::new(AlpsConfig::new(Nanos::from_millis(10)));
//! let a = alps.add_process(1, Nanos::ZERO);
//! let b = alps.add_process(3, Nanos::ZERO);
//!
//! // First invocation: nothing to measure yet; both become eligible.
//! assert!(alps.begin_quantum().is_empty());
//! let out = alps.complete_quantum(&[], Nanos::ZERO);
//! assert_eq!(out.transitions, vec![Transition::Resume(a), Transition::Resume(b)]);
//!
//! // Next invocation where `a` is due: report its cumulative CPU time.
//! let due = alps.begin_quantum();
//! let obs: Vec<_> = due
//!     .into_iter()
//!     .map(|id| (id, Observation { total_cpu: Nanos::from_millis(10), blocked: false }))
//!     .collect();
//! let out = alps.complete_quantum(&obs, Nanos::from_millis(10));
//! // `a` consumed its whole 1-share allowance and is suspended.
//! assert_eq!(out.transitions, vec![Transition::Suspend(a)]);
//! ```
//!
//! ## Crate map
//!
//! * [`sched`] — the Figure-3 algorithm ([`AlpsScheduler`]).
//! * [`engine`] — the generic per-quantum control loop every backend
//!   drives, over the [`Substrate`] trait backends implement (read a
//!   process, deliver a signal, tell the time), with an [`EventSink`]
//!   instrumentation stream.
//! * [`principal`] — §5's resource principals: schedule groups of processes
//!   (e.g. all processes of one user) as single entities.
//! * [`hierarchy`] — share *trees* (users → apps → processes), flattened
//!   into the per-process shares ALPS consumes (a §6 related-work
//!   extension).
//! * [`slo`] — the latency-feedback controller: observe per-tenant tail
//!   latency, nudge shares to meet per-tenant SLO targets.
//! * [`cycle`] — per-cycle consumption records for accuracy analysis.
//! * [`config`] — quantum length, the §2.3 lazy-measurement switch, and
//!   §2.4 I/O policies.
//! * [`time`] — the [`Nanos`] time type shared across the workspace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub(crate) mod arena;
pub mod config;
pub mod cycle;
pub mod engine;
pub mod hierarchy;
pub mod principal;
pub mod sched;
pub mod slo;
pub mod time;

/// The types every ALPS driver imports.
///
/// A backend — simulator runner, OS supervisor, or test harness — builds
/// an [`AlpsConfig`], drives an [`Engine`] over its [`Substrate`], watches
/// through an [`EventSink`], and talks in [`Nanos`] and [`ProcId`]s:
///
/// ```
/// use alps_core::prelude::*;
///
/// let cfg = AlpsConfig::new(Nanos::from_millis(10));
/// let mut alps = AlpsScheduler::new(cfg);
/// let _p = alps.add_process(1, Nanos::ZERO);
/// ```
pub mod prelude {
    pub use crate::config::AlpsConfig;
    pub use crate::engine::{Engine, EventSink, Substrate};
    pub use crate::sched::{AlpsScheduler, ProcId};
    pub use crate::time::Nanos;
}

pub use config::{AlpsConfig, DueIndex, IoPolicy, MemberStore};
pub use cycle::{CycleEntry, CycleRecord};
pub use engine::{
    Engine, EngineFor, EngineStats, Event, EventSink, FaultPolicy, HardenConfig, Instrumentation,
    NullSink, RecordingSink, Signal, Substrate, TraceSink,
};
pub use hierarchy::{NodeId, ShareTree, TreeShares, DEFAULT_TREE_SCALE};
pub use principal::{
    DueList, MemberTransition, MembershipChange, PrincipalOutcome, PrincipalScheduler,
};
pub use sched::{AlpsScheduler, Observation, ProcId, QuantumOutcome, StaleId, Transition};
pub use slo::{ShareAdjustment, SloConfig, SloController, SloTarget};
pub use time::Nanos;
