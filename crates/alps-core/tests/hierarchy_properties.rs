//! Property tests of hierarchy flattening: integer shares must preserve
//! the exact product-of-fractions ratios for arbitrary trees.

use alps_core::{NodeId, ShareTree};
use proptest::prelude::*;

/// Build a random two-level tree: `groups` root groups with the given
/// shares, each holding the listed leaf shares.
fn build(groups: &[(u64, Vec<u64>)]) -> (ShareTree, Vec<(u64, f64)>) {
    let mut t = ShareTree::new();
    let mut expected = Vec::new();
    let group_total: u64 = groups
        .iter()
        .filter(|(_, leaves)| !leaves.is_empty())
        .map(|&(s, _)| s)
        .sum();
    let mut tag = 0u64;
    for (gshare, leaves) in groups {
        let g = t.add_group(None, *gshare);
        let leaf_total: u64 = leaves.iter().sum();
        for &ls in leaves {
            t.add_leaf(Some(g), ls, tag);
            if group_total > 0 && leaf_total > 0 {
                expected.push((
                    tag,
                    *gshare as f64 / group_total as f64 * ls as f64 / leaf_total as f64,
                ));
            }
            tag += 1;
        }
    }
    (t, expected)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn flatten_preserves_fraction_ratios(
        groups in proptest::collection::vec(
            (1u64..20, proptest::collection::vec(1u64..20, 0..5)),
            1..5,
        ),
    ) {
        let (t, expected) = build(&groups);
        let flat = t.flatten();
        prop_assert_eq!(flat.len(), expected.len());
        let share_total: u64 = flat.iter().map(|&(_, s)| s).sum();
        for (tag, frac) in expected {
            let (_, s) = flat.iter().find(|&&(tg, _)| tg == tag).expect("leaf present");
            let got = *s as f64 / share_total as f64;
            prop_assert!(
                (got - frac).abs() < 1e-9,
                "tag {}: flattened {:.6} vs expected {:.6}",
                tag, got, frac
            );
        }
    }

    #[test]
    fn flatten_is_reduced(
        groups in proptest::collection::vec(
            (1u64..10, proptest::collection::vec(1u64..10, 1..4)),
            1..4,
        ),
    ) {
        let (t, _) = build(&groups);
        let flat = t.flatten();
        let g = flat.iter().fold(0u64, |acc, &(_, s)| {
            fn gcd(a: u64, b: u64) -> u64 { if b == 0 { a } else { gcd(b, a % b) } }
            gcd(acc, s)
        });
        prop_assert!(g <= 1 || flat.len() == 1 || g == flat[0].1 && flat.len() == 1 || g == 1,
            "shares not reduced: gcd {} over {:?}", g, flat);
    }

    #[test]
    fn leaf_removal_never_panics_and_redistributes(
        groups in proptest::collection::vec(
            (1u64..10, proptest::collection::vec(1u64..10, 1..4)),
            2..4,
        ),
        removals in proptest::collection::vec(any::<u32>(), 0..6),
    ) {
        let (mut t, _) = build(&groups);
        // Collect leaf node ids by rebuilding: leaves were added in order.
        let mut leaf_ids: Vec<NodeId> = Vec::new();
        {
            // Rebuild an identical tree to learn ids (ShareTree has no
            // public iteration; ids are allocation-ordered).
            let mut t2 = ShareTree::new();
            for (gshare, leaves) in &groups {
                let g = t2.add_group(None, *gshare);
                for &ls in leaves {
                    leaf_ids.push(t2.add_leaf(Some(g), ls, 0));
                }
            }
        }
        let mut live = leaf_ids.clone();
        for r in removals {
            if live.len() <= 1 {
                break;
            }
            let idx = (r as usize) % live.len();
            let id = live.remove(idx);
            t.remove_leaf(id);
            let flat = t.flatten();
            prop_assert_eq!(flat.len(), live.len());
            if !flat.is_empty() {
                let total: u64 = flat.iter().map(|&(_, s)| s).sum();
                prop_assert!(total > 0);
            }
        }
    }

    /// The live tree's incremental aggregate propagation: after an
    /// arbitrary interleaving of group/leaf adds, reshares, and leaf
    /// removals, the cached `entitlement` path must be *bit-identical* to
    /// the from-scratch `entitlement_naive` walk for every live leaf, and
    /// `flatten` must still quantize those exact fractions.
    #[test]
    fn incremental_propagation_matches_from_scratch_after_churn(
        ops in proptest::collection::vec((any::<u8>(), 1u64..16, any::<u16>()), 1..50),
    ) {
        let mut t = ShareTree::new();
        let mut groups: Vec<NodeId> = Vec::new();
        let mut live: Vec<(NodeId, u64)> = Vec::new();
        let mut next_tag = 0u64;
        for (kind, share, pick) in ops {
            let pick = pick as usize;
            match kind % 4 {
                0 => {
                    // New group, sometimes nested under an existing one.
                    let parent = if groups.is_empty() || pick.is_multiple_of(3) {
                        None
                    } else {
                        Some(groups[pick % groups.len()])
                    };
                    groups.push(t.add_group(parent, share));
                }
                1 => {
                    // New leaf under a random group (or the root).
                    let parent = if groups.is_empty() {
                        None
                    } else {
                        Some(groups[pick % groups.len()])
                    };
                    live.push((t.add_leaf(parent, share, next_tag), next_tag));
                    next_tag += 1;
                }
                2 => {
                    // Reshare a random live node — leaf or interior group.
                    let total = groups.len() + live.len();
                    if total > 0 {
                        let i = pick % total;
                        let id = if i < groups.len() {
                            groups[i]
                        } else {
                            live[i - groups.len()].0
                        };
                        prop_assert!(t.set_share(id, share));
                    }
                }
                _ => {
                    // Remove a random leaf; its id must then be dead to
                    // every mutator and both entitlement paths.
                    if !live.is_empty() {
                        let (id, _) = live.remove(pick % live.len());
                        prop_assert!(t.remove_leaf(id));
                        prop_assert!(!t.set_share(id, share), "removed leaf took a share");
                        prop_assert!(!t.remove_leaf(id), "double removal succeeded");
                        prop_assert_eq!(t.entitlement_naive(id), None);
                        prop_assert_eq!(t.entitlement(id), None);
                    }
                }
            }
            // After *every* op: the O(depth)-maintained caches agree with a
            // full recomputation, bit for bit.
            for &(leaf, tag) in &live {
                let naive = t.entitlement_naive(leaf);
                let cached = t.entitlement(leaf);
                prop_assert_eq!(
                    cached.map(f64::to_bits),
                    naive.map(f64::to_bits),
                    "leaf tag {}: cached {:?} vs naive {:?}",
                    tag, cached, naive
                );
            }
            // And the flattened integer shares quantize those fractions.
            let flat = t.flatten();
            prop_assert_eq!(flat.len(), live.len());
            let share_total: u64 = flat.iter().map(|&(_, s)| s).sum();
            for &(leaf, tag) in &live {
                let frac = t.entitlement_naive(leaf).expect("live leaf has a fraction");
                let (_, s) = flat
                    .iter()
                    .find(|&&(tg, _)| tg == tag)
                    .expect("live leaf survives flatten");
                let got = *s as f64 / share_total as f64;
                prop_assert!(
                    (got - frac).abs() < 1e-9,
                    "tag {}: flattened {:.9} vs walked {:.9}",
                    tag, got, frac
                );
            }
        }
    }
}
