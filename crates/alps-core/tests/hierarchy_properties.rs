//! Property tests of hierarchy flattening: integer shares must preserve
//! the exact product-of-fractions ratios for arbitrary trees.

use alps_core::{NodeId, ShareTree};
use proptest::prelude::*;

/// Build a random two-level tree: `groups` root groups with the given
/// shares, each holding the listed leaf shares.
fn build(groups: &[(u64, Vec<u64>)]) -> (ShareTree, Vec<(u64, f64)>) {
    let mut t = ShareTree::new();
    let mut expected = Vec::new();
    let group_total: u64 = groups
        .iter()
        .filter(|(_, leaves)| !leaves.is_empty())
        .map(|&(s, _)| s)
        .sum();
    let mut tag = 0u64;
    for (gshare, leaves) in groups {
        let g = t.add_group(None, *gshare);
        let leaf_total: u64 = leaves.iter().sum();
        for &ls in leaves {
            t.add_leaf(Some(g), ls, tag);
            if group_total > 0 && leaf_total > 0 {
                expected.push((
                    tag,
                    *gshare as f64 / group_total as f64 * ls as f64 / leaf_total as f64,
                ));
            }
            tag += 1;
        }
    }
    (t, expected)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn flatten_preserves_fraction_ratios(
        groups in proptest::collection::vec(
            (1u64..20, proptest::collection::vec(1u64..20, 0..5)),
            1..5,
        ),
    ) {
        let (t, expected) = build(&groups);
        let flat = t.flatten();
        prop_assert_eq!(flat.len(), expected.len());
        let share_total: u64 = flat.iter().map(|&(_, s)| s).sum();
        for (tag, frac) in expected {
            let (_, s) = flat.iter().find(|&&(tg, _)| tg == tag).expect("leaf present");
            let got = *s as f64 / share_total as f64;
            prop_assert!(
                (got - frac).abs() < 1e-9,
                "tag {}: flattened {:.6} vs expected {:.6}",
                tag, got, frac
            );
        }
    }

    #[test]
    fn flatten_is_reduced(
        groups in proptest::collection::vec(
            (1u64..10, proptest::collection::vec(1u64..10, 1..4)),
            1..4,
        ),
    ) {
        let (t, _) = build(&groups);
        let flat = t.flatten();
        let g = flat.iter().fold(0u64, |acc, &(_, s)| {
            fn gcd(a: u64, b: u64) -> u64 { if b == 0 { a } else { gcd(b, a % b) } }
            gcd(acc, s)
        });
        prop_assert!(g <= 1 || flat.len() == 1 || g == flat[0].1 && flat.len() == 1 || g == 1,
            "shares not reduced: gcd {} over {:?}", g, flat);
    }

    #[test]
    fn leaf_removal_never_panics_and_redistributes(
        groups in proptest::collection::vec(
            (1u64..10, proptest::collection::vec(1u64..10, 1..4)),
            2..4,
        ),
        removals in proptest::collection::vec(any::<u32>(), 0..6),
    ) {
        let (mut t, _) = build(&groups);
        // Collect leaf node ids by rebuilding: leaves were added in order.
        let mut leaf_ids: Vec<NodeId> = Vec::new();
        {
            // Rebuild an identical tree to learn ids (ShareTree has no
            // public iteration; ids are allocation-ordered).
            let mut t2 = ShareTree::new();
            for (gshare, leaves) in &groups {
                let g = t2.add_group(None, *gshare);
                for &ls in leaves {
                    leaf_ids.push(t2.add_leaf(Some(g), ls, 0));
                }
            }
        }
        let mut live = leaf_ids.clone();
        for r in removals {
            if live.len() <= 1 {
                break;
            }
            let idx = (r as usize) % live.len();
            let id = live.remove(idx);
            t.remove_leaf(id);
            let flat = t.flatten();
            prop_assert_eq!(flat.len(), live.len());
            if !flat.is_empty() {
                let total: u64 = flat.iter().map(|&(_, s)| s).sum();
                prop_assert!(total > 0);
            }
        }
    }
}
