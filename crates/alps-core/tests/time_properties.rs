//! Property tests for the `Nanos` time type.

use alps_core::Nanos;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn round_up_lands_on_a_multiple_at_or_after(
        t in 0u64..1u64 << 50,
        step in 1u64..1u64 << 20,
    ) {
        let r = Nanos(t).round_up_to(Nanos(step));
        prop_assert!(r.as_nanos() >= t);
        prop_assert_eq!(r.as_nanos() % step, 0);
        prop_assert!(r.as_nanos() - t < step);
    }

    #[test]
    fn saturating_ops_never_wrap(a in any::<u64>(), b in any::<u64>()) {
        let (x, y) = (Nanos(a), Nanos(b));
        prop_assert_eq!(x.saturating_sub(y).as_nanos(), a.saturating_sub(b));
        prop_assert_eq!(x.saturating_add(y).as_nanos(), a.saturating_add(b));
        prop_assert_eq!(x.checked_sub(y).map(|n| n.as_nanos()), a.checked_sub(b));
    }

    #[test]
    fn float_views_agree(ns in 0u64..1u64 << 52) {
        let t = Nanos(ns);
        // Two f64 roundings each: tolerance is relative (~2^-51).
        let tol = 1.0 + t.as_f64() * 1e-15;
        prop_assert!((t.as_micros_f64() * 1e3 - t.as_f64()).abs() < tol);
        prop_assert!((t.as_millis_f64() * 1e6 - t.as_f64()).abs() < tol);
        prop_assert!((t.as_secs_f64() * 1e9 - t.as_f64()).abs() < tol);
    }

    #[test]
    fn duration_round_trip_is_exact(ns in any::<u64>()) {
        let t = Nanos(ns);
        let d: core::time::Duration = t.into();
        let back: Nanos = d.into();
        prop_assert_eq!(back, t);
    }

    #[test]
    fn serde_round_trips(ns in any::<u64>()) {
        let t = Nanos(ns);
        let json = serde_json::to_string(&t).unwrap();
        // Transparent newtype: serializes as a bare integer.
        prop_assert_eq!(&json, &ns.to_string());
        let back: Nanos = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, t);
    }

    #[test]
    fn mul_f64_is_monotone(ns in 0u64..1u64 << 40, k1 in 0.0f64..10.0, k2 in 0.0f64..10.0) {
        let t = Nanos(ns);
        let (lo, hi) = if k1 <= k2 { (k1, k2) } else { (k2, k1) };
        prop_assert!(t.mul_f64(lo) <= t.mul_f64(hi));
    }
}
