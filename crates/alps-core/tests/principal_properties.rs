//! Property-based tests of the §5 resource-principal layer: aggregate
//! accounting must be invariant under membership churn, and signals must
//! always reconcile member run-states with principal eligibility.

use alps_core::{AlpsConfig, MemberTransition, Nanos, Observation, PrincipalScheduler, ProcId};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

type Pid = u64;

const Q_NS: u64 = 10_000_000;

#[derive(Debug, Default, Clone)]
struct World {
    /// "True" cumulative CPU per member pid (survives ownership moves).
    cpu: BTreeMap<Pid, u64>,
    /// Which pids each principal owns, mirrored from the scheduler.
    members: BTreeMap<usize, BTreeSet<Pid>>,
    /// Which pids we believe are currently suspended.
    stopped: BTreeSet<Pid>,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Under arbitrary churn and consumption, principal accounting matches
    /// the sum of member deltas since joining, and every stopped process
    /// belongs to an ineligible principal at quantum boundaries.
    #[test]
    fn churn_preserves_accounting_and_signals(
        shares in proptest::collection::vec(1u64..6, 2..4),
        script in proptest::collection::vec((0u8..4, 0u64..64, 1u64..Q_NS*2), 20..120),
    ) {
        let mut sched: PrincipalScheduler<Pid> =
            PrincipalScheduler::new(AlpsConfig::new(Nanos(Q_NS)));
        let ids: Vec<ProcId> = shares.iter().map(|&s| sched.add_principal(s)).collect();
        let mut world = World::default();
        for (k, _) in ids.iter().enumerate() {
            world.members.insert(k, BTreeSet::new());
        }
        let mut next_pid: Pid = 1;

        let apply_signals = |world: &mut World, signals: &[MemberTransition<Pid>]| {
            for s in signals {
                match s {
                    MemberTransition::Suspend(p) => {
                        world.stopped.insert(*p);
                    }
                    MemberTransition::Resume(p) => {
                        world.stopped.remove(p);
                    }
                }
            }
        };

        for (op, arg, amount) in script {
            let k = (arg as usize) % ids.len();
            let id = ids[k];
            match op {
                0 => {
                    // a new pid joins principal k
                    let pid = next_pid;
                    next_pid += 1;
                    world.cpu.insert(pid, (arg % 7) * 1_000_000);
                    world.members.get_mut(&k).unwrap().insert(pid);
                    let current: Vec<(Pid, Nanos)> = world.members[&k]
                        .iter()
                        .map(|&p| (p, Nanos(world.cpu[&p])))
                        .collect();
                    let change = sched.set_membership(id, &current).unwrap();
                    prop_assert_eq!(change.added, vec![pid]);
                    apply_signals(&mut world, &change.signals);
                }
                1 => {
                    // a pid leaves principal k
                    let leaving = world.members[&k].iter().next().copied();
                    if let Some(pid) = leaving {
                        world.members.get_mut(&k).unwrap().remove(&pid);
                        let current: Vec<(Pid, Nanos)> = world.members[&k]
                            .iter()
                            .map(|&p| (p, Nanos(world.cpu[&p])))
                            .collect();
                        let change = sched.set_membership(id, &current).unwrap();
                        prop_assert_eq!(change.removed, vec![pid]);
                        apply_signals(&mut world, &change.signals);
                    }
                }
                2 => {
                    // an unsuspended member of k consumes CPU
                    let runner = world.members[&k]
                        .iter()
                        .find(|p| !world.stopped.contains(p))
                        .copied();
                    if let Some(pid) = runner {
                        *world.cpu.get_mut(&pid).unwrap() += amount;
                    }
                }
                _ => {
                    // a quantum
                    let due = sched.begin_quantum();
                    let readings: Vec<(ProcId, Vec<(Pid, Observation)>)> = due
                        .iter()
                        .map(|(pid_id, members)| {
                            let obs = members
                                .iter()
                                .map(|&m| {
                                    (
                                        m,
                                        Observation {
                                            total_cpu: Nanos(world.cpu[&m]),
                                            blocked: false,
                                        },
                                    )
                                })
                                .collect();
                            (*pid_id, obs)
                        })
                        .collect();
                    let out = sched.complete_quantum(&readings, Nanos::ZERO);
                    apply_signals(&mut world, &out.signals);
                    // After the quantum, stopped pids must belong only to
                    // ineligible principals and vice versa.
                    for (kk, id2) in ids.iter().enumerate() {
                        let eligible = sched.is_eligible(*id2).unwrap();
                        for pid in &world.members[&kk] {
                            prop_assert_eq!(
                                !world.stopped.contains(pid),
                                eligible,
                                "principal {} eligible={} but pid {} stopped={}",
                                kk,
                                eligible,
                                pid,
                                world.stopped.contains(pid)
                            );
                        }
                    }
                }
            }
            // Membership views agree at all times.
            for (kk, id2) in ids.iter().enumerate() {
                let mut got = sched.members(*id2).unwrap();
                got.sort_unstable();
                let want: Vec<Pid> = world.members[&kk].iter().copied().collect();
                prop_assert_eq!(got, want);
            }
        }
    }
}
