//! Checkpoint/restore: a serialized scheduler must behave identically to
//! the original after restore, mid-cycle state included.

use alps_core::{AlpsConfig, AlpsScheduler, Nanos, Observation, ProcId};

fn obs(id: ProcId, ms: u64) -> (ProcId, Observation) {
    (
        id,
        Observation {
            total_cpu: Nanos::from_millis(ms),
            blocked: false,
        },
    )
}

#[test]
fn snapshot_round_trips_mid_cycle() {
    let cfg = AlpsConfig::new(Nanos::from_millis(10));
    let mut sched = AlpsScheduler::new(cfg);
    let a = sched.add_process(2, Nanos::ZERO);
    let b = sched.add_process(3, Nanos::ZERO);
    // Advance into the middle of a cycle.
    sched.begin_quantum();
    sched.complete_quantum(&[], Nanos::ZERO);
    sched.begin_quantum();
    sched.complete_quantum(&[obs(a, 7)], Nanos::from_millis(10));

    let json = serde_json::to_string(&sched).expect("serialize");
    let mut restored: AlpsScheduler = serde_json::from_str(&json).expect("deserialize");

    // Identical externally visible state.
    assert_eq!(restored.total_shares(), sched.total_shares());
    assert_eq!(restored.invocations(), sched.invocations());
    assert_eq!(restored.cycles_completed(), sched.cycles_completed());
    assert_eq!(restored.allowance(a), sched.allowance(a));
    assert_eq!(restored.allowance(b), sched.allowance(b));
    assert_eq!(restored.is_eligible(a), sched.is_eligible(a));
    assert!((restored.cycle_time_remaining() - sched.cycle_time_remaining()).abs() < 1e-9);

    // And identical behavior going forward: run both through the same
    // quanta and compare everything.
    let mut original = sched;
    for k in 0..200u64 {
        let due_o = original.begin_quantum();
        let due_r = restored.begin_quantum();
        assert_eq!(due_o, due_r, "due lists diverged at quantum {k}");
        let total = 7 + (k + 1) * 4;
        let readings_o: Vec<_> = due_o.iter().map(|&id| obs(id, total)).collect();
        let readings_r: Vec<_> = due_r.iter().map(|&id| obs(id, total)).collect();
        let out_o = original.complete_quantum(&readings_o, Nanos::from_millis(20 + 10 * k));
        let out_r = restored.complete_quantum(&readings_r, Nanos::from_millis(20 + 10 * k));
        assert_eq!(out_o.transitions, out_r.transitions, "quantum {k}");
        assert_eq!(out_o.cycle_completed, out_r.cycle_completed, "quantum {k}");
    }
}

#[test]
fn snapshot_preserves_stale_id_rejection() {
    let mut sched = AlpsScheduler::new(AlpsConfig::default());
    let a = sched.add_process(1, Nanos::ZERO);
    sched.remove_process(a);
    let _b = sched.add_process(2, Nanos::ZERO); // reuses the slot
    let json = serde_json::to_string(&sched).unwrap();
    let restored: AlpsScheduler = serde_json::from_str(&json).unwrap();
    assert!(restored.allowance(a).is_none(), "stale generation survives");
}
