//! Scan-vs-wheel due-index lockstep.
//!
//! The deadline wheel ([`alps_core::DueIndex::Wheel`]) is a pure
//! control-path data structure: for any sequence of registrations,
//! deregistrations, share changes, and measured quanta it must produce
//! exactly the behavior of the seed linear scan
//! ([`alps_core::DueIndex::Scan`]) — identical due lists, transitions,
//! cycle boundaries, cycle records, allowances, and eligibility. These
//! tests drive both implementations through the same churn and compare
//! everything externally observable, at the raw-scheduler level (a
//! deterministic ≥200-quantum run plus a proptest over random op
//! sequences) and at the engine level (event traces and `EngineStats`).
//!
//! Raw serialized scheduler state is deliberately *not* compared: the
//! wheel leaves an ineligible slot's internal reschedule deadline stale
//! where the scan rewrites it on every walk — invisible to any caller,
//! since ineligible slots are never due.

use std::collections::{BTreeMap, BTreeSet};
use std::convert::Infallible;

use alps_core::{
    AlpsConfig, AlpsScheduler, DueIndex, Engine, Instrumentation, Nanos, Observation, ProcId,
    RecordingSink, Signal, Substrate,
};
use proptest::prelude::*;

const Q_NS: u64 = 10_000_000; // 10 ms quantum

fn cfg(due: DueIndex) -> AlpsConfig {
    AlpsConfig::new(Nanos(Q_NS))
        .with_cycle_log(true)
        .with_due_index(due)
}

/// One step of churn applied identically to both schedulers.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Register a process with this share.
    Add { share: u64 },
    /// Deregister the `victim % live`-th live process.
    Remove { victim: usize },
    /// Re-share the `victim % live`-th live process.
    SetShare { victim: usize, share: u64 },
    /// Toggle the blocked flag of the `victim % live`-th live process.
    ToggleBlocked { victim: usize },
    /// Run one measured quantum, distributing `busy_permille`/1000 of a
    /// quantum of CPU among the eligible, unblocked processes.
    Quantum { busy_permille: u16 },
}

/// The backend's ground truth for one controlled process. Both
/// schedulers mint ids from the same slot allocator, so under identical
/// op sequences the ids must coincide — asserted at every add.
#[derive(Debug, Clone)]
struct Proc {
    id: ProcId,
    cpu: Nanos,
    blocked: bool,
}

/// Drive both schedulers through `ops` in lockstep, asserting identical
/// externally visible behavior after every operation. Returns the number
/// of quanta executed.
fn run_lockstep(ops: &[Op]) -> u64 {
    let mut scan = AlpsScheduler::new(cfg(DueIndex::Scan));
    let mut wheel = AlpsScheduler::new(cfg(DueIndex::Wheel));
    let mut procs: Vec<Proc> = Vec::new();
    let mut quanta = 0u64;
    let mut scan_records = Vec::new();
    let mut wheel_records = Vec::new();

    for (step, &op) in ops.iter().enumerate() {
        match op {
            Op::Add { share } => {
                let now = Nanos(Q_NS * quanta);
                let a = scan.add_process(share, now);
                let b = wheel.add_process(share, now);
                assert_eq!(a, b, "step {step}: id mint diverged");
                procs.push(Proc {
                    id: a,
                    cpu: Nanos::ZERO,
                    blocked: false,
                });
            }
            Op::Remove { victim } => {
                if procs.is_empty() {
                    continue;
                }
                let i = victim % procs.len();
                let p = procs.swap_remove(i);
                let a = scan.remove_process(p.id);
                let b = wheel.remove_process(p.id);
                assert_eq!(a, b, "step {step}: remove diverged");
            }
            Op::SetShare { victim, share } => {
                if procs.is_empty() {
                    continue;
                }
                let i = victim % procs.len();
                let a = scan.set_share(procs[i].id, share);
                let b = wheel.set_share(procs[i].id, share);
                assert_eq!(a, b, "step {step}: set_share diverged");
            }
            Op::ToggleBlocked { victim } => {
                if procs.is_empty() {
                    continue;
                }
                let i = victim % procs.len();
                procs[i].blocked = !procs[i].blocked;
            }
            Op::Quantum { busy_permille } => {
                quanta += 1;
                let now = Nanos(Q_NS * quanta);
                // Charge CPU to eligible, unblocked processes, equal split
                // (eligibility agreed between the two schedulers last
                // quantum; use scan's view).
                let eligible: Vec<usize> = procs
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| !p.blocked && scan.is_eligible(p.id) == Some(true))
                    .map(|(i, _)| i)
                    .collect();
                if !eligible.is_empty() {
                    let slice = (Q_NS as f64 * f64::from(busy_permille)
                        / 1000.0
                        / eligible.len() as f64) as u64;
                    for &i in &eligible {
                        procs[i].cpu += Nanos(slice);
                    }
                }

                let due_scan = scan.begin_quantum();
                let due_wheel = wheel.begin_quantum();
                assert_eq!(due_scan, due_wheel, "step {step}: due lists diverged");

                let obs: Vec<(ProcId, Observation)> = due_scan
                    .iter()
                    .filter_map(|&id| {
                        procs.iter().find(|p| p.id == id).map(|p| {
                            (
                                id,
                                Observation {
                                    total_cpu: p.cpu,
                                    blocked: p.blocked,
                                },
                            )
                        })
                    })
                    .collect();
                let out_scan = scan.complete_quantum(&obs, now);
                let out_wheel = wheel.complete_quantum(&obs, now);
                assert_eq!(
                    out_scan.transitions, out_wheel.transitions,
                    "step {step}: transitions diverged"
                );
                assert_eq!(
                    out_scan.cycle_completed, out_wheel.cycle_completed,
                    "step {step}: cycle boundary diverged"
                );
                assert_eq!(
                    out_scan.cycle_record, out_wheel.cycle_record,
                    "step {step}: cycle record diverged"
                );
                if let Some(r) = out_scan.cycle_record {
                    scan_records.push(r);
                }
                if let Some(r) = out_wheel.cycle_record {
                    wheel_records.push(r);
                }
            }
        }
        // After every op the schedulers must agree on all per-process
        // queries and the aggregate counters.
        assert_eq!(scan.len(), wheel.len(), "step {step}");
        assert_eq!(scan.total_shares(), wheel.total_shares(), "step {step}");
        assert_eq!(
            scan.cycles_completed(),
            wheel.cycles_completed(),
            "step {step}"
        );
        for p in &procs {
            assert_eq!(scan.allowance(p.id), wheel.allowance(p.id), "step {step}");
            assert_eq!(
                scan.is_eligible(p.id),
                wheel.is_eligible(p.id),
                "step {step}"
            );
            assert_eq!(scan.share(p.id), wheel.share(p.id), "step {step}");
        }
    }
    assert_eq!(scan_records, wheel_records, "cycle logs diverged");
    quanta
}

/// A deterministic churn schedule from a tiny LCG: every few quanta a
/// process is added, removed, re-shared, or flips its blocked bit, for
/// well over 200 measured quanta.
#[test]
fn deterministic_churn_stays_in_lockstep_for_250_quanta() {
    let mut rng: u64 = 0x9E3779B97F4A7C15;
    let mut next = || {
        rng = rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (rng >> 33) as usize
    };
    let mut ops = vec![
        Op::Add { share: 1 },
        Op::Add { share: 3 },
        Op::Add { share: 5 },
    ];
    for _ in 0..250 {
        // Mostly full-busy quanta with occasional idle ones.
        let busy = if next() % 7 == 0 { 300 } else { 1000 };
        ops.push(Op::Quantum {
            busy_permille: busy,
        });
        match next() % 11 {
            0 => ops.push(Op::Add {
                share: (next() % 8 + 1) as u64,
            }),
            1 => ops.push(Op::Remove { victim: next() }),
            2 => ops.push(Op::SetShare {
                victim: next(),
                share: (next() % 8 + 1) as u64,
            }),
            3 => ops.push(Op::ToggleBlocked { victim: next() }),
            _ => {}
        }
    }
    let quanta = run_lockstep(&ops);
    assert!(quanta >= 250, "ran {quanta} quanta");
}

/// An adversarial schedule for the wheel's horizon: far deadlines (large
/// allowances from huge shares) park entries past the wheel's bucket
/// horizon and must be re-bucketed on drain, repeatedly.
#[test]
fn far_deadlines_beyond_the_wheel_horizon_stay_in_lockstep() {
    let mut ops = vec![
        Op::Add { share: 200 }, // allowance ≫ 64-bucket horizon
        Op::Add { share: 1 },
    ];
    for _ in 0..400 {
        ops.push(Op::Quantum {
            busy_permille: 1000,
        });
    }
    let quanta = run_lockstep(&ops);
    assert!(quanta >= 400);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary interleavings of registration, deregistration, share
    /// changes, blocked toggles, and measured quanta never separate the
    /// two due-index implementations.
    #[test]
    fn random_churn_stays_in_lockstep(
        seed_shares in proptest::collection::vec(1u64..20, 1..6),
        raw_ops in proptest::collection::vec((0u8..=15, 1u64..12, 0usize..64, 0u16..=1000), 40..120),
    ) {
        let mut ops: Vec<Op> = seed_shares.iter().map(|&share| Op::Add { share }).collect();
        for &(kind, share, victim, busy) in &raw_ops {
            ops.push(match kind {
                0 | 1 => Op::Add { share },
                2 => Op::Remove { victim },
                3 | 4 => Op::SetShare { victim, share },
                5 => Op::ToggleBlocked { victim },
                // Weight the mix toward measured quanta so cycles complete.
                _ => Op::Quantum { busy_permille: busy },
            });
        }
        run_lockstep(&ops);
    }
}

/// A scripted substrate for the engine-level comparison (the same shape
/// as the one in `engine.rs`).
#[derive(Debug, Default)]
struct MockSubstrate {
    now: Nanos,
    cpu: BTreeMap<u32, Nanos>,
    stopped: BTreeSet<u32>,
    gone: BTreeSet<u32>,
}

impl Substrate for MockSubstrate {
    type Member = u32;
    type Error = Infallible;

    fn now(&mut self) -> Nanos {
        self.now
    }

    fn read(&mut self, m: u32) -> Result<Option<Observation>, Infallible> {
        if self.gone.contains(&m) {
            return Ok(None);
        }
        Ok(self.cpu.get(&m).map(|&total_cpu| Observation {
            total_cpu,
            blocked: false,
        }))
    }

    fn deliver(&mut self, m: u32, sig: Signal) -> Result<bool, Infallible> {
        if self.gone.contains(&m) || !self.cpu.contains_key(&m) {
            return Ok(false);
        }
        match sig {
            Signal::Stop => self.stopped.insert(m),
            Signal::Continue => self.stopped.remove(&m),
        };
        Ok(true)
    }
}

/// Engine-level lockstep over 300 quanta with member churn: the full
/// externally visible story — the instrumentation event trace, the
/// aggregate [`alps_core::EngineStats`], and the per-cycle records —
/// must be byte-identical between scan and wheel.
#[test]
fn engines_produce_identical_traces_and_stats() {
    let run = |due: DueIndex| {
        let mut engine: Engine<u32> =
            Engine::new(cfg(due), Instrumentation::Measured).with_auto_reap(true);
        let mut sub = MockSubstrate::default();
        let mut sink = RecordingSink::new();
        let mut next_member: u32 = 0;
        let mut members: Vec<u32> = Vec::new();
        for _ in 0..3 {
            let m = next_member;
            next_member += 1;
            sub.cpu.insert(m, Nanos::ZERO);
            sub.stopped.insert(m);
            engine.add_member(m, u64::from(m % 5) + 1, Nanos::ZERO);
            members.push(m);
        }
        for k in 0..300u64 {
            // Deterministic churn: a join every 17 quanta, a death every 23.
            if k % 17 == 0 {
                let m = next_member;
                next_member += 1;
                sub.cpu.insert(m, Nanos::ZERO);
                sub.stopped.insert(m);
                engine.add_member(m, u64::from(m % 5) + 1, sub.now);
                members.push(m);
            }
            if k % 23 == 0 && members.len() > 2 {
                let m = members.remove(k as usize % members.len());
                sub.gone.insert(m);
            }
            // Advance the clock one quantum, charging runnable members.
            sub.now += Nanos(Q_NS);
            let dt = Nanos(Q_NS);
            for (&m, cpu) in sub.cpu.iter_mut() {
                if !sub.stopped.contains(&m) && !sub.gone.contains(&m) {
                    *cpu += dt;
                }
            }
            engine.run_quantum(&mut sub, &mut sink).unwrap();
        }
        (sink.events, engine.stats(), engine.cycles().to_vec())
    };
    let (ev_scan, stats_scan, cycles_scan) = run(DueIndex::Scan);
    let (ev_wheel, stats_wheel, cycles_wheel) = run(DueIndex::Wheel);
    assert_eq!(stats_scan, stats_wheel, "EngineStats diverged");
    assert_eq!(cycles_scan, cycles_wheel, "cycle logs diverged");
    assert_eq!(ev_scan.len(), ev_wheel.len(), "trace lengths diverged");
    for (i, (a, b)) in ev_scan.iter().zip(&ev_wheel).enumerate() {
        assert_eq!(a, b, "trace diverged at event {i}");
    }
    assert!(stats_scan.cycles > 0, "fixture must cross cycle boundaries");
}
