//! Property-based tests of the ALPS core invariants.
//!
//! A synthetic backend drives the scheduler with arbitrary (but
//! physically plausible) consumption patterns: each quantum, the CPU
//! distributes at most one quantum of time among the *eligible* processes
//! with random weights, mirroring the constraint a real kernel imposes.
//! The properties then check the three pillars of the algorithm:
//!
//! 1. **conservation** — `Σ allowanceᵢ ≥ t_c / Q − ε` at all times (the
//!    liveness invariant; equality modulo removals);
//! 2. **eligibility consistency** — after every invocation, a process is
//!    in the eligible group iff its allowance is positive;
//! 3. **long-run fairness** — over any window of completed cycles, each
//!    process's consumption tracks `share/S` of the total within
//!    quantum-granularity error bounds.

use alps_core::{AlpsConfig, AlpsScheduler, IoPolicy, Nanos, Observation, ProcId};
use proptest::prelude::*;

const Q_NS: u64 = 10_000_000; // 10 ms quantum for all properties

#[derive(Debug, Clone)]
struct ProcModel {
    id: ProcId,
    share: u64,
    /// "True" cumulative CPU the backend believes this process consumed.
    cpu: Nanos,
    /// Whether the process reports blocked when measured.
    blocked: bool,
}

/// One simulated quantum: split `busy_frac` of a quantum among eligible
/// processes with the given weights, then run the scheduler invocation.
fn step(
    sched: &mut AlpsScheduler,
    procs: &mut [ProcModel],
    weights: &[u8],
    busy_frac: f64,
    now: Nanos,
) {
    let eligible: Vec<usize> = procs
        .iter()
        .enumerate()
        .filter(|(_, p)| sched.is_eligible(p.id) == Some(true))
        .map(|(i, _)| i)
        .collect();
    let wsum: f64 = eligible
        .iter()
        .map(|&i| f64::from(weights[i % weights.len()]) + 1.0)
        .sum();
    if wsum > 0.0 {
        let budget = Q_NS as f64 * busy_frac;
        for &i in &eligible {
            let w = f64::from(weights[i % weights.len()]) + 1.0;
            let share_ns = (budget * w / wsum) as u64;
            if !procs[i].blocked {
                procs[i].cpu += Nanos(share_ns);
            }
        }
    }
    let due = sched.begin_quantum();
    let obs: Vec<(ProcId, Observation)> = due
        .iter()
        .filter_map(|&id| {
            procs.iter().find(|p| p.id == id).map(|p| {
                (
                    id,
                    Observation {
                        total_cpu: p.cpu,
                        blocked: p.blocked,
                    },
                )
            })
        })
        .collect();
    let out = sched.complete_quantum(&obs, now);
    // Eligibility consistency after every invocation.
    for p in procs.iter() {
        let eligible = sched.is_eligible(p.id).expect("live process");
        let allowance = sched.allowance(p.id).expect("live process");
        assert_eq!(
            eligible,
            allowance > 0.0,
            "process {:?}: eligible={eligible} allowance={allowance}",
            p.id
        );
    }
    // Transitions refer only to live processes.
    for t in &out.transitions {
        assert!(procs.iter().any(|p| p.id == t.proc_id()));
    }
}

fn conservation_holds(sched: &AlpsScheduler, procs: &[ProcModel]) {
    let sum: f64 = procs.iter().filter_map(|p| sched.allowance(p.id)).sum();
    let tc_quanta = sched.cycle_time_remaining() / Q_NS as f64;
    assert!(
        sum >= tc_quanta - 1e-6,
        "conservation violated: sum allowances {sum} < tc/Q {tc_quanta}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Conservation + eligibility + no-stall under arbitrary consumption.
    #[test]
    fn invariants_under_arbitrary_consumption(
        shares in proptest::collection::vec(1u64..20, 1..8),
        weights in proptest::collection::vec(0u8..255, 8),
        busy in proptest::collection::vec(0.0f64..1.0, 200),
    ) {
        let mut sched = AlpsScheduler::new(AlpsConfig::new(Nanos(Q_NS)));
        let mut procs: Vec<ProcModel> = shares
            .iter()
            .map(|&share| ProcModel {
                id: sched.add_process(share, Nanos::ZERO),
                share,
                cpu: Nanos::ZERO,
                blocked: false,
            })
            .collect();
        let mut stall = 0u32;
        for (k, &b) in busy.iter().enumerate() {
            step(&mut sched, &mut procs, &weights, b, Nanos(Q_NS * k as u64));
            conservation_holds(&sched, &procs);
            let any_eligible = procs
                .iter()
                .any(|p| sched.is_eligible(p.id) == Some(true));
            if any_eligible {
                stall = 0;
            } else {
                stall += 1;
                prop_assert!(stall <= 2, "no eligible process for {stall} quanta");
            }
        }
        let _ = procs;
    }

    /// Long-run fairness: consumption proportions converge to share
    /// proportions when every eligible process greedily consumes.
    #[test]
    fn long_run_fairness(
        shares in proptest::collection::vec(1u64..10, 2..6),
        weights in proptest::collection::vec(0u8..255, 8),
    ) {
        let mut sched = AlpsScheduler::new(AlpsConfig::new(Nanos(Q_NS)));
        let mut procs: Vec<ProcModel> = shares
            .iter()
            .map(|&share| ProcModel {
                id: sched.add_process(share, Nanos::ZERO),
                share,
                cpu: Nanos::ZERO,
                blocked: false,
            })
            .collect();
        // Run long enough for several cycles: cycle = S quanta of CPU and
        // the backend is fully busy.
        let total_shares: u64 = shares.iter().sum();
        let quanta = (total_shares * 12) as usize;
        for k in 0..quanta {
            step(&mut sched, &mut procs, &weights, 1.0, Nanos(Q_NS * k as u64));
        }
        let cycles = sched.cycles_completed();
        prop_assert!(cycles >= 3, "expected several cycles, got {cycles}");
        let total: f64 = procs.iter().map(|p| p.cpu.as_f64()).sum();
        for p in &procs {
            let want = total * p.share as f64 / total_shares as f64;
            let got = p.cpu.as_f64();
            // Per-process deviation is bounded by a few quanta of carry
            // plus startup transient, not proportional to runtime.
            let slack = 4.0 * Q_NS as f64 + 0.15 * want;
            prop_assert!(
                (got - want).abs() <= slack,
                "share {}: got {:.1}ms want {:.1}ms (total {:.1}ms)",
                p.share,
                got / 1e6,
                want / 1e6,
                total / 1e6
            );
        }
    }

    /// Blocked processes under the paper's policy neither stall the cycle
    /// nor panic the scheduler, for arbitrary block patterns.
    #[test]
    fn blocked_patterns_never_stall(
        shares in proptest::collection::vec(1u64..8, 2..6),
        block_mask in proptest::collection::vec(any::<bool>(), 2..6),
        weights in proptest::collection::vec(0u8..255, 8),
    ) {
        let mut sched = AlpsScheduler::new(
            AlpsConfig::new(Nanos(Q_NS)).with_io_policy(IoPolicy::OneQuantumPenalty),
        );
        let mut procs: Vec<ProcModel> = shares
            .iter()
            .enumerate()
            .map(|(i, &share)| ProcModel {
                id: sched.add_process(share, Nanos::ZERO),
                share,
                cpu: Nanos::ZERO,
                blocked: *block_mask.get(i).unwrap_or(&false),
            })
            .collect();
        // Ensure at least one process can make progress.
        if procs.iter().all(|p| p.blocked) {
            procs[0].blocked = false;
        }
        let total_shares: u64 = shares.iter().sum();
        let before = sched.cycles_completed();
        // A persistently blocked process with share s takes up to
        // s + (s-1) + ... + 1 quanta of lazy-measurement penalties to burn
        // its allowance, so budget quadratically in the largest share.
        let max_share = *shares.iter().max().unwrap();
        let quanta = (total_shares + max_share * max_share) as usize * 8;
        for k in 0..quanta {
            step(&mut sched, &mut procs, &weights, 1.0, Nanos(Q_NS * k as u64));
            conservation_holds(&sched, &procs);
        }
        // Cycles keep completing even with persistent blockers.
        prop_assert!(sched.cycles_completed() > before + 2);
        // Blocked processes consumed nothing; runnable ones did.
        for p in &procs {
            if p.blocked {
                prop_assert_eq!(p.cpu, Nanos::ZERO);
            }
        }
    }

    /// Dynamic membership: adds, removes, and share changes never violate
    /// conservation or stall the scheduler.
    #[test]
    fn membership_churn_is_safe(
        ops in proptest::collection::vec((0u8..4, 1u64..10), 30..120),
        weights in proptest::collection::vec(0u8..255, 8),
    ) {
        let mut sched = AlpsScheduler::new(AlpsConfig::new(Nanos(Q_NS)));
        let mut procs: Vec<ProcModel> = Vec::new();
        let mut k = 0u64;
        for (op, arg) in ops {
            match op {
                0 => {
                    // add
                    if procs.len() < 10 {
                        let id = sched.add_process(arg, Nanos::ZERO);
                        procs.push(ProcModel { id, share: arg, cpu: Nanos::ZERO, blocked: false });
                    }
                }
                1 => {
                    // remove
                    if procs.len() > 1 {
                        let idx = (arg as usize) % procs.len();
                        let p = procs.remove(idx);
                        prop_assert!(sched.remove_process(p.id).is_some());
                    }
                }
                2 => {
                    // set share
                    if !procs.is_empty() {
                        let idx = (arg as usize) % procs.len();
                        let id = procs[idx].id;
                        sched.set_share(id, arg).unwrap();
                        procs[idx].share = arg;
                    }
                }
                _ => {
                    // run a quantum
                    if !procs.is_empty() {
                        step(&mut sched, &mut procs, &weights, 0.9, Nanos(Q_NS * k));
                        k += 1;
                        conservation_holds(&sched, &procs);
                    }
                }
            }
            prop_assert_eq!(sched.len(), procs.len());
            let want_total: u64 = procs.iter().map(|p| p.share).sum();
            prop_assert_eq!(sched.total_shares(), want_total);
        }
    }

    /// Stale ids are always rejected, never misdirected, after arbitrary
    /// slot churn.
    #[test]
    fn stale_ids_never_resolve(
        churn in 1usize..20,
    ) {
        let mut sched = AlpsScheduler::new(AlpsConfig::new(Nanos(Q_NS)));
        let first = sched.add_process(1, Nanos::ZERO);
        sched.remove_process(first);
        let mut later = Vec::new();
        for i in 0..churn {
            let id = sched.add_process(i as u64 + 1, Nanos::ZERO);
            later.push(id);
            if i % 2 == 0 {
                sched.remove_process(id);
            }
        }
        prop_assert!(sched.allowance(first).is_none());
        prop_assert!(sched.share(first).is_none());
        prop_assert!(sched.remove_process(first).is_none());
        prop_assert!(sched.set_share(first, 5).is_err());
    }
}
