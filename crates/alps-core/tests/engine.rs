//! The generic engine must be a faithful wrapper: driven in lockstep with
//! a raw [`AlpsScheduler`] over identical observations it must produce
//! identical transitions and identical per-cycle records, and its event
//! stream must narrate every quantum and cycle boundary.

use std::collections::{BTreeMap, BTreeSet};
use std::convert::Infallible;

use alps_core::{
    AlpsConfig, AlpsScheduler, Engine, Event, Instrumentation, Nanos, NullSink, Observation,
    ProcId, RecordingSink, Signal, Substrate,
};

/// A fully scripted substrate: the test owns the clock and every member's
/// cumulative CPU counter; `deliver` tracks the stopped set like a kernel
/// would.
#[derive(Debug, Default)]
struct MockSubstrate {
    now: Nanos,
    cpu: BTreeMap<u32, Nanos>,
    stopped: BTreeSet<u32>,
    gone: BTreeSet<u32>,
}

impl MockSubstrate {
    fn add(&mut self, m: u32) {
        self.cpu.insert(m, Nanos::ZERO);
        self.stopped.insert(m); // registered suspended, per §2.2
    }

    /// Advance the clock by `dt`, charging `dt` of CPU to every member
    /// that is currently runnable.
    fn advance(&mut self, dt: Nanos) {
        self.now += dt;
        for (&m, cpu) in self.cpu.iter_mut() {
            if !self.stopped.contains(&m) && !self.gone.contains(&m) {
                *cpu += dt;
            }
        }
    }
}

impl Substrate for MockSubstrate {
    type Member = u32;
    type Error = Infallible;

    fn now(&mut self) -> Nanos {
        self.now
    }

    fn read(&mut self, m: u32) -> Result<Option<Observation>, Infallible> {
        if self.gone.contains(&m) {
            return Ok(None);
        }
        Ok(self.cpu.get(&m).map(|&total_cpu| Observation {
            total_cpu,
            blocked: false,
        }))
    }

    fn deliver(&mut self, m: u32, sig: Signal) -> Result<bool, Infallible> {
        if self.gone.contains(&m) || !self.cpu.contains_key(&m) {
            return Ok(false);
        }
        match sig {
            Signal::Stop => self.stopped.insert(m),
            Signal::Continue => self.stopped.remove(&m),
        };
        Ok(true)
    }
}

fn obs(id: ProcId, ms: u64) -> (ProcId, Observation) {
    (
        id,
        Observation {
            total_cpu: Nanos::from_millis(ms),
            blocked: false,
        },
    )
}

/// The engine, fed the exact observations the snapshot-test fixture feeds
/// a raw scheduler, must stay in lockstep with it for 200 quanta:
/// identical due lists, identical transitions, and — the §3.1 consumption
/// log — identical `CycleRecord`s.
#[test]
fn engine_matches_raw_scheduler_in_lockstep() {
    let cfg = AlpsConfig::new(Nanos::from_millis(10)).with_cycle_log(true);
    let mut raw = AlpsScheduler::new(cfg);
    let a = raw.add_process(2, Nanos::ZERO);
    let b = raw.add_process(3, Nanos::ZERO);

    let mut engine: Engine<u32> = Engine::new(cfg, Instrumentation::Measured);
    let mut sub = MockSubstrate::default();
    sub.add(10);
    sub.add(20);
    let ea = engine.add_member(10, 2, Nanos::ZERO);
    let eb = engine.add_member(20, 3, Nanos::ZERO);
    assert_eq!((a, b), (ea, eb), "registration must mint the same ids");

    let mut raw_records = Vec::new();
    for k in 0..200u64 {
        let now = Nanos::from_millis(10 * (k + 1));
        let total = 7 + (k + 1) * 4;

        let due_raw = raw.begin_quantum();
        let readings: Vec<_> = due_raw.iter().map(|&id| obs(id, total)).collect();
        let out_raw = raw.complete_quantum(&readings, now);
        if let Some(rec) = &out_raw.cycle_record {
            raw_records.push(rec.clone());
        }

        sub.now = now;
        engine.begin_quantum(&mut sub, &mut NullSink).unwrap();
        let due_ids: Vec<ProcId> = engine.due().iter().map(|(id, _)| id).collect();
        assert_eq!(due_ids, due_raw, "due lists diverged at quantum {k}");
        let members: Vec<u32> = engine
            .due()
            .iter()
            .flat_map(|(_, ms)| ms.iter().copied())
            .collect();
        for m in members {
            sub.cpu.insert(m, Nanos::from_millis(total));
        }
        engine.complete_quantum(&mut sub, &mut NullSink).unwrap();
        engine
            .apply_pending_signals(&mut sub, &mut NullSink)
            .unwrap();

        assert_eq!(
            engine.last_transitions(),
            out_raw.transitions,
            "quantum {k}"
        );
        assert_eq!(
            engine.last_cycle_completed(),
            out_raw.cycle_completed,
            "quantum {k}"
        );
    }

    assert!(
        !raw_records.is_empty(),
        "fixture must cross cycle boundaries"
    );
    assert_eq!(engine.cycles(), raw_records.as_slice());
    assert_eq!(engine.invocations(), raw.invocations());
    assert_eq!(engine.cycles_completed(), raw.cycles_completed());
    assert_eq!(engine.allowance(a), raw.allowance(a));
    assert_eq!(engine.allowance(b), raw.allowance(b));
}

/// A three-process, two-cycle run narrated through a [`RecordingSink`]:
/// every quantum opens with `QuantumStart`, measurements precede signals
/// within a quantum, and each boundary emits a correctly indexed
/// `CycleEnd`.
#[test]
fn recording_sink_sees_the_whole_story() {
    let q = Nanos::from_millis(10);
    let cfg = AlpsConfig::new(q).with_lazy_measurement(false);
    let mut engine: Engine<u32> = Engine::new(cfg, Instrumentation::Measured);
    let mut sub = MockSubstrate::default();
    for (m, share) in [(1u32, 1u64), (2, 1), (3, 1)] {
        sub.add(m);
        engine.add_member(m, share, Nanos::ZERO);
    }

    let mut sink = RecordingSink::new();
    let mut guard = 0;
    while engine.cycles_completed() < 2 {
        sub.advance(q);
        engine.run_quantum(&mut sub, &mut sink).unwrap();
        guard += 1;
        assert!(guard < 50, "two 3-share cycles should take ~6 quanta");
    }

    let events = &sink.events;
    assert!(matches!(
        events[0],
        Event::QuantumStart { invocation: 1, .. }
    ));

    let starts = events
        .iter()
        .filter(|e| matches!(e, Event::QuantumStart { .. }))
        .count() as u64;
    assert_eq!(starts, engine.stats().quanta);

    let cycle_indices: Vec<u64> = events
        .iter()
        .filter_map(|e| match e {
            Event::CycleEnd { index, .. } => Some(*index),
            _ => None,
        })
        .collect();
    assert_eq!(cycle_indices, vec![0, 1]);

    let measured = events
        .iter()
        .filter(|e| matches!(e, Event::Measured { .. }))
        .count() as u64;
    assert_eq!(measured, engine.stats().measurements);
    assert!(events.iter().any(|e| matches!(
        e,
        Event::SignalSent {
            delivered: true,
            ..
        }
    )));

    // Within each quantum: measurements, then the cycle boundary (if
    // any), then signal deliveries.
    for quantum in events.split(|e| matches!(e, Event::QuantumStart { .. })) {
        let rank = |e: &Event<u32>| match e {
            Event::Measured { .. } => 0,
            Event::CycleEnd { .. } => 1,
            Event::SignalSent { .. } => 2,
            _ => 3,
        };
        let ranks: Vec<_> = quantum.iter().map(rank).filter(|&r| r < 3).collect();
        assert!(
            ranks.windows(2).all(|w| w[0] <= w[1]),
            "out-of-order events within a quantum: {quantum:?}"
        );
    }
}

/// §4.2: when the timer fires late (or deliveries coalesce) the next
/// invocation sees a multi-quantum gap. The engine must count it as an
/// overrun, emit the event, and — because consumption is charged from
/// cumulative readings — debit the whole gap against the runner's
/// allowance, not just one quantum.
#[test]
fn late_timer_counts_overrun_and_charges_full_gap() {
    let q = Nanos::from_millis(10);
    let cfg = AlpsConfig::new(q).with_lazy_measurement(false);
    let mut engine: Engine<u32> = Engine::new(cfg, Instrumentation::Measured);
    let mut sub = MockSubstrate::default();
    sub.add(1);
    sub.add(2);
    // Shares 6:2 → cycle = 80ms; A's per-cycle allowance is 6 quanta, so
    // nothing ends the cycle during the skip.
    let a = engine.add_member(1, 6, Nanos::ZERO);
    let _b = engine.add_member(2, 2, Nanos::ZERO);

    let mut sink = RecordingSink::new();
    // Quantum 1 (t=10ms): cycle starts, A and B resumed; nobody has run
    // yet so no allowance is spent. Only A's consumption is scripted — B
    // stays idle so the cycle cannot end on total consumption mid-test.
    sub.now += q;
    engine.run_quantum(&mut sub, &mut sink).unwrap();
    assert_eq!(engine.stats().overruns, 0);
    // Quantum 2 (t=20ms): on time; A ran one quantum.
    sub.now += q;
    sub.cpu.insert(1, q);
    engine.run_quantum(&mut sub, &mut sink).unwrap();
    assert_eq!(engine.stats().overruns, 0);
    let before = engine.allowance(a).expect("a is live");

    // The timer now arrives 30ms late: a 3-quantum gap while A kept
    // running the whole time.
    sub.now += q * 3;
    sub.cpu.insert(1, q * 4);
    engine.run_quantum(&mut sub, &mut sink).unwrap();

    assert_eq!(engine.stats().overruns, 1);
    let overruns: Vec<_> = sink
        .events
        .iter()
        .filter_map(|e| match e {
            Event::Overrun { gap, .. } => Some(*gap),
            _ => None,
        })
        .collect();
    assert_eq!(overruns, vec![q * 3]);

    let after = engine.allowance(a).expect("a is live");
    assert!(
        (before - after - 3.0).abs() < 1e-9,
        "the full 3-quantum gap must be charged: {before} -> {after}"
    );
}

/// `adjust_share` is an observable `set_share`: the change lands in the
/// scheduler, the counter, and the event stream — and a no-op adjustment
/// (same share) leaves all three untouched, so a disabled or converged
/// SLO controller cannot perturb byte-compared stats.
#[test]
fn adjust_share_counts_and_narrates() {
    let cfg = AlpsConfig::new(Nanos::from_millis(10));
    let mut engine: Engine<u32> = Engine::new(cfg, Instrumentation::Measured);
    let mut sub = MockSubstrate::default();
    sub.add(1);
    sub.add(2);
    let a = engine.add_member(1, 4, Nanos::ZERO);
    let b = engine.add_member(2, 4, Nanos::ZERO);

    let mut sink = RecordingSink::new();
    engine.adjust_share(a, 6, &mut sink).unwrap();
    assert_eq!(engine.share(a), Some(6));
    assert_eq!(engine.stats().share_adjustments, 1);
    assert_eq!(
        sink.events,
        vec![Event::ShareChanged {
            id: a,
            old: 4,
            new: 6
        }]
    );

    // No-op: same share, nothing counted, nothing emitted.
    engine.adjust_share(b, 4, &mut sink).unwrap();
    assert_eq!(engine.stats().share_adjustments, 1);
    assert_eq!(sink.events.len(), 1);

    // A stale id is an error, not a panic.
    let events_before = sink.events.len();
    engine.remove_principal(a);
    assert!(engine.adjust_share(a, 9, &mut sink).is_err());
    assert_eq!(sink.events.len(), events_before);
}
