//! [`AlpsConfig`] and [`IoPolicy`] are part of the persisted experiment
//! surface (bench reports, repro manifests): every field and every policy
//! variant must survive a JSON round trip unchanged.

use alps_core::prelude::*;
use alps_core::IoPolicy;

#[test]
fn io_policy_round_trips_every_variant() {
    for policy in [
        IoPolicy::OneQuantumPenalty,
        IoPolicy::NoPenalty,
        IoPolicy::ForfeitAllowance,
    ] {
        let json = serde_json::to_string(&policy).expect("serialize");
        let back: IoPolicy = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(policy, back, "via {json}");
    }
}

#[test]
fn alps_config_round_trips_all_fields() {
    for policy in [
        IoPolicy::OneQuantumPenalty,
        IoPolicy::NoPenalty,
        IoPolicy::ForfeitAllowance,
    ] {
        for lazy in [false, true] {
            for cycles in [false, true] {
                let cfg = AlpsConfig::new(Nanos::from_millis(40))
                    .with_io_policy(policy)
                    .with_lazy_measurement(lazy)
                    .with_cycle_log(cycles);
                let json = serde_json::to_string(&cfg).expect("serialize");
                let back: AlpsConfig = serde_json::from_str(&json).expect("deserialize");
                assert_eq!(cfg, back, "via {json}");
            }
        }
    }
}

#[test]
fn default_config_survives_with_quantum_builder() {
    let cfg = AlpsConfig::default().with_quantum(Nanos::from_millis(100));
    assert_eq!(cfg.quantum, Nanos::from_millis(100));
    let back: AlpsConfig = serde_json::from_str(&serde_json::to_string(&cfg).unwrap()).unwrap();
    assert_eq!(cfg, back);
}
