//! Property tests for [`FakeCgroupFs`] usage accounting.
//!
//! The fake's `advance()` is an exact integer water-filling of CPU
//! capacity across runnable leaves, and its books must balance to the
//! nanosecond no matter what the control plane does in between: weight
//! rewrites, cap rewrites, freezes, kills, attaches, leaf removal. The
//! conservation identity is
//!
//! ```text
//! Σ live-leaf usage + retired + idle == horizon × cpus + charged
//! ```
//!
//! where `retired` is usage carried by removed leaves, `idle` is capacity
//! no runnable leaf could absorb, and `charged` is scripted accrual
//! injected outside `advance()` (the differential harness's mechanism).

use alps_core::Nanos;
use alps_os::cgroup::{CgroupFs, CpuMax, FakeCgroupFs, CPU_MAX_PERIOD};
use proptest::prelude::*;

/// One control-plane action against the fake, generated arbitrarily.
#[derive(Debug, Clone)]
enum Action {
    Advance(u64),
    Charge(u8, u64),
    Weight(u8, u64),
    Cap(u8, u64),
    Uncap(u8),
    Freeze(u8, bool),
    Kill(u8),
    Remove(u8),
    Spawn,
}

fn action() -> impl Strategy<Value = Action> {
    prop_oneof![
        (0u64..3_000_000_000).prop_map(Action::Advance),
        (any::<u8>(), 0u64..500_000_000).prop_map(|(g, n)| Action::Charge(g, n)),
        (any::<u8>(), 0u64..20_000).prop_map(|(g, w)| Action::Weight(g, w)),
        (any::<u8>(), 0u64..200_000_000).prop_map(|(g, q)| Action::Cap(g, q)),
        any::<u8>().prop_map(Action::Uncap),
        (any::<u8>(), any::<bool>()).prop_map(|(g, f)| Action::Freeze(g, f)),
        any::<u8>().prop_map(Action::Kill),
        any::<u8>().prop_map(Action::Remove),
        Just(Action::Spawn),
    ]
}

/// Apply `actions` to a fresh fake with `groups` initial leaves on `cpus`
/// CPUs, checking conservation after every step.
fn check(cpus: u32, groups: u8, actions: Vec<Action>) {
    let mut fs = FakeCgroupFs::new(cpus);
    let mut names: Vec<String> = Vec::new();
    let mut next_pid = 1_000_i32;
    let mut spawn = |fs: &mut FakeCgroupFs, names: &mut Vec<String>| {
        let pid = next_pid;
        next_pid += 1;
        let name = format!("m{pid}");
        fs.create(&name).expect("mkdir on the fake");
        fs.attach(&name, pid).expect("attach fresh pid");
        names.push(name);
    };
    for _ in 0..groups.clamp(1, 8) {
        spawn(&mut fs, &mut names);
    }
    let pick = |names: &[String], g: u8| -> Option<String> {
        (!names.is_empty()).then(|| names[g as usize % names.len()].clone())
    };
    for a in actions {
        match a {
            Action::Advance(dt) => fs.advance(Nanos(dt)),
            Action::Charge(g, n) => {
                if let Some(name) = pick(&names, g) {
                    let _ = fs.charge(&name, Nanos(n));
                }
            }
            Action::Weight(g, w) => {
                if let Some(name) = pick(&names, g) {
                    let _ = fs.write_weight(&name, w.max(1));
                }
            }
            Action::Cap(g, quota) => {
                if let Some(name) = pick(&names, g) {
                    let _ = fs.write_max(
                        &name,
                        CpuMax {
                            quota: Some(Nanos(quota)),
                            period: CPU_MAX_PERIOD,
                        },
                    );
                }
            }
            Action::Uncap(g) => {
                if let Some(name) = pick(&names, g) {
                    let _ = fs.write_max(&name, CpuMax::open());
                }
            }
            Action::Freeze(g, frozen) => {
                if let Some(name) = pick(&names, g) {
                    let _ = fs.write_freeze(&name, frozen);
                }
            }
            Action::Kill(g) => {
                if let Some(name) = pick(&names, g) {
                    if let Some(pid) = fs.group(&name).and_then(|gr| gr.pid) {
                        fs.kill_pid(pid);
                    }
                }
            }
            Action::Remove(g) => {
                if names.len() > 1 {
                    if let Some(name) = pick(&names, g) {
                        fs.remove(&name).expect("rmdir on the fake");
                        names.retain(|n| *n != name);
                    }
                }
            }
            Action::Spawn => {
                if names.len() < 16 {
                    spawn(&mut fs, &mut names);
                }
            }
        }
        let books = fs
            .total_usage()
            .saturating_add(fs.retired())
            .saturating_add(fs.idle());
        let capacity = Nanos(fs.horizon().0 * u64::from(fs.cpus())).saturating_add(fs.charged());
        assert_eq!(
            books, capacity,
            "conservation broken after {a:?}: usage+retired+idle = {books:?}, \
             horizon×cpus+charged = {capacity:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Uniprocessor accounting conserves time under arbitrary churn.
    #[test]
    fn conservation_on_one_cpu(groups in 1u8..8, actions in prop::collection::vec(action(), 1..60)) {
        check(1, groups, actions);
    }

    /// SMP accounting conserves time: idle capacity appears whenever
    /// runnable leaves cannot absorb all CPUs.
    #[test]
    fn conservation_on_smp(cpus in 2u32..8, groups in 1u8..8, actions in prop::collection::vec(action(), 1..60)) {
        check(cpus, groups, actions);
    }

    /// Hard caps bound what a leaf can absorb: a capped leaf never accrues
    /// more than quota × (horizon / period) via `advance`, regardless of
    /// competition.
    #[test]
    fn caps_bound_accrual(quota in 1_000_000u64..50_000_000, steps in 1usize..30) {
        let mut fs = FakeCgroupFs::new(1);
        fs.create("capped").unwrap();
        fs.attach("capped", 1).unwrap();
        fs.write_max("capped", CpuMax { quota: Some(Nanos(quota)), period: CPU_MAX_PERIOD }).unwrap();
        for _ in 0..steps {
            fs.advance(Nanos(CPU_MAX_PERIOD.0));
        }
        let ceiling = Nanos(quota * steps as u64);
        prop_assert!(
            fs.group("capped").unwrap().usage <= ceiling,
            "capped leaf exceeded its quota: {:?} > {:?}",
            fs.group("capped").unwrap().usage,
            ceiling
        );
    }

    /// Weighted competition between two always-runnable leaves splits CPU
    /// in weight proportion, exactly (integer water-filling has no
    /// rounding drift beyond the final nanosecond remainder).
    #[test]
    fn weights_split_proportionally(wa in 1u64..10_000, wb in 1u64..10_000) {
        let mut fs = FakeCgroupFs::new(1);
        for (name, pid, w) in [("a", 1, wa), ("b", 2, wb)] {
            fs.create(name).unwrap();
            fs.attach(name, pid).unwrap();
            fs.write_weight(name, w).unwrap();
        }
        let horizon = Nanos(1_000_000_000);
        fs.advance(horizon);
        let ua = fs.group("a").unwrap().usage.0 as i128;
        let ub = fs.group("b").unwrap().usage.0 as i128;
        prop_assert_eq!(ua + ub, horizon.0 as i128, "busy CPU left idle time");
        // |ua·wb − ub·wa| ≤ (wa+wb): the remainder nanoseconds are the
        // only deviation from the exact ratio.
        let skew = (ua * wb as i128 - ub * wa as i128).abs();
        let bound = (wa + wb) as i128 * (wa + wb) as i128;
        prop_assert!(skew <= bound, "split off-ratio: skew {} > bound {}", skew, bound);
    }
}
