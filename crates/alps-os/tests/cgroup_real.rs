//! Live cgroup-v2 integration — runs only on a host that delegates a
//! writable subtree to this process.
//!
//! Gated twice: `#[ignore]` keeps it off every default test run, and the
//! body exits early (cleanly, as a pass) unless `ALPS_REAL_CGROUP=1` is
//! set, so even an explicit `--ignored` sweep skips it on an unprivileged
//! CI runner. To exercise it for real:
//!
//! ```text
//! ALPS_REAL_CGROUP=1 cargo test -p alps-os --test cgroup_real -- --ignored
//! ```

use std::time::Duration;

use alps_core::{Nanos, Signal, Substrate};
use alps_os::cgroup::{ActuatorMode, CgroupSubstrate, RealCgroupFs};
use alps_os::{ExitWatcher, OsError, SpinnerPool};

fn gated() -> bool {
    std::env::var("ALPS_REAL_CGROUP").as_deref() == Ok("1")
}

/// Discovery either yields a writable delegated subtree or reports
/// precisely why the host cannot offer one; it must never panic.
#[test]
#[ignore = "live cgroup: needs a delegated cgroup-v2 subtree (set ALPS_REAL_CGROUP=1)"]
fn discovery_succeeds_or_reports_unsupported() {
    if !gated() {
        eprintln!("skipping: ALPS_REAL_CGROUP is not set");
        return;
    }
    match RealCgroupFs::discover() {
        Ok(mut fs) => {
            let root = fs.root().to_path_buf();
            // The layout contract: a process-free ALPS root that
            // distributes cpu to its children, with the caller
            // evacuated into the parked leaf.
            assert!(root.join("parked").is_dir(), "parked leaf missing");
            let ctl = std::fs::read_to_string(root.join("cgroup.subtree_control"))
                .expect("root subtree_control readable");
            assert!(
                ctl.split_ascii_whitespace().any(|c| c == "cpu"),
                "ALPS root must distribute cpu to member leaves, got {ctl:?}"
            );
            let procs = std::fs::read_to_string(root.join("cgroup.procs"))
                .expect("root cgroup.procs readable");
            assert!(
                procs.trim().is_empty(),
                "ALPS root must stay process-free, got {procs:?}"
            );
            let own = std::fs::read_to_string("/proc/self/cgroup").expect("own cgroup readable");
            assert!(
                own.lines()
                    .any(|l| l.starts_with("0::") && l.trim_end().ends_with("/parked")),
                "discovery must evacuate the caller into parked, got {own:?}"
            );
            fs.remove_root().expect("fresh subtree removes cleanly");
            assert!(!root.exists(), "remove_root left the subtree behind");
        }
        Err(OsError::Unsupported(why)) => {
            panic!("ALPS_REAL_CGROUP=1 but the host offers no delegated subtree: {why}")
        }
        Err(e) => panic!("discovery failed with a non-capability error: {e}"),
    }
}

/// The full weights path against a real kernel: enroll a spinner, verify
/// the leaf exists with our weight in it, watch its exit through pidfd,
/// and release.
#[test]
#[ignore = "live cgroup: needs a delegated cgroup-v2 subtree (set ALPS_REAL_CGROUP=1)"]
fn weight_writes_land_and_pidfd_observes_the_exit() {
    if !gated() {
        eprintln!("skipping: ALPS_REAL_CGROUP is not set");
        return;
    }
    let fs = RealCgroupFs::discover().expect("ALPS_REAL_CGROUP=1 requires delegation");
    let root = fs.root().to_path_buf();
    let mut sub = CgroupSubstrate::new(fs, ActuatorMode::Weights);
    let pool = SpinnerPool::spawn(1).expect("spawn a spinner");
    let pid = pool.pids()[0];

    sub.enroll(pid, 300).expect("enroll into a fresh leaf");
    let leaf = root.join(format!("m{pid}"));
    // cpu.weight only exists because the root's subtree_control
    // distributes the cpu controller to its leaves.
    let weight = std::fs::read_to_string(leaf.join("cpu.weight")).expect("cpu.weight readable");
    assert_eq!(weight.trim(), "300", "share did not land in cpu.weight");
    let procs = std::fs::read_to_string(leaf.join("cgroup.procs")).expect("cgroup.procs readable");
    assert!(
        procs.lines().any(|l| l.trim() == pid.to_string()),
        "pid {pid} not in {leaf:?}/cgroup.procs: {procs:?}"
    );

    // Actuate both intents; cpu.stat must be readable through the trait.
    assert!(sub.deliver(pid, Signal::Stop).expect("stop intent"));
    assert!(sub.deliver(pid, Signal::Continue).expect("continue intent"));
    let obs = sub
        .read(pid)
        .expect("cpu.stat read")
        .expect("live member observable");
    assert!(obs.total_cpu >= Nanos::ZERO.saturating_add(Nanos(0)));

    // Exit notification arrives via pidfd, not polling.
    let mut watcher = ExitWatcher::new().expect("pidfd + epoll on this kernel");
    watcher.watch(pid).expect("watch a live pid");
    alps_os::signal::sigkill(pid).expect("kill the spinner");
    let mut exited = Vec::new();
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while exited.is_empty() && std::time::Instant::now() < deadline {
        watcher.wait_until(
            alps_os::clock::now().saturating_add(Nanos(50_000_000)),
            &mut exited,
        );
    }
    assert_eq!(exited, vec![pid], "pidfd never reported the exit");
    drop(pool); // reap the zombie

    sub.release(pid).expect("release tears the leaf down");
    assert!(!leaf.exists(), "leaf survived release: {leaf:?}");
    sub.fs_mut().remove_root().expect("subtree removes cleanly");
}
