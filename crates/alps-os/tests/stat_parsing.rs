//! Property tests for the `/proc/<pid>/stat` parser: arbitrary input never
//! panics, and well-formed lines round-trip the fields ALPS reads.

use alps_os::proc::parse_stat;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The parser is total: any string returns Ok or Err, never panics.
    #[test]
    fn parser_never_panics(input in ".{0,200}") {
        let _ = parse_stat(1, &input, 10_000_000);
    }

    /// Well-formed stat lines round-trip state/utime/stime, whatever the
    /// comm field contains (spaces, parens, unicode).
    #[test]
    fn well_formed_lines_round_trip(
        comm in "[a-zA-Z ()<>._-]{1,32}",
        state in prop::sample::select(vec!['R', 'S', 'D', 'T', 'Z', 'I', 'X']),
        utime in 0u64..1_000_000,
        stime in 0u64..1_000_000,
        trailing in 0usize..20,
    ) {
        let tail: String = (0..trailing).map(|i| format!(" {i}")).collect();
        let line = format!(
            "1234 ({comm}) {state} 1 2 3 4 -5 6 7 8 9 10 {utime} {stime} 0 0 20 0 1 0 0 0 0{tail}"
        );
        let s = parse_stat(1234, &line, 10_000_000).expect("well-formed");
        prop_assert_eq!(s.state, state);
        prop_assert_eq!(s.cpu_time.as_nanos(), (utime + stime) * 10_000_000);
        prop_assert_eq!(s.blocked(), matches!(state, 'S' | 'D'));
        prop_assert_eq!(s.dead(), matches!(state, 'Z' | 'X'));
    }

    /// Truncated well-formed lines fail cleanly rather than mis-parsing.
    #[test]
    fn truncation_fails_cleanly(cut in 0usize..40) {
        let full = "1 (x) R 1 2 3 4 -5 6 7 8 9 10 11 12 0 0 20 0 1 0 0 0 0";
        let line = &full[..cut.min(full.len())];
        // Either a clean error or (with enough fields) a successful parse;
        // never a panic, never bogus negatives.
        if let Ok(s) = parse_stat(1, line, 1) {
            prop_assert_eq!(s.pid, 1);
        }
    }
}
