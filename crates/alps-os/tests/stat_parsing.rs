//! Property tests for the `/proc/<pid>/stat` parser: arbitrary input never
//! panics, and well-formed lines round-trip the fields ALPS reads.

use alps_os::proc::parse_stat;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The parser is total: any string returns Ok or Err, never panics.
    #[test]
    fn parser_never_panics(input in ".{0,200}") {
        let _ = parse_stat(1, &input, 10_000_000);
    }

    /// Well-formed stat lines round-trip state/utime/stime, whatever the
    /// comm field contains (spaces, parens, unicode).
    #[test]
    fn well_formed_lines_round_trip(
        comm in "[a-zA-Z ()<>._-]{1,32}",
        state in prop::sample::select(vec!['R', 'S', 'D', 'T', 'Z', 'I', 'X']),
        utime in 0u64..1_000_000,
        stime in 0u64..1_000_000,
        trailing in 0usize..20,
    ) {
        let tail: String = (0..trailing).map(|i| format!(" {i}")).collect();
        let line = format!(
            "1234 ({comm}) {state} 1 2 3 4 -5 6 7 8 9 10 {utime} {stime} 0 0 20 0 1 0 0 0 0{tail}"
        );
        let s = parse_stat(1234, &line, 10_000_000).expect("well-formed");
        prop_assert_eq!(s.state, state);
        prop_assert_eq!(s.cpu_time.as_nanos(), (utime + stime) * 10_000_000);
        prop_assert_eq!(s.blocked(), matches!(state, 'S' | 'D'));
        prop_assert_eq!(s.dead(), matches!(state, 'Z' | 'X'));
    }

    /// Truncated well-formed lines fail cleanly rather than mis-parsing.
    #[test]
    fn truncation_fails_cleanly(cut in 0usize..40) {
        let full = "1 (x) R 1 2 3 4 -5 6 7 8 9 10 11 12 0 0 20 0 1 0 0 0 0";
        let line = &full[..cut.min(full.len())];
        // Either a clean error or (with enough fields) a successful parse;
        // never a panic, never bogus negatives.
        if let Ok(s) = parse_stat(1, line, 1) {
            prop_assert_eq!(s.pid, 1);
        }
    }

    /// Dropping whole fields from the tail (not just truncating bytes)
    /// either parses with the fields intact or errors cleanly.
    #[test]
    fn missing_fields_fail_cleanly(keep in 0usize..25) {
        let fields = ["R", "1", "2", "3", "4", "-5", "6", "7", "8", "9", "10",
                      "11", "12", "0", "0", "20", "0", "1", "0", "0", "0", "0"];
        let line = format!("7 (x) {}", fields[..keep.min(fields.len())].join(" "));
        match parse_stat(7, &line, 10_000_000) {
            // 13 post-comm fields (state through stime) are the minimum.
            Ok(s) => {
                prop_assert!(keep >= 13);
                prop_assert_eq!(s.state, 'R');
                prop_assert_eq!(s.cpu_time.as_nanos(), 23 * 10_000_000);
            }
            Err(_) => prop_assert!(keep < 13),
        }
    }

    /// An adversarial comm full of `)`/`(`/spaces — a process really can
    /// be named `) R 0 0 0` — must not shift the field anchor: the parse
    /// keys on the *last* closing paren.
    #[test]
    fn hostile_comm_never_confuses_fields(
        comm in "[() RSDZT0-9]{1,48}",
        utime in 0u64..1_000_000,
        stime in 0u64..1_000_000,
    ) {
        let line = format!(
            "42 ({comm}) S 1 2 3 4 -5 6 7 8 9 10 {utime} {stime} 0 0 20 0 1 0 0 0 0"
        );
        let s = parse_stat(42, &line, 1_000_000).expect("comm is quoted by the last paren");
        prop_assert_eq!(s.state, 'S');
        prop_assert_eq!(s.cpu_time.as_nanos(), (utime + stime) * 1_000_000);
    }

    /// Huge tick counts (up to u64::MAX) saturate instead of overflowing —
    /// a hostile or corrupt stat line must clamp, not panic.
    #[test]
    fn huge_values_saturate(
        utime in prop::sample::select(vec![0u64, 1, u64::MAX / 2, u64::MAX - 1, u64::MAX]),
        stime in prop::sample::select(vec![0u64, 1, u64::MAX / 2, u64::MAX - 1, u64::MAX]),
        tick in prop::sample::select(vec![1u64, 10_000_000, u64::MAX]),
    ) {
        let line = format!(
            "9 (big) R 1 2 3 4 -5 6 7 8 9 10 {utime} {stime} 0 0 20 0 1 0 0 0 0"
        );
        let s = parse_stat(9, &line, tick).expect("huge values still parse");
        prop_assert_eq!(
            s.cpu_time.as_nanos(),
            utime.saturating_add(stime).saturating_mul(tick)
        );
    }

    /// Arbitrary token soup after a valid comm never panics.
    #[test]
    fn post_comm_garbage_never_panics(
        tokens in prop::collection::vec("[a-zA-Z0-9()+.-]{1,8}", 0..30),
    ) {
        let line = format!("3 (x) {}", tokens.join(" "));
        let _ = parse_stat(3, &line, 10_000_000);
    }
}
