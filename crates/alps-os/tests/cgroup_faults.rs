//! Deterministic cgroupfs fault injection against the hardened engine.
//!
//! The real failure modes of a cgroup-v2 actuator are filesystem errors:
//! a read-only delegated subtree (`EROFS`), a leaf directory racing with
//! removal (`ENOENT`), a `cgroup.procs` entry gone stale because its sole
//! member exited. These tests script each of them through
//! [`FakeCgroupFs::fail_next`] and prove the engine's hardening machinery
//! — fault tallies, backed-off retries, periodic re-assertion, and
//! quarantine after repeated strikes — behaves over a [`CgroupSubstrate`]
//! exactly as it does over signals, while the default `Propagate` policy
//! still surfaces every error to the caller.

use std::fmt::Write as _;

use alps_core::{
    AlpsConfig, Engine, EngineStats, FaultPolicy, HardenConfig, Instrumentation, Nanos, NullSink,
    ProcId,
};
use alps_os::cgroup::{ActuatorMode, CgroupFs, CgroupSubstrate, FakeCgroupFs, FakeOp};
use alps_os::OsError;

const Q: Nanos = Nanos(10_000_000);

struct Rig {
    engine: Engine<i32>,
    sub: CgroupSubstrate<FakeCgroupFs>,
    ids: Vec<(ProcId, i32)>,
}

/// A hardened (or propagating) engine over six enrolled members with 1:2:3
/// shares on a single-CPU fake, ready to drive quanta.
fn rig(mode: ActuatorMode, policy: FaultPolicy) -> Rig {
    let cfg = AlpsConfig::default().with_quantum(Q);
    let mut engine: Engine<i32> = Engine::new(cfg, Instrumentation::Measured)
        .with_auto_reap(true)
        .with_fault_policy(policy);
    let mut sub = CgroupSubstrate::new(FakeCgroupFs::new(1), mode);
    let mut ids = Vec::new();
    for pid in 100..106 {
        sub.enroll(pid, u64::from(pid as u32 % 3) + 1)
            .expect("fault-free enroll");
        let id = engine.add_member(pid, u64::from(pid as u32 % 3) + 1, Nanos::ZERO);
        ids.push((id, pid));
    }
    Rig { engine, sub, ids }
}

/// Advance one quantum: tick the fake clock, burn CPU on every leaf that
/// is allowed to run, and run the engine loop.
fn quantum(r: &mut Rig, group: &mut String) -> Result<(), OsError> {
    r.sub.fs_mut().tick(Q);
    for &(_, pid) in &r.ids {
        group.clear();
        let _ = write!(group, "m{pid}");
        let _ = r.sub.fs_mut().charge(group, Nanos(Q.0 / 2));
    }
    r.engine.run_quantum(&mut r.sub, &mut NullSink).map(|_| ())
}

fn drive(r: &mut Rig, quanta: u64) -> EngineStats {
    let mut group = String::new();
    for _ in 0..quanta {
        quantum(r, &mut group).expect("hardened loop must not propagate");
    }
    r.engine.stats()
}

#[test]
fn erofs_on_weight_writes_is_tolerated_and_retried() {
    let mut r = rig(
        ActuatorMode::Weights,
        FaultPolicy::Harden(HardenConfig {
            max_strikes: 10,
            reassert_every: 4,
        }),
    );
    // A burst of read-only-filesystem failures on `cpu.weight` writes:
    // wide enough to hit several deliveries, short enough that no member
    // strikes out.
    r.sub.fs_mut().fail_next(FakeOp::Weight, libc::EROFS, 6);
    let stats = drive(&mut r, 200);
    assert_eq!(stats.quanta, 200, "loop died: {stats:?}");
    assert!(stats.signal_faults > 0, "no faults tallied: {stats:?}");
    assert!(stats.retries > 0, "no retries: {stats:?}");
    assert_eq!(
        stats.quarantined, 0,
        "transient fault quarantined: {stats:?}"
    );
    // All six members are still scheduled.
    assert_eq!(
        r.ids
            .iter()
            .filter(|&&(id, _)| r.engine.share(id).is_some())
            .count(),
        6
    );
}

#[test]
fn persistent_weight_write_failure_quarantines_the_member() {
    let mut r = rig(
        ActuatorMode::Weights,
        FaultPolicy::Harden(HardenConfig {
            max_strikes: 3,
            reassert_every: 8,
        }),
    );
    // The subtree stays read-only forever: every weight write fails, so
    // members strike out and must be quarantined rather than wedging the
    // loop.
    r.sub
        .fs_mut()
        .fail_next(FakeOp::Weight, libc::EROFS, u32::MAX);
    let stats = drive(&mut r, 300);
    assert_eq!(stats.quanta, 300, "loop died: {stats:?}");
    assert!(stats.quarantined > 0, "nobody quarantined: {stats:?}");
    assert!(
        r.ids
            .iter()
            .filter(|&&(id, _)| r.engine.share(id).is_some())
            .count()
            < 6,
        "quarantine removed nobody from scheduling"
    );
}

#[test]
fn enoent_on_freeze_writes_is_tolerated_in_signals_mode() {
    let mut r = rig(
        ActuatorMode::Signals,
        FaultPolicy::Harden(HardenConfig::default()),
    );
    // A leaf racing with removal: freezer writes bounce with ENOENT for a
    // while, then recover.
    r.sub.fs_mut().fail_next(FakeOp::Freeze, libc::ENOENT, 4);
    let stats = drive(&mut r, 200);
    assert_eq!(stats.quanta, 200, "loop died: {stats:?}");
    assert!(stats.signal_faults > 0, "no faults tallied: {stats:?}");
}

#[test]
fn cap_write_failures_are_tolerated_in_caps_mode() {
    let mut r = rig(
        ActuatorMode::Caps,
        FaultPolicy::Harden(HardenConfig::default()),
    );
    r.sub.fs_mut().fail_next(FakeOp::Max, libc::EACCES, 4);
    let stats = drive(&mut r, 200);
    assert_eq!(stats.quanta, 200, "loop died: {stats:?}");
    assert!(stats.signal_faults > 0, "no faults tallied: {stats:?}");
}

#[test]
fn observe_failures_count_as_read_faults() {
    let mut r = rig(
        ActuatorMode::Weights,
        FaultPolicy::Harden(HardenConfig::default()),
    );
    // Two failures stay under the default strike limit even if both land
    // on the same member, so nobody is quarantined.
    r.sub.fs_mut().fail_next(FakeOp::Observe, libc::EACCES, 2);
    let stats = drive(&mut r, 200);
    assert_eq!(stats.quanta, 200, "loop died: {stats:?}");
    assert!(stats.read_faults > 0, "no read faults tallied: {stats:?}");
    assert_eq!(
        stats.quarantined, 0,
        "transient reads quarantined: {stats:?}"
    );
}

#[test]
fn stale_cgroup_procs_reaps_like_a_dead_pid() {
    // A leaf whose sole member exited bounces actuation with
    // `NoSuchProcess` and reads as gone — the engine's ordinary reap path
    // must retire the principal exactly as it does when kill(2) races an
    // exit, with no hardening required.
    let mut r = rig(ActuatorMode::Weights, FaultPolicy::Propagate);
    let (id, pid) = r.ids[2];
    r.sub.fs_mut().kill_pid(pid);
    let stats = drive(&mut r, 20);
    assert_eq!(stats.quanta, 20);
    assert_eq!(stats.reaped, 1, "stale leaf not reaped: {stats:?}");
    assert!(
        r.engine.share(id).is_none(),
        "reaped principal still scheduled"
    );
    // The direct substrate view of the same fact:
    assert!(matches!(
        r.sub.fs_mut().write_weight(&format!("m{pid}"), 50),
        Err(OsError::NoSuchProcess(p)) if p == pid
    ));
}

#[test]
fn propagating_engine_surfaces_cgroupfs_errors() {
    let mut r = rig(ActuatorMode::Weights, FaultPolicy::Propagate);
    let mut group = String::new();
    quantum(&mut r, &mut group).expect("fault-free quantum succeeds");
    r.sub
        .fs_mut()
        .fail_next(FakeOp::Weight, libc::EROFS, u32::MAX);
    let mut saw_err = false;
    for _ in 0..20 {
        if let Err(e) = quantum(&mut r, &mut group) {
            assert!(
                matches!(e, OsError::Sys { errno, .. } if errno == libc::EROFS),
                "wrong error: {e}"
            );
            saw_err = true;
            break;
        }
    }
    assert!(
        saw_err,
        "EROFS never propagated under FaultPolicy::Propagate"
    );
}

#[test]
fn faulty_cgroup_runs_replay_exactly() {
    let run = |seed_faults: bool| {
        let mut r = rig(
            ActuatorMode::Weights,
            FaultPolicy::Harden(HardenConfig::default()),
        );
        if seed_faults {
            r.sub.fs_mut().fail_next(FakeOp::Weight, libc::EROFS, 5);
            r.sub.fs_mut().fail_next(FakeOp::Observe, libc::EACCES, 3);
        }
        drive(&mut r, 150)
    };
    assert_eq!(run(true), run(true), "faulty runs are not deterministic");
    assert_ne!(
        run(true).signal_faults,
        run(false).signal_faults,
        "fault injection left no trace"
    );
}
