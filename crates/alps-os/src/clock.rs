//! Monotonic clock and absolute sleeps for the quantum loop.
//!
//! The paper's ALPS used a periodic interval timer. An absolute-deadline
//! sleep (`clock_nanosleep(CLOCK_MONOTONIC, TIMER_ABSTIME)`) gives the same
//! drift-free cadence with simpler signal handling: if an invocation runs
//! long, the next sleep simply returns immediately — the analogue of a
//! coalesced pending SIGALRM.

use alps_core::Nanos;

/// Current monotonic time.
pub fn now() -> Nanos {
    let mut ts = libc::timespec {
        tv_sec: 0,
        tv_nsec: 0,
    };
    // SAFETY: ts is a valid out-pointer for clock_gettime.
    let rc = unsafe { libc::clock_gettime(libc::CLOCK_MONOTONIC, &mut ts) };
    debug_assert_eq!(rc, 0);
    Nanos(ts.tv_sec as u64 * 1_000_000_000 + ts.tv_nsec as u64)
}

/// Sleep until the given monotonic instant (no-op if it already passed).
pub fn sleep_until(deadline: Nanos) {
    let ts = libc::timespec {
        tv_sec: (deadline.0 / 1_000_000_000) as libc::time_t,
        tv_nsec: (deadline.0 % 1_000_000_000) as libc::c_long,
    };
    loop {
        // SAFETY: ts is a valid timespec; remain pointer is null, allowed
        // for TIMER_ABSTIME.
        let rc = unsafe {
            libc::clock_nanosleep(
                libc::CLOCK_MONOTONIC,
                libc::TIMER_ABSTIME,
                &ts,
                std::ptr::null_mut(),
            )
        };
        if rc != libc::EINTR {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic() {
        let a = now();
        let b = now();
        assert!(b >= a);
    }

    #[test]
    fn sleep_until_reaches_deadline() {
        let start = now();
        let deadline = start + Nanos::from_millis(30);
        sleep_until(deadline);
        let end = now();
        assert!(end >= deadline, "woke early: {end} < {deadline}");
        assert!(
            end < deadline + Nanos::from_millis(200),
            "woke far too late: {}ms",
            (end - deadline).as_millis_f64()
        );
    }

    #[test]
    fn past_deadline_returns_immediately() {
        let start = now();
        sleep_until(start.saturating_sub(Nanos::from_secs(1)));
        assert!(now() - start < Nanos::from_millis(50));
    }
}
