//! # alps-os — ALPS on real Linux
//!
//! The working backend: everything the paper's FreeBSD implementation did,
//! on an unmodified Linux kernel with no privileges —
//!
//! * progress sampling via `/proc/<pid>/stat` (cumulative CPU time and the
//!   wait-channel/blocked test of §2.4);
//! * eligible/ineligible group moves via `SIGCONT`/`SIGSTOP`;
//! * a drift-free quantum loop on the monotonic clock with coalescing of
//!   missed boundaries (the pending-signal behavior of §4.2);
//! * per-process supervision ([`Supervisor`]) and per-user/per-group
//!   principals with periodic membership refresh ([`PrincipalSupervisor`],
//!   §5);
//! * live re-measurement of the Table-1 operation costs
//!   ([`probe::probe_table1`]).
//!
//! The per-quantum control loop itself lives in [`alps_core::engine`];
//! this crate implements its [`alps_core::Substrate`] trait over `/proc`
//! and `kill(2)` ([`substrate::OsSubstrate`]) and supplies the sleep
//! cadence, registration surface, and membership refresh around it.
//!
//! ```no_run
//! use alps_core::{AlpsConfig, Nanos};
//! use alps_os::{SpinnerPool, Supervisor};
//! use std::time::Duration;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Give the second child 3x the CPU of the first.
//! let pool = SpinnerPool::spawn(2)?;
//! let mut sup = Supervisor::new(AlpsConfig::new(Nanos::from_millis(20)));
//! sup.add_process(pool.pids()[0], 1)?;
//! sup.add_process(pool.pids()[1], 3)?;
//! sup.run_for(Duration::from_secs(10))?;
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
// This crate is the syscall boundary; unsafe is confined to small,
// commented blocks around libc calls.

pub mod cgroup;
pub mod children;
pub mod clock;
pub mod error;
pub mod pidfd;
pub mod principal;
pub mod probe;
pub mod proc;
pub mod signal;
pub mod substrate;
pub mod supervisor;

pub use cgroup::{ActuatorMode, CgroupFs, CgroupSubstrate, CpuMax, FakeCgroupFs, RealCgroupFs};
pub use children::SpinnerPool;
pub use error::{OsError, Result};
pub use pidfd::{ExitWatcher, PidFd};
pub use principal::{Membership, PrincipalSupervisor};
pub use probe::{probe_table1, Table1Probe};
pub use proc::{pids_of_uid, read_stat, ProcStat};
pub use substrate::OsSubstrate;
pub use supervisor::Supervisor;
