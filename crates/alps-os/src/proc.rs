//! Reading process state from `/proc` — the Linux analogue of the paper's
//! `kvm` reads on FreeBSD.
//!
//! ALPS needs two facts per controlled process (§2.2, §2.4): cumulative
//! CPU time, and whether the process currently sits on a wait channel. On
//! Linux both come from one read of `/proc/<pid>/stat`: fields `utime` +
//! `stime` (in clock ticks) and the one-letter state. The paper's "wait
//! channel" test maps to state `S` (interruptible sleep) or `D`
//! (uninterruptible I/O wait).

use std::fmt::Write as _;
use std::fs;
use std::io::Read as _;

use alps_core::Nanos;

use crate::error::{OsError, Result};

/// Nanoseconds per kernel clock tick (`sysconf(_SC_CLK_TCK)`).
pub fn ns_per_tick() -> u64 {
    // SAFETY: sysconf is async-signal-safe and has no memory preconditions.
    let hz = unsafe { libc::sysconf(libc::_SC_CLK_TCK) };
    let hz = if hz <= 0 { 100 } else { hz as u64 };
    1_000_000_000 / hz
}

/// A parsed `/proc/<pid>/stat` snapshot (the fields ALPS cares about).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProcStat {
    /// The process id.
    pub pid: i32,
    /// One-letter state code (`R`, `S`, `D`, `T`, `Z`, …).
    pub state: char,
    /// Cumulative user + system CPU time.
    pub cpu_time: Nanos,
}

impl ProcStat {
    /// Whether the process is blocked on a wait channel (§2.4's test).
    /// Runnable (`R`) and stopped (`T`) processes are not blocked; sleeping
    /// (`S`) and disk-waiting (`D`) ones are.
    pub fn blocked(&self) -> bool {
        matches!(self.state, 'S' | 'D')
    }

    /// Whether the process is gone or a zombie.
    pub fn dead(&self) -> bool {
        matches!(self.state, 'Z' | 'X' | 'x')
    }
}

/// Parse the contents of a `/proc/<pid>/stat` file.
///
/// The second field (`comm`) may contain spaces and parentheses, so the
/// parse anchors on the *last* `)` as the real field delimiter.
pub fn parse_stat(pid: i32, contents: &str, ns_tick: u64) -> Result<ProcStat> {
    let close = contents.rfind(')').ok_or_else(|| OsError::Parse {
        pid,
        reason: "no closing paren around comm".into(),
    })?;
    let rest = contents[close + 1..].trim_start();
    // After comm: field 3 is state; utime and stime are fields 14 and 15 of
    // the full line, i.e. indices 0, 11 and 12 of `rest`. Walked with the
    // split iterator (no per-parse field vector — this runs once per
    // member per quantum on the supervisor hot path).
    let mut fields = rest.split_ascii_whitespace();
    let too_short = |pid| OsError::Parse {
        pid,
        reason: format!(
            "only {} fields after comm",
            rest.split_ascii_whitespace().count()
        ),
    };
    let state = fields
        .next()
        .ok_or_else(|| too_short(pid))?
        .chars()
        .next()
        .ok_or_else(|| OsError::Parse {
            pid,
            reason: "empty state field".into(),
        })?;
    let utime_field = fields.nth(10).ok_or_else(|| too_short(pid))?;
    let stime_field = fields.next().ok_or_else(|| too_short(pid))?;
    let utime: u64 = utime_field.parse().map_err(|_| OsError::Parse {
        pid,
        reason: format!("bad utime {utime_field:?}"),
    })?;
    let stime: u64 = stime_field.parse().map_err(|_| OsError::Parse {
        pid,
        reason: format!("bad stime {stime_field:?}"),
    })?;
    Ok(ProcStat {
        pid,
        state,
        // Saturate: adversarial stat lines can carry u64::MAX tick counts,
        // which must clamp rather than overflow.
        cpu_time: Nanos(utime.saturating_add(stime).saturating_mul(ns_tick)),
    })
}

/// Read and parse `/proc/<pid>/stat`.
pub fn read_stat(pid: i32, ns_tick: u64) -> Result<ProcStat> {
    read_stat_into(pid, ns_tick, &mut String::new(), &mut String::new())
}

/// [`read_stat`] through caller-owned buffers: `path_buf` receives the
/// formatted `/proc/<pid>/stat` path and `contents` the file body, both
/// cleared first. A supervisor reading N members per quantum reuses the
/// same two buffers for every read, so the steady state allocates
/// nothing (the buffers grow to the longest stat line seen and stay
/// there).
pub fn read_stat_into(
    pid: i32,
    ns_tick: u64,
    path_buf: &mut String,
    contents: &mut String,
) -> Result<ProcStat> {
    path_buf.clear();
    let _ = write!(path_buf, "/proc/{pid}/stat");
    contents.clear();
    let read = fs::File::open(path_buf.as_str()).and_then(|mut f| f.read_to_string(contents));
    match read {
        Ok(_) => parse_stat(pid, contents, ns_tick),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Err(OsError::NoSuchProcess(pid)),
        Err(e) => Err(e.into()),
    }
}

/// List all pids owned by `uid` (the Linux analogue of the paper's
/// `kvm_getprocs(KERN_PROC_UID)` used for §5's per-user principals).
/// Ownership is the *real* uid from `/proc/<pid>/status`.
pub fn pids_of_uid(uid: u32) -> Result<Vec<i32>> {
    let mut pids = Vec::new();
    for entry in fs::read_dir("/proc")? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(pid) = name.to_str().and_then(|s| s.parse::<i32>().ok()) else {
            continue;
        };
        let status = match fs::read_to_string(format!("/proc/{pid}/status")) {
            Ok(s) => s,
            Err(_) => continue, // raced with exit
        };
        let owns = status.lines().any(|l| {
            l.starts_with("Uid:")
                && l.split_ascii_whitespace().nth(1) == Some(uid.to_string().as_str())
        });
        if owns {
            pids.push(pid);
        }
    }
    pids.sort_unstable();
    Ok(pids)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "1234 (cat) R 1 1234 1 0 -1 4194304 106 0 0 0 7 3 0 0 20 0 1 0 384691 2703360 321 18446744073709551615 0 0 0 0 0 0 0 0 0 0 0 0 17 0 0 0 0 0 0 0";

    #[test]
    fn parses_simple_stat() {
        let s = parse_stat(1234, SAMPLE, 10_000_000).unwrap();
        assert_eq!(s.pid, 1234);
        assert_eq!(s.state, 'R');
        // utime 7 + stime 3 ticks at 10ms/tick.
        assert_eq!(s.cpu_time, Nanos::from_millis(100));
        assert!(!s.blocked());
        assert!(!s.dead());
    }

    #[test]
    fn parses_comm_with_spaces_and_parens() {
        let tricky = "99 (weird (name) x) S 1 99 1 0 -1 0 0 0 0 0 42 8 0 0 20 0 1 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 17 0 0 0 0 0 0 0";
        let s = parse_stat(99, tricky, 10_000_000).unwrap();
        assert_eq!(s.state, 'S');
        assert!(s.blocked());
        assert_eq!(s.cpu_time, Nanos::from_millis(500));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_stat(1, "not a stat line", 1).is_err());
        assert!(parse_stat(1, "1 (x) R 1", 1).is_err());
        assert!(parse_stat(1, "1 (x) R a b c d e f g h i j k l m n", 1).is_err());
    }

    #[test]
    fn state_classification() {
        for (st, blocked, dead) in [
            ('R', false, false),
            ('S', true, false),
            ('D', true, false),
            ('T', false, false),
            ('Z', false, true),
        ] {
            let line = format!(
                "5 (x) {st} 1 5 1 0 -1 0 0 0 0 0 1 1 0 0 20 0 1 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 17 0 0 0"
            );
            let s = parse_stat(5, &line, 1_000_000).unwrap();
            assert_eq!(s.blocked(), blocked, "state {st}");
            assert_eq!(s.dead(), dead, "state {st}");
        }
    }

    #[test]
    fn reads_own_stat() {
        let tick = ns_per_tick();
        assert!(tick > 0);
        let me = std::process::id() as i32;
        let s = read_stat(me, tick).unwrap();
        assert_eq!(s.pid, me);
        // The stat line reflects the main thread, which may be sleeping
        // while the test runs on a worker thread.
        assert!(matches!(s.state, 'R' | 'S'), "state {}", s.state);
    }

    #[test]
    fn missing_pid_is_no_such_process() {
        // Pid 0 has no /proc entry in any namespace we run in.
        match read_stat(0, 1) {
            Err(OsError::NoSuchProcess(0)) => {}
            other => panic!("expected NoSuchProcess, got {other:?}"),
        }
    }

    #[test]
    fn lists_own_uid_pids() {
        // SAFETY: getuid has no preconditions.
        let uid = unsafe { libc::getuid() };
        let pids = pids_of_uid(uid).unwrap();
        let me = std::process::id() as i32;
        assert!(pids.contains(&me), "own pid listed for own uid");
    }
}
