//! The ALPS supervisor for real Linux processes.
//!
//! [`Supervisor`] is the paper's ALPS process: an unprivileged loop that
//! wakes once per quantum, reads the progress of the controlled processes
//! that are due for measurement (§2.3), runs the Figure-3 algorithm, and
//! moves processes between the eligible and ineligible groups with
//! `SIGCONT`/`SIGSTOP`. No special priority, no kernel support.
//!
//! ```no_run
//! use alps_core::{AlpsConfig, Nanos};
//! use alps_os::{Supervisor, SpinnerPool};
//! use std::time::Duration;
//!
//! let pool = SpinnerPool::spawn(2).unwrap();
//! let cfg = AlpsConfig::new(Nanos::from_millis(20)).with_cycle_log(true);
//! let mut sup = Supervisor::new(cfg);
//! sup.add_process(pool.pids()[0], 1).unwrap();
//! sup.add_process(pool.pids()[1], 3).unwrap();
//! sup.run_for(Duration::from_secs(5)).unwrap();
//! // pool.pids()[1] received ~3x the CPU of pool.pids()[0].
//! ```

use std::time::Duration;

use alps_core::{
    AlpsConfig, AlpsScheduler, CycleEntry, CycleRecord, Nanos, Observation, ProcId, Transition,
};

use crate::clock;
use crate::error::{OsError, Result};
use crate::proc::{self, ProcStat};
use crate::signal;

/// Counters describing a supervisor's activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SupervisorStats {
    /// Quantum invocations performed.
    pub quanta: u64,
    /// Per-process progress reads performed.
    pub measurements: u64,
    /// Signals sent.
    pub signals: u64,
    /// Controlled processes that exited and were deregistered.
    pub reaped: u64,
    /// Invocations that started late by more than a full quantum
    /// (the coalesced-timer case of §4.2).
    pub overruns: u64,
}

/// A user-level proportional-share scheduler for real processes.
#[derive(Debug)]
pub struct Supervisor {
    sched: AlpsScheduler,
    /// core id ↔ kernel pid.
    procs: Vec<(ProcId, i32)>,
    ns_tick: u64,
    next_deadline: Option<Nanos>,
    stats: SupervisorStats,
    cycles: Vec<CycleRecord>,
    cycle_snapshot: Vec<(ProcId, Nanos)>,
    record_cycles: bool,
}

impl Supervisor {
    /// Create a supervisor with no controlled processes.
    pub fn new(cfg: AlpsConfig) -> Self {
        let record_cycles = cfg.record_cycles;
        Supervisor {
            sched: AlpsScheduler::new(cfg.with_cycle_log(false)),
            procs: Vec::new(),
            ns_tick: proc::ns_per_tick(),
            next_deadline: None,
            stats: SupervisorStats::default(),
            cycles: Vec::new(),
            cycle_snapshot: Vec::new(),
            record_cycles,
        }
    }

    /// Take control of `pid` with the given share. The process is suspended
    /// immediately (it starts in the ineligible group per §2.2 and becomes
    /// eligible at the next quantum).
    pub fn add_process(&mut self, pid: i32, share: u64) -> Result<ProcId> {
        let stat = proc::read_stat(pid, self.ns_tick)?;
        if stat.dead() {
            return Err(OsError::NoSuchProcess(pid));
        }
        signal::sigstop(pid)?;
        let id = self.sched.add_process(share, stat.cpu_time);
        self.procs.push((id, pid));
        self.cycle_snapshot.push((id, stat.cpu_time));
        Ok(id)
    }

    /// Release a process from control (and resume it if suspended).
    pub fn remove_process(&mut self, id: ProcId) -> Result<()> {
        let Some(pos) = self.procs.iter().position(|&(i, _)| i == id) else {
            return Ok(());
        };
        let (_, pid) = self.procs.remove(pos);
        self.cycle_snapshot.retain(|&(i, _)| i != id);
        self.sched.remove_process(id);
        match signal::sigcont(pid) {
            Ok(()) | Err(OsError::NoSuchProcess(_)) => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Change a controlled process's share at runtime (e.g. when the
    /// application's notion of the process's importance changes, as in the
    /// adaptive-mesh scenario of the paper's introduction).
    pub fn set_share(&mut self, id: ProcId, share: u64) -> Result<()> {
        self.sched
            .set_share(id, share)
            .map_err(|_| OsError::NoSuchProcess(self.pid_of(id).unwrap_or(-1)))
    }

    /// The kernel pid of a controlled process.
    pub fn pid_of(&self, id: ProcId) -> Option<i32> {
        self.procs.iter().find(|&&(i, _)| i == id).map(|&(_, p)| p)
    }

    /// Registered `(ProcId, pid)` pairs in registration order.
    pub fn processes(&self) -> &[(ProcId, i32)] {
        &self.procs
    }

    /// Activity counters.
    pub fn stats(&self) -> SupervisorStats {
        self.stats
    }

    /// Cycles completed so far.
    pub fn cycles_completed(&self) -> u64 {
        self.sched.cycles_completed()
    }

    /// Per-cycle consumption records (if enabled in the config).
    pub fn cycles(&self) -> &[CycleRecord] {
        &self.cycles
    }

    /// Access the underlying algorithm state (read-only).
    pub fn scheduler(&self) -> &AlpsScheduler {
        &self.sched
    }

    /// Sleep until the next quantum boundary, then run one scheduler
    /// invocation. Returns the transitions that were applied.
    pub fn run_quantum(&mut self) -> Result<Vec<Transition>> {
        let q = self.sched.quantum();
        let deadline = match self.next_deadline {
            Some(d) => d,
            None => clock::now() + q,
        };
        clock::sleep_until(deadline);
        let now = clock::now();
        // Drift-free cadence with coalescing: if we overslept past one or
        // more whole quanta (we were starved, exactly as in §4.2), skip the
        // missed boundaries rather than firing a burst of catch-up quanta.
        let mut next = deadline + q;
        if now >= next {
            self.stats.overruns += 1;
            let behind = (now - deadline).as_nanos() / q.as_nanos();
            next = deadline + q * (behind + 1);
        }
        self.next_deadline = Some(next);
        self.invoke(now)
    }

    /// Run quanta for (at least) the given wall-clock duration.
    pub fn run_for(&mut self, duration: Duration) -> Result<()> {
        let end = clock::now() + Nanos::from(duration);
        while clock::now() < end {
            self.run_quantum()?;
        }
        Ok(())
    }

    /// Run quanta until at least `n` cycles have completed (with a
    /// wall-clock cap).
    pub fn run_cycles(&mut self, n: u64, cap: Duration) -> Result<()> {
        let target = self.sched.cycles_completed() + n;
        let end = clock::now() + Nanos::from(cap);
        while self.sched.cycles_completed() < target && clock::now() < end {
            self.run_quantum()?;
        }
        Ok(())
    }

    /// One scheduler invocation at time `now` (already woken).
    fn invoke(&mut self, now: Nanos) -> Result<Vec<Transition>> {
        self.stats.quanta += 1;
        let due = self.sched.begin_quantum();
        let mut observations = Vec::with_capacity(due.len());
        let mut dead = Vec::new();
        for id in due {
            let Some(pid) = self.pid_of(id) else { continue };
            match proc::read_stat(pid, self.ns_tick) {
                Ok(stat) if !stat.dead() => {
                    self.stats.measurements += 1;
                    observations.push((
                        id,
                        Observation {
                            total_cpu: stat.cpu_time,
                            blocked: stat.blocked(),
                        },
                    ));
                }
                Ok(_) | Err(OsError::NoSuchProcess(_)) => dead.push(id),
                Err(e) => return Err(e),
            }
        }
        for id in dead {
            self.stats.reaped += 1;
            self.remove_process(id)?;
        }
        let outcome = self.sched.complete_quantum(&observations, now);
        if outcome.cycle_completed && self.record_cycles {
            self.record_cycle(now);
        }
        for t in &outcome.transitions {
            let Some(pid) = self.pid_of(t.proc_id()) else {
                continue;
            };
            self.stats.signals += 1;
            let res = match t {
                Transition::Resume(_) => signal::sigcont(pid),
                Transition::Suspend(_) => signal::sigstop(pid),
            };
            match res {
                Ok(()) => {}
                Err(OsError::NoSuchProcess(_)) => {
                    self.stats.reaped += 1;
                    self.remove_process(t.proc_id())?;
                }
                Err(e) => return Err(e),
            }
        }
        Ok(outcome.transitions)
    }

    /// The §3.1 instrumentation: exact per-cycle consumption of every
    /// controlled process, read at the cycle boundary.
    fn record_cycle(&mut self, now: Nanos) {
        let mut entries = Vec::with_capacity(self.procs.len());
        let mut total = Nanos::ZERO;
        for &(id, pid) in &self.procs {
            let cpu = match proc::read_stat(pid, self.ns_tick) {
                Ok(ProcStat { cpu_time, .. }) => cpu_time,
                Err(_) => continue,
            };
            let Some(snap) = self.cycle_snapshot.iter_mut().find(|(i, _)| *i == id) else {
                continue;
            };
            let consumed = cpu.saturating_sub(snap.1);
            snap.1 = cpu;
            total += consumed;
            entries.push(CycleEntry {
                id,
                share: self.sched.share(id).unwrap_or(0),
                consumed,
            });
        }
        self.cycles.push(CycleRecord {
            index: self.sched.cycles_completed() - 1,
            completed_at: now,
            total_shares: self.sched.total_shares(),
            total_consumed: total,
            entries,
        });
    }

    /// Resume every controlled process (used on shutdown so nothing is
    /// left frozen).
    pub fn release_all(&mut self) {
        for &(_, pid) in &self.procs {
            let _ = signal::sigcont(pid);
        }
    }
}

impl Drop for Supervisor {
    fn drop(&mut self) {
        self.release_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::children::SpinnerPool;

    fn cpu_of(pid: i32) -> Nanos {
        proc::read_stat(pid, proc::ns_per_tick())
            .map(|s| s.cpu_time)
            .unwrap_or(Nanos::ZERO)
    }

    #[test]
    fn enforces_one_to_three_on_real_processes() {
        let pool = SpinnerPool::spawn(2).expect("spawn spinners");
        let pids = pool.pids();
        let cfg = AlpsConfig::new(Nanos::from_millis(20));
        let mut sup = Supervisor::new(cfg);
        let base_a = cpu_of(pids[0]);
        let base_b = cpu_of(pids[1]);
        sup.add_process(pids[0], 1).unwrap();
        sup.add_process(pids[1], 3).unwrap();
        sup.run_for(Duration::from_secs(4)).unwrap();
        sup.release_all();
        let ca = (cpu_of(pids[0]) - base_a).as_secs_f64();
        let cb = (cpu_of(pids[1]) - base_b).as_secs_f64();
        assert!(ca > 0.0 && cb > 0.0, "both ran: {ca} {cb}");
        let ratio = cb / ca;
        // Tick-granular /proc accounting plus a noisy CI box: generous band.
        assert!(
            (1.8..=4.5).contains(&ratio),
            "expected ~3.0, got {cb:.2}/{ca:.2} = {ratio:.2}"
        );
        assert!(sup.stats().quanta > 100, "quanta {}", sup.stats().quanta);
    }

    #[test]
    fn exited_children_are_reaped() {
        let pool = SpinnerPool::spawn(2).expect("spawn spinners");
        let pids = pool.pids();
        let mut sup = Supervisor::new(AlpsConfig::new(Nanos::from_millis(10)));
        sup.add_process(pids[0], 1).unwrap();
        sup.add_process(pids[1], 1).unwrap();
        // Kill one child out from under the supervisor.
        signal::sigkill(pids[0]).unwrap();
        sup.run_for(Duration::from_millis(500)).unwrap();
        assert_eq!(sup.processes().len(), 1);
        assert!(sup.stats().reaped >= 1);
    }

    #[test]
    fn add_process_rejects_missing_pid() {
        let mut sup = Supervisor::new(AlpsConfig::default());
        match sup.add_process(0, 1) {
            Err(OsError::NoSuchProcess(0)) => {}
            other => panic!("expected NoSuchProcess, got {other:?}"),
        }
    }

    #[test]
    fn drop_releases_stopped_children() {
        let pool = SpinnerPool::spawn(1).expect("spawn spinner");
        let pid = pool.pids()[0];
        let wait_state = |want: bool| -> bool {
            for _ in 0..100 {
                let st = proc::read_stat(pid, proc::ns_per_tick()).unwrap();
                if (st.state == 'T') == want {
                    return true;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            false
        };
        {
            let mut sup = Supervisor::new(AlpsConfig::new(Nanos::from_millis(10)));
            sup.add_process(pid, 1).unwrap();
            assert!(wait_state(true), "child did not stop");
        } // drop
        assert!(wait_state(false), "drop must SIGCONT the child");
    }

    #[test]
    fn set_share_retargets_a_running_split() {
        let pool = SpinnerPool::spawn(2).expect("spawn spinners");
        let pids = pool.pids();
        let mut sup = Supervisor::new(AlpsConfig::new(Nanos::from_millis(10)));
        let a = sup.add_process(pids[0], 1).unwrap();
        let _b = sup.add_process(pids[1], 1).unwrap();
        sup.run_for(Duration::from_secs(1)).unwrap();
        // Flip to 4:1 and measure only the post-change window.
        sup.set_share(a, 4).unwrap();
        let base: Vec<Nanos> = pids.iter().map(|&p| cpu_of(p)).collect();
        sup.run_for(Duration::from_secs(3)).unwrap();
        sup.release_all();
        let ca = (cpu_of(pids[0]) - base[0]).as_secs_f64();
        let cb = (cpu_of(pids[1]) - base[1]).as_secs_f64();
        let ratio = ca / cb.max(1e-9);
        assert!((2.2..=7.0).contains(&ratio), "want ~4.0, got {ratio:.2}");
        // Stale ids are rejected.
        sup.remove_process(a).unwrap();
        assert!(sup.set_share(a, 2).is_err());
    }

    #[test]
    fn cycle_records_accumulate() {
        let pool = SpinnerPool::spawn(2).expect("spawn spinners");
        let pids = pool.pids();
        let cfg = AlpsConfig::new(Nanos::from_millis(10)).with_cycle_log(true);
        let mut sup = Supervisor::new(cfg);
        sup.add_process(pids[0], 2).unwrap();
        sup.add_process(pids[1], 2).unwrap();
        sup.run_cycles(3, Duration::from_secs(5)).unwrap();
        assert!(sup.cycles_completed() >= 3);
        assert!(!sup.cycles().is_empty());
        let rec = &sup.cycles()[0];
        assert_eq!(rec.total_shares, 4);
        assert_eq!(rec.entries.len(), 2);
    }
}
