//! The ALPS supervisor for real Linux processes.
//!
//! [`Supervisor`] is the paper's ALPS process: an unprivileged loop that
//! wakes once per quantum, reads the progress of the controlled processes
//! that are due for measurement (§2.3), runs the Figure-3 algorithm, and
//! moves processes between the eligible and ineligible groups. No special
//! priority, no kernel support. The per-quantum loop itself is the generic
//! [`alps_core::Engine`] driven over a substrate; this module adds the
//! sleep cadence, the process registration surface, and two things the
//! paper's FreeBSD box could not offer:
//!
//! * **event-driven exits** — the quantum sleep parks inside an
//!   [`ExitWatcher`] (`pidfd_open` + epoll), so a member death is known
//!   the moment it happens and its reap costs zero `/proc` syscalls (the
//!   substrate short-circuits the read). On kernels without pidfd the
//!   loop degrades to the original pure clock sleep;
//! * **a choice of actuator** ([`ActuatorMode`]) — classic
//!   `SIGSTOP`/`SIGCONT`, or cgroup-v2 `cpu.weight` / `cpu.max` writes
//!   through [`CgroupSubstrate`] when the host delegates a subtree
//!   ([`Supervisor::with_actuator`]).
//!
//! ```no_run
//! use alps_core::{AlpsConfig, Nanos};
//! use alps_os::{Supervisor, SpinnerPool};
//! use std::time::Duration;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let pool = SpinnerPool::spawn(2)?;
//! let cfg = AlpsConfig::new(Nanos::from_millis(20)).with_cycle_log(true);
//! let mut sup = Supervisor::new(cfg);
//! sup.add_process(pool.pids()[0], 1)?;
//! sup.add_process(pool.pids()[1], 3)?;
//! sup.run_for(Duration::from_secs(5))?;
//! // pool.pids()[1] received ~3x the CPU of pool.pids()[0].
//! # Ok(())
//! # }
//! ```

use std::collections::HashSet;
use std::time::Duration;

use alps_core::{
    AlpsConfig, AlpsScheduler, CycleRecord, Engine, EngineStats, EventSink, FaultPolicy,
    HardenConfig, Instrumentation, Nanos, NullSink, Observation, ProcId, Signal, Substrate,
    Transition,
};

use crate::cgroup::{ActuatorMode, CgroupSubstrate, RealCgroupFs};
use crate::clock;
use crate::error::{OsError, Result};
use crate::pidfd::ExitWatcher;
use crate::proc;
use crate::substrate::OsSubstrate;

/// The concrete backend behind the chosen actuator.
#[derive(Debug)]
enum Inner {
    Signals(OsSubstrate),
    Cgroup(CgroupSubstrate<RealCgroupFs>),
}

/// The supervisor's substrate: the chosen actuator backend plus the set
/// of pids the exit watcher has already seen die. Reads of a known-dead
/// pid short-circuit to "gone" without touching `/proc`, deliveries to it
/// bounce — and the engine's ordinary reap path (with its counters and
/// events) does the rest.
#[derive(Debug)]
struct ActuatorSubstrate {
    inner: Inner,
    dead: HashSet<i32>,
}

impl ActuatorSubstrate {
    fn mode(&self) -> ActuatorMode {
        match &self.inner {
            Inner::Signals(_) => ActuatorMode::Signals,
            Inner::Cgroup(c) => c.mode(),
        }
    }

    /// Backend-specific registration. A no-op for signals; creates and
    /// populates the member's leaf group for cgroups.
    fn enroll(&mut self, pid: i32, share: u64) -> Result<()> {
        match &mut self.inner {
            Inner::Signals(_) => Ok(()),
            Inner::Cgroup(c) => c.enroll(pid, share),
        }
    }

    /// Intentional release on removal/shutdown: resume the member
    /// (`SIGCONT` / thaw + uncap), and for cgroups park it in the
    /// subtree's parked leaf and remove its member leaf.
    fn release(&mut self, pid: i32) -> Result<()> {
        self.dead.remove(&pid);
        match &mut self.inner {
            Inner::Signals(_) => match crate::signal::sigcont(pid) {
                Ok(()) | Err(OsError::NoSuchProcess(_)) => Ok(()),
                Err(e) => Err(e),
            },
            Inner::Cgroup(c) => c.release(pid),
        }
    }

    /// Cleanup after the engine reaped an *exited* member: nothing to do
    /// for signals (never signal a reaped — possibly recycled — pid); for
    /// cgroups the empty leaf is torn down.
    fn cleanup_reaped(&mut self, pid: i32) {
        self.dead.remove(&pid);
        if let Inner::Cgroup(c) = &mut self.inner {
            let _ = c.release(pid);
        }
    }

    fn set_share(&mut self, pid: i32, share: u64) {
        if let Inner::Cgroup(c) = &mut self.inner {
            let _ = c.set_share(pid, share);
        }
    }

    /// Record an exit reported by the watcher.
    fn note_exited(&mut self, pid: i32) {
        self.dead.insert(pid);
    }

    /// Final teardown (the per-member leaves are already released).
    fn shutdown(&mut self) {
        if let Inner::Cgroup(c) = &mut self.inner {
            let _ = c.fs_mut().remove_root();
        }
    }
}

impl Substrate for ActuatorSubstrate {
    type Member = i32;
    type Error = OsError;

    fn now(&mut self) -> Nanos {
        match &mut self.inner {
            Inner::Signals(s) => s.now(),
            Inner::Cgroup(c) => c.now(),
        }
    }

    fn read(&mut self, pid: i32) -> Result<Option<Observation>> {
        if self.dead.contains(&pid) {
            return Ok(None);
        }
        match &mut self.inner {
            Inner::Signals(s) => s.read(pid),
            Inner::Cgroup(c) => c.read(pid),
        }
    }

    fn read_batch(&mut self, members: &[i32], out: &mut Vec<Option<Observation>>) -> Result<()> {
        if self.dead.is_empty() {
            // Forward whole batches so the backend's buffer reuse applies.
            return match &mut self.inner {
                Inner::Signals(s) => s.read_batch(members, out),
                Inner::Cgroup(c) => c.read_batch(members, out),
            };
        }
        for &m in members {
            let o = self.read(m)?;
            out.push(o);
        }
        Ok(())
    }

    fn deliver(&mut self, pid: i32, sig: Signal) -> Result<bool> {
        if self.dead.contains(&pid) {
            return Ok(false);
        }
        match &mut self.inner {
            Inner::Signals(s) => s.deliver(pid, sig),
            Inner::Cgroup(c) => c.deliver(pid, sig),
        }
    }

    fn apply_batch(&mut self, batch: &[(i32, Signal)], delivered: &mut Vec<bool>) -> Result<()> {
        if self.dead.is_empty() {
            // Forward so OsSubstrate's grouped stop-before-continue
            // delivery applies.
            return match &mut self.inner {
                Inner::Signals(s) => s.apply_batch(batch, delivered),
                Inner::Cgroup(c) => c.apply_batch(batch, delivered),
            };
        }
        for &(m, sig) in batch {
            let d = self.deliver(m, sig)?;
            delivered.push(d);
        }
        Ok(())
    }
}

/// A user-level proportional-share scheduler for real processes.
#[derive(Debug)]
pub struct Supervisor {
    engine: Engine<i32>,
    /// core id ↔ kernel pid, in registration order.
    procs: Vec<(ProcId, i32)>,
    sub: ActuatorSubstrate,
    /// pidfd exit notification; `None` degrades to pure clock sleeps.
    watcher: Option<ExitWatcher>,
    /// Reusable buffers for the per-quantum exit drain and reap sync.
    exited_buf: Vec<i32>,
    removed_buf: Vec<i32>,
    next_deadline: Option<Nanos>,
}

impl Supervisor {
    fn build(cfg: AlpsConfig, policy: Option<HardenConfig>, inner: Inner) -> Self {
        // §3.1 instrumentation re-reads the substrate at cycle boundaries.
        let mut engine = Engine::new(cfg, Instrumentation::Exact).with_auto_reap(true);
        if let Some(harden) = policy {
            engine = engine.with_fault_policy(FaultPolicy::Harden(harden));
        }
        Supervisor {
            engine,
            procs: Vec::new(),
            sub: ActuatorSubstrate {
                inner,
                dead: HashSet::new(),
            },
            watcher: ExitWatcher::new().ok(),
            exited_buf: Vec::new(),
            removed_buf: Vec::new(),
            next_deadline: None,
        }
    }

    /// Create a supervisor with no controlled processes, actuating with
    /// classic job-control signals.
    pub fn new(cfg: AlpsConfig) -> Self {
        Supervisor::build(cfg, None, Inner::Signals(OsSubstrate::new()))
    }

    /// Like [`Supervisor::new`], but the per-quantum loop tolerates
    /// substrate faults instead of aborting on them: transient `/proc`
    /// read failures are skipped, failed `kill(2)` deliveries are retried
    /// with backoff, intended run/stop states are periodically
    /// re-asserted, and a process that keeps faulting is quarantined out
    /// of scheduling. Recovery activity is visible in
    /// [`EngineStats`](Supervisor::stats) and on the event sink.
    pub fn hardened(cfg: AlpsConfig, harden: HardenConfig) -> Self {
        Supervisor::build(cfg, Some(harden), Inner::Signals(OsSubstrate::new()))
    }

    /// Create a supervisor actuating in the given [`ActuatorMode`].
    /// `Signals` uses `kill(2)` (never fails to construct); `Weights` and
    /// `Caps` discover a delegated cgroup-v2 subtree and actuate through
    /// `cpu.weight` / `cpu.max` writes, failing with
    /// [`OsError::Unsupported`] when the host offers none.
    pub fn with_actuator(cfg: AlpsConfig, mode: ActuatorMode) -> Result<Self> {
        Supervisor::with_actuator_policy(cfg, None, mode)
    }

    /// [`Supervisor::with_actuator`] with the fault-tolerant loop of
    /// [`Supervisor::hardened`].
    pub fn hardened_with_actuator(
        cfg: AlpsConfig,
        harden: HardenConfig,
        mode: ActuatorMode,
    ) -> Result<Self> {
        Supervisor::with_actuator_policy(cfg, Some(harden), mode)
    }

    fn with_actuator_policy(
        cfg: AlpsConfig,
        policy: Option<HardenConfig>,
        mode: ActuatorMode,
    ) -> Result<Self> {
        let inner = match mode {
            ActuatorMode::Signals => Inner::Signals(OsSubstrate::new()),
            ActuatorMode::Weights | ActuatorMode::Caps => {
                Inner::Cgroup(CgroupSubstrate::new(RealCgroupFs::discover()?, mode))
            }
        };
        Ok(Supervisor::build(cfg, policy, inner))
    }

    /// The actuator this supervisor enforces with.
    pub fn actuator(&self) -> ActuatorMode {
        self.sub.mode()
    }

    /// Whether member exits arrive event-driven (pidfd + epoll) rather
    /// than by `/proc` polling.
    pub fn event_driven(&self) -> bool {
        self.watcher.is_some()
    }

    /// Take control of `pid` with the given share. The process is suspended
    /// immediately (it starts in the ineligible group per §2.2 and becomes
    /// eligible at the next quantum).
    pub fn add_process(&mut self, pid: i32, share: u64) -> Result<ProcId> {
        let stat = proc::read_stat(pid, proc::ns_per_tick())?;
        if stat.dead() {
            return Err(OsError::NoSuchProcess(pid));
        }
        self.sub.enroll(pid, share)?;
        // The initial reading comes from the substrate itself, so each
        // backend charges from its own zero: /proc cumulative CPU for
        // signals, the fresh leaf's cpu.stat (zero) for cgroups.
        let obs = match self.sub.read(pid) {
            Ok(Some(o)) => o,
            Ok(None) => {
                let _ = self.sub.release(pid);
                return Err(OsError::NoSuchProcess(pid));
            }
            Err(e) => {
                let _ = self.sub.release(pid);
                return Err(e);
            }
        };
        match self.sub.deliver(pid, Signal::Stop) {
            Ok(true) => {}
            Ok(false) => {
                let _ = self.sub.release(pid);
                return Err(OsError::NoSuchProcess(pid));
            }
            Err(e) => {
                let _ = self.sub.release(pid);
                return Err(e);
            }
        }
        let id = self.engine.add_member(pid, share, obs.total_cpu);
        self.procs.push((id, pid));
        if let Some(w) = &mut self.watcher {
            // A watch failure is not worth failing registration over:
            // degrade the whole loop back to clock polling, which the
            // read path handles anyway.
            if w.watch(pid).is_err() {
                self.watcher = None;
            }
        }
        Ok(id)
    }

    /// Release a process from control (and resume it if suspended).
    ///
    /// On failure (e.g. a transient cgroupfs write error) nothing is
    /// torn down: the process stays fully managed — engine state, pid
    /// table, and exit watch intact — so the call can simply be retried.
    pub fn remove_process(&mut self, id: ProcId) -> Result<()> {
        let Some(pid) = self.pid_of(id) else {
            // Stale handle: nothing is enrolled under it.
            self.engine.remove_principal(id);
            return Ok(());
        };
        self.sub.release(pid)?;
        if let Some(w) = &mut self.watcher {
            w.unwatch(pid);
        }
        self.engine.remove_principal(id);
        self.procs.retain(|&(i, _)| i != id);
        Ok(())
    }

    /// Change a controlled process's share at runtime (e.g. when the
    /// application's notion of the process's importance changes, as in the
    /// adaptive-mesh scenario of the paper's introduction).
    pub fn set_share(&mut self, id: ProcId, share: u64) -> Result<()> {
        match self.engine.set_share(id, share) {
            Ok(()) => {
                if let Some(pid) = self.pid_of(id) {
                    // Keep the weight the cgroup backend restores on
                    // `continue` in step with the share.
                    self.sub.set_share(pid, share);
                }
                Ok(())
            }
            // If the pid table still knows the process, report the real
            // pid; otherwise the handle itself is stale — never a made-up
            // pid like the old `unwrap_or(-1)`.
            Err(_) => Err(match self.pid_of(id) {
                Some(pid) => OsError::NoSuchProcess(pid),
                None => OsError::Stale(id),
            }),
        }
    }

    /// The kernel pid of a controlled process.
    pub fn pid_of(&self, id: ProcId) -> Option<i32> {
        self.procs.iter().find(|&&(i, _)| i == id).map(|&(_, p)| p)
    }

    /// Registered `(ProcId, pid)` pairs in registration order.
    pub fn processes(&self) -> &[(ProcId, i32)] {
        &self.procs
    }

    /// Activity counters.
    pub fn stats(&self) -> EngineStats {
        self.engine.stats()
    }

    /// Cycles completed so far.
    pub fn cycles_completed(&self) -> u64 {
        self.engine.cycles_completed()
    }

    /// Per-cycle consumption records (if enabled in the config).
    pub fn cycles(&self) -> &[CycleRecord] {
        self.engine.cycles()
    }

    /// Access the underlying algorithm state (read-only).
    pub fn scheduler(&self) -> &AlpsScheduler {
        self.engine.scheduler()
    }

    /// Sleep until the next quantum boundary, then run one scheduler
    /// invocation. Returns the transitions that were applied (borrowed
    /// from the engine's reusable buffer, so the steady-state loop
    /// allocates nothing).
    pub fn run_quantum(&mut self) -> Result<&[Transition]> {
        self.run_quantum_with(&mut NullSink)
    }

    /// [`run_quantum`](Supervisor::run_quantum) with an event sink
    /// observing every measurement, signal, and cycle boundary (the
    /// `--trace` wiring of `alps-cli`).
    pub fn run_quantum_with(&mut self, sink: &mut dyn EventSink<i32>) -> Result<&[Transition]> {
        let q = self.engine.quantum();
        let deadline = match self.next_deadline {
            Some(d) => d,
            None => clock::now() + q,
        };
        // The quantum sleep doubles as the exit listener: epoll over the
        // members' pidfds until the deadline. Deaths don't cut the sleep
        // short (the cadence stays drift-free) — they are simply already
        // known, and cost zero /proc reads, when the quantum runs.
        match &mut self.watcher {
            Some(w) => {
                self.exited_buf.clear();
                w.wait_until(deadline, &mut self.exited_buf);
                for &pid in &self.exited_buf {
                    self.sub.note_exited(pid);
                }
            }
            None => clock::sleep_until(deadline),
        }
        let now = clock::now();
        // Drift-free cadence with coalescing: if we overslept past one or
        // more whole quanta (we were starved, exactly as in §4.2), skip the
        // missed boundaries rather than firing a burst of catch-up quanta.
        // The engine's own overrun detector counts these from the gap
        // between consecutive invocations.
        let mut next = deadline + q;
        if now >= next {
            let behind = (now - deadline).as_nanos() / q.as_nanos();
            next = deadline + q * (behind + 1);
        }
        self.next_deadline = Some(next);
        self.engine.run_quantum(&mut self.sub, sink)?;
        // Keep the pid table, the watcher, and the backend in sync with
        // what the engine auto-reaped.
        let engine = &self.engine;
        let removed = &mut self.removed_buf;
        removed.clear();
        self.procs.retain(|&(id, pid)| {
            let live = engine.share(id).is_some();
            if !live {
                removed.push(pid);
            }
            live
        });
        for i in 0..self.removed_buf.len() {
            let pid = self.removed_buf[i];
            if let Some(w) = &mut self.watcher {
                w.unwatch(pid);
            }
            self.sub.cleanup_reaped(pid);
        }
        Ok(self.engine.last_transitions())
    }

    /// Run quanta for (at least) the given wall-clock duration.
    pub fn run_for(&mut self, duration: Duration) -> Result<()> {
        let end = clock::now() + Nanos::from(duration);
        while clock::now() < end {
            self.run_quantum()?;
        }
        Ok(())
    }

    /// Run quanta until at least `n` cycles have completed (with a
    /// wall-clock cap).
    pub fn run_cycles(&mut self, n: u64, cap: Duration) -> Result<()> {
        let target = self.engine.cycles_completed() + n;
        let end = clock::now() + Nanos::from(cap);
        while self.engine.cycles_completed() < target && clock::now() < end {
            self.run_quantum()?;
        }
        Ok(())
    }

    /// Resume every controlled process (used on shutdown so nothing is
    /// left frozen or capped).
    pub fn release_all(&mut self) {
        for i in 0..self.procs.len() {
            let pid = self.procs[i].1;
            let _ = self.sub.release(pid);
        }
    }
}

impl Drop for Supervisor {
    fn drop(&mut self) {
        self.release_all();
        self.sub.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::children::SpinnerPool;
    use crate::signal;

    fn cpu_of(pid: i32) -> Nanos {
        proc::read_stat(pid, proc::ns_per_tick())
            .map(|s| s.cpu_time)
            .unwrap_or(Nanos::ZERO)
    }

    #[test]
    fn enforces_one_to_three_on_real_processes() {
        let pool = SpinnerPool::spawn(2).expect("spawn spinners");
        let pids = pool.pids();
        let cfg = AlpsConfig::new(Nanos::from_millis(20));
        let mut sup = Supervisor::new(cfg);
        let base_a = cpu_of(pids[0]);
        let base_b = cpu_of(pids[1]);
        sup.add_process(pids[0], 1).unwrap();
        sup.add_process(pids[1], 3).unwrap();
        sup.run_for(Duration::from_secs(4)).unwrap();
        sup.release_all();
        let ca = (cpu_of(pids[0]) - base_a).as_secs_f64();
        let cb = (cpu_of(pids[1]) - base_b).as_secs_f64();
        assert!(ca > 0.0 && cb > 0.0, "both ran: {ca} {cb}");
        let ratio = cb / ca;
        // Tick-granular /proc accounting plus a noisy CI box: generous band.
        assert!(
            (1.8..=4.5).contains(&ratio),
            "expected ~3.0, got {cb:.2}/{ca:.2} = {ratio:.2}"
        );
        assert!(sup.stats().quanta > 100, "quanta {}", sup.stats().quanta);
    }

    #[test]
    fn exited_children_are_reaped() {
        let pool = SpinnerPool::spawn(2).expect("spawn spinners");
        let pids = pool.pids();
        let mut sup = Supervisor::new(AlpsConfig::new(Nanos::from_millis(10)));
        sup.add_process(pids[0], 1).unwrap();
        sup.add_process(pids[1], 1).unwrap();
        // Kill one child out from under the supervisor.
        signal::sigkill(pids[0]).unwrap();
        sup.run_for(Duration::from_millis(500)).unwrap();
        assert_eq!(sup.processes().len(), 1);
        assert!(sup.stats().reaped >= 1);
    }

    #[test]
    fn exits_arrive_event_driven_on_this_host() {
        let pool = SpinnerPool::spawn(1).expect("spawn spinner");
        let mut sup = Supervisor::new(AlpsConfig::new(Nanos::from_millis(10)));
        assert!(sup.event_driven(), "pidfd watcher active on Linux >= 5.3");
        sup.add_process(pool.pids()[0], 1).unwrap();
        signal::sigkill(pool.pids()[0]).unwrap();
        // One quantum's epoll wait is enough to both observe the death and
        // reap it through the engine — no /proc polling loop required.
        sup.run_for(Duration::from_millis(100)).unwrap();
        assert!(sup.processes().is_empty());
        assert_eq!(sup.stats().reaped, 1);
    }

    #[test]
    fn add_process_rejects_missing_pid() {
        let mut sup = Supervisor::new(AlpsConfig::default());
        match sup.add_process(0, 1) {
            Err(OsError::NoSuchProcess(0)) => {}
            other => panic!("expected NoSuchProcess, got {other:?}"),
        }
    }

    #[test]
    fn drop_releases_stopped_children() {
        let pool = SpinnerPool::spawn(1).expect("spawn spinner");
        let pid = pool.pids()[0];
        let wait_state = |want: bool| -> bool {
            for _ in 0..100 {
                let st = proc::read_stat(pid, proc::ns_per_tick()).unwrap();
                if (st.state == 'T') == want {
                    return true;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            false
        };
        {
            let mut sup = Supervisor::new(AlpsConfig::new(Nanos::from_millis(10)));
            sup.add_process(pid, 1).unwrap();
            assert!(wait_state(true), "child did not stop");
        } // drop
        assert!(wait_state(false), "drop must SIGCONT the child");
    }

    #[test]
    fn set_share_retargets_a_running_split() {
        let pool = SpinnerPool::spawn(2).expect("spawn spinners");
        let pids = pool.pids();
        let mut sup = Supervisor::new(AlpsConfig::new(Nanos::from_millis(10)));
        let a = sup.add_process(pids[0], 1).unwrap();
        let _b = sup.add_process(pids[1], 1).unwrap();
        sup.run_for(Duration::from_secs(1)).unwrap();
        // Flip to 4:1 and measure only the post-change window.
        sup.set_share(a, 4).unwrap();
        let base: Vec<Nanos> = pids.iter().map(|&p| cpu_of(p)).collect();
        sup.run_for(Duration::from_secs(3)).unwrap();
        sup.release_all();
        let ca = (cpu_of(pids[0]) - base[0]).as_secs_f64();
        let cb = (cpu_of(pids[1]) - base[1]).as_secs_f64();
        let ratio = ca / cb.max(1e-9);
        assert!((2.2..=7.0).contains(&ratio), "want ~4.0, got {ratio:.2}");
        // Stale ids are rejected with the handle, not a fabricated pid.
        sup.remove_process(a).unwrap();
        match sup.set_share(a, 2) {
            Err(OsError::Stale(stale)) => assert_eq!(stale, a),
            other => panic!("expected Stale, got {other:?}"),
        }
    }

    #[test]
    fn hardened_supervisor_survives_children_dying_mid_run() {
        let pool = SpinnerPool::spawn(3).expect("spawn spinners");
        let pids = pool.pids();
        let mut sup = Supervisor::hardened(
            AlpsConfig::new(Nanos::from_millis(10)),
            alps_core::HardenConfig::default(),
        );
        for &pid in &pids {
            sup.add_process(pid, 1).unwrap();
        }
        // Kill two children at different points; the loop must keep
        // running and reap them without an error escaping.
        signal::sigkill(pids[0]).unwrap();
        sup.run_for(Duration::from_millis(300)).unwrap();
        signal::sigkill(pids[2]).unwrap();
        sup.run_for(Duration::from_millis(300)).unwrap();
        assert_eq!(sup.processes().len(), 1);
        assert!(sup.stats().reaped >= 2);
        assert!(sup.stats().quanta > 20);
    }

    #[test]
    fn cycle_records_accumulate() {
        let pool = SpinnerPool::spawn(2).expect("spawn spinners");
        let pids = pool.pids();
        let cfg = AlpsConfig::new(Nanos::from_millis(10)).with_cycle_log(true);
        let mut sup = Supervisor::new(cfg);
        sup.add_process(pids[0], 2).unwrap();
        sup.add_process(pids[1], 2).unwrap();
        sup.run_cycles(3, Duration::from_secs(5)).unwrap();
        assert!(sup.cycles_completed() >= 3);
        assert!(!sup.cycles().is_empty());
        let rec = &sup.cycles()[0];
        assert_eq!(rec.total_shares, 4);
        assert_eq!(rec.entries.len(), 2);
    }

    #[test]
    fn with_actuator_signals_always_constructs() {
        let sup = Supervisor::with_actuator(AlpsConfig::default(), ActuatorMode::Signals).unwrap();
        assert_eq!(sup.actuator(), ActuatorMode::Signals);
    }

    #[test]
    fn with_actuator_cgroup_is_supported_or_reports_why() {
        // Unprivileged boxes without a delegated subtree must get a clean
        // Unsupported, not a panic or a half-built supervisor.
        for mode in [ActuatorMode::Weights, ActuatorMode::Caps] {
            match Supervisor::with_actuator(AlpsConfig::default(), mode) {
                Ok(sup) => assert_eq!(sup.actuator(), mode),
                Err(OsError::Unsupported(_)) => {}
                Err(e) => panic!("expected Ok or Unsupported, got {e}"),
            }
        }
    }
}
