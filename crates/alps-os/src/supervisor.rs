//! The ALPS supervisor for real Linux processes.
//!
//! [`Supervisor`] is the paper's ALPS process: an unprivileged loop that
//! wakes once per quantum, reads the progress of the controlled processes
//! that are due for measurement (§2.3), runs the Figure-3 algorithm, and
//! moves processes between the eligible and ineligible groups with
//! `SIGCONT`/`SIGSTOP`. No special priority, no kernel support. The
//! per-quantum loop itself is the generic [`alps_core::Engine`] driven
//! over an [`OsSubstrate`]; this module adds the
//! drift-free sleep cadence and the process registration surface.
//!
//! ```no_run
//! use alps_core::{AlpsConfig, Nanos};
//! use alps_os::{Supervisor, SpinnerPool};
//! use std::time::Duration;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let pool = SpinnerPool::spawn(2)?;
//! let cfg = AlpsConfig::new(Nanos::from_millis(20)).with_cycle_log(true);
//! let mut sup = Supervisor::new(cfg);
//! sup.add_process(pool.pids()[0], 1)?;
//! sup.add_process(pool.pids()[1], 3)?;
//! sup.run_for(Duration::from_secs(5))?;
//! // pool.pids()[1] received ~3x the CPU of pool.pids()[0].
//! # Ok(())
//! # }
//! ```

use std::time::Duration;

use alps_core::{
    AlpsConfig, AlpsScheduler, CycleRecord, Engine, EngineStats, EventSink, FaultPolicy,
    HardenConfig, Instrumentation, Nanos, NullSink, ProcId, Transition,
};

use crate::clock;
use crate::error::{OsError, Result};
use crate::proc;
use crate::signal;
use crate::substrate::OsSubstrate;

/// A user-level proportional-share scheduler for real processes.
#[derive(Debug)]
pub struct Supervisor {
    engine: Engine<i32>,
    /// core id ↔ kernel pid, in registration order.
    procs: Vec<(ProcId, i32)>,
    sub: OsSubstrate,
    next_deadline: Option<Nanos>,
}

impl Supervisor {
    /// Create a supervisor with no controlled processes.
    pub fn new(cfg: AlpsConfig) -> Self {
        Supervisor {
            // §3.1 instrumentation re-reads /proc at cycle boundaries.
            engine: Engine::new(cfg, Instrumentation::Exact).with_auto_reap(true),
            procs: Vec::new(),
            sub: OsSubstrate::new(),
            next_deadline: None,
        }
    }

    /// Like [`Supervisor::new`], but the per-quantum loop tolerates
    /// substrate faults instead of aborting on them: transient `/proc`
    /// read failures are skipped, failed `kill(2)` deliveries are retried
    /// with backoff, intended run/stop states are periodically
    /// re-asserted, and a process that keeps faulting is quarantined out
    /// of scheduling. Recovery activity is visible in
    /// [`EngineStats`](Supervisor::stats) and on the event sink.
    pub fn hardened(cfg: AlpsConfig, harden: HardenConfig) -> Self {
        Supervisor {
            engine: Engine::new(cfg, Instrumentation::Exact)
                .with_auto_reap(true)
                .with_fault_policy(FaultPolicy::Harden(harden)),
            procs: Vec::new(),
            sub: OsSubstrate::new(),
            next_deadline: None,
        }
    }

    /// Take control of `pid` with the given share. The process is suspended
    /// immediately (it starts in the ineligible group per §2.2 and becomes
    /// eligible at the next quantum).
    pub fn add_process(&mut self, pid: i32, share: u64) -> Result<ProcId> {
        let stat = proc::read_stat(pid, proc::ns_per_tick())?;
        if stat.dead() {
            return Err(OsError::NoSuchProcess(pid));
        }
        signal::sigstop(pid)?;
        let id = self.engine.add_member(pid, share, stat.cpu_time);
        self.procs.push((id, pid));
        Ok(id)
    }

    /// Release a process from control (and resume it if suspended).
    pub fn remove_process(&mut self, id: ProcId) -> Result<()> {
        let Some(members) = self.engine.remove_principal(id) else {
            self.procs.retain(|&(i, _)| i != id);
            return Ok(());
        };
        self.procs.retain(|&(i, _)| i != id);
        for pid in members {
            match signal::sigcont(pid) {
                Ok(()) | Err(OsError::NoSuchProcess(_)) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Change a controlled process's share at runtime (e.g. when the
    /// application's notion of the process's importance changes, as in the
    /// adaptive-mesh scenario of the paper's introduction).
    pub fn set_share(&mut self, id: ProcId, share: u64) -> Result<()> {
        match self.engine.set_share(id, share) {
            Ok(()) => Ok(()),
            // If the pid table still knows the process, report the real
            // pid; otherwise the handle itself is stale — never a made-up
            // pid like the old `unwrap_or(-1)`.
            Err(_) => Err(match self.pid_of(id) {
                Some(pid) => OsError::NoSuchProcess(pid),
                None => OsError::Stale(id),
            }),
        }
    }

    /// The kernel pid of a controlled process.
    pub fn pid_of(&self, id: ProcId) -> Option<i32> {
        self.procs.iter().find(|&&(i, _)| i == id).map(|&(_, p)| p)
    }

    /// Registered `(ProcId, pid)` pairs in registration order.
    pub fn processes(&self) -> &[(ProcId, i32)] {
        &self.procs
    }

    /// Activity counters.
    pub fn stats(&self) -> EngineStats {
        self.engine.stats()
    }

    /// Cycles completed so far.
    pub fn cycles_completed(&self) -> u64 {
        self.engine.cycles_completed()
    }

    /// Per-cycle consumption records (if enabled in the config).
    pub fn cycles(&self) -> &[CycleRecord] {
        self.engine.cycles()
    }

    /// Access the underlying algorithm state (read-only).
    pub fn scheduler(&self) -> &AlpsScheduler {
        self.engine.scheduler()
    }

    /// Sleep until the next quantum boundary, then run one scheduler
    /// invocation. Returns the transitions that were applied (borrowed
    /// from the engine's reusable buffer, so the steady-state loop
    /// allocates nothing).
    pub fn run_quantum(&mut self) -> Result<&[Transition]> {
        self.run_quantum_with(&mut NullSink)
    }

    /// [`run_quantum`](Supervisor::run_quantum) with an event sink
    /// observing every measurement, signal, and cycle boundary (the
    /// `--trace` wiring of `alps-cli`).
    pub fn run_quantum_with(&mut self, sink: &mut dyn EventSink<i32>) -> Result<&[Transition]> {
        let q = self.engine.quantum();
        let deadline = match self.next_deadline {
            Some(d) => d,
            None => clock::now() + q,
        };
        clock::sleep_until(deadline);
        let now = clock::now();
        // Drift-free cadence with coalescing: if we overslept past one or
        // more whole quanta (we were starved, exactly as in §4.2), skip the
        // missed boundaries rather than firing a burst of catch-up quanta.
        // The engine's own overrun detector counts these from the gap
        // between consecutive invocations.
        let mut next = deadline + q;
        if now >= next {
            let behind = (now - deadline).as_nanos() / q.as_nanos();
            next = deadline + q * (behind + 1);
        }
        self.next_deadline = Some(next);
        self.engine.run_quantum(&mut self.sub, sink)?;
        // Keep the pid table in sync with what the engine auto-reaped.
        let engine = &self.engine;
        self.procs.retain(|&(id, _)| engine.share(id).is_some());
        Ok(self.engine.last_transitions())
    }

    /// Run quanta for (at least) the given wall-clock duration.
    pub fn run_for(&mut self, duration: Duration) -> Result<()> {
        let end = clock::now() + Nanos::from(duration);
        while clock::now() < end {
            self.run_quantum()?;
        }
        Ok(())
    }

    /// Run quanta until at least `n` cycles have completed (with a
    /// wall-clock cap).
    pub fn run_cycles(&mut self, n: u64, cap: Duration) -> Result<()> {
        let target = self.engine.cycles_completed() + n;
        let end = clock::now() + Nanos::from(cap);
        while self.engine.cycles_completed() < target && clock::now() < end {
            self.run_quantum()?;
        }
        Ok(())
    }

    /// Resume every controlled process (used on shutdown so nothing is
    /// left frozen).
    pub fn release_all(&mut self) {
        for &(_, pid) in &self.procs {
            let _ = signal::sigcont(pid);
        }
    }
}

impl Drop for Supervisor {
    fn drop(&mut self) {
        self.release_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::children::SpinnerPool;

    fn cpu_of(pid: i32) -> Nanos {
        proc::read_stat(pid, proc::ns_per_tick())
            .map(|s| s.cpu_time)
            .unwrap_or(Nanos::ZERO)
    }

    #[test]
    fn enforces_one_to_three_on_real_processes() {
        let pool = SpinnerPool::spawn(2).expect("spawn spinners");
        let pids = pool.pids();
        let cfg = AlpsConfig::new(Nanos::from_millis(20));
        let mut sup = Supervisor::new(cfg);
        let base_a = cpu_of(pids[0]);
        let base_b = cpu_of(pids[1]);
        sup.add_process(pids[0], 1).unwrap();
        sup.add_process(pids[1], 3).unwrap();
        sup.run_for(Duration::from_secs(4)).unwrap();
        sup.release_all();
        let ca = (cpu_of(pids[0]) - base_a).as_secs_f64();
        let cb = (cpu_of(pids[1]) - base_b).as_secs_f64();
        assert!(ca > 0.0 && cb > 0.0, "both ran: {ca} {cb}");
        let ratio = cb / ca;
        // Tick-granular /proc accounting plus a noisy CI box: generous band.
        assert!(
            (1.8..=4.5).contains(&ratio),
            "expected ~3.0, got {cb:.2}/{ca:.2} = {ratio:.2}"
        );
        assert!(sup.stats().quanta > 100, "quanta {}", sup.stats().quanta);
    }

    #[test]
    fn exited_children_are_reaped() {
        let pool = SpinnerPool::spawn(2).expect("spawn spinners");
        let pids = pool.pids();
        let mut sup = Supervisor::new(AlpsConfig::new(Nanos::from_millis(10)));
        sup.add_process(pids[0], 1).unwrap();
        sup.add_process(pids[1], 1).unwrap();
        // Kill one child out from under the supervisor.
        signal::sigkill(pids[0]).unwrap();
        sup.run_for(Duration::from_millis(500)).unwrap();
        assert_eq!(sup.processes().len(), 1);
        assert!(sup.stats().reaped >= 1);
    }

    #[test]
    fn add_process_rejects_missing_pid() {
        let mut sup = Supervisor::new(AlpsConfig::default());
        match sup.add_process(0, 1) {
            Err(OsError::NoSuchProcess(0)) => {}
            other => panic!("expected NoSuchProcess, got {other:?}"),
        }
    }

    #[test]
    fn drop_releases_stopped_children() {
        let pool = SpinnerPool::spawn(1).expect("spawn spinner");
        let pid = pool.pids()[0];
        let wait_state = |want: bool| -> bool {
            for _ in 0..100 {
                let st = proc::read_stat(pid, proc::ns_per_tick()).unwrap();
                if (st.state == 'T') == want {
                    return true;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            false
        };
        {
            let mut sup = Supervisor::new(AlpsConfig::new(Nanos::from_millis(10)));
            sup.add_process(pid, 1).unwrap();
            assert!(wait_state(true), "child did not stop");
        } // drop
        assert!(wait_state(false), "drop must SIGCONT the child");
    }

    #[test]
    fn set_share_retargets_a_running_split() {
        let pool = SpinnerPool::spawn(2).expect("spawn spinners");
        let pids = pool.pids();
        let mut sup = Supervisor::new(AlpsConfig::new(Nanos::from_millis(10)));
        let a = sup.add_process(pids[0], 1).unwrap();
        let _b = sup.add_process(pids[1], 1).unwrap();
        sup.run_for(Duration::from_secs(1)).unwrap();
        // Flip to 4:1 and measure only the post-change window.
        sup.set_share(a, 4).unwrap();
        let base: Vec<Nanos> = pids.iter().map(|&p| cpu_of(p)).collect();
        sup.run_for(Duration::from_secs(3)).unwrap();
        sup.release_all();
        let ca = (cpu_of(pids[0]) - base[0]).as_secs_f64();
        let cb = (cpu_of(pids[1]) - base[1]).as_secs_f64();
        let ratio = ca / cb.max(1e-9);
        assert!((2.2..=7.0).contains(&ratio), "want ~4.0, got {ratio:.2}");
        // Stale ids are rejected with the handle, not a fabricated pid.
        sup.remove_process(a).unwrap();
        match sup.set_share(a, 2) {
            Err(OsError::Stale(stale)) => assert_eq!(stale, a),
            other => panic!("expected Stale, got {other:?}"),
        }
    }

    #[test]
    fn hardened_supervisor_survives_children_dying_mid_run() {
        let pool = SpinnerPool::spawn(3).expect("spawn spinners");
        let pids = pool.pids();
        let mut sup = Supervisor::hardened(
            AlpsConfig::new(Nanos::from_millis(10)),
            alps_core::HardenConfig::default(),
        );
        for &pid in &pids {
            sup.add_process(pid, 1).unwrap();
        }
        // Kill two children at different points; the loop must keep
        // running and reap them without an error escaping.
        signal::sigkill(pids[0]).unwrap();
        sup.run_for(Duration::from_millis(300)).unwrap();
        signal::sigkill(pids[2]).unwrap();
        sup.run_for(Duration::from_millis(300)).unwrap();
        assert_eq!(sup.processes().len(), 1);
        assert!(sup.stats().reaped >= 2);
        assert!(sup.stats().quanta > 20);
    }

    #[test]
    fn cycle_records_accumulate() {
        let pool = SpinnerPool::spawn(2).expect("spawn spinners");
        let pids = pool.pids();
        let cfg = AlpsConfig::new(Nanos::from_millis(10)).with_cycle_log(true);
        let mut sup = Supervisor::new(cfg);
        sup.add_process(pids[0], 2).unwrap();
        sup.add_process(pids[1], 2).unwrap();
        sup.run_cycles(3, Duration::from_secs(5)).unwrap();
        assert!(sup.cycles_completed() >= 3);
        assert!(!sup.cycles().is_empty());
        let rec = &sup.cycles()[0];
        assert_eq!(rec.total_shares, 4);
        assert_eq!(rec.entries.len(), 2);
    }
}
