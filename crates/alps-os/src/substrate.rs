//! The [`Substrate`] adapter over a real Linux kernel.
//!
//! The generic [`alps_core::Engine`] does the scheduling; this adapter
//! gives it what the paper's unprivileged ALPS process had: the monotonic
//! clock, `/proc/<pid>/stat` progress reads, and `SIGSTOP`/`SIGCONT`
//! delivery via `kill(2)`. A pid that has vanished (or turned zombie) is
//! reported as gone rather than as an error, so the engine can reap it;
//! any other `/proc` or `kill` failure aborts the quantum with an
//! [`OsError`].

use alps_core::{Nanos, Observation, Signal, Substrate};

use crate::clock;
use crate::error::OsError;
use crate::proc;
use crate::signal;

/// Linux as a scheduling substrate.
#[derive(Debug, Clone)]
pub struct OsSubstrate {
    ns_tick: u64,
}

impl OsSubstrate {
    /// A substrate using the kernel's reported clock-tick length for
    /// `/proc` CPU-time conversion.
    pub fn new() -> Self {
        OsSubstrate {
            ns_tick: proc::ns_per_tick(),
        }
    }
}

impl Default for OsSubstrate {
    fn default() -> Self {
        OsSubstrate::new()
    }
}

impl Substrate for OsSubstrate {
    type Member = i32;
    type Error = OsError;

    fn now(&mut self) -> Nanos {
        clock::now()
    }

    fn read(&mut self, pid: i32) -> Result<Option<Observation>, OsError> {
        match proc::read_stat(pid, self.ns_tick) {
            Ok(stat) if !stat.dead() => Ok(Some(Observation {
                total_cpu: stat.cpu_time,
                blocked: stat.blocked(),
            })),
            Ok(_) | Err(OsError::NoSuchProcess(_)) => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn deliver(&mut self, pid: i32, sig: Signal) -> Result<bool, OsError> {
        let res = match sig {
            Signal::Stop => signal::sigstop(pid),
            Signal::Continue => signal::sigcont(pid),
        };
        match res {
            Ok(()) => Ok(true),
            Err(OsError::NoSuchProcess(_)) => Ok(false),
            Err(e) => Err(e),
        }
    }
}
