//! The [`Substrate`] adapter over a real Linux kernel.
//!
//! The generic [`alps_core::Engine`] does the scheduling; this adapter
//! gives it what the paper's unprivileged ALPS process had: the monotonic
//! clock, `/proc/<pid>/stat` progress reads, and `SIGSTOP`/`SIGCONT`
//! delivery via `kill(2)`. A pid that has vanished (or turned zombie) is
//! reported as gone rather than as an error, so the engine can reap it;
//! any other `/proc` or `kill` failure aborts the quantum with an
//! [`OsError`].

use alps_core::{Nanos, Observation, Signal, Substrate};

use crate::clock;
use crate::error::OsError;
use crate::proc;
use crate::signal;

/// Linux as a scheduling substrate.
#[derive(Debug, Clone)]
pub struct OsSubstrate {
    ns_tick: u64,
    /// Reusable `/proc/<pid>/stat` path buffer (cleared per read).
    path_buf: String,
    /// Reusable stat-line buffer (cleared per read). With these two, a
    /// steady-state measurement pass over N members allocates nothing.
    stat_buf: String,
}

impl OsSubstrate {
    /// A substrate using the kernel's reported clock-tick length for
    /// `/proc` CPU-time conversion.
    pub fn new() -> Self {
        OsSubstrate {
            ns_tick: proc::ns_per_tick(),
            path_buf: String::new(),
            stat_buf: String::new(),
        }
    }
}

impl Default for OsSubstrate {
    fn default() -> Self {
        OsSubstrate::new()
    }
}

impl Substrate for OsSubstrate {
    type Member = i32;
    type Error = OsError;

    fn now(&mut self) -> Nanos {
        clock::now()
    }

    fn read(&mut self, pid: i32) -> Result<Option<Observation>, OsError> {
        match proc::read_stat_into(pid, self.ns_tick, &mut self.path_buf, &mut self.stat_buf) {
            Ok(stat) if !stat.dead() => Ok(Some(Observation {
                total_cpu: stat.cpu_time,
                blocked: stat.blocked(),
            })),
            Ok(_) | Err(OsError::NoSuchProcess(_)) => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn deliver(&mut self, pid: i32, sig: Signal) -> Result<bool, OsError> {
        let res = match sig {
            Signal::Stop => signal::sigstop(pid),
            Signal::Continue => signal::sigcont(pid),
        };
        match res {
            Ok(()) => Ok(true),
            Err(OsError::NoSuchProcess(_)) => Ok(false),
            Err(e) => Err(e),
        }
    }

    /// Grouped delivery: all `SIGSTOP`s, then all `SIGCONT`s. The engine
    /// hands each member at most one transition per quantum, so grouping
    /// same-signal deliveries is outcome-equivalent to in-order delivery
    /// — and stopping before continuing means the batch never has more
    /// members runnable than both the old and the new eligible sets
    /// allow, so a slow batch can't transiently overcommit the CPU.
    ///
    /// On a `kill(2)` fault mid-batch the quantum aborts with the error
    /// and `delivered` reports nothing: with grouped passes the set of
    /// signals already sent is not a prefix of `batch`, so partial
    /// outcomes would misreport. Members whose signal did land are
    /// re-observed (and bounced members reaped) on the next quantum's
    /// read pass.
    fn apply_batch(
        &mut self,
        batch: &[(i32, Signal)],
        delivered: &mut Vec<bool>,
    ) -> Result<(), OsError> {
        let base = delivered.len();
        delivered.resize(base + batch.len(), false);
        for pass in [Signal::Stop, Signal::Continue] {
            for (i, &(pid, sig)) in batch.iter().enumerate() {
                if sig != pass {
                    continue;
                }
                match self.deliver(pid, sig) {
                    Ok(d) => delivered[base + i] = d,
                    Err(e) => {
                        delivered.truncate(base);
                        return Err(e);
                    }
                }
            }
        }
        Ok(())
    }
}
