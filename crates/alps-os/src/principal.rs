//! Principal-mode supervision on real Linux (§5).
//!
//! Schedules *groups* of processes — e.g. all processes of one user — as
//! single resource principals, refreshing each group's membership once per
//! second exactly as the paper's modified ALPS did with `kvm_getprocs`.
//! The per-quantum loop is the generic [`alps_core::Engine`] over an
//! [`OsSubstrate`]; this module adds membership
//! resolution (uid → pids) and the refresh cadence.

use std::time::Duration;

use alps_core::{AlpsConfig, Engine, EventSink, Instrumentation, Nanos, NullSink, ProcId};

use crate::clock;
use crate::error::Result;
use crate::proc;
use crate::signal;
use crate::substrate::OsSubstrate;

/// Where a principal's member pids come from at each refresh.
#[derive(Debug, Clone)]
pub enum Membership {
    /// All processes owned by this uid (the paper's per-user principals).
    Uid(u32),
    /// An explicit pid list, updatable via
    /// [`PrincipalSupervisor::set_members`].
    Pids(Vec<i32>),
}

/// A user-level proportional-share scheduler over process groups.
#[derive(Debug)]
pub struct PrincipalSupervisor {
    engine: Engine<i32>,
    sources: Vec<(ProcId, Membership)>,
    sub: OsSubstrate,
    ns_tick: u64,
    refresh_period: Nanos,
    next_refresh: Nanos,
    next_deadline: Option<Nanos>,
    refreshes: u64,
}

impl PrincipalSupervisor {
    /// Create with the given quantum configuration and membership refresh
    /// period (the paper used one second).
    pub fn new(cfg: AlpsConfig, refresh_period: Duration) -> Self {
        PrincipalSupervisor {
            // Group consumption is attributed per principal at measurement
            // granularity, as the paper's modified ALPS logged it.
            engine: Engine::new(cfg, Instrumentation::Measured),
            sources: Vec::new(),
            sub: OsSubstrate::new(),
            ns_tick: proc::ns_per_tick(),
            refresh_period: refresh_period.into(),
            next_refresh: Nanos::ZERO,
            next_deadline: None,
            refreshes: 0,
        }
    }

    /// Register a principal. Its current members are discovered and
    /// suspended at the first refresh (which happens on the next quantum).
    pub fn add_principal(&mut self, share: u64, membership: Membership) -> ProcId {
        let id = self.engine.add_principal(share);
        self.sources.push((id, membership));
        id
    }

    /// Replace the explicit pid list of a [`Membership::Pids`] principal.
    pub fn set_members(&mut self, id: ProcId, pids: Vec<i32>) {
        if let Some((_, m)) = self.sources.iter_mut().find(|(i, _)| *i == id) {
            *m = Membership::Pids(pids);
        }
    }

    /// Quanta serviced so far.
    pub fn quanta(&self) -> u64 {
        self.engine.stats().quanta
    }

    /// Membership refreshes performed so far.
    pub fn refreshes(&self) -> u64 {
        self.refreshes
    }

    /// Current members of a principal.
    pub fn members(&self, id: ProcId) -> Option<Vec<i32>> {
        self.engine.members(id)
    }

    fn resolve(&self, membership: &Membership) -> Vec<i32> {
        match membership {
            Membership::Uid(uid) => proc::pids_of_uid(*uid).unwrap_or_default(),
            Membership::Pids(pids) => pids.clone(),
        }
    }

    fn refresh(&mut self, sink: &mut dyn EventSink<i32>) -> Result<()> {
        self.refreshes += 1;
        let me = std::process::id() as i32;
        let sources: Vec<(ProcId, Membership)> = self.sources.clone();
        for (id, membership) in sources {
            let mut current = Vec::new();
            for pid in self.resolve(&membership) {
                if pid == me {
                    continue; // never self-schedule
                }
                if let Ok(stat) = proc::read_stat(pid, self.ns_tick) {
                    if !stat.dead() {
                        current.push((pid, stat.cpu_time));
                    }
                }
            }
            if let Some(change) = self.engine.set_membership(id, &current) {
                self.engine
                    .apply_signals(&mut self.sub, &change.signals, sink)?;
            }
        }
        Ok(())
    }

    /// Sleep to the next quantum boundary and run one invocation
    /// (refreshing membership first if the refresh period has elapsed).
    pub fn run_quantum(&mut self) -> Result<()> {
        self.run_quantum_with(&mut NullSink)
    }

    /// [`run_quantum`](PrincipalSupervisor::run_quantum) with an event
    /// sink observing every measurement, signal, and cycle boundary.
    pub fn run_quantum_with(&mut self, sink: &mut dyn EventSink<i32>) -> Result<()> {
        let q = self.engine.quantum();
        let deadline = match self.next_deadline {
            Some(d) => d,
            None => clock::now() + q,
        };
        clock::sleep_until(deadline);
        let now = clock::now();
        let mut next = deadline + q;
        if now >= next {
            let behind = (now - deadline).as_nanos() / q.as_nanos();
            next = deadline + q * (behind + 1);
        }
        self.next_deadline = Some(next);

        if now >= self.next_refresh {
            self.refresh(sink)?;
            self.next_refresh = now + self.refresh_period;
        }

        self.engine.run_quantum(&mut self.sub, sink)?;
        Ok(())
    }

    /// Run for (at least) the given wall-clock duration.
    pub fn run_for(&mut self, duration: Duration) -> Result<()> {
        let end = clock::now() + Nanos::from(duration);
        while clock::now() < end {
            self.run_quantum()?;
        }
        Ok(())
    }

    /// Resume every member of every principal.
    pub fn release_all(&mut self) {
        let ids: Vec<ProcId> = self.sources.iter().map(|&(id, _)| id).collect();
        for id in ids {
            for pid in self.engine.members(id).unwrap_or_default() {
                let _ = signal::sigcont(pid);
            }
        }
    }
}

impl Drop for PrincipalSupervisor {
    fn drop(&mut self) {
        self.release_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::children::SpinnerPool;

    fn cpu_of(pid: i32) -> Nanos {
        proc::read_stat(pid, proc::ns_per_tick())
            .map(|s| s.cpu_time)
            .unwrap_or(Nanos::ZERO)
    }

    #[test]
    fn two_pid_groups_split_one_to_two() {
        let pool_a = SpinnerPool::spawn(2).unwrap();
        let pool_b = SpinnerPool::spawn(2).unwrap();
        let cfg = AlpsConfig::new(Nanos::from_millis(20));
        let mut sup = PrincipalSupervisor::new(cfg, Duration::from_secs(1));
        let base: Nanos = pool_a
            .pids()
            .iter()
            .chain(pool_b.pids().iter())
            .map(|&p| cpu_of(p))
            .sum();
        let _a = sup.add_principal(1, Membership::Pids(pool_a.pids()));
        let _b = sup.add_principal(2, Membership::Pids(pool_b.pids()));
        sup.run_for(Duration::from_secs(4)).unwrap();
        sup.release_all();
        let ca: f64 = pool_a.pids().iter().map(|&p| cpu_of(p).as_secs_f64()).sum();
        let cb: f64 = pool_b.pids().iter().map(|&p| cpu_of(p).as_secs_f64()).sum();
        let _ = base;
        assert!(ca > 0.0 && cb > 0.0);
        let ratio = cb / ca;
        assert!(
            (1.2..=3.2).contains(&ratio),
            "expected ~2.0 between groups, got {cb:.2}/{ca:.2} = {ratio:.2}"
        );
        assert!(sup.refreshes() >= 1);
    }

    #[test]
    fn membership_update_is_applied() {
        let pool = SpinnerPool::spawn(2).unwrap();
        let pids = pool.pids();
        let cfg = AlpsConfig::new(Nanos::from_millis(10));
        let mut sup = PrincipalSupervisor::new(cfg, Duration::from_millis(100));
        let a = sup.add_principal(1, Membership::Pids(vec![pids[0]]));
        sup.run_for(Duration::from_millis(300)).unwrap();
        assert_eq!(sup.members(a), Some(vec![pids[0]]));
        sup.set_members(a, pids.clone());
        sup.run_for(Duration::from_millis(300)).unwrap();
        let mut got = sup.members(a).unwrap();
        got.sort_unstable();
        let mut want = pids.clone();
        want.sort_unstable();
        assert_eq!(got, want);
    }
}
