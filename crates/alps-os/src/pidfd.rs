//! Exit notification via `pidfd_open(2)` + epoll.
//!
//! The paper's supervisor learns about exits by polling: every quantum it
//! re-reads each member's `/proc/<pid>/stat` and reaps the ones that came
//! back `ESRCH`. That is O(members) syscalls per quantum whether or not
//! anything changed. A pidfd becomes readable exactly once — when its
//! process exits — so parking the quantum sleep inside `epoll_wait` over
//! the members' pidfds makes exit detection O(transitions): the supervisor
//! wakes either at the quantum deadline or the instant a member dies,
//! whichever comes first, and already knows *which* pid died without
//! touching `/proc`.
//!
//! [`ExitWatcher`] owns the epoll instance and the per-member [`PidFd`]s.
//! The one race worth naming is *exit-before-watch*: the pid dies between
//! the caller's liveness check and `pidfd_open`, which then fails `ESRCH`.
//! The watcher absorbs that by recording the pid as already exited, so the
//! next wait reports it like any other death — callers never see the race.
//!
//! `pidfd_open` needs Linux ≥ 5.3. [`ExitWatcher::new`] reports
//! [`OsError::Unsupported`] on older kernels (probed with pid 0, which is
//! rejected before the syscall can otherwise fail) and callers fall back
//! to plain clock sleeps.

use std::collections::HashMap;

use alps_core::Nanos;

use crate::clock;
use crate::error::{OsError, Result};

fn errno() -> i32 {
    std::io::Error::last_os_error().raw_os_error().unwrap_or(0)
}

/// An owned process file descriptor from `pidfd_open(2)`. Becomes
/// readable when the process exits (even into a zombie awaiting reaping).
#[derive(Debug)]
pub struct PidFd {
    fd: i32,
}

impl PidFd {
    /// Open a pidfd for `pid`.
    ///
    /// [`OsError::NoSuchProcess`] means the pid is already gone (the
    /// exit-before-watch race); [`OsError::Unsupported`] means the kernel
    /// predates `pidfd_open`.
    pub fn open(pid: i32) -> Result<PidFd> {
        // SAFETY: pidfd_open takes a pid and a flags word; no pointers.
        let fd =
            unsafe { libc::syscall(libc::SYS_pidfd_open, pid as libc::c_long, 0 as libc::c_long) };
        if fd < 0 {
            return Err(match errno() {
                libc::ESRCH => OsError::NoSuchProcess(pid),
                libc::ENOSYS => OsError::Unsupported("pidfd_open (kernel < 5.3)"),
                e => OsError::Sys {
                    op: "pidfd_open",
                    errno: e,
                },
            });
        }
        Ok(PidFd { fd: fd as i32 })
    }

    /// The raw descriptor (for epoll registration).
    pub fn as_raw_fd(&self) -> i32 {
        self.fd
    }
}

impl Drop for PidFd {
    fn drop(&mut self) {
        // SAFETY: fd is owned by this PidFd and closed exactly once.
        unsafe {
            libc::close(self.fd);
        }
    }
}

/// An epoll set of member pidfds: the supervisor's event-driven exit
/// detector and quantum sleep, rolled into one `epoll_wait`.
#[derive(Debug)]
pub struct ExitWatcher {
    epfd: i32,
    fds: HashMap<i32, PidFd>,
    /// Pids that were already dead at [`ExitWatcher::watch`] time
    /// (exit-before-watch), reported on the next wait.
    already_exited: Vec<i32>,
    events: Vec<libc::epoll_event>,
}

impl ExitWatcher {
    /// Create an empty watcher. [`OsError::Unsupported`] when pidfds are
    /// unavailable on this kernel.
    pub fn new() -> Result<ExitWatcher> {
        // Probe pidfd support up front so callers can fall back once at
        // construction rather than discovering ENOSYS per watch. Pid -1
        // is invalid, so a supporting kernel answers EINVAL and an old
        // one ENOSYS.
        // SAFETY: no pointers.
        let probe =
            unsafe { libc::syscall(libc::SYS_pidfd_open, -1 as libc::c_long, 0 as libc::c_long) };
        if probe < 0 && errno() == libc::ENOSYS {
            return Err(OsError::Unsupported("pidfd_open (kernel < 5.3)"));
        }
        if probe >= 0 {
            // Cannot happen (pid -1 is invalid), but never leak an fd.
            // SAFETY: probe is an fd we own.
            unsafe {
                libc::close(probe as i32);
            }
        }
        // SAFETY: no pointers.
        let epfd = unsafe { libc::epoll_create1(libc::EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(OsError::Sys {
                op: "epoll_create1",
                errno: errno(),
            });
        }
        Ok(ExitWatcher {
            epfd,
            fds: HashMap::new(),
            already_exited: Vec::new(),
            events: Vec::new(),
        })
    }

    /// Start watching `pid`. A pid that died before the watch could be
    /// placed is absorbed: it is reported as exited by the next wait.
    pub fn watch(&mut self, pid: i32) -> Result<()> {
        let pfd = match PidFd::open(pid) {
            Ok(pfd) => pfd,
            Err(OsError::NoSuchProcess(_)) => {
                self.already_exited.push(pid);
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        let mut ev = libc::epoll_event {
            events: libc::EPOLLIN,
            u64: pid as u32 as u64,
        };
        // SAFETY: epfd and the pidfd are live; ev is a valid event.
        let rc =
            unsafe { libc::epoll_ctl(self.epfd, libc::EPOLL_CTL_ADD, pfd.as_raw_fd(), &mut ev) };
        if rc < 0 {
            return Err(OsError::Sys {
                op: "epoll_ctl(ADD)",
                errno: errno(),
            });
        }
        self.fds.insert(pid, pfd);
        Ok(())
    }

    /// Stop watching `pid` (no-op if unwatched). Closing the pidfd
    /// removes it from the epoll set; the explicit DEL just keeps the
    /// kernel bookkeeping tight.
    pub fn unwatch(&mut self, pid: i32) {
        if let Some(pfd) = self.fds.remove(&pid) {
            // SAFETY: both fds are live; DEL ignores the event argument.
            unsafe {
                libc::epoll_ctl(
                    self.epfd,
                    libc::EPOLL_CTL_DEL,
                    pfd.as_raw_fd(),
                    std::ptr::null_mut(),
                );
            }
        }
        self.already_exited.retain(|&p| p != pid);
    }

    /// How many pids are currently watched.
    pub fn watched(&self) -> usize {
        self.fds.len()
    }

    /// Sleep until the monotonic `deadline`, collecting every pid that
    /// exits in the meantime into `exited` (plus any absorbed
    /// exit-before-watch pids). Exits do not end the sleep early — the
    /// quantum cadence stays drift-free — they are simply known by the
    /// time it returns.
    pub fn wait_until(&mut self, deadline: Nanos, exited: &mut Vec<i32>) {
        exited.append(&mut self.already_exited);
        loop {
            let now = clock::now();
            if now >= deadline {
                return;
            }
            let left = deadline - now;
            // epoll_wait speaks milliseconds; round up so the final wake
            // lands at-or-after the deadline, like clock_nanosleep.
            let ms = (left.0.div_ceil(1_000_000)).min(i32::MAX as u64) as i32;
            if !self.poll_once(ms, exited) {
                // epoll is persistently failing: sleep out the remaining
                // quantum on the clock instead, so one broken fd can
                // degrade exit latency but never turn the supervisor
                // loop into a busy spin.
                clock::sleep_until(deadline);
                return;
            }
        }
    }

    /// Drain any already-pending exits without sleeping.
    pub fn poll(&mut self, exited: &mut Vec<i32>) {
        exited.append(&mut self.already_exited);
        self.poll_once(0, exited);
    }

    /// One `epoll_wait` round. Returns `false` on unrecoverable error.
    fn poll_once(&mut self, timeout_ms: i32, exited: &mut Vec<i32>) -> bool {
        let cap = self.fds.len().max(16);
        self.events
            .resize(cap, libc::epoll_event { events: 0, u64: 0 });
        // SAFETY: the events buffer is valid for `cap` entries.
        let n = unsafe {
            libc::epoll_wait(self.epfd, self.events.as_mut_ptr(), cap as i32, timeout_ms)
        };
        if n < 0 {
            return errno() == libc::EINTR;
        }
        for i in 0..n as usize {
            let ev = self.events[i];
            let pid = { ev.u64 } as u32 as i32;
            exited.push(pid);
            self.unwatch(pid);
        }
        true
    }
}

impl Drop for ExitWatcher {
    fn drop(&mut self) {
        // SAFETY: epfd is owned and closed exactly once; PidFds close
        // themselves.
        unsafe {
            libc::close(self.epfd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::children::SpinnerPool;
    use crate::signal;

    fn watcher() -> ExitWatcher {
        match ExitWatcher::new() {
            Ok(w) => w,
            Err(OsError::Unsupported(_)) => panic!("test host lacks pidfd_open"),
            Err(e) => panic!("watcher: {e}"),
        }
    }

    #[test]
    fn observes_a_child_exit() {
        let pool = SpinnerPool::spawn(1).unwrap();
        let pid = pool.pids()[0];
        let mut w = watcher();
        w.watch(pid).unwrap();
        assert_eq!(w.watched(), 1);

        signal::sigkill(pid).unwrap();
        let mut exited = Vec::new();
        // The kill lands well within one 200ms window.
        w.wait_until(clock::now() + Nanos::from_millis(200), &mut exited);
        assert_eq!(exited, vec![pid]);
        assert_eq!(w.watched(), 0);
    }

    #[test]
    fn exit_before_watch_is_absorbed() {
        let pool = SpinnerPool::spawn(1).unwrap();
        let pid = pool.pids()[0];
        signal::sigkill(pid).unwrap();
        // Reap so the pid is fully gone, not a zombie (zombies still
        // accept pidfd_open).
        drop(pool);
        let mut w = watcher();
        w.watch(pid).unwrap();
        let mut exited = Vec::new();
        w.poll(&mut exited);
        assert_eq!(exited, vec![pid], "raced pid reported as exited");
    }

    #[test]
    fn wait_reaches_deadline_with_no_exits() {
        let pool = SpinnerPool::spawn(1).unwrap();
        let mut w = watcher();
        w.watch(pool.pids()[0]).unwrap();
        let deadline = clock::now() + Nanos::from_millis(30);
        let mut exited = Vec::new();
        w.wait_until(deadline, &mut exited);
        assert!(clock::now() >= deadline, "slept to the deadline");
        assert!(exited.is_empty());
    }

    #[test]
    fn broken_epoll_degrades_to_a_clock_sleep() {
        let mut w = watcher();
        // Sabotage the epoll fd so every wait fails EBADF.
        // SAFETY: we own epfd; Drop's later close(-1) is a harmless
        // EBADF.
        unsafe { libc::close(w.epfd) };
        w.epfd = -1;
        let deadline = clock::now() + Nanos::from_millis(30);
        let mut exited = Vec::new();
        w.wait_until(deadline, &mut exited);
        assert!(
            clock::now() >= deadline,
            "a persistent epoll error must sleep out the quantum, not return early"
        );
        assert!(exited.is_empty());
    }

    #[test]
    fn unwatch_silences_a_pid() {
        let pool = SpinnerPool::spawn(2).unwrap();
        let (a, b) = (pool.pids()[0], pool.pids()[1]);
        let mut w = watcher();
        w.watch(a).unwrap();
        w.watch(b).unwrap();
        w.unwatch(a);
        signal::sigkill(a).unwrap();
        signal::sigkill(b).unwrap();
        let mut exited = Vec::new();
        w.wait_until(clock::now() + Nanos::from_millis(200), &mut exited);
        assert_eq!(exited, vec![b], "only the still-watched pid reported");
    }
}
