//! Error type for the Linux backend.

use std::fmt;

use alps_core::ProcId;

/// Errors from `/proc` reads, signals, and clocks.
#[derive(Debug)]
pub enum OsError {
    /// An I/O error (usually a `/proc` read).
    Io(std::io::Error),
    /// `/proc/<pid>/stat` did not parse.
    Parse {
        /// The pid whose stat line was malformed.
        pid: i32,
        /// What was wrong.
        reason: String,
    },
    /// A syscall failed with the given errno.
    Sys {
        /// The operation attempted.
        op: &'static str,
        /// The errno value.
        errno: i32,
    },
    /// The target process no longer exists.
    NoSuchProcess(i32),
    /// A scheduler handle that no longer refers to a live registration
    /// (the process was removed or reaped earlier).
    Stale(ProcId),
    /// The host lacks a required facility (cgroup v2 delegation, pidfd)
    /// — callers fall back or skip.
    Unsupported(&'static str),
}

impl fmt::Display for OsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OsError::Io(e) => write!(f, "I/O error: {e}"),
            OsError::Parse { pid, reason } => {
                write!(f, "cannot parse /proc/{pid}/stat: {reason}")
            }
            OsError::Sys { op, errno } => write!(f, "{op} failed: errno {errno}"),
            OsError::NoSuchProcess(pid) => write!(f, "no such process: {pid}"),
            OsError::Stale(id) => write!(f, "stale scheduler handle: {id:?}"),
            OsError::Unsupported(what) => write!(f, "unsupported on this host: {what}"),
        }
    }
}

impl std::error::Error for OsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OsError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for OsError {
    fn from(e: std::io::Error) -> Self {
        OsError::Io(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, OsError>;
