//! cgroup-v2 actuation — the production-Linux alternative to job-control
//! signals.
//!
//! The paper's actuator is `SIGSTOP`/`SIGCONT` because 2006 offered nothing
//! better to an unprivileged process. Production Linux shares CPU with
//! cgroup v2: `cpu.weight` (proportional shares), `cpu.max` (hard caps),
//! and `cgroup.freeze` (the cgroup analogue of job control). This module
//! adds that actuator beside the signal substrate:
//!
//! * [`CgroupFs`] — a backend trait abstracting the cgroupfs file
//!   operations ALPS needs (`mkdir`, `cpu.weight`/`cpu.max`/
//!   `cgroup.freeze` writes, `cgroup.procs` moves, `cpu.stat` usage
//!   reads);
//! * [`RealCgroupFs`] — the trait over a real mounted cgroup2 hierarchy,
//!   with reusable path/content buffers so steady-state reads allocate
//!   nothing;
//! * [`FakeCgroupFs`] — a deterministic in-memory hierarchy with a
//!   weight-fair usage-accrual model and scripted fault injection, so
//!   every control-path test (and the `repro actuators` experiment) runs
//!   unprivileged;
//! * [`CgroupSubstrate`] — an [`alps_core::Substrate`] translating the
//!   engine's duty-cycle intents into cgroup writes per [`ActuatorMode`].
//!
//! ## Intent translation
//!
//! The engine speaks stop/continue. Each mode maps that intent onto a
//! different enforcement primitive:
//!
//! | engine intent | `Signals` (freezer) | `Weights` (`cpu.weight`)   | `Caps` (`cpu.max`)       |
//! |---------------|---------------------|----------------------------|--------------------------|
//! | continue      | `cgroup.freeze = 0` | `weight = clamp(share)`    | `quota = max` (uncapped) |
//! | stop          | `cgroup.freeze = 1` | `weight = 1`               | `quota = period / 100`   |
//!
//! `Signals` mode duty-cycles exactly like the paper (a frozen member is
//! fully descheduled), so it is byte-equivalent to the signal substrate —
//! the conformance suite proves this differentially. `Weights` demotes an
//! ineligible member to the minimum weight instead of freezing it: under
//! contention it still trickles, which is the qualitative difference
//! between stop/continue duty-cycling and weight-based fair-share
//! managers (Solaris SRM). `Caps` throttles an ineligible member to 1% of
//! the period — the fractional-allocation primitive of DFRS. `repro
//! actuators` measures the accuracy consequences of all three.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::fmt::Write as _;
use std::fs;
use std::io::Read as _;
use std::path::{Path, PathBuf};
use std::str::FromStr;

use alps_core::{Nanos, Observation, Signal, Substrate};

use crate::clock;
use crate::error::{OsError, Result};

/// Which enforcement primitive the supervisor actuates with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ActuatorMode {
    /// Stop/continue duty-cycling: `SIGSTOP`/`SIGCONT` on the signal
    /// substrate, `cgroup.freeze` on the cgroup substrate. The paper's
    /// semantics.
    #[default]
    Signals,
    /// Proportional shares via `cpu.weight`: an ineligible member is
    /// demoted to weight 1 rather than frozen.
    Weights,
    /// Hard caps via `cpu.max`: an ineligible member is throttled to 1%
    /// of the period rather than frozen.
    Caps,
}

impl ActuatorMode {
    /// All modes, in comparison-table order.
    pub const ALL: [ActuatorMode; 3] = [
        ActuatorMode::Signals,
        ActuatorMode::Weights,
        ActuatorMode::Caps,
    ];

    /// The lowercase CLI/report name.
    pub fn name(self) -> &'static str {
        match self {
            ActuatorMode::Signals => "signals",
            ActuatorMode::Weights => "weights",
            ActuatorMode::Caps => "caps",
        }
    }
}

impl std::fmt::Display for ActuatorMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for ActuatorMode {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, String> {
        match s {
            "signals" => Ok(ActuatorMode::Signals),
            "weights" => Ok(ActuatorMode::Weights),
            "caps" => Ok(ActuatorMode::Caps),
            other => Err(format!(
                "unknown actuator {other:?} (expected signals, weights, or caps)"
            )),
        }
    }
}

/// A `cpu.max` value: an optional quota per period. `quota = None` is the
/// file's `max` (uncapped).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuMax {
    /// Runnable time allowed per period; `None` = uncapped.
    pub quota: Option<Nanos>,
    /// The enforcement period.
    pub period: Nanos,
}

/// The default `cpu.max` period (the kernel's 100ms default).
pub const CPU_MAX_PERIOD: Nanos = Nanos(100_000_000);

impl CpuMax {
    /// Uncapped (`max <period>`).
    pub fn open() -> Self {
        CpuMax {
            quota: None,
            period: CPU_MAX_PERIOD,
        }
    }

    /// Throttled to 1% of the period — the `stop` translation in
    /// [`ActuatorMode::Caps`]. 1% of the default period is 1ms, the
    /// kernel's minimum quota.
    pub fn throttled() -> Self {
        CpuMax {
            quota: Some(Nanos(CPU_MAX_PERIOD.0 / 100)),
            period: CPU_MAX_PERIOD,
        }
    }
}

impl Default for CpuMax {
    fn default() -> Self {
        CpuMax::open()
    }
}

/// Clamp an ALPS share weight onto the kernel's `cpu.weight` range.
pub fn weight_of_share(share: u64) -> u64 {
    share.clamp(1, 10_000)
}

/// The cgroupfs operations ALPS needs, abstracted so the control path is
/// testable unprivileged ([`FakeCgroupFs`]) and runnable against a real
/// delegated subtree ([`RealCgroupFs`]).
///
/// Group names are paths relative to the backend's subtree root; `""`
/// parks the pid outside every member leaf (the dedicated [`PARKED`]
/// leaf on the real backend — the root itself must stay process-free to
/// distribute controllers — and a plain detach in the fake). A member
/// that no longer exists surfaces as `Ok(None)` from
/// [`CgroupFs::observe`] and [`OsError::NoSuchProcess`] from actuation
/// writes against its leaf, the same contract `kill(2)` gives the signal
/// substrate.
pub trait CgroupFs {
    /// The backend clock (monotonic on the real backend, scripted in the
    /// fake).
    fn now(&mut self) -> Nanos;

    /// `mkdir <group>`.
    fn create(&mut self, group: &str) -> Result<()>;

    /// `rmdir <group>` (must be empty of processes).
    fn remove(&mut self, group: &str) -> Result<()>;

    /// Write `pid` into `<group>/cgroup.procs`.
    fn attach(&mut self, group: &str, pid: i32) -> Result<()>;

    /// Write `<group>/cpu.weight`.
    fn write_weight(&mut self, group: &str, weight: u64) -> Result<()>;

    /// Write `<group>/cpu.max`.
    fn write_max(&mut self, group: &str, max: CpuMax) -> Result<()>;

    /// Write `<group>/cgroup.freeze`.
    fn write_freeze(&mut self, group: &str, frozen: bool) -> Result<()>;

    /// Observe the member attached to `group`: cumulative usage from
    /// `cpu.stat` plus the §2.4 blocked test (from `/proc/<pid>/stat` on
    /// the real backend; modeled in the fake). `Ok(None)` = member gone.
    fn observe(&mut self, group: &str, pid: i32) -> Result<Option<Observation>>;
}

// ----------------------------------------------------------------------
// RealCgroupFs
// ----------------------------------------------------------------------

/// The leaf under the ALPS root that holds processes ALPS knows about
/// but does not currently schedule: pids evacuated out of the base
/// cgroup so the `cpu` controller could be enabled there, and members
/// released from control. It lives beside the `m<pid>` member leaves;
/// the ALPS root itself stays process-free, because cgroup v2's
/// no-internal-process rule forbids a populated cgroup from
/// distributing domain controllers to its children.
pub const PARKED: &str = "parked";

fn has_controller(list: &str, ctrl: &str) -> bool {
    list.split_ascii_whitespace().any(|c| c == ctrl)
}

fn create_dir_ok(path: &Path) -> std::io::Result<()> {
    match fs::create_dir(path) {
        Err(e) if e.kind() != std::io::ErrorKind::AlreadyExists => Err(e),
        _ => Ok(()),
    }
}

/// Move every pid listed in `from/cgroup.procs` into `to/cgroup.procs`.
fn drain_procs(from: &Path, to: &Path) -> std::io::Result<()> {
    let procs = fs::read_to_string(from.join("cgroup.procs"))?;
    let dst = to.join("cgroup.procs");
    for pid in procs.split_ascii_whitespace() {
        // A pid that exits mid-move is fine; any other failure leaves
        // the source populated, which the caller's next rmdir or
        // subtree_control write reports.
        let _ = fs::write(&dst, pid);
    }
    Ok(())
}

/// Enable the cpu controller for `dir`'s children. Controller files
/// (`cpu.weight`, `cpu.max`) only exist in a cgroup when its *parent*
/// lists `cpu` in `cgroup.subtree_control`, and that write bounces off
/// the no-internal-process rule while `dir` holds processes — so when
/// `evacuate_to` is given, the populated case moves the occupants there
/// and retries.
fn enable_cpu(dir: &Path, evacuate_to: Option<&Path>) -> Result<()> {
    let ctl = dir.join("cgroup.subtree_control");
    if has_controller(&fs::read_to_string(&ctl).unwrap_or_default(), "cpu") {
        return Ok(());
    }
    if fs::write(&ctl, "+cpu").is_ok() {
        return Ok(());
    }
    if let Some(to) = evacuate_to {
        if drain_procs(dir, to).is_ok() && fs::write(&ctl, "+cpu").is_ok() {
            return Ok(());
        }
    }
    Err(OsError::Unsupported(
        "cannot enable the cpu controller for children (subtree not delegated)",
    ))
}

/// Thaw, uncap, and empty every member leaf under `root` (pids move to
/// the parked leaf), then remove it — the recovery sweep for a subtree
/// left behind by a crashed run, and the defensive pass before teardown.
fn clean_leaves(root: &Path, parked: &Path) -> std::io::Result<()> {
    for entry in fs::read_dir(root)? {
        let path = entry?.path();
        if !path.is_dir() || path == parked {
            continue;
        }
        let _ = fs::write(path.join("cgroup.freeze"), "0");
        let _ = fs::write(path.join("cpu.max"), "max");
        let _ = drain_procs(&path, parked);
        fs::remove_dir(&path)?;
    }
    Ok(())
}

/// Undo discovery: give the controllers back and return the parked pids
/// to the base cgroup, in the only order the kernel permits — the base
/// cannot take processes while its subtree distributes `cpu`, and `cpu`
/// cannot be withdrawn from the base while the root still distributes
/// it.
fn restore(base: &Path, root: &Path, parked: &Path) -> std::io::Result<()> {
    let _ = fs::write(root.join("cgroup.subtree_control"), "-cpu");
    let _ = fs::write(base.join("cgroup.subtree_control"), "-cpu");
    let _ = drain_procs(parked, base);
    match fs::remove_dir(parked) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => return Err(e),
    }
    fs::remove_dir(root)
}

/// Detect the crash-recovery layout: this process was evacuated into
/// `<base>/alps.<old>/parked` by a previous run that never tore down.
/// Returns `(base, root)` when so.
fn recover_root(own: &Path) -> Option<(PathBuf, PathBuf)> {
    if own.file_name()? != PARKED {
        return None;
    }
    let root = own.parent()?;
    if !root.file_name()?.to_str()?.starts_with("alps.") {
        return None;
    }
    Some((root.parent()?.to_path_buf(), root.to_path_buf()))
}

/// [`CgroupFs`] over a real mounted cgroup2 hierarchy, rooted at a
/// delegated subtree directory. Path and content buffers are reused so a
/// steady-state measurement pass allocates nothing.
///
/// The on-disk layout [`RealCgroupFs::discover`] builds:
///
/// ```text
/// <base>                  the caller's own cgroup, evacuated and
/// │                       process-free; subtree_control: +cpu
/// └── alps.<pid>          the ALPS root — never holds processes;
///     │                   subtree_control: +cpu
///     ├── parked          leaf: evacuated + released pids
///     └── m<pid> …        member leaves (cpu.weight / cpu.max)
/// ```
#[derive(Debug)]
pub struct RealCgroupFs {
    root: PathBuf,
    /// The cgroup the subtree was carved out of (set by `discover`);
    /// teardown returns parked pids here and hands `cpu` back.
    base: Option<PathBuf>,
    /// Reusable path buffer (truncated back to `root` per call).
    path_buf: PathBuf,
    /// Reusable file-content buffer.
    buf: String,
    ns_tick: u64,
    /// `/proc/<pid>/stat` path + content buffers for the blocked test.
    stat_path: String,
    stat_buf: String,
}

impl RealCgroupFs {
    /// A backend rooted at an existing cgroup2 directory the caller may
    /// write (a delegated subtree). The caller is responsible for the
    /// root's `cgroup.subtree_control` listing `cpu`, or member leaves
    /// will have no `cpu.weight`/`cpu.max` files; [`RealCgroupFs::discover`]
    /// arranges all of that itself.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        RealCgroupFs {
            root: root.into(),
            base: None,
            path_buf: PathBuf::new(),
            buf: String::new(),
            ns_tick: crate::proc::ns_per_tick(),
            stat_path: String::new(),
            stat_buf: String::new(),
        }
    }

    /// The subtree root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Locate the calling process's own cgroup and carve a writable ALPS
    /// subtree under it: read `/proc/self/cgroup`, resolve the v2 path
    /// under the cgroup2 mount, create `alps.<pid>` with its [`PARKED`]
    /// leaf, evacuate the base cgroup's occupants (ourselves included)
    /// into that leaf so the no-internal-process rule permits `+cpu` in
    /// the base's `cgroup.subtree_control`, and enable `+cpu` in the
    /// ALPS root's own `subtree_control` so member leaves get their
    /// `cpu.weight`/`cpu.max` files. A stale `alps.<pid>` from a crashed
    /// run is recovered: leftover leaves are thawed, uncapped, emptied
    /// into `parked`, and removed before the subtree is trusted. Fails
    /// with [`OsError::Unsupported`] when the hierarchy is absent or not
    /// delegated to us — callers (and the gated live test) skip cleanly
    /// on that.
    pub fn discover() -> Result<Self> {
        let own = fs::read_to_string("/proc/self/cgroup")
            .map_err(|_| OsError::Unsupported("no /proc/self/cgroup (cgroup v2 unavailable)"))?;
        // The v2 line is "0::<path>".
        let rel = own
            .lines()
            .find_map(|l| l.strip_prefix("0::"))
            .ok_or(OsError::Unsupported("no cgroup v2 membership line"))?
            .trim();
        // Pure-v2 hosts mount cgroup2 at /sys/fs/cgroup; hybrid hosts at
        // /sys/fs/cgroup/unified.
        let mount = ["/sys/fs/cgroup", "/sys/fs/cgroup/unified"]
            .into_iter()
            .map(Path::new)
            .find(|m| m.join("cgroup.controllers").is_file())
            .ok_or(OsError::Unsupported("no cgroup2 mount visible"))?;
        let mut own_dir = mount.to_path_buf();
        own_dir.push(rel.trim_start_matches('/'));
        if !own_dir.is_dir() {
            return Err(OsError::Unsupported("own cgroup directory not visible"));
        }
        // A crashed previous run leaves this process sitting in
        // <base>/alps.<old>/parked; resume ownership of that subtree
        // rather than nesting a fresh one inside its parked leaf.
        let (base, root, reused) = match recover_root(&own_dir) {
            Some((base, root)) => (base, root, true),
            None => {
                let root = own_dir.join(format!("alps.{}", std::process::id()));
                let reused = match fs::create_dir(&root) {
                    Ok(()) => false,
                    Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => true,
                    Err(_) => {
                        return Err(OsError::Unsupported("cannot create the ALPS subtree root"))
                    }
                };
                (own_dir, root, reused)
            }
        };
        let fail = |root: &Path, reused: bool, why: &'static str| {
            if !reused {
                let _ = fs::remove_dir(root.join(PARKED));
                let _ = fs::remove_dir(root);
            }
            Err(OsError::Unsupported(why))
        };
        let controllers = fs::read_to_string(base.join("cgroup.controllers")).unwrap_or_default();
        if !has_controller(&controllers, "cpu") {
            return fail(&root, reused, "cpu controller not available here");
        }
        let parked = root.join(PARKED);
        if create_dir_ok(&parked).is_err() {
            return fail(&root, reused, "cannot create the parked leaf");
        }
        if reused && clean_leaves(&root, &parked).is_err() {
            return fail(&root, reused, "stale ALPS subtree cannot be cleaned");
        }
        if let Err(e) = enable_cpu(&base, Some(&parked)).and_then(|()| enable_cpu(&root, None)) {
            let _ = restore(&base, &root, &parked);
            return Err(e);
        }
        let mut backend = RealCgroupFs::new(root);
        backend.base = Some(base);
        Ok(backend)
    }

    /// Tear the subtree down (shutdown cleanup): any leaf a caller
    /// forgot to release is thawed, uncapped, and emptied; parked pids
    /// return to the base cgroup, which gets its `cpu` distribution
    /// back. Without a recorded base (plain [`RealCgroupFs::new`]) only
    /// an empty subtree can be removed — there is nowhere to send parked
    /// pids.
    pub fn remove_root(&mut self) -> Result<()> {
        let parked = self.root.join(PARKED);
        match &self.base {
            Some(base) => {
                let _ = clean_leaves(&self.root, &parked);
                restore(base, &self.root, &parked)?;
            }
            None => {
                match fs::remove_dir(&parked) {
                    Ok(()) => {}
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                    Err(e) => return Err(e.into()),
                }
                fs::remove_dir(&self.root)?;
            }
        }
        Ok(())
    }

    /// `root/group/file`, built in the reusable buffer.
    fn path(&mut self, group: &str, file: &str) -> &Path {
        self.path_buf.clear();
        self.path_buf.push(&self.root);
        if !group.is_empty() {
            self.path_buf.push(group);
        }
        if !file.is_empty() {
            self.path_buf.push(file);
        }
        &self.path_buf
    }

    fn write_file(&mut self, group: &str, file: &str, contents: &str) -> Result<()> {
        let path = self.path(group, file);
        match fs::write(path, contents) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Err(OsError::Sys {
                op: "write(cgroupfs)",
                errno: libc::ENOENT,
            }),
            Err(e) => Err(e.into()),
        }
    }
}

impl CgroupFs for RealCgroupFs {
    fn now(&mut self) -> Nanos {
        clock::now()
    }

    fn create(&mut self, group: &str) -> Result<()> {
        let path = self.path(group, "");
        match fs::create_dir(path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    fn remove(&mut self, group: &str) -> Result<()> {
        let path = self.path(group, "");
        match fs::remove_dir(path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    fn attach(&mut self, group: &str, pid: i32) -> Result<()> {
        // Parking (`group == ""`) lands in the dedicated parked leaf,
        // never the root: once the root distributes the cpu controller,
        // the no-internal-process rule forbids it from holding
        // processes.
        let group = if group.is_empty() {
            create_dir_ok(&self.root.join(PARKED))?;
            PARKED
        } else {
            group
        };
        self.buf.clear();
        let _ = write!(self.buf, "{pid}");
        let contents = std::mem::take(&mut self.buf);
        let res = self.write_file(group, "cgroup.procs", &contents);
        self.buf = contents;
        // Writing a dead pid into cgroup.procs is ESRCH — surface it the
        // way kill(2) does so callers can treat the member as gone.
        match res {
            Err(OsError::Io(e)) if e.raw_os_error() == Some(libc::ESRCH) => {
                Err(OsError::NoSuchProcess(pid))
            }
            other => other,
        }
    }

    fn write_weight(&mut self, group: &str, weight: u64) -> Result<()> {
        self.buf.clear();
        let _ = write!(self.buf, "{weight}");
        let contents = std::mem::take(&mut self.buf);
        let res = self.write_file(group, "cpu.weight", &contents);
        self.buf = contents;
        res
    }

    fn write_max(&mut self, group: &str, max: CpuMax) -> Result<()> {
        self.buf.clear();
        let period_us = max.period.0 / 1_000;
        match max.quota {
            Some(q) => {
                let _ = write!(self.buf, "{} {}", q.0 / 1_000, period_us);
            }
            None => {
                let _ = write!(self.buf, "max {period_us}");
            }
        }
        let contents = std::mem::take(&mut self.buf);
        let res = self.write_file(group, "cpu.max", &contents);
        self.buf = contents;
        res
    }

    fn write_freeze(&mut self, group: &str, frozen: bool) -> Result<()> {
        self.write_file(group, "cgroup.freeze", if frozen { "1" } else { "0" })
    }

    fn observe(&mut self, group: &str, pid: i32) -> Result<Option<Observation>> {
        // Liveness + blocked state come from /proc (the cgroup itself
        // outlives its member); usage comes from the leaf's cpu.stat, so
        // a member is charged exactly what its group consumed since
        // enrollment regardless of pre-existing CPU time.
        let stat = match crate::proc::read_stat_into(
            pid,
            self.ns_tick,
            &mut self.stat_path,
            &mut self.stat_buf,
        ) {
            Ok(s) if !s.dead() => s,
            Ok(_) | Err(OsError::NoSuchProcess(_)) => return Ok(None),
            Err(e) => return Err(e),
        };
        // Inlined path build: keeps the `path_buf` and `buf` borrows on
        // disjoint fields.
        self.path_buf.clear();
        self.path_buf.push(&self.root);
        if !group.is_empty() {
            self.path_buf.push(group);
        }
        self.path_buf.push("cpu.stat");
        self.buf.clear();
        let read = fs::File::open(&self.path_buf).and_then(|mut f| f.read_to_string(&mut self.buf));
        match read {
            Ok(_) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        }
        let usage_us: u64 = self
            .buf
            .lines()
            .find_map(|l| l.strip_prefix("usage_usec "))
            .and_then(|v| v.trim().parse().ok())
            .ok_or(OsError::Sys {
                op: "parse(cpu.stat)",
                errno: 0,
            })?;
        Ok(Some(Observation {
            total_cpu: Nanos(usage_us.saturating_mul(1_000)),
            blocked: stat.blocked(),
        }))
    }
}

// ----------------------------------------------------------------------
// FakeCgroupFs
// ----------------------------------------------------------------------

/// Which [`FakeCgroupFs`] operation a scripted fault targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FakeOp {
    /// `mkdir`.
    Create,
    /// `rmdir`.
    Remove,
    /// `cgroup.procs` writes.
    Attach,
    /// `cpu.weight` writes.
    Weight,
    /// `cpu.max` writes.
    Max,
    /// `cgroup.freeze` writes.
    Freeze,
    /// `cpu.stat` reads.
    Observe,
}

/// One in-memory cgroup leaf.
#[derive(Debug, Clone, PartialEq)]
pub struct FakeGroup {
    /// `cpu.weight` (kernel default 100).
    pub weight: u64,
    /// `cpu.max`.
    pub max: CpuMax,
    /// `cgroup.freeze`.
    pub frozen: bool,
    /// Cumulative usage (`cpu.stat usage_usec`, in nanos).
    pub usage: Nanos,
    /// The attached member, if any (ALPS leaves hold exactly one).
    pub pid: Option<i32>,
    /// Whether the member currently sits on a wait channel (§2.4 input;
    /// a blocked member does not contend for CPU in [`FakeCgroupFs::advance`]).
    pub blocked: bool,
}

impl Default for FakeGroup {
    fn default() -> Self {
        FakeGroup {
            weight: 100,
            max: CpuMax::open(),
            frozen: false,
            usage: Nanos::ZERO,
            pid: None,
            blocked: false,
        }
    }
}

/// A deterministic in-memory cgroup2 hierarchy.
///
/// Two accrual entry points serve two test populations:
///
/// * [`FakeCgroupFs::charge`] — scripted accrual for differential tests:
///   the harness decides exactly how much each member burned (a frozen or
///   gone member burns nothing), mirroring the conformance mock;
/// * [`FakeCgroupFs::advance`] — the simulated kernel scheduler for the
///   `repro actuators` experiment: wall time advances and `dt × cpus` of
///   capacity is divided among contending groups proportionally to
///   `cpu.weight`, each group ceilinged by its single runnable member
///   (`dt`) and its `cpu.max` quota, by exact integer water-filling.
///   Unallocated capacity accrues to [`FakeCgroupFs::idle`].
///
/// Conservation is exact and proptested: `total_usage + retired + idle ==
/// horizon × cpus + charged` under arbitrary weight/cap/freeze churn.
///
/// Faults are scripted per operation with [`FakeCgroupFs::fail_next`]: the
/// next N calls of that operation fail with the given errno (EROFS for a
/// read-only mount, ENOENT for a vanished leaf, …).
#[derive(Debug, Clone, Default)]
pub struct FakeCgroupFs {
    now: Nanos,
    cpus: u32,
    groups: BTreeMap<String, FakeGroup>,
    /// Pids that have exited (attach bounces, observe reports gone,
    /// actuation against their leaf bounces like `kill(2)`).
    gone: BTreeSet<i32>,
    /// Capacity left unallocated by [`FakeCgroupFs::advance`].
    idle: Nanos,
    /// Usage of removed groups (conservation bookkeeping).
    retired: Nanos,
    /// Total scripted [`FakeCgroupFs::charge`] accrual.
    charged: Nanos,
    /// Wall time advanced via [`FakeCgroupFs::advance`] (not
    /// [`FakeCgroupFs::tick`]).
    horizon: Nanos,
    faults: HashMap<FakeOp, VecDeque<(i32, u32)>>,
}

impl FakeCgroupFs {
    /// An empty hierarchy modeling a machine with `cpus` CPUs.
    pub fn new(cpus: u32) -> Self {
        assert!(cpus >= 1, "a machine has at least one CPU");
        FakeCgroupFs {
            cpus,
            ..FakeCgroupFs::default()
        }
    }

    /// Script the next `times` calls of `op` to fail with `errno`
    /// (run-length encoded, so `u32::MAX` models a permanently broken
    /// subtree at no cost).
    pub fn fail_next(&mut self, op: FakeOp, errno: i32, times: u32) {
        if times > 0 {
            self.faults.entry(op).or_default().push_back((errno, times));
        }
    }

    fn check_fault(&mut self, op: FakeOp, opname: &'static str) -> Result<()> {
        if let Some(q) = self.faults.get_mut(&op) {
            if let Some((errno, left)) = q.front_mut() {
                let errno = *errno;
                *left -= 1;
                if *left == 0 {
                    q.pop_front();
                }
                return Err(OsError::Sys { op: opname, errno });
            }
        }
        Ok(())
    }

    /// Advance the clock without accruing usage (the differential
    /// harness's scripted clock; accrual arrives via
    /// [`FakeCgroupFs::charge`]).
    pub fn tick(&mut self, dt: Nanos) {
        self.now = self.now.saturating_add(dt);
    }

    /// Scripted accrual: add `burn` to a group's usage unless the group
    /// is frozen or its member has exited (both burn nothing, mirroring a
    /// stopped/gone process). Returns whether anything was charged.
    pub fn charge(&mut self, group: &str, burn: Nanos) -> bool {
        let gone = &self.gone;
        match self.groups.get_mut(group) {
            Some(g) if !g.frozen && g.pid.is_some_and(|p| !gone.contains(&p)) => {
                g.usage = g.usage.saturating_add(burn);
                self.charged = self.charged.saturating_add(burn);
                true
            }
            _ => false,
        }
    }

    /// Mark a member as exited: observation reports it gone, attach and
    /// leaf actuation bounce.
    pub fn kill_pid(&mut self, pid: i32) {
        self.gone.insert(pid);
    }

    /// Set a group's blocked flag (the member sits on a wait channel).
    pub fn set_blocked(&mut self, group: &str, blocked: bool) {
        if let Some(g) = self.groups.get_mut(group) {
            g.blocked = blocked;
        }
    }

    /// Inspect a group.
    pub fn group(&self, name: &str) -> Option<&FakeGroup> {
        self.groups.get(name)
    }

    /// Iterate over the live groups in name order.
    pub fn groups(&self) -> impl Iterator<Item = (&str, &FakeGroup)> {
        self.groups.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Σ usage over live groups.
    pub fn total_usage(&self) -> Nanos {
        self.groups.values().map(|g| g.usage).sum()
    }

    /// Capacity [`FakeCgroupFs::advance`] left unallocated.
    pub fn idle(&self) -> Nanos {
        self.idle
    }

    /// Usage carried by groups that were later removed.
    pub fn retired(&self) -> Nanos {
        self.retired
    }

    /// Total scripted [`FakeCgroupFs::charge`] accrual.
    pub fn charged(&self) -> Nanos {
        self.charged
    }

    /// Wall time advanced through [`FakeCgroupFs::advance`].
    pub fn horizon(&self) -> Nanos {
        self.horizon
    }

    /// The modeled CPU count.
    pub fn cpus(&self) -> u32 {
        self.cpus
    }

    /// Advance wall time by `dt`, dividing `dt × cpus` of capacity among
    /// contending groups (attached live member, not frozen, not blocked)
    /// proportionally to weight by exact integer water-filling. Each
    /// group's grant is ceilinged by `dt` (one runnable member) and by
    /// its `cpu.max` quota fraction. Conservation is exact: every nano
    /// of capacity lands in a group's usage or in [`FakeCgroupFs::idle`].
    pub fn advance(&mut self, dt: Nanos) {
        self.now = self.now.saturating_add(dt);
        self.horizon = self.horizon.saturating_add(dt);
        let mut capacity: u128 = dt.0 as u128 * self.cpus as u128;
        let gone = &self.gone;
        // (name, weight, ceiling) of every contender, in name order.
        let mut open: Vec<(String, u128, u128)> = self
            .groups
            .iter()
            .filter(|(_, g)| !g.frozen && !g.blocked && g.pid.is_some_and(|p| !gone.contains(&p)))
            .map(|(name, g)| {
                let cap = match g.max.quota {
                    Some(q) if g.max.period.0 > 0 => {
                        (q.0 as u128 * dt.0 as u128) / g.max.period.0 as u128
                    }
                    _ => dt.0 as u128,
                };
                (name.clone(), g.weight.max(1) as u128, cap.min(dt.0 as u128))
            })
            .collect();
        let mut grants: Vec<(String, u128)> = Vec::with_capacity(open.len());
        while !open.is_empty() && capacity > 0 {
            let wsum: u128 = open.iter().map(|&(_, w, _)| w).sum();
            // Provisional weight-proportional split, remainder (from
            // integer division) handed to the earliest groups so every
            // nano is assigned.
            let mut provisional: Vec<u128> =
                open.iter().map(|&(_, w, _)| capacity * w / wsum).collect();
            let mut rem = capacity - provisional.iter().sum::<u128>();
            for p in provisional.iter_mut() {
                if rem == 0 {
                    break;
                }
                *p += 1;
                rem -= 1;
            }
            // Groups whose ceiling binds take exactly their ceiling and
            // leave; the freed capacity re-splits among the rest.
            let mut any_capped = false;
            let mut still_open = Vec::with_capacity(open.len());
            for (i, (name, w, ceiling)) in open.drain(..).enumerate() {
                if provisional[i] >= ceiling {
                    any_capped = true;
                    capacity -= ceiling;
                    grants.push((name, ceiling));
                } else {
                    still_open.push((name, w, ceiling));
                }
            }
            open = still_open;
            if !any_capped {
                // No ceiling binds: the provisional split is final.
                // Indices align because no element was drained above.
                for ((name, _, _), p) in open.drain(..).zip(provisional) {
                    capacity -= p;
                    grants.push((name, p));
                }
            }
        }
        for (name, grant) in grants {
            if let Some(g) = self.groups.get_mut(&name) {
                g.usage = g.usage.saturating_add(Nanos(grant as u64));
            }
        }
        self.idle = self.idle.saturating_add(Nanos(capacity as u64));
    }

    /// Whether `pid`'s leaf actuation should bounce: the fake treats a
    /// leaf whose sole member has exited as stale, the contract the
    /// engine's reap path expects from `kill(2)`. (A real kernel accepts
    /// such writes silently; the real supervisor learns the same fact
    /// through pidfd exit notification instead.)
    fn stale(&self, group: &str) -> Option<i32> {
        let g = self.groups.get(group)?;
        let pid = g.pid?;
        self.gone.contains(&pid).then_some(pid)
    }
}

impl CgroupFs for FakeCgroupFs {
    fn now(&mut self) -> Nanos {
        self.now
    }

    fn create(&mut self, group: &str) -> Result<()> {
        self.check_fault(FakeOp::Create, "mkdir(cgroup)")?;
        self.groups.entry(group.to_string()).or_default();
        Ok(())
    }

    fn remove(&mut self, group: &str) -> Result<()> {
        self.check_fault(FakeOp::Remove, "rmdir(cgroup)")?;
        if let Some(g) = self.groups.remove(group) {
            self.retired = self.retired.saturating_add(g.usage);
        }
        Ok(())
    }

    fn attach(&mut self, group: &str, pid: i32) -> Result<()> {
        self.check_fault(FakeOp::Attach, "write(cgroup.procs)")?;
        if self.gone.contains(&pid) {
            return Err(OsError::NoSuchProcess(pid));
        }
        if group.is_empty() {
            // Parking in the subtree root: detach from whichever leaf
            // holds the pid.
            for g in self.groups.values_mut() {
                if g.pid == Some(pid) {
                    g.pid = None;
                }
            }
            return Ok(());
        }
        match self.groups.get_mut(group) {
            Some(g) => {
                g.pid = Some(pid);
                Ok(())
            }
            None => Err(OsError::Sys {
                op: "write(cgroup.procs)",
                errno: libc::ENOENT,
            }),
        }
    }

    fn write_weight(&mut self, group: &str, weight: u64) -> Result<()> {
        self.check_fault(FakeOp::Weight, "write(cpu.weight)")?;
        if let Some(pid) = self.stale(group) {
            return Err(OsError::NoSuchProcess(pid));
        }
        match self.groups.get_mut(group) {
            Some(g) => {
                g.weight = weight;
                Ok(())
            }
            None => Err(OsError::Sys {
                op: "write(cpu.weight)",
                errno: libc::ENOENT,
            }),
        }
    }

    fn write_max(&mut self, group: &str, max: CpuMax) -> Result<()> {
        self.check_fault(FakeOp::Max, "write(cpu.max)")?;
        if let Some(pid) = self.stale(group) {
            return Err(OsError::NoSuchProcess(pid));
        }
        match self.groups.get_mut(group) {
            Some(g) => {
                g.max = max;
                Ok(())
            }
            None => Err(OsError::Sys {
                op: "write(cpu.max)",
                errno: libc::ENOENT,
            }),
        }
    }

    fn write_freeze(&mut self, group: &str, frozen: bool) -> Result<()> {
        self.check_fault(FakeOp::Freeze, "write(cgroup.freeze)")?;
        if let Some(pid) = self.stale(group) {
            return Err(OsError::NoSuchProcess(pid));
        }
        match self.groups.get_mut(group) {
            Some(g) => {
                g.frozen = frozen;
                Ok(())
            }
            None => Err(OsError::Sys {
                op: "write(cgroup.freeze)",
                errno: libc::ENOENT,
            }),
        }
    }

    fn observe(&mut self, group: &str, pid: i32) -> Result<Option<Observation>> {
        self.check_fault(FakeOp::Observe, "read(cpu.stat)")?;
        if self.gone.contains(&pid) {
            return Ok(None);
        }
        Ok(self.groups.get(group).and_then(|g| {
            (g.pid == Some(pid)).then_some(Observation {
                total_cpu: g.usage,
                blocked: g.blocked,
            })
        }))
    }
}

// ----------------------------------------------------------------------
// CgroupSubstrate
// ----------------------------------------------------------------------

/// Per-member actuation state.
#[derive(Debug, Clone)]
struct MemberCtl {
    group: String,
    /// The share-derived `cpu.weight` restored on `continue` in
    /// [`ActuatorMode::Weights`].
    weight: u64,
}

/// A cgroup-v2 [`Substrate`]: one leaf group per controlled member, the
/// engine's stop/continue intents translated into freezer, weight, or cap
/// writes per [`ActuatorMode`] (see the module-level translation table).
#[derive(Debug)]
pub struct CgroupSubstrate<F: CgroupFs> {
    fs: F,
    mode: ActuatorMode,
    members: HashMap<i32, MemberCtl>,
    /// Reusable group-name buffer for enrollment.
    name_buf: String,
}

impl<F: CgroupFs> CgroupSubstrate<F> {
    /// A substrate actuating through `fs` in the given mode.
    pub fn new(fs: F, mode: ActuatorMode) -> Self {
        CgroupSubstrate {
            fs,
            mode,
            members: HashMap::new(),
            name_buf: String::new(),
        }
    }

    /// The actuation mode.
    pub fn mode(&self) -> ActuatorMode {
        self.mode
    }

    /// The backing filesystem.
    pub fn fs(&self) -> &F {
        &self.fs
    }

    /// The backing filesystem, mutably (test hooks on [`FakeCgroupFs`]).
    pub fn fs_mut(&mut self) -> &mut F {
        &mut self.fs
    }

    /// The leaf group a member is enrolled in.
    pub fn group_of(&self, pid: i32) -> Option<&str> {
        self.members.get(&pid).map(|m| m.group.as_str())
    }

    /// Enrolled member count.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether no members are enrolled.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Take control of `pid`: create its leaf (`m<pid>`), configure
    /// weight and cap for the eligible state, and move the pid in. The
    /// caller delivers the initial suspend (per §2.2) afterwards, exactly
    /// as with the signal substrate.
    pub fn enroll(&mut self, pid: i32, share: u64) -> Result<()> {
        self.name_buf.clear();
        let _ = write!(self.name_buf, "m{pid}");
        let group = self.name_buf.clone();
        let weight = weight_of_share(share);
        self.fs.create(&group)?;
        self.fs.write_weight(&group, weight)?;
        self.fs.write_max(&group, CpuMax::open())?;
        if let Err(e) = self.fs.attach(&group, pid) {
            // The pid died between the caller's liveness check and the
            // move: tear the leaf back down and report it gone.
            let _ = self.fs.remove(&group);
            return Err(e);
        }
        self.members.insert(pid, MemberCtl { group, weight });
        Ok(())
    }

    /// Release `pid` from control: thaw/uncap its leaf, park the pid in
    /// the backend's park location (the [`PARKED`] leaf on the real
    /// backend), and remove the leaf. Gone members release trivially.
    pub fn release(&mut self, pid: i32) -> Result<()> {
        let Some(ctl) = self.members.remove(&pid) else {
            return Ok(());
        };
        // Restore the eligible state first so the member is runnable the
        // moment it leaves the leaf (nothing may be left frozen).
        match self.restore(&ctl) {
            Ok(()) | Err(OsError::NoSuchProcess(_)) => {}
            Err(e) => {
                self.members.insert(pid, ctl);
                return Err(e);
            }
        }
        match self.fs.attach("", pid) {
            Ok(()) | Err(OsError::NoSuchProcess(_)) => {}
            Err(e) => {
                self.members.insert(pid, ctl);
                return Err(e);
            }
        }
        self.fs.remove(&ctl.group)?;
        Ok(())
    }

    fn restore(&mut self, ctl: &MemberCtl) -> Result<()> {
        match self.mode {
            ActuatorMode::Signals => self.fs.write_freeze(&ctl.group, false),
            ActuatorMode::Weights => self.fs.write_weight(&ctl.group, ctl.weight),
            ActuatorMode::Caps => self.fs.write_max(&ctl.group, CpuMax::open()),
        }
    }

    /// Record a share change: updates the weight restored on `continue`
    /// in [`ActuatorMode::Weights`] (and pushes it immediately — a demoted
    /// member keeps weight 1 until its next `continue` regardless, since
    /// the stop translation always writes 1).
    pub fn set_share(&mut self, pid: i32, share: u64) -> Result<()> {
        let Some(ctl) = self.members.get_mut(&pid) else {
            return Err(OsError::NoSuchProcess(pid));
        };
        ctl.weight = weight_of_share(share);
        Ok(())
    }

    /// Release every enrolled member (shutdown; errors ignored so one
    /// stale leaf cannot leave the rest frozen).
    pub fn release_all(&mut self) {
        let pids: Vec<i32> = self.members.keys().copied().collect();
        for pid in pids {
            let _ = self.release(pid);
        }
    }
}

impl<F: CgroupFs> Substrate for CgroupSubstrate<F> {
    type Member = i32;
    type Error = OsError;

    fn now(&mut self) -> Nanos {
        self.fs.now()
    }

    fn read(&mut self, pid: i32) -> Result<Option<Observation>> {
        let Some(ctl) = self.members.get(&pid) else {
            return Ok(None);
        };
        // Borrow dance: observe needs &mut fs while ctl borrows members.
        let group = ctl.group.clone();
        self.fs.observe(&group, pid)
    }

    fn deliver(&mut self, pid: i32, sig: Signal) -> Result<bool> {
        let Some(ctl) = self.members.get(&pid) else {
            return Ok(false);
        };
        let group = ctl.group.clone();
        let weight = ctl.weight;
        let res = match (self.mode, sig) {
            (ActuatorMode::Signals, Signal::Stop) => self.fs.write_freeze(&group, true),
            (ActuatorMode::Signals, Signal::Continue) => self.fs.write_freeze(&group, false),
            (ActuatorMode::Weights, Signal::Stop) => self.fs.write_weight(&group, 1),
            (ActuatorMode::Weights, Signal::Continue) => self.fs.write_weight(&group, weight),
            (ActuatorMode::Caps, Signal::Stop) => self.fs.write_max(&group, CpuMax::throttled()),
            (ActuatorMode::Caps, Signal::Continue) => self.fs.write_max(&group, CpuMax::open()),
        };
        match res {
            Ok(()) => Ok(true),
            Err(OsError::NoSuchProcess(_)) => Ok(false),
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn observed(fs: &mut FakeCgroupFs, group: &str, pid: i32) -> Observation {
        fs.observe(group, pid).unwrap().expect("member alive")
    }

    #[test]
    fn fake_charge_respects_freeze_and_exit() {
        let mut fs = FakeCgroupFs::new(1);
        fs.create("m1").unwrap();
        fs.attach("m1", 1).unwrap();
        assert!(fs.charge("m1", Nanos(100)));
        fs.write_freeze("m1", true).unwrap();
        assert!(!fs.charge("m1", Nanos(50)), "frozen members burn nothing");
        fs.write_freeze("m1", false).unwrap();
        fs.kill_pid(1);
        assert!(!fs.charge("m1", Nanos(50)), "gone members burn nothing");
        assert_eq!(fs.total_usage(), Nanos(100));
        assert_eq!(fs.observe("m1", 1).unwrap(), None, "gone member observed");
    }

    #[test]
    fn fake_advance_splits_by_weight() {
        let mut fs = FakeCgroupFs::new(1);
        for (g, w, pid) in [("a", 100, 1), ("b", 300, 2)] {
            fs.create(g).unwrap();
            fs.write_weight(g, w).unwrap();
            fs.attach(g, pid).unwrap();
        }
        fs.advance(Nanos(4_000_000));
        let a = observed(&mut fs, "a", 1).total_cpu;
        let b = observed(&mut fs, "b", 2).total_cpu;
        assert_eq!(a, Nanos(1_000_000));
        assert_eq!(b, Nanos(3_000_000));
        assert_eq!(fs.idle(), Nanos::ZERO);
    }

    #[test]
    fn fake_advance_honors_caps_and_single_member_ceiling() {
        let mut fs = FakeCgroupFs::new(2);
        for (g, pid) in [("a", 1), ("b", 2)] {
            fs.create(g).unwrap();
            fs.attach(g, pid).unwrap();
        }
        // a capped at 10% of the period; b uncapped but a single member
        // can use at most one CPU's worth of dt.
        fs.write_max(
            "a",
            CpuMax {
                quota: Some(Nanos(CPU_MAX_PERIOD.0 / 10)),
                period: CPU_MAX_PERIOD,
            },
        )
        .unwrap();
        let dt = Nanos(10_000_000);
        fs.advance(dt);
        let a = observed(&mut fs, "a", 1).total_cpu;
        let b = observed(&mut fs, "b", 2).total_cpu;
        assert_eq!(a, Nanos(1_000_000), "cap binds at 10% of dt");
        assert_eq!(b, dt, "one runnable member saturates one CPU");
        // 2 CPUs × 10ms = 20ms capacity; 11ms granted, 9ms idle.
        assert_eq!(fs.idle(), Nanos(9_000_000));
        assert_eq!(
            fs.total_usage() + fs.idle(),
            Nanos(dt.0 * 2),
            "conservation"
        );
    }

    #[test]
    fn fake_faults_fire_in_order_and_clear() {
        let mut fs = FakeCgroupFs::new(1);
        fs.create("m1").unwrap();
        fs.attach("m1", 1).unwrap();
        fs.fail_next(FakeOp::Weight, libc::EROFS, 2);
        for _ in 0..2 {
            match fs.write_weight("m1", 5) {
                Err(OsError::Sys { errno, .. }) => assert_eq!(errno, libc::EROFS),
                other => panic!("expected EROFS, got {other:?}"),
            }
        }
        fs.write_weight("m1", 5).unwrap();
        assert_eq!(fs.group("m1").unwrap().weight, 5);
    }

    #[test]
    fn substrate_translates_intents_per_mode() {
        for mode in ActuatorMode::ALL {
            let mut sub = CgroupSubstrate::new(FakeCgroupFs::new(1), mode);
            sub.enroll(7, 300).unwrap();
            let group = sub.group_of(7).unwrap().to_string();
            assert!(sub.deliver(7, Signal::Stop).unwrap());
            {
                let g = sub.fs().group(&group).unwrap();
                match mode {
                    ActuatorMode::Signals => assert!(g.frozen),
                    ActuatorMode::Weights => assert_eq!(g.weight, 1),
                    ActuatorMode::Caps => assert_eq!(g.max, CpuMax::throttled()),
                }
            }
            assert!(sub.deliver(7, Signal::Continue).unwrap());
            let g = sub.fs().group(&group).unwrap();
            assert!(!g.frozen);
            match mode {
                ActuatorMode::Signals => assert_eq!(g.weight, 300),
                ActuatorMode::Weights => assert_eq!(g.weight, 300),
                ActuatorMode::Caps => assert_eq!(g.max, CpuMax::open()),
            }
        }
    }

    #[test]
    fn substrate_reports_gone_members() {
        let mut sub = CgroupSubstrate::new(FakeCgroupFs::new(1), ActuatorMode::Signals);
        sub.enroll(9, 1).unwrap();
        assert!(sub.read(9).unwrap().is_some());
        sub.fs_mut().kill_pid(9);
        assert_eq!(sub.read(9).unwrap(), None);
        assert!(!sub.deliver(9, Signal::Stop).unwrap(), "actuation bounces");
        assert_eq!(sub.read(12345).unwrap(), None, "never-enrolled pid");
        assert!(!sub.deliver(12345, Signal::Continue).unwrap());
    }

    #[test]
    fn release_thaws_parks_and_removes_the_leaf() {
        let mut sub = CgroupSubstrate::new(FakeCgroupFs::new(1), ActuatorMode::Signals);
        sub.enroll(4, 2).unwrap();
        sub.deliver(4, Signal::Stop).unwrap();
        sub.release(4).unwrap();
        assert!(sub.group_of(4).is_none());
        assert!(sub.fs().group("m4").is_none(), "leaf removed");
        assert!(sub.is_empty());
        sub.release(4).unwrap(); // idempotent
    }

    #[test]
    fn enroll_of_a_dead_pid_cleans_up_and_errors() {
        let mut fs = FakeCgroupFs::new(1);
        fs.kill_pid(3);
        let mut sub = CgroupSubstrate::new(fs, ActuatorMode::Signals);
        match sub.enroll(3, 1) {
            Err(OsError::NoSuchProcess(3)) => {}
            other => panic!("expected NoSuchProcess, got {other:?}"),
        }
        assert!(sub.fs().group("m3").is_none(), "half-built leaf torn down");
    }

    #[test]
    fn actuator_mode_parses() {
        assert_eq!("signals".parse::<ActuatorMode>(), Ok(ActuatorMode::Signals));
        assert_eq!("weights".parse::<ActuatorMode>(), Ok(ActuatorMode::Weights));
        assert_eq!("caps".parse::<ActuatorMode>(), Ok(ActuatorMode::Caps));
        assert!("cfs".parse::<ActuatorMode>().is_err());
    }

    #[test]
    fn blocked_groups_do_not_contend() {
        let mut fs = FakeCgroupFs::new(1);
        for (g, pid) in [("a", 1), ("b", 2)] {
            fs.create(g).unwrap();
            fs.attach(g, pid).unwrap();
        }
        fs.set_blocked("a", true);
        fs.advance(Nanos(1_000_000));
        assert_eq!(observed(&mut fs, "a", 1).total_cpu, Nanos::ZERO);
        assert!(observed(&mut fs, "a", 1).blocked);
        assert_eq!(observed(&mut fs, "b", 2).total_cpu, Nanos(1_000_000));
    }
}
