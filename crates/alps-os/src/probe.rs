//! Live measurement of the Table-1 operation costs on *this* machine.
//!
//! The paper reports, for its 2.2 GHz Pentium 4 running FreeBSD 4.8:
//! timer receipt 9.02 µs, progress measurement 1.1 + 17.4·n µs, signal
//! 0.97 µs. `repro table1` reruns the equivalent micro-benchmarks here
//! (Linux, `/proc` reads instead of `kvm`) so the cost model can be
//! compared against current hardware.

use alps_core::Nanos;

use crate::clock;
use crate::error::Result;
use crate::proc;

/// Measured operation costs on the current machine, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table1Probe {
    /// Cost of a minimal timed sleep/wake round trip (timer receipt).
    pub timer_event_us: f64,
    /// Fixed cost of a progress-measurement pass.
    pub measure_base_us: f64,
    /// Per-process cost of reading progress (`/proc/<pid>/stat`).
    pub measure_per_proc_us: f64,
    /// Cost of sending one signal.
    pub signal_us: f64,
}

fn time_per_iter(iters: u32, f: impl FnMut()) -> f64 {
    let mut f = f;
    let start = clock::now();
    for _ in 0..iters {
        f();
    }
    let elapsed = clock::now() - start;
    elapsed.as_micros_f64() / iters as f64
}

/// Run the Table-1 micro-benchmarks. `iters` controls precision (500 is
/// plenty; the paper's numbers are microsecond-scale).
pub fn probe_table1(iters: u32) -> Result<Table1Probe> {
    let me = std::process::id() as i32;
    let tick = proc::ns_per_tick();

    // Timer receipt: an immediate absolute sleep (syscall + return).
    let timer_event_us = time_per_iter(iters, || {
        clock::sleep_until(clock::now().saturating_sub(Nanos::from_secs(1)));
    });

    // Measure: one /proc/<pid>/stat read per process, through the same
    // reusable buffers the supervisor's batched read path uses.
    let mut path_buf = String::new();
    let mut stat_buf = String::new();
    let read_one_us = time_per_iter(iters, || {
        let _ = proc::read_stat_into(me, tick, &mut path_buf, &mut stat_buf);
    });
    // Batch of 8 reads to split fixed vs per-proc cost by a 2-point fit.
    let mut path_buf = String::new();
    let mut stat_buf = String::new();
    let read_eight_us = time_per_iter(iters / 4, || {
        for _ in 0..8 {
            let _ = proc::read_stat_into(me, tick, &mut path_buf, &mut stat_buf);
        }
    });
    let measure_per_proc_us = ((read_eight_us - read_one_us) / 7.0).max(0.0);
    let measure_base_us = (read_one_us - measure_per_proc_us).max(0.0);

    // Signal: kill(pid, 0) performs the full permission path without
    // delivering anything.
    let signal_us = time_per_iter(iters, || {
        // SAFETY: kill with signal 0 only checks permissions.
        unsafe {
            libc::kill(me, 0);
        }
    });

    Ok(Table1Probe {
        timer_event_us,
        measure_base_us,
        measure_per_proc_us,
        signal_us,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_produces_sane_magnitudes() {
        let p = probe_table1(200).unwrap();
        // Micro-ops on any modern machine land between 0.01 µs and 1 ms.
        for (label, v) in [
            ("timer", p.timer_event_us),
            ("per-proc", p.measure_per_proc_us),
            ("signal", p.signal_us),
        ] {
            assert!(v > 0.0, "{label}: {v}");
            assert!(v < 1000.0, "{label}: {v}");
        }
        assert!(p.measure_base_us >= 0.0);
        // Reading /proc costs more than sending a null signal, as in the
        // paper (17.4 µs vs 0.97 µs).
        assert!(
            p.measure_per_proc_us + p.measure_base_us > p.signal_us,
            "measurement should dominate: {p:?}"
        );
    }
}
