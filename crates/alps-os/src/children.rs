//! Helpers for spawning compute-bound child processes — the synthetic
//! workload of the paper's evaluation, as real processes.

use std::process::{Child, Command, Stdio};

use crate::error::Result;
use crate::signal;

/// A pool of spinner (busy-loop) child processes, killed on drop.
#[derive(Debug)]
pub struct SpinnerPool {
    children: Vec<Child>,
}

impl SpinnerPool {
    /// Spawn `n` compute-bound children (`sh` busy loops).
    pub fn spawn(n: usize) -> Result<Self> {
        let mut children = Vec::with_capacity(n);
        for _ in 0..n {
            let child = Command::new("/bin/sh")
                .arg("-c")
                .arg("while :; do :; done")
                .stdin(Stdio::null())
                .stdout(Stdio::null())
                .stderr(Stdio::null())
                .spawn()?;
            children.push(child);
        }
        Ok(SpinnerPool { children })
    }

    /// Pids of the children.
    pub fn pids(&self) -> Vec<i32> {
        self.children.iter().map(|c| c.id() as i32).collect()
    }

    /// Number of children.
    pub fn len(&self) -> usize {
        self.children.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.children.is_empty()
    }
}

impl SpinnerPool {
    /// Spawn one additional child that alternates CPU bursts with sleeps
    /// (the paper's §3.3 I/O workload as a real process): it busy-loops
    /// `loop_iters` shell iterations, sleeps `sleep_secs`, and repeats.
    /// Returns the new child's pid.
    pub fn spawn_burst_sleeper(&mut self, loop_iters: u64, sleep_secs: f64) -> Result<i32> {
        let script = format!(
            "while :; do i=0; while [ $i -lt {loop_iters} ]; do i=$((i+1)); done; sleep {sleep_secs}; done"
        );
        let child = Command::new("/bin/sh")
            .arg("-c")
            .arg(script)
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()?;
        let pid = child.id() as i32;
        self.children.push(child);
        Ok(pid)
    }
}

impl Drop for SpinnerPool {
    fn drop(&mut self) {
        for child in &mut self.children {
            let pid = child.id() as i32;
            // A stopped process cannot die from SIGKILL until continued.
            let _ = signal::sigcont(pid);
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proc;

    #[test]
    fn spinners_consume_cpu_and_die_on_drop() {
        let pids;
        {
            let pool = SpinnerPool::spawn(2).unwrap();
            pids = pool.pids();
            assert_eq!(pool.len(), 2);
            std::thread::sleep(std::time::Duration::from_millis(300));
            let tick = proc::ns_per_tick();
            let total: u64 = pids
                .iter()
                .map(|&p| proc::read_stat(p, tick).map(|s| s.cpu_time.0).unwrap_or(0))
                .sum();
            assert!(total > 0, "spinners burned CPU");
        }
        // After drop, the pids are gone (reaped by wait()).
        for pid in pids {
            assert!(!signal::alive(pid), "pid {pid} still alive after drop");
        }
    }
}
