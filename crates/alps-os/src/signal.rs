//! Job-control signals — the mechanism ALPS uses to move processes between
//! the eligible and ineligible groups (§2.2).

use crate::error::{OsError, Result};

fn send(pid: i32, sig: i32, op: &'static str) -> Result<()> {
    // SAFETY: kill(2) has no memory preconditions; pid is caller-supplied.
    let rc = unsafe { libc::kill(pid, sig) };
    if rc == 0 {
        return Ok(());
    }
    let errno = std::io::Error::last_os_error().raw_os_error().unwrap_or(0);
    if errno == libc::ESRCH {
        Err(OsError::NoSuchProcess(pid))
    } else {
        Err(OsError::Sys { op, errno })
    }
}

/// Suspend a process (`SIGSTOP` — not catchable or ignorable).
pub fn sigstop(pid: i32) -> Result<()> {
    send(pid, libc::SIGSTOP, "kill(SIGSTOP)")
}

/// Resume a process (`SIGCONT`).
pub fn sigcont(pid: i32) -> Result<()> {
    send(pid, libc::SIGCONT, "kill(SIGCONT)")
}

/// Probe whether a process exists (signal 0).
pub fn alive(pid: i32) -> bool {
    // SAFETY: kill(2) with signal 0 only performs the permission check.
    unsafe { libc::kill(pid, 0) == 0 }
}

/// Terminate a process (`SIGKILL`) — used by test/example harnesses to
/// clean up spinner children.
pub fn sigkill(pid: i32) -> Result<()> {
    send(pid, libc::SIGKILL, "kill(SIGKILL)")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::process::Command;

    #[test]
    fn stop_and_continue_a_child() {
        let mut child = Command::new("sleep").arg("30").spawn().unwrap();
        let pid = child.id() as i32;
        assert!(alive(pid));
        sigstop(pid).unwrap();
        // State must become T (stopped).
        let tick = crate::proc::ns_per_tick();
        let mut stopped = false;
        for _ in 0..50 {
            if crate::proc::read_stat(pid, tick).unwrap().state == 'T' {
                stopped = true;
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        assert!(stopped, "child did not stop");
        sigcont(pid).unwrap();
        for _ in 0..50 {
            if crate::proc::read_stat(pid, tick).unwrap().state != 'T' {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        assert_ne!(crate::proc::read_stat(pid, tick).unwrap().state, 'T');
        sigkill(pid).unwrap();
        let _ = child.wait();
    }

    #[test]
    fn signaling_a_dead_pid_reports_no_such_process() {
        let mut child = Command::new("true").spawn().unwrap();
        child.wait().unwrap();
        // After wait() the pid is fully reaped.
        match sigstop(child.id() as i32) {
            Err(OsError::NoSuchProcess(_)) => {}
            other => panic!("expected NoSuchProcess, got {other:?}"),
        }
    }
}
