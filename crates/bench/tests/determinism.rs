//! Parallel-vs-serial determinism for the scalability bench: the
//! simulation-derived fields of every [`BenchPoint`] are a pure function
//! of the point's parameters, so a sweep's results must be identical at
//! any thread count — parallelism may only move the wall-clock numbers.

use alps_bench::scalability::{
    run_event_core_best_of, run_event_core_point, run_point, run_sweep_threads, SweepSpec,
};
use alps_core::DueIndex;
use kernsim::{EventQueueKind, RunQueueKind};

/// A small grid that still exercises both ready-queue kinds, both event
/// queues, both due indexes, both ALPS variants, and a two-CPU point
/// (sim_secs kept tiny so the suite stays fast).
fn tiny_grid() -> Vec<SweepSpec> {
    let mut specs = Vec::new();
    for n in [4usize, 16] {
        for lazy in [true, false] {
            for kind in [RunQueueKind::Indexed, RunQueueKind::Linear] {
                for due in [DueIndex::Wheel, DueIndex::Scan] {
                    specs.push(SweepSpec {
                        n,
                        lazy,
                        kind,
                        eventq: EventQueueKind::Wheel,
                        due,
                        sim_secs: 1,
                        cpus: 1,
                    });
                }
            }
        }
        specs.push(SweepSpec {
            n,
            lazy: true,
            kind: RunQueueKind::Indexed,
            eventq: EventQueueKind::Heap,
            due: DueIndex::Wheel,
            sim_secs: 1,
            cpus: 1,
        });
        specs.push(SweepSpec {
            n,
            lazy: true,
            kind: RunQueueKind::Indexed,
            eventq: EventQueueKind::Wheel,
            due: DueIndex::Wheel,
            sim_secs: 1,
            cpus: 2,
        });
    }
    specs
}

#[test]
fn sweep_results_identical_at_threads_1_and_8() {
    let specs = tiny_grid();
    let serial = run_sweep_threads(1, &specs, 2);
    let parallel = run_sweep_threads(8, &specs, 2);
    assert_eq!(serial.points.len(), specs.len());
    assert_eq!(parallel.points.len(), specs.len());
    for ((a, b), spec) in serial.points.iter().zip(&parallel.points).zip(&specs) {
        assert_eq!(a.sim_key(), b.sim_key(), "spec {spec:?}");
        assert_eq!(a.n, spec.n, "points must come back in spec order");
    }
}

#[test]
fn repetitions_share_one_sim_trajectory() {
    // Best-of-N only filters wall-clock noise: every repetition of a
    // point runs the exact same simulation.
    let wheel = EventQueueKind::Wheel;
    let a = run_point(8, true, RunQueueKind::Indexed, wheel, DueIndex::Wheel, 1, 1);
    let b = run_point(8, true, RunQueueKind::Indexed, wheel, DueIndex::Wheel, 1, 1);
    assert_eq!(a.sim_key(), b.sim_key());
    // The SMP points replay exactly too: work stealing is deterministic.
    let a2 = run_point(8, true, RunQueueKind::Indexed, wheel, DueIndex::Wheel, 1, 2);
    let b2 = run_point(8, true, RunQueueKind::Indexed, wheel, DueIndex::Wheel, 1, 2);
    assert_eq!(a2.sim_key(), b2.sim_key());
}

#[test]
fn wheel_and_scan_share_one_sim_trajectory() {
    // The due index is a pure control-path data structure: wheel and
    // scan points must drive byte-identical simulations (same events,
    // context switches, and serviced quanta) — only wall clocks differ.
    let eq = EventQueueKind::Wheel;
    let wheel = run_point(16, true, RunQueueKind::Indexed, eq, DueIndex::Wheel, 2, 1);
    let scan = run_point(16, true, RunQueueKind::Indexed, eq, DueIndex::Scan, 2, 1);
    let strip = |p: &alps_bench::scalability::BenchPoint| {
        (
            p.n,
            p.lazy,
            p.sim_seconds,
            p.events,
            p.context_switches,
            p.drive_quanta,
        )
    };
    assert_eq!(strip(&wheel), strip(&scan));
}

#[test]
fn event_queues_share_one_sim_trajectory() {
    // The event queue is a pure data structure: a point on the heap must
    // drive the byte-identical simulation to the same point on the wheel
    // — only wall clocks may differ.
    let wheel = run_point(
        16,
        true,
        RunQueueKind::Indexed,
        EventQueueKind::Wheel,
        DueIndex::Wheel,
        2,
        1,
    );
    let heap = run_point(
        16,
        true,
        RunQueueKind::Indexed,
        EventQueueKind::Heap,
        DueIndex::Wheel,
        2,
        1,
    );
    assert_eq!(wheel.event_queue, "wheel");
    assert_eq!(heap.event_queue, "heap");
    let strip = |p: &alps_bench::scalability::BenchPoint| {
        (
            p.n,
            p.lazy,
            p.sim_seconds,
            p.events,
            p.context_switches,
            p.drive_quanta,
        )
    };
    assert_eq!(strip(&wheel), strip(&heap));
}

#[test]
fn event_core_points_share_one_sim_trajectory_across_queues() {
    // The event-core series compares the queues on the same workload:
    // both implementations must process the identical event stream and
    // end with the identical pending population — only wall clocks may
    // differ. Repetitions and the best-of reduction replay exactly too.
    let wheel = run_event_core_point(32, EventQueueKind::Wheel, 1);
    let heap = run_event_core_point(32, EventQueueKind::Heap, 1);
    assert_eq!(wheel.event_queue, "wheel");
    assert_eq!(heap.event_queue, "heap");
    assert_eq!(wheel.events, heap.events);
    assert_eq!(wheel.pending_events, heap.pending_events);
    let again = run_event_core_best_of(32, EventQueueKind::Wheel, 1, 3);
    assert_eq!(wheel.sim_key(), again.sim_key());
}

#[test]
fn sweep_accounts_every_run_in_the_serial_estimate() {
    let specs = tiny_grid();
    let outcome = run_sweep_threads(2, &specs, 3);
    // The estimate sums all specs × reps individual run walls, so it is
    // at least reps × the kept (minimum) wall of every point.
    let kept_floor: f64 = outcome.points.iter().map(|p| 3.0 * p.wall_seconds).sum();
    assert!(
        outcome.serial_wall_estimate_seconds >= kept_floor * 0.999,
        "estimate {} < floor {}",
        outcome.serial_wall_estimate_seconds,
        kept_floor
    );
}
