//! §3.2 and §2.3 ablation benches: the cost of a scheduler invocation with
//! and without the lazy-measurement optimization, across workload sizes —
//! the microscopic counterpart of the paper's 1.8–5.9× overhead reduction.

use alps_bench::{eligible_scheduler, observations};
use alps_core::Nanos;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// Steady-state invocation cost: drive the scheduler through quanta where
/// each process consumes 1/n of a quantum per quantum (the fair-share
/// pattern of an equal workload), and measure a full begin+complete pair.
fn bench_invocation(c: &mut Criterion, lazy: bool, label: &str) {
    let mut g = c.benchmark_group(format!("ablation/{label}"));
    for n in [5usize, 20, 100] {
        g.bench_with_input(BenchmarkId::new("quantum", n), &n, |b, &n| {
            let (mut sched, ids) = eligible_scheduler(n, 5, lazy);
            let mut k = 0u64;
            b.iter(|| {
                k += 1;
                let due = sched.begin_quantum();
                // Each due process reports its cumulative fair share.
                let per_ms = k * 10 / n as u64;
                let obs: Vec<_> = observations(&ids, per_ms)
                    .into_iter()
                    .filter(|(id, _)| due.contains(id))
                    .collect();
                black_box(sched.complete_quantum(&obs, Nanos(k * 10_000_000)));
            })
        });
    }
    g.finish();
}

fn lazy(c: &mut Criterion) {
    bench_invocation(c, true, "lazy");
}

fn eager(c: &mut Criterion) {
    bench_invocation(c, false, "eager");
}

/// The measurement-skip rate itself: how many of 1000 quanta actually
/// touch each process (reported via the iteration count of due lists).
fn bench_due_list(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/due_list");
    for lazy_mode in [true, false] {
        let name = if lazy_mode { "lazy" } else { "eager" };
        g.bench_function(name, |b| {
            let (mut sched, ids) = eligible_scheduler(50, 5, lazy_mode);
            let mut k = 0u64;
            b.iter(|| {
                k += 1;
                let due = sched.begin_quantum();
                let per_ms = k * 10 / 50;
                let obs: Vec<_> = observations(&ids, per_ms)
                    .into_iter()
                    .filter(|(id, _)| due.contains(id))
                    .collect();
                sched.complete_quantum(&obs, Nanos(k * 10_000_000));
                black_box(due.len());
            })
        });
    }
    g.finish();
}

criterion_group!(benches, lazy, eager, bench_due_list);
criterion_main!(benches);
