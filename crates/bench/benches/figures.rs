//! One bench per paper figure/table family, each running a scaled-down
//! instance of the experiment that regenerates it. `cargo bench figures`
//! therefore both times the harness and smoke-tests every reproduction
//! path; the full-scale data comes from the `repro` binary.

use alps_core::Nanos;
use alps_sim::experiments::io::{run_io, IoParams};
use alps_sim::experiments::multi::{run_multi, MultiParams};
use alps_sim::experiments::scalability::run_scalability_point;
use alps_sim::experiments::webserver::{run_webserver, WebParams};
use alps_sim::experiments::workload::{run_workload, WorkloadParams};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use workloads::ShareModel;

fn cfg(c: &mut Criterion) -> &mut Criterion {
    c
}

fn fig4_accuracy_point(c: &mut Criterion) {
    cfg(c).bench_function("figures/fig4_linear5_point", |b| {
        b.iter(|| {
            let mut p = WorkloadParams::new(ShareModel::Linear, 5, Nanos::from_millis(10));
            p.target_cycles = 15;
            black_box(run_workload(&p).mean_rms_error_pct);
        })
    });
}

fn fig5_overhead_point(c: &mut Criterion) {
    cfg(c).bench_function("figures/fig5_equal10_point", |b| {
        b.iter(|| {
            let mut p = WorkloadParams::new(ShareModel::Equal, 10, Nanos::from_millis(10));
            p.target_cycles = 10;
            black_box(run_workload(&p).overhead_pct);
        })
    });
}

fn fig6_io_run(c: &mut Criterion) {
    cfg(c).bench_function("figures/fig6_io_run", |b| {
        b.iter(|| {
            let p = IoParams {
                io_start_cycle: 20,
                end_cycle: 50,
                ..IoParams::default()
            };
            black_box(run_io(&p).blocked_split);
        })
    });
}

fn fig7_multi_run(c: &mut Criterion) {
    cfg(c).bench_function("figures/fig7_table3_run", |b| {
        b.iter(|| {
            let p = MultiParams {
                phase2: Nanos::from_secs(1),
                phase3: Nanos::from_secs(2),
                end: Nanos::from_secs(4),
                ..MultiParams::default()
            };
            black_box(run_multi(&p).mean_rel_err_pct);
        })
    });
}

fn fig8_scalability_point(c: &mut Criterion) {
    cfg(c).bench_function("figures/fig8_9_point_n30", |b| {
        b.iter(|| {
            black_box(run_scalability_point(
                30,
                Nanos::from_millis(10),
                Nanos::from_secs(10),
                1,
            ))
        })
    });
}

fn websrv_run(c: &mut Criterion) {
    cfg(c).bench_function("figures/websrv_run", |b| {
        b.iter(|| {
            let p = WebParams {
                workers_per_site: 8,
                duration: Nanos::from_secs(5),
                warmup: Nanos::from_secs(1),
                ..WebParams::default()
            };
            black_box(run_webserver(&p).alps_fractions);
        })
    });
}

fn quicker(c: Criterion) -> Criterion {
    c.sample_size(10)
        .measurement_time(std::time::Duration::from_secs(8))
        .warm_up_time(std::time::Duration::from_secs(1))
}

criterion_group! {
    name = benches;
    config = quicker(Criterion::default());
    targets = fig4_accuracy_point, fig5_overhead_point, fig6_io_run,
              fig7_multi_run, fig8_scalability_point, websrv_run
}
criterion_main!(benches);
