//! Table 1 analogue: the cost of ALPS's primary operations, measured live.
//!
//! The paper measured, on FreeBSD 4.8 / 2.2 GHz P4: timer receipt 9.02 µs,
//! measure n processes 1.1 + 17.4·n µs, signal 0.97 µs. These benches
//! measure the same operations on the current machine (Linux `/proc`) plus
//! the pure-algorithm invocation cost, which the paper folds into the
//! timer-receipt number.

use alps_bench::{eligible_scheduler, observations};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_measure_proc_read(c: &mut Criterion) {
    let me = std::process::id() as i32;
    let tick = alps_os::proc::ns_per_tick();
    let mut g = c.benchmark_group("table1/measure");
    for n in [1usize, 4, 16, 64] {
        g.bench_with_input(BenchmarkId::new("proc_stat_reads", n), &n, |b, &n| {
            b.iter(|| {
                for _ in 0..n {
                    black_box(alps_os::proc::read_stat(me, tick).unwrap());
                }
            })
        });
    }
    g.finish();
}

fn bench_signal(c: &mut Criterion) {
    let me = std::process::id() as i32;
    c.bench_function("table1/signal_null", |b| {
        b.iter(|| {
            // Signal 0: permission check only, same kernel path as the
            // paper's SIGSTOP/SIGCONT without perturbing the benchmark.
            black_box(alps_os::signal::alive(black_box(me)));
        })
    });
}

fn bench_timer_receipt(c: &mut Criterion) {
    c.bench_function("table1/timer_receipt", |b| {
        b.iter(|| {
            // An already-expired absolute sleep: syscall entry, timer
            // check, return — the CPU cost of waking on the quantum timer.
            alps_os::clock::sleep_until(black_box(alps_core::Nanos::ZERO));
        })
    });
}

fn bench_algorithm_invocation(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1/algorithm");
    for n in [5usize, 20, 100] {
        g.bench_with_input(BenchmarkId::new("invoke_all_due", n), &n, |b, &n| {
            // Unoptimized mode: every process measured every quantum — the
            // worst-case bookkeeping cost per invocation.
            let (mut sched, ids) = eligible_scheduler(n, 5, false);
            let mut total_ms = 0u64;
            b.iter(|| {
                total_ms += 1;
                let due = sched.begin_quantum();
                black_box(&due);
                let obs = observations(&ids, total_ms);
                black_box(sched.complete_quantum(&obs, alps_core::Nanos::ZERO));
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_measure_proc_read,
    bench_signal,
    bench_timer_receipt,
    bench_algorithm_invocation
);
criterion_main!(benches);
