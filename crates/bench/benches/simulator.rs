//! Simulator performance: how fast `kernsim` turns simulated seconds into
//! real ones. These benches bound the cost of the figure regenerations
//! (the full Figure-8 sweep runs thousands of simulated seconds).

use alps_core::{AlpsConfig, Nanos};
use alps_sim::{spawn_alps, CostModel};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use kernsim::{ComputeBound, Sim, SimConfig};
use std::hint::black_box;

fn bench_plain_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator/plain");
    for n in [2usize, 10, 50] {
        g.throughput(Throughput::Elements(1));
        g.bench_with_input(BenchmarkId::new("one_sim_second", n), &n, |b, &n| {
            b.iter(|| {
                let mut sim = Sim::new(SimConfig::default());
                for i in 0..n {
                    sim.spawn(format!("w{i}"), Box::new(ComputeBound));
                }
                sim.run_until(Nanos::from_secs(1));
                black_box(sim.now());
            })
        });
    }
    g.finish();
}

fn bench_alps_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator/with_alps");
    for n in [5usize, 20] {
        g.bench_with_input(BenchmarkId::new("one_sim_second", n), &n, |b, &n| {
            b.iter(|| {
                let mut sim = Sim::new(SimConfig::default());
                let procs: Vec<_> = (0..n)
                    .map(|i| (sim.spawn(format!("w{i}"), Box::new(ComputeBound)), 5u64))
                    .collect();
                spawn_alps(
                    &mut sim,
                    "alps",
                    AlpsConfig::new(Nanos::from_millis(10)),
                    CostModel::paper(),
                    &procs,
                );
                sim.run_until(Nanos::from_secs(1));
                black_box(sim.now());
            })
        });
    }
    g.finish();
}

fn bench_webserver_sim(c: &mut Criterion) {
    c.bench_function("simulator/webserver_one_second", |b| {
        b.iter(|| {
            let mut sim = Sim::new(SimConfig::default());
            let spec = workloads::Site {
                name: "s".into(),
                workers: 20,
                ..workloads::Site::default()
            };
            let site = workloads::Workload::spawn(&spec, &mut sim);
            sim.run_until(Nanos::from_secs(1));
            black_box(site.completed());
        })
    });
}

criterion_group!(
    benches,
    bench_plain_sim,
    bench_alps_sim,
    bench_webserver_sim
);
criterion_main!(benches);
