//! Scheduling-policy benches: decay-usage vs stride dispatch throughput,
//! the principal layer's per-quantum cost, and the tracing overhead.

use alps_core::{AlpsConfig, Nanos, Observation, PrincipalScheduler};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kernsim::{ComputeBound, KernelPolicy, Sim, SimConfig};
use std::hint::black_box;

fn bench_policy_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("policies/one_sim_second");
    for (name, policy) in [
        ("decay", KernelPolicy::DecayUsage),
        ("stride", KernelPolicy::Stride),
    ] {
        for n in [10usize, 50] {
            g.bench_with_input(BenchmarkId::new(name, n), &n, |b, &n| {
                b.iter(|| {
                    let mut sim = Sim::new(SimConfig {
                        policy,
                        ..SimConfig::default()
                    });
                    for i in 0..n {
                        sim.spawn_tickets(
                            format!("w{i}"),
                            1 + i as u64 % 7,
                            Box::new(ComputeBound),
                        );
                    }
                    sim.run_until(Nanos::from_secs(1));
                    black_box(sim.context_switches());
                })
            });
        }
    }
    g.finish();
}

fn bench_principal_quantum(c: &mut Criterion) {
    let mut g = c.benchmark_group("policies/principal_quantum");
    for members in [10usize, 50, 150] {
        g.bench_with_input(
            BenchmarkId::new("members", members),
            &members,
            |b, &members| {
                let mut sched: PrincipalScheduler<u64> =
                    PrincipalScheduler::new(AlpsConfig::new(Nanos::from_millis(100)));
                let ids: Vec<_> = (0..3).map(|i| sched.add_principal(i + 1)).collect();
                for (k, &id) in ids.iter().enumerate() {
                    let pids: Vec<(u64, Nanos)> = (0..members / 3)
                        .map(|m| ((k * 1000 + m) as u64, Nanos::ZERO))
                        .collect();
                    sched.set_membership(id, &pids);
                }
                sched.begin_quantum();
                sched.complete_quantum(&[], Nanos::ZERO);
                let mut total_ms = 0u64;
                b.iter(|| {
                    total_ms += 1;
                    let due = sched.begin_quantum();
                    let readings: Vec<_> = due
                        .iter()
                        .map(|(id, ms)| {
                            let obs: Vec<(u64, Observation)> = ms
                                .iter()
                                .map(|&m| {
                                    (
                                        m,
                                        Observation {
                                            total_cpu: Nanos::from_millis(total_ms),
                                            blocked: false,
                                        },
                                    )
                                })
                                .collect();
                            (*id, obs)
                        })
                        .collect();
                    black_box(sched.complete_quantum(&readings, Nanos::ZERO));
                })
            },
        );
    }
    g.finish();
}

fn bench_trace_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("policies/trace");
    for (name, cap) in [("off", 0usize), ("on_64k", 65_536)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut sim = Sim::new(SimConfig::default());
                if cap > 0 {
                    sim.enable_trace(cap);
                }
                for i in 0..10 {
                    sim.spawn(format!("w{i}"), Box::new(ComputeBound));
                }
                sim.run_until(Nanos::from_secs(1));
                black_box(sim.now());
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_policy_throughput,
    bench_principal_quantum,
    bench_trace_overhead
);
criterion_main!(benches);
