//! Shared helpers for the ALPS criterion benches, plus the kernsim
//! scalability sweep ([`scalability`]) behind `BENCH_kernsim.json`.

#![forbid(unsafe_code)]

pub mod scalability;

use alps_core::{AlpsConfig, AlpsScheduler, Nanos, Observation, ProcId};

/// Build a scheduler with `n` processes of `share` each, all eligible.
pub fn eligible_scheduler(n: usize, share: u64, lazy: bool) -> (AlpsScheduler, Vec<ProcId>) {
    let cfg = AlpsConfig::new(Nanos::from_millis(10)).with_lazy_measurement(lazy);
    let mut sched = AlpsScheduler::new(cfg);
    let ids: Vec<ProcId> = (0..n)
        .map(|_| sched.add_process(share, Nanos::ZERO))
        .collect();
    // First invocation flips everyone eligible.
    sched.begin_quantum();
    sched.complete_quantum(&[], Nanos::ZERO);
    (sched, ids)
}

/// Observations reporting the given cumulative CPU total for each id.
pub fn observations(ids: &[ProcId], total_ms: u64) -> Vec<(ProcId, Observation)> {
    ids.iter()
        .map(|&id| {
            (
                id,
                Observation {
                    total_cpu: Nanos::from_millis(total_ms),
                    blocked: false,
                },
            )
        })
        .collect()
}
