//! The kernsim scalability sweep behind `BENCH_kernsim.json`.
//!
//! Reproduces the *shape* of the paper's §3.2 overhead experiment — N
//! equal-share (5 each) compute-bound processes under an ALPS runner with
//! a 10 ms quantum — but measures the *simulator*: wall-clock per
//! simulated second, events per wall second, and context switches, for
//! N ∈ {10, 100, 1000, 5000}, each under the lazy (§2.3) and unoptimized
//! ALPS variants, each on both ready-queue implementations
//! ([`RunQueueKind::Indexed`] vs the seed [`RunQueueKind::Linear`]), and
//! each with both due-index implementations ([`DueIndex::Wheel`] vs the
//! seed [`DueIndex::Scan`]). A per-N event-queue comparison series rides
//! along: the default configuration rerun on the seed binary-heap event
//! queue ([`EventQueueKind::Heap`]) against the timing-wheel default,
//! which is what [`BenchReport::event_queue_speedup`] reports. The
//! linear, scan, and heap points exist to quantify the optimized hot
//! paths' speedups; each pair is trace-identical (see
//! `crates/kernsim/tests/lockstep.rs`,
//! `crates/kernsim/tests/event_queue_lockstep.rs`, and
//! `crates/alps-core/tests/due_index_lockstep.rs`).
//!
//! Besides the simulator-throughput numbers, every point reports the
//! *supervisor overhead*: steady-state drive-phase wall nanoseconds per
//! ALPS quantum per controlled member — the per-quantum control-path
//! cost the deadline wheel exists to flatten.

use alps_core::{
    AlpsConfig, AlpsScheduler, DueIndex, MemberStore, Nanos, Observation, ProcId, QuantumOutcome,
};
use alps_sim::{spawn_alps, CostModel};
use kernsim::{ComputeBound, ComputeThenSleep, EventQueueKind, Pid, RunQueueKind, Sim, SimConfig};
use serde::{Deserialize, Serialize};

/// Equal share per process, as in §3.2.
pub const SHARE: u64 = 5;

/// ALPS quantum for the sweep.
pub const QUANTUM_MS: u64 = 10;

/// Simulated seconds driven after mass termination (the teardown phase:
/// the ALPS runner discovers the exits and reaps every principal).
pub const TAIL_SECS: u64 = 5;

/// CPU burst of one event-core workload process ([`run_event_core_point`]).
pub const EVENT_CORE_BURST: Nanos = Nanos::from_micros(1);

/// Sleep between bursts of one event-core workload process. Together with
/// [`EVENT_CORE_BURST`] it keeps the simulated CPU unsaturated up to
/// N = 100 000, so all N sleepers stay pending in the event queue at once.
pub const EVENT_CORE_SLEEP: Nanos = Nanos::from_millis(100);

/// Population sizes of the event-core series. The §3.2 supervised grid is
/// event-*sparse* (a handful of pending events regardless of N, since ALPS
/// keeps all but the on-deck member stopped), so it cannot separate the
/// event-queue implementations; this series holds N wakeups pending at
/// once — the population the queue swap targets.
pub fn event_core_ns(fast: bool) -> Vec<usize> {
    if fast {
        vec![1000]
    } else {
        vec![1000, 5000, 20000, 80000]
    }
}

/// Simulated seconds per event-core point.
pub fn event_core_sim_secs(fast: bool) -> u64 {
    if fast {
        2
    } else {
        10
    }
}

/// One measured point of the event-core series: N kernel-only sleepers
/// (no ALPS supervisor), each holding a pending wakeup, so the event
/// queue itself dominates the run. See [`run_event_core_point`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventCorePoint {
    /// Number of sleeper processes — and, at steady state, the pending
    /// event population.
    pub n: usize,
    /// Simulator event-queue implementation: `"wheel"` or `"heap"`.
    pub event_queue: String,
    /// Simulated seconds driven.
    pub sim_seconds: u64,
    /// Simulation events processed.
    pub events: u64,
    /// Events still pending when the drive ended — the steady-state
    /// queue population the point exercised (≈ N while the simulated
    /// CPU is unsaturated).
    pub pending_events: usize,
    /// Wall-clock seconds for the drive.
    pub wall_seconds: f64,
    /// Events processed per wall-clock second.
    pub events_per_wall_second: f64,
}

impl EventCorePoint {
    /// The simulation-derived fields — a pure function of the point's
    /// parameters and seed, identical at any sweep thread count.
    pub fn sim_key(&self) -> (usize, &str, u64, u64, usize) {
        (
            self.n,
            self.event_queue.as_str(),
            self.sim_seconds,
            self.events,
            self.pending_events,
        )
    }
}

/// Active members of a sparse-activity point ([`run_sparse_point`]).
pub const SPARSE_ACTIVE: usize = 1000;

/// Share of each active member of a sparse-activity point — due every
/// five quanta, like the §3.2 grid's members.
pub const SPARSE_ACTIVE_SHARE: u64 = 5;

/// Smallest idle share of a sparse-activity point. Idle member `i` gets
/// share `SPARSE_IDLE_BASE + i`, so their §2.3 re-measure deadlines
/// stagger from ~10 simulated seconds out to ~`n` quanta out — parked
/// members spread across every level of the deadline wheel instead of
/// thundering in one slot.
pub const SPARSE_IDLE_BASE: u64 = 1000;

/// Largest population the O(N)-per-quantum scan due index is driven at;
/// beyond this only the wheel series runs (the scan would dominate the
/// sweep's wall clock while measuring nothing new).
pub const SPARSE_SCAN_MAX_N: usize = 100_000;

/// Population sizes of the sparse-activity series.
pub fn sparse_ns(fast: bool) -> Vec<usize> {
    if fast {
        vec![10_000]
    } else {
        vec![10_000, 100_000, 1_000_000]
    }
}

/// Quanta driven per sparse-activity point (after the warm-up quantum).
pub fn sparse_quanta(fast: bool) -> u64 {
    if fast {
        300
    } else {
        2000
    }
}

/// One measured point of the sparse-activity series: N registered
/// members, ~[`SPARSE_ACTIVE`] of them due on the §3.2 cadence and the
/// rest parked on far §2.3 deadlines, driving [`AlpsScheduler`] directly
/// (no simulator) with zero-consumption observations. The population is
/// stationary — no cycle boundary, no transitions after warm-up — so
/// the point isolates the per-quantum control path the deadline wheel
/// flattens: its cost must track the *due* population, not N.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparsePoint {
    /// Registered members.
    pub n: usize,
    /// Members on the active (share-[`SPARSE_ACTIVE_SHARE`]) cadence.
    pub active: usize,
    /// ALPS due-index implementation: `"wheel"` or `"scan"`.
    pub due_index: String,
    /// Member-storage implementation: `"chunked"` or `"contiguous"`.
    pub member_store: String,
    /// Quanta driven (excluding the warm-up quantum).
    pub quanta: u64,
    /// Due members measured over the drive.
    pub total_due: u64,
    /// Wall-clock seconds to register all N members.
    pub register_seconds: f64,
    /// Wall-clock seconds for the drive.
    pub drive_seconds: f64,
    /// Wall-clock seconds to remove all N members.
    pub teardown_seconds: f64,
    /// Drive nanoseconds per quantum — the headline: flat in N under
    /// the wheel, linear in N under the scan.
    pub ns_per_quantum: f64,
    /// Due members per quantum (~[`SPARSE_ACTIVE`]/5, independent of N).
    pub due_per_quantum: f64,
    /// Drive nanoseconds per due member measured.
    pub ns_per_due_member: f64,
}

impl SparsePoint {
    /// The deterministic fields — a pure function of the point's
    /// parameters, identical at any sweep thread count.
    pub fn sim_key(&self) -> (usize, usize, &str, &str, u64, u64) {
        (
            self.n,
            self.active,
            self.due_index.as_str(),
            self.member_store.as_str(),
            self.quanta,
            self.total_due,
        )
    }
}

/// One measured point of the sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchPoint {
    /// Number of workload processes.
    pub n: usize,
    /// Whether the §2.3 lazy-measurement optimization was on.
    pub lazy: bool,
    /// Ready-queue implementation: `"indexed"` or `"linear"`.
    pub runqueue: String,
    /// Simulator event-queue implementation: `"wheel"` (the timing-wheel
    /// default) or `"heap"` (the seed binary heap).
    pub event_queue: String,
    /// ALPS due-index implementation: `"wheel"` or `"scan"`.
    pub due_index: String,
    /// CPUs the simulated machine modeled ([`SimConfig::cpus`]) — the
    /// *modeled* dimension, distinct from [`BenchReport::host_cores`]
    /// (the measuring host's hardware threads).
    pub sim_cpus: usize,
    /// Simulated seconds of steady-state drive (excludes the teardown
    /// tail of [`TAIL_SECS`]).
    pub sim_seconds: u64,
    /// Wall-clock seconds for the whole point:
    /// `register + drive + teardown`.
    pub wall_seconds: f64,
    /// Wall-clock seconds to spawn the workload and register it with the
    /// ALPS runner.
    pub register_seconds: f64,
    /// Wall-clock seconds for the steady-state drive.
    pub drive_seconds: f64,
    /// Wall-clock seconds to terminate every member and drive the tail
    /// until the runner has reaped them all.
    pub teardown_seconds: f64,
    /// Steady-state wall-clock seconds per simulated second
    /// (`drive_seconds / sim_seconds`).
    pub wall_per_sim_second: f64,
    /// Simulation events processed.
    pub events: u64,
    /// Events processed per wall-clock second.
    pub events_per_wall_second: f64,
    /// Context switches the simulated kernel performed.
    pub context_switches: u64,
    /// ALPS quanta serviced during the steady-state drive.
    pub drive_quanta: u64,
    /// Steady-state supervisor overhead: drive-phase wall nanoseconds
    /// per ALPS quantum per controlled member
    /// (`drive_seconds · 1e9 / (drive_quanta · n)`).
    pub supervisor_ns_per_quantum_per_member: f64,
    /// Share of the point's whole-lifecycle wall clock spent in the
    /// steady-state drive (`drive_seconds / wall_seconds`) — the sweep
    /// is tuned so this is the majority phase at every N.
    pub drive_fraction: f64,
}

impl BenchPoint {
    /// The simulation-derived fields of the point — everything except
    /// the wall-clock timings. These are a pure function of the point's
    /// parameters and seed, so they must be identical at any sweep
    /// thread count; the determinism tests compare exactly this key.
    pub fn sim_key(&self) -> (usize, bool, &str, &str, &str, usize, u64, u64, u64, u64) {
        (
            self.n,
            self.lazy,
            self.runqueue.as_str(),
            self.event_queue.as_str(),
            self.due_index.as_str(),
            self.sim_cpus,
            self.sim_seconds,
            self.events,
            self.context_switches,
            self.drive_quanta,
        )
    }
}

/// The committed benchmark report (`BENCH_kernsim.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchReport {
    /// Report name.
    pub name: String,
    /// ALPS quantum in milliseconds.
    pub quantum_ms: u64,
    /// Share per process.
    pub share: u64,
    /// `true` when produced with `--fast` (CI smoke; N ≤ 100 only).
    pub fast: bool,
    /// Worker threads the sweep executor ran the grid on.
    pub threads: usize,
    /// Hardware threads on the measuring host.
    pub host_cores: usize,
    /// Wall-clock seconds for the whole sweep (all points × reps),
    /// as actually executed on [`BenchReport::threads`] workers.
    pub sweep_wall_seconds: f64,
    /// Sum of every individual run's wall clock — what the same sweep
    /// costs executed serially (measured directly when `threads == 1`;
    /// an estimate from the parallel runs' own timers otherwise).
    pub serial_wall_estimate_seconds: f64,
    /// `serial_wall_estimate_seconds / sweep_wall_seconds` — the
    /// parallel sweep executor's win on this host.
    pub parallel_speedup: f64,
    /// The measured points.
    pub points: Vec<BenchPoint>,
    /// The event-core series: wheel-vs-heap throughput with N pending
    /// events, the population the §3.2 supervised grid never builds.
    #[serde(default)]
    pub event_core: Vec<EventCorePoint>,
    /// The sparse-activity series: N registered / ~10³ due members on
    /// the bare scheduler, the regime the deadline wheel and member
    /// arena target.
    #[serde(default)]
    pub sparse: Vec<SparsePoint>,
}

impl BenchReport {
    /// The single-CPU point for `(n, lazy, kind, due)`, if present. The
    /// full configuration grid runs on the paper's one-CPU machine; the
    /// SMP series is reached via [`BenchReport::point_at`].
    pub fn point(&self, n: usize, lazy: bool, kind: &str, due: &str) -> Option<&BenchPoint> {
        self.point_at(n, lazy, kind, due, 1)
    }

    /// The point for `(n, lazy, kind, due)` on a `cpus`-CPU simulated
    /// machine, if present. Always the timing-wheel event queue — the
    /// configuration grid runs on the default; the binary-heap
    /// comparison series is reached via [`BenchReport::heap_point`].
    pub fn point_at(
        &self,
        n: usize,
        lazy: bool,
        kind: &str,
        due: &str,
        cpus: usize,
    ) -> Option<&BenchPoint> {
        self.points.iter().find(|p| {
            p.n == n
                && p.lazy == lazy
                && p.runqueue == kind
                && p.event_queue == "wheel"
                && p.due_index == due
                && p.sim_cpus == cpus
        })
    }

    /// The binary-heap event-queue comparison point for `n` (the default
    /// configuration otherwise: lazy, indexed run queue, wheel due
    /// index, one CPU), if present.
    pub fn heap_point(&self, n: usize) -> Option<&BenchPoint> {
        self.points.iter().find(|p| {
            p.n == n
                && p.lazy
                && p.runqueue == "indexed"
                && p.event_queue == "heap"
                && p.due_index == "wheel"
                && p.sim_cpus == 1
        })
    }

    /// Event-throughput speedup of the timing-wheel event queue over the
    /// seed binary heap at the default configuration for `n`:
    /// `events_per_wall_second(wheel) / events_per_wall_second(heap)`.
    pub fn event_queue_speedup(&self, n: usize) -> Option<f64> {
        let wheel = self.point(n, true, "indexed", "wheel")?;
        let heap = self.heap_point(n)?;
        Some(wheel.events_per_wall_second / heap.events_per_wall_second.max(1e-12))
    }

    /// The event-core point for `(n, kind)` (`"wheel"` or `"heap"`), if
    /// present.
    pub fn event_core_point(&self, n: usize, kind: &str) -> Option<&EventCorePoint> {
        self.event_core
            .iter()
            .find(|p| p.n == n && p.event_queue == kind)
    }

    /// Event-throughput speedup of the timing-wheel event queue over the
    /// seed binary heap on the event-core workload at `n`:
    /// `events_per_wall_second(wheel) / events_per_wall_second(heap)`.
    pub fn event_core_speedup(&self, n: usize) -> Option<f64> {
        let wheel = self.event_core_point(n, "wheel")?;
        let heap = self.event_core_point(n, "heap")?;
        Some(wheel.events_per_wall_second / heap.events_per_wall_second.max(1e-12))
    }

    /// The sparse-activity point for `(n, due, store)` (`"wheel"` /
    /// `"scan"` × `"chunked"` / `"contiguous"`), if present.
    pub fn sparse_point(&self, n: usize, due: &str, store: &str) -> Option<&SparsePoint> {
        self.sparse
            .iter()
            .find(|p| p.n == n && p.due_index == due && p.member_store == store)
    }

    /// Per-quantum cost ratio of the scan due index over the wheel at
    /// `n` registered members (chunked store):
    /// `ns_per_quantum(scan) / ns_per_quantum(wheel)` — the linear-in-N
    /// factor the wheel removes from the sparse regime.
    pub fn sparse_scan_ratio(&self, n: usize) -> Option<f64> {
        let wheel = self.sparse_point(n, "wheel", "chunked")?;
        let scan = self.sparse_point(n, "scan", "chunked")?;
        Some(scan.ns_per_quantum / wheel.ns_per_quantum.max(1e-12))
    }

    /// Wall-clock speedup of the indexed queue over the linear one for
    /// `(n, lazy, due)`: `wall(linear) / wall(indexed)` over the whole
    /// point.
    pub fn speedup(&self, n: usize, lazy: bool, due: &str) -> Option<f64> {
        let idx = self.point(n, lazy, "indexed", due)?;
        let lin = self.point(n, lazy, "linear", due)?;
        Some(lin.wall_seconds / idx.wall_seconds)
    }

    /// Supervisor-overhead ratio of the scan due index over the wheel
    /// for `(n, lazy)` on the indexed queue:
    /// `overhead(scan) / overhead(wheel)` in drive-phase ns per quantum
    /// per member.
    pub fn due_overhead_ratio(&self, n: usize, lazy: bool) -> Option<f64> {
        let wheel = self.point(n, lazy, "indexed", "wheel")?;
        let scan = self.point(n, lazy, "indexed", "scan")?;
        Some(scan.supervisor_ns_per_quantum_per_member / wheel.supervisor_ns_per_quantum_per_member)
    }

    /// Render as multi-line JSON, one point per line (stable git diffs).
    /// `parse` and plain `serde_json::from_str` both read it back.
    pub fn to_pretty_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"name\": {},\n",
            serde_json::to_string(&self.name).expect("string")
        ));
        out.push_str(&format!("  \"quantum_ms\": {},\n", self.quantum_ms));
        out.push_str(&format!("  \"share\": {},\n", self.share));
        out.push_str(&format!("  \"fast\": {},\n", self.fast));
        out.push_str(&format!("  \"threads\": {},\n", self.threads));
        out.push_str(&format!("  \"host_cores\": {},\n", self.host_cores));
        out.push_str(&format!(
            "  \"sweep_wall_seconds\": {},\n",
            serde_json::to_string(&self.sweep_wall_seconds).expect("f64")
        ));
        out.push_str(&format!(
            "  \"serial_wall_estimate_seconds\": {},\n",
            serde_json::to_string(&self.serial_wall_estimate_seconds).expect("f64")
        ));
        out.push_str(&format!(
            "  \"parallel_speedup\": {},\n",
            serde_json::to_string(&self.parallel_speedup).expect("f64")
        ));
        out.push_str("  \"points\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            out.push_str("    ");
            out.push_str(&serde_json::to_string(p).expect("point"));
            out.push_str(if i + 1 < self.points.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n");
        out.push_str("  \"event_core\": [\n");
        for (i, p) in self.event_core.iter().enumerate() {
            out.push_str("    ");
            out.push_str(&serde_json::to_string(p).expect("event-core point"));
            out.push_str(if i + 1 < self.event_core.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n");
        out.push_str("  \"sparse\": [\n");
        for (i, p) in self.sparse.iter().enumerate() {
            out.push_str("    ");
            out.push_str(&serde_json::to_string(p).expect("sparse point"));
            out.push_str(if i + 1 < self.sparse.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parse a report previously rendered by [`BenchReport::to_pretty_json`].
    pub fn parse(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

/// Simulated seconds to drive for a given N. The steady-state drive is
/// the phase the per-sim-second and supervisor-overhead metrics are
/// computed from, so it must dominate each point's wall clock — large
/// populations drive *longer* (their register/teardown phases grow with
/// N, and a short drive would leave the measured phase a sliver of the
/// run).
pub fn sim_secs_for(n: usize, fast: bool) -> u64 {
    if fast {
        5
    } else {
        match n {
            0..=100 => 20,
            101..=1000 => 40,
            _ => 80,
        }
    }
}

/// The sweep's population sizes.
pub fn sweep_ns(fast: bool) -> Vec<usize> {
    if fast {
        vec![10, 100]
    } else {
        vec![10, 100, 1000, 5000]
    }
}

/// Measure one point of the sweep: the full lifecycle of one §3.2
/// experiment run.
///
/// Three phases are timed separately:
/// 1. **register** — spawn N equal-share compute-bound processes and
///    register them with an ALPS runner;
/// 2. **drive** — `sim_secs` simulated seconds of steady state;
/// 3. **teardown** — terminate every member and drive [`TAIL_SECS`] more
///    simulated seconds, during which the runner discovers the exits and
///    reaps all N principals.
pub fn run_point(
    n: usize,
    lazy: bool,
    kind: RunQueueKind,
    eventq: EventQueueKind,
    due: DueIndex,
    sim_secs: u64,
    cpus: usize,
) -> BenchPoint {
    let cfg = SimConfig {
        seed: 1,
        spawn_estcpu_jitter: 8.0,
        runqueue: kind,
        event_queue: eventq,
        // Size the event queue for the population: at steady state every
        // member holds a wakeup/burst event, plus the ALPS timer.
        event_capacity: n + 8,
        cpus: std::num::NonZeroUsize::new(cpus).expect("at least one CPU"),
        ..SimConfig::default()
    };
    let mut sim = Sim::new(cfg);

    let t_register = std::time::Instant::now();
    let members: Vec<(Pid, u64)> = (0..n)
        .map(|i| (sim.spawn(format!("w{i}"), Box::new(ComputeBound)), SHARE))
        .collect();
    let alps_cfg = AlpsConfig::new(Nanos::from_millis(QUANTUM_MS))
        .with_lazy_measurement(lazy)
        .with_due_index(due);
    let alps = spawn_alps(&mut sim, "alps", alps_cfg, CostModel::paper(), &members);
    let register_seconds = t_register.elapsed().as_secs_f64();

    let t_drive = std::time::Instant::now();
    let mut events = sim.run_until(Nanos::from_secs(sim_secs));
    let drive_seconds = t_drive.elapsed().as_secs_f64();
    let drive_quanta = alps.stats().quanta;

    let t_teardown = std::time::Instant::now();
    for &(pid, _) in &members {
        sim.terminate(pid);
    }
    events += sim.run_until(Nanos::from_secs(sim_secs + TAIL_SECS));
    let teardown_seconds = t_teardown.elapsed().as_secs_f64();
    debug_assert_eq!(alps.stats().reaped, n as u64, "teardown must reap all");

    let wall_seconds = register_seconds + drive_seconds + teardown_seconds;
    BenchPoint {
        n,
        lazy,
        runqueue: match kind {
            RunQueueKind::Indexed => "indexed".to_string(),
            RunQueueKind::Linear => "linear".to_string(),
        },
        event_queue: match eventq {
            EventQueueKind::Wheel => "wheel".to_string(),
            EventQueueKind::Heap => "heap".to_string(),
        },
        due_index: match due {
            DueIndex::Wheel => "wheel".to_string(),
            DueIndex::Scan => "scan".to_string(),
        },
        sim_cpus: cpus,
        sim_seconds: sim_secs,
        wall_seconds,
        register_seconds,
        drive_seconds,
        teardown_seconds,
        wall_per_sim_second: drive_seconds / sim_secs as f64,
        events,
        events_per_wall_second: events as f64 / (drive_seconds + teardown_seconds).max(1e-9),
        context_switches: sim.context_switches(),
        drive_quanta,
        supervisor_ns_per_quantum_per_member: drive_seconds * 1e9
            / ((drive_quanta.max(1) * n.max(1) as u64) as f64),
        drive_fraction: drive_seconds / wall_seconds.max(1e-9),
    }
}

/// Measure [`run_point`] `reps` times and keep the fastest repetition
/// (by whole-lifecycle wall clock). The simulation is deterministic, so
/// the repetitions differ only in wall-clock noise — the minimum is the
/// least-disturbed measurement. Repetitions are independent runs and
/// fan out across the sweep executor.
#[allow(clippy::too_many_arguments)] // mirrors run_point's parameter list
pub fn run_point_best_of(
    n: usize,
    lazy: bool,
    kind: RunQueueKind,
    eventq: EventQueueKind,
    due: DueIndex,
    sim_secs: u64,
    cpus: usize,
    reps: usize,
) -> BenchPoint {
    alps_sweep::sweep_map((0..reps.max(1)).collect(), |_rep: usize| {
        run_point(n, lazy, kind, eventq, due, sim_secs, cpus)
    })
    .into_iter()
    .min_by(|a, b| a.wall_seconds.total_cmp(&b.wall_seconds))
    .expect("reps >= 1")
}

/// Measure one event-core point: N kernel-only sleepers, each running
/// [`EVENT_CORE_BURST`] then sleeping [`EVENT_CORE_SLEEP`], driven for
/// `sim_secs` simulated seconds with no ALPS supervisor. Every sleeper
/// holds a pending wakeup, so the queue carries ~N events throughout —
/// the regime where the heap pays O(log N) comparisons plus cache misses
/// per operation and the wheel stays flat.
pub fn run_event_core_point(n: usize, eventq: EventQueueKind, sim_secs: u64) -> EventCorePoint {
    let cfg = SimConfig {
        seed: 1,
        spawn_estcpu_jitter: 8.0,
        runqueue: RunQueueKind::Indexed,
        event_queue: eventq,
        event_capacity: n + 8,
        ..SimConfig::default()
    };
    let mut sim = Sim::new(cfg);
    for i in 0..n {
        sim.spawn(
            format!("s{i}"),
            Box::new(ComputeThenSleep::new(
                EVENT_CORE_BURST,
                EVENT_CORE_SLEEP,
                Nanos::ZERO,
            )),
        );
    }
    let t = std::time::Instant::now();
    let events = sim.run_until(Nanos::from_secs(sim_secs));
    let wall_seconds = t.elapsed().as_secs_f64();
    EventCorePoint {
        n,
        event_queue: match eventq {
            EventQueueKind::Wheel => "wheel".to_string(),
            EventQueueKind::Heap => "heap".to_string(),
        },
        sim_seconds: sim_secs,
        events,
        pending_events: sim.pending_events(),
        wall_seconds,
        events_per_wall_second: events as f64 / wall_seconds.max(1e-9),
    }
}

/// Measure [`run_event_core_point`] `reps` times and keep the fastest
/// repetition, fanned across the sweep executor like
/// [`run_point_best_of`].
pub fn run_event_core_best_of(
    n: usize,
    eventq: EventQueueKind,
    sim_secs: u64,
    reps: usize,
) -> EventCorePoint {
    alps_sweep::sweep_map((0..reps.max(1)).collect(), |_rep: usize| {
        run_event_core_point(n, eventq, sim_secs)
    })
    .into_iter()
    .min_by(|a, b| a.wall_seconds.total_cmp(&b.wall_seconds))
    .expect("reps >= 1")
}

/// Measure one sparse-activity point. Three phases are timed:
/// registration of all N members (the arena's chunked-allocation path),
/// a `quanta`-quantum stationary drive (the wheel's O(due) control
/// path), and removal of all N members (the arena's free-list path).
///
/// Idle members never come due inside a short drive *en masse*: their
/// staggered shares ([`SPARSE_IDLE_BASE`]` + i`) park them across the
/// wheel's upper levels, so the drive pays exactly the cascade touches
/// the wheel's design promises — O(1) amortized per parked member per
/// level-window crossing — while the active members due every
/// [`SPARSE_ACTIVE_SHARE`] quanta dominate `total_due`.
pub fn run_sparse_point(
    n: usize,
    active: usize,
    due: DueIndex,
    store: MemberStore,
    quanta: u64,
) -> SparsePoint {
    assert!(active <= n, "active members are a subset of the population");
    let cfg = AlpsConfig::new(Nanos::from_millis(QUANTUM_MS))
        .with_due_index(due)
        .with_member_store(store);
    let mut alps = AlpsScheduler::new(cfg);

    let t_register = std::time::Instant::now();
    let idle = n - active;
    for i in 0..idle {
        alps.add_process(SPARSE_IDLE_BASE + i as u64, Nanos::ZERO);
    }
    for _ in 0..active {
        alps.add_process(SPARSE_ACTIVE_SHARE, Nanos::ZERO);
    }
    let register_seconds = t_register.elapsed().as_secs_f64();

    // Warm-up quantum: every member starts ineligible with a forced
    // measurement, so the first invocation resumes all N and parks them
    // on their §2.3 deadlines. Excluded from the drive timing.
    let quantum = Nanos::from_millis(QUANTUM_MS);
    let mut now = Nanos::ZERO;
    let mut due_buf: Vec<ProcId> = Vec::new();
    let mut obs: Vec<(ProcId, Observation)> = Vec::new();
    let mut out = QuantumOutcome::default();
    alps.begin_quantum_into(&mut due_buf);
    alps.complete_quantum_into(&[], now, &mut out);
    debug_assert_eq!(out.transitions.len(), n, "warm-up resumes everyone");

    // Stationary drive: due members report unchanged cumulative CPU, so
    // allowances never drain, the cycle never completes, and no
    // transitions fire — the loop body is the bare control path.
    let t_drive = std::time::Instant::now();
    let mut total_due = 0u64;
    for _ in 0..quanta {
        now += quantum;
        alps.begin_quantum_into(&mut due_buf);
        total_due += due_buf.len() as u64;
        obs.clear();
        obs.extend(due_buf.iter().map(|&id| {
            (
                id,
                Observation {
                    total_cpu: Nanos::ZERO,
                    blocked: false,
                },
            )
        }));
        alps.complete_quantum_into(&obs, now, &mut out);
        debug_assert!(out.transitions.is_empty(), "stationary drive");
        debug_assert!(!out.cycle_completed, "zero consumption: no boundary");
    }
    let drive_seconds = t_drive.elapsed().as_secs_f64();

    let t_teardown = std::time::Instant::now();
    let ids: Vec<ProcId> = alps.proc_ids().collect();
    for id in ids {
        alps.remove_process(id);
    }
    let teardown_seconds = t_teardown.elapsed().as_secs_f64();
    debug_assert!(alps.is_empty(), "teardown removes everyone");

    let drive_ns = drive_seconds * 1e9;
    SparsePoint {
        n,
        active,
        due_index: match due {
            DueIndex::Wheel => "wheel".to_string(),
            DueIndex::Scan => "scan".to_string(),
        },
        member_store: match store {
            MemberStore::Chunked => "chunked".to_string(),
            MemberStore::Contiguous => "contiguous".to_string(),
        },
        quanta,
        total_due,
        register_seconds,
        drive_seconds,
        teardown_seconds,
        ns_per_quantum: drive_ns / quanta.max(1) as f64,
        due_per_quantum: total_due as f64 / quanta.max(1) as f64,
        ns_per_due_member: drive_ns / total_due.max(1) as f64,
    }
}

/// Measure [`run_sparse_point`] `reps` times and keep the repetition
/// with the fastest drive (the headline phase), fanned across the sweep
/// executor like [`run_point_best_of`].
pub fn run_sparse_best_of(
    n: usize,
    active: usize,
    due: DueIndex,
    store: MemberStore,
    quanta: u64,
    reps: usize,
) -> SparsePoint {
    alps_sweep::sweep_map((0..reps.max(1)).collect(), |_rep: usize| {
        run_sparse_point(n, active, due, store, quanta)
    })
    .into_iter()
    .min_by(|a, b| a.drive_seconds.total_cmp(&b.drive_seconds))
    .expect("reps >= 1")
}

/// The sparse-activity grid in report order. Per N: the wheel due index
/// on both member stores, then the scan baseline (chunked store) up to
/// [`SPARSE_SCAN_MAX_N`] — the scan exists to show the linear-in-N cost
/// the wheel removes, and needs only one storage flavor to do it.
pub fn sparse_specs(fast: bool) -> Vec<(usize, DueIndex, MemberStore)> {
    let mut specs = Vec::new();
    for n in sparse_ns(fast) {
        specs.extend(sparse_specs_at(n));
    }
    specs
}

/// The sparse-activity specs for one explicit population — the
/// `--sparse-n` path (CI's scale smoke pins N = 10⁵ on the PR path,
/// N = 10⁶ nightly).
pub fn sparse_specs_at(n: usize) -> Vec<(usize, DueIndex, MemberStore)> {
    let mut specs = vec![
        (n, DueIndex::Wheel, MemberStore::Chunked),
        (n, DueIndex::Wheel, MemberStore::Contiguous),
    ];
    if n <= SPARSE_SCAN_MAX_N {
        specs.push((n, DueIndex::Scan, MemberStore::Chunked));
    }
    specs
}

/// One cell of the bench grid: the parameters of a [`run_point`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepSpec {
    /// Number of workload processes.
    pub n: usize,
    /// §2.3 lazy measurement on/off.
    pub lazy: bool,
    /// Ready-queue implementation under test.
    pub kind: RunQueueKind,
    /// Simulator event-queue implementation under test.
    pub eventq: EventQueueKind,
    /// ALPS due-index implementation under test.
    pub due: DueIndex,
    /// Simulated seconds of steady-state drive.
    pub sim_secs: u64,
    /// CPUs the simulated machine models ([`SimConfig::cpus`]).
    pub cpus: usize,
}

/// CPU counts of the SMP series ([`sweep_specs`] runs the default
/// configuration at each of these beyond 1).
pub const SMP_CPUS: [usize; 2] = [2, 4];

/// The full grid in its canonical (report) order. Per N:
/// {lazy, eager} × {indexed, linear} × {wheel, scan} on one CPU (the
/// paper's machine) on the timing-wheel event queue, then the default
/// configuration rerun on the seed binary-heap event queue (the
/// event-queue comparison series), then the default configuration on
/// each of [`SMP_CPUS`] — the heap and SMP series measure their one
/// dimension alone, not its cross product with every other axis.
pub fn sweep_specs(fast: bool) -> Vec<SweepSpec> {
    let mut specs = Vec::new();
    for n in sweep_ns(fast) {
        let sim_secs = sim_secs_for(n, fast);
        for lazy in [true, false] {
            for kind in [RunQueueKind::Indexed, RunQueueKind::Linear] {
                for due in [DueIndex::Wheel, DueIndex::Scan] {
                    specs.push(SweepSpec {
                        n,
                        lazy,
                        kind,
                        eventq: EventQueueKind::Wheel,
                        due,
                        sim_secs,
                        cpus: 1,
                    });
                }
            }
        }
        specs.push(SweepSpec {
            n,
            lazy: true,
            kind: RunQueueKind::Indexed,
            eventq: EventQueueKind::Heap,
            due: DueIndex::Wheel,
            sim_secs,
            cpus: 1,
        });
        for cpus in SMP_CPUS {
            specs.push(SweepSpec {
                n,
                lazy: true,
                kind: RunQueueKind::Indexed,
                eventq: EventQueueKind::Wheel,
                due: DueIndex::Wheel,
                sim_secs,
                cpus,
            });
        }
    }
    specs
}

/// The full configuration grid at a single, explicit CPU count — what
/// `bench-scalability --cpus N` sweeps instead of [`sweep_specs`].
pub fn sweep_specs_at(fast: bool, cpus: usize) -> Vec<SweepSpec> {
    let mut specs = sweep_specs(fast);
    specs.retain(|s| s.cpus == 1);
    for s in &mut specs {
        s.cpus = cpus;
    }
    specs
}

/// Outcome of [`run_sweep`]: the kept (fastest-rep) points in spec
/// order, plus the sweep's cost on both axes — actual wall clock as
/// executed, and the serial-equivalent cost (the sum of every run's own
/// wall clock).
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// The fastest repetition of each spec, in `specs` order.
    pub points: Vec<BenchPoint>,
    /// Wall-clock seconds for the whole sweep as executed.
    pub sweep_wall_seconds: f64,
    /// Sum of all `specs.len() × reps` individual run wall clocks.
    pub serial_wall_estimate_seconds: f64,
}

/// Run the whole grid, `reps` repetitions per spec, with every single
/// run (spec × rep) fanned across the sweep executor as one flat batch —
/// no nesting, so an expensive N=5000 point never idles the workers that
/// finished the cheap points. Results are reduced per spec by
/// fastest-repetition wall clock; the simulation-derived fields
/// ([`BenchPoint::sim_key`]) are identical at any thread count.
pub fn run_sweep(specs: &[SweepSpec], reps: usize) -> SweepOutcome {
    run_sweep_threads(alps_sweep::threads(), specs, reps)
}

/// [`run_sweep`] at an explicit thread count (determinism tests).
pub fn run_sweep_threads(threads: usize, specs: &[SweepSpec], reps: usize) -> SweepOutcome {
    let reps = reps.max(1);
    let jobs: Vec<SweepSpec> = specs
        .iter()
        .flat_map(|&s| std::iter::repeat_n(s, reps))
        .collect();
    let t_sweep = std::time::Instant::now();
    let runs = alps_sweep::sweep_map_threads(threads, jobs, |s| {
        run_point(s.n, s.lazy, s.kind, s.eventq, s.due, s.sim_secs, s.cpus)
    });
    let sweep_wall_seconds = t_sweep.elapsed().as_secs_f64();
    let serial_wall_estimate_seconds = runs.iter().map(|p| p.wall_seconds).sum();
    let points = runs
        .chunks(reps)
        .map(|c| {
            c.iter()
                .min_by(|a, b| a.wall_seconds.total_cmp(&b.wall_seconds))
                .expect("reps >= 1")
                .clone()
        })
        .collect();
    SweepOutcome {
        points,
        sweep_wall_seconds,
        serial_wall_estimate_seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_round_trips_through_pretty_json() {
        let report = BenchReport {
            name: "kernsim-scalability".into(),
            quantum_ms: QUANTUM_MS,
            share: SHARE,
            fast: true,
            threads: 4,
            host_cores: alps_sweep::host_cores(),
            sweep_wall_seconds: 0.25,
            serial_wall_estimate_seconds: 1.0,
            parallel_speedup: 4.0,
            points: vec![
                run_point(
                    4,
                    true,
                    RunQueueKind::Indexed,
                    EventQueueKind::Wheel,
                    DueIndex::Wheel,
                    1,
                    1,
                ),
                run_point(
                    4,
                    true,
                    RunQueueKind::Indexed,
                    EventQueueKind::Wheel,
                    DueIndex::Wheel,
                    1,
                    2,
                ),
                run_point(
                    4,
                    true,
                    RunQueueKind::Indexed,
                    EventQueueKind::Heap,
                    DueIndex::Wheel,
                    1,
                    1,
                ),
            ],
            event_core: vec![
                run_event_core_point(8, EventQueueKind::Wheel, 1),
                run_event_core_point(8, EventQueueKind::Heap, 1),
            ],
            sparse: vec![
                run_sparse_point(64, 8, DueIndex::Wheel, MemberStore::Chunked, 20),
                run_sparse_point(64, 8, DueIndex::Scan, MemberStore::Chunked, 20),
            ],
        };
        let back = BenchReport::parse(&report.to_pretty_json()).expect("parse");
        assert_eq!(report, back);
        assert!(report.point(4, true, "indexed", "wheel").is_some());
        assert!(report.point(4, true, "indexed", "scan").is_none());
        // `point` is the one-CPU lookup; the SMP series needs `point_at`.
        assert_eq!(
            report.point(4, true, "indexed", "wheel").unwrap().sim_cpus,
            1
        );
        assert!(report.point_at(4, true, "indexed", "wheel", 2).is_some());
        assert!(report.point_at(4, true, "indexed", "wheel", 4).is_none());
        // The grid lookups never answer with the heap comparison point...
        assert_eq!(
            report
                .point(4, true, "indexed", "wheel")
                .unwrap()
                .event_queue,
            "wheel"
        );
        // ...which has its own accessor, and a throughput ratio on top.
        assert_eq!(report.heap_point(4).unwrap().event_queue, "heap");
        assert!(report.heap_point(5).is_none());
        assert!(report.event_queue_speedup(4).unwrap() > 0.0);
        assert!(report.event_queue_speedup(5).is_none());
        // The event-core series has its own lookups and ratio.
        assert_eq!(
            report.event_core_point(8, "wheel").unwrap().event_queue,
            "wheel"
        );
        assert!(report.event_core_point(9, "wheel").is_none());
        assert!(report.event_core_speedup(8).unwrap() > 0.0);
        assert!(report.event_core_speedup(9).is_none());
        // The sparse series has its own lookup and scan-vs-wheel ratio.
        assert_eq!(report.sparse_point(64, "wheel", "chunked").unwrap().n, 64);
        assert!(report.sparse_point(64, "wheel", "contiguous").is_none());
        assert!(report.sparse_scan_ratio(64).unwrap() > 0.0);
        assert!(report.sparse_scan_ratio(65).is_none());
        // Reports written before the series existed (no "event_core" /
        // "sparse" keys) still parse, to empty series.
        let rendered = report.to_pretty_json();
        let (head, _tail) = rendered
            .split_once("  \"event_core\": [")
            .expect("series rendered");
        let legacy = format!("{}\n}}\n", head.trim_end().trim_end_matches(','));
        let back = BenchReport::parse(&legacy).expect("legacy parse");
        assert!(back.event_core.is_empty());
        assert!(back.sparse.is_empty());
        assert_eq!(back.points, report.points);
    }

    #[test]
    fn sparse_point_is_stationary_and_store_invariant() {
        let chunked = run_sparse_point(256, 16, DueIndex::Wheel, MemberStore::Chunked, 40);
        let contig = run_sparse_point(256, 16, DueIndex::Wheel, MemberStore::Contiguous, 40);
        let scan = run_sparse_point(256, 16, DueIndex::Scan, MemberStore::Chunked, 40);
        // All three implementations measure the identical due schedule.
        assert_eq!(chunked.sim_key().5, contig.sim_key().5);
        assert_eq!(chunked.total_due, scan.total_due);
        // The 16 active members are due every 5 quanta: 8 spikes of 16
        // over 40 quanta, plus idle members whose staggered deadlines
        // fall inside the window (shares 1000+i: none within 40 quanta).
        assert_eq!(chunked.total_due, 8 * 16, "active cadence only");
        assert!(chunked.due_per_quantum > 0.0);
        assert!(chunked.ns_per_quantum > 0.0);
        assert!(chunked.ns_per_due_member > 0.0);
        assert_eq!(chunked.quanta, 40);
    }

    #[test]
    fn sparse_specs_cap_the_scan_series() {
        let specs = sparse_specs(false);
        // Per N: wheel × {chunked, contiguous}, plus the scan baseline
        // up to SPARSE_SCAN_MAX_N.
        assert_eq!(specs.len(), 3 * 2 + 2);
        assert!(specs
            .iter()
            .all(|&(n, due, _)| due != DueIndex::Scan || n <= SPARSE_SCAN_MAX_N));
        assert!(specs.iter().any(|&(n, _, _)| n == 1_000_000));
        let fast = sparse_specs(true);
        assert!(fast.iter().all(|&(n, _, _)| n == 10_000));
        assert_eq!(fast.len(), 3);
    }

    #[test]
    fn sweep_specs_cover_the_grid_in_report_order() {
        let specs = sweep_specs(true);
        // Per N ∈ {10,100}: {lazy,eager} × {indexed,linear} × {wheel,scan}
        // on one CPU, then the heap event-queue comparison point, then
        // the default config at each SMP CPU count.
        assert_eq!(specs.len(), 2 * (2 * 2 * 2 + 1 + SMP_CPUS.len()));
        assert_eq!(specs[0].n, 10);
        assert!(specs[0].lazy && specs[0].kind == RunQueueKind::Indexed);
        assert_eq!(specs[0].due, DueIndex::Wheel);
        assert_eq!(specs[1].due, DueIndex::Scan);
        assert!(specs[2].lazy && specs[2].kind == RunQueueKind::Linear);
        assert!(!specs[7].lazy && specs[7].kind == RunQueueKind::Linear);
        assert_eq!(specs[7].due, DueIndex::Scan);
        assert!(specs[..8].iter().all(|s| s.cpus == 1));
        // The configuration grid runs on the wheel (the default)...
        assert!(specs[..8].iter().all(|s| s.eventq == EventQueueKind::Wheel));
        // ...then the heap comparison point at the default config...
        assert_eq!(specs[8].eventq, EventQueueKind::Heap);
        assert!(specs[8].lazy && specs[8].kind == RunQueueKind::Indexed);
        assert_eq!(specs[8].due, DueIndex::Wheel);
        assert_eq!(specs[8].cpus, 1);
        // ...then the SMP series at the end of each N block.
        assert_eq!(specs[9].cpus, 2);
        assert_eq!(specs[10].cpus, 4);
        assert!(specs[9].lazy && specs[9].kind == RunQueueKind::Indexed);
        assert_eq!(specs[9].eventq, EventQueueKind::Wheel);
        assert_eq!(specs[9].due, DueIndex::Wheel);
        assert_eq!(specs[11].n, 100);
    }

    #[test]
    fn sweep_specs_at_pins_the_cpu_count_over_the_whole_grid() {
        let specs = sweep_specs_at(true, 2);
        assert_eq!(specs.len(), 2 * (2 * 2 * 2 + 1));
        assert!(specs.iter().all(|s| s.cpus == 2));
    }

    #[test]
    fn event_core_point_is_queue_invariant_and_event_dense() {
        let wheel = run_event_core_point(16, EventQueueKind::Wheel, 1);
        let heap = run_event_core_point(16, EventQueueKind::Heap, 1);
        // The two implementations must agree on everything but wall time.
        assert_eq!(wheel.sim_key().0, heap.sim_key().0);
        assert_eq!(wheel.events, heap.events);
        assert_eq!(wheel.pending_events, heap.pending_events);
        // Nearly every sleeper holds a pending wakeup when the drive
        // ends (a couple may be awake mid-burst at the boundary).
        assert!(
            wheel.pending_events >= 14,
            "pending {}",
            wheel.pending_events
        );
        // ~10 wake/burst-done pairs per sleeper per simulated second.
        assert!(wheel.events >= 16 * 10, "events {}", wheel.events);
        assert!(wheel.events_per_wall_second > 0.0);
    }

    #[test]
    fn point_reports_drive_quanta_and_overhead() {
        let p = run_point(
            4,
            true,
            RunQueueKind::Indexed,
            EventQueueKind::Wheel,
            DueIndex::Wheel,
            2,
            1,
        );
        // A 10 ms quantum over 2 simulated seconds services ~200 quanta.
        assert!(
            (150..=250).contains(&p.drive_quanta),
            "drive_quanta {}",
            p.drive_quanta
        );
        assert!(p.supervisor_ns_per_quantum_per_member > 0.0);
        assert!(p.drive_fraction > 0.0 && p.drive_fraction <= 1.0);
    }
}
