//! `bench-scalability` — regenerate `BENCH_kernsim.json`.
//!
//! Sweeps the §3.2-shaped workload over N ∈ {10, 100, 1000, 5000}
//! processes, lazy and unoptimized ALPS, on both the indexed and the seed
//! linear ready queue, and writes the report JSON. Run with `--release`;
//! see EXPERIMENTS.md.
//!
//! Usage: `bench-scalability [--fast] [--out <path>]`
//!   --fast   N ≤ 100 only, 5 simulated seconds per point (CI smoke)
//!   --out    output path (default `BENCH_kernsim.json`)

use alps_bench::scalability::{
    run_point, run_point_best_of, sim_secs_for, sweep_ns, BenchReport, QUANTUM_MS, SHARE,
};
use kernsim::RunQueueKind;

/// Repetitions per point; the fastest is kept (the sim is deterministic,
/// so repetitions differ only in wall-clock noise).
const REPS: usize = 5;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    args.retain(|a| a != "--fast");
    let out = match args.iter().position(|a| a == "--out") {
        Some(i) => {
            if i + 1 >= args.len() {
                eprintln!("error: --out needs a path");
                std::process::exit(2);
            }
            let p = args[i + 1].clone();
            args.drain(i..=i + 1);
            p
        }
        None => "BENCH_kernsim.json".to_string(),
    };
    if !args.is_empty() {
        eprintln!("usage: bench-scalability [--fast] [--out <path>]");
        std::process::exit(2);
    }

    let mut report = BenchReport {
        name: "kernsim-scalability".into(),
        quantum_ms: QUANTUM_MS,
        share: SHARE,
        fast,
        points: Vec::new(),
    };
    // Discarded warmup so the first measured point doesn't pay for page
    // faults and CPU frequency ramp-up.
    let _ = run_point(100, true, RunQueueKind::Indexed, 2);
    for n in sweep_ns(fast) {
        let secs = sim_secs_for(n, fast);
        for lazy in [true, false] {
            for kind in [RunQueueKind::Indexed, RunQueueKind::Linear] {
                let p = run_point_best_of(n, lazy, kind, secs, REPS);
                eprintln!(
                    "N={:5} lazy={:5} {:7}: reg {:8.5}s drive {:8.5}s teardown {:8.5}s | {:8.5} wall-s/sim-s, {:10.0} events/s, {:8} ctx",
                    p.n,
                    p.lazy,
                    p.runqueue,
                    p.register_seconds,
                    p.drive_seconds,
                    p.teardown_seconds,
                    p.wall_per_sim_second,
                    p.events_per_wall_second,
                    p.context_switches
                );
                report.points.push(p);
            }
            if let Some(s) = report.speedup(n, lazy) {
                eprintln!("N={n:5} lazy={lazy:5} indexed speedup over linear: {s:.2}x");
            }
        }
    }
    std::fs::write(&out, report.to_pretty_json()).unwrap_or_else(|e| {
        eprintln!("error: cannot write {out}: {e}");
        std::process::exit(1);
    });
    eprintln!("wrote {out}");
}
