//! `bench-scalability` — regenerate `BENCH_kernsim.json`.
//!
//! Sweeps the §3.2-shaped workload over N ∈ {10, 100, 1000, 5000}
//! processes, lazy and unoptimized ALPS, on both the indexed and the seed
//! linear ready queue, with both the wheel and the seed scan due index,
//! on the paper's one-CPU machine — plus, per N, a binary-heap
//! event-queue comparison point and an SMP series (default config, 2 and
//! 4 simulated CPUs) — then an event-core series (kernel-only sleepers
//! holding N pending wakeups, wheel vs heap) — and writes the report
//! JSON. Every run
//! (point × repetition) is fanned across the deterministic sweep
//! executor; the simulation-derived results are identical at any thread
//! count. Run with `--release`; see EXPERIMENTS.md.
//!
//! A sparse-activity series closes the report: N ∈ {10⁴, 10⁵, 10⁶}
//! members on the bare scheduler (no simulator), ~10³ of them due on the
//! §3.2 cadence and the rest parked on far §2.3 deadlines — the
//! million-member regime the deadline wheel and member arena target.
//!
//! Usage: `bench-scalability [--fast] [--sparse-only] [--sparse-n N]
//!                           [--threads N] [--cpus M] [--out <path>]`
//!   --fast         N ≤ 100 only, 5 simulated seconds per point (CI smoke)
//!   --sparse-only  skip the simulator grids; run only the sparse-activity
//!                  series (quick iteration on the scheduler hot path)
//!   --sparse-n     pin the sparse series to one explicit population
//!                  instead of the default N sweep (CI's scale smoke runs
//!                  `--sparse-only --sparse-n 100000` on the PR path and
//!                  `--sparse-only --sparse-n 1000000` nightly)
//!   --threads      sweep worker threads (1 = serial; default ALPS_THREADS
//!                  or all host cores)
//!   --cpus         sweep the full configuration grid on an M-CPU simulated
//!                  machine instead of the default 1-CPU grid + SMP series
//!   --out          output path (default `BENCH_kernsim.json`)

use alps_bench::scalability::{
    event_core_ns, event_core_sim_secs, run_event_core_best_of, run_point, run_sparse_best_of,
    run_sweep, sparse_quanta, sparse_specs, sparse_specs_at, sweep_specs, sweep_specs_at,
    BenchReport, QUANTUM_MS, SHARE, SPARSE_ACTIVE,
};
use alps_core::DueIndex;
use kernsim::{EventQueueKind, RunQueueKind};

/// Repetitions per point; the fastest is kept (the sim is deterministic,
/// so repetitions differ only in wall-clock noise).
const REPS: usize = 5;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    args.retain(|a| a != "--fast");
    let sparse_only = args.iter().any(|a| a == "--sparse-only");
    args.retain(|a| a != "--sparse-only");
    let mut take_value = |flag: &str| -> Option<String> {
        let i = args.iter().position(|a| a == flag)?;
        if i + 1 >= args.len() {
            eprintln!("error: {flag} needs a value");
            std::process::exit(2);
        }
        let v = args[i + 1].clone();
        args.drain(i..=i + 1);
        Some(v)
    };
    if let Some(t) = take_value("--threads") {
        match t.parse::<usize>() {
            Ok(n) if n >= 1 => alps_sweep::set_threads(Some(n)),
            _ => {
                eprintln!("error: --threads wants an integer >= 1, got {t:?}");
                std::process::exit(2);
            }
        }
    }
    let cpus = take_value("--cpus").map(|c| match c.parse::<usize>() {
        Ok(m) if m >= 1 => m,
        _ => {
            eprintln!("error: --cpus wants an integer >= 1, got {c:?}");
            std::process::exit(2);
        }
    });
    let sparse_n = take_value("--sparse-n").map(|v| match v.parse::<usize>() {
        Ok(n) if n >= 10 => n,
        _ => {
            eprintln!("error: --sparse-n wants an integer >= 10, got {v:?}");
            std::process::exit(2);
        }
    });
    let out = take_value("--out").unwrap_or_else(|| "BENCH_kernsim.json".to_string());
    if !args.is_empty() {
        eprintln!(
            "usage: bench-scalability [--fast] [--sparse-only] [--sparse-n N] \
             [--threads N] [--cpus M] [--out <path>]"
        );
        std::process::exit(2);
    }

    let threads = alps_sweep::threads();
    let host_cores = alps_sweep::host_cores();
    eprintln!(
        "sweep executor: {threads} thread{} ({host_cores} host cores)",
        if threads == 1 { "" } else { "s" },
    );
    if host_cores == 1 || threads == 1 {
        eprintln!(
            "warning: measuring on {} — the parallel_speedup and absolute \
             wall-clock numbers in the report reflect a serial sweep; \
             relative comparisons (lazy/eager, indexed/linear, wheel/scan) \
             remain valid",
            if host_cores == 1 {
                "a single-core host".to_string()
            } else {
                format!("{threads} worker thread")
            }
        );
    }
    // Discarded warmup so the first measured points don't pay for page
    // faults and CPU frequency ramp-up.
    if !sparse_only {
        let _ = run_point(
            100,
            true,
            RunQueueKind::Indexed,
            EventQueueKind::Wheel,
            DueIndex::Wheel,
            2,
            1,
        );
    }

    let specs = if sparse_only {
        Vec::new()
    } else {
        match cpus {
            Some(m) => sweep_specs_at(fast, m),
            None => sweep_specs(fast),
        }
    };
    let outcome = run_sweep(&specs, REPS);
    for p in &outcome.points {
        eprintln!(
            "N={:5} lazy={:5} {:7} eq={:5} {:5} cpus={}: reg {:8.5}s drive {:8.5}s teardown {:8.5}s | {:8.5} wall-s/sim-s, {:10.0} events/s, {:8} ctx, {:9.1} ns/q/member ({:4.1}% drive)",
            p.n,
            p.lazy,
            p.runqueue,
            p.event_queue,
            p.due_index,
            p.sim_cpus,
            p.register_seconds,
            p.drive_seconds,
            p.teardown_seconds,
            p.wall_per_sim_second,
            p.events_per_wall_second,
            p.context_switches,
            p.supervisor_ns_per_quantum_per_member,
            p.drive_fraction * 100.0
        );
    }

    // The event-core series: kernel-only sleepers holding N pending
    // wakeups — the event-dense regime the supervised grid never enters
    // (ALPS keeps all but the on-deck member stopped, so that grid holds
    // only a handful of pending events at any N).
    let ec_secs = event_core_sim_secs(fast);
    let mut event_core = Vec::new();
    if !sparse_only {
        for n in event_core_ns(fast) {
            for eq in [EventQueueKind::Wheel, EventQueueKind::Heap] {
                let p = run_event_core_best_of(n, eq, ec_secs, REPS);
                eprintln!(
                    "event-core N={:6} eq={:5}: {:9} events in {:8.5}s wall ({:10.0} events/s, {:6} pending)",
                    p.n, p.event_queue, p.events, p.wall_seconds, p.events_per_wall_second,
                    p.pending_events
                );
                event_core.push(p);
            }
        }
    }

    // The sparse-activity series: the bare scheduler at N registered /
    // ~10³ due members. Points run serially (each fans its repetitions
    // across the executor) — the 10⁶-member points are memory-bound and
    // co-running them would perturb the timings.
    let sq = sparse_quanta(fast);
    let sparse_grid = match sparse_n {
        Some(n) => sparse_specs_at(n),
        None => sparse_specs(fast),
    };
    let mut sparse = Vec::new();
    for (n, due, store) in sparse_grid {
        let p = run_sparse_best_of(n, SPARSE_ACTIVE.min(n / 10), due, store, sq, REPS);
        eprintln!(
            "sparse N={:8} due={:5} store={:10}: reg {:8.5}s drive {:8.5}s teardown {:8.5}s | {:10.1} ns/q, {:7.1} due/q, {:8.1} ns/due",
            p.n,
            p.due_index,
            p.member_store,
            p.register_seconds,
            p.drive_seconds,
            p.teardown_seconds,
            p.ns_per_quantum,
            p.due_per_quantum,
            p.ns_per_due_member
        );
        sparse.push(p);
    }

    let report = BenchReport {
        name: "kernsim-scalability".into(),
        quantum_ms: QUANTUM_MS,
        share: SHARE,
        fast,
        threads,
        host_cores: alps_sweep::host_cores(),
        sweep_wall_seconds: outcome.sweep_wall_seconds,
        serial_wall_estimate_seconds: outcome.serial_wall_estimate_seconds,
        parallel_speedup: outcome.serial_wall_estimate_seconds
            / outcome.sweep_wall_seconds.max(1e-9),
        points: outcome.points,
        event_core,
        sparse,
    };
    let mut ns: Vec<usize> = report.points.iter().map(|p| p.n).collect();
    ns.dedup();
    for n in &ns {
        for lazy in [true, false] {
            for due in ["wheel", "scan"] {
                if let Some(s) = report.speedup(*n, lazy, due) {
                    eprintln!(
                        "N={n:5} lazy={lazy:5} due={due:5} indexed speedup over linear: {s:.2}x"
                    );
                }
            }
        }
    }
    for n in &ns {
        for lazy in [true, false] {
            if let Some(r) = report.due_overhead_ratio(*n, lazy) {
                eprintln!(
                    "N={n:5} lazy={lazy:5} scan/wheel supervisor overhead (indexed): {r:.2}x"
                );
            }
        }
    }
    for n in &ns {
        if let Some(s) = report.event_queue_speedup(*n) {
            eprintln!("N={n:5} wheel event-queue speedup over heap (events/s): {s:.2}x");
        }
    }
    let mut ec_ns: Vec<usize> = report.event_core.iter().map(|p| p.n).collect();
    ec_ns.dedup();
    for n in &ec_ns {
        if let Some(s) = report.event_core_speedup(*n) {
            eprintln!("event-core N={n:6} wheel speedup over heap (events/s): {s:.2}x");
        }
    }
    let mut sp_ns: Vec<usize> = report.sparse.iter().map(|p| p.n).collect();
    sp_ns.dedup();
    for n in &sp_ns {
        if let Some(r) = report.sparse_scan_ratio(*n) {
            eprintln!("sparse N={n:8} scan/wheel per-quantum cost: {r:.2}x");
        }
    }
    eprintln!(
        "sweep wall {:.3}s on {} thread{}; serial estimate {:.3}s ({:.2}x)",
        report.sweep_wall_seconds,
        report.threads,
        if report.threads == 1 { "" } else { "s" },
        report.serial_wall_estimate_seconds,
        report.parallel_speedup
    );
    std::fs::write(&out, report.to_pretty_json()).unwrap_or_else(|e| {
        eprintln!("error: cannot write {out}: {e}");
        std::process::exit(1);
    });
    eprintln!("wrote {out}");
}
