//! # alps-sim — the ALPS paper's evaluation, in simulation
//!
//! Glue between [`alps_core`] (the scheduling algorithm) and [`kernsim`]
//! (the simulated 4.4BSD kernel): an ALPS scheduler runs as an ordinary
//! simulated process, paying the paper's measured per-operation CPU costs
//! (Table 1) for every timer receipt, progress measurement, and signal —
//! and therefore competing for the CPU exactly as the real user-level
//! scheduler did.
//!
//! The per-quantum control loop lives in [`alps_core::engine`]; this crate
//! implements its [`alps_core::Substrate`] trait over the simulator
//! ([`substrate::SimSubstrate`]) and drives the engine stage by stage so
//! the Table-1 costs can be charged between stages.
//!
//! * [`cost`] — the Table-1 cost model;
//! * [`substrate`] — the simulator as an engine substrate;
//! * [`runner`] — per-process ALPS ([`runner::spawn_alps`]);
//! * [`principal_runner`] — per-user (§5) ALPS
//!   ([`principal_runner::spawn_alps_principals`]);
//! * [`experiments`] — drivers for every figure and table.
//!
//! ## Example: impose 1:3 scheduling on two compute-bound processes
//!
//! ```
//! use alps_core::{AlpsConfig, Nanos};
//! use alps_sim::{spawn_alps, CostModel};
//! use kernsim::{ComputeBound, Sim, SimConfig};
//!
//! let mut sim = Sim::new(SimConfig::default());
//! let a = sim.spawn("a", Box::new(ComputeBound));
//! let b = sim.spawn("b", Box::new(ComputeBound));
//! let cfg = AlpsConfig::new(Nanos::from_millis(10));
//! spawn_alps(&mut sim, "alps", cfg, CostModel::paper(), &[(a, 1), (b, 3)]);
//! sim.run_until(Nanos::from_secs(20));
//! let cpu = |pid| sim.proc(pid).unwrap().cputime().as_f64();
//! let ratio = cpu(b) / cpu(a);
//! assert!((ratio - 3.0).abs() < 0.2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod experiments;
pub mod fault;
pub mod principal_runner;
pub mod runner;
pub mod substrate;

pub use cost::CostModel;
pub use fault::{Faulty, FaultySubstrate};
pub use principal_runner::{spawn_alps_principals, MemberList, PrincipalAlpsHandle};
pub use runner::{spawn_alps, AlpsHandle};
pub use substrate::SimSubstrate;
