//! Running an ALPS scheduler as a process inside the kernel simulator.
//!
//! [`spawn_alps`] plants an ALPS process into a [`Sim`]: an ordinary,
//! unprivileged simulated process that arms a periodic interval timer with
//! the ALPS quantum and, on each expiry, pays the Table-1 CPU costs of its
//! work (timer receipt, progress measurement, signals) as bursts it must
//! win from the simulated kernel scheduler like everyone else. The
//! scheduling loop itself is the generic [`alps_core::Engine`] driven over
//! a [`SimSubstrate`]; this module only interleaves the cost-model charges
//! between the engine's stages. The returned [`AlpsHandle`] lets the
//! experiment driver inspect the algorithm state and harvest per-cycle
//! records afterwards.

use std::cell::RefCell;
use std::rc::Rc;

use alps_core::{
    AlpsConfig, CycleRecord, Engine, EngineStats, Instrumentation, Nanos, NullSink, ProcId,
};
use kernsim::{Behavior, Pid, Sim, SimCtl, Step};

use crate::cost::CostModel;
use crate::substrate::SimSubstrate;

#[derive(Debug)]
struct Shared {
    engine: Engine<Pid>,
}

/// Driver-side handle to a spawned ALPS instance.
#[derive(Debug, Clone)]
pub struct AlpsHandle {
    /// The ALPS process's own pid in the simulation (its CPU time is the
    /// overhead numerator of Figures 5 and 8).
    pub pid: Pid,
    shared: Rc<RefCell<Shared>>,
}

impl AlpsHandle {
    /// Per-cycle consumption records collected so far (clones out).
    pub fn cycles(&self) -> Vec<CycleRecord> {
        self.shared.borrow().engine.cycles().to_vec()
    }

    /// Number of cycles completed so far.
    pub fn cycle_count(&self) -> u64 {
        self.shared.borrow().engine.stats().cycles
    }

    /// Engine statistics.
    pub fn stats(&self) -> EngineStats {
        self.shared.borrow().engine.stats()
    }

    /// The core [`ProcId`]s in registration order (parallel to the pid
    /// slice passed to [`spawn_alps`]).
    pub fn proc_ids(&self) -> Vec<ProcId> {
        self.shared.borrow().engine.proc_ids()
    }

    /// Current allowance of a controlled process, in quanta.
    pub fn allowance(&self, id: ProcId) -> Option<f64> {
        self.shared.borrow().engine.allowance(id)
    }

    /// Scheduler invocation count (`count` in Figure 3).
    pub fn invocations(&self) -> u64 {
        self.shared.borrow().engine.invocations()
    }

    /// Change a controlled process's share at runtime (e.g. when a mesh
    /// region refines in the paper's scientific-application scenario).
    pub fn set_share(&self, id: ProcId, share: u64) -> Result<(), alps_core::StaleId> {
        self.shared.borrow_mut().engine.set_share(id, share)
    }
}

enum Phase {
    /// Freshly spawned: suspend the controlled processes, arm the timer.
    Init,
    /// Blocked on the interval timer.
    Waiting,
    /// Paying the measurement cost for the engine's due list.
    Measuring,
    /// Paying the signal cost before delivering the pending signals.
    Signaling,
}

struct AlpsBehavior {
    shared: Rc<RefCell<Shared>>,
    cost: CostModel,
    phase: Phase,
}

impl Behavior for AlpsBehavior {
    fn on_ready(&mut self, ctl: &mut SimCtl<'_>) -> Step {
        let mut sink = NullSink;
        match std::mem::replace(&mut self.phase, Phase::Waiting) {
            Phase::Init => {
                // Registered processes start ineligible (§2.2): stop them.
                let pids: Vec<Pid> = {
                    let shared = self.shared.borrow();
                    let engine = &shared.engine;
                    engine
                        .proc_ids()
                        .iter()
                        .flat_map(|&id| engine.members(id).unwrap_or_default())
                        .collect()
                };
                for pid in pids {
                    ctl.sigstop(pid);
                }
                ctl.set_interval_timer(self.shared.borrow().engine.quantum());
                self.phase = Phase::Waiting;
                Step::AwaitTimer
            }
            Phase::Waiting => {
                // Timer expired: begin an invocation. The due list (held in
                // the engine's reusable buffer) and its measurement cost are
                // known before any reads happen.
                let to_read = {
                    let mut shared = self.shared.borrow_mut();
                    shared
                        .engine
                        .begin_quantum(&mut SimSubstrate::new(ctl), &mut sink)
                        .unwrap()
                };
                let work = self.cost.timer_event + self.cost.measure(to_read);
                self.phase = Phase::Measuring;
                Step::Compute(work.max(Nanos::from_nanos(1)))
            }
            Phase::Measuring => {
                // Measurement cost paid: read the actual values and run the
                // algorithm.
                let n_signals = {
                    let mut shared = self.shared.borrow_mut();
                    shared
                        .engine
                        .complete_quantum(&mut SimSubstrate::new(ctl), &mut sink)
                        .unwrap();
                    shared.engine.pending_signals().len()
                };
                if n_signals == 0 {
                    self.phase = Phase::Waiting;
                    Step::AwaitTimer
                } else {
                    let work = self.cost.signals(n_signals);
                    self.phase = Phase::Signaling;
                    Step::Compute(work.max(Nanos::from_nanos(1)))
                }
            }
            Phase::Signaling => {
                self.shared
                    .borrow_mut()
                    .engine
                    .apply_pending_signals(&mut SimSubstrate::new(ctl), &mut sink)
                    .unwrap();
                self.phase = Phase::Waiting;
                Step::AwaitTimer
            }
        }
    }

    fn name(&self) -> &str {
        "alps"
    }
}

/// Spawn an ALPS scheduler process controlling `procs` (pid, share pairs).
///
/// The controlled processes are suspended the first time the ALPS process
/// runs and become eligible at its first quantum, exactly as in §2.2.
pub fn spawn_alps(
    sim: &mut Sim,
    name: impl Into<String>,
    cfg: AlpsConfig,
    cost: CostModel,
    procs: &[(Pid, u64)],
) -> AlpsHandle {
    // The engine's CPU-count annotation always reflects the machine it
    // actually governs.
    let cfg = cfg.with_cpus(std::num::NonZeroUsize::new(sim.cpus()).expect("at least one CPU"));
    // Cycle instrumentation reads ground truth at cycle boundaries (§3.1),
    // independent of the visible-accounting mode the algorithm sees.
    let mut engine = Engine::new(cfg, Instrumentation::Exact).with_auto_reap(true);
    for &(pid, share) in procs {
        engine.add_member(pid, share, sim.proc(pid).unwrap().cputime());
    }
    let shared = Rc::new(RefCell::new(Shared { engine }));
    let behavior = AlpsBehavior {
        shared: Rc::clone(&shared),
        cost,
        phase: Phase::Init,
    };
    let pid = sim.spawn(name, Box::new(behavior));
    AlpsHandle { pid, shared }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alps_metrics::mean_rms_relative_error_pct;
    use kernsim::{ComputeBound, SimConfig};

    fn q_ms(ms: u64) -> AlpsConfig {
        AlpsConfig::new(Nanos::from_millis(ms)).with_cycle_log(true)
    }

    #[test]
    fn alps_enforces_one_to_three_split() {
        let mut sim = Sim::new(SimConfig::default());
        let a = sim.spawn("a", Box::new(ComputeBound));
        let b = sim.spawn("b", Box::new(ComputeBound));
        let alps = spawn_alps(
            &mut sim,
            "alps",
            q_ms(10),
            CostModel::paper(),
            &[(a, 1), (b, 3)],
        );
        sim.run_until(Nanos::from_secs(30));
        let (ca, cb) = (
            sim.proc(a).unwrap().cputime().as_secs_f64(),
            sim.proc(b).unwrap().cputime().as_secs_f64(),
        );
        let ratio = cb / ca;
        assert!(
            (ratio - 3.0).abs() < 0.15,
            "expected 3:1, got {cb:.2}:{ca:.2} = {ratio:.3}"
        );
        assert!(alps.cycle_count() > 100, "cycles: {}", alps.cycle_count());
        // Mean RMS relative error should be in the paper's low range.
        let err = mean_rms_relative_error_pct(&alps.cycles(), 5);
        assert!(err < 6.0, "error {err}%");
    }

    #[test]
    fn overhead_is_under_one_percent_for_small_workload() {
        let mut sim = Sim::new(SimConfig::default());
        let procs: Vec<(Pid, u64)> = (0..5)
            .map(|i| (sim.spawn(format!("w{i}"), Box::new(ComputeBound)), 5u64))
            .collect();
        let alps = spawn_alps(&mut sim, "alps", q_ms(10), CostModel::paper(), &procs);
        let dur = Nanos::from_secs(60);
        sim.run_until(dur);
        let overhead = 100.0 * sim.proc(alps.pid).unwrap().cputime().as_f64() / dur.as_f64();
        assert!(overhead < 1.0, "overhead {overhead}%");
        assert!(overhead > 0.005, "suspiciously free: {overhead}%");
    }

    #[test]
    fn lazy_measurement_reduces_work() {
        let run = |lazy: bool| {
            let mut sim = Sim::new(SimConfig::default());
            let procs: Vec<(Pid, u64)> = (0..10)
                .map(|i| (sim.spawn(format!("w{i}"), Box::new(ComputeBound)), 10u64))
                .collect();
            let cfg = AlpsConfig::new(Nanos::from_millis(10)).with_lazy_measurement(lazy);
            let alps = spawn_alps(&mut sim, "alps", cfg, CostModel::paper(), &procs);
            sim.run_until(Nanos::from_secs(30));
            (
                alps.stats().measurements,
                sim.proc(alps.pid).unwrap().cputime(),
            )
        };
        let (m_lazy, cpu_lazy) = run(true);
        let (m_eager, cpu_eager) = run(false);
        assert!(
            m_lazy * 2 < m_eager,
            "optimization should at least halve measurements: {m_lazy} vs {m_eager}"
        );
        assert!(
            cpu_lazy < cpu_eager,
            "and reduce CPU: {cpu_lazy:?} vs {cpu_eager:?}"
        );
    }

    #[test]
    fn exited_process_is_reaped() {
        use workloads::FiniteJob;
        let mut sim = Sim::new(SimConfig::default());
        let a = sim.spawn("short", Box::new(FiniteJob::new(Nanos::from_millis(200))));
        let b = sim.spawn("long", Box::new(ComputeBound));
        let alps = spawn_alps(
            &mut sim,
            "alps",
            q_ms(10),
            CostModel::paper(),
            &[(a, 1), (b, 1)],
        );
        sim.run_until(Nanos::from_secs(5));
        assert!(sim.proc(a).unwrap().is_exited());
        assert_eq!(alps.proc_ids().len(), 1, "exited process deregistered");
        assert!(alps.stats().reaped >= 1);
        // b keeps running under ALPS control at full speed.
        assert!(sim.proc(b).unwrap().cputime() > Nanos::from_secs(4));
    }

    #[test]
    fn cycle_records_are_internally_consistent() {
        let mut sim = Sim::new(SimConfig::default());
        let procs: Vec<(Pid, u64)> = [1u64, 2, 3]
            .iter()
            .map(|&s| (sim.spawn(format!("w{s}"), Box::new(ComputeBound)), s))
            .collect();
        let alps = spawn_alps(&mut sim, "alps", q_ms(10), CostModel::paper(), &procs);
        sim.run_until(Nanos::from_secs(10));
        let cycles = alps.cycles();
        assert!(cycles.len() > 50);
        let mut last_at = Nanos::ZERO;
        for (i, rec) in cycles.iter().enumerate() {
            assert_eq!(rec.index, i as u64, "indices are dense");
            assert!(rec.completed_at >= last_at, "timestamps monotone");
            last_at = rec.completed_at;
            assert_eq!(rec.total_shares, 6);
            let sum: Nanos = rec.entries.iter().map(|e| e.consumed).sum();
            assert_eq!(sum, rec.total_consumed, "entries sum to the total");
            assert_eq!(rec.entries.len(), 3);
        }
        // Steady-state cycles carry ~S*Q = 60ms of consumption.
        let mid = &cycles[cycles.len() / 2];
        let total = mid.total_consumed.as_millis_f64();
        assert!((total - 60.0).abs() < 15.0, "cycle total {total}ms");
    }

    #[test]
    fn missed_quanta_are_counted_not_replayed() {
        // Overload: 80 equal-share procs at a 10ms quantum is past the
        // breakdown threshold; the runner must service fewer quanta than
        // wall time implies (coalescing), never more.
        let mut sim = Sim::new(SimConfig {
            seed: 3,
            spawn_estcpu_jitter: 8.0,
            ..SimConfig::default()
        });
        let procs: Vec<(Pid, u64)> = (0..80)
            .map(|i| (sim.spawn(format!("w{i}"), Box::new(ComputeBound)), 5u64))
            .collect();
        let alps = spawn_alps(
            &mut sim,
            "alps",
            AlpsConfig::new(Nanos::from_millis(10)),
            CostModel::paper(),
            &procs,
        );
        let horizon = Nanos::from_secs(60);
        sim.run_until(horizon);
        let expected = horizon.as_nanos() / Nanos::from_millis(10).as_nanos();
        let serviced = alps.stats().quanta;
        assert!(serviced <= expected, "{serviced} > {expected}");
        assert!(
            (serviced as f64) < 0.9 * expected as f64,
            "expected heavy quanta loss past breakdown: {serviced}/{expected}"
        );
        // The algorithm's invocation counter equals serviced quanta (one
        // begin_quantum per serviced timer, missed fires coalesced).
        assert_eq!(alps.invocations(), serviced);
        // Past breakdown, the engine's §4.2 overrun detector must fire.
        assert!(alps.stats().overruns > 0);
    }

    #[test]
    fn controlled_procs_start_stopped_then_resume() {
        let mut sim = Sim::new(SimConfig::default());
        let a = sim.spawn("a", Box::new(ComputeBound));
        let _alps = spawn_alps(&mut sim, "alps", q_ms(10), CostModel::paper(), &[(a, 1)]);
        // Before the first quantum the process must be stopped.
        sim.run_until(Nanos::from_millis(5));
        assert!(sim.proc(a).unwrap().is_stopped());
        // After the first quantum it must be running again.
        sim.run_until(Nanos::from_millis(40));
        assert!(!sim.proc(a).unwrap().is_stopped());
        assert!(sim.proc(a).unwrap().cputime() > Nanos::ZERO);
    }
}
