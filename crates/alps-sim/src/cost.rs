//! The Table-1 operation-cost model.
//!
//! The paper measured the three primary operations of its FreeBSD
//! implementation on the test machine (2.2 GHz Pentium 4):
//!
//! | operation                        | time |
//! |----------------------------------|------|
//! | receive a timer event            | 9.02 µs |
//! | measure CPU time of n processes  | 1.1 + 17.4·n µs |
//! | send a signal                    | 0.97 µs |
//!
//! The simulated ALPS process is *charged* these costs as CPU bursts it
//! must actually win from the kernel scheduler — which is what makes
//! overhead (Figures 5, 8) and the §4.2 breakdown reproducible.

use alps_core::Nanos;
use serde::{Deserialize, Serialize};

/// Per-operation CPU costs charged to the simulated ALPS process.
///
/// ```
/// use alps_sim::CostModel;
///
/// let c = CostModel::paper();
/// // One quantum that measures 10 processes and sends 2 signals costs
/// // 9.02 + (1.1 + 17.4*10) + 2*0.97 µs of simulated CPU.
/// let work = c.timer_event + c.measure(10) + c.signals(2);
/// assert_eq!(work.as_nanos(), 9_020 + 175_100 + 1_940);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostModel {
    /// Waking up on the interval timer (context switch + signal delivery).
    pub timer_event: Nanos,
    /// Fixed part of a progress-measurement pass.
    pub measure_base: Nanos,
    /// Per-process part of a progress-measurement pass.
    pub measure_per_proc: Nanos,
    /// Sending one `SIGSTOP`/`SIGCONT`.
    pub signal: Nanos,
}

impl CostModel {
    /// The paper's measured values (Table 1).
    pub fn paper() -> Self {
        CostModel {
            timer_event: Nanos::from_micros_f64(9.02),
            measure_base: Nanos::from_micros_f64(1.1),
            measure_per_proc: Nanos::from_micros_f64(17.4),
            signal: Nanos::from_micros_f64(0.97),
        }
    }

    /// A zero-cost model (useful for isolating algorithmic effects in
    /// tests: ALPS acts instantaneously except for the timer receipt, which
    /// must stay non-zero so bursts are well-formed).
    pub fn free() -> Self {
        CostModel {
            timer_event: Nanos::from_nanos(1),
            measure_base: Nanos::ZERO,
            measure_per_proc: Nanos::ZERO,
            signal: Nanos::ZERO,
        }
    }

    /// Cost of measuring the progress of `n` processes; zero when nothing
    /// is due (the measurement pass is skipped entirely).
    pub fn measure(&self, n: usize) -> Nanos {
        if n == 0 {
            Nanos::ZERO
        } else {
            self.measure_base + self.measure_per_proc * n as u64
        }
    }

    /// Cost of sending `k` signals.
    pub fn signals(&self, k: usize) -> Nanos {
        self.signal * k as u64
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants() {
        let c = CostModel::paper();
        assert_eq!(c.timer_event, Nanos::from_nanos(9_020));
        assert_eq!(c.measure(1), Nanos::from_nanos(18_500));
        assert_eq!(c.measure(100), Nanos::from_nanos(1_100 + 1_740_000));
        assert_eq!(c.measure(0), Nanos::ZERO);
        assert_eq!(c.signals(3), Nanos::from_nanos(2_910));
    }

    #[test]
    fn paper_example_overhead_magnitude() {
        // The paper's intro: naive per-quantum measurement of 100 processes
        // every 10ms costs ~1.75ms per 10ms ≈ 17.5% — "as high as roughly
        // 20% for every hundred processes".
        let c = CostModel::paper();
        let per_quantum = c.timer_event + c.measure(100) + c.signals(4);
        let pct = 100.0 * per_quantum.as_f64() / Nanos::from_millis(10).as_f64();
        assert!(pct > 15.0 && pct < 20.0, "got {pct}%");
    }
}
