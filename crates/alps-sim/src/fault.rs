//! Fault injection at the [`Substrate`] boundary.
//!
//! [`FaultySubstrate`] wraps any substrate and corrupts its answers
//! according to a seeded [`FaultPlan`](kernsim::FaultPlan): signal
//! deliveries are silently dropped or deferred to the next quantum
//! boundary, CPU-time reads fail outright or return the previous
//! observation, and the clock jitters. Because the plan's decision stream
//! is a pure function of its seed, a faulty run over a deterministic inner
//! substrate replays exactly.
//!
//! Mid-quantum process exits — the one fault class that needs kernel
//! access rather than answer corruption — are driven by the test harness
//! itself via [`kernsim::SimCtl::terminate`], keyed off the same plan.

use std::collections::HashMap;

use alps_core::{Nanos, Observation, Signal, Substrate};
use kernsim::FaultPlan;

/// Error type of a [`FaultySubstrate`]: either an injected read failure or
/// the inner substrate's own error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Faulty<E> {
    /// The fault plan decided this operation fails.
    Injected,
    /// The inner substrate failed on its own.
    Inner(E),
}

/// A [`Substrate`] decorator that injects faults per a [`FaultPlan`].
#[derive(Debug)]
pub struct FaultySubstrate<S: Substrate> {
    inner: S,
    plan: FaultPlan,
    /// Last successful observation per member, replayed on stale reads.
    last_read: HashMap<S::Member, Observation>,
    /// Signals deferred by the plan, delivered at the next `now()` call
    /// (i.e. the next quantum boundary).
    delayed: Vec<(S::Member, Signal)>,
}

impl<S: Substrate> FaultySubstrate<S> {
    /// Wrap `inner`, injecting per `plan`.
    pub fn new(inner: S, plan: FaultPlan) -> Self {
        FaultySubstrate {
            inner,
            plan,
            last_read: HashMap::new(),
            delayed: Vec::new(),
        }
    }

    /// The wrapped substrate.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// The wrapped substrate, mutably.
    pub fn inner_mut(&mut self) -> &mut S {
        &mut self.inner
    }

    /// The plan (inspect its [`kernsim::FaultLog`] to see what fired).
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Signals currently held back by delay injection.
    pub fn delayed_signals(&self) -> &[(S::Member, Signal)] {
        &self.delayed
    }

    fn release_delayed(&mut self) -> Result<(), S::Error> {
        for (m, sig) in std::mem::take(&mut self.delayed) {
            // A bounce here is fine: the member exited while the signal
            // was in flight, which is exactly the race being modeled.
            let _ = self.inner.deliver(m, sig)?;
        }
        Ok(())
    }
}

impl<S: Substrate> Substrate for FaultySubstrate<S> {
    type Member = S::Member;
    type Error = Faulty<S::Error>;

    fn now(&mut self) -> Nanos {
        // The boundary: land whatever was delayed, then report a possibly
        // jittered clock.
        if let Err(_e) = self.release_delayed() {
            // Inner delivery errors during release are dropped — `now()`
            // cannot fail, and the engine's reconciliation re-asserts
            // intent anyway.
        }
        // Monotonic by construction: the plan clamps each jittered
        // reading to its watermark, so a delayed fire re-mints the clock
        // forward instead of handing out a timestamp behind an earlier
        // one (which event consumers would otherwise have to reorder).
        self.plan.jittered_now(self.inner.now())
    }

    fn read(&mut self, m: S::Member) -> Result<Option<Observation>, Faulty<S::Error>> {
        if self.plan.fail_read() {
            return Err(Faulty::Injected);
        }
        let stale = self.plan.stale_read();
        if stale {
            if let Some(&old) = self.last_read.get(&m) {
                return Ok(Some(old));
            }
            // Nothing cached to be stale with; fall through to a real read.
        }
        match self.inner.read(m) {
            Ok(Some(o)) => {
                self.last_read.insert(m, o);
                Ok(Some(o))
            }
            Ok(None) => {
                self.last_read.remove(&m);
                Ok(None)
            }
            Err(e) => Err(Faulty::Inner(e)),
        }
    }

    fn read_exact(&mut self, m: S::Member) -> Result<Option<Nanos>, Faulty<S::Error>> {
        // Exact reads are instrumentation, not scheduling input; they
        // bypass injection so accuracy metrics stay ground truth.
        self.inner.read_exact(m).map_err(Faulty::Inner)
    }

    fn deliver(&mut self, m: S::Member, signal: Signal) -> Result<bool, Faulty<S::Error>> {
        if self.plan.lose_signal() {
            // The caller sees success; nothing happens. The classic race.
            return Ok(true);
        }
        if self.plan.delay_signal() {
            self.delayed.push((m, signal));
            return Ok(true);
        }
        self.inner.deliver(m, signal).map_err(Faulty::Inner)
    }
}
