//! The §4.1 multiple-applications experiment (Figure 7 and Table 3).
//!
//! Three independent groups of 3 processes, each with its own ALPS:
//! group A (shares {7,8,9}) starts at t=0, group B ({4,5,6}) at t=3 s,
//! group C ({1,2,3}) at t=6 s; everything runs until t=15 s. Each ALPS
//! apportions whatever CPU the kernel gives its group; the kernel splits
//! the machine roughly evenly among the *processes*, hence roughly evenly
//! among the equally sized groups.

use alps_core::{AlpsConfig, Nanos};
use alps_metrics::{cumulative_cpu_series, linear_fit};
use kernsim::{ComputeBound, Pid, Sim, SimConfig};
use serde::{Deserialize, Serialize};

use crate::cost::CostModel;
use crate::runner::{spawn_alps, AlpsHandle};

/// Parameters of the multi-ALPS experiment.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MultiParams {
    /// ALPS quantum (paper: unstated for this figure; 10 ms is the paper's
    /// base configuration).
    pub quantum: Nanos,
    /// Phase boundaries: B spawns at `phase2`, C at `phase3`.
    pub phase2: Nanos,
    /// Start of phase 3.
    pub phase3: Nanos,
    /// End of the experiment.
    pub end: Nanos,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MultiParams {
    fn default() -> Self {
        MultiParams {
            quantum: Nanos::from_millis(10),
            phase2: Nanos::from_secs(3),
            phase3: Nanos::from_secs(6),
            end: Nanos::from_secs(15),
            seed: 1,
        }
    }
}

/// One process's cumulative-consumption trace (a Figure-7 line).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProcSeries {
    /// Figure legend label, e.g. `"4 shares (ALPS B)"`.
    pub label: String,
    /// The process's share within its group.
    pub share: u64,
    /// Group tag: 'A', 'B', or 'C'.
    pub group: char,
    /// `(wall_ms, cumulative_cpu_ms)` at each cycle end of its ALPS.
    pub points: Vec<(f64, f64)>,
}

/// One row of Table 3.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table3Row {
    /// The process's share (the table's `S` column).
    pub share: u64,
    /// Group tag.
    pub group: char,
    /// Target fraction of its group's CPU, percent.
    pub target_pct: f64,
    /// Per-phase `(measured %cpu, relative error %)`; `None` when the
    /// process did not run in that phase.
    pub phases: [Option<(f64, f64)>; 3],
}

/// The full experiment outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultiResult {
    /// Figure-7 traces, one per process, in share order 1..=9.
    pub series: Vec<ProcSeries>,
    /// Table-3 rows in the paper's order (shares 1..=9).
    pub table3: Vec<Table3Row>,
    /// Mean relative error across all table cells (paper: 0.93 %).
    pub mean_rel_err_pct: f64,
    /// Fraction of total CPU each group received in phase 3 (paper: each
    /// ≈ 1/3, "very roughly").
    pub phase3_group_fractions: [f64; 3],
}

struct Group {
    tag: char,
    shares: Vec<u64>,
    alps: AlpsHandle,
    started_at: Nanos,
}

fn spawn_group(sim: &mut Sim, tag: char, shares: &[u64], quantum: Nanos) -> Group {
    let pids: Vec<Pid> = shares
        .iter()
        .map(|s| sim.spawn(format!("{tag}{s}"), Box::new(ComputeBound)))
        .collect();
    let procs: Vec<(Pid, u64)> = pids.into_iter().zip(shares.iter().copied()).collect();
    let cfg = AlpsConfig::new(quantum).with_cycle_log(true);
    let alps = spawn_alps(sim, format!("alps-{tag}"), cfg, CostModel::paper(), &procs);
    Group {
        tag,
        shares: shares.to_vec(),
        alps,
        started_at: sim.now(),
    }
}

/// Run the experiment.
pub fn run_multi(p: &MultiParams) -> MultiResult {
    let mut sim = Sim::new(SimConfig {
        seed: p.seed,
        spawn_estcpu_jitter: 4.0,
        ..SimConfig::default()
    });
    let a = spawn_group(&mut sim, 'A', &[7, 8, 9], p.quantum);
    sim.run_until(p.phase2);
    let b = spawn_group(&mut sim, 'B', &[4, 5, 6], p.quantum);
    sim.run_until(p.phase3);
    let c = spawn_group(&mut sim, 'C', &[1, 2, 3], p.quantum);
    sim.run_until(p.end);

    let phase_bounds = [
        (Nanos::ZERO, p.phase2),
        (p.phase2, p.phase3),
        (p.phase3, p.end),
    ];

    let groups = [&c, &b, &a]; // share order 1..9: C first
    let mut series = Vec::new();
    let mut rows = Vec::new();
    let mut all_errs = Vec::new();
    for g in groups {
        let cycles = g.alps.cycles();
        let ids = g.alps.proc_ids();
        let total_shares: u64 = g.shares.iter().sum();
        // Per-phase rates for every process in the group.
        let mut rates: Vec<[Option<f64>; 3]> = vec![[None; 3]; g.shares.len()];
        for (i, &id) in ids.iter().enumerate() {
            let pts = cumulative_cpu_series(&cycles, id);
            series.push(ProcSeries {
                label: format!(
                    "{} share{} (ALPS {})",
                    g.shares[i],
                    if g.shares[i] == 1 { "" } else { "s" },
                    g.tag
                ),
                share: g.shares[i],
                group: g.tag,
                points: pts.clone(),
            });
            for (ph, &(lo, hi)) in phase_bounds.iter().enumerate() {
                if hi <= g.started_at {
                    continue;
                }
                let window: Vec<(f64, f64)> = pts
                    .iter()
                    .copied()
                    .filter(|&(t, _)| t >= lo.as_millis_f64() && t <= hi.as_millis_f64())
                    .collect();
                if window.len() >= 3 {
                    if let Some(fit) = linear_fit(&window) {
                        rates[i][ph] = Some(fit.slope.max(0.0));
                    }
                }
            }
        }
        for (i, &share) in g.shares.iter().enumerate() {
            let target_pct = 100.0 * share as f64 / total_shares as f64;
            let mut phases = [None; 3];
            for ph in 0..3 {
                let Some(mine) = rates[i][ph] else { continue };
                let group_total: f64 = rates.iter().filter_map(|r| r[ph]).sum();
                if group_total <= 0.0 {
                    continue;
                }
                let pct = 100.0 * mine / group_total;
                let rel_err = 100.0 * (pct - target_pct).abs() / target_pct;
                phases[ph] = Some((pct, rel_err));
                all_errs.push(rel_err);
            }
            rows.push(Table3Row {
                share,
                group: g.tag,
                target_pct,
                phases,
            });
        }
    }

    // Phase-3 group fractions from raw process CPU times at the end (the
    // "very roughly 1/3 each" observation). Use consumption within phase 3
    // only: total cpu minus cpu at phase-3 start is unavailable here, so
    // derive from cycle records instead.
    let phase3_start_ms = p.phase3.as_millis_f64();
    let group_cpu = |g: &Group| -> f64 {
        let cycles = g.alps.cycles();
        g.alps
            .proc_ids()
            .iter()
            .map(|&id| {
                let pts = cumulative_cpu_series(&cycles, id);
                let before = pts
                    .iter()
                    .rfind(|&&(t, _)| t <= phase3_start_ms)
                    .map(|&(_, c)| c)
                    .unwrap_or(0.0);
                let last = pts.last().map(|&(_, c)| c).unwrap_or(0.0);
                last - before
            })
            .sum()
    };
    let (ca, cb, cc) = (group_cpu(&a), group_cpu(&b), group_cpu(&c));
    let total = (ca + cb + cc).max(1e-9);

    let mean_rel_err_pct = if all_errs.is_empty() {
        f64::NAN
    } else {
        all_errs.iter().sum::<f64>() / all_errs.len() as f64
    };
    MultiResult {
        series,
        table3: rows,
        mean_rel_err_pct,
        phase3_group_fractions: [ca / total, cb / total, cc / total],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn each_alps_apportions_within_its_group() {
        let r = run_multi(&MultiParams::default());
        assert_eq!(r.table3.len(), 9);
        // Every phase-3 cell exists and is accurate to a few percent.
        for row in &r.table3 {
            let (pct, err) = row.phases[2].expect("phase 3 covers everyone");
            assert!(
                err < 6.0,
                "share {} ({}): {pct:.1}% vs target {:.1}% (err {err:.1}%)",
                row.share,
                row.group,
                row.target_pct
            );
        }
        // Group A must have phase-1 cells, group B phase-2 cells.
        for row in r.table3.iter().filter(|r| r.group == 'A') {
            assert!(row.phases[0].is_some(), "A ran in phase 1");
        }
        for row in r.table3.iter().filter(|r| r.group == 'B') {
            assert!(row.phases[1].is_some(), "B ran in phase 2");
            assert!(row.phases[0].is_none(), "B did not exist in phase 1");
        }
        assert!(
            r.mean_rel_err_pct < 4.0,
            "mean error {:.2}%",
            r.mean_rel_err_pct
        );
    }

    #[test]
    fn kernel_splits_groups_roughly_evenly_in_phase3() {
        let r = run_multi(&MultiParams::default());
        for (i, f) in r.phase3_group_fractions.iter().enumerate() {
            // Paper: "very roughly, i.e., with up to 20% error".
            assert!((f - 1.0 / 3.0).abs() < 0.1, "group {i}: fraction {f}");
        }
    }
}
