//! The §5 shared-web-server experiment.
//!
//! Three bulletin-board sites on one machine, each a pool of worker
//! processes (see [`workloads::webserver`]). First measure throughput under
//! the kernel scheduler alone (paper: {29, 30, 40} req/s — roughly even);
//! then under one ALPS with per-*user* principals, shares {1, 2, 3}, a
//! 100 ms quantum, and 1-second membership refresh (paper: {18, 35, 53}).

use std::rc::Rc;

use alps_core::{AlpsConfig, Nanos};
use kernsim::{Sim, SimConfig};
use serde::{Deserialize, Serialize};
use workloads::{Site, Tenant, Workload};

use crate::cost::CostModel;
use crate::principal_runner::{spawn_alps_principals, MemberList};

/// Parameters of the web-server experiment.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct WebParams {
    /// Per-site worker pool size (paper: 50).
    pub workers_per_site: usize,
    /// Workers concurrently serving per site (the rest park on accept);
    /// the paper's 325-client load just saturated the CPU, which keeps
    /// the instantaneous active set small.
    pub active_per_site: usize,
    /// Mean CPU per request.
    pub cpu_per_request: Nanos,
    /// Mean database wait per request.
    pub db_wait: Nanos,
    /// ALPS quantum (paper: 100 ms).
    pub quantum: Nanos,
    /// Membership refresh period (paper: 1 s).
    pub refresh: Nanos,
    /// Shares for the three sites.
    pub shares: [u64; 3],
    /// Measurement window (after warm-up).
    pub duration: Nanos,
    /// Warm-up excluded from throughput.
    pub warmup: Nanos,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WebParams {
    fn default() -> Self {
        WebParams {
            workers_per_site: 50,
            active_per_site: 8,
            cpu_per_request: Nanos::from_millis(10),
            db_wait: Nanos::from_millis(40),
            quantum: Nanos::from_millis(100),
            refresh: Nanos::SECOND,
            shares: [1, 2, 3],
            duration: Nanos::from_secs(60),
            warmup: Nanos::from_secs(5),
            seed: 1,
        }
    }
}

/// Throughputs with and without ALPS.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WebResult {
    /// Requests/second per site under the kernel scheduler alone.
    pub baseline_rps: [f64; 3],
    /// Requests/second per site under ALPS with shares {1,2,3}.
    pub alps_rps: [f64; 3],
    /// ALPS CPU overhead during the controlled run, percent.
    pub overhead_pct: f64,
    /// Each site's fraction of ALPS-run throughput (want ≈ share/6).
    pub alps_fractions: [f64; 3],
    /// Median request latency per site without ALPS, milliseconds.
    pub baseline_p50_ms: [f64; 3],
    /// Median request latency per site under ALPS, milliseconds.
    pub alps_p50_ms: [f64; 3],
    /// 95th-percentile request latency per site under ALPS, milliseconds.
    /// Throttled sites trade latency for the isolation of the others: a
    /// suspended worker holds its in-flight request until its principal is
    /// eligible again.
    pub alps_p95_ms: [f64; 3],
}

fn site_specs(p: &WebParams) -> [Site; 3] {
    let names = ["siteA", "siteB", "siteC"];
    [0u64, 1, 2].map(|i| Site {
        name: names[i as usize].into(),
        workers: p.workers_per_site,
        active: p.active_per_site.min(p.workers_per_site),
        cpu_per_request: p.cpu_per_request,
        db_wait: p.db_wait,
        jitter: 0.3,
        seed: p.seed.wrapping_mul(17).wrapping_add(i),
    })
}

fn measure_throughput(sim: &mut Sim, sites: &[Tenant; 3], p: &WebParams) -> [f64; 3] {
    sim.run_until(sim.now() + p.warmup);
    let base: Vec<u64> = sites.iter().map(|s| s.completed()).collect();
    sim.run_until(sim.now() + p.duration);
    let mut out = [0.0; 3];
    for (i, s) in sites.iter().enumerate() {
        out[i] = Tenant::throughput_rps(s.completed() - base[i], p.duration);
    }
    out
}

/// Run both configurations.
pub fn run_webserver(p: &WebParams) -> WebResult {
    let specs = site_specs(p);

    // Baseline: the kernel scheduler alone.
    let mut sim = Sim::new(SimConfig {
        seed: p.seed,
        spawn_estcpu_jitter: 4.0,
        ..SimConfig::default()
    });
    let sites: [Tenant; 3] = std::array::from_fn(|i| specs[i].spawn(&mut sim));
    let baseline_rps = measure_throughput(&mut sim, &sites, p);
    let warm = 50usize;
    let baseline_p50_ms = std::array::from_fn(|i| {
        sites[i]
            .latency_percentile_ms(0.5, warm)
            .unwrap_or(f64::NAN)
    });

    // Controlled: one ALPS, three user principals.
    let mut sim = Sim::new(SimConfig {
        seed: p.seed,
        spawn_estcpu_jitter: 4.0,
        ..SimConfig::default()
    });
    let sites: [Tenant; 3] = std::array::from_fn(|i| specs[i].spawn(&mut sim));
    let groups: Vec<(u64, MemberList)> = sites
        .iter()
        .zip(p.shares)
        .map(|(site, share)| {
            let members: MemberList = Rc::new(std::cell::RefCell::new(site.members.clone()));
            (share, members)
        })
        .collect();
    let cfg = AlpsConfig::new(p.quantum);
    let alps = spawn_alps_principals(
        &mut sim,
        "alps",
        cfg,
        CostModel::paper(),
        &groups,
        p.refresh,
    );
    let alps_rps = measure_throughput(&mut sim, &sites, p);
    let wall = sim.now();
    let overhead_pct = 100.0 * sim.proc(alps.pid).unwrap().cputime().as_f64() / wall.as_f64();
    let alps_p50_ms = std::array::from_fn(|i| {
        sites[i]
            .latency_percentile_ms(0.5, warm)
            .unwrap_or(f64::NAN)
    });
    let alps_p95_ms = std::array::from_fn(|i| {
        sites[i]
            .latency_percentile_ms(0.95, warm)
            .unwrap_or(f64::NAN)
    });

    let total: f64 = alps_rps.iter().sum();
    let alps_fractions = alps_rps.map(|r| r / total.max(1e-9));
    WebResult {
        baseline_rps,
        alps_rps,
        overhead_pct,
        alps_fractions,
        baseline_p50_ms,
        alps_p50_ms,
        alps_p95_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> WebParams {
        WebParams {
            workers_per_site: 15,
            active_per_site: 6,
            duration: Nanos::from_secs(25),
            warmup: Nanos::from_secs(3),
            ..WebParams::default()
        }
    }

    #[test]
    fn kernel_alone_splits_roughly_evenly() {
        let r = run_webserver(&quick());
        let total: f64 = r.baseline_rps.iter().sum();
        for (i, rps) in r.baseline_rps.iter().enumerate() {
            let frac = rps / total;
            assert!(
                (frac - 1.0 / 3.0).abs() < 0.07,
                "site {i}: baseline fraction {frac}"
            );
        }
    }

    #[test]
    fn alps_imposes_one_two_three_on_throughput() {
        let r = run_webserver(&quick());
        let want = [1.0 / 6.0, 2.0 / 6.0, 3.0 / 6.0];
        for (i, (&got, &ideal)) in r.alps_fractions.iter().zip(&want).enumerate() {
            assert!(
                (got - ideal).abs() < 0.05,
                "site {i}: fraction {got} want {ideal}"
            );
        }
        // Paper reports ~1% overhead scale for this configuration.
        assert!(r.overhead_pct < 3.0, "overhead {}", r.overhead_pct);
    }

    #[test]
    fn throttled_site_pays_latency_for_isolation() {
        let r = run_webserver(&quick());
        // Site A (1 share) is suspended ~5/6 of the time: its requests
        // stall mid-service, so its latency rises well above the favored
        // site C's.
        assert!(
            r.alps_p50_ms[0] > r.alps_p50_ms[2] * 1.5,
            "throttled p50 {:.1}ms vs favored {:.1}ms",
            r.alps_p50_ms[0],
            r.alps_p50_ms[2]
        );
        // And above its own uncontrolled latency.
        assert!(
            r.alps_p50_ms[0] > r.baseline_p50_ms[0],
            "ALPS p50 {:.1}ms vs baseline {:.1}ms",
            r.alps_p50_ms[0],
            r.baseline_p50_ms[0]
        );
        // Tail latency is finite and ordered by share.
        assert!(r.alps_p95_ms[0] >= r.alps_p95_ms[2]);
    }
}

/// One point of the quantum-vs-latency sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencyPoint {
    /// Quantum in milliseconds.
    pub quantum_ms: f64,
    /// Throughput fractions under ALPS.
    pub fractions: [f64; 3],
    /// p50 latency per site, ms.
    pub p50_ms: [f64; 3],
    /// p95 latency per site, ms.
    pub p95_ms: [f64; 3],
    /// ALPS overhead, percent.
    pub overhead_pct: f64,
}

/// Sweep the ALPS quantum and report the latency cost of coarse quanta.
///
/// The paper studies the accuracy/overhead trade of the quantum length
/// (§3.1–§3.2); for an interactive workload there is a third axis: a
/// throttled principal's requests stall in whole-cycle units (`S·Q` of
/// CPU), so tail latency of the small-share site grows linearly with the
/// quantum while overhead shrinks.
pub fn run_latency_sweep(base: &WebParams, quanta_ms: &[u64]) -> Vec<LatencyPoint> {
    quanta_ms
        .iter()
        .map(|&q| {
            let mut p = *base;
            p.quantum = Nanos::from_millis(q);
            let r = run_webserver(&p);
            LatencyPoint {
                quantum_ms: q as f64,
                fractions: r.alps_fractions,
                p50_ms: r.alps_p50_ms,
                p95_ms: r.alps_p95_ms,
                overhead_pct: r.overhead_pct,
            }
        })
        .collect()
}

#[cfg(test)]
mod latency_tests {
    use super::*;

    #[test]
    fn coarser_quanta_cost_tail_latency_but_less_overhead() {
        let base = WebParams {
            workers_per_site: 12,
            active_per_site: 6,
            duration: Nanos::from_secs(20),
            warmup: Nanos::from_secs(3),
            ..WebParams::default()
        };
        let pts = run_latency_sweep(&base, &[25, 200]);
        // Throughput fractions hold at both quanta.
        for pt in &pts {
            assert!((pt.fractions[2] - 0.5).abs() < 0.08, "{pt:?}");
        }
        // The throttled site's tail latency grows with the quantum...
        assert!(
            pts[1].p95_ms[0] > pts[0].p95_ms[0] * 1.5,
            "p95 {:.0}ms @25ms vs {:.0}ms @200ms",
            pts[0].p95_ms[0],
            pts[1].p95_ms[0]
        );
        // ...while ALPS overhead shrinks.
        assert!(pts[1].overhead_pct < pts[0].overhead_pct);
    }
}
