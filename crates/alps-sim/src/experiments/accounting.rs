//! Measurement-granularity ablation.
//!
//! The paper's FreeBSD 4.8 testbed derived user-visible CPU times from the
//! kernel's accounting; the historical BSD lineage charged CPU by
//! *statclock sampling* (one whole tick to whoever is running when the
//! clock interrupt lands). A user-level scheduler can only be as precise
//! as the counters it reads, so this ablation reruns the Figure-4 accuracy
//! experiment under both accounting modes: event-exact readings (modern
//! kernels) vs tick-sampled readings (classic BSD).
//!
//! The paper attributes the skewed workloads' error to "quantization
//! effects" (§3.1); tick-sampled readings are one concrete quantizer, and
//! their impact falls most heavily on single-share processes whose whole
//! per-cycle entitlement is a handful of ticks.

use alps_core::Nanos;
use kernsim::CpuAccounting;
use serde::{Deserialize, Serialize};
use workloads::ShareModel;

use crate::experiments::workload::{run_workload, WorkloadParams};

/// One row of the accounting ablation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AccountingRow {
    /// Workload name.
    pub workload: String,
    /// Quantum in milliseconds.
    pub quantum_ms: f64,
    /// Mean RMS relative error with exact readings (percent).
    pub error_exact_pct: f64,
    /// Mean RMS relative error with tick-sampled readings (percent).
    pub error_sampled_pct: f64,
    /// Overhead with exact readings (percent).
    pub overhead_exact_pct: f64,
    /// Overhead with tick-sampled readings (percent).
    pub overhead_sampled_pct: f64,
}

/// Run one workload/quantum combination under both accounting modes.
pub fn run_accounting_row(
    model: ShareModel,
    n: usize,
    quantum: Nanos,
    target_cycles: u64,
    seed: u64,
) -> AccountingRow {
    let mut p = WorkloadParams::new(model, n, quantum);
    p.target_cycles = target_cycles;
    p.seed = seed;
    p.accounting = CpuAccounting::Exact;
    let exact = run_workload(&p);
    p.accounting = CpuAccounting::TickSampled;
    let sampled = run_workload(&p);
    AccountingRow {
        workload: exact.workload.clone(),
        quantum_ms: exact.quantum_ms,
        error_exact_pct: exact.mean_rms_error_pct,
        error_sampled_pct: sampled.mean_rms_error_pct,
        overhead_exact_pct: exact.overhead_pct,
        overhead_sampled_pct: sampled.overhead_pct,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampled_readings_cost_accuracy_at_large_quanta() {
        // Skewed 10 at a 40ms quantum: each single-share process is
        // entitled to 4 ticks per cycle, and tick-rounded readings leave
        // up to a tick of unobserved consumption per measurement — the
        // paper's "quantization effects", which shrink as the quantum
        // approaches the tick.
        let q40 = run_accounting_row(ShareModel::Skewed, 10, Nanos::from_millis(40), 40, 1);
        assert!(
            q40.error_sampled_pct > q40.error_exact_pct + 5.0,
            "sampling should hurt at 40ms: exact {:.2}% vs sampled {:.2}%",
            q40.error_exact_pct,
            q40.error_sampled_pct
        );
        let q10 = run_accounting_row(ShareModel::Skewed, 10, Nanos::from_millis(10), 40, 1);
        assert!(
            q10.error_sampled_pct < q40.error_sampled_pct,
            "the paper's trend: error falls as Q shrinks ({:.2}% @10ms vs {:.2}% @40ms)",
            q10.error_sampled_pct,
            q40.error_sampled_pct
        );
    }

    #[test]
    fn control_still_works_under_sampled_readings() {
        // Even with tick-granular counters ALPS must keep long-run
        // proportions (sampling is unbiased).
        let row = run_accounting_row(ShareModel::Linear, 5, Nanos::from_millis(20), 40, 1);
        assert!(
            row.error_sampled_pct < 25.0,
            "sampled error {:.2}%",
            row.error_sampled_pct
        );
    }
}
