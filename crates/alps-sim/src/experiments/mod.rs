//! Experiment drivers, one module per paper table/figure family.
//!
//! * [`workload`] — Figures 4 and 5 (accuracy and overhead on the Table-2
//!   synthetic workloads) and the §3.2 optimization ablation;
//! * [`accounting`] — the measurement-granularity ablation (exact vs
//!   statclock-sampled CPU readings);
//! * [`io`] — Figure 6 (the I/O redistribution experiment) and the §2.4
//!   blocked-process policy ablation;
//! * [`multi`] — Figure 7 and Table 3 (three concurrent ALPSs);
//! * [`scalability`] — Figures 8 and 9 and the §4.2 breakdown thresholds;
//! * [`webserver`] — the §5 shared-web-server throughput experiment;
//! * [`smp`] — extension study: ALPS on a multiprocessor (the paper is
//!   strictly uniprocessor);
//! * [`baseline`] — user-level ALPS vs in-kernel stride scheduling (the
//!   §6 related-work trade, quantified);
//! * [`batch`] — fork-join co-completion under work-proportional shares
//!   (the introduction's scientific-application motivation);
//! * [`slo`] — extension study: open-loop overload with SLO-driven share
//!   feedback (static §5 shares, closed-loop).

pub mod accounting;
pub mod baseline;
pub mod batch;
pub mod io;
pub mod multi;
pub mod scalability;
pub mod slo;
pub mod smp;
pub mod webserver;
pub mod workload;
