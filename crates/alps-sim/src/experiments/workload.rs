//! The synthetic-workload experiment underlying Figures 4 and 5 and the
//! §3.2 ablation: `n` compute-bound processes with a Table-2 share
//! distribution, scheduled by one ALPS for 200 cycles.

use alps_core::{AlpsConfig, Nanos};
use alps_metrics::mean_rms_relative_error_pct;
use kernsim::{ComputeBound, CpuAccounting, Sim, SimConfig};
use serde::{Deserialize, Serialize};
use workloads::ShareModel;

use crate::cost::CostModel;
use crate::runner::spawn_alps;

/// Parameters of one synthetic-workload run.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct WorkloadParams {
    /// Share model (linear/equal/skewed).
    pub model: ShareModel,
    /// Number of processes.
    pub n: usize,
    /// ALPS quantum.
    pub quantum: Nanos,
    /// Cycles to record (the paper records 200).
    pub target_cycles: u64,
    /// Leading cycles discarded as warm-up.
    pub warmup_cycles: usize,
    /// RNG seed (the paper reports the mean of 3 runs; use 3 seeds).
    pub seed: u64,
    /// §2.3 lazy-measurement optimization on/off.
    pub lazy_measurement: bool,
    /// Visible-CPU-accounting granularity for the simulated kernel
    /// (the measurement-granularity ablation; default exact).
    #[serde(skip)]
    pub accounting: CpuAccounting,
    /// Override: give every process this share instead of the Table-2
    /// distribution (the §4.2 scalability runs use 5 shares per process
    /// regardless of N).
    pub uniform_share: Option<u64>,
    /// Minimum wall-clock duration to simulate even if the cycle target is
    /// reached sooner. Needed for overloaded configurations (§4.2): past
    /// the breakdown threshold ALPS measures rarely and huge consumption
    /// deltas complete a cycle per invocation, so a cycle count alone would
    /// end the run before the decay-scheduler equilibrium that *causes*
    /// the breakdown has even formed.
    pub min_duration: Nanos,
}

impl WorkloadParams {
    /// Paper-default parameters for a workload/quantum combination.
    pub fn new(model: ShareModel, n: usize, quantum: Nanos) -> Self {
        WorkloadParams {
            model,
            n,
            quantum,
            target_cycles: 200,
            warmup_cycles: 3,
            seed: 1,
            lazy_measurement: true,
            accounting: CpuAccounting::Exact,
            uniform_share: None,
            min_duration: Nanos::ZERO,
        }
    }

    /// Same parameters with another seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Toggle the §2.3 optimization.
    pub fn with_lazy(mut self, lazy: bool) -> Self {
        self.lazy_measurement = lazy;
        self
    }
}

/// Outcome of one synthetic-workload run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadRun {
    /// The paper's name for the workload (e.g. `Skewed10`).
    pub workload: String,
    /// Quantum length in milliseconds.
    pub quantum_ms: f64,
    /// Cycles recorded (excluding warm-up).
    pub cycles: usize,
    /// Mean RMS relative error, percent (Figure 4 / Figure 9 metric).
    pub mean_rms_error_pct: f64,
    /// ALPS CPU time over wall time, percent (Figure 5 / Figure 8 metric).
    pub overhead_pct: f64,
    /// Wall-clock duration of the run.
    pub duration: Nanos,
    /// CPU consumed by the ALPS process itself.
    pub alps_cpu: Nanos,
    /// Scheduler invocations actually serviced.
    pub quanta_serviced: u64,
    /// Scheduler invocations a perfectly scheduled ALPS would have serviced.
    pub quanta_expected: u64,
    /// Progress measurements performed.
    pub measurements: u64,
    /// Signals sent.
    pub signals: u64,
}

/// Run one synthetic workload under ALPS until `target_cycles` cycles have
/// completed (with a generous wall-clock cap for overloaded configurations
/// that have effectively lost control).
pub fn run_workload(p: &WorkloadParams) -> WorkloadRun {
    let shares = match p.uniform_share {
        Some(s) => vec![s; p.n],
        None => p.model.shares(p.n),
    };
    let sim_cfg = SimConfig {
        seed: p.seed,
        spawn_estcpu_jitter: 8.0,
        accounting: p.accounting,
        ..SimConfig::default()
    };
    let mut sim = Sim::new(sim_cfg);
    let procs: Vec<(kernsim::Pid, u64)> = shares
        .iter()
        .enumerate()
        .map(|(i, &s)| (sim.spawn(format!("w{i}"), Box::new(ComputeBound)), s))
        .collect();
    let cfg = AlpsConfig::new(p.quantum)
        .with_lazy_measurement(p.lazy_measurement)
        .with_cycle_log(true);
    let alps = spawn_alps(&mut sim, "alps", cfg, CostModel::paper(), &procs);

    // One cycle takes S·Q of CPU; with ALPS overhead and warm-up, budget a
    // 2x margin plus slack, stepping in 1-second chunks.
    let total_shares: u64 = shares.iter().sum();
    let cycle_wall = p.quantum.mul_f64(total_shares as f64);
    let budget = cycle_wall
        .mul_f64((p.target_cycles + p.warmup_cycles as u64 + 2) as f64 * 2.0)
        .max(Nanos::from_secs(30));
    let budget = budget.max(p.min_duration);
    let want = p.target_cycles + p.warmup_cycles as u64;
    while (alps.cycle_count() < want || sim.now() < p.min_duration) && sim.now() < budget {
        let next = (sim.now() + Nanos::SECOND).min(budget);
        sim.run_until(next);
    }

    let duration = sim.now();
    let alps_cpu = sim.proc(alps.pid).unwrap().cputime();
    let cycles = alps.cycles();
    let stats = alps.stats();
    WorkloadRun {
        workload: p.model.workload_name(p.n),
        quantum_ms: p.quantum.as_millis_f64(),
        cycles: cycles.len().saturating_sub(p.warmup_cycles),
        mean_rms_error_pct: mean_rms_relative_error_pct(&cycles, p.warmup_cycles),
        overhead_pct: 100.0 * alps_cpu.as_f64() / duration.as_f64(),
        duration,
        alps_cpu,
        quanta_serviced: stats.quanta,
        quanta_expected: (duration.as_nanos() / p.quantum.as_nanos()).max(1),
        measurements: stats.measurements,
        signals: stats.signals,
    }
}

/// Mean of `runs` over the given seeds (the paper's "mean of 3 tests").
///
/// The per-seed runs are independent simulations, so they fan out across
/// the sweep executor. The result is invariant to both the thread count
/// (each run is a pure function of its seed) and the *order* of `seeds`:
/// the floating-point reductions below always sum in ascending-seed
/// order.
pub fn run_workload_mean(p: &WorkloadParams, seeds: &[u64]) -> WorkloadRun {
    assert!(!seeds.is_empty());
    let mut runs: Vec<(u64, WorkloadRun)> =
        alps_sweep::sweep_map(seeds.to_vec(), |s| (s, run_workload(&p.with_seed(s))));
    runs.sort_by_key(|&(s, _)| s);
    let k = runs.len() as f64;
    let mut out = runs[0].1.clone();
    out.mean_rms_error_pct = runs.iter().map(|(_, r)| r.mean_rms_error_pct).sum::<f64>() / k;
    out.overhead_pct = runs.iter().map(|(_, r)| r.overhead_pct).sum::<f64>() / k;
    out
}

/// One row of the §3.2 optimization ablation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AblationRow {
    /// Workload name.
    pub workload: String,
    /// Quantum in milliseconds.
    pub quantum_ms: f64,
    /// Overhead with the §2.3 optimization (percent).
    pub overhead_opt_pct: f64,
    /// Overhead without it (percent).
    pub overhead_unopt_pct: f64,
    /// Reduction factor (paper: 1.8–5.9×).
    pub factor: f64,
    /// Accuracy with the optimization (percent error).
    pub error_opt_pct: f64,
    /// Accuracy without it (percent error) — should be comparable.
    pub error_unopt_pct: f64,
}

/// Run the optimized and unoptimized algorithm on the same workload
/// (the two legs are independent sims and run concurrently).
pub fn run_ablation(p: &WorkloadParams) -> AblationRow {
    let mut legs =
        alps_sweep::sweep_map(vec![true, false], |lazy| run_workload(&p.with_lazy(lazy)));
    let unopt = legs.pop().expect("two legs");
    let opt = legs.pop().expect("two legs");
    AblationRow {
        workload: opt.workload.clone(),
        quantum_ms: opt.quantum_ms,
        overhead_opt_pct: opt.overhead_pct,
        overhead_unopt_pct: unopt.overhead_pct,
        factor: unopt.overhead_pct / opt.overhead_pct.max(1e-9),
        error_opt_pct: opt.mean_rms_error_pct,
        error_unopt_pct: unopt.mean_rms_error_pct,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(model: ShareModel, n: usize, q_ms: u64) -> WorkloadParams {
        let mut p = WorkloadParams::new(model, n, Nanos::from_millis(q_ms));
        p.target_cycles = 40;
        p
    }

    #[test]
    fn linear5_is_accurate_and_cheap() {
        let r = run_workload(&quick(ShareModel::Linear, 5, 10));
        assert!(r.cycles >= 30, "cycles {}", r.cycles);
        assert!(r.mean_rms_error_pct < 6.0, "error {}", r.mean_rms_error_pct);
        assert!(r.overhead_pct < 0.5, "overhead {}", r.overhead_pct);
    }

    #[test]
    fn equal10_is_accurate() {
        let r = run_workload(&quick(ShareModel::Equal, 10, 20));
        assert!(r.mean_rms_error_pct < 6.0, "error {}", r.mean_rms_error_pct);
    }

    #[test]
    fn ablation_shows_meaningful_factor() {
        let mut p = quick(ShareModel::Equal, 10, 10);
        p.target_cycles = 25;
        let row = run_ablation(&p);
        assert!(
            row.factor > 1.5,
            "optimization factor {} (opt {}%, unopt {}%)",
            row.factor,
            row.overhead_opt_pct,
            row.overhead_unopt_pct
        );
        // Accuracy must not be sacrificed (§2.3's claim).
        assert!(row.error_opt_pct < row.error_unopt_pct + 3.0);
    }

    #[test]
    fn mean_over_seeds_averages() {
        let p = quick(ShareModel::Linear, 5, 20);
        let m = run_workload_mean(&p, &[1, 2, 3]);
        assert!(m.mean_rms_error_pct < 8.0);
    }
}
