//! The fork-join co-completion experiment (the paper's introductory
//! scientific-application motivation, quantified).
//!
//! A stage of workers with heterogeneous work (region sizes after adaptive
//! mesh refinement) runs to completion twice: under the kernel scheduler
//! alone (which is fair per *process*) and under ALPS with shares
//! proportional to each worker's work. Work-proportional scheduling makes
//! the workers finish *together*: the join point stops waiting on the
//! largest region while the small ones sit finished.

use alps_core::{AlpsConfig, Nanos};
use kernsim::{Sim, SimConfig};
use serde::{Deserialize, Serialize};
use workloads::batch::{run_pids_to_completion, BatchJob, BatchStage};
use workloads::Workload;

use crate::cost::CostModel;
use crate::runner::spawn_alps;

/// Parameters of the co-completion experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchParams {
    /// Work per job, milliseconds of CPU (e.g. cells per mesh region).
    pub work_ms: Vec<u64>,
    /// ALPS quantum.
    pub quantum: Nanos,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BatchParams {
    fn default() -> Self {
        BatchParams {
            // A refined mesh: one hot region, a few medium, several small.
            work_ms: vec![3200, 1600, 1600, 800, 800, 400, 400, 200],
            quantum: Nanos::from_millis(10),
            seed: 1,
        }
    }
}

/// Result for one scheduling regime.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchOutcome {
    /// Completion wall-clock time of each worker, ms, in job order.
    pub completion_ms: Vec<f64>,
    /// Time the last worker finished (the join's wait).
    pub makespan_ms: f64,
    /// Spread between first and last completion — the straggler window.
    pub spread_ms: f64,
}

/// Both regimes side by side.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchResult {
    /// Kernel scheduler alone (fair per process).
    pub kernel: BatchOutcome,
    /// ALPS with work-proportional shares.
    pub alps: BatchOutcome,
}

fn outcome(done: &[Nanos]) -> BatchOutcome {
    let ms: Vec<f64> = done.iter().map(|d| d.as_millis_f64()).collect();
    let first = ms.iter().copied().fold(f64::INFINITY, f64::min);
    let last = ms.iter().copied().fold(0.0, f64::max);
    BatchOutcome {
        completion_ms: ms,
        makespan_ms: last,
        spread_ms: last - first,
    }
}

/// Run the experiment.
pub fn run_batch(p: &BatchParams) -> BatchResult {
    let jobs: Vec<BatchJob> = p
        .work_ms
        .iter()
        .map(|&ms| BatchJob {
            work: Nanos::from_millis(ms),
        })
        .collect();
    let cap = Nanos::from_millis(p.work_ms.iter().sum::<u64>() * 3);

    // Kernel alone.
    let mut sim = Sim::new(SimConfig {
        seed: p.seed,
        spawn_estcpu_jitter: 4.0,
        ..SimConfig::default()
    });
    let stage = BatchStage {
        name: "stage".into(),
        jobs: jobs.clone(),
    };
    let tenant = stage.spawn(&mut sim);
    let kernel = outcome(&run_pids_to_completion(&mut sim, &tenant.members, cap));

    // ALPS, shares proportional to work (in units of the smallest job).
    let unit = *p.work_ms.iter().min().expect("non-empty batch");
    let mut sim = Sim::new(SimConfig {
        seed: p.seed,
        spawn_estcpu_jitter: 4.0,
        ..SimConfig::default()
    });
    let tenant = stage.spawn(&mut sim);
    let procs: Vec<_> = tenant
        .members
        .iter()
        .zip(&p.work_ms)
        .map(|(&pid, &ms)| (pid, ms.div_ceil(unit)))
        .collect();
    let cfg = AlpsConfig::new(p.quantum);
    let _alps = spawn_alps(&mut sim, "alps", cfg, CostModel::paper(), &procs);
    let alps = outcome(&run_pids_to_completion(&mut sim, &tenant.members, cap));

    BatchResult { kernel, alps }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_proportional_shares_co_complete() {
        let r = run_batch(&BatchParams::default());
        // Same total work either way: makespans are close.
        assert!(
            (r.alps.makespan_ms - r.kernel.makespan_ms).abs() < 0.15 * r.kernel.makespan_ms,
            "makespans {:.0} vs {:.0}",
            r.alps.makespan_ms,
            r.kernel.makespan_ms
        );
        // The straggler window collapses under work-proportional shares.
        assert!(
            r.alps.spread_ms < r.kernel.spread_ms * 0.35,
            "spread {:.0}ms vs kernel {:.0}ms",
            r.alps.spread_ms,
            r.kernel.spread_ms
        );
    }

    #[test]
    fn kernel_fairness_finishes_small_jobs_first() {
        let r = run_batch(&BatchParams::default());
        // Under per-process fairness the smallest job (index 7) finishes
        // far before the largest (index 0).
        assert!(r.kernel.completion_ms[7] < r.kernel.completion_ms[0] * 0.5);
    }
}
