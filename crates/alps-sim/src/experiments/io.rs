//! The §3.3 I/O experiment (Figure 6) and the blocked-process policy
//! ablation.
//!
//! Three processes A, B, C with shares 1, 2, 3 and a 10 ms quantum. After
//! reaching steady state (near cycle 590 in the paper), B starts
//! "simulating I/O requests by sleeping for 240 ms after every 80 ms of
//! execution time". Because B is scheduled at 33.3 % of the CPU it needs
//! 240 ms of real time per 80 ms of CPU, so it alternates roughly 4
//! non-blocked cycles with 4 blocked cycles; while blocked, ALPS must
//! redistribute its CPU 1:3 between A and C (25 % / 75 %).

use alps_core::{AlpsConfig, IoPolicy, Nanos, ProcId};
use alps_metrics::share_percent_series;
use kernsim::{ComputeBound, ComputeThenSleep, Sim, SimConfig};
use serde::{Deserialize, Serialize};

use crate::cost::CostModel;
use crate::runner::spawn_alps;

/// Parameters of the Figure-6 experiment.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct IoParams {
    /// ALPS quantum (paper: 10 ms).
    pub quantum: Nanos,
    /// Cycle at which B starts its I/O pattern (paper: near 590).
    pub io_start_cycle: u64,
    /// Last cycle to record (paper plots up to ~650).
    pub end_cycle: u64,
    /// CPU burst between sleeps (paper: 80 ms).
    pub io_run: Nanos,
    /// Sleep duration (paper: 240 ms).
    pub io_sleep: Nanos,
    /// Blocked-process accounting policy (§2.4; the paper's is
    /// [`IoPolicy::OneQuantumPenalty`]).
    pub policy: IoPolicy,
    /// RNG seed.
    pub seed: u64,
}

impl Default for IoParams {
    fn default() -> Self {
        IoParams {
            quantum: Nanos::from_millis(10),
            io_start_cycle: 590,
            end_cycle: 650,
            io_run: Nanos::from_millis(80),
            io_sleep: Nanos::from_millis(240),
            policy: IoPolicy::OneQuantumPenalty,
            seed: 1,
        }
    }
}

/// Per-cycle share percentages for the three processes (Figure 6's series).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IoResult {
    /// `(cycle, share%)` for the 1-share process A.
    pub a: Vec<(u64, f64)>,
    /// `(cycle, share%)` for the 2-share, I/O-performing process B.
    pub b: Vec<(u64, f64)>,
    /// `(cycle, share%)` for the 3-share process C.
    pub c: Vec<(u64, f64)>,
    /// Mean share% of each process over cycles where B was fully blocked
    /// (B's share ≈ 0): the paper expects A ≈ 25 %, C ≈ 75 %.
    pub blocked_split: (f64, f64),
    /// Mean share% over cycles before the I/O phase: expect ≈ (16.7, 33.3, 50).
    pub steady_split: (f64, f64, f64),
}

/// Run the Figure-6 experiment.
pub fn run_io(p: &IoParams) -> IoResult {
    let cycle_cpu = p.quantum.mul_f64(6.0); // shares {1,2,3}: S = 6
                                            // B receives share 2/6 of each cycle.
    let b_cpu_per_cycle = cycle_cpu.mul_f64(2.0 / 6.0);
    let start_after = b_cpu_per_cycle.mul_f64(p.io_start_cycle as f64);

    let mut sim = Sim::new(SimConfig {
        seed: p.seed,
        spawn_estcpu_jitter: 4.0,
        ..SimConfig::default()
    });
    let a = sim.spawn("A", Box::new(ComputeBound));
    let b = sim.spawn(
        "B",
        Box::new(ComputeThenSleep::new(p.io_run, p.io_sleep, start_after)),
    );
    let c = sim.spawn("C", Box::new(ComputeBound));
    let cfg = AlpsConfig::new(p.quantum)
        .with_io_policy(p.policy)
        .with_cycle_log(true);
    let alps = spawn_alps(
        &mut sim,
        "alps",
        cfg,
        CostModel::paper(),
        &[(a, 1), (b, 2), (c, 3)],
    );
    let ids = alps.proc_ids();
    let (ida, idb, idc) = (ids[0], ids[1], ids[2]);

    // Cycles are ~60 ms of CPU; budget generously (B's sleeps stretch wall
    // time while it is blocked but ALPS shortens those cycles).
    let budget = cycle_cpu.mul_f64(p.end_cycle as f64 * 2.5) + Nanos::from_secs(20);
    while alps.cycle_count() <= p.end_cycle && sim.now() < budget {
        let next = sim.now() + Nanos::SECOND;
        sim.run_until(next.min(budget));
    }

    let cycles = alps.cycles();
    let series = |id: ProcId| share_percent_series(&cycles, id);
    let (sa, sb, sc) = (series(ida), series(idb), series(idc));

    // Blocked cycles: B consumed (almost) nothing.
    let blocked: Vec<u64> = sb
        .iter()
        .filter(|&&(cy, pct)| cy >= p.io_start_cycle && cy < p.end_cycle && pct < 1.0)
        .map(|&(cy, _)| cy)
        .collect();
    let mean_at = |s: &[(u64, f64)], cys: &[u64]| -> f64 {
        let vals: Vec<f64> = s
            .iter()
            .filter(|(cy, _)| cys.contains(cy))
            .map(|&(_, v)| v)
            .collect();
        if vals.is_empty() {
            f64::NAN
        } else {
            vals.iter().sum::<f64>() / vals.len() as f64
        }
    };
    let blocked_split = (mean_at(&sa, &blocked), mean_at(&sc, &blocked));

    let steady: Vec<u64> =
        (p.io_start_cycle.saturating_sub(30)..p.io_start_cycle.saturating_sub(2)).collect();
    let steady_split = (
        mean_at(&sa, &steady),
        mean_at(&sb, &steady),
        mean_at(&sc, &steady),
    );

    IoResult {
        a: sa,
        b: sb,
        c: sc,
        blocked_split,
        steady_split,
    }
}

/// Compare the three §2.4 blocked-process policies on the same workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IoPolicyRow {
    /// The policy under test.
    pub policy: IoPolicy,
    /// Steady-state split before I/O begins.
    pub steady_split: (f64, f64, f64),
    /// A/C split while B is blocked (want 25/75).
    pub blocked_split: (f64, f64),
}

/// The I/O-policy ablation: same experiment, three accounting policies,
/// one independent sim per policy fanned across the sweep executor.
pub fn run_io_policy_ablation(base: &IoParams) -> Vec<IoPolicyRow> {
    let policies = vec![
        IoPolicy::OneQuantumPenalty,
        IoPolicy::NoPenalty,
        IoPolicy::ForfeitAllowance,
    ];
    alps_sweep::sweep_map(policies, |policy| {
        let mut p = *base;
        p.policy = policy;
        let r = run_io(&p);
        IoPolicyRow {
            policy,
            steady_split: r.steady_split,
            blocked_split: r.blocked_split,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> IoParams {
        IoParams {
            io_start_cycle: 60,
            end_cycle: 120,
            ..IoParams::default()
        }
    }

    #[test]
    fn steady_state_is_one_two_three() {
        let r = run_io(&quick());
        let (a, b, c) = r.steady_split;
        assert!((a - 16.7).abs() < 3.0, "A {a}%");
        assert!((b - 33.3).abs() < 3.0, "B {b}%");
        assert!((c - 50.0).abs() < 3.0, "C {c}%");
    }

    #[test]
    fn blocked_b_redistributes_one_to_three() {
        let r = run_io(&quick());
        let (a, c) = r.blocked_split;
        assert!(!a.is_nan(), "no fully-blocked cycles detected");
        assert!((a - 25.0).abs() < 5.0, "A while B blocked: {a}%");
        assert!((c - 75.0).abs() < 5.0, "C while B blocked: {c}%");
    }

    #[test]
    fn no_penalty_policy_still_converges_long_run() {
        let mut p = quick();
        p.policy = IoPolicy::NoPenalty;
        let r = run_io(&p);
        // Without the penalty the cycle stalls while B sleeps, but A and C
        // still share what CPU does flow 1:3 across the blocked window.
        let (a, c) = r.blocked_split;
        if !a.is_nan() {
            assert!((a + c - 100.0).abs() < 2.0, "A+C = {}", a + c);
        }
    }
}
