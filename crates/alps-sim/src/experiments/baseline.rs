//! Baseline comparison: user-level ALPS vs in-kernel stride scheduling.
//!
//! The paper's §6 contrasts ALPS with proportional-share schedulers that
//! *replace* the kernel scheduler (stride scheduling, ref \[26\], among
//! them) — trading kernel modification for accuracy and robustness. This
//! experiment quantifies the trade on identical workloads:
//!
//! * **accuracy** — in-kernel stride is deterministic and near-exact at
//!   every cycle; ALPS pays quantization and sampling error;
//! * **overhead** — stride's cost is inside the kernel's existing context
//!   switches (zero extra processes); ALPS burns measurable CPU;
//! * **robustness** — stride has no breakdown regime; ALPS loses control
//!   past the §4.2 threshold.

use alps_core::Nanos;
use kernsim::{ComputeBound, KernelPolicy, Pid, Sim, SimConfig};
use serde::{Deserialize, Serialize};
use workloads::ShareModel;

use crate::experiments::workload::{run_workload, WorkloadParams};

/// One row comparing the two approaches on the same workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BaselineRow {
    /// Workload name.
    pub workload: String,
    /// Number of processes.
    pub n: usize,
    /// ALPS mean RMS relative error (percent).
    pub alps_error_pct: f64,
    /// ALPS overhead (percent of CPU).
    pub alps_overhead_pct: f64,
    /// Fraction of quanta ALPS serviced (1.0 = full control).
    pub alps_serviced: f64,
    /// In-kernel stride: RMS error of final consumption ratios vs shares
    /// (percent) — its "accuracy" on the same workload and horizon.
    pub stride_error_pct: f64,
}

/// Run in-kernel stride over the same share distribution and horizon and
/// return the RMS relative error of total consumption vs entitlement.
fn run_stride(shares: &[u64], duration: Nanos, seed: u64) -> f64 {
    let mut sim = Sim::new(SimConfig {
        policy: KernelPolicy::Stride,
        seed,
        spawn_estcpu_jitter: 8.0,
        ..SimConfig::default()
    });
    let pids: Vec<(Pid, u64)> = shares
        .iter()
        .enumerate()
        .map(|(i, &s)| {
            (
                sim.spawn_tickets(format!("w{i}"), s, Box::new(ComputeBound)),
                s,
            )
        })
        .collect();
    sim.run_until(duration);
    let total_shares: u64 = shares.iter().sum();
    let total: f64 = pids
        .iter()
        .map(|&(p, _)| sim.proc(p).unwrap().cputime().as_f64())
        .sum();
    let mut sum_sq = 0.0;
    for &(p, s) in &pids {
        let ideal = total * s as f64 / total_shares as f64;
        let re = (sim.proc(p).unwrap().cputime().as_f64() - ideal) / ideal;
        sum_sq += re * re;
    }
    100.0 * (sum_sq / pids.len() as f64).sqrt()
}

/// Compare ALPS and in-kernel stride on one equal-share workload size.
pub fn run_baseline_row(n: usize, quantum: Nanos, duration: Nanos, seed: u64) -> BaselineRow {
    let mut p = WorkloadParams::new(ShareModel::Equal, n, quantum);
    p.uniform_share = Some(5);
    p.seed = seed;
    p.min_duration = duration;
    p.target_cycles = 10_000; // duration-bound
    let alps = run_workload(&p);
    let shares = vec![5u64; n];
    let stride_error_pct = run_stride(&shares, duration, seed);
    BaselineRow {
        workload: format!("Equal{n} (5 shares each)"),
        n,
        alps_error_pct: alps.mean_rms_error_pct,
        alps_overhead_pct: alps.overhead_pct,
        alps_serviced: alps.quanta_serviced as f64 / alps.quanta_expected as f64,
        stride_error_pct,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stride_is_near_exact_where_alps_pays_error() {
        let row = run_baseline_row(10, Nanos::from_millis(10), Nanos::from_secs(30), 1);
        assert!(
            row.stride_error_pct < 0.5,
            "stride error {:.3}%",
            row.stride_error_pct
        );
        assert!(row.alps_error_pct > row.stride_error_pct);
        assert!(row.alps_overhead_pct > 0.1, "ALPS pays real CPU");
        assert!(row.alps_serviced > 0.95, "below threshold, full control");
    }

    #[test]
    fn stride_has_no_breakdown_regime() {
        // N = 90 at a 10ms quantum is far past ALPS's breakdown; stride
        // doesn't care (it needs no user-level scheduler process at all).
        let row = run_baseline_row(90, Nanos::from_millis(10), Nanos::from_secs(40), 1);
        // 90 processes x 444ms each over 40s with tick-granular switching:
        // residual quantization of a tick or two per process (~2%).
        assert!(
            row.stride_error_pct < 3.0,
            "stride error {:.3}%",
            row.stride_error_pct
        );
        assert!(
            row.alps_serviced < 0.9,
            "ALPS past breakdown: serviced {:.2}",
            row.alps_serviced
        );
    }
}
