//! Extension study: ALPS on a multiprocessor.
//!
//! The paper's evaluation is strictly uniprocessor, and its related-work
//! section points at surplus fair scheduling (Chandra et al.) for the SMP
//! case. The ALPS algorithm itself is CPU-count-agnostic — allowances are
//! denominated in CPU time, and a cycle completes when `S·Q` of *aggregate*
//! CPU has flowed — so it runs unmodified on an SMP `kernsim`. What changes
//! is *work conservation*: one process cannot use more than one CPU, so
//! when a share distribution demands more than that (9 shares of 10 on a
//! 2-CPU box), a work-conserving scheduler like surplus fair clamps the
//! ratio at one full CPU — whereas ALPS, which only ever observes
//! consumption ratios, keeps the exact ratio by *throttling*: it suspends
//! the small-share processes until the big one catches up, stranding whole
//! cores. This experiment measures that trade: achieved ratios stay exact
//! at every CPU count, and the price appears as idle capacity.

use alps_core::{AlpsConfig, Nanos};
use alps_metrics::{jain_index, mean_rms_relative_error_pct};
use kernsim::{ComputeBound, Pid, Sim, SimConfig};
use serde::{Deserialize, Serialize};

use crate::cost::CostModel;
use crate::runner::spawn_alps;

/// Parameters of one SMP run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SmpParams {
    /// Number of CPUs.
    pub cpus: usize,
    /// Share of each process (process count = `shares.len()`).
    pub shares: Vec<u64>,
    /// ALPS quantum.
    pub quantum: Nanos,
    /// Wall-clock duration.
    pub duration: Nanos,
    /// RNG seed.
    pub seed: u64,
}

/// Outcome of one SMP run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SmpResult {
    /// CPUs simulated.
    pub cpus: usize,
    /// Per-process achieved fraction of the *consumed* aggregate CPU.
    pub achieved_frac: Vec<f64>,
    /// Per-process target fraction (`share/S`), clamped to the `1/cpus…`
    /// feasibility ceiling a single process can use — the fraction an
    /// ideal SMP proportional-share scheduler would deliver.
    pub feasible_frac: Vec<f64>,
    /// Mean RMS relative error vs the *unclamped* share targets (the
    /// uniprocessor metric; infeasible distributions inflate it).
    pub mean_rms_error_pct: f64,
    /// ALPS overhead (% of one CPU).
    pub overhead_pct: f64,
    /// Fraction of aggregate CPU capacity left idle (suspensions can
    /// strand cores when fewer processes are eligible than CPUs).
    pub idle_frac: f64,
    /// Jain fairness index of `achieved/target` across processes (1.0 =
    /// perfectly proportional).
    pub jain: f64,
}

/// Water-filling: the apportionment an ideal proportional-share scheduler
/// achieves on `cpus` CPUs, where no process can exceed `1/cpus` of the
/// aggregate. Returns fractions of the aggregate summing to ≤ 1.
pub fn feasible_fractions(shares: &[u64], cpus: usize) -> Vec<f64> {
    let cap = 1.0 / cpus as f64;
    let mut frac = vec![0.0f64; shares.len()];
    let mut remaining: Vec<usize> = (0..shares.len()).collect();
    let mut budget = 1.0f64;
    // Iteratively clamp processes whose proportional share exceeds the cap.
    loop {
        let total: u64 = remaining.iter().map(|&i| shares[i]).sum();
        if total == 0 || budget <= 0.0 {
            break;
        }
        let mut clamped_any = false;
        for &i in &remaining {
            let want = budget * shares[i] as f64 / total as f64;
            if want >= cap {
                frac[i] = cap;
                clamped_any = true;
            }
        }
        if !clamped_any {
            for &i in &remaining {
                frac[i] = budget * shares[i] as f64 / total as f64;
            }
            break;
        }
        let spent: f64 = remaining
            .iter()
            .filter(|&&i| frac[i] > 0.0)
            .map(|&i| frac[i])
            .sum();
        remaining.retain(|&i| frac[i] == 0.0);
        budget = (1.0 - spent).max(0.0);
        if remaining.is_empty() {
            break;
        }
    }
    frac
}

/// Run ALPS over compute-bound processes on an SMP machine.
pub fn run_smp(p: &SmpParams) -> SmpResult {
    let mut sim = Sim::new(SimConfig {
        cpus: std::num::NonZeroUsize::new(p.cpus).expect("at least one CPU"),
        seed: p.seed,
        spawn_estcpu_jitter: 8.0,
        ..SimConfig::default()
    });
    let procs: Vec<(Pid, u64)> = p
        .shares
        .iter()
        .enumerate()
        .map(|(i, &s)| (sim.spawn(format!("w{i}"), Box::new(ComputeBound)), s))
        .collect();
    let cfg = AlpsConfig::new(p.quantum).with_cycle_log(true);
    let alps = spawn_alps(&mut sim, "alps", cfg, CostModel::paper(), &procs);
    sim.run_until(p.duration);

    let consumed: Vec<f64> = procs
        .iter()
        .map(|&(pid, _)| sim.proc(pid).unwrap().cputime().as_f64())
        .collect();
    let total: f64 = consumed.iter().sum();
    let capacity = p.duration.as_f64() * p.cpus as f64;
    let total_shares: u64 = p.shares.iter().sum();
    let normalized: Vec<f64> = consumed
        .iter()
        .zip(&p.shares)
        .map(|(c, &s)| (c / total.max(1.0)) / (s as f64 / total_shares as f64))
        .collect();
    SmpResult {
        cpus: p.cpus,
        jain: jain_index(&normalized),
        achieved_frac: consumed.iter().map(|c| c / total.max(1.0)).collect(),
        feasible_frac: feasible_fractions(&p.shares, p.cpus),
        mean_rms_error_pct: mean_rms_relative_error_pct(&alps.cycles(), 3),
        overhead_pct: 100.0 * sim.proc(alps.pid).unwrap().cputime().as_f64() / p.duration.as_f64(),
        idle_frac: sim.idle_time().as_f64() / capacity,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn water_filling_basics() {
        // Feasible distribution: untouched.
        let f = feasible_fractions(&[1, 1, 2], 2);
        assert!((f[0] - 0.25).abs() < 1e-9);
        assert!((f[2] - 0.5).abs() < 1e-9);
        // Infeasible: 9-of-10 on 2 CPUs clamps to 0.5, the remainder goes
        // to the 1-share process.
        let f = feasible_fractions(&[1, 9], 2);
        assert!((f[1] - 0.5).abs() < 1e-9);
        assert!((f[0] - 0.5).abs() < 1e-9);
        // Three CPUs, one process: it can only use a third.
        let f = feasible_fractions(&[5], 3);
        assert!((f[0] - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn feasible_distribution_is_enforced_on_two_cpus() {
        let p = SmpParams {
            cpus: 2,
            shares: vec![1, 2, 3, 2], // max target 3/8 < 1/2: feasible
            quantum: Nanos::from_millis(10),
            duration: Nanos::from_secs(40),
            seed: 1,
        };
        let r = run_smp(&p);
        for (i, (&got, &want)) in r.achieved_frac.iter().zip(&r.feasible_frac).enumerate() {
            assert!(
                (got - want).abs() < 0.04,
                "proc {i}: got {got:.3} want {want:.3}"
            );
        }
        assert!(r.overhead_pct < 1.0);
        assert!(r.jain > 0.995, "jain {:.4}", r.jain);
    }

    #[test]
    fn infeasible_share_is_enforced_by_throttling() {
        let p = SmpParams {
            cpus: 2,
            shares: vec![1, 9], // 0.9 of the aggregate exceeds one CPU
            quantum: Nanos::from_millis(10),
            duration: Nanos::from_secs(30),
            seed: 1,
        };
        let r = run_smp(&p);
        // ALPS keeps the exact consumption ratio anyway — it never sees
        // CPUs, only consumption — by suspending the 1-share process most
        // of the time.
        assert!(
            (r.achieved_frac[1] - 0.9).abs() < 0.03,
            "achieved {:.3}",
            r.achieved_frac[1]
        );
        // The price is stranded capacity: the 9-share process saturates
        // one CPU (1.0) while the 1-share one runs 1/9 of the time, so
        // aggregate use is ~1.11 of 2 CPUs => ~44% idle.
        assert!((r.idle_frac - 0.44).abs() < 0.05, "idle {:.3}", r.idle_frac);
        // A work-conserving scheduler would instead clamp to 50/50.
        assert!((r.feasible_frac[1] - 0.5).abs() < 1e-9);
    }
}
