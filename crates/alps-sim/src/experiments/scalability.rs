//! The §4.2 scalability experiment (Figures 8 and 9).
//!
//! Equal shares (5 per process), increasing N, quantum lengths of 10, 20,
//! and 40 ms. Overhead grows linearly in N until ALPS needs more than its
//! `1/(N+1)` fair share of the CPU — past that point the kernel stops
//! scheduling it promptly, it misses quanta, and control (accuracy)
//! collapses.

use alps_core::Nanos;
use alps_metrics::{analyze_overhead_curve, ThresholdAnalysis};
use serde::{Deserialize, Serialize};
use workloads::ShareModel;

use crate::experiments::workload::{run_workload, WorkloadParams};

/// One point of Figures 8/9.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScalabilityPoint {
    /// Number of workload processes.
    pub n: usize,
    /// Quantum in milliseconds.
    pub quantum_ms: f64,
    /// ALPS overhead, percent of CPU (Figure 8 y-axis).
    pub overhead_pct: f64,
    /// Mean RMS relative error, percent (Figure 9 y-axis).
    pub mean_rms_error_pct: f64,
    /// Fraction of quanta ALPS actually serviced (1.0 = perfect control;
    /// collapse shows up here first).
    pub quanta_serviced_frac: f64,
    /// Cycles recorded.
    pub cycles: usize,
}

/// Parameters of a scalability sweep for one quantum length.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScalabilityParams {
    /// Quantum.
    pub quantum: Nanos,
    /// Values of N to sample.
    pub ns: Vec<usize>,
    /// Wall-clock duration per point (the error statistic needs several
    /// cycles; cycles are `5·N` quanta of CPU each).
    pub duration: Nanos,
    /// RNG seed.
    pub seed: u64,
}

impl ScalabilityParams {
    /// The paper's sweep: N up to 120 (thresholds land at 40/60/90).
    pub fn paper(quantum: Nanos) -> Self {
        ScalabilityParams {
            quantum,
            ns: vec![5, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100, 110, 120],
            duration: Nanos::from_secs(100),
            seed: 1,
        }
    }
}

/// Run one point: N equal-share processes for a fixed duration.
pub fn run_scalability_point(
    n: usize,
    quantum: Nanos,
    duration: Nanos,
    seed: u64,
) -> ScalabilityPoint {
    let mut p = WorkloadParams::new(ShareModel::Equal, n, quantum);
    p.seed = seed;
    p.warmup_cycles = 1;
    // Run for the full wall-clock duration: the breakdown effect needs the
    // decay-scheduler equilibrium to form, which takes tens of seconds.
    let cycle_cpu = quantum.mul_f64((5 * n) as f64);
    p.target_cycles = (duration.as_f64() / cycle_cpu.as_f64()).ceil().max(2.0) as u64;
    p.uniform_share = Some(5);
    p.min_duration = duration;
    let r = run_workload(&p);
    ScalabilityPoint {
        n,
        quantum_ms: quantum.as_millis_f64(),
        overhead_pct: r.overhead_pct,
        mean_rms_error_pct: r.mean_rms_error_pct,
        quanta_serviced_frac: r.quanta_serviced as f64 / r.quanta_expected as f64,
        cycles: r.cycles,
    }
}

/// A full sweep plus the §4.2 threshold analysis.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScalabilityResult {
    /// Quantum in milliseconds.
    pub quantum_ms: f64,
    /// The sampled curve.
    pub points: Vec<ScalabilityPoint>,
    /// Linear fit of the pre-breakdown overhead and predicted `N*`.
    pub analysis: Option<ThresholdAnalysis>,
    /// First sampled N at which control was observably lost (serviced
    /// fraction < 90 %), if any — the "observed threshold".
    pub observed_threshold: Option<usize>,
}

/// Run the sweep for one quantum length. The per-N points are
/// independent simulations and fan out across the sweep executor;
/// results come back in `p.ns` order regardless of thread count.
pub fn run_scalability(p: &ScalabilityParams) -> ScalabilityResult {
    let points: Vec<ScalabilityPoint> = alps_sweep::sweep_map(p.ns.clone(), |n| {
        run_scalability_point(n, p.quantum, p.duration, p.seed)
    });
    let observed_threshold = points
        .iter()
        .find(|pt| pt.quanta_serviced_frac < 0.90)
        .map(|pt| pt.n);
    // Fit the linear portion: points clearly before breakdown.
    let linear_max = observed_threshold
        .map(|t| (t.saturating_sub(10)) as f64)
        .unwrap_or(f64::INFINITY);
    let curve: Vec<(f64, f64)> = points
        .iter()
        .map(|pt| (pt.n as f64, pt.overhead_pct))
        .collect();
    let analysis = analyze_overhead_curve(&curve, linear_max);
    ScalabilityResult {
        quantum_ms: p.quantum.as_millis_f64(),
        points,
        analysis,
        observed_threshold,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_grows_with_n_before_breakdown() {
        let a = run_scalability_point(5, Nanos::from_millis(10), Nanos::from_secs(30), 1);
        let b = run_scalability_point(20, Nanos::from_millis(10), Nanos::from_secs(30), 1);
        assert!(
            b.overhead_pct > a.overhead_pct,
            "overhead: N=5 {} vs N=20 {}",
            a.overhead_pct,
            b.overhead_pct
        );
        assert!(a.quanta_serviced_frac > 0.95, "{}", a.quanta_serviced_frac);
        assert!(a.mean_rms_error_pct < 8.0);
    }

    #[test]
    fn control_degrades_for_large_n_small_quantum() {
        // Well past the paper's 10 ms threshold of ~40 processes.
        let pt = run_scalability_point(90, Nanos::from_millis(10), Nanos::from_secs(60), 1);
        assert!(
            pt.quanta_serviced_frac < 0.9 || pt.mean_rms_error_pct > 10.0,
            "expected loss of control: serviced {} error {}",
            pt.quanta_serviced_frac,
            pt.mean_rms_error_pct
        );
    }
}
