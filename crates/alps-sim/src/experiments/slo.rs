//! SLO-driven share feedback under open-loop overload.
//!
//! The paper's §5 web experiment assigns *static* shares per user; this
//! extension study closes the loop: latency-sensitive tenants receive
//! open-loop traffic ([`workloads::OpenLoop`]), a best-effort tenant
//! keeps the machine saturated, and an [`alps_core::SloController`]
//! observes each tenant's windowed p95 every control period and nudges
//! its ALPS share toward its SLO target via
//! [`PrincipalAlpsHandle::adjust_share`].
//!
//! The operating regime is deliberate. Each tenant is *overloaded*
//! (offered load exceeds its CPU fraction) with a bounded queue, so its
//! steady-state p95 is pinned by the backlog it can hold:
//! `p95 ≈ queue_cap · cpu_per_request / fraction`. That makes p95 a
//! smooth, monotone function of the tenant's share — exactly the plant a
//! proportional controller can steer — rather than the knife-edge of an
//! underloaded queue, where latency is flat until saturation and then
//! explodes. Excess arrivals are shed at the queue (counted as drops):
//! latency SLOs under overload are met by trading throughput, which is
//! how real load-shedding front ends behave.
//!
//! Determinism: arrival generators are aux processes (never signalled)
//! drawing from indexed streams, so the *offered* traffic is a pure
//! function of the spec; with the controller disabled, shares never move
//! and the whole run is byte-identical to one without any controller
//! plumbing. `run_slo_sweep` fans seeds through `alps-sweep`, so results
//! are byte-identical at any thread count or seed order.

use std::cell::RefCell;
use std::rc::Rc;

use alps_core::{AlpsConfig, Nanos, ProcId, SloConfig, SloController, SloTarget};
use kernsim::{Sim, SimConfig};
use serde::{Deserialize, Serialize};
use workloads::{Arrivals, BestEffort, OpenLoop, Tenant, Workload};

use crate::cost::CostModel;
use crate::principal_runner::{spawn_alps_principals, MemberList};

/// One latency-sensitive tenant of the scenario.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SloTenantSpec {
    /// Tenant name.
    pub name: String,
    /// Open-loop arrival process.
    pub arrivals: Arrivals,
    /// Server processes draining the tenant's queue.
    pub servers: usize,
    /// Mean CPU per request.
    pub cpu_per_request: Nanos,
    /// Service-cost jitter.
    pub jitter: f64,
    /// Queue slots; overflow is shed and counted.
    pub queue_cap: usize,
    /// Initial ALPS share.
    pub share: u64,
    /// The p95 latency SLO, milliseconds.
    pub p95_target_ms: f64,
}

/// Parameters of the SLO-feedback experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SloParams {
    /// The latency-sensitive tenants.
    pub tenants: Vec<SloTenantSpec>,
    /// Compute-bound processes of the best-effort tenant (keeps the
    /// machine saturated; its share is never adjusted).
    pub hog_procs: usize,
    /// The best-effort tenant's fixed share.
    pub hog_share: u64,
    /// ALPS quantum. Small relative to the targets: a tenant's latency
    /// floor is set by cycle suspension (`(S − share)·Q`).
    pub quantum: Nanos,
    /// Principal membership refresh period.
    pub refresh: Nanos,
    /// SLO control period: how often the controller observes and acts.
    pub control_period: Nanos,
    /// Total run length.
    pub duration: Nanos,
    /// Converged-measurement window at the end of the run (final p95 is
    /// computed over completions inside it).
    pub settle: Nanos,
    /// Whether the controller runs at all. Off = static shares; the
    /// engine's event stream and counters stay untouched.
    pub controller_enabled: bool,
    /// Controller tuning.
    pub slo: SloConfig,
    /// Convergence tolerance on `|p95 − target| / target`.
    pub tolerance: f64,
    /// RNG seed (tenant streams split from it).
    pub seed: u64,
}

impl Default for SloParams {
    fn default() -> Self {
        SloParams {
            tenants: vec![
                // "gold" starts under-provisioned (needs ~20 of share to
                // meet 400 ms; starts at 6) …
                SloTenantSpec {
                    name: "gold".into(),
                    arrivals: Arrivals::Poisson {
                        mean_interarrival: Nanos::from_millis(8),
                    },
                    servers: 4,
                    cpu_per_request: Nanos::from_millis(4),
                    jitter: 0.2,
                    queue_cap: 32,
                    share: 6,
                    p95_target_ms: 400.0,
                },
                // … while "silver" starts over-provisioned (needs ~10;
                // starts at 20). The controller must swap their standing.
                SloTenantSpec {
                    name: "silver".into(),
                    arrivals: Arrivals::Poisson {
                        mean_interarrival: Nanos::from_millis(16),
                    },
                    servers: 4,
                    cpu_per_request: Nanos::from_millis(4),
                    jitter: 0.2,
                    queue_cap: 32,
                    share: 20,
                    p95_target_ms: 800.0,
                },
            ],
            hog_procs: 2,
            hog_share: 32,
            quantum: Nanos::from_millis(2),
            refresh: Nanos::SECOND,
            control_period: Nanos::SECOND,
            duration: Nanos::from_secs(40),
            settle: Nanos::from_secs(10),
            controller_enabled: true,
            slo: SloConfig::default(),
            tolerance: 0.10,
            seed: 1,
        }
    }
}

impl SloParams {
    /// The same scenario at a different seed.
    pub fn with_seed(&self, seed: u64) -> Self {
        SloParams {
            seed,
            ..self.clone()
        }
    }

    /// A shortened run for CI smoke tests.
    pub fn quick(&self) -> Self {
        SloParams {
            duration: Nanos::from_secs(18),
            settle: Nanos::from_secs(6),
            ..self.clone()
        }
    }
}

/// The flash-crowd overload scenario: gold's arrivals alternate between a
/// calm base rate and burst episodes; without feedback its static share
/// is sized for neither.
pub fn overload_params() -> SloParams {
    let mut p = SloParams::default();
    p.tenants[0].arrivals = Arrivals::FlashCrowd {
        base: Nanos::from_millis(12),
        burst: Nanos::from_millis(4),
        normal_len: 200,
        burst_len: 200,
    };
    p.tenants[0].share = 4;
    p.tenants[1].share = 10;
    p.hog_share = 24;
    p
}

/// Final standing of one tenant.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TenantOutcome {
    /// Tenant name.
    pub name: String,
    /// Its SLO target, ms.
    pub target_p95_ms: f64,
    /// p95 over the settle window (exact, from raw samples); `None` if
    /// the tenant completed nothing in the window.
    pub final_p95_ms: Option<f64>,
    /// `(p95 − target) / target`; `None` without samples.
    pub rel_error: Option<f64>,
    /// Share at spawn.
    pub initial_share: u64,
    /// Share when the run ended.
    pub final_share: u64,
    /// Share after each control period, in order.
    pub share_trajectory: Vec<u64>,
    /// Requests completed over the whole run.
    pub completed: u64,
    /// Requests shed at the queue.
    pub dropped: u64,
    /// Completions per second over the whole run.
    pub throughput_rps: f64,
    /// Mean stretch over the settle window.
    pub mean_stretch: f64,
}

/// Result of one SLO-feedback run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SloResult {
    /// Per-tenant outcomes, in spec order.
    pub tenants: Vec<TenantOutcome>,
    /// The best-effort tenant's (fixed) share.
    pub hog_share: u64,
    /// Share changes the engine actually applied.
    pub share_adjustments: u64,
    /// Whether the controller ran.
    pub controller_enabled: bool,
    /// All tenants within tolerance of their targets at the end.
    pub converged: bool,
    /// ALPS CPU overhead, percent of wall clock.
    pub overhead_pct: f64,
}

/// Run one SLO-feedback scenario.
pub fn run_slo(p: &SloParams) -> SloResult {
    assert!(!p.tenants.is_empty(), "need at least one tenant");
    assert!(p.control_period > Nanos::ZERO);
    assert!(p.settle <= p.duration);
    let mut sim = Sim::new(SimConfig {
        seed: p.seed,
        spawn_estcpu_jitter: 4.0,
        ..SimConfig::default()
    });

    // Spawn the tenants (each seeded from its own split of the scenario
    // seed) and the best-effort hog.
    let tenants: Vec<Tenant> = p
        .tenants
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            OpenLoop {
                name: spec.name.clone(),
                arrivals: spec.arrivals,
                servers: spec.servers,
                cpu_per_request: spec.cpu_per_request,
                jitter: spec.jitter,
                queue_cap: spec.queue_cap,
                seed: p.seed.wrapping_mul(31).wrapping_add(i as u64),
                ..OpenLoop::default()
            }
            .spawn(&mut sim)
        })
        .collect();
    let _hog = BestEffort {
        name: "besteffort".into(),
        procs: p.hog_procs,
    }
    .spawn(&mut sim);

    // One ALPS over tenant principals + the hog principal, in that order.
    let mut groups: Vec<(u64, MemberList)> = tenants
        .iter()
        .zip(&p.tenants)
        .map(|(t, spec)| {
            (
                spec.share,
                Rc::new(RefCell::new(t.members.clone())) as MemberList,
            )
        })
        .collect();
    groups.push((
        p.hog_share,
        Rc::new(RefCell::new(_hog.members.clone())) as MemberList,
    ));
    let alps = spawn_alps_principals(
        &mut sim,
        "alps",
        AlpsConfig::new(p.quantum),
        CostModel::paper(),
        &groups,
        p.refresh,
    );
    let ids = alps.principal_ids();
    let tenant_ids = &ids[..p.tenants.len()];

    let controller = SloController::new(
        p.slo,
        tenant_ids
            .iter()
            .zip(&p.tenants)
            .map(|(&id, spec)| SloTarget {
                id,
                p95_target_ms: spec.p95_target_ms,
            })
            .collect(),
    );

    // The control loop: run one period, observe each tenant's window,
    // apply the controller's adjustments, repeat.
    let settle_start = p.duration - p.settle;
    let n = p.tenants.len();
    let mut cursors = vec![0usize; n];
    let mut settle_cursor: Vec<Option<usize>> = vec![None; n];
    let mut trajectories: Vec<Vec<u64>> = vec![Vec::new(); n];
    while sim.now() < p.duration {
        let next = (sim.now() + p.control_period).min(p.duration);
        sim.run_until(next);
        if p.controller_enabled {
            let observed: Vec<(ProcId, Option<f64>, u64)> = tenant_ids
                .iter()
                .enumerate()
                .map(|(i, &id)| {
                    let (w, cur) = tenants[i].probe().window_summary(cursors[i]);
                    cursors[i] = cur;
                    let p95 = (w.count > 0).then_some(w.p95_ms);
                    (id, p95, alps.share(id).expect("live principal"))
                })
                .collect();
            for adj in controller.control(&observed) {
                alps.adjust_share(adj.id, adj.share)
                    .expect("principal ids never go stale");
            }
        }
        for (i, &id) in tenant_ids.iter().enumerate() {
            trajectories[i].push(alps.share(id).expect("live principal"));
            if settle_cursor[i].is_none() && sim.now() >= settle_start {
                settle_cursor[i] = Some(tenants[i].completed() as usize);
            }
        }
    }

    let wall = sim.now();
    let overhead_pct = 100.0 * sim.proc(alps.pid).unwrap().cputime().as_f64() / wall.as_f64();
    let outcomes: Vec<TenantOutcome> = tenants
        .iter()
        .zip(&p.tenants)
        .enumerate()
        .map(|(i, (t, spec))| {
            let skip = settle_cursor[i].unwrap_or(0);
            let final_p95_ms = t.probe().percentile_ms(0.95, skip);
            let rel_error = final_p95_ms.map(|v| (v - spec.p95_target_ms) / spec.p95_target_ms);
            TenantOutcome {
                name: spec.name.clone(),
                target_p95_ms: spec.p95_target_ms,
                final_p95_ms,
                rel_error,
                initial_share: spec.share,
                final_share: *trajectories[i].last().unwrap_or(&spec.share),
                share_trajectory: trajectories[i].clone(),
                completed: t.completed(),
                dropped: t.probe().dropped(),
                throughput_rps: t.completed() as f64 / wall.as_secs_f64(),
                mean_stretch: t.latency_summary(skip).mean_stretch,
            }
        })
        .collect();
    let converged = outcomes
        .iter()
        .all(|o| o.rel_error.is_some_and(|e| e.abs() <= p.tolerance));
    SloResult {
        tenants: outcomes,
        hog_share: p.hog_share,
        share_adjustments: alps.stats().share_adjustments,
        controller_enabled: p.controller_enabled,
        converged,
        overhead_pct,
    }
}

/// Fan one scenario across seeds on the sweep pool; results come back in
/// seed order, byte-identical at any thread count.
pub fn run_slo_sweep(p: &SloParams, seeds: &[u64]) -> Vec<(u64, SloResult)> {
    alps_sweep::sweep_map(seeds.to_vec(), |s| (s, run_slo(&p.with_seed(s))))
}

/// The flash-crowd scenario with and without feedback, side by side.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OverloadResult {
    /// Static shares (controller off).
    pub without: SloResult,
    /// SLO feedback on.
    pub with_controller: SloResult,
}

/// Run the overload comparison.
pub fn run_overload(p: &SloParams) -> OverloadResult {
    let mut off = p.clone();
    off.controller_enabled = false;
    let mut on = p.clone();
    on.controller_enabled = true;
    OverloadResult {
        without: run_slo(&off),
        with_controller: run_slo(&on),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn controller_converges_each_tenant_to_its_target() {
        let r = run_slo(&SloParams::default());
        assert!(r.share_adjustments > 0, "controller must act");
        for t in &r.tenants {
            let p95 = t.final_p95_ms.expect("tenants complete requests");
            let rel = (p95 - t.target_p95_ms) / t.target_p95_ms;
            assert!(
                rel.abs() <= 0.10,
                "{}: p95 {:.0}ms vs target {:.0}ms ({:+.0}%)",
                t.name,
                p95,
                t.target_p95_ms,
                rel * 100.0
            );
        }
        assert!(r.converged);
        // The misallocation is corrected in both directions: gold rises,
        // silver falls.
        assert!(r.tenants[0].final_share > r.tenants[0].initial_share);
        assert!(r.tenants[1].final_share < r.tenants[1].initial_share);
    }

    #[test]
    fn controller_off_means_static_shares_and_no_engine_traffic() {
        let mut p = SloParams::default().quick();
        p.controller_enabled = false;
        let r = run_slo(&p);
        assert_eq!(r.share_adjustments, 0);
        for t in &r.tenants {
            assert_eq!(t.final_share, t.initial_share);
            assert!(t.share_trajectory.iter().all(|&s| s == t.initial_share));
        }
        // Same params, same bytes: the run is a pure function of the spec.
        let again = run_slo(&p);
        assert_eq!(
            serde_json::to_string(&r).unwrap(),
            serde_json::to_string(&again).unwrap()
        );
    }

    #[test]
    fn feedback_beats_static_shares_under_flash_crowds() {
        let r = run_overload(&overload_params());
        let (off, on) = (&r.without.tenants[0], &r.with_controller.tenants[0]);
        let p95_off = off.final_p95_ms.expect("gold completes");
        let p95_on = on.final_p95_ms.expect("gold completes");
        // Static under-provisioned shares leave gold far over target;
        // feedback pulls it near target.
        assert!(
            p95_off > off.target_p95_ms * 1.5,
            "static p95 {p95_off:.0}ms should bust the {:.0}ms target",
            off.target_p95_ms
        );
        assert!(
            p95_on < p95_off,
            "feedback p95 {p95_on:.0}ms vs static {p95_off:.0}ms"
        );
        assert!(r.with_controller.share_adjustments > 0);
        assert_eq!(r.without.share_adjustments, 0);
    }
}
