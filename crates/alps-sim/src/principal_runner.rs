//! Running a principal-granularity ALPS (§5) inside the simulator.
//!
//! The web-server experiment schedules *users*, not processes: an ALPS
//! instance controls three principals, each owning a pool of worker
//! processes, refreshing each principal's membership once per second (the
//! paper used `kvm_getprocs` to list a user's pids). The scheduling loop is
//! the generic [`alps_core::Engine`] over a
//! [`SimSubstrate`]; this module adds the membership
//! refresh and charges the Table-1 costs for every member actually read
//! plus a process-table scan per refresh.

use std::cell::RefCell;
use std::rc::Rc;

use alps_core::{
    AlpsConfig, CycleRecord, Engine, EngineStats, Instrumentation, Nanos, NullSink, ProcId, StaleId,
};
use kernsim::{Behavior, Pid, Sim, SimCtl, Step};

use crate::cost::CostModel;
use crate::substrate::SimSubstrate;

/// How membership is refreshed: the driver owns the authoritative pid list
/// for each principal (in the real system this is "all processes of uid
/// X"), and may mutate it between `run_until` calls; the runner re-reads it
/// every `refresh_period`.
pub type MemberList = Rc<RefCell<Vec<Pid>>>;

#[derive(Debug)]
struct Shared {
    engine: Engine<Pid>,
    principals: Vec<(ProcId, MemberList)>,
    refreshes: u64,
}

/// Driver-side handle to a principal-mode ALPS instance.
#[derive(Debug, Clone)]
pub struct PrincipalAlpsHandle {
    /// The ALPS process's pid (its CPU time is the overhead numerator).
    pub pid: Pid,
    shared: Rc<RefCell<Shared>>,
}

impl PrincipalAlpsHandle {
    /// Principal ids, in registration order.
    pub fn principal_ids(&self) -> Vec<ProcId> {
        self.shared
            .borrow()
            .principals
            .iter()
            .map(|&(id, _)| id)
            .collect()
    }

    /// Per-cycle records (principal granularity).
    pub fn cycles(&self) -> Vec<CycleRecord> {
        self.shared.borrow().engine.cycles().to_vec()
    }

    /// Members read, summed over invocations.
    pub fn member_reads(&self) -> u64 {
        self.shared.borrow().engine.stats().measurements
    }

    /// Membership refreshes performed.
    pub fn refreshes(&self) -> u64 {
        self.shared.borrow().refreshes
    }

    /// Scheduler invocations serviced.
    pub fn quanta_serviced(&self) -> u64 {
        self.shared.borrow().engine.stats().quanta
    }

    /// A principal's current share.
    pub fn share(&self, id: ProcId) -> Option<u64> {
        self.shared.borrow().engine.share(id)
    }

    /// Change a principal's share mid-run — the SLO controller's actuator.
    /// Takes effect from the next cycle boundary; a no-op (same share)
    /// leaves the engine's event stream and counters untouched.
    pub fn adjust_share(&self, id: ProcId, share: u64) -> Result<(), StaleId> {
        self.shared
            .borrow_mut()
            .engine
            .adjust_share(id, share, &mut NullSink)
    }

    /// Engine counter snapshot (quanta, measurements, share adjustments…).
    pub fn stats(&self) -> EngineStats {
        self.shared.borrow().engine.stats()
    }
}

enum Phase {
    Init,
    Waiting,
    Measuring,
    Signaling,
}

struct PrincipalAlpsBehavior {
    shared: Rc<RefCell<Shared>>,
    cost: CostModel,
    refresh_period: Nanos,
    next_refresh: Nanos,
    phase: Phase,
}

impl PrincipalAlpsBehavior {
    /// Re-read each principal's member list; returns the extra CPU cost of
    /// the process-table scan plus any reconciliation signals sent.
    fn refresh_memberships(&mut self, ctl: &mut SimCtl<'_>) -> Nanos {
        let mut scanned = 0usize;
        let mut signals = Vec::new();
        {
            let mut shared = self.shared.borrow_mut();
            shared.refreshes += 1;
            let principals: Vec<(ProcId, MemberList)> = shared.principals.clone();
            for (id, members) in principals {
                let current: Vec<(Pid, Nanos)> = members
                    .borrow()
                    .iter()
                    .copied()
                    .filter(|&p| !ctl.is_exited(p))
                    .map(|p| (p, ctl.cputime(p)))
                    .collect();
                scanned += current.len();
                if let Some(change) = shared.engine.set_membership(id, &current) {
                    signals.extend(change.signals);
                }
            }
        }
        let cost = self.cost.measure(scanned) + self.cost.signals(signals.len());
        self.shared
            .borrow_mut()
            .engine
            .apply_signals(&mut SimSubstrate::new(ctl), &signals, &mut NullSink)
            .unwrap();
        cost
    }
}

impl Behavior for PrincipalAlpsBehavior {
    fn on_ready(&mut self, ctl: &mut SimCtl<'_>) -> Step {
        let mut sink = NullSink;
        match std::mem::replace(&mut self.phase, Phase::Waiting) {
            Phase::Init => {
                let quantum = self.shared.borrow().engine.quantum();
                // Initial membership load; principals start ineligible so
                // the reconciliation stops every member.
                let cost = self.refresh_memberships(ctl);
                let _ = cost; // spawn-time setup is not charged as overhead
                self.next_refresh = ctl.now() + self.refresh_period;
                ctl.set_interval_timer(quantum);
                self.phase = Phase::Waiting;
                Step::AwaitTimer
            }
            Phase::Waiting => {
                let mut work = self.cost.timer_event;
                if ctl.now() >= self.next_refresh {
                    work += self.refresh_memberships(ctl);
                    self.next_refresh = ctl.now() + self.refresh_period;
                }
                let to_read = {
                    let mut shared = self.shared.borrow_mut();
                    shared
                        .engine
                        .begin_quantum(&mut SimSubstrate::new(ctl), &mut sink)
                        .unwrap()
                };
                work += self.cost.measure(to_read);
                self.phase = Phase::Measuring;
                Step::Compute(work.max(Nanos::from_nanos(1)))
            }
            Phase::Measuring => {
                let n_signals = {
                    let mut shared = self.shared.borrow_mut();
                    shared
                        .engine
                        .complete_quantum(&mut SimSubstrate::new(ctl), &mut sink)
                        .unwrap();
                    shared.engine.pending_signals().len()
                };
                if n_signals == 0 {
                    self.phase = Phase::Waiting;
                    Step::AwaitTimer
                } else {
                    let work = self.cost.signals(n_signals);
                    self.phase = Phase::Signaling;
                    Step::Compute(work.max(Nanos::from_nanos(1)))
                }
            }
            Phase::Signaling => {
                self.shared
                    .borrow_mut()
                    .engine
                    .apply_pending_signals(&mut SimSubstrate::new(ctl), &mut sink)
                    .unwrap();
                self.phase = Phase::Waiting;
                Step::AwaitTimer
            }
        }
    }

    fn name(&self) -> &str {
        "alps-principal"
    }
}

/// Spawn a principal-mode ALPS controlling `(share, member-list)` groups.
pub fn spawn_alps_principals(
    sim: &mut Sim,
    name: impl Into<String>,
    cfg: AlpsConfig,
    cost: CostModel,
    groups: &[(u64, MemberList)],
    refresh_period: Nanos,
) -> PrincipalAlpsHandle {
    assert!(refresh_period > Nanos::ZERO);
    // Group scheduling keeps the core's measurement-granular cycle log
    // (consumption is attributed per principal, not per process).
    let mut engine = Engine::new(cfg, Instrumentation::Measured);
    let principals: Vec<(ProcId, MemberList)> = groups
        .iter()
        .map(|(share, members)| (engine.add_principal(*share), Rc::clone(members)))
        .collect();
    let shared = Rc::new(RefCell::new(Shared {
        engine,
        principals,
        refreshes: 0,
    }));
    let behavior = PrincipalAlpsBehavior {
        shared: Rc::clone(&shared),
        cost,
        refresh_period,
        next_refresh: Nanos::ZERO,
        phase: Phase::Init,
    };
    let pid = sim.spawn(name, Box::new(behavior));
    PrincipalAlpsHandle { pid, shared }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernsim::{ComputeBound, SimConfig};
    use std::cell::RefCell;

    #[test]
    fn principals_get_proportional_cpu() {
        let mut sim = Sim::new(SimConfig::default());
        // Two "users" with two compute-bound processes each, shares 1:3.
        let mk_group = |sim: &mut Sim, tag: &str| -> MemberList {
            let pids: Vec<Pid> = (0..2)
                .map(|i| sim.spawn(format!("{tag}{i}"), Box::new(ComputeBound)))
                .collect();
            Rc::new(RefCell::new(pids))
        };
        let ga = mk_group(&mut sim, "a");
        let gb = mk_group(&mut sim, "b");
        let cfg = AlpsConfig::new(Nanos::from_millis(20));
        let _alps = spawn_alps_principals(
            &mut sim,
            "alps",
            cfg,
            CostModel::paper(),
            &[(1, Rc::clone(&ga)), (3, Rc::clone(&gb))],
            Nanos::SECOND,
        );
        sim.run_until(Nanos::from_secs(40));
        let sum = |g: &MemberList| -> f64 {
            g.borrow()
                .iter()
                .map(|&p| sim.proc(p).unwrap().cputime().as_secs_f64())
                .sum()
        };
        let (ca, cb) = (sum(&ga), sum(&gb));
        let ratio = cb / ca;
        assert!((ratio - 3.0).abs() < 0.25, "expected 3:1, got {ratio:.3}");
    }

    #[test]
    fn exited_members_are_skipped_without_charge() {
        use workloads::FiniteJob;
        let mut sim = Sim::new(SimConfig::default());
        let short = sim.spawn("short", Box::new(FiniteJob::new(Nanos::from_millis(100))));
        let long = sim.spawn("long", Box::new(ComputeBound));
        let other = sim.spawn("other", Box::new(ComputeBound));
        let ga: MemberList = Rc::new(RefCell::new(vec![short, long]));
        let gb: MemberList = Rc::new(RefCell::new(vec![other]));
        let cfg = AlpsConfig::new(Nanos::from_millis(10));
        let alps = spawn_alps_principals(
            &mut sim,
            "alps",
            cfg,
            CostModel::paper(),
            &[(1, Rc::clone(&ga)), (1, Rc::clone(&gb))],
            Nanos::SECOND,
        );
        sim.run_until(Nanos::from_secs(10));
        assert!(sim.proc(short).unwrap().is_exited());
        // Group totals still split ~1:1 after the exit (the refresh drops
        // the dead member; the live one inherits the group's share).
        let ca =
            (sim.proc(short).unwrap().cputime() + sim.proc(long).unwrap().cputime()).as_secs_f64();
        let cb = sim.proc(other).unwrap().cputime().as_secs_f64();
        assert!((ca / cb - 1.0).abs() < 0.15, "split {ca:.2}:{cb:.2}");
        assert!(alps.refreshes() >= 9);
    }

    #[test]
    fn refresh_scan_is_charged_as_cpu() {
        // Identical workloads, one with a 100ms refresh and one with a 10s
        // refresh: the frequent scanner must burn measurably more CPU.
        let run = |refresh: Nanos| {
            let mut sim = Sim::new(SimConfig::default());
            let members: Vec<Pid> = (0..60)
                .map(|i| sim.spawn(format!("w{i}"), Box::new(ComputeBound)))
                .collect();
            let g: MemberList = Rc::new(RefCell::new(members));
            let g2: MemberList = Rc::new(RefCell::new(Vec::new()));
            let alps = spawn_alps_principals(
                &mut sim,
                "alps",
                AlpsConfig::new(Nanos::from_millis(100)),
                CostModel::paper(),
                &[(1, g), (1, g2)],
                refresh,
            );
            sim.run_until(Nanos::from_secs(30));
            sim.proc(alps.pid).unwrap().cputime()
        };
        let frequent = run(Nanos::from_millis(100));
        let rare = run(Nanos::from_secs(10));
        assert!(
            frequent > rare + Nanos::from_millis(5),
            "frequent {frequent} vs rare {rare}"
        );
    }

    #[test]
    fn membership_change_is_picked_up_at_refresh() {
        let mut sim = Sim::new(SimConfig::default());
        let a0 = sim.spawn("a0", Box::new(ComputeBound));
        let b0 = sim.spawn("b0", Box::new(ComputeBound));
        let ga: MemberList = Rc::new(RefCell::new(vec![a0]));
        let gb: MemberList = Rc::new(RefCell::new(vec![b0]));
        let cfg = AlpsConfig::new(Nanos::from_millis(10));
        let alps = spawn_alps_principals(
            &mut sim,
            "alps",
            cfg,
            CostModel::paper(),
            &[(1, Rc::clone(&ga)), (1, Rc::clone(&gb))],
            Nanos::SECOND,
        );
        sim.run_until(Nanos::from_secs(5));
        // A new process joins user A's pool mid-run.
        let a1 = sim.spawn("a1", Box::new(ComputeBound));
        ga.borrow_mut().push(a1);
        let refreshes_before = alps.refreshes();
        sim.run_until(Nanos::from_secs(15));
        assert!(alps.refreshes() > refreshes_before);
        // Group totals still split 1:1 (a0+a1 vs b0) after the join.
        let ca = sim.proc(a0).unwrap().cputime() + sim.proc(a1).unwrap().cputime();
        let cb = sim.proc(b0).unwrap().cputime();
        let ratio = ca.as_secs_f64() / cb.as_secs_f64();
        assert!((ratio - 1.0).abs() < 0.15, "group split {ratio}");
        // And the joiner really did run.
        assert!(sim.proc(a1).unwrap().cputime() > Nanos::from_millis(500));
    }
}
