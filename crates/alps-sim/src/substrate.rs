//! The [`Substrate`] adapter over a simulated kernel.
//!
//! This is the whole backend: the generic [`alps_core::Engine`] does the
//! scheduling; all it needs from `kernsim` is the clock, per-process CPU
//! readings, and `SIGSTOP`/`SIGCONT` delivery, which [`SimCtl`] already
//! exposes to a behavior.

use core::convert::Infallible;

use alps_core::{Nanos, Observation, Signal, Substrate};
use kernsim::{Pid, SimCtl};

/// One simulated process's view of the simulation as a scheduling
/// substrate. Borrow a behavior's [`SimCtl`] for the duration of an engine
/// call.
pub struct SimSubstrate<'a, 'b> {
    ctl: &'a mut SimCtl<'b>,
}

impl<'a, 'b> SimSubstrate<'a, 'b> {
    /// Wrap a behavior's control handle.
    pub fn new(ctl: &'a mut SimCtl<'b>) -> Self {
        SimSubstrate { ctl }
    }
}

impl Substrate for SimSubstrate<'_, '_> {
    type Member = Pid;
    type Error = Infallible;

    fn now(&mut self) -> Nanos {
        self.ctl.now()
    }

    fn read(&mut self, pid: Pid) -> Result<Option<Observation>, Infallible> {
        if self.ctl.is_exited(pid) {
            return Ok(None);
        }
        Ok(Some(Observation {
            // The tick-granular reading a real user-level scheduler sees.
            total_cpu: self.ctl.cputime(pid),
            blocked: self.ctl.is_blocked(pid),
        }))
    }

    fn read_exact(&mut self, pid: Pid) -> Result<Option<Nanos>, Infallible> {
        if self.ctl.is_exited(pid) {
            return Ok(None);
        }
        // Ground truth, so accuracy instrumentation measures the
        // scheduler rather than the visible counters it reads.
        Ok(Some(self.ctl.cputime_exact(pid)))
    }

    fn deliver(&mut self, pid: Pid, signal: Signal) -> Result<bool, Infallible> {
        if self.ctl.is_exited(pid) {
            return Ok(false);
        }
        match signal {
            Signal::Stop => self.ctl.sigstop(pid),
            Signal::Continue => self.ctl.sigcont(pid),
        }
        Ok(true)
    }
}
