//! Render an ALPS cycle as an ASCII timeline.
//!
//! Shows exactly what §2.1 describes: at each cycle start the whole group
//! becomes eligible; processes drop out one by one as they exhaust their
//! allowances (small shares first), the kernel time-slicing whoever
//! remains; then the cycle completes and the staircase restarts.
//!
//! Run with: `cargo run --release -p alps-sim --example cycle_timeline`

use alps_core::{AlpsConfig, Nanos};
use alps_sim::{spawn_alps, CostModel};
use kernsim::{ComputeBound, Sim, SimConfig};

fn main() {
    let mut sim = Sim::new(SimConfig::default());
    let shares = [1u64, 2, 3, 4];
    let procs: Vec<_> = shares
        .iter()
        .map(|&s| (sim.spawn(format!("{s}-share"), Box::new(ComputeBound)), s))
        .collect();
    let alps = spawn_alps(
        &mut sim,
        "alps",
        AlpsConfig::new(Nanos::from_millis(10)).with_cycle_log(true),
        CostModel::paper(),
        &procs,
    );

    // Let it reach steady state, then record two cycles.
    sim.run_until(Nanos::from_secs(2));
    sim.enable_trace(10_000);
    let from = sim.now();
    // Cycle = S*Q = 100ms; trace 200ms = two cycles.
    let to = from + Nanos::from_millis(200);
    sim.run_until(to);

    println!(
        "shares {:?}, quantum 10ms, cycle = S*Q = 100ms; two cycles, one column = 2ms:\n",
        shares
    );
    let mut rows: Vec<(kernsim::Pid, &str)> = Vec::new();
    let names: Vec<String> = procs
        .iter()
        .map(|&(pid, _)| sim.proc(pid).unwrap().name().to_string())
        .collect();
    for (i, &(pid, _)) in procs.iter().enumerate() {
        rows.push((pid, &names[i]));
    }
    rows.push((alps.pid, "alps"));
    let trace = sim.trace().expect("trace enabled");
    print!(
        "{}",
        trace.render_ascii(&rows, from, to, Nanos::from_millis(2))
    );
    println!("\n('#' = on CPU; the staircase is the eligible group shrinking as");
    println!("small-share processes exhaust their allowances; 'alps' blips are");
    println!("its ~30us invocations at each quantum boundary)");
}
