//! Probe ALPS priority dynamics at N=90, Q=10ms (past the paper threshold).
use alps_core::{AlpsConfig, Nanos};
use alps_sim::{spawn_alps, CostModel};
use kernsim::{ComputeBound, Sim, SimConfig};

fn main() {
    let mut sim = Sim::new(SimConfig {
        seed: 1,
        spawn_estcpu_jitter: 8.0,
        ..SimConfig::default()
    });
    let procs: Vec<_> = (0..90)
        .map(|i| (sim.spawn(format!("w{i}"), Box::new(ComputeBound)), 5u64))
        .collect();
    let cfg = AlpsConfig::new(Nanos::from_millis(10)).with_cycle_log(true);
    let alps = spawn_alps(&mut sim, "alps", cfg, CostModel::paper(), &procs);
    let mut last_inv = 0;
    for step in 0..30 {
        sim.run_until(Nanos::from_secs(1 + step));
        let inv = alps.invocations();
        println!(
            "t={:3}s alps prio={:3} cpu={:8.2}ms inv={} (+{}/s) load={:.1} w0 prio={} state={}",
            step + 1,
            sim.proc(alps.pid).unwrap().priority(),
            sim.proc(alps.pid).unwrap().cputime().as_millis_f64(),
            inv,
            inv - last_inv,
            sim.loadavg(),
            sim.proc(procs[0].0).unwrap().priority(),
            sim.proc(procs[0].0).unwrap().state_code(),
        );
        last_inv = inv;
    }
    let ovh = 100.0 * sim.proc(alps.pid).unwrap().cputime().as_f64() / sim.now().as_f64();
    println!("overhead {ovh:.3}% fairshare {:.3}%", 100.0 / 91.0);
    println!(
        "measurements {} signals {}",
        alps.stats().measurements,
        alps.stats().signals
    );
}
