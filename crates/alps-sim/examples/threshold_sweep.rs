//! Probe the §4.2 breakdown thresholds for Q in {10,20,40} ms.
use alps_core::Nanos;
use alps_sim::experiments::scalability::{run_scalability, ScalabilityParams};

fn main() {
    for q in [10u64, 20, 40] {
        let mut p = ScalabilityParams::paper(Nanos::from_millis(q));
        p.duration = Nanos::from_secs(80);
        let r = run_scalability(&p);
        println!("== Q = {q} ms ==");
        for pt in &r.points {
            println!(
                "  N={:3} ovh={:6.3}% err={:7.2}% serviced={:5.3} cycles={}",
                pt.n, pt.overhead_pct, pt.mean_rms_error_pct, pt.quanta_serviced_frac, pt.cycles
            );
        }
        if let Some(a) = &r.analysis {
            println!(
                "  fit: U(N) = {:.4}N + {:.4} (r2={:.3}) predicted N* = {:.0}",
                a.fit.slope, a.fit.intercept, a.fit.r_squared, a.predicted_threshold
            );
        }
        println!("  observed threshold: {:?}", r.observed_threshold);
    }
}
