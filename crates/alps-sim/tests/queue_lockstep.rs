//! The indexed simulator and the timing-wheel event queue must be
//! invisible to ALPS.
//!
//! An ALPS runner driven on a kernel with the indexed run queue (or the
//! timing-wheel event queue) must produce *identical* per-cycle
//! consumption records and `EngineStats` to one driven on the seed linear
//! queue (or the seed binary heap) — over 300 quanta (≥ 200), with
//! `SIGSTOP`/`SIGCONT`-based suspension happening every quantum (that is
//! ALPS's own mechanism) plus driver-initiated stop/cont and terminate
//! churn, for both the lazy (§2.3) and the unoptimized variants.

use std::num::NonZeroUsize;

use alps_core::{AlpsConfig, CycleRecord, EngineStats, Nanos};
use alps_sim::{spawn_alps, CostModel};
use kernsim::{ComputeBound, ComputeThenSleep, EventQueueKind, Pid, RunQueueKind, Sim, SimConfig};

#[derive(Debug, PartialEq)]
struct Outcome {
    cycles: Vec<CycleRecord>,
    stats: EngineStats,
    cputimes: Vec<Nanos>,
    invocations: u64,
}

fn run(kind: RunQueueKind, lazy: bool) -> Outcome {
    run_on(kind, EventQueueKind::default(), 1, lazy)
}

fn run_on(kind: RunQueueKind, event_queue: EventQueueKind, cpus: usize, lazy: bool) -> Outcome {
    let cfg = SimConfig {
        seed: 5,
        spawn_estcpu_jitter: 8.0,
        runqueue: kind,
        event_queue,
        cpus: NonZeroUsize::new(cpus).unwrap(),
        ..SimConfig::default()
    };
    let mut sim = Sim::new(cfg);
    let mut members: Vec<(Pid, u64)> = Vec::new();
    for (i, share) in [5u64, 4, 3, 2].into_iter().enumerate() {
        members.push((sim.spawn(format!("cpu{i}"), Box::new(ComputeBound)), share));
    }
    for i in 0..2 {
        let pid = sim.spawn(
            format!("io{i}"),
            Box::new(ComputeThenSleep::new(
                Nanos::from_millis(80),
                Nanos::from_millis(240),
                Nanos::ZERO,
            )),
        );
        members.push((pid, 1));
    }

    let alps_cfg = AlpsConfig::new(Nanos::from_millis(10))
        .with_lazy_measurement(lazy)
        .with_cycle_log(true);
    let alps = spawn_alps(&mut sim, "alps", alps_cfg, CostModel::paper(), &members);

    // 3 simulated seconds = 300 ALPS quanta, with driver churn on top of
    // the stop/cont traffic ALPS itself generates.
    sim.run_until(Nanos::from_millis(700));
    sim.sigstop(members[1].0); // fight ALPS over a member
    sim.run_until(Nanos::from_millis(900));
    sim.sigcont(members[1].0);
    sim.run_until(Nanos::from_millis(1500));
    sim.terminate(members[5].0); // auto-reap path
    sim.run_until(Nanos::from_secs(3));
    sim.assert_index_consistent();

    Outcome {
        cycles: alps.cycles(),
        stats: alps.stats(),
        cputimes: members
            .iter()
            .map(|&(p, _)| sim.proc(p).unwrap().cputime())
            .collect(),
        invocations: alps.invocations(),
    }
}

#[test]
fn alps_cycles_and_stats_identical_across_queue_kinds_lazy() {
    let indexed = run(RunQueueKind::Indexed, true);
    let linear = run(RunQueueKind::Linear, true);
    assert!(
        indexed.invocations >= 200,
        "need ≥200 quanta, got {}",
        indexed.invocations
    );
    assert!(
        !indexed.cycles.is_empty(),
        "the fixture must cross cycle boundaries"
    );
    assert_eq!(indexed, linear);
}

#[test]
fn alps_cycles_and_stats_identical_across_queue_kinds_eager() {
    let indexed = run(RunQueueKind::Indexed, false);
    let linear = run(RunQueueKind::Linear, false);
    assert!(indexed.invocations >= 200);
    assert!(!indexed.cycles.is_empty());
    assert_eq!(indexed, linear);
}

/// The event-queue analogue of the run-queue tests above: an ALPS run on
/// the timing wheel must be indistinguishable — cycle records, stats,
/// member CPU times, invocation count — from one on the binary heap, at
/// every supported machine width.
fn assert_event_queue_invisible(cpus: usize, lazy: bool) {
    let wheel = run_on(RunQueueKind::Indexed, EventQueueKind::Wheel, cpus, lazy);
    let heap = run_on(RunQueueKind::Indexed, EventQueueKind::Heap, cpus, lazy);
    assert!(
        wheel.invocations >= 200,
        "need ≥200 quanta, got {} (M = {cpus})",
        wheel.invocations
    );
    assert!(
        !wheel.cycles.is_empty(),
        "the fixture must cross cycle boundaries (M = {cpus})"
    );
    assert_eq!(
        wheel, heap,
        "ALPS outcome diverges across event queues (M = {cpus})"
    );
}

#[test]
fn alps_outcome_identical_across_event_queues_lazy() {
    assert_event_queue_invisible(1, true);
}

#[test]
fn alps_outcome_identical_across_event_queues_eager() {
    assert_event_queue_invisible(1, false);
}

#[test]
fn alps_outcome_identical_across_event_queues_smp() {
    for cpus in [2, 4] {
        assert_event_queue_invisible(cpus, true);
    }
}
